// Predictor comparison: run the same threaded-code interpreter on a
// plain BTB, a BTB with two-bit counters, and a Pentium M style
// two-level predictor, reproducing the paper's Section 8 observation
// that history-based hardware prediction removes the problem the
// software techniques solve.
package main

import (
	"fmt"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/harness"
	"vmopt/internal/workload"
)

func main() {
	s := harness.NewSuite()
	s.ScaleDiv = 4

	machines := []cpu.Machine{
		cpu.Celeron800,
		cpu.Celeron800.WithPredictor(cpu.PredictBTB2bc),
		cpu.PentiumM,
	}
	plain := harness.Variant{Name: "plain", Technique: core.TPlain}

	fmt.Printf("%-12s %16s %16s %16s\n", "benchmark", "BTB", "BTB+2bit", "two-level")
	for _, w := range workload.Forth() {
		fmt.Printf("%-12s", w.Name)
		for _, m := range machines {
			c, err := s.Run(w, plain, m)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %14.1f%%", 100*c.MispredictRate())
		}
		fmt.Println()
	}
	fmt.Println("\nMisprediction rates of plain threaded code. The two-level predictor")
	fmt.Println("learns dispatch patterns from path history; on BTB machines the")
	fmt.Println("paper's replication/superinstruction techniques achieve the same in")
	fmt.Println("software.")
}
