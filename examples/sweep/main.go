// Static-mix sweep walkthrough: regenerate the paper's Figure 14 —
// bench-gc cycles as the static instruction budget is split between
// replicas and superinstructions — and draw the plateau as an ASCII
// chart: each line is one total budget, each column a mix point.
package main

import (
	"fmt"
	"strings"

	"vmopt/internal/harness"
)

func main() {
	s := harness.NewSuite()
	s.ScaleDiv = 4 // keep the example snappy

	d, _, err := s.Figure14()
	if err != nil {
		panic(err)
	}

	// Normalize against the no-extra-instructions baseline.
	base := d.C[0][0].Cycles
	fmt.Printf("bench-gc on the Celeron-800: cycles relative to plain threaded code\n")
	fmt.Printf("(rows: total extra VM instructions; columns: %% superinstructions)\n\n")
	fmt.Printf("%6s ", "")
	for _, pct := range d.Percents {
		fmt.Printf("%4d%% ", pct)
	}
	fmt.Println()
	for _, total := range d.Totals {
		fmt.Printf("%6d ", total)
		for _, pct := range d.Percents {
			rel := d.C[total][pct].Cycles / base
			fmt.Printf("%5.2f ", rel)
		}
		// A crude bar of the row's best point.
		best := 1.0
		for _, pct := range d.Percents {
			if r := d.C[total][pct].Cycles / base; r < best {
				best = r
			}
		}
		bar := int((1 - best) * 40)
		fmt.Printf(" |%s\n", strings.Repeat("#", bar))
	}
	fmt.Println("\nMore static instructions help until the BTB stops mispredicting;")
	fmt.Println("away from the 0% and 100% extremes the exact mix barely matters —")
	fmt.Println("the paper's Figure 14 plateau.")
}
