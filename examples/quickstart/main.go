// Quickstart: compile a small Forth program, run it under plain
// threaded code and under dynamic superinstructions with replication
// across basic blocks, and compare the simulated branch-prediction
// behaviour — the paper's headline effect in thirty lines.
package main

import (
	"fmt"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
)

// Several words reusing the same VM instructions, so the BTB sees
// each opcode's dispatch branch jump to changing successors — the
// paper's misprediction mechanism (Section 3).
const src = `
	variable sum
	: step1  dup * sum +! ;
	: step2  dup dup * * sum +! ;
	: step3  1+ dup * sum +! ;
	: run    400 0 do i step1 i step2 i step3 loop ;
	run  sum @ .
`

func main() {
	for _, tech := range []core.Technique{core.TPlain, core.TAcrossBB} {
		prog := forth.MustCompile(src)
		vm := prog.NewVM(64)

		var leaders []int
		for _, xt := range prog.Words {
			leaders = append(leaders, xt)
		}
		plan := core.MustBuildPlan(vm.Code(), forthvm.ISA(), core.Config{
			Technique: tech, ExtraLeaders: leaders,
		})

		sim := cpu.NewSim(cpu.Pentium4Northwood)
		c, err := core.Run(vm, plan, sim, 10_000_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s output=%q\n", tech.String()+":", vm.Out)
		fmt.Printf("  %s\n", c)
	}
	fmt.Println("\nThe across-bb variant executes the same program with far fewer")
	fmt.Println("indirect branches and near-zero mispredictions (paper Section 5.2).")
}
