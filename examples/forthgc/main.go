// Forth GC benchmark walkthrough: run the bench-gc workload (the
// paper's mark-sweep garbage collector benchmark) under every
// interpreter variant on the Celeron-800 model and print the Figure
// 7-style comparison, including the I-cache cost of code growth.
package main

import (
	"fmt"

	"vmopt/internal/cpu"
	"vmopt/internal/harness"
	"vmopt/internal/workload"
)

func main() {
	s := harness.NewSuite()
	s.ScaleDiv = 4 // keep the example snappy

	w := workload.BenchGC()
	base, err := s.Run(w, harness.ForthVariants()[0], cpu.Celeron800)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bench-gc on %s (%d VM instructions)\n\n", cpu.Celeron800.Name, base.VMInstructions)
	fmt.Printf("%-20s %8s %10s %12s %10s %10s\n",
		"variant", "speedup", "mispredict", "dispatches", "ic-misses", "code KB")
	for _, v := range harness.ForthVariants() {
		c, err := s.Run(w, v, cpu.Celeron800)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s %8.2f %9.1f%% %12d %10d %10.1f\n",
			v.Name, c.SpeedupOver(base), 100*c.MispredictRate(),
			c.Dispatches, c.ICacheMisses, float64(c.CodeBytes)/1024)
	}
	fmt.Println("\nReplication eliminates mispredictions at the price of code growth;")
	fmt.Println("on this small-cache machine the I-cache misses show the trade-off")
	fmt.Println("the paper discusses in Section 7.4.")
}
