// Java quickening walkthrough: assemble a small object-oriented jasm
// program, watch getfield/invokevirtual rewrite themselves into quick
// variants on first execution, and see how the dynamic-superinstruction
// gaps get patched (paper Section 5.4).
package main

import (
	"fmt"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/jvm"
)

const src = `
class Counter
  field n
end

method Counter.bump virtual args 1 locals 1
  iload_0
  iload_0
  getfield Counter.n
  iconst 1
  iadd
  putfield Counter.n
  return
end

method Main.main static args 0 locals 2
  new Counter
  istore_0
  iconst 0
  istore_1
loop:
  iload_1
  iconst 100
  if_icmpge done
  iload_0
  invokevirtual bump
  iinc 1 1
  goto loop
done:
  iload_0
  getfield Counter.n
  iprint
  return
end
`

func main() {
	prog := jvm.MustAssemble(src)
	vm := jvm.NewVM(prog)

	quickable := countQuickable(vm.Code())
	fmt.Printf("before execution: %d quickable instructions\n", quickable)

	plan := core.MustBuildPlan(vm.Code(), jvm.ISA(), core.Config{
		Technique: core.TDynamicSuper, ExtraLeaders: prog.EntryPoints(),
	})
	sim := cpu.NewSim(cpu.Pentium4Northwood)
	c, err := core.Run(vm, plan, sim, 1_000_000)
	if err != nil {
		panic(err)
	}

	fmt.Printf("after execution:  %d quickable instructions (all rewritten)\n",
		countQuickable(vm.Code()))
	fmt.Printf("program output:   %s\n", vm.Out)
	fmt.Printf("counters:         %s\n", c)
	fmt.Println("\nEvery getfield/putfield/new/invokevirtual resolved itself on first")
	fmt.Println("execution and was patched into the generated superinstruction gap;")
	fmt.Println("the steady-state loop then runs from contiguous quick code.")
}

func countQuickable(code []core.Inst) int {
	n := 0
	for _, in := range code {
		if jvm.ISA().Meta(in.Op).Quickable {
			n++
		}
	}
	return n
}
