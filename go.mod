module vmopt

go 1.24
