# Build vmserved and vmload into a minimal runtime image. The same
# image runs every role: replicas and the router are both `vmserved`
# with different flags (see deploy/compose.yaml), and vmload rides
# along for in-container load checks.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
# Static binaries: the runtime stage has no libc.
RUN CGO_ENABLED=0 go build -trimpath -o /out/vmserved ./cmd/vmserved \
 && CGO_ENABLED=0 go build -trimpath -o /out/vmload ./cmd/vmload

FROM alpine:3.20
# busybox wget serves the compose health probes; no other tooling.
RUN adduser -D -H vmopt && mkdir -p /var/lib/vmopt/traces && chown -R vmopt /var/lib/vmopt
COPY --from=build /out/vmserved /usr/local/bin/vmserved
COPY --from=build /out/vmload /usr/local/bin/vmload
USER vmopt
EXPOSE 8321
ENTRYPOINT ["vmserved"]
CMD ["-addr", ":8321", "-trace-cache", "/var/lib/vmopt/traces"]
