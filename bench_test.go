// Benchmarks: one per paper table/figure (regeneration cost at
// reduced workload scale) plus micro-benchmarks of the substrate.
// Run with: go test -bench=. -benchmem
package vmopt

import (
	"testing"

	"vmopt/internal/btb"
	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
	"vmopt/internal/harness"
	"vmopt/internal/icache"
	"vmopt/internal/jvm"
	"vmopt/internal/superinst"
	"vmopt/internal/workload"
)

// benchSuite returns a reduced-scale suite (fresh per iteration so
// each regeneration is measured end to end, including training).
func benchSuite() *harness.Suite {
	s := harness.NewSuite()
	s.ScaleDiv = 20
	return s
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, sm, tm := harness.TableI()
		if sm != 4 || tm != 2 {
			b.Fatal("trace mismatch")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, m := harness.TableII(); m != 0 {
			b.Fatal("trace mismatch")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, om, mm := harness.TableIII(); om != 2 || mm != 3 {
			b.Fatal("trace mismatch")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, m := harness.TableIV(); m != 0 {
			b.Fatal("trace mismatch")
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().TableV(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := harness.TableVI(); len(t.Rows) != 7 {
			b.Fatal("bad inventory")
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := harness.TableVII(); len(t.Rows) != 7 {
			b.Fatal("bad inventory")
		}
	}
}

func BenchmarkTableVIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().TableVIII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().TableIX(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().TableX(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure14(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchSuite().Figure16(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMispredictRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := benchSuite().MispredictRates(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchFractions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := benchSuite().BranchFractions(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkBTBAccess(b *testing.B) {
	p := btb.NewSetAssoc(512, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(i%997)*4, 0, uint64(i%31)*64)
	}
}

func BenchmarkTwoLevelAccess(b *testing.B) {
	p := btb.NewTwoLevel(14, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(i%997)*4, 0, uint64(i%31)*64)
	}
}

func BenchmarkICacheTouch(b *testing.B) {
	c := icache.New(16*1024, 32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(uint64(i%4096)*16, 12)
	}
}

func BenchmarkForthCompile(b *testing.B) {
	src := workload.Gray().Source(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forth.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJasmAssemble(b *testing.B) {
	src := workload.Compress().Source(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jvm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMStep measures raw Forth VM semantics (no simulation).
func BenchmarkVMStep(b *testing.B) {
	prog := forth.MustCompile("variable s begin 1 s +! s @ 1000000000 = until")
	vm := prog.NewVM(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStep measures one simulated VM instruction under the
// across-bb plan (semantics + BTB + icache + cycle model).
func BenchmarkEngineStep(b *testing.B) {
	prog := forth.MustCompile("variable s : f 1 s +! ; begin f s @ 1000000000 = until")
	vm := prog.NewVM(64)
	plan := core.MustBuildPlan(vm.Code(), forthvm.ISA(), core.Config{Technique: core.TAcrossBB})
	sim := cpu.NewSim(cpu.Pentium4Northwood)
	b.ResetTimer()
	if _, err := core.Run(vm, plan, sim, uint64(b.N)); err != nil && b.N > 100 {
		// Run returns an error when it hits the maxSteps budget,
		// which here is exactly b.N steps — expected.
		_ = err
	}
}

func BenchmarkBuildPlanAcrossBB(b *testing.B) {
	prog := forth.MustCompile(workload.Gray().Source(10))
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPlan(prog.Code, forthvm.ISA(), core.Config{Technique: core.TAcrossBB}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyParse(b *testing.B) {
	tbl := superinst.MustNewTable([][]uint32{{1, 2}, {2, 3}, {1, 2, 3}, {3, 3}})
	ops := make([]uint32, 256)
	for i := range ops {
		ops[i] = uint32(i % 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.GreedyParse(ops)
	}
}

func BenchmarkOptimalParse(b *testing.B) {
	tbl := superinst.MustNewTable([][]uint32{{1, 2}, {2, 3}, {1, 2, 3}, {3, 3}})
	ops := make([]uint32, 256)
	for i := range ops {
		ops[i] = uint32(i % 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.OptimalParse(ops)
	}
}
