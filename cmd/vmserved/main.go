// Command vmserved serves the experiment surface of the reproduction
// over HTTP/JSON: any (workload, variant, machine, scale) cell of the
// paper's evaluation on demand, with tiered caching (in-memory LRU
// over the on-disk dispatch-trace cache), coalescing of identical
// concurrent requests, worker-pool backpressure and graceful
// shutdown. See internal/serve for the subsystem and the README
// "Serving API" section for the endpoint reference.
//
// Usage:
//
//	vmserved -addr :8321 -trace-cache .vmtraces
//	vmserved -cache 8192 -jobs 8 -inflight 128 -scalediv 50
//
// Endpoints:
//
//	POST /v1/run          one cell -> runner.Run JSON
//	POST /v1/sweep        grid of cells -> NDJSON stream
//	GET  /v1/traces       on-disk trace cache index
//	GET  /v1/traces/{id}  one trace's metadata
//	GET  /v1/stats        hit rates, coalescing, latency percentiles
//	GET  /metrics         Prometheus text exposition of the same counters
//	GET  /debug/requests  recent and slowest request traces
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (503 once drain begins)
//
// -debug-addr binds a second listener with pprof alongside /metrics,
// /debug/requests and the probes, so profiling stays off the public
// port. -access-log writes one JSON record per request (request ID,
// endpoint, status, cache outcome, latency) to stderr.
//
// -compiled-budget bounds the in-memory compiled-replay tier: a trace
// loaded from the cache -compile-after times is specialized into a
// pre-decoded op arena and served from memory with zero decode work
// (see the README "Compiled replay" section; 0 disables the tier).
//
// Cluster mode (see internal/cluster and the README "Cluster"
// section):
//
//	vmserved -route http://a:8321,http://b:8321,http://c:8321
//	    run as the router: consistent-hash each request's cell key
//	    across the instances, forward with per-hop deadlines, retry
//	    the next replica when the owner is unavailable
//	vmserved -cluster http://a:8321,... -cluster-self http://a:8321
//	    run as a replica: on a local trace-cache miss, ask the owning
//	    peer for the trace before simulating (peer fill)
//
// Robustness controls:
//
//	-run-deadline/-sweep-deadline/-diff-deadline  per-endpoint server-side
//	    budgets; a request that exhausts its budget gets 504 with a
//	    machine-readable body and releases its slot
//	-faults spec.json   arm deterministic fault injection (disk
//	    corruption, injected latency, forced 503s; see internal/faults)
//	-scrub              verify every trace-cache file against its content
//	    address, quarantine failures, and exit
//	-read-header-timeout/-idle-timeout  slowloris and idle-connection
//	    guards on both listeners
//	-readyz-drain       grace between flipping /readyz to 503 and closing
//	    listeners, so routers and LBs steer traffic away first
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vmopt/internal/cluster"
	"vmopt/internal/disptrace"
	"vmopt/internal/faults"
	"vmopt/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	traceCache := flag.String("trace-cache", "", "directory for the dispatch-trace cache (tier 3; empty = no disk cache)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "in-memory result LRU entries (tier 1)")
	jobs := flag.Int("jobs", 0, "worker-pool parallelism per request grid (0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", serve.DefaultMaxInFlight, "max concurrently executing run/sweep requests (backpressure; 503 beyond)")
	maxCells := flag.Int("max-cells", serve.DefaultMaxCells, "max cells one sweep may resolve to")
	scaleDiv := flag.Int("scalediv", 1, "default scale divisor for requests that omit scalediv")
	compiledBudget := flag.Int64("compiled-budget", serve.DefaultCompiledBudget, "byte budget for the in-memory compiled-replay arena tier (0 disables)")
	compileAfter := flag.Int("compile-after", disptrace.DefaultCompileAfter, "disk loads of the same trace before it is compiled into an arena")
	runDeadline := flag.Duration("run-deadline", 0, "server-side deadline for one /v1/run request (504 beyond; 0 = none)")
	sweepDeadline := flag.Duration("sweep-deadline", 0, "server-side deadline for one /v1/sweep request (0 = none)")
	diffDeadline := flag.Duration("diff-deadline", 0, "server-side deadline for one /v1/diff request (0 = none)")
	faultSpec := flag.String("faults", "", "fault-injection spec file (JSON; see internal/faults) armed for the whole process")
	scrub := flag.Bool("scrub", false, "verify every trace-cache file (full decode + content-address check), quarantine failures, and exit")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "per-connection request-header read timeout (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive connection idle timeout")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	readyzDrain := flag.Duration("readyz-drain", 0, "grace between /readyz flipping to 503 and listeners closing at shutdown")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof, /metrics, /debug/requests and the probes (empty = none)")
	accessLog := flag.Bool("access-log", false, "write JSON access logs to stderr")
	instanceID := flag.String("instance-id", "", "this instance's identity in a cluster (default host:port of -addr)")
	route := flag.String("route", "", "run as the cluster router over these comma-separated instance base URLs instead of serving locally")
	clusterList := flag.String("cluster", "", "comma-separated base URLs of every cluster instance (enables peer cache fill; requires -cluster-self and -trace-cache)")
	clusterSelf := flag.String("cluster-self", "", "this instance's own base URL within -cluster")
	peerDeadline := flag.Duration("peer-deadline", cluster.DefaultPeerDeadline, "deadline for one peer cache-fill fetch")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per instance on the consistent-hash ring")
	ringSeed := flag.Uint64("ring-seed", 0, "consistent-hash ring seed (must match across router and replicas)")
	hopDeadline := flag.Duration("hop-deadline", cluster.DefaultHopDeadline, "router: deadline for one forwarded attempt")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "router: interval between /readyz probes of each instance")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vmserved: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	if *route != "" {
		instances := splitList(*route)
		if len(instances) == 0 {
			log.Fatalf("vmserved: -route needs at least one instance URL")
		}
		rt := cluster.NewRouter(cluster.RouterConfig{
			Instances:       instances,
			VNodes:          *vnodes,
			Seed:            *ringSeed,
			HopDeadline:     *hopDeadline,
			ProbeInterval:   *probeInterval,
			DefaultScaleDiv: *scaleDiv,
			MaxCells:        *maxCells,
		})
		probeCtx, stopProbes := context.WithCancel(context.Background())
		defer stopProbes()
		rt.StartProbes(probeCtx)
		log.Printf("vmserved: routing for %d instance(s): %s", len(instances), strings.Join(instances, ", "))
		runServer(rt.Handler(), nil, *addr, "", *readHeaderTimeout, *idleTimeout,
			*drainTimeout, *readyzDrain, rt.SetReady, stopProbes)
		return
	}

	cfg := serve.Config{
		CacheSize:       *cacheSize,
		Jobs:            *jobs,
		MaxInFlight:     *inflight,
		MaxCells:        *maxCells,
		DefaultScaleDiv: *scaleDiv,
		RunDeadline:     *runDeadline,
		SweepDeadline:   *sweepDeadline,
		DiffDeadline:    *diffDeadline,
		InstanceID:      *instanceID,
		CompiledBudget:  *compiledBudget,
		CompileAfter:    *compileAfter,
	}
	if *compiledBudget == 0 {
		// The flag's 0 means "off"; Config's 0 means "default budget".
		cfg.CompiledBudget = -1
	}
	if cfg.InstanceID == "" {
		cfg.InstanceID = defaultInstanceID(*addr)
	}
	if *traceCache != "" {
		cfg.Traces = disptrace.NewCache(*traceCache)
	}
	if *scrub {
		if cfg.Traces == nil {
			log.Fatalf("vmserved: -scrub needs -trace-cache")
		}
		rep, err := cfg.Traces.Scrub()
		if err != nil {
			log.Fatalf("vmserved: scrub: %v", err)
		}
		log.Printf("vmserved: scrub: %d trace file(s) checked (%d bytes), %d quarantined",
			rep.Checked, rep.Bytes, rep.Quarantined)
		return
	}
	if *faultSpec != "" {
		fs, err := faults.ReadSpecFile(*faultSpec)
		if err != nil {
			log.Fatalf("vmserved: %v", err)
		}
		inj := faults.New(fs)
		cfg.Faults = inj
		if cfg.Traces != nil {
			cfg.Traces.Faults = inj
		}
		log.Printf("vmserved: fault injection armed from %s (%d rule(s))", *faultSpec, len(fs.Faults))
	}
	if *clusterList != "" {
		instances := splitList(*clusterList)
		if *clusterSelf == "" {
			log.Fatalf("vmserved: -cluster needs -cluster-self (this instance's URL within the list)")
		}
		found := false
		for _, in := range instances {
			if in == *clusterSelf {
				found = true
			}
		}
		if !found {
			log.Fatalf("vmserved: -cluster-self %q is not in -cluster %q", *clusterSelf, *clusterList)
		}
		if cfg.Traces == nil {
			log.Printf("vmserved: -cluster without -trace-cache: peer fill disabled (nothing to fill)")
		} else {
			ring := cluster.NewRing(instances, *vnodes, *ringSeed)
			peers := cluster.NewPeerClient(ring, *clusterSelf, *peerDeadline)
			cfg.Traces.Fill = peers.Fill
			cfg.Traces.FillID = peers.FillID
			log.Printf("vmserved: cluster member %s of %d instance(s); peer fill armed", *clusterSelf, len(instances))
		}
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := serve.New(cfg)

	log.Printf("vmserved: instance %q (trace cache %q, LRU %d, inflight %d)",
		cfg.InstanceID, *traceCache, *cacheSize, *inflight)
	runServer(srv.Handler(), srv.DebugHandler(), *addr, *debugAddr,
		*readHeaderTimeout, *idleTimeout, *drainTimeout, *readyzDrain,
		srv.SetReady, srv.Close)
}

// splitList parses a comma-separated URL list, trimming whitespace
// and trailing slashes (ring membership compares exact strings, so
// normalize the obvious near-misses).
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// defaultInstanceID derives an instance identity from the listen
// address: host:port, with the hostname standing in when -addr leaves
// the host empty (":8321" is every replica's address in a container
// fleet; the hostname is what distinguishes them).
func defaultInstanceID(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			host = hn
		}
	}
	return net.JoinHostPort(host, port)
}

// runServer owns the listener lifecycle shared by replica and router
// modes: serve until SIGINT/SIGTERM, flip /readyz (setReady) and wait
// the readyz grace so probers steer traffic away, then drain in-flight
// requests and shut everything down (shutdown cancels background
// work: the compute base context for a replica, the prober for the
// router).
func runServer(handler, debugHandler http.Handler, addr, debugAddr string,
	readHeaderTimeout, idleTimeout, drainTimeout, readyzDrain time.Duration,
	setReady func(bool), shutdown func()) {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("vmserved: %v", err)
	}
	log.Printf("vmserved: listening on %s", ln.Addr())

	var debugSrv *http.Server
	if debugAddr != "" && debugHandler != nil {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			log.Fatalf("vmserved: debug listener: %v", err)
		}
		debugSrv = &http.Server{
			Handler:           debugHandler,
			ReadHeaderTimeout: readHeaderTimeout,
			IdleTimeout:       idleTimeout,
		}
		log.Printf("vmserved: debug listener on %s (pprof, /metrics, /debug/requests, probes)", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("vmserved: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("vmserved: %v", err)
	case <-ctx.Done():
	}
	stop()

	// Flip readiness before anything closes: probers (the router, an
	// LB) see the 503 and steer new traffic away while the listeners
	// are still accepting, so nobody eats a connection reset. The
	// grace below gives them a probe cycle to notice.
	setReady(false)
	if readyzDrain > 0 {
		log.Printf("vmserved: /readyz now 503; waiting %s before closing listeners", readyzDrain)
		time.Sleep(readyzDrain)
	}
	log.Printf("vmserved: shutting down (draining up to %s)", drainTimeout)

	// Drain in-flight requests first, then cancel background work so
	// any stragglers stop at the next cell boundary.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vmserved: shutdown: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	shutdown()
	log.Printf("vmserved: bye")
}
