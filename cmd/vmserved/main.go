// Command vmserved serves the experiment surface of the reproduction
// over HTTP/JSON: any (workload, variant, machine, scale) cell of the
// paper's evaluation on demand, with tiered caching (in-memory LRU
// over the on-disk dispatch-trace cache), coalescing of identical
// concurrent requests, worker-pool backpressure and graceful
// shutdown. See internal/serve for the subsystem and the README
// "Serving API" section for the endpoint reference.
//
// Usage:
//
//	vmserved -addr :8321 -trace-cache .vmtraces
//	vmserved -cache 8192 -jobs 8 -inflight 128 -scalediv 50
//
// Endpoints:
//
//	POST /v1/run          one cell -> runner.Run JSON
//	POST /v1/sweep        grid of cells -> NDJSON stream
//	GET  /v1/traces       on-disk trace cache index
//	GET  /v1/traces/{id}  one trace's metadata
//	GET  /v1/stats        hit rates, coalescing, latency percentiles
//	GET  /metrics         Prometheus text exposition of the same counters
//	GET  /debug/requests  recent and slowest request traces
//	GET  /healthz         liveness
//
// -debug-addr binds a second listener with pprof alongside /metrics
// and /debug/requests, so profiling stays off the public port.
// -access-log writes one JSON record per request (request ID,
// endpoint, status, cache outcome, latency) to stderr.
//
// Robustness controls:
//
//	-run-deadline/-sweep-deadline/-diff-deadline  per-endpoint server-side
//	    budgets; a request that exhausts its budget gets 504 with a
//	    machine-readable body and releases its slot
//	-faults spec.json   arm deterministic fault injection (disk
//	    corruption, injected latency, forced 503s; see internal/faults)
//	-scrub              verify every trace-cache file against its content
//	    address, quarantine failures, and exit
//	-read-header-timeout/-idle-timeout  slowloris and idle-connection
//	    guards on both listeners
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/faults"
	"vmopt/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	traceCache := flag.String("trace-cache", "", "directory for the dispatch-trace cache (tier 3; empty = no disk cache)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "in-memory result LRU entries (tier 1)")
	jobs := flag.Int("jobs", 0, "worker-pool parallelism per request grid (0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", serve.DefaultMaxInFlight, "max concurrently executing run/sweep requests (backpressure; 503 beyond)")
	maxCells := flag.Int("max-cells", serve.DefaultMaxCells, "max cells one sweep may resolve to")
	scaleDiv := flag.Int("scalediv", 1, "default scale divisor for requests that omit scalediv")
	runDeadline := flag.Duration("run-deadline", 0, "server-side deadline for one /v1/run request (504 beyond; 0 = none)")
	sweepDeadline := flag.Duration("sweep-deadline", 0, "server-side deadline for one /v1/sweep request (0 = none)")
	diffDeadline := flag.Duration("diff-deadline", 0, "server-side deadline for one /v1/diff request (0 = none)")
	faultSpec := flag.String("faults", "", "fault-injection spec file (JSON; see internal/faults) armed for the whole process")
	scrub := flag.Bool("scrub", false, "verify every trace-cache file (full decode + content-address check), quarantine failures, and exit")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "per-connection request-header read timeout (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "keep-alive connection idle timeout")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof, /metrics and /debug/requests (empty = none)")
	accessLog := flag.Bool("access-log", false, "write JSON access logs to stderr")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vmserved: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	cfg := serve.Config{
		CacheSize:       *cacheSize,
		Jobs:            *jobs,
		MaxInFlight:     *inflight,
		MaxCells:        *maxCells,
		DefaultScaleDiv: *scaleDiv,
		RunDeadline:     *runDeadline,
		SweepDeadline:   *sweepDeadline,
		DiffDeadline:    *diffDeadline,
	}
	if *traceCache != "" {
		cfg.Traces = disptrace.NewCache(*traceCache)
	}
	if *scrub {
		if cfg.Traces == nil {
			log.Fatalf("vmserved: -scrub needs -trace-cache")
		}
		rep, err := cfg.Traces.Scrub()
		if err != nil {
			log.Fatalf("vmserved: scrub: %v", err)
		}
		log.Printf("vmserved: scrub: %d trace file(s) checked (%d bytes), %d quarantined",
			rep.Checked, rep.Bytes, rep.Quarantined)
		return
	}
	if *faultSpec != "" {
		fs, err := faults.ReadSpecFile(*faultSpec)
		if err != nil {
			log.Fatalf("vmserved: %v", err)
		}
		inj := faults.New(fs)
		cfg.Faults = inj
		if cfg.Traces != nil {
			cfg.Traces.Faults = inj
		}
		log.Printf("vmserved: fault injection armed from %s (%d rule(s))", *faultSpec, len(fs.Faults))
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := serve.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vmserved: %v", err)
	}
	log.Printf("vmserved: listening on %s (trace cache %q, LRU %d, inflight %d)",
		ln.Addr(), *traceCache, *cacheSize, *inflight)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("vmserved: debug listener: %v", err)
		}
		debugSrv = &http.Server{
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: *readHeaderTimeout,
			IdleTimeout:       *idleTimeout,
		}
		log.Printf("vmserved: debug listener on %s (pprof, /metrics, /debug/requests)", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("vmserved: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("vmserved: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("vmserved: shutting down (draining up to %s)", *drainTimeout)

	// Drain in-flight requests first, then cancel the compute base
	// context so any stragglers' grids stop dispatching.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vmserved: shutdown: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	srv.Close()
	log.Printf("vmserved: bye")
}
