// Command vmbench regenerates the tables and figures of the paper's
// evaluation section from the simulation substrate.
//
// Usage:
//
//	vmbench                            # regenerate everything (text)
//	vmbench -exp fig8                  # one experiment
//	vmbench -list                      # enumerate valid -exp names
//	vmbench -scalediv 10               # reduced workload scale (faster)
//	vmbench -jobs 16                   # worker-pool parallelism
//	vmbench -format json -out results  # machine-readable results
//	vmbench -trace-cache .vmtraces     # record-once-replay-many runs
//	vmbench diff BENCH_baseline.json   # regression check vs a baseline
//
// Experiments: table1 table2 table3 table4 table5 table6 table7
// table8 table9 table10 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16 rates fractions predictors, the ablations parse
// selection btbsize penalty caseblock lengths hardware history, the
// composite sweep, and all. -list prints each with a one-line
// description.
//
// -trace-cache stores each (benchmark, variant, scale) dispatch
// stream in the named directory (internal/disptrace) and replays it
// for every further machine model instead of re-executing the guest
// VM; replayed counters are byte-identical to direct simulation, so
// results never change — machine-sweep experiments just get faster,
// especially on a warm cache.
//
// diff re-runs the experiments recorded in the baseline report (same
// -exp and -scalediv) and exits non-zero when any run's cycles or
// mispredictions regressed beyond -tol. With -trace-cache pointing at
// a warm cache (for instance the one the preceding result run
// populated), the baseline re-run replays dispatch traces instead of
// re-simulating, making the regression gate near-instant.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/runner"
	"vmopt/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := diffMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "vmbench diff:", err)
			os.Exit(1)
		}
		return
	}

	exp := flag.String("exp", "all", "experiment to regenerate (e.g. fig8, table9, all; see -list)")
	list := flag.Bool("list", false, "list valid -exp names with descriptions and exit")
	scaleDiv := flag.Int("scalediv", 1, "divide workload scales by this factor")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	format := flag.String("format", "text", "output format: text, json or csv")
	out := flag.String("out", "", "directory for output (results.txt/.json/.csv; default stdout)")
	progress := flag.Bool("progress", false, "report run progress on stderr")
	traceCache := flag.String("trace-cache", "", "directory for the dispatch-trace cache (record once, replay per machine)")
	flag.Parse()
	if flag.NArg() > 0 {
		// Without this a mistyped subcommand ("dif", "Diff") would
		// silently start the full multi-hour experiment run.
		fmt.Fprintf(os.Stderr, "vmbench: unexpected argument %q (subcommands: diff)\n", flag.Arg(0))
		os.Exit(2)
	}
	if *list {
		listExps(os.Stdout)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// In-flight simulations run to completion after the first signal
	// (only dispatch stops); unregister the handler so a second ^C
	// terminates immediately instead of being swallowed.
	context.AfterFunc(ctx, stop)
	s := newSuite(ctx, *scaleDiv, *jobs, *progress)
	if *traceCache != "" {
		s.Traces = disptrace.NewCache(*traceCache)
	}

	if err := run(os.Stdout, s, strings.ToLower(*exp), *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}
}

func diffMain(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0.02, "relative regression tolerance (0.02 = 2%)")
	jobs := fs.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report run progress on stderr")
	current := fs.String("current", "", "compare this report instead of re-running the baseline's experiments")
	traceCache := fs.String("trace-cache", "", "replay baseline runs from this dispatch-trace cache instead of re-simulating")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: vmbench diff [-tol pct] [-jobs n] [-current results.json] [-trace-cache dir] <baseline.json>")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	return runDiff(os.Stdout, ctx, fs.Arg(0), *current, *traceCache, *jobs, *tol, *progress)
}

func newSuite(ctx context.Context, scaleDiv, jobs int, progress bool) *harness.Suite {
	s := harness.NewSuite()
	s.ScaleDiv = scaleDiv
	s.Jobs = jobs
	s.Ctx = ctx
	if progress {
		s.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rvmbench: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return s
}

// runDiff compares a current report against the baseline and fails
// when any run regressed beyond tol. With currentPath empty it
// re-runs the baseline's experiments at the baseline's scale;
// otherwise it reads the pre-computed report from currentPath. A
// non-empty traceCache attaches the shared dispatch-trace cache to
// the re-run, so a warm cache (one the result-producing run already
// populated) turns the baseline check into pure trace replay —
// near-instant, and byte-identical to re-simulating.
func runDiff(stdout io.Writer, ctx context.Context, baselinePath, currentPath, traceCache string, jobs int, tol float64, progress bool) error {
	base, err := runner.ReadReportFile(baselinePath)
	if err != nil {
		return err
	}
	var cur *runner.Report
	if currentPath != "" {
		if cur, err = runner.ReadReportFile(currentPath); err != nil {
			return err
		}
	} else {
		s := newSuite(ctx, base.ScaleDiv, jobs, progress)
		if traceCache != "" {
			s.Traces = disptrace.NewCache(traceCache)
		}
		if cur, err = collect(s, base.Exp); err != nil {
			return err
		}
	}
	regs, err := runner.Diff(base, cur, tol)
	if err != nil {
		return err
	}
	return runner.WriteDiff(stdout, regs, len(base.Runs), tol)
}

// expOutput is one experiment's rendered result.
type expOutput struct {
	tables []*harness.Table
	notes  []string
}

type experiment struct {
	name string
	desc string
	// composite experiments re-group other experiments' grids; "all"
	// skips them so their tables are not rendered twice.
	composite bool
	fn        func(s *harness.Suite) (expOutput, error)
}

// experiments is the dispatcher registry in paper order.
func experiments() []experiment {
	one := func(t *harness.Table, err error) (expOutput, error) {
		return expOutput{tables: []*harness.Table{t}}, err
	}
	return []experiment{
		{name: "table1", desc: "Table I: BTB predictions for loop A B A GOTO, switch vs threaded", fn: func(*harness.Suite) (expOutput, error) {
			st, tt, sm, tm := harness.TableI()
			return expOutput{
				tables: []*harness.Table{st, tt},
				notes: []string{fmt.Sprintf(
					"switch mispredictions/iteration: %d; threaded: %d", sm, tm)},
			}, nil
		}},
		{name: "table2", desc: "Table II: replication removes the loop's mispredictions", fn: func(*harness.Suite) (expOutput, error) {
			t, m := harness.TableII()
			return expOutput{tables: []*harness.Table{t},
				notes: []string{fmt.Sprintf("mispredictions/iteration: %d", m)}}, nil
		}},
		{name: "table3", desc: "Table III: bad static replication increases mispredictions", fn: func(*harness.Suite) (expOutput, error) {
			ot, mt, om, mm := harness.TableIII()
			return expOutput{tables: []*harness.Table{ot, mt},
				notes: []string{fmt.Sprintf(
					"original: %d mispredictions/iteration; bad replication: %d", om, mm)}}, nil
		}},
		{name: "table4", desc: "Table IV: a superinstruction removes the loop's mispredictions", fn: func(*harness.Suite) (expOutput, error) {
			t, m := harness.TableIV()
			return expOutput{tables: []*harness.Table{t},
				notes: []string{fmt.Sprintf("mispredictions/iteration: %d", m)}}, nil
		}},
		{name: "table5", desc: "Table V: dispatch and work costs per technique", fn: func(s *harness.Suite) (expOutput, error) { return one(s.TableV()) }},
		{name: "table6", desc: "Table VI: the Gforth benchmark programs", fn: func(*harness.Suite) (expOutput, error) { return one(harness.TableVI(), nil) }},
		{name: "table7", desc: "Table VII: the SPECjvm98 benchmark programs", fn: func(*harness.Suite) (expOutput, error) { return one(harness.TableVII(), nil) }},
		{name: "table8", desc: "Table VIII: static code growth by technique", fn: func(s *harness.Suite) (expOutput, error) { return one(s.TableVIII()) }},
		{name: "table9", desc: "Table IX: dynamic code growth (Gforth)", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.TableIX(); return one(t, err) }},
		{name: "table10", desc: "Table X: dynamic code growth (JVM)", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.TableX(); return one(t, err) }},
		{name: "fig7", desc: "Figure 7: Gforth speedups over plain, Celeron-800", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure7(); return one(t, err) }},
		{name: "fig8", desc: "Figure 8: Gforth speedups over plain, Pentium 4", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure8(); return one(t, err) }},
		{name: "fig9", desc: "Figure 9: Java interpreter speedups over plain, Pentium 4", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure9(); return one(t, err) }},
		{name: "fig10", desc: "Figure 10: performance counters for bench-gc (Gforth)", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure10(); return one(t, err) }},
		{name: "fig11", desc: "Figure 11: performance counters for brew (Gforth)", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure11(); return one(t, err) }},
		{name: "fig12", desc: "Figure 12: performance counters for mpegaudio (Java)", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure12(); return one(t, err) }},
		{name: "fig13", desc: "Figure 13: performance counters for compress (Java)", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure13(); return one(t, err) }},
		{name: "fig14", desc: "Figure 14: static replication/superinstruction mix, bench-gc", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure14(); return one(t, err) }},
		{name: "fig15", desc: "Figure 15: static mix timing, mpegaudio", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure15(); return one(t, err) }},
		{name: "fig16", desc: "Figure 16: static mix mispredictions, mpegaudio", fn: func(s *harness.Suite) (expOutput, error) { _, t, err := s.Figure16(); return one(t, err) }},
		{name: "rates", desc: "Section 3: misprediction rates, switch vs threaded dispatch", fn: func(s *harness.Suite) (expOutput, error) { _, _, t, err := s.MispredictRates(); return one(t, err) }},
		{name: "fractions", desc: "Section 7.2.2: indirect branches as % of retired instructions", fn: func(s *harness.Suite) (expOutput, error) { _, _, t, err := s.BranchFractions(); return one(t, err) }},
		{name: "predictors", desc: "Section 8: BTB vs 2-bit vs two-level predictor rates", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.PredictorComparison(); return one(t, err) }},
		{name: "parse", desc: "Ablation: greedy vs optimal superinstruction parse", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.GreedyVsOptimal(); return one(t, err) }},
		{name: "selection", desc: "Ablation: round-robin vs random replica selection", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.RoundRobinVsRandom(); return one(t, err) }},
		{name: "btbsize", desc: "Ablation: misprediction rate vs BTB capacity (gray)", fn: func(s *harness.Suite) (expOutput, error) {
			w, err := workload.ByName("gray")
			if err != nil {
				return expOutput{}, err
			}
			t, _, err := s.BTBSizeSweep(w)
			return one(t, err)
		}},
		{name: "penalty", desc: "Ablation: across-bb speedup, 20- vs 30-cycle penalty", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.PenaltySweep(); return one(t, err) }},
		{name: "caseblock", desc: "Ablation: switch dispatch under a case block table", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.CaseBlockExperiment(); return one(t, err) }},
		{name: "lengths", desc: "Ablation: executed superinstruction lengths", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.SuperLengths(); return one(t, err) }},
		{name: "hardware", desc: "Ablation: software techniques on BTB vs two-level hardware", fn: func(s *harness.Suite) (expOutput, error) { t, _, err := s.HardwareVsSoftware(); return one(t, err) }},
		{name: "history", desc: "Ablation: two-level predictor rate vs history length (gray)", fn: func(s *harness.Suite) (expOutput, error) {
			w, err := workload.ByName("gray")
			if err != nil {
				return expOutput{}, err
			}
			t, _, err := s.TwoLevelHistorySweep(w)
			return one(t, err)
		}},
		{name: "sweep", desc: "all machine-sensitivity sweeps (btbsize, penalty, predictors, hardware, history); pairs well with -trace-cache", composite: true, fn: machineSweep},
	}
}

// machineSweep bundles every experiment that varies only the machine
// model over fixed (workload, variant) pairs — the grids where the
// dispatch-trace cache collapses each pair to one recording plus
// cheap replays.
func machineSweep(s *harness.Suite) (expOutput, error) {
	gray, err := workload.ByName("gray")
	if err != nil {
		return expOutput{}, err
	}
	var out expOutput
	add := func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		out.tables = append(out.tables, t)
		return nil
	}
	if t, _, err := s.BTBSizeSweep(gray); add(t, err) != nil {
		return expOutput{}, err
	}
	if t, _, err := s.PenaltySweep(); add(t, err) != nil {
		return expOutput{}, err
	}
	if t, _, err := s.PredictorComparison(); add(t, err) != nil {
		return expOutput{}, err
	}
	if t, _, err := s.HardwareVsSoftware(); add(t, err) != nil {
		return expOutput{}, err
	}
	if t, _, err := s.TwoLevelHistorySweep(gray); add(t, err) != nil {
		return expOutput{}, err
	}
	return out, nil
}

// selectExps resolves an -exp argument against the registry.
func selectExps(exp string) ([]experiment, error) {
	exps := experiments()
	if exp == "all" {
		// Composites re-group grids other entries already render.
		all := make([]experiment, 0, len(exps))
		for _, e := range exps {
			if !e.composite {
				all = append(all, e)
			}
		}
		return all, nil
	}
	for _, e := range exps {
		if e.name == exp {
			return []experiment{e}, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (run vmbench -list)", exp)
}

// listExps prints every valid -exp name with its description.
func listExps(w io.Writer) {
	fmt.Fprintln(w, "experiments (-exp NAME):")
	for _, e := range experiments() {
		fmt.Fprintf(w, "  %-11s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(w, "  all         every experiment above (composites excluded)")
}

// collect resolves an -exp argument and assembles the structured
// report for it.
func collect(s *harness.Suite, exp string) (*runner.Report, error) {
	selected, err := selectExps(exp)
	if err != nil {
		return nil, err
	}
	return collectExps(s, exp, selected)
}

// collectExps runs the selected experiments and assembles the
// structured report: every rendered table plus every underlying
// simulated run.
func collectExps(s *harness.Suite, exp string, selected []experiment) (*runner.Report, error) {
	// Host metadata documents the capture environment (notably the
	// core count behind any parallel-replay wall-clock claims); the
	// simulated runs themselves are host-independent and Diff ignores
	// the block.
	r := &runner.Report{Schema: runner.SchemaVersion, Exp: exp, ScaleDiv: s.ScaleDiv, Host: runner.CurrentHost()}
	for _, e := range selected {
		out, err := e.fn(s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		re := runner.Experiment{Name: e.name, Notes: out.notes}
		for _, t := range out.tables {
			re.Tables = append(re.Tables, runner.Table{
				ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
			})
		}
		r.Experiments = append(r.Experiments, re)
	}
	r.Runs = s.Snapshot()
	return r, nil
}

// outSink resolves the output destination: stdout, or a results file
// in outDir. The returned close function reports flush-to-disk
// failures and must be checked.
func outSink(stdout io.Writer, outDir, format string) (io.Writer, func() error, error) {
	if outDir == "" {
		return stdout, func() error { return nil }, nil
	}
	ext := format
	if format == "text" {
		ext = "txt"
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(outDir, "results."+ext))
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// run is the dispatcher: it executes the selected experiments and
// writes them in the requested format.
func run(stdout io.Writer, s *harness.Suite, exp, format, outDir string) error {
	selected, err := selectExps(exp)
	if err != nil {
		return err
	}
	switch format {
	case "text", "json", "csv":
	default:
		return fmt.Errorf("unknown format %q (want text, json or csv)", format)
	}
	w, closeSink, err := outSink(stdout, outDir, format)
	if err != nil {
		return err
	}
	werr := writeOutput(w, s, exp, format, selected)
	cerr := closeSink()
	if werr != nil {
		return werr
	}
	return cerr
}

func writeOutput(w io.Writer, s *harness.Suite, exp, format string, selected []experiment) error {
	if format == "text" {
		// Stream tables as each experiment finishes.
		for _, e := range selected {
			out, err := e.fn(s)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			for _, t := range out.tables {
				fmt.Fprintln(w, t)
			}
			for _, n := range out.notes {
				fmt.Fprintf(w, "%s\n\n", n)
			}
		}
		return nil
	}
	report, err := collectExps(s, exp, selected)
	if err != nil {
		return err
	}
	if format == "json" {
		return report.WriteJSON(w)
	}
	return report.WriteCSV(w)
}
