// Command vmbench regenerates the tables and figures of the paper's
// evaluation section from the simulation substrate.
//
// Usage:
//
//	vmbench                 # regenerate everything
//	vmbench -exp fig8       # one experiment
//	vmbench -scalediv 10    # reduced workload scale (faster)
//
// Experiments: table1 table2 table3 table4 table5 table6 table7
// table8 table9 table10 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16 rates fractions predictors, the ablations parse
// selection btbsize penalty caseblock lengths hardware history, and all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vmopt/internal/harness"
	"vmopt/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (e.g. fig8, table9, all)")
	scaleDiv := flag.Int("scalediv", 1, "divide workload scales by this factor")
	flag.Parse()

	s := harness.NewSuite()
	s.ScaleDiv = *scaleDiv

	if err := run(os.Stdout, s, strings.ToLower(*exp)); err != nil {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, s *harness.Suite, exp string) error {
	type experiment struct {
		name string
		fn   func() error
	}
	show := func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t)
		return nil
	}
	exps := []experiment{
		{"table1", func() error {
			st, tt, sm, tm := harness.TableI()
			fmt.Fprintln(w, st)
			fmt.Fprintln(w, tt)
			fmt.Fprintf(w, "switch mispredictions/iteration: %d; threaded: %d\n\n", sm, tm)
			return nil
		}},
		{"table2", func() error {
			t, m := harness.TableII()
			fmt.Fprintln(w, t)
			fmt.Fprintf(w, "mispredictions/iteration: %d\n\n", m)
			return nil
		}},
		{"table3", func() error {
			ot, mt, om, mm := harness.TableIII()
			fmt.Fprintln(w, ot)
			fmt.Fprintln(w, mt)
			fmt.Fprintf(w, "original: %d mispredictions/iteration; bad replication: %d\n\n", om, mm)
			return nil
		}},
		{"table4", func() error {
			t, m := harness.TableIV()
			fmt.Fprintln(w, t)
			fmt.Fprintf(w, "mispredictions/iteration: %d\n\n", m)
			return nil
		}},
		{"table5", func() error { t, err := s.TableV(); return show(t, err) }},
		{"table6", func() error { return show(harness.TableVI(), nil) }},
		{"table7", func() error { return show(harness.TableVII(), nil) }},
		{"table8", func() error { t, err := s.TableVIII(); return show(t, err) }},
		{"table9", func() error { t, _, err := s.TableIX(); return show(t, err) }},
		{"table10", func() error { t, _, err := s.TableX(); return show(t, err) }},
		{"fig7", func() error { _, t, err := s.Figure7(); return show(t, err) }},
		{"fig8", func() error { _, t, err := s.Figure8(); return show(t, err) }},
		{"fig9", func() error { _, t, err := s.Figure9(); return show(t, err) }},
		{"fig10", func() error { _, t, err := s.Figure10(); return show(t, err) }},
		{"fig11", func() error { _, t, err := s.Figure11(); return show(t, err) }},
		{"fig12", func() error { _, t, err := s.Figure12(); return show(t, err) }},
		{"fig13", func() error { _, t, err := s.Figure13(); return show(t, err) }},
		{"fig14", func() error { _, t, err := s.Figure14(); return show(t, err) }},
		{"fig15", func() error { _, t, err := s.Figure15(); return show(t, err) }},
		{"fig16", func() error { _, t, err := s.Figure16(); return show(t, err) }},
		{"rates", func() error { _, _, t, err := s.MispredictRates(); return show(t, err) }},
		{"fractions", func() error { _, _, t, err := s.BranchFractions(); return show(t, err) }},
		{"predictors", func() error { t, _, err := s.PredictorComparison(); return show(t, err) }},
		{"parse", func() error { t, _, err := s.GreedyVsOptimal(); return show(t, err) }},
		{"selection", func() error { t, _, err := s.RoundRobinVsRandom(); return show(t, err) }},
		{"btbsize", func() error {
			w, err := workload.ByName("gray")
			if err != nil {
				return err
			}
			t, _, err := s.BTBSizeSweep(w)
			return show(t, err)
		}},
		{"penalty", func() error { t, _, err := s.PenaltySweep(); return show(t, err) }},
		{"caseblock", func() error { t, _, err := s.CaseBlockExperiment(); return show(t, err) }},
		{"lengths", func() error { t, _, err := s.SuperLengths(); return show(t, err) }},
		{"hardware", func() error { t, _, err := s.HardwareVsSoftware(); return show(t, err) }},
		{"history", func() error {
			w, err := workload.ByName("gray")
			if err != nil {
				return err
			}
			t, _, err := s.TwoLevelHistorySweep(w)
			return show(t, err)
		}},
	}

	if exp == "all" {
		for _, e := range exps {
			if err := e.fn(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
		return nil
	}
	for _, e := range exps {
		if e.name == exp {
			return e.fn()
		}
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
