package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmopt/internal/harness"
	"vmopt/internal/runner"
)

func testSuite(scaleDiv int) *harness.Suite {
	s := harness.NewSuite()
	s.ScaleDiv = scaleDiv
	return s
}

// TestRunKnownExperiments smoke-tests the cheap experiments through
// the dispatcher (the expensive figures are covered by the harness
// package's own tests).
func TestRunKnownExperiments(t *testing.T) {
	s := testSuite(40)
	for _, exp := range []string{"table1", "table2", "table3", "table4", "table6", "table7"} {
		if err := run(io.Discard, s, exp, "text", ""); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, testSuite(1), "fig99", "text", ""); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run(io.Discard, testSuite(1), "table6", "yaml", ""); err == nil {
		t.Error("unknown format should error")
	}
}

// TestRunSingleExperimentSelection: -exp selects exactly one
// experiment's tables.
func TestRunSingleExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, testSuite(40), "table6", "text", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table VI") {
		t.Errorf("table6 output missing its table:\n%s", out)
	}
	if strings.Contains(out, "Table VII") {
		t.Error("selecting table6 also rendered table7")
	}
}

// TestJSONRoundTrip: -format json emits a schema-versioned report
// that parses back and re-serializes to identical bytes.
func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(50)
	if err := run(&buf, s, "table5", "json", ""); err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exp != "table5" || rep.ScaleDiv != 50 {
		t.Errorf("report meta wrong: exp=%q scalediv=%d", rep.Exp, rep.ScaleDiv)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "table5" {
		t.Fatalf("want one table5 experiment, got %+v", rep.Experiments)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("report carries no runs")
	}
	var buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSON round trip not byte-identical")
	}
}

// TestCSVRoundTrip: the CSV form carries the same runs as the JSON
// form and parses back exactly.
func TestCSVRoundTrip(t *testing.T) {
	s := testSuite(50)
	var jsonBuf, csvBuf bytes.Buffer
	if err := run(&jsonBuf, s, "table5", "json", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&csvBuf, s, "table5", "csv", ""); err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ReadReport(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := runner.ReadRunsCSV(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(rep.Runs) {
		t.Fatalf("CSV has %d runs, JSON has %d", len(runs), len(rep.Runs))
	}
	for i := range runs {
		if runs[i] != rep.Runs[i] {
			t.Errorf("run %d: CSV %+v != JSON %+v", i, runs[i], rep.Runs[i])
		}
	}
}

// TestOutDir: -out writes the report into the directory for every
// format, including text.
func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, testSuite(50), "table5", "json", dir); err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ReadReportFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		t.Error("written report carries no runs")
	}
	if err := run(io.Discard, testSuite(40), "table6", "text", dir); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "results.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "Table VI") {
		t.Errorf("text output file missing table:\n%s", txt)
	}
}

// TestDiffCleanAndPerturbed: diff against a matching baseline passes;
// against a perturbed baseline (faster cycles than we can reproduce)
// it must fail.
func TestDiffCleanAndPerturbed(t *testing.T) {
	ctx := context.Background()
	s := testSuite(50)
	rep, err := collect(s, "table5")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name string, r *runner.Report) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return path
	}

	clean := write("baseline.json", rep)
	if err := runDiff(io.Discard, ctx, clean, "", 0, 0.02, false); err != nil {
		t.Errorf("diff against own baseline should pass: %v", err)
	}
	// -current: compare a pre-computed report without re-running.
	if err := runDiff(io.Discard, ctx, clean, clean, 0, 0.02, false); err != nil {
		t.Errorf("diff with -current against itself should pass: %v", err)
	}

	// Perturb: pretend the baseline was 20% faster than reality.
	perturbed, err := runner.ReadReportFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perturbed.Runs {
		perturbed.Runs[i].Counters.Cycles *= 0.8
	}
	var buf bytes.Buffer
	bad := write("perturbed.json", perturbed)
	if err := runDiff(&buf, ctx, bad, "", 0, 0.02, false); err == nil {
		t.Error("diff against perturbed baseline should fail")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("diff output missing regression lines:\n%s", buf.String())
	}
}
