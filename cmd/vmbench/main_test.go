package main

import (
	"io"
	"testing"

	"vmopt/internal/harness"
)

// TestRunKnownExperiments smoke-tests the cheap experiments through
// the dispatcher (the expensive figures are covered by the harness
// package's own tests).
func TestRunKnownExperiments(t *testing.T) {
	s := harness.NewSuite()
	s.ScaleDiv = 40
	for _, exp := range []string{"table1", "table2", "table3", "table4", "table6", "table7"} {
		if err := run(io.Discard, s, exp); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := harness.NewSuite()
	if err := run(io.Discard, s, "fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}
