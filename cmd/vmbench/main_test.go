package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/runner"
)

func testSuite(scaleDiv int) *harness.Suite {
	s := harness.NewSuite()
	s.ScaleDiv = scaleDiv
	return s
}

// TestRunKnownExperiments smoke-tests the cheap experiments through
// the dispatcher (the expensive figures are covered by the harness
// package's own tests).
func TestRunKnownExperiments(t *testing.T) {
	s := testSuite(40)
	for _, exp := range []string{"table1", "table2", "table3", "table4", "table6", "table7"} {
		if err := run(io.Discard, s, exp, "text", ""); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, testSuite(1), "fig99", "text", ""); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run(io.Discard, testSuite(1), "table6", "yaml", ""); err == nil {
		t.Error("unknown format should error")
	}
}

// TestRunSingleExperimentSelection: -exp selects exactly one
// experiment's tables.
func TestRunSingleExperimentSelection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, testSuite(40), "table6", "text", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table VI") {
		t.Errorf("table6 output missing its table:\n%s", out)
	}
	if strings.Contains(out, "Table VII") {
		t.Error("selecting table6 also rendered table7")
	}
}

// TestJSONRoundTrip: -format json emits a schema-versioned report
// that parses back and re-serializes to identical bytes.
func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := testSuite(50)
	if err := run(&buf, s, "table5", "json", ""); err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exp != "table5" || rep.ScaleDiv != 50 {
		t.Errorf("report meta wrong: exp=%q scalediv=%d", rep.Exp, rep.ScaleDiv)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "table5" {
		t.Fatalf("want one table5 experiment, got %+v", rep.Experiments)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("report carries no runs")
	}
	var buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSON round trip not byte-identical")
	}
}

// TestCSVRoundTrip: the CSV form carries the same runs as the JSON
// form and parses back exactly.
func TestCSVRoundTrip(t *testing.T) {
	s := testSuite(50)
	var jsonBuf, csvBuf bytes.Buffer
	if err := run(&jsonBuf, s, "table5", "json", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&csvBuf, s, "table5", "csv", ""); err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ReadReport(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := runner.ReadRunsCSV(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(rep.Runs) {
		t.Fatalf("CSV has %d runs, JSON has %d", len(runs), len(rep.Runs))
	}
	for i := range runs {
		if runs[i] != rep.Runs[i] {
			t.Errorf("run %d: CSV %+v != JSON %+v", i, runs[i], rep.Runs[i])
		}
	}
}

// TestOutDir: -out writes the report into the directory for every
// format, including text.
func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, testSuite(50), "table5", "json", dir); err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ReadReportFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		t.Error("written report carries no runs")
	}
	if err := run(io.Discard, testSuite(40), "table6", "text", dir); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "results.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "Table VI") {
		t.Errorf("text output file missing table:\n%s", txt)
	}
}

// TestListExps: every registry entry appears as its own -list line
// with a description, and the selectable names all resolve. Matching
// is anchored per line so a prefix-shadowed name ("table1" inside
// "table10") cannot mask a missing entry.
func TestListExps(t *testing.T) {
	var buf bytes.Buffer
	listExps(&buf)
	listed := make(map[string]string) // name -> description column
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if strings.HasPrefix(line, "  ") && len(fields) >= 2 {
			listed[fields[0]] = strings.Join(fields[1:], " ")
		}
	}
	for _, e := range experiments() {
		if desc, ok := listed[e.name]; !ok {
			t.Errorf("-list output missing experiment %q", e.name)
		} else if desc == "" {
			t.Errorf("experiment %q listed without a description", e.name)
		}
		if e.desc == "" {
			t.Errorf("experiment %q has no description", e.name)
		}
		if _, err := selectExps(e.name); err != nil {
			t.Errorf("selectExps(%q): %v", e.name, err)
		}
	}
	if _, ok := listed["all"]; !ok {
		t.Error("-list output missing the all pseudo-experiment")
	}
}

// TestAllExcludesComposites: "all" must not render composite
// experiments (their tables would duplicate the standalone entries).
func TestAllExcludesComposites(t *testing.T) {
	all, err := selectExps("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if e.composite {
			t.Errorf("composite experiment %q included in all", e.name)
		}
	}
	if _, err := selectExps("sweep"); err != nil {
		t.Errorf("sweep must stay individually selectable: %v", err)
	}
}

// TestSweepWithTraceCache: the composite sweep runs under a trace
// cache and produces byte-identical structured runs to a no-cache
// suite; the warm cache reuses the recorded traces.
func TestSweepWithTraceCache(t *testing.T) {
	plain, err := collect(testSuite(40), "sweep")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Runs) == 0 {
		t.Fatal("sweep produced no runs")
	}

	dir := t.TempDir()
	cached := testSuite(40)
	cached.Traces = disptrace.NewCache(dir)
	got, err := collect(cached, "sweep")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(plain.Runs) {
		t.Fatalf("trace-cached sweep has %d runs, plain %d", len(got.Runs), len(plain.Runs))
	}
	for i := range got.Runs {
		if got.Runs[i] != plain.Runs[i] {
			t.Errorf("run %d diverged under trace cache:\n  plain  %+v\n  cached %+v",
				i, plain.Runs[i], got.Runs[i])
		}
	}
	traces, err := filepath.Glob(filepath.Join(dir, "*.vmdt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Error("sweep recorded no traces")
	}

	warm := testSuite(40)
	warm.Traces = disptrace.NewCache(dir)
	again, err := collect(warm, "sweep")
	if err != nil {
		t.Fatal(err)
	}
	for i := range again.Runs {
		if again.Runs[i] != plain.Runs[i] {
			t.Errorf("warm-cache run %d diverged:\n  plain %+v\n  warm  %+v",
				i, plain.Runs[i], again.Runs[i])
		}
	}
}

// TestDiffWithTraceCache: the trace-cache-aware regression gate. A
// result run populates the cache; the diff re-run replays from it and
// reaches the same verdict as a direct re-simulation — pass against
// the true baseline, fail against a perturbed one — while recording
// nothing new (the near-instant CI path).
func TestDiffWithTraceCache(t *testing.T) {
	ctx := context.Background()
	cacheDir := t.TempDir()

	s := testSuite(50)
	s.Traces = disptrace.NewCache(cacheDir)
	rep, err := collect(s, "table5")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(cacheDir, "*.vmdt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("result run populated no traces")
	}

	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	f, err := os.Create(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runDiff(io.Discard, ctx, baseline, "", cacheDir, 0, 0.02, false); err != nil {
		t.Errorf("cached diff against own baseline should pass: %v", err)
	}
	after, err := filepath.Glob(filepath.Join(cacheDir, "*.vmdt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(traces) {
		t.Errorf("cached diff changed the cache: %d traces before, %d after", len(traces), len(after))
	}

	perturbed, err := runner.ReadReportFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perturbed.Runs {
		perturbed.Runs[i].Counters.Cycles *= 0.8
	}
	bad := filepath.Join(dir, "perturbed.json")
	bf, err := os.Create(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := perturbed.WriteJSON(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(io.Discard, ctx, bad, "", cacheDir, 0, 0.02, false); err == nil {
		t.Error("cached diff against perturbed baseline should fail")
	}
}

// TestDiffCleanAndPerturbed: diff against a matching baseline passes;
// against a perturbed baseline (faster cycles than we can reproduce)
// it must fail.
func TestDiffCleanAndPerturbed(t *testing.T) {
	ctx := context.Background()
	s := testSuite(50)
	rep, err := collect(s, "table5")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name string, r *runner.Report) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := r.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return path
	}

	clean := write("baseline.json", rep)
	if err := runDiff(io.Discard, ctx, clean, "", "", 0, 0.02, false); err != nil {
		t.Errorf("diff against own baseline should pass: %v", err)
	}
	// -current: compare a pre-computed report without re-running.
	if err := runDiff(io.Discard, ctx, clean, clean, "", 0, 0.02, false); err != nil {
		t.Errorf("diff with -current against itself should pass: %v", err)
	}

	// Perturb: pretend the baseline was 20% faster than reality.
	perturbed, err := runner.ReadReportFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perturbed.Runs {
		perturbed.Runs[i].Counters.Cycles *= 0.8
	}
	var buf bytes.Buffer
	bad := write("perturbed.json", perturbed)
	if err := runDiff(&buf, ctx, bad, "", "", 0, 0.02, false); err == nil {
		t.Error("diff against perturbed baseline should fail")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("diff output missing regression lines:\n%s", buf.String())
	}
}
