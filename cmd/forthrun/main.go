// Command forthrun compiles and runs a Forth program under any
// dispatch technique on any machine model, printing the program
// output and the simulated hardware counters.
//
// Usage:
//
//	forthrun -e ': sq dup * ; 7 sq .'
//	forthrun -tech "across bb" -machine pentium4-northwood prog.fs
package main

import (
	"flag"
	"fmt"
	"os"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
)

func main() {
	expr := flag.String("e", "", "program text (instead of a file argument)")
	tech := flag.String("tech", "plain", "dispatch technique (paper name, e.g. 'across bb')")
	machine := flag.String("machine", "celeron-800", "machine model")
	maxSteps := flag.Uint64("maxsteps", 1_000_000_000, "VM instruction limit")
	flag.Parse()

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "forthrun: need -e 'code' or a source file")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	t, err := core.TechniqueByName(*tech)
	if err != nil {
		fatal(err)
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	prog, err := forth.Compile(src)
	if err != nil {
		fatal(err)
	}
	vm := prog.NewVM(4096)
	var leaders []int
	for _, xt := range prog.Words {
		leaders = append(leaders, xt)
	}
	plan, err := core.BuildPlan(vm.Code(), forthvm.ISA(), core.Config{
		Technique: t, ExtraLeaders: leaders,
	})
	if err != nil {
		fatal(err)
	}
	sim := cpu.NewSim(m)
	c, err := core.Run(vm, plan, sim, *maxSteps)
	if err != nil {
		fatal(err)
	}
	if len(vm.Out) > 0 {
		fmt.Printf("output: %s\n", vm.Out)
	}
	fmt.Printf("technique: %s on %s\n", t, m.Name)
	fmt.Printf("counters:  %s\n", c)
	fmt.Printf("VM instructions: %d, simulated time: %.6fs\n", c.VMInstructions, sim.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "forthrun:", err)
	os.Exit(1)
}
