package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file with current output")

// TestGoldenOutput locks the rendered Tables I-IV byte for byte.
// Regenerate deliberately with: go test ./cmd/btbtrace -update
func TestGoldenOutput(t *testing.T) {
	var buf bytes.Buffer
	emit(&buf)
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output diverged from golden file (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestMispredictionCounts pins the paper's per-iteration numbers
// independently of table formatting: switch dispatch mispredicts all
// 4 dispatches, threaded 2; replication and superinstructions reach
// 0; bad replication worsens 2 to 3.
func TestMispredictionCounts(t *testing.T) {
	var buf bytes.Buffer
	emit(&buf)
	out := buf.String()
	checks := []struct {
		re   string
		want []int
	}{
		{`switch: (\d+) mispredictions per iteration; threaded: (\d+)`, []int{4, 2}},
		{`with two replicas of A: (\d+) mispredictions per iteration`, []int{0}},
		{`bad replication: (\d+) -> (\d+) mispredictions per iteration`, []int{2, 3}},
		{`with superinstruction B_A: (\d+) mispredictions per iteration`, []int{0}},
	}
	for _, c := range checks {
		m := regexp.MustCompile(c.re).FindStringSubmatch(out)
		if m == nil {
			t.Errorf("output missing %q:\n%s", c.re, out)
			continue
		}
		for i, want := range c.want {
			if got, _ := strconv.Atoi(m[i+1]); got != want {
				t.Errorf("%q capture %d: got %d, want %d", c.re, i+1, got, want)
			}
		}
	}
}
