// Command btbtrace prints the paper's worked examples (Tables I-IV):
// step-by-step BTB behaviour for the loop "A B A GOTO" under switch
// dispatch, threaded code, replication and superinstructions.
package main

import (
	"fmt"
	"io"
	"os"

	"vmopt/internal/harness"
)

func main() {
	emit(os.Stdout)
}

// emit renders all four worked examples. Its output is locked by a
// golden test; the per-iteration misprediction counts are the paper's
// headline numbers for Sections 3 and 4.
func emit(w io.Writer) {
	st, tt, sm, tm := harness.TableI()
	fmt.Fprintln(w, st)
	fmt.Fprintln(w, tt)
	fmt.Fprintf(w, "switch: %d mispredictions per iteration; threaded: %d\n\n", sm, tm)

	t2, m2 := harness.TableII()
	fmt.Fprintln(w, t2)
	fmt.Fprintf(w, "with two replicas of A: %d mispredictions per iteration\n\n", m2)

	o3, m3, om, mm := harness.TableIII()
	fmt.Fprintln(w, o3)
	fmt.Fprintln(w, m3)
	fmt.Fprintf(w, "bad replication: %d -> %d mispredictions per iteration\n\n", om, mm)

	t4, m4 := harness.TableIV()
	fmt.Fprintln(w, t4)
	fmt.Fprintf(w, "with superinstruction B_A: %d mispredictions per iteration\n", m4)
}
