// Command btbtrace prints the paper's worked examples (Tables I-IV):
// step-by-step BTB behaviour for the loop "A B A GOTO" under switch
// dispatch, threaded code, replication and superinstructions.
package main

import (
	"fmt"

	"vmopt/internal/harness"
)

func main() {
	st, tt, sm, tm := harness.TableI()
	fmt.Println(st)
	fmt.Println(tt)
	fmt.Printf("switch: %d mispredictions per iteration; threaded: %d\n\n", sm, tm)

	t2, m2 := harness.TableII()
	fmt.Println(t2)
	fmt.Printf("with two replicas of A: %d mispredictions per iteration\n\n", m2)

	o3, m3, om, mm := harness.TableIII()
	fmt.Println(o3)
	fmt.Println(m3)
	fmt.Printf("bad replication: %d -> %d mispredictions per iteration\n\n", om, mm)

	t4, m4 := harness.TableIV()
	fmt.Println(t4)
	fmt.Printf("with superinstruction B_A: %d mispredictions per iteration\n", m4)
}
