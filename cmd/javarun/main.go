// Command javarun assembles and runs a jasm program under any
// dispatch technique on any machine model, printing the program
// output and the simulated hardware counters.
//
// Usage:
//
//	javarun -tech "dynamic super" prog.jasm
package main

import (
	"flag"
	"fmt"
	"os"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/jvm"
)

func main() {
	tech := flag.String("tech", "plain", "dispatch technique (paper name)")
	machine := flag.String("machine", "pentium4-northwood", "machine model")
	maxSteps := flag.Uint64("maxsteps", 1_000_000_000, "VM instruction limit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "javarun: need a .jasm source file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	t, err := core.TechniqueByName(*tech)
	if err != nil {
		fatal(err)
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	prog, err := jvm.Assemble(string(data))
	if err != nil {
		fatal(err)
	}
	vm := jvm.NewVM(prog)
	plan, err := core.BuildPlan(vm.Code(), jvm.ISA(), core.Config{
		Technique: t, ExtraLeaders: prog.EntryPoints(),
	})
	if err != nil {
		fatal(err)
	}
	sim := cpu.NewSim(m)
	c, err := core.Run(vm, plan, sim, *maxSteps)
	if err != nil {
		fatal(err)
	}
	if len(vm.Out) > 0 {
		fmt.Printf("output: %s\n", vm.Out)
	}
	fmt.Printf("technique: %s on %s\n", t, m.Name)
	fmt.Printf("counters:  %s\n", c)
	fmt.Printf("VM instructions: %d, simulated time: %.6fs\n", c.VMInstructions, sim.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "javarun:", err)
	os.Exit(1)
}
