package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecordReplayInfoVerify walks the full CLI surface: record a
// small trace, inspect it, replay it on a different machine, and
// verify byte-identical equivalence against direct simulation.
func TestRecordReplayInfoVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gray.vmdt")

	var rec bytes.Buffer
	err := run(&rec, []string{"record", "-bench", "gray", "-variant", "plain",
		"-scalediv", "40", "-o", path})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !strings.Contains(rec.String(), "recorded gray/plain") {
		t.Errorf("record output unexpected:\n%s", rec.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}

	var info bytes.Buffer
	if err := run(&info, []string{"info", path}); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"workload:   gray (forth)", "variant:    plain", "dispatches",
		"flate", "compression"} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, info.String())
		}
	}
	// -segments lists per-segment codec and stored -> raw sizes.
	var segs bytes.Buffer
	if err := run(&segs, []string{"info", "-segments", path}); err != nil {
		t.Fatalf("info -segments: %v", err)
	}
	if !strings.Contains(segs.String(), "seg    0: flate") {
		t.Errorf("info -segments missing per-segment lines:\n%s", segs.String())
	}

	// Replay on a machine other than the recording one, with
	// -verify: the command itself asserts byte-identity.
	var rep bytes.Buffer
	err = run(&rep, []string{"replay", "-machine", "pentium4-northwood", "-verify", path})
	if err != nil {
		t.Fatalf("replay -verify: %v", err)
	}
	if !strings.Contains(rep.String(), "verify OK") {
		t.Errorf("verify did not report OK:\n%s", rep.String())
	}
}

// TestRecordRawCodec: -codec raw writes uncompressed segments that
// verify just like compressed ones.
func TestRecordRawCodec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.vmdt")
	err := run(io.Discard, []string{"record", "-bench", "gray", "-variant", "plain",
		"-scalediv", "40", "-codec", "raw", "-o", path})
	if err != nil {
		t.Fatalf("record -codec raw: %v", err)
	}
	var info bytes.Buffer
	if err := run(&info, []string{"info", path}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(info.String(), "raw") || strings.Contains(info.String(), "flate") {
		t.Errorf("raw-codec trace reported wrong codecs:\n%s", info.String())
	}
	var rep bytes.Buffer
	if err := run(&rep, []string{"replay", "-verify", path}); err != nil {
		t.Fatalf("replay -verify: %v", err)
	}
	if !strings.Contains(rep.String(), "verify OK") {
		t.Errorf("verify did not report OK:\n%s", rep.String())
	}

	// And an unknown codec name errors.
	if err := run(io.Discard, []string{"record", "-bench", "gray", "-variant", "plain",
		"-codec", "zstd", "-o", path}); err == nil {
		t.Error("unknown codec should error")
	}
}

func TestBadUsage(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"record", "-o", "x.vmdt"},   // missing -bench
		{"record", "-bench", "gray"}, // missing -o
		{"record", "-bench", "nosuch", "-o", "x"},
		{"replay"},                            // missing file
		{"replay", "a", "b"},                  // too many files
		{"replay", "-machine", "nosuch", "x"}, // unknown machine
		{"info"},
	} {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestReplayRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.vmdt")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"replay", path}); err == nil {
		t.Error("corrupt trace must error")
	}
	if err := run(io.Discard, []string{"info", path}); err == nil {
		t.Error("corrupt trace must error in info too")
	}
}
