package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecordReplayInfoVerify walks the full CLI surface: record a
// small trace, inspect it, replay it on a different machine, and
// verify byte-identical equivalence against direct simulation.
func TestRecordReplayInfoVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gray.vmdt")

	var rec bytes.Buffer
	err := run(&rec, []string{"record", "-bench", "gray", "-variant", "plain",
		"-scalediv", "40", "-o", path})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !strings.Contains(rec.String(), "recorded gray/plain") {
		t.Errorf("record output unexpected:\n%s", rec.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}

	var info bytes.Buffer
	if err := run(&info, []string{"info", path}); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"workload:   gray (forth)", "variant:    plain", "dispatches",
		"flate", "compression"} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, info.String())
		}
	}
	// -segments lists per-segment codec and stored -> raw sizes.
	var segs bytes.Buffer
	if err := run(&segs, []string{"info", "-segments", path}); err != nil {
		t.Fatalf("info -segments: %v", err)
	}
	if !strings.Contains(segs.String(), "seg    0: flate") {
		t.Errorf("info -segments missing per-segment lines:\n%s", segs.String())
	}

	// Replay on a machine other than the recording one, with
	// -verify: the command itself asserts byte-identity.
	var rep bytes.Buffer
	err = run(&rep, []string{"replay", "-machine", "pentium4-northwood", "-verify", path})
	if err != nil {
		t.Fatalf("replay -verify: %v", err)
	}
	if !strings.Contains(rep.String(), "verify OK") {
		t.Errorf("verify did not report OK:\n%s", rep.String())
	}
}

// TestRecordRawCodec: -codec raw writes uncompressed segments that
// verify just like compressed ones.
func TestRecordRawCodec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.vmdt")
	err := run(io.Discard, []string{"record", "-bench", "gray", "-variant", "plain",
		"-scalediv", "40", "-codec", "raw", "-o", path})
	if err != nil {
		t.Fatalf("record -codec raw: %v", err)
	}
	var info bytes.Buffer
	if err := run(&info, []string{"info", path}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(info.String(), "raw") || strings.Contains(info.String(), "flate") {
		t.Errorf("raw-codec trace reported wrong codecs:\n%s", info.String())
	}
	var rep bytes.Buffer
	if err := run(&rep, []string{"replay", "-verify", path}); err != nil {
		t.Fatalf("replay -verify: %v", err)
	}
	if !strings.Contains(rep.String(), "verify OK") {
		t.Errorf("verify did not report OK:\n%s", rep.String())
	}

	// And an unknown codec name errors.
	if err := run(io.Discard, []string{"record", "-bench", "gray", "-variant", "plain",
		"-codec", "zstd", "-o", path}); err == nil {
		t.Error("unknown codec should error")
	}
}

// TestDiffGolden pins the full `vmtrace diff` output for a switch vs
// threaded pair of one workload — the paper's Table I comparison as a
// tool. Simulation is deterministic, so the complete rendering
// (alignment totals, per-field divergence counts, the first
// divergences' addresses) must be byte-stable; a change here means
// the dispatch streams themselves moved.
func TestDiffGolden(t *testing.T) {
	dir := t.TempDir()
	swPath := filepath.Join(dir, "sw.vmdt")
	thPath := filepath.Join(dir, "th.vmdt")
	for variant, path := range map[string]string{"switch": swPath, "plain": thPath} {
		if err := run(io.Discard, []string{"record", "-bench", "gray", "-variant", variant,
			"-scalediv", "40", "-o", path}); err != nil {
			t.Fatalf("record %s: %v", variant, err)
		}
	}

	var self bytes.Buffer
	if err := run(&self, []string{"diff", swPath, swPath}); err != nil {
		t.Fatalf("self-diff: %v", err)
	}
	wantSelf := "" +
		"diff A:     gray/switch (technique switch)\n" +
		"     B:     gray/switch (technique switch)\n" +
		"workload:   gray (forth), scale 35, isa 0x098cd683601a0238\n" +
		"insts:      A 70870, B 70870 (70870 compared)\n" +
		"identical:  70870 VM instructions, 0 divergences\n"
	if self.String() != wantSelf {
		t.Errorf("self-diff output:\n%s\nwant:\n%s", self.String(), wantSelf)
	}

	var cross bytes.Buffer
	if err := run(&cross, []string{"diff", "-n", "2", swPath, thPath}); err != nil {
		t.Fatalf("cross-diff: %v", err)
	}
	wantCross := "" +
		"diff A:     gray/switch (technique switch)\n" +
		"     B:     gray/plain (technique plain)\n" +
		"workload:   gray (forth), scale 35, isa 0x098cd683601a0238\n" +
		"insts:      A 70870, B 70870 (70870 compared)\n" +
		"divergent:  70870 of 70870 compared steps (work 70869, fetch 70870, dispatch 70869)\n" +
		"first divergence at inst 0\n" +
		"  inst 0 [work fetch dispatch]:\n" +
		"    A: work 12, fetch 0x8048940, dispatch 0x80485c0 -> 0x8048970\n" +
		"    B: work 5, fetch 0x8048460, dispatch 0x8048467 -> 0x8048490\n" +
		"  inst 1 [work fetch dispatch]:\n" +
		"    A: work 14, fetch 0x8048970, dispatch 0x80485c0 -> 0x8048600\n" +
		"    B: work 7, fetch 0x8048490, dispatch 0x804849c -> 0x8048020\n"
	if cross.String() != wantCross {
		t.Errorf("cross-diff output:\n%s\nwant:\n%s", cross.String(), wantCross)
	}
}

// TestDiffRecordMode: -bench with -a/-b records both sides through a
// shared trace cache and reports the same comparison; mismatched or
// missing flags error.
func TestDiffRecordMode(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "cache")
	var out bytes.Buffer
	err := run(&out, []string{"diff", "-bench", "gray", "-a", "switch", "-b", "switch",
		"-scalediv", "40", "-trace-cache", cache})
	if err != nil {
		t.Fatalf("diff record mode: %v", err)
	}
	if !strings.Contains(out.String(), "identical:") {
		t.Errorf("same-variant diff not identical:\n%s", out.String())
	}
	// The cache now holds the recording; a second diff against a real
	// second variant reuses it.
	out.Reset()
	err = run(&out, []string{"diff", "-bench", "gray", "-a", "switch", "-b", "plain",
		"-scalediv", "40", "-trace-cache", cache})
	if err != nil {
		t.Fatalf("diff record mode (cross): %v", err)
	}
	if !strings.Contains(out.String(), "first divergence at inst 0") {
		t.Errorf("cross diff missing divergence:\n%s", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"record", "-o", "x.vmdt"},   // missing -bench
		{"record", "-bench", "gray"}, // missing -o
		{"record", "-bench", "nosuch", "-o", "x"},
		{"replay"},                            // missing file
		{"replay", "a", "b"},                  // too many files
		{"replay", "-machine", "nosuch", "x"}, // unknown machine
		{"info"},
		{"diff"},             // no files, no -bench
		{"diff", "one.vmdt"}, // one file
		{"diff", "-bench", "gray", "-a", "plain"}, // missing -b
		{"diff", "-bench", "nosuch", "-a", "x", "-b", "y"},
	} {
		if err := run(io.Discard, args); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestReplayRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.vmdt")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"replay", path}); err == nil {
		t.Error("corrupt trace must error")
	}
	if err := run(io.Discard, []string{"info", path}); err == nil {
		t.Error("corrupt trace must error in info too")
	}
}

// TestCompileSubcommand records a trace, compiles it with -verify
// (byte-identity between arena and decode replays), and checks the
// info surface reports the arena footprint.
func TestCompileSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gray.vmdt")
	if err := run(io.Discard, []string{"record", "-bench", "gray", "-variant", "plain",
		"-scalediv", "40", "-o", path}); err != nil {
		t.Fatalf("record: %v", err)
	}

	var out bytes.Buffer
	if err := run(&out, []string{"compile", "-verify", path}); err != nil {
		t.Fatalf("compile -verify: %v", err)
	}
	for _, want := range []string{"ops over", "-byte arena", "verify OK"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("compile output missing %q:\n%s", want, out.String())
		}
	}

	var info bytes.Buffer
	if err := run(&info, []string{"info", path}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(info.String(), "compiled:   ") || !strings.Contains(info.String(), "arena when hot") {
		t.Errorf("info lacks the compiled line:\n%s", info.String())
	}

	// Usage errors: no input, and files alongside -cache.
	if err := run(io.Discard, []string{"compile"}); err == nil {
		t.Error("compile with no input did not fail")
	}
	if err := run(io.Discard, []string{"compile", "-cache", t.TempDir(), path}); err == nil {
		t.Error("compile -cache with a file argument did not fail")
	}
}
