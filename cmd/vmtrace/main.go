// Command vmtrace records, inspects and replays dispatch traces
// (internal/disptrace): the machine-independent event stream of one
// simulated interpreter run, replayable against any machine model
// with counters byte-identical to direct simulation.
//
// Usage:
//
//	vmtrace record -bench gray -variant plain -o gray.vmdt
//	vmtrace record -bench compress -variant "across bb" -scalediv 10 -o c.vmdt
//	vmtrace replay -machine pentium4-northwood gray.vmdt
//	vmtrace replay -verify -machine pentium-m gray.vmdt
//	vmtrace info gray.vmdt
//
// record runs one (benchmark, variant) pair by direct simulation and
// writes its dispatch trace (flate-compressed segments by default;
// -codec raw opts out). replay drives a machine model over a trace
// and prints the counters; -verify additionally re-runs the direct
// simulation from the trace's recorded configuration and fails unless
// every counter matches byte for byte (the CI equivalence smoke).
// info prints a trace's metadata, stream statistics and the per-codec
// storage breakdown with its compression ratio; -segments lists every
// segment's codec and stored vs raw byte size.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/metrics"
	"vmopt/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmtrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: vmtrace <record|replay|info> [flags]\n" +
		"  record -bench NAME -variant NAME [-scalediv N] [-maxsteps N] [-machine NAME] [-codec raw|flate] -o FILE\n" +
		"  replay [-machine NAME] [-jobs N] [-verify] FILE\n" +
		"  info [-segments] FILE")
}

func run(stdout io.Writer, args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "record":
		return recordMain(stdout, args[1:])
	case "replay":
		return replayMain(stdout, args[1:])
	case "info":
		return infoMain(stdout, args[1:])
	default:
		return usage()
	}
}

func recordMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (see cmd/vmbench tables VI/VII)")
	variant := fs.String("variant", "plain", "interpreter variant label (Section 7.1 lists, or \"switch\")")
	scaleDiv := fs.Int("scalediv", 1, "divide the workload's default scale by this factor")
	maxSteps := fs.Uint64("maxsteps", 200_000_000, "VM step bound")
	machine := fs.String("machine", cpu.Celeron800.Name, "machine model of the recording run")
	codec := fs.String("codec", "flate", "segment payload codec (raw or flate)")
	out := fs.String("o", "", "output trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" || *out == "" {
		return fmt.Errorf("record: -bench and -o are required")
	}
	c, err := disptrace.CodecByName(*codec)
	if err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("record: unexpected argument %q", fs.Arg(0))
	}
	w, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	v, err := harness.VariantByName(w, *variant)
	if err != nil {
		return err
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		return err
	}
	s := harness.NewSuite()
	s.ScaleDiv = *scaleDiv
	s.MaxSteps = *maxSteps

	tr, counters, err := s.RecordTrace(w, v, m)
	if err != nil {
		return err
	}
	if err := tr.SaveCodec(*out, c); err != nil {
		return err
	}
	// Report what landed on disk (codec and compressed sizes), not the
	// in-memory raw segments.
	saved, err := disptrace.Load(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %s/%s (scale %d) to %s\n", w.Name, v.Name, tr.Header.Scale, *out)
	printStreamStats(stdout, saved, false)
	fmt.Fprintf(stdout, "recording run on %s: %v\n", m.Name, counters)
	return nil
}

func replayMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	machine := fs.String("machine", cpu.Celeron800.Name, "machine model to replay on")
	jobs := fs.Int("jobs", 0, "parallel segment-decode goroutines (0 = auto)")
	verify := fs.Bool("verify", false, "re-run the direct simulation and require byte-identical counters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: exactly one trace file expected")
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		return err
	}
	tr, err := disptrace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	replayed, err := disptrace.ReplayMachine(tr, m, *jobs)
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Fprintf(stdout, "replayed %s/%s (scale %d) on %s\n", h.Workload, h.Variant, h.Scale, m.Name)
	fmt.Fprintf(stdout, "counters: %v\n", replayed)
	if !*verify {
		return nil
	}
	direct, err := directRun(tr, m)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if direct != replayed {
		return fmt.Errorf("verify FAILED: replay diverged from direct simulation\n  direct   %+v\n  replayed %+v", direct, replayed)
	}
	fmt.Fprintf(stdout, "verify OK: replay byte-identical to direct simulation on %s\n", m.Name)
	return nil
}

// directRun re-creates the recorded configuration from the trace
// header and runs it by direct simulation on m (the suite carries no
// trace cache, so nothing recorded is reused).
func directRun(tr *disptrace.Trace, m cpu.Machine) (metrics.Counters, error) {
	h := tr.Header
	w, err := workload.ByName(h.Workload)
	if err != nil {
		return metrics.Counters{}, err
	}
	v, err := harness.VariantByName(w, h.Variant)
	if err != nil {
		return metrics.Counters{}, err
	}
	s := harness.NewSuite()
	s.ScaleDiv = int(h.ScaleDiv)
	s.MaxSteps = h.MaxSteps
	want := disptrace.Key{
		Workload: h.Workload, Lang: h.Lang,
		Variant: h.Variant, Technique: h.Technique,
		Scale: h.Scale, ScaleDiv: h.ScaleDiv,
		MaxSteps: h.MaxSteps, ISAHash: h.ISAHash,
	}
	if got := s.TraceKey(w, v); got != want {
		return metrics.Counters{}, fmt.Errorf("trace no longer matches the current build (workload scale or ISA changed):\n  trace   %+v\n  current %+v", want, got)
	}
	return s.Run(w, v, m)
}

func infoMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	segments := fs.Bool("segments", false, "list every segment (codec, stored -> raw bytes, records)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info: exactly one trace file expected")
	}
	tr, err := disptrace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Fprintf(stdout, "workload:   %s (%s)\n", h.Workload, h.Lang)
	fmt.Fprintf(stdout, "variant:    %s (technique %s)\n", h.Variant, h.Technique)
	fmt.Fprintf(stdout, "scale:      %d (scalediv %d, maxsteps %d)\n", h.Scale, h.ScaleDiv, h.MaxSteps)
	fmt.Fprintf(stdout, "isa hash:   %#016x\n", h.ISAHash)
	printStreamStats(stdout, tr, *segments)
	return tr.Verify()
}

// printStreamStats reports the stream totals plus the per-codec
// storage picture: stored (possibly compressed) versus raw payload
// bytes and the overall compression ratio. listSegments additionally
// prints one line per segment.
func printStreamStats(w io.Writer, tr *disptrace.Trace, listSegments bool) {
	h := tr.Header
	var stored, raw int
	codecSegs := map[disptrace.Codec]int{}
	for _, s := range tr.Segs {
		stored += len(s.Data)
		raw += s.RawLen()
		codecSegs[s.Codec]++
	}
	fmt.Fprintf(w, "stream:     %d records (%d dispatches, %d fetches, %d work instrs) in %d segments\n",
		h.Records, h.Dispatches, h.Fetches, h.WorkInstrs, len(tr.Segs))
	var codecs []string
	for _, c := range []disptrace.Codec{disptrace.CodecRaw, disptrace.CodecFlate} {
		if n := codecSegs[c]; n > 0 {
			codecs = append(codecs, fmt.Sprintf("%d %s", n, c))
		}
	}
	ratio := 1.0
	if stored > 0 {
		ratio = float64(raw) / float64(stored)
	}
	fmt.Fprintf(w, "payload:    %d bytes stored (%s), %d raw, %.2fx compression\n",
		stored, strings.Join(codecs, ", "), raw, ratio)
	fmt.Fprintf(w, "totals:     %d VM instructions, %d generated code bytes\n", h.VMInstructions, h.CodeBytes)
	if listSegments {
		for i, s := range tr.Segs {
			fmt.Fprintf(w, "  seg %4d: %-5s %8d -> %8d bytes, %7d records\n",
				i, s.Codec, len(s.Data), s.RawLen(), s.Records)
		}
	}
}
