// Command vmtrace records, inspects and replays dispatch traces
// (internal/disptrace): the machine-independent event stream of one
// simulated interpreter run, replayable against any machine model
// with counters byte-identical to direct simulation.
//
// Usage:
//
//	vmtrace record -bench gray -variant plain -o gray.vmdt
//	vmtrace record -bench compress -variant "across bb" -scalediv 10 -o c.vmdt
//	vmtrace replay -machine pentium4-northwood gray.vmdt
//	vmtrace replay -verify -machine pentium-m gray.vmdt
//	vmtrace info gray.vmdt
//	vmtrace diff switch.vmdt threaded.vmdt
//	vmtrace diff -bench gray -a switch -b plain -scalediv 20 -trace-cache .vmtraces
//
// record runs one (benchmark, variant) pair by direct simulation and
// writes its dispatch trace (flate-compressed segments by default;
// -codec raw opts out). replay drives a machine model over a trace
// and prints the counters; -verify additionally re-runs the direct
// simulation from the trace's recorded configuration and fails unless
// every counter matches byte for byte (the CI equivalence smoke).
// info prints a trace's metadata, stream statistics and the per-codec
// storage breakdown with its compression ratio; -segments lists every
// segment's codec, stored vs raw byte size and VM-instruction range.
// diff aligns two traces of the same workload by VM instruction index
// — the paper's Tables I-IV comparison as a tool — and reports where
// their dispatch streams diverge: either between two trace files, or
// between two variants recorded on the fly (-bench with -a/-b,
// sharing the on-disk cache when -trace-cache is set).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/metrics"
	"vmopt/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmtrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: vmtrace <record|replay|info|diff|compile> [flags]\n" +
		"  record -bench NAME -variant NAME [-scalediv N] [-maxsteps N] [-machine NAME] [-codec raw|flate] -o FILE\n" +
		"  replay [-machine NAME] [-jobs N] [-verify] FILE\n" +
		"  info [-segments] FILE\n" +
		"  diff [-n N] FILE_A FILE_B\n" +
		"  diff [-n N] -bench NAME -a VARIANT -b VARIANT [-scalediv N] [-maxsteps N] [-trace-cache DIR]\n" +
		"  compile [-verify] [-machine NAME] FILE... | -cache DIR")
}

func run(stdout io.Writer, args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "record":
		return recordMain(stdout, args[1:])
	case "replay":
		return replayMain(stdout, args[1:])
	case "info":
		return infoMain(stdout, args[1:])
	case "diff":
		return diffMain(stdout, args[1:])
	case "compile":
		return compileMain(stdout, args[1:])
	default:
		return usage()
	}
}

func recordMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (see cmd/vmbench tables VI/VII)")
	variant := fs.String("variant", "plain", "interpreter variant label (Section 7.1 lists, or \"switch\")")
	scaleDiv := fs.Int("scalediv", 1, "divide the workload's default scale by this factor")
	maxSteps := fs.Uint64("maxsteps", 200_000_000, "VM step bound")
	machine := fs.String("machine", cpu.Celeron800.Name, "machine model of the recording run")
	codec := fs.String("codec", "flate", "segment payload codec (raw or flate)")
	out := fs.String("o", "", "output trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" || *out == "" {
		return fmt.Errorf("record: -bench and -o are required")
	}
	c, err := disptrace.CodecByName(*codec)
	if err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("record: unexpected argument %q", fs.Arg(0))
	}
	w, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	v, err := harness.VariantByName(w, *variant)
	if err != nil {
		return err
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		return err
	}
	s := harness.NewSuite()
	s.ScaleDiv = *scaleDiv
	s.MaxSteps = *maxSteps

	tr, counters, err := s.RecordTrace(w, v, m)
	if err != nil {
		return err
	}
	if err := tr.SaveCodec(*out, c); err != nil {
		return err
	}
	// Report what landed on disk (codec and compressed sizes), not the
	// in-memory raw segments.
	saved, err := disptrace.Load(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %s/%s (scale %d) to %s\n", w.Name, v.Name, tr.Header.Scale, *out)
	printStreamStats(stdout, saved, false)
	fmt.Fprintf(stdout, "recording run on %s: %v\n", m.Name, counters)
	return nil
}

func replayMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	machine := fs.String("machine", cpu.Celeron800.Name, "machine model to replay on")
	jobs := fs.Int("jobs", 0, "parallel segment-decode goroutines (0 = auto)")
	verify := fs.Bool("verify", false, "re-run the direct simulation and require byte-identical counters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: exactly one trace file expected")
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		return err
	}
	tr, err := disptrace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	replayed, err := disptrace.ReplayMachine(tr, m, *jobs)
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Fprintf(stdout, "replayed %s/%s (scale %d) on %s\n", h.Workload, h.Variant, h.Scale, m.Name)
	fmt.Fprintf(stdout, "counters: %v\n", replayed)
	if !*verify {
		return nil
	}
	direct, err := directRun(tr, m)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if direct != replayed {
		return fmt.Errorf("verify FAILED: replay diverged from direct simulation\n  direct   %+v\n  replayed %+v", direct, replayed)
	}
	fmt.Fprintf(stdout, "verify OK: replay byte-identical to direct simulation on %s\n", m.Name)
	return nil
}

// directRun re-creates the recorded configuration from the trace
// header and runs it by direct simulation on m (the suite carries no
// trace cache, so nothing recorded is reused).
func directRun(tr *disptrace.Trace, m cpu.Machine) (metrics.Counters, error) {
	h := tr.Header
	w, err := workload.ByName(h.Workload)
	if err != nil {
		return metrics.Counters{}, err
	}
	v, err := harness.VariantByName(w, h.Variant)
	if err != nil {
		return metrics.Counters{}, err
	}
	s := harness.NewSuite()
	s.ScaleDiv = int(h.ScaleDiv)
	s.MaxSteps = h.MaxSteps
	want := disptrace.Key{
		Workload: h.Workload, Lang: h.Lang,
		Variant: h.Variant, Technique: h.Technique,
		Scale: h.Scale, ScaleDiv: h.ScaleDiv,
		MaxSteps: h.MaxSteps, ISAHash: h.ISAHash,
	}
	if got := s.TraceKey(w, v); got != want {
		return metrics.Counters{}, fmt.Errorf("trace no longer matches the current build (workload scale or ISA changed):\n  trace   %+v\n  current %+v", want, got)
	}
	return s.Run(w, v, m)
}

// diffMain aligns two traces by VM instruction index and reports
// their divergences: two trace files, or two variants of one
// benchmark recorded on the fly.
func diffMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	n := fs.Int("n", 5, "detail the first N divergences")
	bench := fs.String("bench", "", "benchmark name (record mode: diff two variants of it)")
	va := fs.String("a", "", "variant label of side A (record mode)")
	vb := fs.String("b", "", "variant label of side B (record mode)")
	scaleDiv := fs.Int("scalediv", 1, "divide the workload's default scale by this factor (record mode)")
	maxSteps := fs.Uint64("maxsteps", 200_000_000, "VM step bound (record mode)")
	machine := fs.String("machine", cpu.Celeron800.Name, "machine model of the recording runs (record mode)")
	cacheDir := fs.String("trace-cache", "", "record through this on-disk trace cache instead of re-simulating (record mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var a, b *disptrace.Trace
	switch {
	case *bench != "":
		if *va == "" || *vb == "" {
			return fmt.Errorf("diff: -bench needs both -a and -b variants")
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("diff: unexpected argument %q alongside -bench", fs.Arg(0))
		}
		w, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		varA, err := harness.VariantByName(w, *va)
		if err != nil {
			return err
		}
		varB, err := harness.VariantByName(w, *vb)
		if err != nil {
			return err
		}
		m, err := cpu.MachineByName(*machine)
		if err != nil {
			return err
		}
		s := harness.NewSuite()
		s.ScaleDiv = *scaleDiv
		s.MaxSteps = *maxSteps
		if *cacheDir != "" {
			s.Traces = disptrace.NewCache(*cacheDir)
		}
		if a, err = s.Trace(w, varA, m); err != nil {
			return err
		}
		if b, err = s.Trace(w, varB, m); err != nil {
			return err
		}
	case fs.NArg() == 2:
		var err error
		if a, err = disptrace.Load(fs.Arg(0)); err != nil {
			return err
		}
		if b, err = disptrace.Load(fs.Arg(1)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("diff: want two trace files, or -bench with -a and -b")
	}

	r, err := disptrace.DiffTraces(a, b, *n)
	if err != nil {
		return err
	}
	printDiff(stdout, r)
	return nil
}

// printDiff renders a diff report in the style of the paper's trace
// tables: configuration, aligned totals, per-field divergence counts
// and the first divergences side by side.
func printDiff(w io.Writer, r *disptrace.DiffReport) {
	fmt.Fprintf(w, "diff A:     %s/%s (technique %s)\n", r.Workload, r.AVariant, r.ATechnique)
	fmt.Fprintf(w, "     B:     %s/%s (technique %s)\n", r.Workload, r.BVariant, r.BTechnique)
	fmt.Fprintf(w, "workload:   %s (%s), scale %d, isa %#016x\n", r.Workload, r.Lang, r.Scale, r.ISAHash)
	fmt.Fprintf(w, "insts:      A %d, B %d (%d compared)\n", r.AInsts, r.BInsts, r.Compared)
	if r.Identical {
		fmt.Fprintf(w, "identical:  %d VM instructions, 0 divergences\n", r.Compared)
		return
	}
	fmt.Fprintf(w, "divergent:  %d of %d compared steps (work %d, fetch %d, dispatch %d)\n",
		r.Divergences, r.Compared, r.WorkDiffs, r.FetchDiffs, r.DispatchDiffs)
	if r.FirstDivergence >= 0 {
		fmt.Fprintf(w, "first divergence at inst %d\n", r.FirstDivergence)
	}
	for _, d := range r.First {
		fmt.Fprintf(w, "  inst %d [%s]:\n", d.Inst, strings.Join(d.Fields, " "))
		fmt.Fprintf(w, "    A: %s\n", formatStep(d.A))
		fmt.Fprintf(w, "    B: %s\n", formatStep(d.B))
	}
}

func formatStep(d disptrace.StepDiff) string {
	s := fmt.Sprintf("work %d, fetch %#x", d.Work, d.Fetch)
	if d.Dispatched {
		return s + fmt.Sprintf(", dispatch %#x -> %#x", d.Branch, d.Target)
	}
	return s + ", no dispatch"
}

// compileMain builds the compiled-replay arena of each trace exactly
// as vmserved's hot tier would — offline warming and, mostly, budget
// sizing: the per-trace and total arena footprints it prints are what
// the traces will cost against -compiled-budget once hot.
func compileMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	cacheDir := fs.String("cache", "", "compile every trace in this cache directory instead of FILE arguments")
	verify := fs.Bool("verify", false, "replay each trace compiled and decoded and require byte-identical counters")
	machine := fs.String("machine", cpu.Celeron800.Name, "machine model -verify replays on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := cpu.MachineByName(*machine)
	if err != nil {
		return err
	}
	var paths []string
	switch {
	case *cacheDir != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("compile: unexpected argument %q alongside -cache", fs.Arg(0))
		}
		entries, err := disptrace.NewCache(*cacheDir).List()
		if err != nil {
			return err
		}
		for _, e := range entries {
			paths = append(paths, filepath.Join(*cacheDir, e.ID+".vmdt"))
		}
		if len(paths) == 0 {
			return fmt.Errorf("compile: no traces in cache %s", *cacheDir)
		}
	case fs.NArg() > 0:
		paths = fs.Args()
	default:
		return fmt.Errorf("compile: want trace files or -cache DIR")
	}

	var total int64
	skipped := 0
	for _, p := range paths {
		tr, err := disptrace.Load(p)
		if err != nil {
			return err
		}
		start := time.Now()
		a, err := tr.Compile()
		if err == disptrace.ErrNotIndexed {
			fmt.Fprintf(stdout, "%s: not compilable (no instruction index; format < v3)\n", p)
			skipped++
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		fmt.Fprintf(stdout, "%s: %s/%s, %d ops over %d VM instructions, %d-byte arena, built in %s\n",
			p, tr.Header.Workload, tr.Header.Variant, a.Ops(), a.Insts(), a.Bytes(),
			time.Since(start).Round(time.Millisecond))
		total += a.Bytes()
		if *verify {
			dec, err := disptrace.Load(p)
			if err != nil {
				return err
			}
			want, err := disptrace.ReplayMachine(dec, m, 0)
			if err != nil {
				return err
			}
			got, err := disptrace.ReplayMachine(tr, m, 0)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("%s: verify FAILED: compiled replay diverged from decode path\n  decode   %+v\n  compiled %+v", p, want, got)
			}
			fmt.Fprintf(stdout, "  verify OK: compiled replay byte-identical to decode path on %s\n", m.Name)
		}
	}
	if len(paths) > 1 {
		fmt.Fprintf(stdout, "total: %d arena(s), %d bytes resident when hot (size -compiled-budget accordingly), %d skipped\n",
			len(paths)-skipped, total, skipped)
	}
	return nil
}

func infoMain(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	segments := fs.Bool("segments", false, "list every segment (codec, stored -> raw bytes, records, VM-instruction range)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info: exactly one trace file expected")
	}
	tr, err := disptrace.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Fprintf(stdout, "workload:   %s (%s)\n", h.Workload, h.Lang)
	fmt.Fprintf(stdout, "variant:    %s (technique %s)\n", h.Variant, h.Technique)
	fmt.Fprintf(stdout, "scale:      %d (scalediv %d, maxsteps %d)\n", h.Scale, h.ScaleDiv, h.MaxSteps)
	printStreamStats(stdout, tr, *segments)
	return tr.Verify()
}

// printStreamStats reports the stream totals (ISA fingerprint
// included, so any summary identifies which instruction set the
// stream is valid against) plus the per-codec storage picture: stored
// (possibly compressed) versus raw payload bytes and the overall
// compression ratio. listSegments additionally prints one line per
// segment, with its cumulative VM-instruction range on seekable (v3)
// traces.
func printStreamStats(w io.Writer, tr *disptrace.Trace, listSegments bool) {
	h := tr.Header
	var stored, raw int
	codecSegs := map[disptrace.Codec]int{}
	for _, s := range tr.Segs {
		stored += len(s.Data)
		raw += s.RawLen()
		codecSegs[s.Codec]++
	}
	fmt.Fprintf(w, "stream:     %d records (%d dispatches, %d fetches, %d work instrs) in %d segments\n",
		h.Records, h.Dispatches, h.Fetches, h.WorkInstrs, len(tr.Segs))
	var codecs []string
	for _, c := range []disptrace.Codec{disptrace.CodecRaw, disptrace.CodecFlate} {
		if n := codecSegs[c]; n > 0 {
			codecs = append(codecs, fmt.Sprintf("%d %s", n, c))
		}
	}
	ratio := 1.0
	if stored > 0 {
		ratio = float64(raw) / float64(stored)
	}
	fmt.Fprintf(w, "payload:    %d bytes stored (%s), %d raw, %.2fx compression\n",
		stored, strings.Join(codecs, ", "), raw, ratio)
	indexed := ""
	if tr.Indexed() {
		indexed = " (instruction-indexed)"
	}
	fmt.Fprintf(w, "totals:     %d VM instructions%s, %d generated code bytes, isa %#016x\n",
		h.VMInstructions, indexed, h.CodeBytes, h.ISAHash)
	// Compiled-replay state: what the trace costs once vmserved's hot
	// tier specializes it (see `vmtrace compile` for offline warming).
	if a, err := tr.Compile(); err == nil {
		fmt.Fprintf(w, "compiled:   %d ops -> %d-byte arena when hot (%.1fx the stored payload)\n",
			a.Ops(), a.Bytes(), float64(a.Bytes())/float64(max(stored, 1)))
	} else {
		fmt.Fprintf(w, "compiled:   not compilable (no instruction index; format < v3)\n")
	}
	if listSegments {
		insts := uint64(0)
		for i, s := range tr.Segs {
			line := fmt.Sprintf("  seg %4d: %-5s %8d -> %8d bytes, %7d records",
				i, s.Codec, len(s.Data), s.RawLen(), s.Records)
			if tr.Indexed() {
				line += fmt.Sprintf(", insts [%d, %d)", insts, insts+uint64(s.VMInsts))
				insts += uint64(s.VMInsts)
			}
			fmt.Fprintln(w, line)
		}
	}
}
