// Command vmload is a YCSB-style load generator for vmserved: it
// hammers the serving API with a configurable mix of duplicate-heavy
// run and sweep requests from concurrent workers, verifies that
// responses to identical requests are byte-identical (coalesced and
// cached results must not diverge from computed ones), and reports
// throughput and latency percentiles. CI uses it as the serve-smoke
// gate; exit status is non-zero on any transport error, non-2xx
// response, response divergence, or failed sweep cell (sweeps report
// per-cell failures inside a 200 NDJSON stream, so the gate reads
// the lines, not just the status).
//
// Usage:
//
//	vmload -addr http://127.0.0.1:8321 -n 200 -c 16 -zipf-theta 0.9
//	vmload -mode sweep -workloads gray,tscp -scalediv 100 -stats
//
// The request corpus is the cross product of -workloads, -variants
// and -machines (plus one sweep request per workload in sweep/mixed
// modes). Each worker draws corpus ranks from a true Zipfian
// distribution (the Gray et al. generator YCSB popularized) with skew
// -zipf-theta: rank 0 — the sweeps, when present — is hottest, the
// tail is long, and the whole mix is seeded and reproducible. Theta 0
// degenerates to uniform; the YCSB default 0.99 approximates
// real-world cache workloads.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmopt/internal/metrics"
)

// request is one reusable corpus entry. key identifies the logical
// request for the divergence check.
type request struct {
	key  string
	path string
	body []byte
	// sweep responses are NDJSON whose line order varies run to run;
	// normalize before hashing.
	normalize bool
}

type counters struct {
	issued, errors, non2xx, diverged, cellErrors atomic.Uint64
	hist                                         metrics.Histogram
}

// sweepLine is the subset of the server's NDJSON sweep schema the
// checker needs: per-cell error lines and the final summary. A sweep
// whose groups fail still answers 200 — the failures ride inside the
// stream — so the gate has to read the lines, not just the status.
type sweepLine struct {
	Error  string `json:"error"`
	Done   bool   `json:"done"`
	Errors int    `json:"errors"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8321", "vmserved base URL")
	mode := flag.String("mode", "mixed", "request mix: run, sweep or mixed")
	n := flag.Int("n", 100, "total requests to issue")
	c := flag.Int("c", 8, "concurrent workers")
	theta := flag.Float64("zipf-theta", 0.99, "zipfian skew of the request mix over the corpus (0 = uniform, must be < 1)")
	workloads := flag.String("workloads", "gray", "comma-separated workload names")
	variants := flag.String("variants", "plain,dynamic super", "comma-separated variant labels")
	machines := flag.String("machines", "", "comma-separated machine names (empty = server default: all)")
	scaleDiv := flag.Int("scalediv", 50, "scale divisor sent with every request")
	seed := flag.Int64("seed", 1, "request-mix random seed")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request timeout")
	stats := flag.Bool("stats", false, "fetch and print /v1/stats after the run")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "vmload: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *n < 1 || *c < 1 {
		// A zero-request "run" would exit 0 having verified nothing —
		// fail loudly instead of silently passing the smoke gate.
		fmt.Fprintf(os.Stderr, "vmload: -n (%d) and -c (%d) must be >= 1\n", *n, *c)
		os.Exit(2)
	}

	corpus, err := buildCorpus(*mode, split(*workloads), split(*variants), split(*machines), *scaleDiv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmload:", err)
		os.Exit(2)
	}
	if *theta < 0 || *theta >= 1 {
		fmt.Fprintf(os.Stderr, "vmload: -zipf-theta %g out of range [0, 1)\n", *theta)
		os.Exit(2)
	}
	zipf := newZipfian(len(corpus), *theta)

	client := &http.Client{Timeout: *timeout}
	var (
		cnt    counters
		seen   sync.Map // request key -> [32]byte response hash
		ticket atomic.Int64
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := range *c {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for {
				t := ticket.Add(1)
				if t > int64(*n) {
					return
				}
				issue(client, *addr, corpus[zipf.next(rng)], &cnt, &seen)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	issued := cnt.issued.Load()
	qps := float64(issued) / elapsed.Seconds()
	snap := cnt.hist.Snapshot()
	fmt.Printf("vmload: %d requests in %.2fs (%.1f req/s): %d errors, %d non-2xx, %d divergences, %d failed cells\n",
		issued, elapsed.Seconds(), qps, cnt.errors.Load(), cnt.non2xx.Load(), cnt.diverged.Load(), cnt.cellErrors.Load())
	fmt.Printf("vmload: latency mean %.1fms p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
		snap.MeanMS, snap.P50MS, snap.P90MS, snap.P99MS, snap.MaxMS)

	if *stats {
		if body, err := fetch(client, *addr+"/v1/stats"); err != nil {
			fmt.Fprintln(os.Stderr, "vmload: stats:", err)
		} else {
			fmt.Printf("vmload: server stats:\n%s", body)
		}
	}
	if cnt.errors.Load()+cnt.non2xx.Load()+cnt.diverged.Load()+cnt.cellErrors.Load() > 0 {
		os.Exit(1)
	}
}

// zipfian draws ranks in [0, n) from the Zipfian distribution of Gray
// et al.'s "Quickly generating billion-record synthetic databases" —
// the generator YCSB popularized for cache-tier load mixes. Rank 0 is
// the most popular item; theta in [0, 1) sets the skew (0 is uniform,
// the YCSB default 0.99 sends ~half of all requests to a handful of
// ranks). The struct is immutable after construction, so concurrent
// workers share one instance and pass their own seeded rng to next —
// keeping the whole request mix reproducible per (seed, worker).
type zipfian struct {
	n     float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 1 + 0.5^theta, the two-item fast path bound
}

// newZipfian precomputes the distribution constants for n items. The
// harmonic sum zeta(n, theta) is computed directly — corpora here are
// a few dozen requests, nowhere near the scale that needs Gray's
// incremental zeta.
func newZipfian(n int, theta float64) *zipfian {
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1.0
	if n >= 2 {
		zeta2 = 1 + 1/math.Pow(2, theta)
	}
	eta := 1.0
	if n >= 2 && zetan != zeta2 {
		eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	}
	return &zipfian{
		n:     float64(n),
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   eta,
		half:  1 + math.Pow(0.5, theta),
	}
}

// next draws one rank using rng.
func (z *zipfian) next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	rank := int(z.n * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= int(z.n) {
		rank = int(z.n) - 1
	}
	return rank
}

func split(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// buildCorpus expands the flag grid into the distinct requests load
// is drawn from: one /v1/run per cell and, in sweep/mixed modes, one
// /v1/sweep per workload covering its variant x machine grid.
func buildCorpus(mode string, workloads, variants, machines []string, scaleDiv int) ([]request, error) {
	if len(workloads) == 0 || len(variants) == 0 {
		return nil, fmt.Errorf("need at least one workload and one variant")
	}
	var corpus []request
	addRun := func(w, v, m string) error {
		body, err := json.Marshal(map[string]any{
			"workload": w, "variant": v, "machine": m, "scalediv": scaleDiv,
		})
		if err != nil {
			return err
		}
		corpus = append(corpus, request{
			key: fmt.Sprintf("run|%s|%s|%s|%d", w, v, m, scaleDiv), path: "/v1/run", body: body,
		})
		return nil
	}
	addSweep := func(w string) error {
		payload := map[string]any{"workloads": []string{w}, "variants": variants, "scalediv": scaleDiv}
		if len(machines) > 0 {
			payload["machines"] = machines
		}
		body, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		corpus = append(corpus, request{
			key:  fmt.Sprintf("sweep|%s|%s|%s|%d", w, strings.Join(variants, "+"), strings.Join(machines, "+"), scaleDiv),
			path: "/v1/sweep", body: body, normalize: true,
		})
		return nil
	}
	runMachines := machines
	if len(runMachines) == 0 {
		// /v1/run requires an explicit machine; spread single-cell
		// load over the paper's primary models.
		runMachines = []string{"celeron-800", "pentium4-northwood", "pentium-m"}
	}
	switch mode {
	case "run", "mixed", "sweep":
	default:
		return nil, fmt.Errorf("unknown -mode %q (want run, sweep or mixed)", mode)
	}
	if mode == "sweep" || mode == "mixed" {
		// Sweeps first: they land in the hot set, which is where
		// coalescing and the caches earn their keep.
		for _, w := range workloads {
			if err := addSweep(w); err != nil {
				return nil, err
			}
		}
	}
	if mode == "run" || mode == "mixed" {
		for _, w := range workloads {
			for _, v := range variants {
				for _, m := range runMachines {
					if err := addRun(w, v, m); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return corpus, nil
}

// issue sends one request, records its latency and outcome, and
// checks the response against the first response seen for the same
// logical request — duplicates must be byte-identical (sweep NDJSON
// is order-normalized first).
func issue(client *http.Client, addr string, req request, cnt *counters, seen *sync.Map) {
	cnt.issued.Add(1)
	start := time.Now()
	resp, err := client.Post(addr+req.path, "application/json", bytes.NewReader(req.body))
	if err != nil {
		cnt.errors.Add(1)
		fmt.Fprintf(os.Stderr, "vmload: %s: %v\n", req.path, err)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	cnt.hist.Observe(time.Since(start))
	if err != nil {
		cnt.errors.Add(1)
		fmt.Fprintf(os.Stderr, "vmload: %s: reading response: %v\n", req.path, err)
		return
	}
	if resp.StatusCode/100 != 2 {
		cnt.non2xx.Add(1)
		fmt.Fprintf(os.Stderr, "vmload: %s: HTTP %d: %s\n", req.path, resp.StatusCode, firstLine(body))
		return
	}
	norm := body
	if req.normalize {
		lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
		sawDone := false
		for _, line := range lines {
			var l sweepLine
			if err := json.Unmarshal([]byte(line), &l); err != nil {
				cnt.cellErrors.Add(1)
				fmt.Fprintf(os.Stderr, "vmload: %s: unparseable NDJSON line %q\n", req.path, line)
				continue
			}
			if l.Done {
				sawDone = true
				if l.Errors > 0 {
					cnt.cellErrors.Add(uint64(l.Errors))
					fmt.Fprintf(os.Stderr, "vmload: %s: sweep summary reports %d failed cells (%s)\n", req.path, l.Errors, req.key)
				}
			} else if l.Error != "" {
				// Counted via the summary; log the first few details.
				fmt.Fprintf(os.Stderr, "vmload: %s: cell error: %s\n", req.path, l.Error)
			}
		}
		if !sawDone {
			cnt.cellErrors.Add(1)
			fmt.Fprintf(os.Stderr, "vmload: %s: sweep response missing done line (%s)\n", req.path, req.key)
		}
		sort.Strings(lines)
		norm = []byte(strings.Join(lines, "\n"))
	}
	sum := sha256.Sum256(norm)
	if prev, loaded := seen.LoadOrStore(req.key, sum); loaded && prev.([32]byte) != sum {
		cnt.diverged.Add(1)
		fmt.Fprintf(os.Stderr, "vmload: %s: response diverged from earlier identical request (%s)\n", req.path, req.key)
	}
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
