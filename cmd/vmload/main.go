// Command vmload is the serving tier's load framework (see
// internal/loadgen): it drives vmserved with a declarative workload
// spec — an operation mix over /v1/run, /v1/sweep, /v1/diff and
// /v1/traces drawn from a seeded zipfian corpus — through distinct
// warm-up and measurement phases, in closed-loop (N workers) or
// open-loop (fixed-rate or Poisson arrivals) mode, and emits a
// vmload/v1 machine-readable report with per-operation latency
// percentiles, error counts and 503-backpressure counts.
//
// Open-loop latency is coordinated-omission-aware: every request is
// timed from its intended start on the arrival schedule, so a server
// stall is charged for the requests that queued behind it.
//
// Usage:
//
//	vmload -spec loadspecs/ci.json -out load-report.json
//	vmload -n 200 -c 16 -zipf-theta 0.9            # flag-built closed-loop spec
//	vmload -mode sweep -workloads gray,tscp -stats
//	vmload diff -current load-report.json BENCH_serve.json
//	vmload checkmetrics -addr http://127.0.0.1:8321
//
// The diff subcommand is the CI regression gate: it compares a report
// against a checked-in baseline with loose thresholds (per-op p99,
// error rate, total throughput) sized for shared runners. The
// checkmetrics subcommand scrapes GET /metrics, requires it to parse
// as Prometheus text format 0.0.4 and requires the core vmserved
// series to be present.
//
// During a run vmload also scrapes /metrics before and after the
// measurement window and records the delta alongside the /v1/stats
// delta; the run fails if the two expositions of the same registry
// disagree.
//
// Exit status is non-zero on any transport error, non-2xx response
// (503 backpressure excluded — the server shedding load under an
// open-loop overload is a measurement, not a failure), response
// divergence between identical requests, or failed sweep cell.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"vmopt/internal/loadgen"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := diffMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "vmload diff:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "checkmetrics" {
		if err := checkMetricsMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "vmload checkmetrics:", err)
			os.Exit(1)
		}
		return
	}
	if err := runMain(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmload:", err)
		os.Exit(1)
	}
}

func runMain(args []string) error {
	fs := flag.NewFlagSet("vmload", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8321", "vmserved base URL")
	specPath := fs.String("spec", "", "workload spec file (JSON); overrides the grid/mix flags below")
	out := fs.String("out", "", "write the vmload/v1 JSON report to this file")
	responses := fs.String("responses", "", "write a response dump (sorted key<TAB>sha256 lines) to this file")
	checkResponses := fs.String("check-responses", "", "compare this run's responses against a reference dump; any shared key whose hash differs fails the run")
	instances := fs.String("instances", "", "comma-separated replica base URLs behind -addr (a router); the /v1/stats and /metrics cross-check deltas are summed across them")
	stats := fs.Bool("stats", false, "fetch and print /v1/stats after the run")

	// Flag-built spec (ignored when -spec is given): the quick
	// closed-loop form for interactive use.
	mode := fs.String("mode", "mixed", "request mix: run, sweep or mixed")
	n := fs.Int("n", 100, "measured requests to issue")
	c := fs.Int("c", 8, "concurrent workers (closed loop)")
	warmup := fs.Int("warmup", 0, "unrecorded warm-up requests before measurement")
	theta := fs.Float64("zipf-theta", 0.99, "zipfian skew of the request mix over the corpus (0 = uniform, must be < 1)")
	workloads := fs.String("workloads", "gray", "comma-separated workload names")
	variants := fs.String("variants", "plain,dynamic super", "comma-separated variant labels")
	machines := fs.String("machines", "", "comma-separated machine names (empty = defaults)")
	scaleDiv := fs.Int("scalediv", 50, "scale divisor sent with every request")
	seed := fs.Int64("seed", 1, "request-mix random seed")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-request timeout")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (subcommands: diff, checkmetrics)", fs.Arg(0))
	}

	var spec *loadgen.Spec
	if *specPath != "" {
		s, err := loadgen.ReadSpecFile(*specPath)
		if err != nil {
			return err
		}
		spec = s
	} else {
		s, err := specFromFlags(*mode, *n, *c, *warmup, *theta,
			split(*workloads), split(*variants), split(*machines),
			*scaleDiv, *seed, *timeout)
		if err != nil {
			return err
		}
		spec = s
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r := &loadgen.Runner{
		Addr: *addr, Spec: spec, Log: os.Stderr,
		Instances:     split(*instances),
		KeepResponses: *responses != "" || *checkResponses != "",
	}
	report, err := r.Run(ctx)
	if err != nil {
		return err
	}
	printSummary(report)

	if *responses != "" {
		f, err := os.Create(*responses)
		if err != nil {
			return err
		}
		werr := loadgen.WriteResponses(f, report.Responses)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing response dump: %w", werr)
		}
		fmt.Printf("vmload: %d response hash(es) written to %s\n", len(report.Responses), *responses)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		werr := report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing report: %w", werr)
		}
		fmt.Printf("vmload: report written to %s\n", *out)
	}
	if *stats {
		if err := printStats(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "vmload: stats:", err)
		}
	}

	t := report.Total
	if failures := t.Errors + t.Non2xx + t.Diverged + t.CellErrors; failures > 0 {
		return fmt.Errorf("%d request failure(s) (backpressure excluded: %d)", failures, t.Backpressure)
	}
	if *checkResponses != "" {
		// The chaos-CI byte-identity gate: every logical request this
		// run and the reference run both served must have hashed
		// identically. Zero overlap would pass vacuously, so it fails.
		ref, err := loadgen.ReadResponsesFile(*checkResponses)
		if err != nil {
			return err
		}
		compared, mismatched := loadgen.CompareResponses(ref, report.Responses)
		if len(mismatched) > 0 {
			return fmt.Errorf("%d of %d shared response(s) differ from %s: %s",
				len(mismatched), compared, *checkResponses, strings.Join(mismatched, ", "))
		}
		if compared == 0 {
			return fmt.Errorf("no responses in common with %s: nothing was actually compared", *checkResponses)
		}
		fmt.Printf("vmload: %d response(s) byte-identical to %s\n", compared, *checkResponses)
	}
	// /v1/stats and /metrics render the same registry; a disagreement
	// between the two deltas means one exposition path is broken.
	if report.Server != nil && report.ServerMetrics != nil && *report.Server != *report.ServerMetrics {
		return fmt.Errorf("/v1/stats delta %+v disagrees with /metrics delta %+v", *report.Server, *report.ServerMetrics)
	}
	return nil
}

// specFromFlags builds the closed-loop spec the pre-framework flag
// interface described, so existing invocations keep working.
func specFromFlags(mode string, n, c, warmup int, theta float64, workloads, variants, machines []string, scaleDiv int, seed int64, timeout time.Duration) (*loadgen.Spec, error) {
	var ops map[string]float64
	switch mode {
	case "run":
		ops = map[string]float64{loadgen.OpRun: 1}
	case "sweep":
		ops = map[string]float64{loadgen.OpSweep: 1}
	case "mixed":
		ops = map[string]float64{loadgen.OpRun: 0.75, loadgen.OpSweep: 0.25}
	default:
		return nil, fmt.Errorf("unknown -mode %q (want run, sweep or mixed)", mode)
	}
	s := &loadgen.Spec{
		Ops:             ops,
		Workloads:       workloads,
		Variants:        variants,
		Machines:        machines,
		ScaleDiv:        scaleDiv,
		ZipfTheta:       theta,
		Seed:            seed,
		Arrival:         loadgen.Arrival{Mode: loadgen.ModeClosed, Workers: c},
		WarmupRequests:  warmup,
		MeasureRequests: n,
		Timeout:         loadgen.Duration(timeout),
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// printSummary renders the human-readable run digest.
func printSummary(r *loadgen.Report) {
	mode := "closed loop"
	if r.Spec.Arrival.Mode == loadgen.ModeOpen {
		mode = fmt.Sprintf("open loop, %s @ %g rps", r.Spec.Arrival.Schedule, r.Spec.Arrival.RateRPS)
	}
	t := r.Total
	fmt.Printf("vmload: %d requests in %.2fs (%.1f req/s, %s): %d errors, %d non-2xx, %d backpressure, %d divergences, %d failed cells, %d retries\n",
		t.Count, r.ElapsedS, r.ThroughputRPS, mode,
		t.Errors, t.Non2xx, t.Backpressure, t.Diverged, t.CellErrors, t.Retries)
	for _, op := range loadgen.Ops {
		s, ok := r.Ops[op]
		if !ok || s.Count == 0 {
			continue
		}
		fmt.Printf("vmload: %-6s %6d reqs  mean %8.1fms  p50 %8.1fms  p90 %8.1fms  p99 %8.1fms  max %8.1fms\n",
			op, s.Count, s.Latency.MeanMS, s.Latency.P50MS, s.Latency.P90MS, s.Latency.P99MS, s.Latency.MaxMS)
		if len(s.ServerStages) > 0 {
			names := make([]string, 0, len(s.ServerStages))
			for name := range s.ServerStages {
				names = append(names, name)
			}
			sort.Strings(names)
			var b strings.Builder
			for _, name := range names {
				fmt.Fprintf(&b, "  %s %.1fms", name, s.ServerStages[name])
			}
			fmt.Printf("vmload: %-6s server stages (total):%s\n", op, b.String())
		}
	}
	if r.Server != nil {
		fmt.Printf("vmload: server saw run %d, sweep %d, diff %d, traces %d, rejected %d, errors %d over the measurement window\n",
			r.Server.Run, r.Server.Sweep, r.Server.Diff, r.Server.Traces, r.Server.Rejected, r.Server.Errors)
	}
	if r.ServerMetrics != nil {
		agree := "AGREES with /v1/stats"
		if r.Server != nil && *r.Server != *r.ServerMetrics {
			agree = "DISAGREES with /v1/stats"
		}
		fmt.Printf("vmload: /metrics saw run %d, sweep %d, diff %d, traces %d, rejected %d, errors %d (%s)\n",
			r.ServerMetrics.Run, r.ServerMetrics.Sweep, r.ServerMetrics.Diff,
			r.ServerMetrics.Traces, r.ServerMetrics.Rejected, r.ServerMetrics.Errors, agree)
	}
}

func diffMain(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	current := fs.String("current", "", "load report to gate (required)")
	p99Factor := fs.Float64("p99-factor", loadgen.DefaultThresholds.P99Factor, "per-op p99 limit: baseline p99 times this factor, plus -p99-slack-ms")
	p99Slack := fs.Float64("p99-slack-ms", loadgen.DefaultThresholds.P99SlackMS, "absolute p99 slack in milliseconds")
	errDelta := fs.Float64("max-error-rate-delta", loadgen.DefaultThresholds.MaxErrorRateDelta, "per-op error-rate headroom over baseline")
	tputFactor := fs.Float64("throughput-factor", loadgen.DefaultThresholds.ThroughputFactor, "total throughput may drop to baseline divided by this factor (0 disables)")
	fs.Parse(args)
	if fs.NArg() != 1 || *current == "" {
		return fmt.Errorf("usage: vmload diff -current report.json [threshold flags] <baseline.json>")
	}
	base, err := loadgen.ReadReportFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := loadgen.ReadReportFile(*current)
	if err != nil {
		return err
	}
	t := loadgen.Thresholds{
		P99Factor:         *p99Factor,
		P99SlackMS:        *p99Slack,
		MaxErrorRateDelta: *errDelta,
		ThroughputFactor:  *tputFactor,
	}
	return loadgen.WriteDiff(os.Stdout, loadgen.Diff(base, cur, t), base, t)
}

// checkMetricsMain is the CI validity gate for the exposition surface:
// scrape GET /metrics, require it to parse as Prometheus text format
// 0.0.4 in full, and require the core vmserved series to be present.
// A server whose /metrics would not scrape fails the job even when the
// load numbers look fine.
func checkMetricsMain(args []string) error {
	fs := flag.NewFlagSet("checkmetrics", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8321", "vmserved base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape timeout")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	series, err := loadgen.ScrapeMetrics(&http.Client{Timeout: *timeout}, *addr)
	if err != nil {
		return err
	}
	required := []string{
		`vmserved_requests_total{endpoint="run"}`,
		`vmserved_requests_total{endpoint="sweep"}`,
		`vmserved_requests_total{endpoint="diff"}`,
		`vmserved_rejected_total`,
		`vmserved_errors_total`,
		`vmserved_cache_hits_total`,
		`vmserved_cache_misses_total`,
		`vmserved_cache_evictions_total`,
		`vmserved_compiled_builds_total`,
		`vmserved_compiled_hits_total`,
		`vmserved_compiled_evictions_total`,
		`vmserved_compiled_bytes`,
		`vmserved_in_flight`,
		`vmserved_request_seconds_count{endpoint="run"}`,
		`go_goroutines`,
	}
	var missing []string
	for _, s := range required {
		if _, ok := series[s]; !ok {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required series: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("vmload: /metrics OK: %d series parsed, all %d required series present\n", len(series), len(required))
	return nil
}

func printStats(addr string) error {
	resp, err := http.Get(addr + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("vmload: server stats:\n%s", body)
	return nil
}

func split(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
