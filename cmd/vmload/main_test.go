package main

import (
	"testing"
	"time"

	"vmopt/internal/loadgen"
)

// TestSpecFromFlags: the legacy flag interface maps onto valid
// closed-loop specs.
func TestSpecFromFlags(t *testing.T) {
	s, err := specFromFlags("mixed", 200, 16, 10, 0.9,
		[]string{"gray"}, []string{"plain", "dynamic super"}, nil, 50, 7, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arrival.Mode != loadgen.ModeClosed || s.Arrival.Workers != 16 {
		t.Errorf("arrival = %+v", s.Arrival)
	}
	if s.MeasureRequests != 200 || s.WarmupRequests != 10 || s.Seed != 7 {
		t.Errorf("phases = %+v", s)
	}
	if s.Ops[loadgen.OpRun] == 0 || s.Ops[loadgen.OpSweep] == 0 {
		t.Errorf("mixed mode ops = %v", s.Ops)
	}
	for mode, op := range map[string]string{"run": loadgen.OpRun, "sweep": loadgen.OpSweep} {
		s, err := specFromFlags(mode, 10, 1, 0, 0,
			[]string{"gray"}, []string{"plain"}, nil, 50, 1, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if s.Ops[op] != 1 {
			t.Errorf("mode %s ops = %v", mode, s.Ops)
		}
	}
}

// TestSpecFromFlagsRejections: bad flag combinations fail before any
// request is sent.
func TestSpecFromFlagsRejections(t *testing.T) {
	if _, err := specFromFlags("burst", 10, 1, 0, 0.9,
		[]string{"gray"}, []string{"plain"}, nil, 50, 1, time.Minute); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := specFromFlags("run", 10, 1, 0, 1.5,
		[]string{"gray"}, []string{"plain"}, nil, 50, 1, time.Minute); err == nil {
		t.Error("zipf theta 1.5 accepted")
	}
	if _, err := specFromFlags("run", 0, 1, 0, 0.9,
		[]string{"gray"}, []string{"plain"}, nil, 50, 1, time.Minute); err == nil {
		// A zero-request "run" would exit 0 having verified nothing —
		// it must fail loudly instead of silently passing the gate.
		t.Error("zero measured requests accepted")
	}
	if _, err := specFromFlags("run", 10, 1, 0, 0.9,
		nil, []string{"plain"}, nil, 50, 1, time.Minute); err == nil {
		t.Error("empty workloads accepted")
	}
}

func TestSplit(t *testing.T) {
	got := split(" gray, tscp ,,brew ")
	want := []string{"gray", "tscp", "brew"}
	if len(got) != len(want) {
		t.Fatalf("split = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("split[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
