package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFlightCoalesces(t *testing.T) {
	var f Flight[string, int]
	started := make(chan struct{})
	finish := make(chan struct{})
	var leaders, joiners int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i > 0 {
				<-started // guarantee the leader is in flight first
			}
			v, leader, err := f.Do("k", func() (int, error) {
				close(started)
				<-finish
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
			mu.Lock()
			if leader {
				leaders++
			} else {
				joiners++
			}
			mu.Unlock()
		}()
	}
	go func() {
		<-started
		time.Sleep(10 * time.Millisecond) // let joiners pile onto the flight
		close(finish)
	}()
	wg.Wait()
	if leaders != 1 || joiners != 3 {
		t.Errorf("leaders = %d, joiners = %d; want 1 and 3", leaders, joiners)
	}
}

// TestFlightDoCtxJoinCancel pins down the serving requirement: a
// joiner whose context dies stops waiting immediately, while the
// leader's computation runs to completion for the callers that
// remain.
func TestFlightDoCtxJoinCancel(t *testing.T) {
	var f Flight[string, int]
	started := make(chan struct{})
	finish := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := f.Do("k", func() (int, error) {
			close(started)
			<-finish
			return 7, nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	joinErr := make(chan error, 1)
	go func() {
		_, leader, err := f.DoCtx(ctx, "k", func() (int, error) {
			t.Error("joiner executed compute")
			return 0, nil
		})
		if leader {
			t.Error("joiner reported itself leader")
		}
		joinErr <- err
	}()
	cancel()
	select {
	case err := <-joinErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled join returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled joiner still parked on the flight")
	}

	// The leader is unaffected by the joiner's cancellation.
	close(finish)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader returned %v", err)
	}
}

func TestGroupResetRetriesCompute(t *testing.T) {
	var g Group[string, int]
	calls := 0
	compute := func() (int, error) { calls++; return calls, nil }
	if v, _ := g.Do("k", compute); v != 1 {
		t.Fatalf("first Do = %d, want 1", v)
	}
	if v, _ := g.Do("k", compute); v != 1 {
		t.Fatalf("cached Do = %d, want 1", v)
	}
	g.Reset()
	if g.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", g.Len())
	}
	if v, _ := g.Do("k", compute); v != 2 {
		t.Fatalf("post-Reset Do = %d, want 2 (recomputed)", v)
	}
}
