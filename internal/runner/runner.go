// Package runner is the experiment execution engine of the
// reproduction: a context-aware worker pool with deterministic result
// ordering and full error aggregation (runner.Map), the
// machine-readable result schema vmbench emits (Report, Run), and the
// baseline regression diff CI tracks (Diff).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Options configures one pool run.
type Options struct {
	// Jobs is the degree of parallelism; <= 0 means GOMAXPROCS.
	Jobs int
	// Progress, if non-nil, is called after each job finishes with
	// the number of completed jobs and the total. Calls are
	// serialized and in nondecreasing done order.
	Progress func(done, total int)
}

func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded worker pool
// and returns the results in index order.
//
// Unlike first-error helpers, Map does not abandon the grid when one
// job fails: every job still runs, every failure is collected, and
// the returned error joins them in index order (errors.Join). The
// result slice always has length n; entries whose job failed hold the
// zero value, so partial results remain usable alongside a non-nil
// error.
//
// Cancelling ctx stops the pool from dispatching further jobs;
// already-running jobs see the cancelled context through fn's ctx
// argument. Jobs that never started report ctx's cause as their
// error.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	idx := make(chan int)
	workers := min(opts.jobs(), n)
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// The dispatcher's select can race a worker freed by
				// the same cancellation and still hand out one more
				// index; re-checking here makes the guarantee strict.
				if ctx.Err() != nil {
					errs[i] = fmt.Errorf("job %d skipped: %w", i, context.Cause(ctx))
				} else {
					results[i], errs[i] = fn(ctx, i)
				}
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}

dispatch:
	for i := range n {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark everything not yet dispatched as skipped. Each
			// skip still counts as a finished job for Progress, so
			// done reaches total even on cancellation.
			for k := i; k < n; k++ {
				errs[k] = fmt.Errorf("job %d skipped: %w", k, context.Cause(ctx))
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, n)
					mu.Unlock()
				}
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	return results, errors.Join(errs...)
}
