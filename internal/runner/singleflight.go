package runner

import (
	"context"
	"sync"
)

// call is one in-progress single-flight computation.
type call[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Flight deduplicates concurrent computations by key without
// memoizing results: while a computation for a key is in progress,
// callers for the same key wait and share its outcome; once it
// finishes, the next caller computes afresh. This is the dedup layer
// for caches whose authoritative store lives elsewhere (on disk, in a
// separate map), where keeping a second in-memory copy of every value
// would be wasteful.
//
// The zero value is ready to use.
type Flight[K comparable, V any] struct {
	mu       sync.Mutex
	inflight map[K]*call[V]
}

// Do returns the result of compute for key, running it at most once
// concurrently per key. The leader return value reports whether this
// call executed compute itself (true) or joined an in-progress
// computation and shared its outcome (false).
func (f *Flight[K, V]) Do(key K, compute func() (V, error)) (v V, leader bool, err error) {
	return f.DoCtx(context.Background(), key, compute)
}

// DoCtx is Do with a cancellable join: a caller that coalesces onto
// an in-progress computation stops waiting when ctx is done and
// returns ctx's cause, while the leader — whose computation other
// callers may still be waiting on — always runs compute to
// completion (cancel the leader through whatever context compute
// itself observes). Servers need this so a dropped duplicate client
// releases its resources immediately instead of staying parked for
// the leader's whole computation.
func (f *Flight[K, V]) DoCtx(ctx context.Context, key K, compute func() (V, error)) (v V, leader bool, err error) {
	f.mu.Lock()
	if f.inflight == nil {
		f.inflight = make(map[K]*call[V])
	}
	if c, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.v, false, c.err
		case <-ctx.Done():
			var zero V
			return zero, false, context.Cause(ctx)
		}
	}
	c := &call[V]{done: make(chan struct{})}
	f.inflight[key] = c
	f.mu.Unlock()

	c.v, c.err = compute()
	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(c.done)
	return c.v, true, c.err
}

// Group is Flight plus a success cache: each key is computed exactly
// once overall; with a parallel grid many jobs need the same training
// profile or the same cached run at once, so the first caller
// computes, concurrent callers wait and share the outcome, and
// successful results are memoized for every later caller. Failed
// computations are not cached and will be retried by the next caller.
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	flight Flight[K, V]
	mu     sync.Mutex
	cache  map[K]V
}

// Do returns the cached value for key, computing and caching it on
// first use. Concurrent callers for an uncached key share one
// computation.
func (g *Group[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	if v, ok := g.get(key); ok {
		return v, nil
	}
	// The flight closes the race between the cache check above and
	// two callers computing: both land on one in-progress call. The
	// re-check inside covers a caller that missed the cache while a
	// previous flight was publishing its result.
	v, _, err := g.flight.Do(key, func() (V, error) {
		if v, ok := g.get(key); ok {
			return v, nil
		}
		v, err := compute()
		if err == nil {
			g.set(key, v)
		}
		return v, err
	})
	return v, err
}

func (g *Group[K, V]) get(key K) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.cache[key]
	return v, ok
}

func (g *Group[K, V]) set(key K, v V) {
	g.mu.Lock()
	if g.cache == nil {
		g.cache = make(map[K]V)
	}
	g.cache[key] = v
	g.mu.Unlock()
}

// Get returns the memoized value for key, if any, without computing.
func (g *Group[K, V]) Get(key K) (V, bool) {
	return g.get(key)
}

// Cached returns a snapshot copy of every memoized result.
func (g *Group[K, V]) Cached() map[K]V {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[K]V, len(g.cache))
	for k, v := range g.cache {
		out[k] = v
	}
	return out
}

// Len reports how many results are memoized.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.cache)
}

// Reset drops every memoized result. In-flight computations finish
// normally and publish into the fresh map; callers that need a bound
// on a Group's otherwise unbounded growth (long-running servers) call
// this when an external tier — an LRU, a disk cache — holds the
// results worth keeping.
func (g *Group[K, V]) Reset() {
	g.mu.Lock()
	g.cache = nil
	g.mu.Unlock()
}
