package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"

	"vmopt/internal/metrics"
)

// SchemaVersion identifies the JSON result schema. Bump it when the
// shape of Report changes incompatibly; vmbench diff refuses to
// compare reports across schema versions.
const SchemaVersion = "vmbench/v1"

// Run is the structured record of one simulated (workload, variant,
// machine) execution: the raw counters plus the derived rates the
// paper reports.
type Run struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Machine  string `json:"machine"`
	Scale    int    `json:"scale"`

	Counters metrics.Counters `json:"counters"`

	MispredictRate float64 `json:"mispredict_rate"`
	BranchFraction float64 `json:"branch_fraction"`
	InstrsPerVM    float64 `json:"instrs_per_vm"`
}

// NewRun derives the rate fields from c and returns the populated
// record.
func NewRun(workload, variant, machine string, scale int, c metrics.Counters) Run {
	return Run{
		Workload:       workload,
		Variant:        variant,
		Machine:        machine,
		Scale:          scale,
		Counters:       c,
		MispredictRate: c.MispredictRate(),
		BranchFraction: c.BranchFraction(),
		InstrsPerVM:    c.InstrsPerVM(),
	}
}

// Key identifies the run for baseline comparison and sorting.
func (r Run) Key() string {
	return r.Workload + "/" + r.Variant + "/" + r.Machine + "/" + strconv.Itoa(r.Scale)
}

// Table is a rendered experiment grid — the serializable mirror of
// the harness table layer.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Experiment is the structured output of one named experiment: its
// rendered tables plus any free-form summary lines.
type Experiment struct {
	Name   string   `json:"name"`
	Tables []Table  `json:"tables"`
	Notes  []string `json:"notes,omitempty"`
}

// Host describes the environment a report was captured in. The
// simulated counters are deterministic — host and parallelism never
// change a single run — but the capture environment still matters for
// interpreting wall-clock claims around an artifact: a ReplayEach
// speedup measured with GOMAXPROCS=1 reflects shared decode only,
// while a multi-core capture additionally shards the apply cost. Every
// checked-in BENCH_*.json therefore records where it came from.
type Host struct {
	// GoMaxProcs is runtime.GOMAXPROCS(0) at capture time — the
	// parallelism actually available to worker pools and replay
	// appliers.
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU is runtime.NumCPU at capture time.
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// CurrentHost captures the running process's host metadata.
func CurrentHost() *Host {
	return &Host{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// Report is the top-level machine-readable result document. It is
// free of wall-clock metadata (timestamps, run durations) so that the
// same experiments at the same scale serialize to identical bytes on
// one machine whatever -jobs was; the optional Host block describes
// the capture environment without affecting any run, and Diff ignores
// it.
type Report struct {
	Schema      string       `json:"schema"`
	Exp         string       `json:"exp"`
	ScaleDiv    int          `json:"scalediv"`
	Host        *Host        `json:"host,omitempty"`
	Experiments []Experiment `json:"experiments"`
	Runs        []Run        `json:"runs"`
}

// sortedRuns returns a copy of Runs ordered by Key. Serialization
// always emits sorted runs but never reorders the caller's report.
func (r *Report) sortedRuns() []Run {
	runs := append([]Run(nil), r.Runs...)
	sort.Slice(runs, func(i, j int) bool { return runs[i].Key() < runs[j].Key() })
	return runs
}

// SortRuns orders Runs by Key in place.
func (r *Report) SortRuns() {
	r.Runs = r.sortedRuns()
}

// WriteJSON serializes the report as indented JSON with runs in key
// order.
func (r *Report) WriteJSON(w io.Writer) error {
	out := *r
	out.Runs = r.sortedRuns()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// ReadReport parses a JSON report and checks its schema version.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("parsing report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("report schema %q, want %q", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// ReadReportFile reads a JSON report from a file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// csvHeader names the flat per-run CSV columns.
var csvHeader = []string{
	"workload", "variant", "machine", "scale",
	"cycles", "instructions", "indirect_branches", "mispredicted",
	"icache_misses", "miss_cycles", "code_bytes",
	"vm_instructions", "dispatches",
	"mispredict_rate", "branch_fraction", "instrs_per_vm",
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func fu(v uint64) string  { return strconv.FormatUint(v, 10) }

// WriteCSV serializes the report's runs as one flat CSV table,
// sorted by run key.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, run := range r.sortedRuns() {
		c := run.Counters
		rec := []string{
			run.Workload, run.Variant, run.Machine, strconv.Itoa(run.Scale),
			ff(c.Cycles), fu(c.Instructions), fu(c.IndirectBranches), fu(c.Mispredicted),
			fu(c.ICacheMisses), ff(c.MissCycles), fu(c.CodeBytes),
			fu(c.VMInstructions), fu(c.Dispatches),
			ff(run.MispredictRate), ff(run.BranchFraction), ff(run.InstrsPerVM),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRunsCSV parses the flat CSV form back into runs; it is the
// inverse of WriteCSV.
func ReadRunsCSV(rd io.Reader) ([]Run, error) {
	cr := csv.NewReader(rd)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("empty CSV")
	}
	if got, want := len(records[0]), len(csvHeader); got != want {
		return nil, fmt.Errorf("CSV has %d columns, want %d", got, want)
	}
	// Validate the header: a headerless file would otherwise lose its
	// first run to the records[1:] slice below.
	for k, name := range csvHeader {
		if records[0][k] != name {
			return nil, fmt.Errorf("CSV header column %d is %q, want %q", k, records[0][k], name)
		}
	}
	var runs []Run
	for li, rec := range records[1:] {
		fail := func(err error) ([]Run, error) {
			return nil, fmt.Errorf("CSV line %d: %w", li+2, err)
		}
		scale, err := strconv.Atoi(rec[3])
		if err != nil {
			return fail(err)
		}
		var fs [3]float64 // cycles, miss_cycles, and derived rates parsed below
		var us [7]uint64
		for k, col := range []int{5, 6, 7, 8, 10, 11, 12} {
			if us[k], err = strconv.ParseUint(rec[col], 10, 64); err != nil {
				return fail(err)
			}
		}
		for k, col := range []int{4, 9, 13} {
			if fs[k], err = strconv.ParseFloat(rec[col], 64); err != nil {
				return fail(err)
			}
		}
		bf, err := strconv.ParseFloat(rec[14], 64)
		if err != nil {
			return fail(err)
		}
		ipv, err := strconv.ParseFloat(rec[15], 64)
		if err != nil {
			return fail(err)
		}
		runs = append(runs, Run{
			Workload: rec[0], Variant: rec[1], Machine: rec[2], Scale: scale,
			Counters: metrics.Counters{
				Cycles: fs[0], Instructions: us[0], IndirectBranches: us[1],
				Mispredicted: us[2], ICacheMisses: us[3], MissCycles: fs[1],
				CodeBytes: us[4], VMInstructions: us[5], Dispatches: us[6],
			},
			MispredictRate: fs[2], BranchFraction: bf, InstrsPerVM: ipv,
		})
	}
	return runs, nil
}
