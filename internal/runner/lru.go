package runner

import (
	"sync"
	"sync/atomic"
)

// lruEntry is one resident key/value pair on the recency list.
type lruEntry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *lruEntry[K, V]
}

// LRU is a bounded concurrency-safe least-recently-used cache. It is
// the in-memory tier the serving subsystem layers over the
// content-addressed disk trace cache: small (counters, not traces),
// strictly bounded, and recency-evicting, where Group — the other
// in-memory cache in this package — deliberately never evicts.
//
// A capacity <= 0 disables caching: Get always misses and Add is a
// no-op, so callers can wire an LRU unconditionally and size it at
// configuration time.
type LRU[K comparable, V any] struct {
	mu         sync.Mutex
	cap        int
	m          map[K]*lruEntry[K, V]
	head, tail *lruEntry[K, V] // head is most recent

	// evictions counts entries displaced by capacity pressure —
	// hit-rate alone cannot distinguish a cold cache (misses, no
	// evictions) from a thrashing one (misses with evictions).
	evictions atomic.Uint64
}

// NewLRU returns an LRU bounded to capacity entries.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	return &LRU[K, V]{cap: capacity, m: make(map[K]*lruEntry[K, V])}
}

// unlink removes e from the recency list.
func (c *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns the cached value for key and marks it most recently
// used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.value, true
}

// Add inserts or refreshes key, evicting the least recently used
// entry when the cache is full.
func (c *LRU[K, V]) Add(key K, value V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.value = value
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions.Add(1)
	}
	e := &lruEntry[K, V]{key: key, value: value}
	c.m[key] = e
	c.pushFront(e)
}

// Len returns the number of resident entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the configured capacity.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Evictions returns how many entries capacity pressure has displaced
// since creation.
func (c *LRU[K, V]) Evictions() uint64 { return c.evictions.Load() }
