package runner

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// a was just used, so adding c must evict b.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU (b) evicted")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := c.Get(k); !ok || v != want {
			t.Errorf("Get(%q) = %d, %v; want %d, true", k, v, ok, want)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if n := c.Evictions(); n != 1 {
		t.Errorf("Evictions = %d, want 1 (only b was displaced)", n)
	}
}

func TestLRUEvictionCounter(t *testing.T) {
	c := NewLRU[int, int](2)
	for i := range 5 {
		c.Add(i, i)
	}
	if n := c.Evictions(); n != 3 {
		t.Errorf("Evictions = %d, want 3 (5 inserts into capacity 2)", n)
	}
	// Refreshing a resident key is not an eviction.
	c.Add(4, 40)
	if n := c.Evictions(); n != 3 {
		t.Errorf("Evictions after refresh = %d, want still 3", n)
	}
}

func TestLRUUpdateRefreshes(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // refresh both value and recency
	c.Add("c", 3)  // must evict b, not a
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Errorf("Get(a) = %d, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; want evicted after a's refresh")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity LRU cached a value")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 1000 {
				k := (w*31 + i) % 100
				c.Add(k, k)
				if v, ok := c.Get(k); ok && v != k {
					panic(fmt.Sprintf("Get(%d) returned %d", k, v))
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity 64", c.Len())
	}
}
