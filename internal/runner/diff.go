package runner

import (
	"fmt"
	"io"
	"sort"
)

// Regression is one baseline-comparison failure: a run that got worse
// than the baseline beyond the tolerance, or disappeared entirely.
type Regression struct {
	// Key identifies the run (workload/variant/machine/scale).
	Key string
	// Metric names the counter that regressed ("cycles",
	// "mispredicted"), or "missing" when the run is absent.
	Metric string
	// Base and Cur are the baseline and current values.
	Base, Cur float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but missing from this run", r.Key)
	}
	if r.Base == 0 {
		return fmt.Sprintf("%s: %s regressed %.6g -> %.6g (baseline was 0)",
			r.Key, r.Metric, r.Base, r.Cur)
	}
	return fmt.Sprintf("%s: %s regressed %.6g -> %.6g (%+.2f%%)",
		r.Key, r.Metric, r.Base, r.Cur, 100*(r.Cur/r.Base-1))
}

// Diff compares current against baseline run by run. A run regresses
// when a watched metric exceeds the baseline by more than the
// relative tolerance tol (0.02 = 2%); a zero baseline metric flags
// any nonzero current value, since no relative tolerance applies.
// Runs present only in current are new coverage, not regressions.
// Reports must share ScaleDiv — comparing different workload scales
// is meaningless.
func Diff(baseline, current *Report, tol float64) ([]Regression, error) {
	if baseline.ScaleDiv != current.ScaleDiv {
		return nil, fmt.Errorf("scalediv mismatch: baseline %d vs current %d",
			baseline.ScaleDiv, current.ScaleDiv)
	}
	cur := make(map[string]Run, len(current.Runs))
	for _, r := range current.Runs {
		cur[r.Key()] = r
	}
	// Sort a copy for deterministic regression order; a comparison
	// must not reorder the caller's report.
	base := append([]Run(nil), baseline.Runs...)
	sort.Slice(base, func(i, j int) bool { return base[i].Key() < base[j].Key() })
	var regs []Regression
	for _, b := range base {
		c, ok := cur[b.Key()]
		if !ok {
			regs = append(regs, Regression{Key: b.Key(), Metric: "missing"})
			continue
		}
		watch := []struct {
			name      string
			base, cur float64
		}{
			{"cycles", b.Counters.Cycles, c.Counters.Cycles},
			{"mispredicted", float64(b.Counters.Mispredicted), float64(c.Counters.Mispredicted)},
		}
		for _, m := range watch {
			if m.cur > m.base*(1+tol) {
				regs = append(regs, Regression{Key: b.Key(), Metric: m.name, Base: m.base, Cur: m.cur})
			}
		}
	}
	return regs, nil
}

// WriteDiff renders a diff outcome for humans and returns an error
// when regressions were found (the vmbench diff exit status).
func WriteDiff(w io.Writer, regs []Regression, compared int, tol float64) error {
	if len(regs) == 0 {
		fmt.Fprintf(w, "diff: %d runs compared, no regressions beyond %.2f%% tolerance\n",
			compared, 100*tol)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(w, "REGRESSION:", r)
	}
	return fmt.Errorf("%d regression(s) against baseline", len(regs))
}
