package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"vmopt/internal/metrics"
)

func TestMapOrderedResults(t *testing.T) {
	got, err := Map(context.Background(), 100, Options{Jobs: 8},
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapCollectsAllErrors(t *testing.T) {
	res, err := Map(context.Background(), 10, Options{Jobs: 4},
		func(_ context.Context, i int) (int, error) {
			if i%3 == 0 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("want joined error")
	}
	// All four failures (0, 3, 6, 9) must be present, not just the first.
	for _, i := range []int{0, 3, 6, 9} {
		if !strings.Contains(err.Error(), fmt.Sprintf("job %d failed", i)) {
			t.Errorf("joined error missing job %d: %v", i, err)
		}
	}
	// Successful jobs still delivered their results.
	if res[1] != 1 || res[8] != 8 {
		t.Errorf("partial results lost: %v", res)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started, progressed atomic.Int32
	running := make(chan struct{}, 2)
	go func() {
		// Wait until both workers hold a job, then cancel: jobs 2..999
		// must never be dispatched.
		<-running
		<-running
		cancel()
	}()
	_, err := Map(ctx, 1000, Options{
		Jobs:     2,
		Progress: func(done, total int) { progressed.Add(1) },
	},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			running <- struct{}{}
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in joined error, got %v", err)
	}
	if n := started.Load(); n != 2 {
		t.Errorf("cancellation did not stop dispatch: %d jobs started, want 2", n)
	}
	// Skipped jobs still count toward progress: done reaches total.
	if n := progressed.Load(); n != 1000 {
		t.Errorf("progress fired %d times, want 1000 (skips included)", n)
	}
}

func TestMapProgress(t *testing.T) {
	var calls []int
	_, err := Map(context.Background(), 5, Options{
		Jobs:     3,
		Progress: func(done, total int) { calls = append(calls, done) },
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 5 {
		t.Fatalf("progress called %d times, want 5", len(calls))
	}
	for k, d := range calls {
		if d != k+1 {
			t.Fatalf("progress out of order: %v", calls)
		}
	}
}

func TestMapDefaultJobsAndEmpty(t *testing.T) {
	if _, err := Map(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	res, err := Map(context.Background(), 3, Options{}, // Jobs <= 0 -> GOMAXPROCS
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil || res[2] != 3 {
		t.Fatalf("default jobs run failed: %v %v", res, err)
	}
}

func sampleReport() *Report {
	c := metrics.Counters{Cycles: 1234.5, Instructions: 100, IndirectBranches: 10,
		Mispredicted: 3, ICacheMisses: 2, MissCycles: 54, CodeBytes: 7,
		VMInstructions: 40, Dispatches: 9}
	return &Report{
		Schema:   SchemaVersion,
		Exp:      "table5",
		ScaleDiv: 50,
		Experiments: []Experiment{{
			Name:   "table5",
			Tables: []Table{{ID: "Table V", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}},
			Notes:  []string{"note"},
		}},
		Runs: []Run{
			NewRun("mpeg", "plain", "pentium4", 10, c),
			NewRun("db", "across bb", "pentium4", 10, c),
		},
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSON round trip not byte-identical")
	}
	// Runs sorted by key: "db/..." before "mpeg/...".
	if got.Runs[0].Workload != "db" {
		t.Errorf("runs not sorted: %v", got.Runs)
	}
	// Serialization must not reorder the caller's report.
	if r.Runs[0].Workload != "mpeg" {
		t.Error("WriteJSON mutated the report's run order")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"vmbench/v0"}`)); err == nil {
		t.Error("wrong schema version should be rejected")
	}
}

func TestReportCSVRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadRunsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(r.Runs) {
		t.Fatalf("got %d runs, want %d", len(runs), len(r.Runs))
	}
	sorted := sampleReport()
	sorted.SortRuns()
	for i := range runs {
		if runs[i] != sorted.Runs[i] {
			t.Errorf("run %d round trip mismatch:\n got %+v\nwant %+v", i, runs[i], sorted.Runs[i])
		}
	}
	// A headerless file must be rejected, not silently lose a row.
	lines := strings.SplitN(buf.String(), "\n", 2)
	if _, err := ReadRunsCSV(strings.NewReader(lines[1])); err == nil {
		t.Error("headerless CSV should be rejected")
	}
}

func TestDiff(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()

	regs, err := Diff(base, cur, 0.01)
	if err != nil || len(regs) != 0 {
		t.Fatalf("identical reports should not regress: %v %v", regs, err)
	}

	// Perturb one run's cycles beyond tolerance.
	cur.Runs[0].Counters.Cycles *= 1.10
	regs, err = Diff(base, cur, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "cycles" {
		t.Fatalf("want one cycles regression, got %v", regs)
	}
	// Within tolerance: no regression.
	cur = sampleReport()
	cur.Runs[0].Counters.Cycles *= 1.005
	if regs, _ = Diff(base, cur, 0.01); len(regs) != 0 {
		t.Errorf("0.5%% growth within 1%% tolerance flagged: %v", regs)
	}
	// Improvement: no regression.
	cur = sampleReport()
	cur.Runs[0].Counters.Cycles *= 0.5
	if regs, _ = Diff(base, cur, 0.01); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
	// Missing run.
	cur = sampleReport()
	cur.Runs = cur.Runs[:1]
	regs, _ = Diff(base, cur, 0.01)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want one missing regression, got %v", regs)
	}
	// Scale mismatch is an error.
	cur = sampleReport()
	cur.ScaleDiv = 10
	if _, err := Diff(base, cur, 0.01); err == nil {
		t.Error("scalediv mismatch should error")
	}
}

func TestWriteDiff(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDiff(&buf, nil, 12, 0.02); err != nil {
		t.Errorf("clean diff should not error: %v", err)
	}
	buf.Reset()
	regs := []Regression{{Key: "a/b/c/1", Metric: "cycles", Base: 100, Cur: 120}}
	if err := WriteDiff(&buf, regs, 12, 0.02); err == nil {
		t.Error("regressions should produce an error")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("diff output missing regression line: %q", buf.String())
	}
}
