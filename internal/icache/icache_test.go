package icache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(1024, 32, 2)
	if m := c.Touch(0x100, 4); m != 1 {
		t.Errorf("cold touch misses = %d, want 1", m)
	}
	if m := c.Touch(0x100, 4); m != 0 {
		t.Errorf("warm touch misses = %d, want 0", m)
	}
	if m := c.Touch(0x104, 4); m != 0 {
		t.Errorf("same-line touch misses = %d, want 0", m)
	}
}

func TestTouchSpanningLines(t *testing.T) {
	c := New(1024, 32, 2)
	// 100 bytes starting at 0x10 covers lines 0..3 (0x10..0x74).
	if m := c.Touch(0x10, 100); m != 4 {
		t.Errorf("spanning touch misses = %d, want 4", m)
	}
	if m := c.Touch(0x10, 100); m != 0 {
		t.Errorf("warm spanning touch misses = %d, want 0", m)
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(256, 32, 1) // 8 lines, direct mapped
	// Touch 16 distinct lines: second half evicts first half.
	for i := 0; i < 16; i++ {
		c.Touch(uint64(i)*32, 1)
	}
	if m := c.Touch(0, 1); m != 1 {
		t.Errorf("evicted line should miss, got %d misses", m)
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := New(64, 32, 2) // 1 set, 2 ways
	c.Touch(0, 1)       // line 0
	c.Touch(32, 1)      // line 1
	c.Touch(0, 1)       // line 0 -> MRU
	c.Touch(64, 1)      // line 2 evicts line 1 (LRU)
	if !c.Contains(0) {
		t.Error("line 0 should still be cached")
	}
	if c.Contains(32) {
		t.Error("line 1 should have been evicted")
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := New(16*1024, 32, 4)
	// A 8KB working set fits a 16KB cache: after one pass, no misses.
	for addr := uint64(0); addr < 8*1024; addr += 32 {
		c.Touch(addr, 32)
	}
	before := c.Misses
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 8*1024; addr += 32 {
			c.Touch(addr, 32)
		}
	}
	if c.Misses != before {
		t.Errorf("fitting working set caused %d extra misses", c.Misses-before)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	c := New(16*1024, 32, 4)
	// A 1MB working set streamed repeatedly misses on every line
	// (models replication code growth on the Celeron, paper §7.4).
	var missesLastPass uint64
	for pass := 0; pass < 2; pass++ {
		start := c.Misses
		for addr := uint64(0); addr < 1<<20; addr += 32 {
			c.Touch(addr, 32)
		}
		missesLastPass = c.Misses - start
	}
	if want := uint64((1 << 20) / 32); missesLastPass != want {
		t.Errorf("thrashing pass misses = %d, want %d", missesLastPass, want)
	}
}

func TestMissRateAndReset(t *testing.T) {
	c := New(1024, 32, 2)
	c.Touch(0, 1)
	c.Touch(0, 1)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 || c.Contains(0) {
		t.Error("Reset should clear contents and counters")
	}
	if c.MissRate() != 0 {
		t.Error("MissRate on empty cache should be 0")
	}
}

func TestGeometry(t *testing.T) {
	c := New(16*1024, 32, 4)
	if c.SizeBytes() != 16*1024 {
		t.Errorf("SizeBytes = %d, want 16384", c.SizeBytes())
	}
	if c.LineSize() != 32 {
		t.Errorf("LineSize = %d, want 32", c.LineSize())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []struct{ total, line, ways int }{
		{0, 32, 1}, {1024, 0, 1}, {1024, 32, 0}, {1024, 33, 1}, {96, 32, 2},
	}
	for _, g := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) should panic", g.total, g.line, g.ways)
				}
			}()
			New(g.total, g.line, g.ways)
		}()
	}
}

func TestZeroSizeTouch(t *testing.T) {
	c := New(1024, 32, 2)
	if m := c.Touch(0x100, 0); m != 0 {
		t.Errorf("zero-size touch misses = %d, want 0", m)
	}
	if c.Accesses != 0 {
		t.Error("zero-size touch should not count accesses")
	}
}

// Property: touching the same range twice in a row never misses the
// second time (when the range fits in the cache).
func TestTouchIdempotentWhenFits(t *testing.T) {
	f := func(addr uint16, size uint8) bool {
		c := New(64*1024, 32, 4)
		sz := int(size)%512 + 1
		c.Touch(uint64(addr), sz)
		return c.Touch(uint64(addr), sz) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: misses never exceed accesses.
func TestMissesBounded(t *testing.T) {
	f := func(touches []uint16) bool {
		c := New(1024, 32, 2)
		for _, a := range touches {
			c.Touch(uint64(a), 8)
		}
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
