// Package icache implements a set-associative instruction cache
// simulator with LRU replacement.
//
// The paper's code-growth analysis (Section 7.4) hinges on I-cache
// behaviour: replication-based techniques generate up to megabytes of
// code, which thrashes the 16KB I-cache of the Celeron but mostly fits
// the Pentium 4 trace cache. The simulator models a conventional
// cache; the Pentium 4 trace cache is approximated as a cache with a
// 27-cycle miss penalty (the estimate of Zhou and Ross the paper
// adopts).
package icache

import "fmt"

type line struct {
	tag   uint64
	valid bool
}

// Cache is a set-associative instruction cache with LRU replacement.
type Cache struct {
	lineSize  int
	lineShift uint
	sets      int
	ways      int
	data      [][]line

	// Accesses counts line fetches; Misses counts those that missed.
	Accesses uint64
	Misses   uint64
}

// New returns a cache of totalBytes capacity with the given line size
// and associativity. All of totalBytes/lineSize/ways must produce a
// power-of-two set count.
func New(totalBytes, lineSize, ways int) *Cache {
	if totalBytes <= 0 || lineSize <= 0 || ways <= 0 {
		panic(fmt.Sprintf("icache: bad geometry %d/%d/%d", totalBytes, lineSize, ways))
	}
	if lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("icache: line size %d not a power of two", lineSize))
	}
	lines := totalBytes / lineSize
	if lines == 0 || lines%ways != 0 {
		panic(fmt.Sprintf("icache: %d lines not divisible by %d ways", lines, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("icache: set count %d not a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	c := &Cache{lineSize: lineSize, lineShift: shift, sets: sets, ways: ways}
	c.Reset()
	return c
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.lineSize }

// Touch fetches the byte range [addr, addr+size) through the cache and
// returns the number of line misses it caused.
func (c *Cache) Touch(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	misses := 0
	for l := first; l <= last; l++ {
		if !c.touchLine(l) {
			misses++
		}
	}
	return misses
}

// touchLine fetches one line (by line number) and reports a hit.
func (c *Cache) touchLine(lineNum uint64) bool {
	c.Accesses++
	set := c.data[lineNum&uint64(c.sets-1)]
	for i := range set {
		if set[i].valid && set[i].tag == lineNum {
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			return true
		}
	}
	c.Misses++
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: lineNum, valid: true}
	return false
}

// Contains reports whether the line holding addr is currently cached,
// without updating LRU state.
func (c *Cache) Contains(addr uint64) bool {
	lineNum := addr >> c.lineShift
	set := c.data[lineNum&uint64(c.sets-1)]
	for i := range set {
		if set[i].valid && set[i].tag == lineNum {
			return true
		}
	}
	return false
}

// MissRate returns Misses/Accesses in [0,1].
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears cache contents and counters.
func (c *Cache) Reset() {
	if c.data == nil {
		c.data = make([][]line, c.sets)
		for i := range c.data {
			c.data[i] = make([]line, c.ways)
		}
	} else {
		// Reuse the line storage so a pooled or arena-replayed
		// simulator resets without allocating.
		for i := range c.data {
			clear(c.data[i])
		}
	}
	c.Accesses = 0
	c.Misses = 0
}
