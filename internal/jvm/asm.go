package jvm

import (
	"fmt"
	"strconv"
	"strings"

	"vmopt/internal/core"
)

// Assemble parses jasm source into a Program.
//
// Syntax (one construct per line; ';' starts a comment):
//
//	class Point
//	  field x
//	  field y
//	end
//
//	static counter
//
//	method Point.dist virtual args 1 locals 2
//	loop:
//	  iload_0
//	  getfield Point.x
//	  ifeq done
//	  goto loop
//	done:
//	  ireturn
//	end
//
// Operand forms: integers (iconst, iload, ...), "idx delta" for iinc,
// labels for branches, Class.field for getfield/putfield, static
// names for getstatic/putstatic, Class for new, Class.method for
// invokestatic, and a bare method name for invokevirtual. The entry
// point is the static method whose simple name is "main".
func Assemble(src string) (*Program, error) {
	p := &Program{
		classByName:  make(map[string]*Class),
		methodByName: make(map[string]*Method),
	}
	a := &assembler{prog: p,
		staticSlot: make(map[string]int),
		vslots:     make(map[string]int),
		fieldRefID: make(map[FieldRef]int),
	}
	lines := strings.Split(src, "\n")

	// Pass 1: declarations (classes, fields, statics, method
	// signatures) so bodies can reference methods defined later.
	if err := a.scan(lines); err != nil {
		return nil, err
	}
	// Pass 2: assemble method bodies.
	if err := a.emit(lines); err != nil {
		return nil, err
	}

	p.vslotArgs = make([]int, len(p.VNames))
	for i := range p.vslotArgs {
		p.vslotArgs[i] = -1
	}
	for _, m := range p.Methods {
		if m.Virtual {
			if prev := p.vslotArgs[m.VSlot]; prev >= 0 && prev != m.NumArgs {
				return nil, fmt.Errorf("jasm: virtual method %q has inconsistent arg counts (%d vs %d)",
					simpleName(m.Name), prev, m.NumArgs)
			}
			p.vslotArgs[m.VSlot] = m.NumArgs
		}
		if !m.Virtual && simpleName(m.Name) == "main" && p.Main == nil {
			p.Main = m
		}
	}
	if p.Main == nil {
		return nil, fmt.Errorf("jasm: no static method named main")
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	prog       *Program
	staticSlot map[string]int
	vslots     map[string]int
	fieldRefID map[FieldRef]int
}

func simpleName(qualified string) string {
	if i := strings.LastIndex(qualified, "."); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

func fields(line string) []string {
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	return strings.Fields(line)
}

// scan runs declaration pass 1.
func (a *assembler) scan(lines []string) error {
	p := a.prog
	var curClass *Class
	inMethod := false
	for ln, raw := range lines {
		f := fields(raw)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "class":
			if inMethod || curClass != nil {
				return fmt.Errorf("jasm:%d: class inside another construct", ln+1)
			}
			if len(f) != 2 {
				return fmt.Errorf("jasm:%d: class needs a name", ln+1)
			}
			if _, dup := p.classByName[f[1]]; dup {
				return fmt.Errorf("jasm:%d: duplicate class %q", ln+1, f[1])
			}
			curClass = &Class{ID: len(p.Classes), Name: f[1], VTable: make(map[int]int)}
			p.Classes = append(p.Classes, curClass)
			p.classByName[f[1]] = curClass
		case "field":
			if curClass == nil {
				return fmt.Errorf("jasm:%d: field outside class", ln+1)
			}
			if len(f) != 2 {
				return fmt.Errorf("jasm:%d: field needs a name", ln+1)
			}
			if curClass.FieldOffset(f[1]) >= 0 {
				return fmt.Errorf("jasm:%d: duplicate field %q", ln+1, f[1])
			}
			curClass.Fields = append(curClass.Fields, f[1])
		case "static":
			if len(f) != 2 {
				return fmt.Errorf("jasm:%d: static needs a name", ln+1)
			}
			if _, dup := a.staticSlot[f[1]]; dup {
				return fmt.Errorf("jasm:%d: duplicate static %q", ln+1, f[1])
			}
			a.staticSlot[f[1]] = len(p.StaticNames)
			p.StaticNames = append(p.StaticNames, f[1])
		case "method":
			if inMethod || curClass != nil {
				return fmt.Errorf("jasm:%d: method inside another construct", ln+1)
			}
			m, err := a.parseMethodHeader(f, ln+1)
			if err != nil {
				return err
			}
			if _, dup := p.methodByName[m.Name]; dup {
				return fmt.Errorf("jasm:%d: duplicate method %q", ln+1, m.Name)
			}
			m.ID = len(p.Methods)
			p.Methods = append(p.Methods, m)
			p.methodByName[m.Name] = m
			if m.Virtual {
				if m.Class == nil {
					return fmt.Errorf("jasm:%d: virtual method %q needs a class", ln+1, m.Name)
				}
				m.Class.VTable[m.VSlot] = m.ID
			}
			inMethod = true
		case "end":
			if inMethod {
				inMethod = false
			} else if curClass != nil {
				curClass = nil
			} else {
				return fmt.Errorf("jasm:%d: stray end", ln+1)
			}
		default:
			// Method bodies are handled in pass 2.
			if !inMethod {
				return fmt.Errorf("jasm:%d: unexpected %q outside method", ln+1, f[0])
			}
		}
	}
	if inMethod || curClass != nil {
		return fmt.Errorf("jasm: unterminated construct at end of input")
	}
	return nil
}

func (a *assembler) parseMethodHeader(f []string, ln int) (*Method, error) {
	// method Class.name [virtual|static] args N locals M
	if len(f) < 2 {
		return nil, fmt.Errorf("jasm:%d: method needs a name", ln)
	}
	m := &Method{Name: f[1], VSlot: -1}
	if i := strings.LastIndex(f[1], "."); i >= 0 {
		// The qualifier may be a declared class (required for
		// virtual methods) or a plain namespace like "Main".
		if cls, ok := a.prog.classByName[f[1][:i]]; ok {
			m.Class = cls
		}
	}
	rest := f[2:]
	for len(rest) > 0 {
		switch rest[0] {
		case "virtual":
			m.Virtual = true
			rest = rest[1:]
		case "static":
			rest = rest[1:]
		case "args", "locals":
			if len(rest) < 2 {
				return nil, fmt.Errorf("jasm:%d: %s needs a count", ln, rest[0])
			}
			n, err := strconv.Atoi(rest[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("jasm:%d: bad %s count %q", ln, rest[0], rest[1])
			}
			if rest[0] == "args" {
				m.NumArgs = n
			} else {
				m.NumLocals = n
			}
			rest = rest[2:]
		default:
			return nil, fmt.Errorf("jasm:%d: unexpected %q in method header", ln, rest[0])
		}
	}
	if m.NumLocals < m.NumArgs {
		m.NumLocals = m.NumArgs
	}
	if m.Virtual {
		name := simpleName(m.Name)
		slot, ok := a.vslots[name]
		if !ok {
			slot = len(a.prog.VNames)
			a.vslots[name] = slot
			a.prog.VNames = append(a.prog.VNames, name)
		}
		m.VSlot = slot
	}
	return m, nil
}

// emit runs body pass 2.
func (a *assembler) emit(lines []string) error {
	p := a.prog
	var cur *Method
	labels := make(map[string]int)
	type patch struct {
		pos   int
		label string
		line  int
	}
	var patches []patch
	inClass := false

	finishMethod := func() error {
		for _, pt := range patches {
			tgt, ok := labels[pt.label]
			if !ok {
				return fmt.Errorf("jasm:%d: undefined label %q", pt.line, pt.label)
			}
			p.Code[pt.pos].Arg = int64(tgt)
		}
		patches = patches[:0]
		labels = make(map[string]int)
		cur.End = len(p.Code)
		cur = nil
		return nil
	}

	for ln, raw := range lines {
		f := fields(raw)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "class":
			inClass = true
			continue
		case "field", "static":
			continue
		case "method":
			cur = p.methodByName[f[1]]
			cur.Entry = len(p.Code)
			continue
		case "end":
			if inClass {
				inClass = false
				continue
			}
			if cur != nil {
				if err := finishMethod(); err != nil {
					return err
				}
			}
			continue
		}
		if cur == nil {
			continue // already validated by pass 1
		}
		// Label?
		if strings.HasSuffix(f[0], ":") && len(f) == 1 {
			name := strings.TrimSuffix(f[0], ":")
			if _, dup := labels[name]; dup {
				return fmt.Errorf("jasm:%d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(p.Code)
			continue
		}
		in, lbl, err := a.instruction(f, ln+1)
		if err != nil {
			return err
		}
		if lbl != "" {
			patches = append(patches, patch{pos: len(p.Code), label: lbl, line: ln + 1})
		}
		p.Code = append(p.Code, in)
	}
	return nil
}

// opByName maps mnemonics to opcodes.
var opByName = func() map[string]uint32 {
	m := make(map[string]uint32, NumOps)
	for op := uint32(0); op < NumOps; op++ {
		m[meta[op].Name] = op
	}
	return m
}()

// instruction assembles one mnemonic line, returning the instruction
// and a label to patch (branches).
func (a *assembler) instruction(f []string, ln int) (core.Inst, string, error) {
	op, ok := opByName[f[0]]
	if !ok {
		return core.Inst{}, "", fmt.Errorf("jasm:%d: unknown mnemonic %q", ln, f[0])
	}
	m := meta[op]
	switch op {
	case OpIinc:
		if len(f) != 3 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: iinc needs index and delta", ln)
		}
		idx, err1 := strconv.Atoi(f[1])
		delta, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || idx < 0 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: bad iinc operands", ln)
		}
		return core.Inst{Op: op, Arg: EncodeIinc(idx, int32(delta))}, "", nil

	case OpIfeq, OpIfne, OpIflt, OpIfge, OpIfgt, OpIfle,
		OpIfIcmpeq, OpIfIcmpne, OpIfIcmplt, OpIfIcmpge, OpIfIcmpgt, OpIfIcmple, OpGoto:
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: %s needs a label", ln, f[0])
		}
		return core.Inst{Op: op}, f[1], nil

	case OpGetfield, OpPutfield:
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: %s needs Class.field", ln, f[0])
		}
		i := strings.LastIndex(f[1], ".")
		if i < 0 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: %s operand %q not Class.field", ln, f[0], f[1])
		}
		ref := FieldRef{ClassName: f[1][:i], FieldName: f[1][i+1:]}
		if _, ok := a.prog.classByName[ref.ClassName]; !ok {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: unknown class %q", ln, ref.ClassName)
		}
		id, ok := a.fieldRefID[ref]
		if !ok {
			id = len(a.prog.FieldRefs)
			a.prog.FieldRefs = append(a.prog.FieldRefs, ref)
			a.fieldRefID[ref] = id
		}
		return core.Inst{Op: op, Arg: int64(id)}, "", nil

	case OpGetstatic, OpPutstatic:
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: %s needs a static name", ln, f[0])
		}
		slot, ok := a.staticSlot[f[1]]
		if !ok {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: unknown static %q", ln, f[1])
		}
		return core.Inst{Op: op, Arg: int64(slot)}, "", nil

	case OpNew:
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: new needs a class", ln)
		}
		c, ok := a.prog.classByName[f[1]]
		if !ok {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: unknown class %q", ln, f[1])
		}
		return core.Inst{Op: op, Arg: int64(c.ID)}, "", nil

	case OpInvokestatic:
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: invokestatic needs Class.method", ln)
		}
		m2, ok := a.prog.methodByName[f[1]]
		if !ok {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: unknown method %q", ln, f[1])
		}
		if m2.Virtual {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: %q is virtual; use invokevirtual", ln, f[1])
		}
		return core.Inst{Op: op, Arg: int64(m2.ID)}, "", nil

	case OpInvokevirtual:
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: invokevirtual needs a method name", ln)
		}
		slot, ok := a.vslots[f[1]]
		if !ok {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: no virtual method named %q", ln, f[1])
		}
		return core.Inst{Op: op, Arg: int64(slot)}, "", nil
	}

	// Generic numeric or no-operand instructions.
	if m.HasArg {
		if len(f) != 2 {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: %s needs an operand", ln, f[0])
		}
		n, err := strconv.ParseInt(f[1], 0, 64)
		if err != nil {
			return core.Inst{}, "", fmt.Errorf("jasm:%d: bad operand %q", ln, f[1])
		}
		return core.Inst{Op: op, Arg: n}, "", nil
	}
	if len(f) != 1 {
		return core.Inst{}, "", fmt.Errorf("jasm:%d: %s takes no operand", ln, f[0])
	}
	return core.Inst{Op: op}, "", nil
}
