package jvm

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
)

// runSrc assembles and runs src, returning the final VM.
func runSrc(t *testing.T, src string) *VM {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	v := NewVM(p)
	if err := v.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

func TestArithmeticAndPrint(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 0
  iconst 6
  iconst 7
  imul
  iprint
  return
end`)
	if got := string(v.Out); got != "42 " {
		t.Errorf("out = %q, want %q", got, "42 ")
	}
}

func TestLocalsAndSpecializedLoads(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 5
  iconst 10
  istore_0
  iconst 20
  istore_1
  iconst 30
  istore_2
  iconst 40
  istore_3
  iconst 50
  istore 4
  iload_0
  iload_1
  iadd
  iload_2
  iadd
  iload_3
  iadd
  iload 4
  iadd
  iprint
  return
end`)
	if got := string(v.Out); got != "150 " {
		t.Errorf("out = %q, want %q", got, "150 ")
	}
}

func TestIinc(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 1
  iconst 5
  istore_0
  iinc 0 7
  iinc 0 -2
  iload_0
  iprint
  return
end`)
	if got := string(v.Out); got != "10 " {
		t.Errorf("out = %q, want %q", got, "10 ")
	}
}

func TestLoopSumWithBranches(t *testing.T) {
	// sum 1..100 with a countdown loop.
	v := runSrc(t, `
method Main.main static args 0 locals 2
  iconst 100
  istore_0
  iconst 0
  istore_1
loop:
  iload_0
  ifeq done
  iload_1
  iload_0
  iadd
  istore_1
  iinc 0 -1
  goto loop
done:
  iload_1
  iprint
  return
end`)
	if got := string(v.Out); got != "5050 " {
		t.Errorf("out = %q, want %q", got, "5050 ")
	}
}

func TestCompareBranches(t *testing.T) {
	tests := []struct {
		op   string
		a, b int
		want string // "T " or "F "
	}{
		{"if_icmpeq", 3, 3, "84 "}, {"if_icmpeq", 3, 4, "70 "},
		{"if_icmpne", 3, 4, "84 "}, {"if_icmplt", 3, 4, "84 "},
		{"if_icmpge", 4, 4, "84 "}, {"if_icmpgt", 5, 4, "84 "},
		{"if_icmple", 3, 4, "84 "}, {"if_icmple", 5, 4, "70 "},
	}
	for _, tt := range tests {
		src := `
method Main.main static args 0 locals 0
  iconst ` + itoa(tt.a) + `
  iconst ` + itoa(tt.b) + `
  ` + tt.op + ` yes
  iconst 70
  iprint
  return
yes:
  iconst 84
  iprint
  return
end`
		v := runSrc(t, src)
		if got := string(v.Out); got != tt.want {
			t.Errorf("%s %d %d: out = %q, want %q", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// newTestSim builds a simulator with generous BTB and I-cache.
func newTestSim() *cpu.Sim {
	return cpu.NewSim(cpu.Machine{
		Name:      "jvm-test",
		Predictor: cpu.PredictBTB, BTBEntries: 1 << 16, BTBWays: 4,
		ICacheBytes: 1 << 22, ICacheLine: 64, ICacheWays: 8,
		MispredictPenalty: 20, ICacheMissPenalty: 27,
		CPI: 1, ClockMHz: 1000,
	})
}

func TestStaticCalls(t *testing.T) {
	v := runSrc(t, `
method Main.square static args 1 locals 1
  iload_0
  iload_0
  imul
  ireturn
end

method Main.main static args 0 locals 0
  iconst 9
  invokestatic Main.square
  iprint
  return
end`)
	if got := string(v.Out); got != "81 " {
		t.Errorf("out = %q, want %q", got, "81 ")
	}
}

func TestRecursion(t *testing.T) {
	v := runSrc(t, `
method Main.fib static args 1 locals 1
  iload_0
  iconst 2
  if_icmplt base
  iload_0
  iconst 1
  isub
  invokestatic Main.fib
  iload_0
  iconst 2
  isub
  invokestatic Main.fib
  iadd
  ireturn
base:
  iload_0
  ireturn
end

method Main.main static args 0 locals 0
  iconst 15
  invokestatic Main.fib
  iprint
  return
end`)
	if got := string(v.Out); got != "610 " {
		t.Errorf("out = %q, want %q", got, "610 ")
	}
}

const shapesSrc = `
class Square
  field side
end

class Rect
  field w
  field h
end

method Square.area virtual args 1 locals 1
  iload_0
  getfield Square.side
  iload_0
  getfield Square.side
  imul
  ireturn
end

method Rect.area virtual args 1 locals 1
  iload_0
  getfield Rect.w
  iload_0
  getfield Rect.h
  imul
  ireturn
end

method Main.main static args 0 locals 2
  new Square
  istore_0
  iload_0
  iconst 5
  putfield Square.side
  new Rect
  istore_1
  iload_1
  iconst 3
  putfield Rect.w
  iload_1
  iconst 4
  putfield Rect.h
  iload_0
  invokevirtual area
  iprint
  iload_1
  invokevirtual area
  iprint
  return
end`

func TestObjectsAndVirtualDispatch(t *testing.T) {
	v := runSrc(t, shapesSrc)
	if got := string(v.Out); got != "25 12 " {
		t.Errorf("out = %q, want %q", got, "25 12 ")
	}
}

func TestQuickeningRewritesCode(t *testing.T) {
	p := MustAssemble(shapesSrc)
	v := NewVM(p)
	// Before: getfield/putfield/new/invokevirtual are quickable.
	counts := map[uint32]int{}
	for _, in := range v.Code() {
		counts[in.Op]++
	}
	if counts[OpGetfield] == 0 || counts[OpNew] == 0 || counts[OpInvokevirtual] == 0 {
		t.Fatal("expected quickable instructions before execution")
	}
	if err := v.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for pos, in := range v.Code() {
		switch in.Op {
		case OpGetfield, OpPutfield, OpNew, OpInvokevirtual, OpInvokestatic, OpGetstatic, OpPutstatic:
			t.Errorf("position %d still holds quickable %s after full execution", pos, OpName(in.Op))
		}
	}
	// The pristine program must be untouched.
	for _, in := range p.Code {
		switch in.Op {
		case OpGetfieldQuick, OpPutfieldQuick, OpNewQuick:
			t.Error("program template was mutated by execution")
		}
	}
}

func TestGetfieldQuickArgIsOffset(t *testing.T) {
	p := MustAssemble(shapesSrc)
	v := NewVM(p)
	if err := v.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	rect, _ := p.ClassByName("Rect")
	wantH := int64(rect.FieldOffset("h"))
	found := false
	for _, in := range v.Code() {
		if in.Op == OpGetfieldQuick && in.Arg == wantH {
			found = true
		}
	}
	if !found {
		t.Error("no getfield_quick with the resolved offset of Rect.h")
	}
}

func TestStatics(t *testing.T) {
	v := runSrc(t, `
static counter

method Main.bump static args 0 locals 0
  getstatic counter
  iconst 1
  iadd
  putstatic counter
  return
end

method Main.main static args 0 locals 0
  invokestatic Main.bump
  invokestatic Main.bump
  invokestatic Main.bump
  getstatic counter
  iprint
  return
end`)
	if got := string(v.Out); got != "3 " {
		t.Errorf("out = %q, want %q", got, "3 ")
	}
}

func TestArrays(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 2
  iconst 10
  newarray
  istore_0
  iconst 0
  istore_1
loop:
  iload_1
  iconst 10
  if_icmpge done
  iload_0
  iload_1
  iload_1
  iload_1
  imul
  iastore
  iinc 1 1
  goto loop
done:
  iload_0
  iconst 7
  iaload
  iprint
  iload_0
  arraylength
  iprint
  return
end`)
	if got := string(v.Out); got != "49 10 " {
		t.Errorf("out = %q, want %q", got, "49 10 ")
	}
}

func TestByteArrayMasks(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 1
  iconst 4
  newarray
  istore_0
  iload_0
  iconst 0
  iconst 511
  bastore
  iload_0
  iconst 0
  baload
  iprint
  return
end`)
	if got := string(v.Out); got != "255 " {
		t.Errorf("out = %q, want %q", got, "255 ")
	}
}

func TestStackOps(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 0
  iconst 1
  iconst 2
  swap
  isub      ; 2 - 1 = 1
  iprint
  iconst 5
  dup
  iadd      ; 10
  iprint
  iconst 8
  iconst 9
  pop
  iprint    ; 8
  iconst 3
  iconst 4
  dup_x1    ; 4 3 4
  iadd      ; 4 7
  iadd      ; 11
  iprint
  return
end`)
	if got := string(v.Out); got != "1 10 8 11 " {
		t.Errorf("out = %q", got)
	}
}

func TestCprint(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 0
  iconst 104
  cprint
  iconst 105
  cprint
  return
end`)
	if got := string(v.Out); got != "hi" {
		t.Errorf("out = %q, want %q", got, "hi")
	}
}

func TestRuntimeErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want error
	}{
		{"div by zero", `
method Main.main static args 0 locals 0
  iconst 1
  iconst 0
  idiv
  return
end`, ErrDivByZero},
		{"null getfield", `
class C
  field x
end
method Main.main static args 0 locals 0
  iconst 0
  getfield C.x
  return
end`, ErrNullPointer},
		{"bounds", `
method Main.main static args 0 locals 1
  iconst 3
  newarray
  istore_0
  iload_0
  iconst 5
  iaload
  return
end`, ErrBounds},
		{"negative array", `
method Main.main static args 0 locals 0
  iconst -1
  newarray
  return
end`, ErrBounds},
		{"underflow", `
method Main.main static args 0 locals 0
  iadd
  return
end`, ErrStackUnderflow},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := MustAssemble(tt.src)
			v := NewVM(p)
			err := v.Run(100_000)
			if err == nil || !errors.Is(err, tt.want) {
				t.Errorf("Run = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestInfiniteRecursionOverflows(t *testing.T) {
	p := MustAssemble(`
method Main.r static args 0 locals 0
  invokestatic Main.r
  return
end
method Main.main static args 0 locals 0
  invokestatic Main.r
  return
end`)
	v := NewVM(p)
	err := v.Run(10_000_000)
	if err == nil || !errors.Is(err, ErrFrameOverflow) {
		t.Errorf("Run = %v, want frame overflow", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no main", "method Main.f static args 0 locals 0\n return\nend", "no static method named main"},
		{"unknown mnemonic", "method Main.main static args 0 locals 0\n frob\n return\nend", "unknown mnemonic"},
		{"undefined label", "method Main.main static args 0 locals 0\n goto nowhere\n return\nend", "undefined label"},
		{"dup label", "method Main.main static args 0 locals 0\nx:\nx:\n return\nend", "duplicate label"},
		{"unknown class", "method Main.main static args 0 locals 0\n new Foo\n return\nend", "unknown class"},
		{"unknown method", "method Main.main static args 0 locals 0\n invokestatic Main.f\n return\nend", "unknown method"},
		{"unknown static", "method Main.main static args 0 locals 0\n getstatic nope\n return\nend", "unknown static"},
		{"stray end", "end", "stray end"},
		{"field outside class", "field x", "field outside class"},
		{"dup class", "class A\nend\nclass A\nend\nmethod Main.main static args 0 locals 0\n return\nend", "duplicate class"},
		{"dup method", "method Main.main static args 0 locals 0\n return\nend\nmethod Main.main static args 0 locals 0\n return\nend", "duplicate method"},
		{"dup field", "class A\nfield x\nfield x\nend", "duplicate field"},
		{"dup static", "static s\nstatic s", "duplicate static"},
		{"unterminated", "method Main.main static args 0 locals 0", "unterminated"},
		{"virtual needs class", "method lone virtual args 1 locals 1\n return\nend", "needs a class"},
		{"bad operand count", "method Main.main static args 0 locals 0\n iconst\n return\nend", "needs an operand"},
		{"operand on plain op", "method Main.main static args 0 locals 0\n iadd 3\n return\nend", "takes no operand"},
		{"invokevirtual unknown", "method Main.main static args 0 locals 0\n invokevirtual nothing\n return\nend", "no virtual method"},
		{"invokestatic on virtual", `class C
end
method C.v virtual args 1 locals 1
 return
end
method Main.main static args 0 locals 0
 invokestatic C.v
 return
end`, "use invokevirtual"},
		{"inconsistent vslot args", `class A
end
class B
end
method A.f virtual args 1 locals 1
 return
end
method B.f virtual args 2 locals 2
 return
end
method Main.main static args 0 locals 0
 return
end`, "inconsistent arg counts"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Assemble error = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestStepAfterHalt(t *testing.T) {
	v := runSrc(t, "method Main.main static args 0 locals 0\n return\nend")
	if _, err := v.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v", err)
	}
}

func TestMainWithIreturn(t *testing.T) {
	v := runSrc(t, `
method Main.main static args 0 locals 0
  iconst 42
  ireturn
end`)
	s := v.Stack()
	if len(s) != 1 || s[0] != 42 {
		t.Errorf("main return value stack = %v", s)
	}
}

func TestEntryPoints(t *testing.T) {
	p := MustAssemble(shapesSrc)
	eps := p.EntryPoints()
	if len(eps) != len(p.Methods) {
		t.Fatalf("entry points %d != methods %d", len(eps), len(p.Methods))
	}
	for k, m := range p.Methods {
		if eps[k] != m.Entry {
			t.Errorf("entry point %d = %d, want %d", k, eps[k], m.Entry)
		}
	}
}

func TestISAMetaConsistency(t *testing.T) {
	is := ISA()
	if is.Name() != "jvm" {
		t.Errorf("ISA name = %q", is.Name())
	}
	for op := uint32(0); op < uint32(is.NumOps()); op++ {
		m := is.Meta(op)
		if m.Name == "" || m.Work <= 0 || m.Bytes <= 0 {
			t.Errorf("opcode %d (%s) has bad meta %+v", op, m.Name, m)
		}
		if m.Quickable {
			q, ok := QuickOf(op)
			if !ok {
				t.Errorf("quickable %s has no quick variant", m.Name)
				continue
			}
			qm := is.Meta(q)
			if qm.Quickable {
				t.Errorf("quick variant %s must not itself be quickable", qm.Name)
			}
			if m.QuickBytesMax < qm.Bytes {
				t.Errorf("%s QuickBytesMax %d below quick variant size %d",
					m.Name, m.QuickBytesMax, qm.Bytes)
			}
			if m.QuickWork <= 0 {
				t.Errorf("%s has no quickening cost", m.Name)
			}
		}
	}
}

func TestMetaPanicsOnBadOpcode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Meta on bad opcode should panic")
		}
	}()
	ISA().Meta(NumOps + 3)
}

// Property: iinc encode/decode round-trips.
func TestIincRoundTrip(t *testing.T) {
	f := func(idx uint16, delta int32) bool {
		i, d := DecodeIinc(EncodeIinc(int(idx), delta))
		return i == int(idx) && d == delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arithmetic matches Go semantics.
func TestArithMatchesGo(t *testing.T) {
	f := func(a, b int16) bool {
		src := `
method Main.main static args 0 locals 0
  iconst ` + itoa(int(a)) + `
  iconst ` + itoa(int(b)) + `
  iadd
  iprint
  iconst ` + itoa(int(a)) + `
  iconst ` + itoa(int(b)) + `
  ixor
  iprint
  return
end`
		v := runSrc(t, src)
		want := itoa(int(int64(a)+int64(b))) + " " + itoa(int(int64(a)^int64(b))) + " "
		return string(v.Out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestJVMUnderCoreEngine ties the JVM into the dispatch engine: all
// techniques produce identical output and quickening works under
// dynamic code copying.
func TestJVMUnderCoreEngine(t *testing.T) {
	for _, tech := range []core.Technique{
		core.TSwitch, core.TPlain, core.TStaticRepl,
		core.TDynamicRepl, core.TDynamicSuper, core.TDynamicBoth, core.TAcrossBB,
	} {
		p := MustAssemble(shapesSrc)
		v := NewVM(p)
		plan, err := core.BuildPlan(v.Code(), ISA(), core.Config{
			Technique: tech, ExtraLeaders: p.EntryPoints(),
		})
		if err != nil {
			t.Fatalf("%v: BuildPlan: %v", tech, err)
		}
		sim := newTestSim()
		if _, err := core.Run(v, plan, sim, 1_000_000); err != nil {
			t.Fatalf("%v: Run: %v", tech, err)
		}
		if got := string(v.Out); got != "25 12 " {
			t.Errorf("%v: out = %q", tech, got)
		}
	}
}

// TestJVMRelocatability: the JVM ISA passes the paper's
// padding-comparison relocatability check used before dynamic code
// copying.
func TestJVMRelocatability(t *testing.T) {
	if err := core.VerifyRelocatability(ISA()); err != nil {
		t.Error(err)
	}
}

// TestQuickableNonRelocatable: quickable originals must not be
// directly copied (they are patched via gaps instead).
func TestQuickableNonRelocatable(t *testing.T) {
	is := ISA()
	for op := uint32(0); op < uint32(is.NumOps()); op++ {
		m := is.Meta(op)
		if m.Quickable && m.Relocatable {
			t.Errorf("%s is quickable and relocatable; dynamic techniques would copy stale code", m.Name)
		}
	}
}
