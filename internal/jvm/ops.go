// Package jvm implements a Java virtual machine subset sufficient to
// reproduce the paper's JVM results: a stack bytecode with local
// variables, objects with fields, virtual and static methods, arrays,
// and — crucially — "quickable" instructions (getfield, putfield,
// getstatic, putstatic, new, invokevirtual, invokestatic) that
// resolve symbolic references on first execution and rewrite
// themselves into quick variants (paper Section 5.4).
//
// Programs are written in a small text assembly ("jasm", see asm.go)
// and flattened to the core.Inst representation: all method bodies
// concatenated into one code array, with calls targeting method entry
// positions.
package jvm

import (
	"fmt"

	"vmopt/internal/core"
)

// Opcodes of the JVM subset.
const (
	OpNop uint32 = iota

	// Constants.
	OpIconst // arg: value

	// Local variables. The _0.._3 forms mirror the real JVM's
	// specialized opcodes; they matter for the paper's observation
	// that a couple of load opcodes dominate indirect branch
	// targets (Section 7.3).
	OpIload // arg: index
	OpIload0
	OpIload1
	OpIload2
	OpIload3
	OpIstore // arg: index
	OpIstore0
	OpIstore1
	OpIstore2
	OpIstore3
	OpIinc // arg: packed (index, delta)

	// Operand stack.
	OpDup
	OpDupX1
	OpPop
	OpSwap

	// Integer arithmetic.
	OpIadd
	OpIsub
	OpImul
	OpIdiv
	OpIrem
	OpIneg
	OpIshl
	OpIshr
	OpIushr
	OpIand
	OpIor
	OpIxor

	// Branches (arg: target position).
	OpIfeq
	OpIfne
	OpIflt
	OpIfge
	OpIfgt
	OpIfle
	OpIfIcmpeq
	OpIfIcmpne
	OpIfIcmplt
	OpIfIcmpge
	OpIfIcmpgt
	OpIfIcmple
	OpGoto

	// Arrays.
	OpNewarray // pops length, pushes ref
	OpIaload
	OpIastore
	OpBaload
	OpBastore
	OpArraylength

	// Objects: quickable originals and their quick versions.
	OpNew           // arg: class id; quickable
	OpNewQuick      // arg: class id
	OpGetfield      // arg: field ref id; quickable
	OpGetfieldQuick // arg: resolved offset
	OpPutfield      // arg: field ref id; quickable
	OpPutfieldQuick // arg: resolved offset
	OpGetstatic     // arg: static ref id; quickable
	OpGetstaticQ    // arg: resolved static slot
	OpPutstatic     // arg: static ref id; quickable
	OpPutstaticQ    // arg: resolved static slot

	// Calls: quickable originals and quick versions.
	OpInvokestatic  // arg: method id; quickable
	OpInvokestaticQ // arg: method id
	OpInvokevirtual // arg: vtable slot; quickable
	OpInvokevirtualQ
	OpReturn  // return void
	OpIreturn // return int

	// Output (models System.out; calls into the runtime, hence
	// non-relocatable).
	OpIprint // pop, print decimal + space
	OpCprint // pop, print as character

	// NumOps is the opcode-space size.
	NumOps
)

// EncodeIinc packs a local index and a signed delta into one arg.
func EncodeIinc(index int, delta int32) int64 {
	return int64(index)<<32 | int64(uint32(delta))
}

// DecodeIinc unpacks an iinc argument.
func DecodeIinc(arg int64) (index int, delta int32) {
	return int(arg >> 32), int32(uint32(arg))
}

// meta is the per-opcode cost/classification table. JVM instructions
// do more work per dispatch than Forth's (Section 7.2.2: the JVM's
// dispatch-to-real-work ratio is lower), reflected in higher Work
// values for field access and calls.
var meta = [NumOps]core.OpMeta{
	OpNop:    {Name: "nop", Work: 2, Bytes: 4, Relocatable: true},
	OpIconst: {Name: "iconst", HasArg: true, Work: 6, Bytes: 14, Relocatable: true},

	OpIload:   {Name: "iload", HasArg: true, Work: 8, Bytes: 18, Relocatable: true},
	OpIload0:  {Name: "iload_0", Work: 7, Bytes: 15, Relocatable: true},
	OpIload1:  {Name: "iload_1", Work: 7, Bytes: 15, Relocatable: true},
	OpIload2:  {Name: "iload_2", Work: 7, Bytes: 15, Relocatable: true},
	OpIload3:  {Name: "iload_3", Work: 7, Bytes: 15, Relocatable: true},
	OpIstore:  {Name: "istore", HasArg: true, Work: 8, Bytes: 18, Relocatable: true},
	OpIstore0: {Name: "istore_0", Work: 7, Bytes: 15, Relocatable: true},
	OpIstore1: {Name: "istore_1", Work: 7, Bytes: 15, Relocatable: true},
	OpIstore2: {Name: "istore_2", Work: 7, Bytes: 15, Relocatable: true},
	OpIstore3: {Name: "istore_3", Work: 7, Bytes: 15, Relocatable: true},
	OpIinc:    {Name: "iinc", HasArg: true, Work: 9, Bytes: 20, Relocatable: true},

	OpDup:   {Name: "dup", Work: 6, Bytes: 13, Relocatable: true},
	OpDupX1: {Name: "dup_x1", Work: 9, Bytes: 20, Relocatable: true},
	OpPop:   {Name: "pop", Work: 4, Bytes: 8, Relocatable: true},
	OpSwap:  {Name: "swap", Work: 8, Bytes: 17, Relocatable: true},

	OpIadd: {Name: "iadd", Work: 8, Bytes: 16, Relocatable: true},
	OpIsub: {Name: "isub", Work: 8, Bytes: 16, Relocatable: true},
	OpImul: {Name: "imul", Work: 9, Bytes: 18, Relocatable: true},
	// Division checks for zero and can throw; the throw path uses
	// an indirect branch to keep the body relocatable (Section 5.3).
	OpIdiv:  {Name: "idiv", Work: 16, Bytes: 34, Relocatable: true},
	OpIrem:  {Name: "irem", Work: 16, Bytes: 34, Relocatable: true},
	OpIneg:  {Name: "ineg", Work: 6, Bytes: 12, Relocatable: true},
	OpIshl:  {Name: "ishl", Work: 9, Bytes: 18, Relocatable: true},
	OpIshr:  {Name: "ishr", Work: 9, Bytes: 18, Relocatable: true},
	OpIushr: {Name: "iushr", Work: 9, Bytes: 18, Relocatable: true},
	OpIand:  {Name: "iand", Work: 8, Bytes: 16, Relocatable: true},
	OpIor:   {Name: "ior", Work: 8, Bytes: 16, Relocatable: true},
	OpIxor:  {Name: "ixor", Work: 8, Bytes: 16, Relocatable: true},

	OpIfeq:     {Name: "ifeq", HasArg: true, Work: 10, Bytes: 24, Relocatable: true, Branch: true},
	OpIfne:     {Name: "ifne", HasArg: true, Work: 10, Bytes: 24, Relocatable: true, Branch: true},
	OpIflt:     {Name: "iflt", HasArg: true, Work: 10, Bytes: 24, Relocatable: true, Branch: true},
	OpIfge:     {Name: "ifge", HasArg: true, Work: 10, Bytes: 24, Relocatable: true, Branch: true},
	OpIfgt:     {Name: "ifgt", HasArg: true, Work: 10, Bytes: 24, Relocatable: true, Branch: true},
	OpIfle:     {Name: "ifle", HasArg: true, Work: 10, Bytes: 24, Relocatable: true, Branch: true},
	OpIfIcmpeq: {Name: "if_icmpeq", HasArg: true, Work: 11, Bytes: 26, Relocatable: true, Branch: true},
	OpIfIcmpne: {Name: "if_icmpne", HasArg: true, Work: 11, Bytes: 26, Relocatable: true, Branch: true},
	OpIfIcmplt: {Name: "if_icmplt", HasArg: true, Work: 11, Bytes: 26, Relocatable: true, Branch: true},
	OpIfIcmpge: {Name: "if_icmpge", HasArg: true, Work: 11, Bytes: 26, Relocatable: true, Branch: true},
	OpIfIcmpgt: {Name: "if_icmpgt", HasArg: true, Work: 11, Bytes: 26, Relocatable: true, Branch: true},
	OpIfIcmple: {Name: "if_icmple", HasArg: true, Work: 11, Bytes: 26, Relocatable: true, Branch: true},
	OpGoto:     {Name: "goto", HasArg: true, Work: 5, Bytes: 12, Relocatable: true, Branch: true},

	// Array accesses include bounds checks; the throw path is an
	// indirect branch (relocatable, as above). Allocation calls the
	// GC and is not relocatable.
	OpNewarray:    {Name: "newarray", Work: 40, Bytes: 60},
	OpIaload:      {Name: "iaload", Work: 13, Bytes: 28, Relocatable: true},
	OpIastore:     {Name: "iastore", Work: 14, Bytes: 30, Relocatable: true},
	OpBaload:      {Name: "baload", Work: 13, Bytes: 28, Relocatable: true},
	OpBastore:     {Name: "bastore", Work: 14, Bytes: 30, Relocatable: true},
	OpArraylength: {Name: "arraylength", Work: 8, Bytes: 17, Relocatable: true},

	OpNew: {Name: "new", HasArg: true, Work: 80, Bytes: 90, Quickable: true,
		QuickWork: 300, QuickBytesMax: 70},
	OpNewQuick: {Name: "new_quick", HasArg: true, Work: 35, Bytes: 55},
	OpGetfield: {Name: "getfield", HasArg: true, Work: 40, Bytes: 60, Quickable: true,
		QuickWork: 200, QuickBytesMax: 24},
	OpGetfieldQuick: {Name: "getfield_quick", HasArg: true, Work: 11, Bytes: 24, Relocatable: true},
	OpPutfield: {Name: "putfield", HasArg: true, Work: 40, Bytes: 60, Quickable: true,
		QuickWork: 200, QuickBytesMax: 26},
	OpPutfieldQuick: {Name: "putfield_quick", HasArg: true, Work: 12, Bytes: 26, Relocatable: true},
	OpGetstatic: {Name: "getstatic", HasArg: true, Work: 35, Bytes: 55, Quickable: true,
		QuickWork: 180, QuickBytesMax: 21},
	OpGetstaticQ: {Name: "getstatic_quick", HasArg: true, Work: 9, Bytes: 19, Relocatable: true},
	OpPutstatic: {Name: "putstatic", HasArg: true, Work: 35, Bytes: 55, Quickable: true,
		QuickWork: 180, QuickBytesMax: 21},
	OpPutstaticQ: {Name: "putstatic_quick", HasArg: true, Work: 10, Bytes: 21, Relocatable: true},

	OpInvokestatic: {Name: "invokestatic", HasArg: true, Work: 60, Bytes: 70, Quickable: true,
		QuickWork: 250, QuickBytesMax: 56, Call: true},
	OpInvokestaticQ: {Name: "invokestatic_quick", HasArg: true, Work: 26, Bytes: 56,
		Relocatable: true, Call: true},
	OpInvokevirtual: {Name: "invokevirtual", HasArg: true, Work: 70, Bytes: 80, Quickable: true,
		QuickWork: 280, QuickBytesMax: 66, Call: true, Indirect: true},
	OpInvokevirtualQ: {Name: "invokevirtual_quick", HasArg: true, Work: 32, Bytes: 66,
		Relocatable: true, Call: true, Indirect: true},
	OpReturn:  {Name: "return", Work: 17, Bytes: 36, Relocatable: true, Return: true},
	OpIreturn: {Name: "ireturn", Work: 19, Bytes: 40, Relocatable: true, Return: true},

	OpIprint: {Name: "iprint", Work: 45, Bytes: 70},
	OpCprint: {Name: "cprint", Work: 20, Bytes: 36},
}

// isa implements core.ISA for the JVM subset.
type isa struct{}

// ISA returns the JVM instruction set description.
func ISA() core.ISA { return isa{} }

func (isa) Name() string { return "jvm" }

func (isa) NumOps() int { return int(NumOps) }

func (isa) Meta(op uint32) core.OpMeta {
	if op >= NumOps {
		panic(fmt.Sprintf("jvm: bad opcode %d", op))
	}
	return meta[op]
}

// OpName returns the mnemonic for an opcode.
func OpName(op uint32) string { return meta[op].Name }

// QuickOf returns the quick variant an opcode rewrites into (and
// whether it has one).
func QuickOf(op uint32) (uint32, bool) {
	switch op {
	case OpNew:
		return OpNewQuick, true
	case OpGetfield:
		return OpGetfieldQuick, true
	case OpPutfield:
		return OpPutfieldQuick, true
	case OpGetstatic:
		return OpGetstaticQ, true
	case OpPutstatic:
		return OpPutstaticQ, true
	case OpInvokestatic:
		return OpInvokestaticQ, true
	case OpInvokevirtual:
		return OpInvokevirtualQ, true
	}
	return 0, false
}
