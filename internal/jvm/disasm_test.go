package jvm

import (
	"strings"
	"testing"
)

func TestDisassembleRoundTripNames(t *testing.T) {
	p := MustAssemble(shapesSrc)
	out := Disassemble(p)
	for _, want := range []string{
		"method Square.area virtual",
		"method Main.main static",
		"getfield     Square.side",
		"putfield     Rect.w",
		"invokevirtual area",
		"new          Square",
		"iprint",
		"end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestDisassembleQuickened(t *testing.T) {
	p := MustAssemble(shapesSrc)
	v := NewVM(p)
	if err := v.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// Disassembling the pristine program still shows quickable forms.
	out := Disassemble(p)
	if !strings.Contains(out, "getfield ") && !strings.Contains(out, "getfield  ") {
		t.Errorf("pristine program should contain getfield:\n%s", out)
	}
	if strings.Contains(out, "getfield_quick") {
		t.Error("pristine program must not contain quick forms")
	}
}

func TestDisassembleIinc(t *testing.T) {
	p := MustAssemble(`
method Main.main static args 0 locals 1
  iinc 0 -3
  return
end`)
	out := Disassemble(p)
	if !strings.Contains(out, "iinc         0 -3") {
		t.Errorf("iinc operands not decoded:\n%s", out)
	}
}

func TestDisassembleStatics(t *testing.T) {
	p := MustAssemble(`
static counter
method Main.main static args 0 locals 0
  getstatic counter
  putstatic counter
  return
end`)
	out := Disassemble(p)
	if strings.Count(out, "counter") < 2 {
		t.Errorf("static names not resolved:\n%s", out)
	}
}
