package jvm

import (
	"errors"
	"fmt"
	"strconv"

	"vmopt/internal/core"
)

// Execution limits and errors.
const (
	stackLimit = 1 << 16
	frameLimit = 1 << 14
	heapLimit  = 1 << 26 // cells
)

var (
	ErrStackUnderflow = errors.New("jvm: operand stack underflow")
	ErrStackOverflow  = errors.New("jvm: operand stack overflow")
	ErrFrameOverflow  = errors.New("jvm: call stack overflow")
	ErrNullPointer    = errors.New("jvm: null reference")
	ErrBounds         = errors.New("jvm: array index out of bounds")
	ErrDivByZero      = errors.New("jvm: division by zero")
	ErrOutOfMemory    = errors.New("jvm: heap exhausted")
	ErrHalted         = errors.New("jvm: stepping a halted VM")
)

type frame struct {
	retPC  int
	locals []int64
}

// VM is a running JVM process over an assembled Program. It
// implements core.Process.
type VM struct {
	prog    *Program
	code    []core.Inst // private copy; quickening mutates it
	stack   []int64
	frames  []frame
	heap    []int64
	statics []int64
	pc      int
	halted  bool

	// Out receives iprint/cprint output.
	Out []byte
	// Steps counts executed VM instructions.
	Steps uint64
}

// NewVM instantiates a process for the program, positioned at main.
func NewVM(p *Program) *VM {
	v := &VM{
		prog:    p,
		code:    append([]core.Inst(nil), p.Code...),
		heap:    make([]int64, 1, 4096), // slot 0 reserved: ref 0 is null
		statics: make([]int64, len(p.StaticNames)),
		pc:      p.Main.Entry,
	}
	v.frames = append(v.frames, frame{retPC: -1, locals: make([]int64, p.Main.NumLocals)})
	return v
}

// ISA implements core.Process.
func (v *VM) ISA() core.ISA { return ISA() }

// Code implements core.Process.
func (v *VM) Code() []core.Inst { return v.code }

// PC implements core.Process.
func (v *VM) PC() int { return v.pc }

// Done implements core.Process.
func (v *VM) Done() bool { return v.halted }

// Stack returns a copy of the operand stack.
func (v *VM) Stack() []int64 { return append([]int64(nil), v.stack...) }

// Statics returns the static variable slots (live).
func (v *VM) Statics() []int64 { return v.statics }

// Run steps the VM to completion, bounded by maxSteps.
func (v *VM) Run(maxSteps uint64) error {
	for !v.halted {
		if v.Steps >= maxSteps {
			return fmt.Errorf("jvm: exceeded %d steps", maxSteps)
		}
		if _, err := v.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (v *VM) push(x int64) error {
	if len(v.stack) >= stackLimit {
		return ErrStackOverflow
	}
	v.stack = append(v.stack, x)
	return nil
}

func (v *VM) pop() (int64, error) {
	if len(v.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	x := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return x, nil
}

func (v *VM) pop2() (a, b int64, err error) {
	if len(v.stack) < 2 {
		return 0, 0, ErrStackUnderflow
	}
	b = v.stack[len(v.stack)-1]
	a = v.stack[len(v.stack)-2]
	v.stack = v.stack[:len(v.stack)-2]
	return a, b, nil
}

func (v *VM) locals() []int64 { return v.frames[len(v.frames)-1].locals }

// alloc reserves cells on the heap and returns the object reference
// (index of the header cell).
func (v *VM) alloc(cells int) (int64, error) {
	if len(v.heap)+cells > heapLimit {
		return 0, ErrOutOfMemory
	}
	ref := int64(len(v.heap))
	v.heap = append(v.heap, make([]int64, cells)...)
	return ref, nil
}

func (v *VM) checkRef(ref int64) error {
	if ref == 0 {
		return ErrNullPointer
	}
	if ref < 0 || ref >= int64(len(v.heap)) {
		return fmt.Errorf("%w: ref %d", ErrNullPointer, ref)
	}
	return nil
}

func (v *VM) arrayAt(ref, idx int64) (int, error) {
	if err := v.checkRef(ref); err != nil {
		return 0, err
	}
	length := v.heap[ref]
	if idx < 0 || idx >= length {
		return 0, fmt.Errorf("%w: index %d, length %d", ErrBounds, idx, length)
	}
	return int(ref + 1 + idx), nil
}

// call pushes a frame for m, popping its arguments into locals.
func (v *VM) call(m *Method, retPC int) error {
	if len(v.frames) >= frameLimit {
		return ErrFrameOverflow
	}
	if len(v.stack) < m.NumArgs {
		return ErrStackUnderflow
	}
	locals := make([]int64, m.NumLocals)
	base := len(v.stack) - m.NumArgs
	copy(locals, v.stack[base:])
	v.stack = v.stack[:base]
	v.frames = append(v.frames, frame{retPC: retPC, locals: locals})
	return nil
}

// Step implements core.Process.
func (v *VM) Step() (core.Event, error) {
	if v.halted {
		return core.Event{}, ErrHalted
	}
	if v.pc < 0 || v.pc >= len(v.code) {
		return core.Event{}, fmt.Errorf("jvm: pc %d out of range", v.pc)
	}
	from := v.pc
	in := v.code[from]
	v.Steps++
	ev := core.Event{From: from, To: from + 1, Kind: core.EvFall}
	err := v.exec(in, &ev)
	if err != nil {
		return core.Event{}, fmt.Errorf("at %d (%s): %w", from, OpName(in.Op), err)
	}
	v.pc = ev.To
	return ev, nil
}

// quicken rewrites the instruction at ev.From and marks the event.
func (v *VM) quicken(ev *core.Event, newOp uint32, newArg int64) {
	v.code[ev.From] = core.Inst{Op: newOp, Arg: newArg}
	ev.Quickened = true
	ev.NewOp = newOp
}

func (v *VM) exec(in core.Inst, ev *core.Event) error {
	switch in.Op {
	case OpNop:

	case OpIconst:
		return v.push(in.Arg)

	case OpIload:
		return v.push(v.locals()[in.Arg])
	case OpIload0, OpIload1, OpIload2, OpIload3:
		return v.push(v.locals()[in.Op-OpIload0])
	case OpIstore:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.locals()[in.Arg] = x
	case OpIstore0, OpIstore1, OpIstore2, OpIstore3:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.locals()[in.Op-OpIstore0] = x
	case OpIinc:
		idx, delta := DecodeIinc(in.Arg)
		v.locals()[idx] += int64(delta)

	case OpDup:
		if len(v.stack) == 0 {
			return ErrStackUnderflow
		}
		return v.push(v.stack[len(v.stack)-1])
	case OpDupX1:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		for _, x := range []int64{b, a, b} {
			if err := v.push(x); err != nil {
				return err
			}
		}
	case OpPop:
		_, err := v.pop()
		return err
	case OpSwap:
		if len(v.stack) < 2 {
			return ErrStackUnderflow
		}
		n := len(v.stack)
		v.stack[n-1], v.stack[n-2] = v.stack[n-2], v.stack[n-1]

	case OpIadd, OpIsub, OpImul, OpIdiv, OpIrem, OpIshl, OpIshr, OpIushr, OpIand, OpIor, OpIxor:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		var r int64
		switch in.Op {
		case OpIadd:
			r = a + b
		case OpIsub:
			r = a - b
		case OpImul:
			r = a * b
		case OpIdiv:
			if b == 0 {
				return ErrDivByZero
			}
			r = a / b
		case OpIrem:
			if b == 0 {
				return ErrDivByZero
			}
			r = a % b
		case OpIshl:
			r = a << uint64(b&63)
		case OpIshr:
			r = a >> uint64(b&63)
		case OpIushr:
			r = int64(uint64(a) >> uint64(b&63))
		case OpIand:
			r = a & b
		case OpIor:
			r = a | b
		case OpIxor:
			r = a ^ b
		}
		return v.push(r)
	case OpIneg:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(-x)

	case OpIfeq, OpIfne, OpIflt, OpIfge, OpIfgt, OpIfle:
		x, err := v.pop()
		if err != nil {
			return err
		}
		var taken bool
		switch in.Op {
		case OpIfeq:
			taken = x == 0
		case OpIfne:
			taken = x != 0
		case OpIflt:
			taken = x < 0
		case OpIfge:
			taken = x >= 0
		case OpIfgt:
			taken = x > 0
		case OpIfle:
			taken = x <= 0
		}
		if taken {
			ev.Kind = core.EvTaken
			ev.To = int(in.Arg)
		}
	case OpIfIcmpeq, OpIfIcmpne, OpIfIcmplt, OpIfIcmpge, OpIfIcmpgt, OpIfIcmple:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		var taken bool
		switch in.Op {
		case OpIfIcmpeq:
			taken = a == b
		case OpIfIcmpne:
			taken = a != b
		case OpIfIcmplt:
			taken = a < b
		case OpIfIcmpge:
			taken = a >= b
		case OpIfIcmpgt:
			taken = a > b
		case OpIfIcmple:
			taken = a <= b
		}
		if taken {
			ev.Kind = core.EvTaken
			ev.To = int(in.Arg)
		}
	case OpGoto:
		ev.Kind = core.EvTaken
		ev.To = int(in.Arg)

	case OpNewarray:
		n, err := v.pop()
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("%w: negative array size %d", ErrBounds, n)
		}
		ref, err := v.alloc(int(n) + 1)
		if err != nil {
			return err
		}
		v.heap[ref] = n
		return v.push(ref)
	case OpIaload, OpBaload:
		ref, idx, err := v.pop2()
		if err != nil {
			return err
		}
		at, err := v.arrayAt(ref, idx)
		if err != nil {
			return err
		}
		x := v.heap[at]
		if in.Op == OpBaload {
			x &= 0xff
		}
		return v.push(x)
	case OpIastore, OpBastore:
		x, err := v.pop()
		if err != nil {
			return err
		}
		ref, idx, err := v.pop2()
		if err != nil {
			return err
		}
		at, err := v.arrayAt(ref, idx)
		if err != nil {
			return err
		}
		if in.Op == OpBastore {
			x &= 0xff
		}
		v.heap[at] = x
	case OpArraylength:
		ref, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.checkRef(ref); err != nil {
			return err
		}
		return v.push(v.heap[ref])

	case OpNew:
		if in.Arg < 0 || int(in.Arg) >= len(v.prog.Classes) {
			return fmt.Errorf("jvm: bad class id %d", in.Arg)
		}
		v.quicken(ev, OpNewQuick, in.Arg)
		return v.execNew(in.Arg)
	case OpNewQuick:
		return v.execNew(in.Arg)

	case OpGetfield:
		off, err := v.prog.resolveField(in.Arg)
		if err != nil {
			return err
		}
		v.quicken(ev, OpGetfieldQuick, int64(off))
		return v.execGetfield(int64(off))
	case OpGetfieldQuick:
		return v.execGetfield(in.Arg)
	case OpPutfield:
		off, err := v.prog.resolveField(in.Arg)
		if err != nil {
			return err
		}
		v.quicken(ev, OpPutfieldQuick, int64(off))
		return v.execPutfield(int64(off))
	case OpPutfieldQuick:
		return v.execPutfield(in.Arg)

	case OpGetstatic:
		if in.Arg < 0 || int(in.Arg) >= len(v.statics) {
			return fmt.Errorf("jvm: bad static ref %d", in.Arg)
		}
		v.quicken(ev, OpGetstaticQ, in.Arg)
		return v.push(v.statics[in.Arg])
	case OpGetstaticQ:
		return v.push(v.statics[in.Arg])
	case OpPutstatic:
		if in.Arg < 0 || int(in.Arg) >= len(v.statics) {
			return fmt.Errorf("jvm: bad static ref %d", in.Arg)
		}
		v.quicken(ev, OpPutstaticQ, in.Arg)
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.statics[in.Arg] = x
	case OpPutstaticQ:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.statics[in.Arg] = x

	case OpInvokestatic:
		if in.Arg < 0 || int(in.Arg) >= len(v.prog.Methods) {
			return fmt.Errorf("jvm: bad method id %d", in.Arg)
		}
		v.quicken(ev, OpInvokestaticQ, in.Arg)
		return v.execInvokestatic(in.Arg, ev)
	case OpInvokestaticQ:
		return v.execInvokestatic(in.Arg, ev)

	case OpInvokevirtual:
		if in.Arg < 0 || int(in.Arg) >= len(v.prog.VNames) {
			return fmt.Errorf("jvm: bad virtual slot %d", in.Arg)
		}
		v.quicken(ev, OpInvokevirtualQ, in.Arg)
		return v.execInvokevirtual(in.Arg, ev)
	case OpInvokevirtualQ:
		return v.execInvokevirtual(in.Arg, ev)

	case OpReturn, OpIreturn:
		var ret int64
		if in.Op == OpIreturn {
			x, err := v.pop()
			if err != nil {
				return err
			}
			ret = x
		}
		f := v.frames[len(v.frames)-1]
		v.frames = v.frames[:len(v.frames)-1]
		if len(v.frames) == 0 {
			v.halted = true
			ev.Kind = core.EvHalt
			ev.To = ev.From
			if in.Op == OpIreturn {
				// Main's return value lands on the operand stack.
				return v.push(ret)
			}
			return nil
		}
		ev.Kind = core.EvReturn
		ev.To = f.retPC
		if in.Op == OpIreturn {
			return v.push(ret)
		}

	case OpIprint:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.Out = append(v.Out, strconv.FormatInt(x, 10)...)
		v.Out = append(v.Out, ' ')
	case OpCprint:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.Out = append(v.Out, byte(x))

	default:
		return fmt.Errorf("jvm: unknown opcode %d", in.Op)
	}
	return nil
}

func (v *VM) execNew(classID int64) error {
	c := v.prog.Classes[classID]
	ref, err := v.alloc(len(c.Fields) + 1)
	if err != nil {
		return err
	}
	v.heap[ref] = classID
	return v.push(ref)
}

func (v *VM) execGetfield(off int64) error {
	ref, err := v.pop()
	if err != nil {
		return err
	}
	if err := v.checkRef(ref); err != nil {
		return err
	}
	return v.push(v.heap[ref+1+off])
}

func (v *VM) execPutfield(off int64) error {
	x, err := v.pop()
	if err != nil {
		return err
	}
	ref, err := v.pop()
	if err != nil {
		return err
	}
	if err := v.checkRef(ref); err != nil {
		return err
	}
	v.heap[ref+1+off] = x
	return nil
}

func (v *VM) execInvokestatic(id int64, ev *core.Event) error {
	m := v.prog.Methods[id]
	if err := v.call(m, ev.From+1); err != nil {
		return err
	}
	ev.Kind = core.EvCall
	ev.To = m.Entry
	return nil
}

func (v *VM) execInvokevirtual(vslot int64, ev *core.Event) error {
	// The receiver sits below the other arguments; we need the
	// target's arg count to find it, but all methods in a slot share
	// a signature, so resolve through any class first via the
	// receiver itself: peek conservatively by scanning.
	// Receiver position requires NumArgs; look it up from the first
	// class implementing the slot.
	m, recv, err := v.resolveVirtual(int(vslot))
	if err != nil {
		return err
	}
	_ = recv
	if err := v.call(m, ev.From+1); err != nil {
		return err
	}
	ev.Kind = core.EvIndirect
	ev.To = m.Entry
	return nil
}

// resolveVirtual finds the target method for a vslot given the
// receiver on the stack.
func (v *VM) resolveVirtual(vslot int) (*Method, int64, error) {
	// All methods sharing a vslot have the same NumArgs.
	nargs := v.prog.vslotArgs[vslot]
	if nargs < 0 {
		return nil, 0, fmt.Errorf("jvm: no method for virtual slot %d", vslot)
	}
	if len(v.stack) < nargs {
		return nil, 0, ErrStackUnderflow
	}
	recv := v.stack[len(v.stack)-nargs]
	if err := v.checkRef(recv); err != nil {
		return nil, 0, err
	}
	classID := v.heap[recv]
	if classID < 0 || int(classID) >= len(v.prog.Classes) {
		return nil, 0, fmt.Errorf("jvm: receiver %d has bad class id %d", recv, classID)
	}
	c := v.prog.Classes[classID]
	mid, ok := c.VTable[vslot]
	if !ok {
		return nil, 0, fmt.Errorf("jvm: class %s does not implement %q", c.Name, v.prog.VNames[vslot])
	}
	return v.prog.Methods[mid], recv, nil
}
