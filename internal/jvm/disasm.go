package jvm

import (
	"fmt"
	"sort"
	"strings"

	"vmopt/internal/core"
)

// Disassemble renders an assembled program as jasm-like text with
// method headers and symbolic operands (field names, method names,
// virtual slot names).
func Disassemble(p *Program) string {
	var b strings.Builder
	methods := append([]*Method(nil), p.Methods...)
	sort.Slice(methods, func(i, j int) bool { return methods[i].Entry < methods[j].Entry })
	for _, m := range methods {
		kind := "static"
		if m.Virtual {
			kind = "virtual"
		}
		fmt.Fprintf(&b, "method %s %s args %d locals %d  ; entry %d\n",
			m.Name, kind, m.NumArgs, m.NumLocals, m.Entry)
		for pos := m.Entry; pos < m.End; pos++ {
			in := p.Code[pos]
			fmt.Fprintf(&b, "%5d  %s\n", pos, formatInst(p, in))
		}
		b.WriteString("end\n\n")
	}
	return b.String()
}

func formatInst(p *Program, in core.Inst) string {
	m := meta[in.Op]
	switch in.Op {
	case OpIinc:
		idx, delta := DecodeIinc(in.Arg)
		return fmt.Sprintf("%-12s %d %d", m.Name, idx, delta)
	case OpGetfield, OpPutfield:
		if in.Arg >= 0 && int(in.Arg) < len(p.FieldRefs) {
			fr := p.FieldRefs[in.Arg]
			return fmt.Sprintf("%-12s %s.%s", m.Name, fr.ClassName, fr.FieldName)
		}
	case OpGetstatic, OpPutstatic, OpGetstaticQ, OpPutstaticQ:
		if in.Arg >= 0 && int(in.Arg) < len(p.StaticNames) {
			return fmt.Sprintf("%-12s %s", m.Name, p.StaticNames[in.Arg])
		}
	case OpNew, OpNewQuick:
		if in.Arg >= 0 && int(in.Arg) < len(p.Classes) {
			return fmt.Sprintf("%-12s %s", m.Name, p.Classes[in.Arg].Name)
		}
	case OpInvokestatic, OpInvokestaticQ:
		if in.Arg >= 0 && int(in.Arg) < len(p.Methods) {
			return fmt.Sprintf("%-12s %s", m.Name, p.Methods[in.Arg].Name)
		}
	case OpInvokevirtual, OpInvokevirtualQ:
		if in.Arg >= 0 && int(in.Arg) < len(p.VNames) {
			return fmt.Sprintf("%-12s %s", m.Name, p.VNames[in.Arg])
		}
	}
	if m.HasArg {
		return fmt.Sprintf("%-12s %d", m.Name, in.Arg)
	}
	return m.Name
}
