package jvm

import (
	"fmt"

	"vmopt/internal/core"
)

// Class describes an object layout and its virtual dispatch table.
type Class struct {
	// ID is the class's index in Program.Classes.
	ID int
	// Name is the class name.
	Name string
	// Fields lists field names; a field's offset is its index.
	Fields []string
	// VTable maps virtual slot -> method ID for methods this class
	// implements.
	VTable map[int]int
}

// FieldOffset returns the offset of a field, or -1.
func (c *Class) FieldOffset(name string) int {
	for k, f := range c.Fields {
		if f == name {
			return k
		}
	}
	return -1
}

// Method describes one method.
type Method struct {
	// ID is the method's index in Program.Methods.
	ID int
	// Name is the qualified name "Class.method".
	Name string
	// Class is the declaring class (may be nil for static methods
	// of a pure namespace).
	Class *Class
	// Virtual methods dispatch through the receiver's vtable; their
	// receiver is local 0 and counts toward NumArgs.
	Virtual bool
	// VSlot is the virtual dispatch slot (-1 for static methods).
	VSlot int
	// NumArgs and NumLocals size the frame.
	NumArgs   int
	NumLocals int
	// Entry and End delimit the method body in Program.Code.
	Entry, End int
}

// FieldRef is a symbolic field reference, resolved during quickening.
type FieldRef struct {
	ClassName string
	FieldName string
}

// Program is an assembled JVM program.
type Program struct {
	// Code is the pristine flattened bytecode; VMs copy it before
	// executing because quickening rewrites it in place.
	Code []core.Inst
	// Classes, Methods index the declared entities by ID.
	Classes []*Class
	Methods []*Method
	// FieldRefs holds the symbolic operands of getfield/putfield.
	FieldRefs []FieldRef
	// StaticNames holds declared statics; a static's slot is its
	// index.
	StaticNames []string
	// VNames holds virtual method simple names; a name's vslot is
	// its index.
	VNames []string
	// vslotArgs caches the argument count per virtual slot (all
	// implementations of a slot share a signature).
	vslotArgs []int
	// Main is the entry method.
	Main *Method

	classByName  map[string]*Class
	methodByName map[string]*Method
}

// ClassByName returns the class with the given name.
func (p *Program) ClassByName(name string) (*Class, bool) {
	c, ok := p.classByName[name]
	return c, ok
}

// MethodByName returns the method with the given qualified name.
func (p *Program) MethodByName(name string) (*Method, bool) {
	m, ok := p.methodByName[name]
	return m, ok
}

// EntryPoints returns all method entry positions: the extra leaders
// for basic-block analysis (calls and returns may target them through
// data-dependent dispatch).
func (p *Program) EntryPoints() []int {
	out := make([]int, 0, len(p.Methods))
	for _, m := range p.Methods {
		out = append(out, m.Entry)
	}
	return out
}

// resolveField resolves a field reference against the class table.
func (p *Program) resolveField(ref int64) (offset int, err error) {
	if ref < 0 || int(ref) >= len(p.FieldRefs) {
		return 0, fmt.Errorf("jvm: bad field ref %d", ref)
	}
	fr := p.FieldRefs[ref]
	c, ok := p.classByName[fr.ClassName]
	if !ok {
		return 0, fmt.Errorf("jvm: unknown class %q in field ref", fr.ClassName)
	}
	off := c.FieldOffset(fr.FieldName)
	if off < 0 {
		return 0, fmt.Errorf("jvm: class %s has no field %q", fr.ClassName, fr.FieldName)
	}
	return off, nil
}
