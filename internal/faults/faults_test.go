package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", src, err)
	}
	return s
}

func TestParseSpecValid(t *testing.T) {
	s := mustParse(t, `{
		"seed": 42,
		"faults": [
			{"site": "cache.read", "mode": "corrupt", "rate": 0.25},
			{"site": "cache.write", "mode": "error", "nth": 3, "limit": 2},
			{"site": "serve.handler", "mode": "latency", "rate": 0.5, "latency": "5ms"},
			{"site": "serve.handler", "mode": "unavailable", "nth": 10},
			{"site": "cache.read", "mode": "truncate", "nth": 7}
		]
	}`)
	if s.Seed != 42 || len(s.Faults) != 5 {
		t.Fatalf("got seed=%d rules=%d", s.Seed, len(s.Faults))
	}
	if got := time.Duration(s.Faults[2].Latency); got != 5*time.Millisecond {
		t.Fatalf("latency = %v, want 5ms", got)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty rules", `{"faults": []}`, "non-empty"},
		{"no rules key", `{"seed": 1}`, "non-empty"},
		{"missing site", `{"faults":[{"mode":"error","rate":0.1}]}`, "site must be non-empty"},
		{"bad mode", `{"faults":[{"site":"x","mode":"explode","rate":0.1}]}`, "unknown mode"},
		{"no trigger", `{"faults":[{"site":"x","mode":"error"}]}`, "exactly one of rate or nth"},
		{"both triggers", `{"faults":[{"site":"x","mode":"error","rate":0.1,"nth":2}]}`, "exactly one of rate or nth"},
		{"rate too high", `{"faults":[{"site":"x","mode":"error","rate":1.5}]}`, "out of range"},
		{"rate negative", `{"faults":[{"site":"x","mode":"error","rate":-0.1}]}`, "out of range"},
		{"nth negative", `{"faults":[{"site":"x","mode":"error","nth":-2}]}`, "must be >= 1"},
		{"limit negative", `{"faults":[{"site":"x","mode":"error","nth":1,"limit":-1}]}`, "limit"},
		{"latency without duration", `{"faults":[{"site":"x","mode":"latency","nth":1}]}`, "positive latency"},
		{"latency on error mode", `{"faults":[{"site":"x","mode":"error","nth":1,"latency":"5ms"}]}`, "only valid with mode"},
		{"latency not a string", `{"faults":[{"site":"x","mode":"latency","nth":1,"latency":5}]}`, "must be a string"},
		{"unknown field", `{"faults":[{"site":"x","mode":"error","rrate":0.1}]}`, "unknown field"},
		{"unknown top-level", `{"sede": 1, "faults":[{"site":"x","mode":"error","rate":0.1}]}`, "unknown field"},
		{"not json", `{`, "parsing fault spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.src))
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	if err := inj.Err(SiteCacheRead); err != nil {
		t.Fatalf("nil Err = %v", err)
	}
	b := []byte("payload")
	if got := inj.Corrupt(SiteCacheRead, b); !bytes.Equal(got, b) {
		t.Fatalf("nil Corrupt changed payload")
	}
	inj.Delay(SiteHandler)
	if inj.Reject(SiteHandler) {
		t.Fatal("nil Reject = true")
	}
	if inj.Total() != 0 || inj.Snapshot() != nil || inj.Sites() != nil {
		t.Fatal("nil accounting not empty")
	}
}

func TestNthTrigger(t *testing.T) {
	inj := New(mustParse(t, `{"faults":[{"site":"s","mode":"error","nth":3}]}`))
	var fired int
	for i := 1; i <= 12; i++ {
		err := inj.Err("s")
		if (i%3 == 0) != (err != nil) {
			t.Fatalf("call %d: err=%v", i, err)
		}
		if err != nil {
			fired++
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != "s" {
				t.Fatalf("call %d: error %v is not a faults.Error for site s", i, err)
			}
		}
	}
	if fired != 4 || inj.Total() != 4 {
		t.Fatalf("fired=%d Total=%d, want 4", fired, inj.Total())
	}
	if got := inj.Snapshot()["s/error"]; got != 4 {
		t.Fatalf("Snapshot[s/error] = %d, want 4", got)
	}
}

func TestLimitCapsFires(t *testing.T) {
	inj := New(mustParse(t, `{"faults":[{"site":"s","mode":"unavailable","nth":1,"limit":2}]}`))
	var fired int
	for i := 0; i < 10; i++ {
		if inj.Reject("s") {
			fired++
		}
	}
	if fired != 2 || inj.Total() != 2 {
		t.Fatalf("fired=%d Total=%d, want 2", fired, inj.Total())
	}
}

func TestRateDeterministicPerSeed(t *testing.T) {
	const src = `{"seed": 7, "faults":[{"site":"s","mode":"unavailable","rate":0.3}]}`
	run := func() []bool {
		inj := New(mustParse(t, src))
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.Reject("s")
		}
		return out
	}
	a, b := run(), run()
	var fires int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs between identical injectors", i)
		}
		if a[i] {
			fires++
		}
	}
	// 200 draws at rate 0.3: expect ~60; anything in (20, 120) proves the
	// rate is neither 0 nor 1 without flaking on the exact RNG stream.
	if fires <= 20 || fires >= 120 {
		t.Fatalf("rate 0.3 fired %d/200 times", fires)
	}
}

func TestCorruptDamagesCopy(t *testing.T) {
	inj := New(mustParse(t, `{"faults":[{"site":"s","mode":"corrupt","nth":2}]}`))
	orig := bytes.Repeat([]byte{0xAA}, 64)
	if got := inj.Corrupt("s", orig); !bytes.Equal(got, orig) {
		t.Fatal("call 1 (nth=2) should not corrupt")
	}
	got := inj.Corrupt("s", orig)
	if bytes.Equal(got, orig) {
		t.Fatal("call 2 should corrupt")
	}
	if len(got) != len(orig) {
		t.Fatalf("corrupt changed length %d -> %d", len(orig), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt changed %d bytes, want exactly 1", diff)
	}
	if !bytes.Equal(orig, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("Corrupt mutated the caller's buffer")
	}
}

func TestTruncateHalves(t *testing.T) {
	inj := New(mustParse(t, `{"faults":[{"site":"s","mode":"truncate","nth":1}]}`))
	orig := make([]byte, 100)
	got := inj.Corrupt("s", orig)
	if len(got) != 50 {
		t.Fatalf("truncate len = %d, want 50", len(got))
	}
}

func TestDelaySleeps(t *testing.T) {
	inj := New(mustParse(t, `{"faults":[{"site":"s","mode":"latency","nth":1,"latency":"30ms"}]}`))
	start := time.Now()
	inj.Delay("s")
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("Delay slept only %v", elapsed)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	inj := New(mustParse(t, `{"faults":[
		{"site": "a", "mode": "error", "nth": 1},
		{"site": "b", "mode": "unavailable", "nth": 1}
	]}`))
	if err := inj.Err("b"); err != nil {
		t.Fatalf("error rule for site a fired at site b: %v", err)
	}
	if inj.Reject("a") {
		t.Fatal("unavailable rule for site b fired at site a")
	}
	if got := inj.Sites(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Sites() = %v", got)
	}
}

func TestConcurrentFire(t *testing.T) {
	inj := New(mustParse(t, `{"seed": 3, "faults":[
		{"site": "s", "mode": "error", "nth": 5},
		{"site": "s", "mode": "unavailable", "rate": 0.2, "limit": 10}
	]}`))
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			n := 0
			for i := 0; i < 1000; i++ {
				if inj.Err("s") != nil {
					n++
				}
				inj.Reject("s")
				inj.Corrupt("s", []byte{1, 2, 3})
			}
			done <- n
		}()
	}
	errs := 0
	for g := 0; g < 8; g++ {
		errs += <-done
	}
	if errs != 8000/5 {
		t.Fatalf("nth=5 over 8000 calls fired %d, want %d", errs, 8000/5)
	}
	snap := inj.Snapshot()
	if snap["s/unavailable"] != 10 {
		t.Fatalf("limit 10 rule fired %d", snap["s/unavailable"])
	}
	if inj.Total() != uint64(errs)+10 {
		t.Fatalf("Total=%d, want %d", inj.Total(), errs+10)
	}
}
