package faults

import (
	"testing"
	"time"
)

// FuzzParseSpec checks that arbitrary input never panics the parser
// and that every accepted spec is actually usable: it validates,
// round-trips through New, and drives each injection method without
// crashing or sleeping unboundedly.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"seed":1,"faults":[{"site":"cache.read","mode":"corrupt","rate":0.5}]}`))
	f.Add([]byte(`{"faults":[{"site":"serve.handler","mode":"latency","nth":2,"latency":"1ms"}]}`))
	f.Add([]byte(`{"faults":[{"site":"cache.write","mode":"error","nth":1,"limit":3}]}`))
	f.Add([]byte(`{"faults":[{"site":"s","mode":"truncate","rate":1}]}`))
	f.Add([]byte(`{"faults":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must satisfy their own invariants.
		if len(s.Faults) == 0 {
			t.Fatal("accepted spec with no rules")
		}
		for i, r := range s.Faults {
			if (r.Rate != 0) == (r.Nth != 0) {
				t.Fatalf("rule %d accepted with bad trigger: %+v", i, r)
			}
			if r.Mode == ModeLatency && r.Latency <= 0 {
				t.Fatalf("rule %d accepted latency mode without duration", i)
			}
			// Keep the Delay exercise below bounded.
			if time.Duration(r.Latency) > time.Second {
				return
			}
		}
		inj := New(s)
		for _, site := range append(inj.Sites(), "unknown.site") {
			_ = inj.Err(site)
			_ = inj.Reject(site)
			out := inj.Corrupt(site, []byte{0, 1, 2, 3, 4, 5, 6, 7})
			if len(out) > 8 {
				t.Fatalf("Corrupt grew payload to %d bytes", len(out))
			}
		}
		if inj.Total() == 0 && len(inj.Snapshot()) > len(s.Faults) {
			t.Fatal("snapshot larger than rule count with zero fires")
		}
	})
}
