// Package faults is a seeded, deterministic fault-injection layer for
// the serving tier: named sites in the serving path (cache reads and
// writes, the request handler, the compute path) ask a shared
// Injector whether a configured fault fires at this call, and the
// spec — a small JSON document checked into the repo for chaos CI and
// passed to `vmserved -faults` — decides with what probability or
// cadence it does.
//
// Determinism is the design center: every rate-triggered rule draws
// from its own rand.Rand seeded from the spec seed and the rule's
// position, and every nth-call rule keeps its own atomic counter, so
// one spec produces one fault pattern per site regardless of what the
// rest of the process is doing. That is what lets a chaos CI job
// assert exact properties ("zero non-backpressure 5xx, responses
// byte-identical to a fault-free run") instead of eyeballing flaky
// noise, in the same spirit as verifying the error-handling paths of
// control programs rather than hoping they are rarely taken.
//
// A nil *Injector is valid everywhere and injects nothing, so
// production builds carry the sites at the cost of a nil check.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical site names. Sites are free strings — a subsystem may
// define its own — but the serving stack instruments these.
const (
	// SiteCacheRead covers trace-cache file reads (disptrace.Cache
	// Load/LoadID): error mode fails the read, corrupt/truncate modes
	// damage the bytes read, latency mode delays the read.
	SiteCacheRead = "cache.read"
	// SiteCacheWrite covers trace-cache file writes (recording a
	// trace): error mode fails the write, corrupt/truncate modes
	// damage the bytes before they hit the disk (a later read then
	// fails its CRC and exercises quarantine), latency mode delays it.
	SiteCacheWrite = "cache.write"
	// SiteHandler covers every instrumented HTTP endpoint: latency
	// mode stalls the handler, unavailable mode rejects the request
	// with a 503 before any work happens.
	SiteHandler = "serve.handler"
	// SiteCompute covers the post-admission compute path of /v1/run
	// and /v1/sweep groups: latency mode stalls inside the request's
	// deadline budget, error mode fails the computation.
	SiteCompute = "serve.compute"
)

// Fault modes.
const (
	// ModeError makes the site return an injected error.
	ModeError = "error"
	// ModeCorrupt flips one payload bit (position drawn
	// deterministically from the rule's RNG).
	ModeCorrupt = "corrupt"
	// ModeTruncate cuts the payload to a deterministic fraction of
	// its length.
	ModeTruncate = "truncate"
	// ModeLatency sleeps the rule's Latency duration.
	ModeLatency = "latency"
	// ModeUnavailable rejects the call (the serving layer answers
	// 503 + Retry-After).
	ModeUnavailable = "unavailable"
)

var validModes = map[string]bool{
	ModeError:       true,
	ModeCorrupt:     true,
	ModeTruncate:    true,
	ModeLatency:     true,
	ModeUnavailable: true,
}

// Rule arms one fault at one site. Exactly one trigger must be set:
// Rate (each call fires independently with that probability, drawn
// from the rule's seeded RNG) or Nth (every nth call fires: n, 2n,
// ...). Limit, when positive, caps the total number of fires.
type Rule struct {
	Site string `json:"site"`
	Mode string `json:"mode"`
	// Rate is the per-call fire probability in (0, 1].
	Rate float64 `json:"rate,omitempty"`
	// Nth fires on every nth call to the site (1 = every call).
	Nth int `json:"nth,omitempty"`
	// Limit caps total fires; 0 means unlimited.
	Limit int `json:"limit,omitempty"`
	// Latency is the injected delay for ModeLatency rules, as a Go
	// duration string ("5ms").
	Latency Duration `json:"latency,omitempty"`
}

// Duration is a time.Duration that marshals as a duration string so
// fault specs stay human-editable (mirrors loadgen's spec convention).
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("latency must be a string like \"5ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Spec is a fault-injection configuration: a seed and a rule list.
type Spec struct {
	// Seed derives every rate rule's RNG; the same spec always
	// produces the same fault pattern per site.
	Seed int64 `json:"seed,omitempty"`
	// Faults is the rule list, applied in order at each site.
	Faults []Rule `json:"faults"`
}

// Validate checks the spec and reports the first problem.
func (s *Spec) Validate() error {
	if len(s.Faults) == 0 {
		return fmt.Errorf("faults: rule list must be non-empty")
	}
	for i, r := range s.Faults {
		if r.Site == "" {
			return fmt.Errorf("faults[%d]: site must be non-empty", i)
		}
		if !validModes[r.Mode] {
			return fmt.Errorf("faults[%d]: unknown mode %q (valid: error, corrupt, truncate, latency, unavailable)", i, r.Mode)
		}
		hasRate := r.Rate != 0
		hasNth := r.Nth != 0
		if hasRate == hasNth {
			return fmt.Errorf("faults[%d]: exactly one of rate or nth must be set", i)
		}
		if hasRate && !(r.Rate > 0 && r.Rate <= 1) {
			return fmt.Errorf("faults[%d]: rate %v out of range (0, 1]", i, r.Rate)
		}
		if hasNth && r.Nth < 1 {
			return fmt.Errorf("faults[%d]: nth %d must be >= 1", i, r.Nth)
		}
		if r.Limit < 0 {
			return fmt.Errorf("faults[%d]: limit %d must be >= 0", i, r.Limit)
		}
		if r.Mode == ModeLatency && r.Latency <= 0 {
			return fmt.Errorf("faults[%d]: latency mode needs a positive latency", i)
		}
		if r.Mode != ModeLatency && r.Latency != 0 {
			return fmt.Errorf("faults[%d]: latency is only valid with mode %q", i, ModeLatency)
		}
	}
	return nil
}

// ParseSpec decodes and validates a fault spec. Unknown fields are
// rejected — a typoed trigger field silently ignored would run a
// different chaos experiment than the one checked in.
func ParseSpec(b []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parsing fault spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("invalid fault spec: %w", err)
	}
	return &s, nil
}

// ReadSpecFile loads a fault spec from disk.
func ReadSpecFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Error is the injected failure a ModeError rule returns; callers
// unwrap it to distinguish injected faults from real ones in logs
// (the serving layer treats both identically — that is the point).
type Error struct{ Site string }

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s error", e.Site)
}

// rule is one armed Rule with its trigger state.
type rule struct {
	Rule

	mu    sync.Mutex
	rng   *rand.Rand // rate trigger; nil for nth rules
	calls atomic.Uint64
	fired atomic.Uint64
}

// fire decides whether the rule triggers on this call.
func (r *rule) fire() bool {
	if r.Limit > 0 && r.fired.Load() >= uint64(r.Limit) {
		return false
	}
	hit := false
	if r.Nth > 0 {
		hit = r.calls.Add(1)%uint64(r.Nth) == 0
	} else {
		r.mu.Lock()
		hit = r.rng.Float64() < r.Rate
		r.mu.Unlock()
	}
	if !hit {
		return false
	}
	if r.Limit > 0 && r.fired.Add(1) > uint64(r.Limit) {
		return false
	}
	if r.Limit <= 0 {
		r.fired.Add(1)
	}
	return true
}

// Injector evaluates an armed spec at named sites. All methods are
// safe for concurrent use and valid on a nil receiver (no-ops).
type Injector struct {
	bySite map[string][]*rule
	rules  []*rule
}

// New arms a validated spec. Each rate rule gets its own RNG seeded
// from the spec seed and the rule index, so rules fire independently
// and deterministically.
func New(s *Spec) *Injector {
	inj := &Injector{bySite: map[string][]*rule{}}
	for i, r := range s.Faults {
		ar := &rule{Rule: r}
		if r.Rate > 0 {
			ar.rng = rand.New(rand.NewSource(s.Seed*7919 + int64(i)))
		}
		inj.bySite[r.Site] = append(inj.bySite[r.Site], ar)
		inj.rules = append(inj.rules, ar)
	}
	return inj
}

// Err reports an injected error when a ModeError rule fires at the
// site; nil otherwise.
func (inj *Injector) Err(site string) error {
	if inj == nil {
		return nil
	}
	for _, r := range inj.bySite[site] {
		if r.Mode == ModeError && r.fire() {
			return &Error{Site: site}
		}
	}
	return nil
}

// Corrupt runs the site's corrupt/truncate rules over a payload,
// returning a damaged copy when one fires and b itself otherwise.
// The damage is deterministic given the rule's trigger state: corrupt
// flips one bit at a position drawn from the fire count, truncate
// halves the payload.
func (inj *Injector) Corrupt(site string, b []byte) []byte {
	if inj == nil || len(b) == 0 {
		return b
	}
	for _, r := range inj.bySite[site] {
		switch r.Mode {
		case ModeCorrupt:
			if r.fire() {
				out := append([]byte(nil), b...)
				pos := (r.fired.Load() * 16777619) % uint64(len(out))
				out[pos] ^= 1 << (r.fired.Load() % 8)
				return out
			}
		case ModeTruncate:
			if r.fire() {
				return append([]byte(nil), b[:len(b)/2]...)
			}
		}
	}
	return b
}

// Delay sleeps for every ModeLatency rule firing at the site.
func (inj *Injector) Delay(site string) {
	if inj == nil {
		return
	}
	for _, r := range inj.bySite[site] {
		if r.Mode == ModeLatency && r.fire() {
			time.Sleep(time.Duration(r.Latency))
		}
	}
}

// Reject reports whether a ModeUnavailable rule fires at the site —
// the serving layer turns it into a 503 with Retry-After.
func (inj *Injector) Reject(site string) bool {
	if inj == nil {
		return false
	}
	for _, r := range inj.bySite[site] {
		if r.Mode == ModeUnavailable && r.fire() {
			return true
		}
	}
	return false
}

// Total reports faults fired across every rule — what
// vmserved_faults_injected_total renders.
func (inj *Injector) Total() uint64 {
	if inj == nil {
		return 0
	}
	var n uint64
	for _, r := range inj.rules {
		n += r.fired.Load()
	}
	return n
}

// Snapshot reports fires per "site/mode" — the /v1/stats view.
func (inj *Injector) Snapshot() map[string]uint64 {
	if inj == nil {
		return nil
	}
	out := make(map[string]uint64, len(inj.rules))
	for _, r := range inj.rules {
		out[r.Site+"/"+r.Mode] += r.fired.Load()
	}
	return out
}

// Sites lists the distinct sites the injector arms, sorted — handy
// for startup logs.
func (inj *Injector) Sites() []string {
	if inj == nil {
		return nil
	}
	sites := make([]string, 0, len(inj.bySite))
	for s := range inj.bySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	return sites
}
