package disptrace

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/metrics"
	"vmopt/internal/obs"
)

// Replay drives sim over the trace: every recorded event is applied
// with the same accounting as the cpu.Sim entry points the engine
// used while recording, in the same order, so the resulting counters
// — the float cycle counters included — are byte-identical to the
// direct simulation the trace was recorded from (on any machine
// model, since the stream is machine-independent; see cpu.Sink).
//
// jobs > 1 decodes (and decompresses) segments on that many
// goroutines while the decoded batches are applied strictly in order;
// jobs == 1 replays fully sequentially on the calling goroutine, and
// jobs <= 0 picks automatically (sequential on a single-core box,
// pipelined decode otherwise).
//
// Replay appends to sim's existing counters like a direct run would;
// use a fresh sim for a fresh result. sim.Sink is ignored during
// replay (replaying must not re-record).
func Replay(t *Trace, sim *cpu.Sim, jobs int) error {
	return replayEach(context.Background(), t, []*cpu.Sim{sim}, jobs)
}

// ReplayCtx is Replay under a request context: when ctx carries an
// obs trace, the replay's cursor-decode and sim-apply time is
// attributed to the trace's "decode" and "apply" stages. Counters are
// byte-identical to Replay; without a trace on the context the replay
// takes exactly Replay's path.
func ReplayCtx(ctx context.Context, t *Trace, sim *cpu.Sim, jobs int) error {
	return replayEach(ctx, t, []*cpu.Sim{sim}, jobs)
}

// ReplayEach replays the trace into several simulators at once with a
// single decode pass: each segment is decoded (and decompressed) into
// one immutable batch of cpu.Op events, and the batch is broadcast to
// one applier goroutine per simulator, so the N machines of a grid
// group apply in parallel while later segments decode. This is how a
// grid that varies only the machine amortizes the decode — one trace
// read serves N machines — and how wide machine grids use the cores
// the sequential predictor/I-cache state machines would otherwise
// leave idle. Each sim sees the exact event sequence a solo Replay
// would deliver, so the per-sim counters stay byte-identical to
// direct simulation.
func ReplayEach(t *Trace, sims []*cpu.Sim) error {
	return replayEach(context.Background(), t, sims, defaultDecodeJobs())
}

// ReplayEachCtx is ReplayEach under a request context, attributing
// the replay to the obs trace riding ctx (see ReplayCtx). The
// pipelined schedule overlaps decode and apply on separate
// goroutines, so it reports the combined wall time as a single
// "apply" stage rather than double-counting the window.
func ReplayEachCtx(ctx context.Context, t *Trace, sims []*cpu.Sim) error {
	return replayEach(ctx, t, sims, defaultDecodeJobs())
}

// defaultDecodeJobs sizes the decode side of the replay pipeline.
// Decoding is much cheaper than applying, so a few goroutines keep
// any number of appliers fed; more would only grow the in-flight
// batch window.
func defaultDecodeJobs() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// applyQueueDepth is the per-applier channel buffer: enough to ride
// out scheduling jitter between appliers without holding many decoded
// batches alive.
const applyQueueDepth = 2

// opBatch is one decoded segment's event batch plus the number of
// appliers that still have to release it. Batches are refcounted so
// the replay pipeline can recycle the backing []cpu.Op the moment the
// last applier finishes with it, instead of allocating one batch per
// segment and leaving the reclaim to GC — for wide machine grids the
// batches are the dominant replay allocation.
type opBatch struct {
	ops  []cpu.Op
	refs atomic.Int32
}

// batchPool is a fixed-capacity recycler for opBatches. get blocks
// while every batch is in flight, which doubles as the pipeline's
// backpressure: decoders stall when the appliers fall behind, bounding
// decoded memory to the pool size — the role the in-flight semaphore
// used to play.
type batchPool struct {
	free chan *opBatch
}

func newBatchPool(size int) *batchPool {
	p := &batchPool{free: make(chan *opBatch, size)}
	for range size {
		p.free <- &opBatch{}
	}
	return p
}

func (p *batchPool) get() *opBatch { return <-p.free }

func (p *batchPool) put(b *opBatch) { p.free <- b }

// release drops one reference and recycles the batch when it was the
// last.
func (b *opBatch) release(p *batchPool) {
	if b.refs.Add(-1) == 0 {
		p.put(b)
	}
}

// replayEach is the shared replay path: detach sinks, credit the
// stream totals, and run the decode/apply schedule.
func replayEach(ctx context.Context, t *Trace, sims []*cpu.Sim, decodeJobs int) error {
	if len(sims) == 0 {
		return nil
	}
	if decodeJobs <= 0 {
		decodeJobs = defaultDecodeJobs()
	}
	if a := t.arena; a != nil {
		// Compiled fast path: the trace's arena already holds the
		// fully decoded stream, so replay is pure apply — no inflate,
		// no varint expansion, no batch pool, and no allocation at
		// all for a single sim (Apply never consults the Sink, and
		// the code-bytes credit below is the same accounting
		// AddCodeBytes performs, minus the sink it must not drive).
		// The op sequence is identical to a decode-path replay — the
		// arena is built by the same decoder — so counters stay
		// byte-identical, float cycle order included.
		start := time.Now()
		for _, sim := range sims {
			sim.C.CodeBytes += t.Header.CodeBytes
		}
		a.replay(sims)
		for _, sim := range sims {
			sim.C.VMInstructions += t.Header.VMInstructions
		}
		if obs.FromContext(ctx) != nil {
			obs.Observe(ctx, "compiled", time.Since(start))
		}
		return nil
	}
	saved := make([]cpu.Sink, len(sims))
	for i, sim := range sims {
		saved[i], sim.Sink = sim.Sink, nil
		// The engine credits dynamic code bytes before stepping;
		// neither ordering affects cycles (integer-only), so totals
		// suffice.
		sim.AddCodeBytes(t.Header.CodeBytes)
	}
	defer func() {
		for i, sim := range sims {
			sim.Sink = saved[i]
		}
	}()

	traced := obs.FromContext(ctx) != nil
	var err error
	if len(sims) == 1 && (decodeJobs <= 1 || len(t.Segs) <= 1) {
		if traced {
			err = replaySequentialTraced(ctx, t, sims[0])
		} else {
			err = replaySequential(t, sims[0])
		}
	} else {
		start := time.Now()
		err = replayPipelined(t, sims, decodeJobs)
		if traced {
			// Decode workers run concurrently with the appliers, so the
			// whole pipeline's wall time is one "apply" stage.
			obs.Observe(ctx, "apply", time.Since(start))
		}
	}
	if err != nil {
		return err
	}
	for _, sim := range sims {
		sim.C.VMInstructions += t.Header.VMInstructions
	}
	return nil
}

// replaySequential drives one cursor over the trace and applies its
// batches on the calling goroutine; the cursor reuses one op buffer
// and one inflate scratch buffer across segments.
func replaySequential(t *Trace, sim *cpu.Sim) error {
	c := NewCursor(t)
	var ops []cpu.Op
	for {
		batch, ok := c.NextBatch(ops[:0])
		if !ok {
			return c.Err()
		}
		sim.Apply(batch)
		ops = batch
	}
}

// replaySequentialTraced is replaySequential with per-phase
// accounting: segment decode accumulates into the trace's "decode"
// stage and event application into "apply", at two clock reads per
// segment batch (segments are coarse, so the overhead is noise next
// to the work being measured).
func replaySequentialTraced(ctx context.Context, t *Trace, sim *cpu.Sim) (err error) {
	c := NewCursor(t)
	var ops []cpu.Op
	var decode, apply time.Duration
	defer func() {
		obs.Observe(ctx, "decode", decode)
		obs.Observe(ctx, "apply", apply)
	}()
	for {
		t0 := time.Now()
		batch, ok := c.NextBatch(ops[:0])
		t1 := time.Now()
		decode += t1.Sub(t0)
		if !ok {
			return c.Err()
		}
		sim.Apply(batch)
		apply += time.Since(t1)
		ops = batch
	}
}

// replayPipelined is the sharded schedule: a fixed crew of decode
// workers expands segments out of order into pooled batches, a
// coordinator forwards each decoded batch in stream order to every
// simulator's applier goroutine, and the appliers run independently —
// the only cross-sim synchronization is the batch hand-off. Batches
// are read-only between decode and release, so sharing one batch
// across appliers is race-free; the last applier to release a batch
// returns it to the pool for the next segment, so a replay allocates
// a pool's worth of batches however many segments stream through.
func replayPipelined(t *Trace, sims []*cpu.Sim, decodeJobs int) error {
	if decodeJobs < 1 {
		decodeJobs = 1
	}
	type decoded struct {
		b   *opBatch
		err error
	}
	// Buffered result slot per segment so decode workers never block
	// on the coordinator; the semaphore bounds segments admitted to
	// decode (decoded-but-unconsumed parking), released as the
	// coordinator consumes each slot in order. The pool must exceed
	// that bound: the admitted segments hold at most decodeJobs
	// batches between them, the applier feeds hold a further bounded,
	// always-draining set, so the worker decoding the oldest admitted
	// segment can never starve in get — without the semaphore, workers
	// could park every pooled batch in future segments' slots and
	// deadlock against the in-order coordinator.
	slots := make([]chan decoded, len(t.Segs))
	for i := range slots {
		slots[i] = make(chan decoded, 1)
	}
	pool := newBatchPool(decodeJobs + applyQueueDepth + 1)
	sem := make(chan struct{}, decodeJobs)
	segs := make(chan int)
	go func() {
		for i := range t.Segs {
			sem <- struct{}{}
			segs <- i
		}
		close(segs)
	}()
	for range decodeJobs {
		go func() {
			// Each worker drives its own cursor, which threads one
			// inflate scratch buffer through the segments it decodes.
			cur := NewCursor(t)
			for i := range segs {
				b := pool.get()
				var err error
				b.ops, err = cur.batchSeg(i, b.ops[:0])
				slots[i] <- decoded{b, err}
			}
		}()
	}

	feeds := make([]chan *opBatch, len(sims))
	var wg sync.WaitGroup
	for k, sim := range sims {
		feeds[k] = make(chan *opBatch, applyQueueDepth)
		wg.Add(1)
		go func(sim *cpu.Sim, ch <-chan *opBatch) {
			defer wg.Done()
			for b := range ch {
				sim.Apply(b.ops)
				b.release(pool)
			}
		}(sim, feeds[k])
	}

	var firstErr error
	for i := range t.Segs {
		d := <-slots[i]
		<-sem
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		if firstErr == nil {
			d.b.refs.Store(int32(len(sims)))
			for _, ch := range feeds {
				ch <- d.b
			}
		} else {
			// Keep draining — and keep recycling — so every decode
			// worker finishes even after an error instead of blocking
			// forever on an exhausted pool.
			pool.put(d.b)
		}
	}
	for _, ch := range feeds {
		close(ch)
	}
	wg.Wait()
	return firstErr
}

// DecodeOps expands the segment into a batch of cpu.Op events,
// appending to dst (which may be nil): fused step records come back
// as their constituent Work/Fetch/Dispatch events and compressed
// payloads are inflated first. A batch stores the already-resolved
// addresses (delta decoding happens here, once), so applying it is a
// tight loop over a slice — the form cpu.Sim.Apply consumes.
func (s Segment) DecodeOps(dst []cpu.Op) ([]cpu.Op, error) {
	ops, _, err := s.decodeOps(dst, nil, nil)
	return ops, err
}

// decodeOps is DecodeOps with a reusable inflate scratch buffer (see
// payloadScratch) threaded through by the cursor, and an optional
// record index: when ends is non-nil it receives the cumulative op
// count after each physical record, which is how the cursor maps step
// tables (record-granular) onto the decoded op stream and how legacy
// step synthesis recognizes fused records (they expand to more than
// one op).
func (s Segment) decodeOps(dst []cpu.Op, scratch []byte, ends *[]int) ([]cpu.Op, []byte, error) {
	if s.Records > maxSegmentRecords {
		return nil, scratch, fmt.Errorf("disptrace: segment claims %d records (limit %d)", s.Records, maxSegmentRecords)
	}
	b, scratch, err := s.payloadScratch(scratch)
	if err != nil {
		return nil, scratch, err
	}
	// A record expands to at most 5 ops (tagStepDisp); reserving the
	// bound up front keeps the hot append realloc-free.
	if need := 5 * s.Records; cap(dst)-len(dst) < need {
		grown := make([]cpu.Op, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	var prevFetch, prevBranch, prevTarget uint64
	i := 0
	// uv/sv are inlined-fast-path varint reads; they set ok=false on
	// malformed input and leave the error to the single check below.
	ok := true
	uv := func() uint64 {
		if i < len(b) && b[i] < 0x80 {
			v := uint64(b[i])
			i++
			return v
		}
		v, k := binary.Uvarint(b[i:])
		if k <= 0 {
			ok = false
			return 0
		}
		i += k
		return v
	}
	sv := func() int64 {
		if i < len(b) && b[i] < 0x80 {
			ux := uint64(b[i])
			i++
			return int64(ux>>1) ^ -int64(ux&1) // zigzag
		}
		v, k := binary.Varint(b[i:])
		if k <= 0 {
			ok = false
			return 0
		}
		i += k
		return v
	}
	for n := 0; n < s.Records; n++ {
		if i >= len(b) {
			return nil, scratch, fmt.Errorf("disptrace: truncated segment at record %d", n)
		}
		tag := b[i]
		i++
		switch {
		case tag >= tagWorkBase:
			dst = append(dst, cpu.Op{Kind: cpu.OpWork, A: uint64(tag - tagWorkBase)})
		case tag == tagWorkExt:
			dst = append(dst, cpu.Op{Kind: cpu.OpWork, A: uv()})
		case tag == tagFetch:
			prevFetch += uint64(sv())
			dst = append(dst, cpu.Op{Kind: cpu.OpFetch, A: prevFetch, B: uv()})
		case tag == tagDispatch:
			prevBranch += uint64(sv())
			hint := uv()
			prevTarget += uint64(sv())
			dst = append(dst, cpu.Op{Kind: cpu.OpDispatch, A: prevBranch, B: hint, C: prevTarget})
		case tag == tagStepSeq:
			w := uv()
			prevFetch += uint64(sv())
			size := uv()
			sw := uv()
			dst = append(dst,
				cpu.Op{Kind: cpu.OpWork, A: w},
				cpu.Op{Kind: cpu.OpFetch, A: prevFetch, B: size},
				cpu.Op{Kind: cpu.OpWork, A: sw})
		default: // tagStepDisp
			w := uv()
			prevFetch += uint64(sv())
			size := uv()
			dw := uv()
			ds := uv()
			prevBranch += uint64(sv())
			hint := uv()
			prevTarget += uint64(sv())
			dst = append(dst,
				cpu.Op{Kind: cpu.OpWork, A: w},
				cpu.Op{Kind: cpu.OpFetch, A: prevFetch, B: size},
				cpu.Op{Kind: cpu.OpWork, A: dw},
				cpu.Op{Kind: cpu.OpFetch, A: prevBranch, B: ds},
				cpu.Op{Kind: cpu.OpDispatch, A: prevBranch, B: hint, C: prevTarget})
			prevFetch = prevBranch // the step's last fetch was the branch
		}
		if !ok {
			return nil, scratch, fmt.Errorf("disptrace: malformed record %d", n)
		}
		if ends != nil {
			*ends = append(*ends, len(dst))
		}
	}
	if i != len(b) {
		return nil, scratch, fmt.Errorf("disptrace: %d trailing bytes after %d segment records", len(b)-i, s.Records)
	}
	return dst, scratch, nil
}

// ReplayMachine replays the trace on a fresh simulator for machine m
// and returns the counters.
func ReplayMachine(t *Trace, m cpu.Machine, jobs int) (metrics.Counters, error) {
	sim := cpu.NewSim(m)
	if err := Replay(t, sim, jobs); err != nil {
		return metrics.Counters{}, err
	}
	return sim.C, nil
}

// Verify checks the decoded stream against the header totals; a trace
// that passes Decode's checksum should also pass this, but Verify
// catches writer bugs and hand-edited traces.
func (t *Trace) Verify() error {
	var records, dispatches, fetches, work uint64
	var recs []Record
	for _, s := range t.Segs {
		var err error
		if recs, err = s.Decode(recs[:0]); err != nil {
			return err
		}
		records += uint64(s.Records) // physical records; fused steps expand on decode
		for _, r := range recs {
			switch r.Kind {
			case KWork:
				work += r.A
			case KFetch:
				fetches++
			case KDispatch:
				dispatches++
			}
		}
	}
	h := t.Header
	if records != h.Records || dispatches != h.Dispatches || fetches != h.Fetches || work != h.WorkInstrs {
		return fmt.Errorf("disptrace: stream totals (%d records, %d dispatches, %d fetches, %d work) disagree with header (%d, %d, %d, %d)",
			records, dispatches, fetches, work, h.Records, h.Dispatches, h.Fetches, h.WorkInstrs)
	}
	return nil
}

// HashISA fingerprints a VM instruction set: the name, opcode count
// and every opcode's metadata. Trace keys include it so a trace
// recorded under one ISA revision is never replayed against another
// (the work/byte cost tables feed directly into the stream).
func HashISA(isa core.ISA) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", isa.Name(), isa.NumOps())
	for op := 0; op < isa.NumOps(); op++ {
		m := isa.Meta(uint32(op))
		fmt.Fprintf(h, "|%s,%v,%d,%d,%v,%v,%d,%d,%v,%v,%v,%v,%v",
			m.Name, m.HasArg, m.Work, m.Bytes, m.Relocatable,
			m.Quickable, m.QuickWork, m.QuickBytesMax,
			m.Branch, m.Call, m.Return, m.Indirect, m.Stop)
	}
	return h.Sum64()
}
