package disptrace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/metrics"
)

// Replay drives sim over the trace: every recorded event is applied
// through the same cpu.Sim entry points the engine used while
// recording, in the same order, so the resulting counters — the float
// cycle counters included — are byte-identical to the direct
// simulation the trace was recorded from (on any machine model, since
// the stream is machine-independent; see cpu.Sink).
//
// jobs > 1 decodes segments on that many goroutines while applying
// them strictly in order (the predictor and I-cache are sequential
// state machines; only the varint decode parallelizes). jobs <= 1
// replays fully sequentially.
//
// Replay appends to sim's existing counters like a direct run would;
// use a fresh sim for a fresh result. sim.Sink is ignored during
// replay (replaying must not re-record).
func Replay(t *Trace, sim *cpu.Sim, jobs int) error {
	if jobs <= 1 || len(t.Segs) <= 1 {
		return ReplayEach(t, []*cpu.Sim{sim})
	}
	savedSink := sim.Sink
	sim.Sink = nil
	defer func() { sim.Sink = savedSink }()

	// The engine credits dynamic code bytes before stepping; neither
	// ordering affects cycles (integer-only), so totals suffice.
	sim.AddCodeBytes(t.Header.CodeBytes)
	if err := applyParallel(t, sim, jobs); err != nil {
		return err
	}
	sim.C.VMInstructions += t.Header.VMInstructions
	return nil
}

// ReplayEach replays the trace into several simulators at once with a
// single decode pass: per record, the event is applied to every sim
// in order. This is how a grid that varies only the machine amortizes
// the decode — one trace read serves N machines. Each sim sees the
// exact event sequence a solo Replay would deliver, so the per-sim
// counters stay byte-identical to direct simulation.
func ReplayEach(t *Trace, sims []*cpu.Sim) error {
	if len(sims) == 0 {
		return nil
	}
	saved := make([]cpu.Sink, len(sims))
	for i, sim := range sims {
		saved[i], sim.Sink = sim.Sink, nil
		sim.AddCodeBytes(t.Header.CodeBytes)
	}
	defer func() {
		for i, sim := range sims {
			sim.Sink = saved[i]
		}
	}()
	for _, s := range t.Segs {
		if err := s.applyEach(sims); err != nil {
			return err
		}
	}
	for _, sim := range sims {
		sim.C.VMInstructions += t.Header.VMInstructions
	}
	return nil
}

// applyEach decodes the segment straight into the simulators, fused
// in one pass: no intermediate Record slice is materialized, which is
// what makes replay cheaper than re-running the interpreter (a trace
// stores a few bytes per event, and streaming those bytes beats
// writing and re-reading 32-byte records through the cache).
func (s Segment) applyEach(sims []*cpu.Sim) error {
	b := s.Data
	var prevFetch, prevBranch, prevTarget uint64
	i := 0
	// uv/sv are inlined-fast-path varint reads; they set ok=false on
	// malformed input and leave the error to the single check below.
	ok := true
	uv := func() uint64 {
		if i < len(b) && b[i] < 0x80 {
			v := uint64(b[i])
			i++
			return v
		}
		v, k := binary.Uvarint(b[i:])
		if k <= 0 {
			ok = false
			return 0
		}
		i += k
		return v
	}
	sv := func() int64 {
		if i < len(b) && b[i] < 0x80 {
			ux := uint64(b[i])
			i++
			return int64(ux>>1) ^ -int64(ux&1) // zigzag
		}
		v, k := binary.Varint(b[i:])
		if k <= 0 {
			ok = false
			return 0
		}
		i += k
		return v
	}
	for n := 0; n < s.Records; n++ {
		if i >= len(b) {
			return fmt.Errorf("disptrace: truncated segment at record %d", n)
		}
		tag := b[i]
		i++
		switch {
		case tag >= tagWorkBase:
			for _, sim := range sims {
				sim.Work(int(tag - tagWorkBase))
			}
		case tag == tagWorkExt:
			v := uv()
			for _, sim := range sims {
				sim.Work(int(v))
			}
		case tag == tagFetch:
			prevFetch += uint64(sv())
			size := uv()
			for _, sim := range sims {
				sim.Fetch(prevFetch, int(size))
			}
		case tag == tagDispatch:
			prevBranch += uint64(sv())
			hint := uv()
			prevTarget += uint64(sv())
			for _, sim := range sims {
				sim.Dispatch(prevBranch, hint, prevTarget)
			}
		case tag == tagStepSeq:
			w := uv()
			prevFetch += uint64(sv())
			size := uv()
			sw := uv()
			if !ok {
				return fmt.Errorf("disptrace: malformed record %d", n)
			}
			for _, sim := range sims {
				sim.Work(int(w))
				sim.Fetch(prevFetch, int(size))
				sim.Work(int(sw))
			}
		default: // tagStepDisp
			w := uv()
			prevFetch += uint64(sv())
			size := uv()
			dw := uv()
			ds := uv()
			prevBranch += uint64(sv())
			hint := uv()
			prevTarget += uint64(sv())
			if !ok {
				return fmt.Errorf("disptrace: malformed record %d", n)
			}
			for _, sim := range sims {
				sim.Work(int(w))
				sim.Fetch(prevFetch, int(size))
				sim.Work(int(dw))
				sim.Fetch(prevBranch, int(ds))
				sim.Dispatch(prevBranch, hint, prevTarget)
			}
			prevFetch = prevBranch
		}
		if !ok {
			return fmt.Errorf("disptrace: malformed record %d", n)
		}
	}
	if i != len(b) {
		return fmt.Errorf("disptrace: %d trailing bytes after %d segment records", len(b)-i, s.Records)
	}
	return nil
}

// ReplayMachine replays the trace on a fresh simulator for machine m
// and returns the counters.
func ReplayMachine(t *Trace, m cpu.Machine, jobs int) (metrics.Counters, error) {
	sim := cpu.NewSim(m)
	if err := Replay(t, sim, jobs); err != nil {
		return metrics.Counters{}, err
	}
	return sim.C, nil
}

// apply feeds decoded records into the simulator.
func apply(sim *cpu.Sim, recs []Record) {
	for _, r := range recs {
		switch r.Kind {
		case KWork:
			sim.Work(int(r.A))
		case KFetch:
			sim.Fetch(r.A, int(r.B))
		case KDispatch:
			sim.Dispatch(r.A, r.B, r.C)
		}
	}
}

// applyParallel decodes segments on a bounded pool and applies them
// in order: decode i+1..i+jobs overlaps with applying segment i.
func applyParallel(t *Trace, sim *cpu.Sim, jobs int) error {
	type decoded struct {
		recs []Record
		err  error
	}
	// Buffered result slot per segment so decoders never block on the
	// consumer; the semaphore bounds in-flight decoded segments.
	slots := make([]chan decoded, len(t.Segs))
	for i := range slots {
		slots[i] = make(chan decoded, 1)
	}
	sem := make(chan struct{}, jobs)
	go func() {
		for i := range t.Segs {
			sem <- struct{}{}
			go func(i int) {
				recs, err := t.Segs[i].Decode(nil)
				slots[i] <- decoded{recs, err}
			}(i)
		}
	}()
	var firstErr error
	for i := range t.Segs {
		d := <-slots[i]
		<-sem
		if d.err != nil && firstErr == nil {
			firstErr = d.err
		}
		if firstErr == nil {
			apply(sim, d.recs)
		}
		// Keep draining so every decoder goroutine finishes even
		// after an error.
	}
	return firstErr
}

// Verify checks the decoded stream against the header totals; a trace
// that passes Decode's checksum should also pass this, but Verify
// catches writer bugs and hand-edited traces.
func (t *Trace) Verify() error {
	var records, dispatches, fetches, work uint64
	var recs []Record
	for _, s := range t.Segs {
		var err error
		if recs, err = s.Decode(recs[:0]); err != nil {
			return err
		}
		records += uint64(s.Records) // physical records; fused steps expand on decode
		for _, r := range recs {
			switch r.Kind {
			case KWork:
				work += r.A
			case KFetch:
				fetches++
			case KDispatch:
				dispatches++
			}
		}
	}
	h := t.Header
	if records != h.Records || dispatches != h.Dispatches || fetches != h.Fetches || work != h.WorkInstrs {
		return fmt.Errorf("disptrace: stream totals (%d records, %d dispatches, %d fetches, %d work) disagree with header (%d, %d, %d, %d)",
			records, dispatches, fetches, work, h.Records, h.Dispatches, h.Fetches, h.WorkInstrs)
	}
	return nil
}

// HashISA fingerprints a VM instruction set: the name, opcode count
// and every opcode's metadata. Trace keys include it so a trace
// recorded under one ISA revision is never replayed against another
// (the work/byte cost tables feed directly into the stream).
func HashISA(isa core.ISA) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", isa.Name(), isa.NumOps())
	for op := 0; op < isa.NumOps(); op++ {
		m := isa.Meta(uint32(op))
		fmt.Fprintf(h, "|%s,%v,%d,%d,%v,%v,%d,%d,%v,%v,%v,%v,%v",
			m.Name, m.HasArg, m.Work, m.Bytes, m.Relocatable,
			m.Quickable, m.QuickWork, m.QuickBytesMax,
			m.Branch, m.Call, m.Return, m.Indirect, m.Stop)
	}
	return h.Sum64()
}
