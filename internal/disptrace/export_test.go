package disptrace

import (
	"encoding/binary"
	"hash/crc32"
)

// EncodeV1 serializes a trace in the legacy v1 layout — raw payloads
// only, no codec byte or raw-size field in the segment index — so
// tests can prove current readers still decode traces written before
// the v2 codec bump. Only raw segments are encodable in v1; callers
// pass writer-produced traces.
func EncodeV1(t *Trace) []byte {
	hdr := encodeHeader(t.Header)
	body := binary.AppendUvarint(nil, uint64(len(hdr)))
	body = append(body, hdr...)
	body = binary.AppendUvarint(body, uint64(len(t.Segs)))
	for _, s := range t.Segs {
		if s.Codec != CodecRaw {
			panic("EncodeV1: non-raw segment")
		}
		body = binary.AppendUvarint(body, uint64(len(s.Data)))
		body = binary.AppendUvarint(body, uint64(s.Records))
	}
	for _, s := range t.Segs {
		body = append(body, s.Data...)
	}
	out := make([]byte, 0, 4+2+4+len(body))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, versionV1)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// EncodeV2 serializes a trace in the v2 layout — codec byte and raw
// size per segment, but no VM-instruction counts or step tables — so
// tests can prove current readers (and cursors, via their synthesized
// step boundaries) still handle traces written before the v3
// instruction index.
func EncodeV2(t *Trace) []byte {
	stripped := &Trace{Header: t.Header, Segs: make([]Segment, len(t.Segs))}
	for i, s := range t.Segs {
		s.VMInsts, s.Steps = 0, nil
		stripped.Segs[i] = s
	}
	return stripped.Encode() // a step-table-free trace encodes as v2
}

// SetWriterSegLimit overrides the writer's records-per-segment limit
// so tests can produce many-segment traces without writing millions
// of records.
func SetWriterSegLimit(w *Writer, n int) { w.segLimit = n }
