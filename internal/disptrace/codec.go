package disptrace

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Codec identifies the byte-level encoding of one segment payload.
// The format-v2 segment index carries a codec byte per segment, so a
// trace may mix codecs (the writer falls back to CodecRaw whenever
// compression does not shrink a payload) and new codecs can be added
// without another format bump — readers reject codec bytes they do
// not know.
type Codec uint8

const (
	// CodecRaw stores the varint record stream as-is. It is the only
	// codec of format v1 and the fallback when compression loses.
	CodecRaw Codec = 0
	// CodecFlate stores the record stream DEFLATE-compressed
	// (compress/flate). Step-record streams are dominated by repeated
	// tag/delta patterns from interpreter loops, so flate typically
	// shrinks them 3-6x while inflating stays far cheaper than
	// re-running the interpreter.
	CodecFlate Codec = 1
)

// DefaultCodec is the codec Encode and Save apply to raw segments.
var DefaultCodec = CodecFlate

func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecFlate:
		return "flate"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// CodecByName resolves a CLI codec name.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "raw":
		return CodecRaw, nil
	case "flate":
		return CodecFlate, nil
	default:
		return 0, fmt.Errorf("disptrace: unknown codec %q (want raw or flate)", name)
	}
}

// knownCodec reports whether a codec byte read from a trace index is
// one this reader can decode.
func knownCodec(c Codec) bool { return c == CodecRaw || c == CodecFlate }

// maxInflateRatio bounds how much a DEFLATE stream can expand: the
// format's stored blocks cost at least 1 bit per ~1032 output bytes,
// so a declared raw size beyond this ratio is corrupt for certain.
// Checking it before allocating keeps decode memory proportional to
// the input even for hostile indexes.
const maxInflateRatio = 1032

// flateWriters pools flate compressors: a fresh flate.Writer carries
// tens of kilobytes of match tables, and before pooling every encoded
// segment paid that allocation (EncodeFlate was ~370 allocs per
// trace). Reset fully reinitializes a pooled writer — including one
// abandoned mid-stream by an error — so reuse is safe.
var flateWriters = sync.Pool{
	New: func() any {
		zw, _ := flate.NewWriter(io.Discard, flate.DefaultCompression)
		return zw
	},
}

// flateReaders pools flate decompressors; every reader flate.NewReader
// produces implements flate.Resetter, and Reset restores it to a
// fresh stream whatever state the previous use left it in.
var flateReaders sync.Pool

// deflate compresses raw with the default flate level and reports
// whether the result is strictly smaller (callers keep CodecRaw
// otherwise).
func deflate(raw []byte) ([]byte, bool) {
	var buf bytes.Buffer
	zw := flateWriters.Get().(*flate.Writer)
	defer flateWriters.Put(zw)
	zw.Reset(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, false
	}
	if err := zw.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(raw) {
		return nil, false
	}
	return buf.Bytes(), true
}

// inflate decompresses a flate payload whose raw size is declared as
// rawLen, reusing scratch when it has the capacity. Truncated or
// garbled streams and size mismatches return errors, never panics.
func inflate(data []byte, rawLen int, scratch []byte) ([]byte, error) {
	if rawLen < 0 || rawLen > maxInflateRatio*len(data)+64 {
		return nil, fmt.Errorf("disptrace: declared raw size %d impossible for %d compressed bytes", rawLen, len(data))
	}
	var zr io.ReadCloser
	if v := flateReaders.Get(); v != nil {
		zr = v.(io.ReadCloser)
		if err := zr.(flate.Resetter).Reset(bytes.NewReader(data), nil); err != nil {
			return nil, fmt.Errorf("disptrace: inflating segment: %w", err)
		}
	} else {
		zr = flate.NewReader(bytes.NewReader(data))
	}
	defer func() {
		zr.Close()
		flateReaders.Put(zr)
	}()
	out := scratch
	if cap(out) < rawLen {
		out = make([]byte, rawLen)
	}
	out = out[:rawLen]
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("disptrace: inflating segment: %w", err)
	}
	var extra [1]byte
	if n, _ := zr.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("disptrace: inflated segment longer than declared %d bytes", rawLen)
	}
	return out, nil
}

// encodePayload converts a raw payload to the requested codec,
// returning the stored bytes and the codec actually used (CodecRaw
// when compression would not shrink the payload or the codec is
// unknown).
func encodePayload(raw []byte, c Codec) ([]byte, Codec) {
	if c == CodecFlate {
		if z, ok := deflate(raw); ok {
			return z, CodecFlate
		}
	}
	return raw, CodecRaw
}
