package disptrace

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmopt/internal/faults"
	"vmopt/internal/runner"
)

// Key identifies a dispatch stream: everything that determines the
// event sequence. The machine model is deliberately absent — one
// trace serves every machine (see cpu.Sink).
//
// Variant is the harness variant label; labels are unique per
// configuration within an experiment grid (sweep variants encode
// their budgets in the label), so the label together with scale,
// divisor, step bound and ISA fingerprint pins the stream down.
type Key struct {
	Workload  string
	Lang      string
	Variant   string
	Technique string
	Scale     uint64
	ScaleDiv  uint64
	MaxSteps  uint64
	ISAHash   uint64
}

// ID returns the content address of the key: a sha256 over the format
// version and every field, rendered as hex. It names the cache file.
func (k Key) ID() string {
	h := sha256.Sum256(fmt.Appendf(nil, "vmdt%d|%s|%s|%s|%s|%d|%d|%d|%x",
		Version, k.Workload, k.Lang, k.Variant, k.Technique,
		k.Scale, k.ScaleDiv, k.MaxSteps, k.ISAHash))
	return hex.EncodeToString(h[:])
}

// Header returns the trace header a recording for this key should
// carry (stream totals zero; the writer fills them).
func (k Key) Header() Header {
	return Header{
		Workload: k.Workload, Lang: k.Lang,
		Variant: k.Variant, Technique: k.Technique,
		Scale: k.Scale, ScaleDiv: k.ScaleDiv,
		MaxSteps: k.MaxSteps, ISAHash: k.ISAHash,
	}
}

// matches reports whether a loaded trace's header describes this key
// (belt and braces over the content address: a stale or hand-renamed
// file is rejected instead of silently replayed).
func (k Key) matches(h Header) bool {
	return h.Workload == k.Workload && h.Lang == k.Lang &&
		h.Variant == k.Variant && h.Technique == k.Technique &&
		h.Scale == k.Scale && h.ScaleDiv == k.ScaleDiv &&
		h.MaxSteps == k.MaxSteps && h.ISAHash == k.ISAHash
}

// Cache is a content-addressed on-disk trace store: traces live under
// Dir as <key-id>.vmdt. Concurrent recordings of the same key are
// deduplicated in-process (runner.Flight); distinct processes sharing
// a directory stay safe through atomic writes, at worst recording the
// same trace twice.
//
// Loaded traces are not memoized in memory: a full experiment grid
// touches hundreds of megabytes of traces, and the OS page cache
// already makes re-reading a warm file cheap.
type Cache struct {
	// Dir is the cache directory (created on first store).
	Dir string

	// Faults optionally injects I/O failures at the cache.read and
	// cache.write sites (delays, errors, payload corruption). nil
	// injects nothing; the self-healing paths below exist so every
	// injected fault is absorbed without failing a request.
	Faults *faults.Injector

	// Fill, when set, is consulted on a clean local miss before the
	// trace is recorded by simulation: it returns the encoded trace
	// bytes from elsewhere (in a cluster, the owning peer), nil bytes
	// for a clean miss, or an error. Filled bytes are verified against
	// the key before use and stored locally, so a cold or re-hashed
	// instance warms from the fleet instead of redoing work. Fill runs
	// inside the per-key flight, so a herd on one key asks at most
	// once. FillID is the same hook for by-ID loads (the diff path);
	// its result is verified against the content address. Both must be
	// set before the cache serves traffic.
	Fill   func(k Key) ([]byte, error)
	FillID func(id string) ([]byte, error)

	// Compiled, when non-nil, is the in-memory compiled-replay tier:
	// every clean disk load is offered to it, hot traces come back
	// with a pre-decoded op arena attached, and tier hits skip the
	// disk (and every later decode) entirely. Quarantine and scrub
	// invalidate tier entries together with their files. nil disables
	// the tier. Set before the cache serves traffic.
	Compiled *CompiledTier

	flight runner.Flight[string, cacheOutcome]

	// metas memoizes per-file index metadata for List (id ->
	// cachedMeta), revalidated by size+mtime so a re-recorded file is
	// re-read. Trace files are content-addressed and essentially
	// immutable, so a listing after the first costs ReadDir+stat
	// again, not a header parse per file. Entries for deleted files
	// are dropped during List.
	metas sync.Map

	loads, records, joined              atomic.Uint64
	quarantined, readErrors, saveErrors atomic.Uint64
	peerFills, peerFillMisses           atomic.Uint64
	peerFillErrors, peerServes          atomic.Uint64
}

// cachedMeta is one memoized ReadMeta result with its validators.
type cachedMeta struct {
	size  int64
	mtime time.Time
	meta  Meta
	ok    bool // false: the file was unreadable; don't retry every listing
}

// CacheStats counts cache activity since process start; the serving
// subsystem reports it on /v1/stats. Loads + Records is the number of
// flights that ran (disk hits vs fresh recordings); Joined counts
// GetOrRecord calls that coalesced onto an in-progress flight instead
// of touching the disk at all.
type CacheStats struct {
	Loads   uint64 `json:"loads"`
	Records uint64 `json:"records"`
	Joined  uint64 `json:"joined"`

	// Quarantined counts corrupt or mismatched files moved to the
	// quarantine sidecar dir instead of served; ReadErrors counts
	// loads that failed at the I/O layer and fell back to
	// re-simulation; SaveErrors counts recordings whose cache store
	// failed but whose trace was still served.
	Quarantined uint64 `json:"quarantined"`
	ReadErrors  uint64 `json:"read_errors"`
	SaveErrors  uint64 `json:"save_errors"`

	// PeerFills counts misses satisfied by the Fill/FillID hooks (in a
	// cluster, traces fetched from the owning peer instead of
	// re-simulated); PeerFillMisses counts hook calls that came back
	// empty and fell through to simulation; PeerFillErrors counts hook
	// failures plus filled payloads rejected by verification.
	// PeerServes counts raw trace files this instance handed to peers
	// through ReadRaw.
	PeerFills      uint64 `json:"peer_fills,omitempty"`
	PeerFillMisses uint64 `json:"peer_fill_misses,omitempty"`
	PeerFillErrors uint64 `json:"peer_fill_errors,omitempty"`
	PeerServes     uint64 `json:"peer_serves,omitempty"`

	// Compiled reports the in-memory compiled-replay arena tier
	// (absent when the cache runs without one).
	Compiled *CompiledStats `json:"compiled,omitempty"`
}

// Stats snapshots the cache's activity counters.
func (c *Cache) Stats() CacheStats {
	cs := CacheStats{
		Loads:          c.loads.Load(),
		Records:        c.records.Load(),
		Joined:         c.joined.Load(),
		Quarantined:    c.quarantined.Load(),
		ReadErrors:     c.readErrors.Load(),
		SaveErrors:     c.saveErrors.Load(),
		PeerFills:      c.peerFills.Load(),
		PeerFillMisses: c.peerFillMisses.Load(),
		PeerFillErrors: c.peerFillErrors.Load(),
		PeerServes:     c.peerServes.Load(),
	}
	if c.Compiled != nil {
		s := c.Compiled.Stats()
		cs.Compiled = &s
	}
	return cs
}

// CompiledStats snapshots the compiled tier's counters (zeroes when
// the cache runs without one) — the vmserved_compiled_* metrics.
func (c *Cache) CompiledStats() CompiledStats { return c.Compiled.Stats() }

// Quarantined reports files quarantined since process start (the
// vmserved_cache_quarantined_total metric).
func (c *Cache) Quarantined() uint64 { return c.quarantined.Load() }

// cacheOutcome is one GetOrRecord result shared across a flight.
type cacheOutcome struct {
	t        *Trace
	recorded bool
}

// NewCache returns a cache rooted at dir.
func NewCache(dir string) *Cache { return &Cache{Dir: dir} }

// Path returns the file a key's trace is stored at.
func (c *Cache) Path(k Key) string {
	return filepath.Join(c.Dir, k.ID()+".vmdt")
}

// QuarantineDir is the sidecar directory under Dir that corrupt or
// mismatched cache files are moved into (never deleted): the bytes
// stay available for a postmortem, the cache heals by re-recording,
// and the move shows up in CacheStats.Quarantined.
const QuarantineDir = "quarantine"

// quarantine moves a bad cache file into the sidecar dir. If the move
// itself fails (cross-device, permissions) the file is removed
// instead — a poisoned entry that cannot be set aside must still not
// wedge every future run on its key.
func (c *Cache) quarantine(path string) {
	// The compiled tier must never outlive its file: a quarantined
	// entry's arena (and hotness count) goes with it, so the healed
	// replacement re-earns its arena from clean bytes.
	c.Compiled.Invalidate(strings.TrimSuffix(filepath.Base(path), ".vmdt"))
	qdir := filepath.Join(c.Dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			c.quarantined.Add(1)
			return
		}
	}
	if os.Remove(path) == nil {
		c.quarantined.Add(1)
	}
}

// readFile reads one cache file through the fault-injection sites:
// injected latency first, then an injected read error, then payload
// corruption of the bytes actually read.
func (c *Cache) readFile(path string) ([]byte, error) {
	c.Faults.Delay(faults.SiteCacheRead)
	if err := c.Faults.Err(faults.SiteCacheRead); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return c.Faults.Corrupt(faults.SiteCacheRead, b), nil
}

// Load returns the cached trace for a key, or (nil, nil) on a clean
// miss. A corrupt or mismatched cache file is quarantined and
// reported as a miss so the caller re-records over it; read errors
// other than absence (permissions, fd exhaustion, injected faults)
// propagate — quarantining a valid trace over a transient I/O failure
// would needlessly discard cache (GetOrRecord absorbs the error by
// re-simulating instead).
func (c *Cache) Load(k Key) (*Trace, error) {
	id := k.ID()
	if t := c.Compiled.Get(id); t != nil {
		return t, nil
	}
	path := filepath.Join(c.Dir, id+".vmdt")
	b, err := c.readFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("disptrace: %w", err)
	}
	t, err := Decode(b)
	if err != nil {
		// Truncated, bit-flipped, or stale: set it aside and treat as
		// a miss rather than wedging every run on the key.
		c.quarantine(path)
		return nil, nil
	}
	if !k.matches(t.Header) {
		c.quarantine(path)
		return nil, nil
	}
	c.Compiled.Offer(id, t)
	return t, nil
}

// traceIDPattern is the shape of a content address: the hex sha256
// Key.ID produces. Only the cache knows its own file layout; callers
// (the serving API) enumerate and load by ID through List/LoadID.
var traceIDPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidID reports whether id has the shape of a cache content
// address.
func ValidID(id string) bool { return traceIDPattern.MatchString(id) }

// ErrNoTrace reports an ID absent from the cache.
var ErrNoTrace = errors.New("disptrace: no such trace in cache")

// CacheEntry is one resident trace file in the cache index: its
// content address and size plus the identifying metadata and stream
// shape read from the file's header and segment index (no payload is
// decoded). Diff tooling picks comparable pairs straight from this
// listing.
type CacheEntry struct {
	ID    string `json:"id"`
	Bytes int64  `json:"bytes"`

	Workload  string `json:"workload,omitempty"`
	Lang      string `json:"lang,omitempty"`
	Variant   string `json:"variant,omitempty"`
	Technique string `json:"technique,omitempty"`
	ScaleDiv  uint64 `json:"scalediv,omitempty"`

	// VMInstructions and Segments come from the trace's index;
	// Seekable marks v3 traces whose cursors seek by instruction.
	VMInstructions uint64 `json:"vm_instructions,omitempty"`
	Segments       int    `json:"segments,omitempty"`
	Seekable       bool   `json:"seekable,omitempty"`
}

// List enumerates every trace resident in the cache directory with
// its index metadata. A missing directory is an empty cache, not an
// error; files whose metadata cannot be read (corrupt, or deleted
// mid-listing) are listed by id and size alone.
func (c *Cache) List() ([]CacheEntry, error) {
	entries, err := os.ReadDir(c.Dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("disptrace: %w", err)
	}
	var out []CacheEntry
	live := make(map[string]bool, len(entries))
	for _, e := range entries {
		id, isTrace := strings.CutSuffix(e.Name(), ".vmdt")
		if !isTrace || !ValidID(id) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // deleted between ReadDir and stat
		}
		live[id] = true
		entry := CacheEntry{ID: id, Bytes: info.Size()}
		cm, hit := c.metas.Load(id)
		if !hit || cm.(cachedMeta).size != info.Size() || !cm.(cachedMeta).mtime.Equal(info.ModTime()) {
			fresh := cachedMeta{size: info.Size(), mtime: info.ModTime()}
			if m, err := ReadMeta(filepath.Join(c.Dir, e.Name())); err == nil {
				fresh.meta, fresh.ok = m, true
			}
			c.metas.Store(id, fresh)
			cm = fresh
		}
		if m := cm.(cachedMeta); m.ok {
			entry.Workload = m.meta.Header.Workload
			entry.Lang = m.meta.Header.Lang
			entry.Variant = m.meta.Header.Variant
			entry.Technique = m.meta.Header.Technique
			entry.ScaleDiv = m.meta.Header.ScaleDiv
			entry.VMInstructions = m.meta.Header.VMInstructions
			entry.Segments = m.meta.Segments
			entry.Seekable = m.meta.Seekable
		}
		out = append(out, entry)
	}
	// Drop memoized metadata for files no longer resident, so the map
	// tracks the directory instead of its history.
	c.metas.Range(func(k, _ any) bool {
		if !live[k.(string)] {
			c.metas.Delete(k)
		}
		return true
	})
	return out, nil
}

// LoadID loads a cached trace by its content address, returning the
// trace and its on-disk size. Absent IDs return ErrNoTrace (also for
// malformed IDs, which cannot name a cache file). A file that reads
// but fails to decode is quarantined and reported as absent: the
// cache has no valid trace under that ID any more.
func (c *Cache) LoadID(id string) (*Trace, int64, error) {
	if !ValidID(id) {
		return nil, 0, ErrNoTrace
	}
	path := filepath.Join(c.Dir, id+".vmdt")
	fi, err := os.Stat(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if t, size, ok := c.fillID(id); ok {
				return t, size, nil
			}
			return nil, 0, ErrNoTrace
		}
		return nil, 0, fmt.Errorf("disptrace: %w", err)
	}
	// The stat above keeps deleted files reporting ErrNoTrace even
	// when the tier still remembers them; past it, a tier hit skips
	// the read and decode.
	if t := c.Compiled.Get(id); t != nil {
		return t, fi.Size(), nil
	}
	b, err := c.readFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, ErrNoTrace
		}
		return nil, 0, fmt.Errorf("disptrace: %w", err)
	}
	t, err := Decode(b)
	if err != nil {
		c.quarantine(path)
		return nil, 0, ErrNoTrace
	}
	c.Compiled.Offer(id, t)
	return t, fi.Size(), nil
}

// store writes a trace into the cache through the cache.write fault
// sites: injected latency first, then an injected write error, then
// payload corruption of the encoded bytes on their way to disk (a
// later read fails its segment CRC and exercises quarantine).
func (c *Cache) store(k Key, t *Trace) error {
	c.Faults.Delay(faults.SiteCacheWrite)
	if err := c.Faults.Err(faults.SiteCacheWrite); err != nil {
		return err
	}
	return atomicWrite(c.Path(k), c.Faults.Corrupt(faults.SiteCacheWrite, t.EncodeCodec(DefaultCodec)))
}

// GetOrRecord returns the trace for key, loading it from disk or
// recording it with record exactly once per in-process flight.
// recorded reports whether this call (or the flight it joined)
// performed a fresh recording rather than a disk load.
//
// Storage failure in either direction is absorbed rather than served:
// a load that errors at the I/O layer falls back to re-simulation
// (counted in ReadErrors), and a recording whose cache store fails is
// still returned to the caller (counted in SaveErrors) — losing a
// cache entry costs the next request a re-simulation; losing the
// response would fail this one.
func (c *Cache) GetOrRecord(k Key, record func() (*Trace, error)) (t *Trace, recorded bool, err error) {
	o, leader, err := c.flight.Do(k.ID(), func() (cacheOutcome, error) {
		t, lerr := c.Load(k)
		if lerr != nil {
			c.readErrors.Add(1)
		} else if t != nil {
			c.loads.Add(1)
			return cacheOutcome{t: t}, nil
		}
		if t := c.fill(k); t != nil {
			return cacheOutcome{t: t}, nil
		}
		t, err := record()
		if err != nil {
			return cacheOutcome{}, err
		}
		if err := c.store(k, t); err != nil {
			c.saveErrors.Add(1)
		}
		c.records.Add(1)
		return cacheOutcome{t: t, recorded: true}, nil
	})
	if !leader {
		c.joined.Add(1)
	}
	return o.t, o.recorded, err
}

// fill consults the Fill hook on a clean local miss. A usable result
// is verified against the key, persisted locally (best effort — a
// store failure costs the next request another fill, not this
// response), and returned; anything else — hook absent, hook error,
// empty result, or a payload that fails decode or key verification —
// returns nil so the caller falls through to simulation. The ladder
// is strictly local → peer → simulate: fill never makes a miss worse
// than it already was.
func (c *Cache) fill(k Key) *Trace {
	if c.Fill == nil {
		return nil
	}
	b, err := c.Fill(k)
	if err != nil {
		c.peerFillErrors.Add(1)
		return nil
	}
	if len(b) == 0 {
		c.peerFillMisses.Add(1)
		return nil
	}
	t, err := Decode(b)
	if err != nil || !k.matches(t.Header) {
		c.peerFillErrors.Add(1)
		return nil
	}
	if err := atomicWrite(c.Path(k), b); err != nil {
		c.saveErrors.Add(1)
	}
	c.peerFills.Add(1)
	return t
}

// fillID is fill for by-ID loads: the filled payload is verified
// against the content address (the decoded header must hash back to
// id) before being persisted and served.
func (c *Cache) fillID(id string) (*Trace, int64, bool) {
	if c.FillID == nil {
		return nil, 0, false
	}
	b, err := c.FillID(id)
	if err != nil {
		c.peerFillErrors.Add(1)
		return nil, 0, false
	}
	if len(b) == 0 {
		c.peerFillMisses.Add(1)
		return nil, 0, false
	}
	t, err := Decode(b)
	if err != nil {
		c.peerFillErrors.Add(1)
		return nil, 0, false
	}
	h := t.Header
	k := Key{Workload: h.Workload, Lang: h.Lang, Variant: h.Variant,
		Technique: h.Technique, Scale: h.Scale, ScaleDiv: h.ScaleDiv,
		MaxSteps: h.MaxSteps, ISAHash: h.ISAHash}
	if k.ID() != id {
		c.peerFillErrors.Add(1)
		return nil, 0, false
	}
	if err := atomicWrite(filepath.Join(c.Dir, id+".vmdt"), b); err != nil {
		c.saveErrors.Add(1)
	}
	c.peerFills.Add(1)
	return t, int64(len(b)), true
}

// ReadRaw returns the raw stored bytes of a resident trace file — the
// peer-serving side of the fill protocol. It reads the disk directly
// (no fault injection, no fill recursion: an instance serves only
// what it actually has), and the requesting peer verifies the payload
// against the content address, so no decode happens here.
func (c *Cache) ReadRaw(id string) ([]byte, error) {
	if !ValidID(id) {
		return nil, ErrNoTrace
	}
	b, err := os.ReadFile(filepath.Join(c.Dir, id+".vmdt"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNoTrace
		}
		return nil, fmt.Errorf("disptrace: %w", err)
	}
	c.peerServes.Add(1)
	return b, nil
}

// ScrubReport summarizes a cache verification pass.
type ScrubReport struct {
	// Checked counts trace files examined; Quarantined counts those
	// that failed to decode or did not match their content address
	// and were moved to the quarantine sidecar dir.
	Checked     int   `json:"checked"`
	Quarantined int   `json:"quarantined"`
	Bytes       int64 `json:"bytes"`
}

// Scrub verifies every resident trace file — full decode (every
// segment CRC) plus a content-address check of the decoded header —
// and quarantines the failures. It reads the disk directly, bypassing
// injected read faults: scrub verifies what is actually stored.
// vmserved runs it at startup under -scrub.
func (c *Cache) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	entries, err := os.ReadDir(c.Dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return rep, nil
		}
		return rep, fmt.Errorf("disptrace: %w", err)
	}
	for _, e := range entries {
		id, isTrace := strings.CutSuffix(e.Name(), ".vmdt")
		if !isTrace || !ValidID(id) {
			continue
		}
		path := filepath.Join(c.Dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			continue // deleted mid-scrub, or unreadable: nothing to verify
		}
		rep.Checked++
		rep.Bytes += int64(len(b))
		t, derr := Decode(b)
		if derr == nil {
			h := t.Header
			k := Key{Workload: h.Workload, Lang: h.Lang, Variant: h.Variant,
				Technique: h.Technique, Scale: h.Scale, ScaleDiv: h.ScaleDiv,
				MaxSteps: h.MaxSteps, ISAHash: h.ISAHash}
			if k.ID() == id {
				continue
			}
		}
		c.quarantine(path)
		rep.Quarantined++
	}
	return rep, nil
}
