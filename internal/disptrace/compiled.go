// Compiled replay: hot traces become pre-decoded op-batch arenas
// served zero-copy.
//
// The decode path pays inflate + varint expansion on every replay,
// even when the trace bytes are already cached on disk. Ertl & Gregg's
// thesis — interpreter speed comes from removing per-instruction
// overhead on hot paths — applies one level up: a trace the cache
// keeps loading is worth specializing once into its fully decoded
// form. An Arena is that form: one flat, contiguous, immutable
// []cpu.Op holding the whole stream, with the segment boundaries and a
// per-VM-instruction index mirroring the v3 step tables. Replay serves
// slices of it by reference — zero decode work, zero per-replay
// allocation, no refcounted batch pool — and the cursor's Next/Seek
// become array lookups (a step that spans segments is contiguous in
// the flat layout, so the decode path's stitch buffer vanishes).
//
// CompiledTier decides which traces earn an arena: the cache offers
// every disk load, the tier counts per-ID uses, and on the Nth load of
// the same trace it builds the arena and memoizes the decoded trace
// with it — from then on the cache serves the memoized trace without
// touching the disk at all. The tier is bounded by a byte budget with
// LRU eviction and is invalidated together with the underlying cache
// entry: quarantine and scrub drop arenas too, so a healed entry
// re-earns its arena from clean re-simulation.
package disptrace

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"vmopt/internal/cpu"
)

// ErrNotIndexed reports a trace without the v3 instruction index;
// only indexed traces compile (legacy traces keep the decode path).
var ErrNotIndexed = errors.New("disptrace: trace carries no instruction index (format < v3)")

// opBytes is the in-memory footprint of one decoded event.
const opBytes = int64(unsafe.Sizeof(cpu.Op{}))

// Arena is the compiled form of one trace: the entire decoded op
// stream in a single contiguous slice, immutable after build. Batches
// are handed out as subslices — by reference, never copied, never
// pooled — so a compiled replay allocates nothing and decodes nothing.
type Arena struct {
	// ops is the full stream, segments back to back, delta decoding
	// already resolved.
	ops []cpu.Op
	// segEnds[i] is the op offset after segment i — the batch
	// boundaries ReplayEach and NextBatch serve. Strictly increasing
	// (Compile refuses empty segments).
	segEnds []int
	// instEnds[k] is the op offset after VM instruction k, the flat
	// mirror of the v3 step tables: instruction k's events are
	// ops[instEnds[k-1]:instEnds[k]] (firstOp:instEnds[0] for k = 0).
	// A step that spans a segment seal is one contiguous range here.
	instEnds []int
	// firstOp is the op count preceding the first VM instruction (the
	// stream prelude; NextBatch delivers it, Next skips it).
	firstOp int
	// bytes is the arena's accounted memory footprint.
	bytes int64
}

// Ops reports the arena's total decoded event count.
func (a *Arena) Ops() int { return len(a.ops) }

// Insts reports the arena's indexed VM instruction count.
func (a *Arena) Insts() int { return len(a.instEnds) }

// Bytes reports the arena's accounted memory footprint.
func (a *Arena) Bytes() int64 { return a.bytes }

// instStart is the op offset where instruction k begins.
func (a *Arena) instStart(k int) int {
	if k == 0 {
		return a.firstOp
	}
	return a.instEnds[k-1]
}

// segStart is the op offset where segment i begins.
func (a *Arena) segStart(i int) int {
	if i == 0 {
		return 0
	}
	return a.segEnds[i-1]
}

// replay applies the whole arena to every sim: the single-sim serving
// path is one Apply call over the flat stream (no goroutines, no
// allocation); multi-sim replays run one applier goroutine per sim,
// each walking the same immutable slice independently — no batch
// hand-off, no refcounts, no cross-sim synchronization at all.
func (a *Arena) replay(sims []*cpu.Sim) {
	if len(sims) == 1 {
		sims[0].Apply(a.ops)
		return
	}
	var wg sync.WaitGroup
	for _, sim := range sims {
		wg.Add(1)
		go func(sim *cpu.Sim) {
			defer wg.Done()
			sim.Apply(a.ops)
		}(sim)
	}
	wg.Wait()
}

// Compiled returns the arena attached to the trace, or nil. Replay and
// cursors consult it and take the zero-decode path when present.
func (t *Trace) Compiled() *Arena { return t.arena }

// Attach hands a previously built arena to the trace; replays and
// cursors on t serve from it. The arena must have been compiled from
// an identical trace (same content address).
func (t *Trace) Attach(a *Arena) { t.arena = a }

// Compile builds the trace's arena — the one full decode the compiled
// tier ever pays for this trace — attaches it, and returns it. Only v3
// (instruction-indexed) traces compile; the builder cross-checks the
// per-instruction index it derives from the step tables against the
// header totals, so a trace that compiles replays exactly like it
// decodes. Compiling an already-compiled trace returns the existing
// arena.
func (t *Trace) Compile() (*Arena, error) {
	if t.arena != nil {
		return t.arena, nil
	}
	if !t.Indexed() {
		return nil, ErrNotIndexed
	}
	a := &Arena{
		segEnds:  make([]int, 0, len(t.Segs)),
		instEnds: make([]int, 0, t.Header.VMInstructions),
	}
	var scratch []byte
	var segOps []cpu.Op
	var ends []int
	for i := range t.Segs {
		s := &t.Segs[i]
		if s.Records == 0 {
			// The writer never seals an empty segment; refusing them
			// keeps segEnds strictly increasing (the cursor's
			// position mapping relies on it).
			return nil, fmt.Errorf("disptrace: cannot compile trace with empty segment %d", i)
		}
		base := len(a.ops)
		ends = ends[:0]
		var err error
		// Decode into a per-segment scratch batch and append that to
		// the arena: decodeOps reserves worst-case headroom in its
		// destination, and letting it grow the arena directly would
		// recopy everything decoded so far on every segment.
		segOps, scratch, err = s.decodeOps(segOps[:0], scratch, &ends)
		if err != nil {
			return nil, err
		}
		a.ops = append(a.ops, segOps...)
		endAt := func(rec int) int {
			if rec == 0 {
				return base
			}
			return base + ends[rec-1]
		}
		prefix, exc, err := parseStepTable(s.Steps, s.VMInsts, s.Records)
		if err != nil {
			return nil, err
		}
		if prefix > 0 {
			// Prefix records continue the previous segment's last
			// step (or the stream prelude): in the flat layout they
			// simply extend that instruction's range.
			if len(a.instEnds) > 0 {
				a.instEnds[len(a.instEnds)-1] = endAt(prefix)
			} else {
				a.firstOp = endAt(prefix)
			}
		}
		rec, ei := prefix, 0
		for k := 0; k < s.VMInsts; k++ {
			n := 1
			if ei < len(exc) && exc[ei].idx == k {
				n = exc[ei].recs
				ei++
			}
			rec += n
			a.instEnds = append(a.instEnds, endAt(rec))
		}
		a.segEnds = append(a.segEnds, len(a.ops))
	}
	if uint64(len(a.instEnds)) != t.Header.VMInstructions {
		return nil, fmt.Errorf("disptrace: compiled index has %d instructions, header declares %d",
			len(a.instEnds), t.Header.VMInstructions)
	}
	// The arena is long-lived; trim decodeOps' append headroom so the
	// accounted footprint is the real one.
	if cap(a.ops) > len(a.ops) {
		a.ops = append(make([]cpu.Op, 0, len(a.ops)), a.ops...)
	}
	const intBytes = int64(unsafe.Sizeof(int(0)))
	a.bytes = int64(len(a.ops))*opBytes +
		int64(len(a.instEnds)+len(a.segEnds))*intBytes
	t.arena = a
	return a, nil
}

// storedBytes approximates the encoded trace's resident footprint (the
// tier memoizes the decoded container alongside the arena, so compiled
// hits skip the disk entirely).
func (t *Trace) storedBytes() int64 {
	var n int64
	for i := range t.Segs {
		n += int64(len(t.Segs[i].Data) + len(t.Segs[i].Steps))
	}
	return n
}

// DefaultCompileAfter is the load count on which a trace compiles when
// the tier's threshold is left zero: the third load of the same trace
// marks it hot.
const DefaultCompileAfter = 3

// maxTierEntries bounds the tier's entry count (compiled entries plus
// the small per-ID hotness counters); beyond it the least recently
// used entry goes, whatever its state, so unbounded key churn cannot
// grow the counter map.
const maxTierEntries = 8192

// CompiledTier is the in-memory arena tier of the trace cache: per-ID
// hotness counting, compile-on-Nth-load, and a byte-budget LRU over
// the built arenas. All methods are safe for concurrent use; arena
// builds run outside the lock (a `building` mark keeps racing loads
// from building the same arena twice — the loser serves the decode
// path once more).
type CompiledTier struct {
	budget int64
	after  int

	mu      sync.Mutex
	entries map[string]*compiledEntry
	// LRU list: head is most recently used, tail the eviction victim.
	head, tail *compiledEntry
	bytes      int64

	builds, hits, evictions, buildErrors atomic.Uint64
}

// compiledEntry is one tier entry: a hotness counter until the
// threshold, the memoized compiled trace after it.
type compiledEntry struct {
	id    string
	t     *Trace // non-nil once compiled (arena attached)
	bytes int64
	loads int
	// building marks an in-flight arena build; failed marks a build
	// error or over-budget arena so the tier never retries a trace it
	// cannot hold.
	building, failed bool
	prev, next       *compiledEntry
}

// NewCompiledTier builds a tier with the given byte budget and
// compile-after threshold. budget <= 0 disables the tier (returns
// nil; every method on a nil tier is a no-op); after <= 0 means
// DefaultCompileAfter, and after == 1 compiles on first load.
func NewCompiledTier(budget int64, after int) *CompiledTier {
	if budget <= 0 {
		return nil
	}
	if after <= 0 {
		after = DefaultCompileAfter
	}
	return &CompiledTier{
		budget:  budget,
		after:   after,
		entries: make(map[string]*compiledEntry),
	}
}

// CompiledStats snapshots the tier's activity, reported under the
// cache's /v1/stats block and the vmserved_compiled_* metrics.
type CompiledStats struct {
	// Builds counts arenas built; Hits counts loads served straight
	// from a memoized arena (no disk read, no decode); Evictions
	// counts entries displaced by the byte budget or entry bound;
	// BuildErrors counts traces that failed to compile or whose arena
	// alone exceeds the budget (never retried).
	Builds      uint64 `json:"builds"`
	Hits        uint64 `json:"hits"`
	Evictions   uint64 `json:"evictions"`
	BuildErrors uint64 `json:"build_errors,omitempty"`
	// Arenas is the resident compiled-trace count; Bytes their
	// accounted footprint against Budget.
	Arenas int   `json:"arenas"`
	Bytes  int64 `json:"bytes"`
	Budget int64 `json:"budget"`
}

// Stats snapshots the tier's counters; a nil tier reports zeroes.
func (ct *CompiledTier) Stats() CompiledStats {
	if ct == nil {
		return CompiledStats{}
	}
	ct.mu.Lock()
	arenas := 0
	for _, e := range ct.entries {
		if e.t != nil {
			arenas++
		}
	}
	bytes := ct.bytes
	ct.mu.Unlock()
	return CompiledStats{
		Builds:      ct.builds.Load(),
		Hits:        ct.hits.Load(),
		Evictions:   ct.evictions.Load(),
		BuildErrors: ct.buildErrors.Load(),
		Arenas:      arenas,
		Bytes:       bytes,
		Budget:      ct.budget,
	}
}

// moveFront makes e the most recently used entry. Callers hold mu.
func (ct *CompiledTier) moveFront(e *compiledEntry) {
	if ct.head == e {
		return
	}
	ct.unlink(e)
	e.next = ct.head
	if ct.head != nil {
		ct.head.prev = e
	}
	ct.head = e
	if ct.tail == nil {
		ct.tail = e
	}
}

// unlink removes e from the LRU list. Callers hold mu.
func (ct *CompiledTier) unlink(e *compiledEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if ct.head == e {
		ct.head = e.next
	}
	if ct.tail == e {
		ct.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// drop removes e entirely. Callers hold mu.
func (ct *CompiledTier) drop(e *compiledEntry) {
	ct.unlink(e)
	delete(ct.entries, e.id)
	ct.bytes -= e.bytes
}

// evictOver displaces least-recently-used entries until the tier fits
// its bounds again, sparing e (the entry just inserted or refreshed).
// Callers hold mu.
func (ct *CompiledTier) evictOver(spare *compiledEntry) {
	for ct.tail != nil && (ct.bytes > ct.budget || len(ct.entries) > maxTierEntries) {
		victim := ct.tail
		if victim == spare {
			if victim.prev == nil {
				return
			}
			victim = victim.prev
		}
		ct.drop(victim)
		ct.evictions.Add(1)
	}
}

// Get returns the memoized compiled trace for id, or nil. A hit is the
// tier's whole point: the caller serves the returned trace without
// touching the disk, and its attached arena replays with zero decode.
func (ct *CompiledTier) Get(id string) *Trace {
	if ct == nil {
		return nil
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	e := ct.entries[id]
	if e == nil || e.t == nil {
		return nil
	}
	ct.moveFront(e)
	ct.hits.Add(1)
	return e.t
}

// Offer notes one disk load of id and, when the load crosses the
// compile-after threshold, builds t's arena and memoizes t. The build
// runs outside the tier lock; a concurrent load of the same id during
// the build simply serves the decode path once more. Offer never makes
// a load worse: build failures are counted, marked, and never retried,
// and the offered trace is served either way.
func (ct *CompiledTier) Offer(id string, t *Trace) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	e := ct.entries[id]
	if e == nil {
		e = &compiledEntry{id: id}
		ct.entries[id] = e
	}
	ct.moveFront(e)
	e.loads++
	if e.t != nil || e.building || e.failed || e.loads < ct.after || !t.Indexed() {
		ct.evictOver(e)
		ct.mu.Unlock()
		return
	}
	e.building = true
	ct.mu.Unlock()

	a, err := t.Compile()
	bytes := int64(0)
	if err == nil {
		bytes = a.Bytes() + t.storedBytes()
	}

	ct.mu.Lock()
	defer ct.mu.Unlock()
	e.building = false
	if ct.entries[id] != e {
		// Invalidated (or evicted and re-created) while building:
		// discard the result rather than resurrecting a dropped entry.
		return
	}
	if err != nil || bytes > ct.budget {
		e.failed = true
		ct.buildErrors.Add(1)
		return
	}
	e.t, e.bytes = t, bytes
	ct.bytes += bytes
	ct.builds.Add(1)
	ct.moveFront(e)
	ct.evictOver(e)
}

// Invalidate drops id's entry — arena, memoized trace and hotness
// count alike. The cache calls it whenever the underlying entry stops
// being servable (quarantine, scrub), so a healed entry starts cold
// and re-earns its arena from clean bytes.
func (ct *CompiledTier) Invalidate(id string) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if e := ct.entries[id]; e != nil {
		ct.drop(e)
	}
}
