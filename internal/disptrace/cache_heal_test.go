package disptrace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/faults"
	"vmopt/internal/harness"
)

func healKey() disptrace.Key {
	return disptrace.Key{Workload: "gray", Lang: "forth", Variant: "plain",
		Technique: "plain", Scale: 5, ScaleDiv: 40, MaxSteps: 100, ISAHash: 42}
}

func healRecorder(k disptrace.Key, calls *int) func() (*disptrace.Trace, error) {
	return func() (*disptrace.Trace, error) {
		*calls++
		w := disptrace.NewWriter(k.Header())
		w.RecordVMInst()
		w.RecordDispatch(0x40, 1, 0x80)
		w.RecordWork(3)
		return w.Trace(), nil
	}
}

func quarantineFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, disptrace.QuarantineDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

// TestCacheQuarantinesCorruptEntry: a corrupt cache file is moved to
// the quarantine sidecar (not deleted), the request heals by
// re-recording, and the healed file is byte-identical to the
// original.
func TestCacheQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	k := healKey()
	calls := 0
	record := healRecorder(k, &calls)

	if _, recorded, err := c.GetOrRecord(k, record); err != nil || !recorded {
		t.Fatalf("first call: err=%v recorded=%v", err, recorded)
	}
	clean, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit on disk — the segment CRC must catch it.
	bad := append([]byte(nil), clean...)
	bad[len(bad)-1] ^= 0x04
	if err := os.WriteFile(c.Path(k), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, recorded, err := c.GetOrRecord(k, record); err != nil || !recorded || calls != 2 {
		t.Fatalf("corrupt entry should re-record: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	healed, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, clean) {
		t.Fatal("re-recorded cache file is not byte-identical to the original")
	}
	if got := quarantineFiles(t, dir); len(got) != 1 || got[0] != k.ID()+".vmdt" {
		t.Fatalf("quarantine dir = %v, want exactly the corrupt file", got)
	}
	qb, err := os.ReadFile(filepath.Join(dir, disptrace.QuarantineDir, k.ID()+".vmdt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(qb, bad) {
		t.Fatal("quarantined bytes are not the corrupt original")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", c.Quarantined())
	}
}

// TestCacheCorruptEntryMidReplay: the full serve-shaped sequence — a
// trace is recorded and replayed, its cache entry is then corrupted,
// and the next replay of the same key falls back to re-simulation,
// re-records, and produces byte-identical counters.
func TestCacheCorruptEntryMidReplay(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	k := s.TraceKey(pair.w, pair.v)
	record := func() (*disptrace.Trace, error) {
		tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
		return tr, err
	}

	tr1, _, err := c.GetOrRecord(k, record)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := disptrace.ReplayMachine(tr1, cpu.Pentium4Northwood, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the entry on disk mid-"session".
	clean, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path(k), clean[:len(clean)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	tr2, recorded, err := c.GetOrRecord(k, record)
	if err != nil || !recorded {
		t.Fatalf("truncated entry should re-simulate: err=%v recorded=%v", err, recorded)
	}
	r2, err := disptrace.ReplayMachine(tr2, cpu.Pentium4Northwood, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("replay after fallback diverged:\n  before %+v\n  after  %+v", r1, r2)
	}
	healed, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, clean) {
		t.Fatal("re-recorded trace file is not byte-identical to the original")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestCacheReadErrorFallsBackToRecord: an injected read failure is
// absorbed by re-simulating instead of failing the request, and the
// valid on-disk entry survives (no quarantine for transient I/O).
func TestCacheReadErrorFallsBackToRecord(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	k := healKey()
	calls := 0
	record := healRecorder(k, &calls)
	if _, _, err := c.GetOrRecord(k, record); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}

	spec, err := faults.ParseSpec([]byte(`{"faults":[{"site":"cache.read","mode":"error","nth":1,"limit":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = faults.New(spec)

	if _, recorded, err := c.GetOrRecord(k, record); err != nil || !recorded || calls != 2 {
		t.Fatalf("read error should fall back to record: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	if st := c.Stats(); st.ReadErrors != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 1 read error, 0 quarantined", st)
	}
	// The fault is spent (limit 1): the next call loads the re-stored
	// entry, which is byte-identical to the original.
	if _, recorded, err := c.GetOrRecord(k, record); err != nil || recorded || calls != 2 {
		t.Fatalf("after fault spent: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	after, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatal("entry changed across read-error fallback")
	}
}

// TestCacheSaveErrorStillServes: an injected write failure loses the
// cache entry but never the response.
func TestCacheSaveErrorStillServes(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	spec, err := faults.ParseSpec([]byte(`{"faults":[{"site":"cache.write","mode":"error","nth":1,"limit":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = faults.New(spec)
	k := healKey()
	calls := 0
	record := healRecorder(k, &calls)

	tr, recorded, err := c.GetOrRecord(k, record)
	if err != nil || !recorded || tr == nil {
		t.Fatalf("save failure must still serve the trace: err=%v recorded=%v", err, recorded)
	}
	if _, statErr := os.Stat(c.Path(k)); !os.IsNotExist(statErr) {
		t.Fatalf("failed store left a file behind: %v", statErr)
	}
	if st := c.Stats(); st.SaveErrors != 1 {
		t.Fatalf("Stats().SaveErrors = %d, want 1", st.SaveErrors)
	}
	// Next request re-records (the entry was lost) and stores cleanly.
	if _, recorded, err := c.GetOrRecord(k, record); err != nil || !recorded || calls != 2 {
		t.Fatalf("re-record after lost store: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	if _, err := os.Stat(c.Path(k)); err != nil {
		t.Fatalf("clean store missing: %v", err)
	}
}

// TestCacheWriteCorruptionHealsOnNextRead: a bit-flip injected on the
// write path lands on disk, fails its CRC at the next load, is
// quarantined, and the key heals by re-recording byte-identically.
func TestCacheWriteCorruptionHealsOnNextRead(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	spec, err := faults.ParseSpec([]byte(`{"faults":[{"site":"cache.write","mode":"corrupt","nth":1,"limit":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c.Faults = faults.New(spec)
	k := healKey()
	calls := 0
	record := healRecorder(k, &calls)

	if _, _, err := c.GetOrRecord(k, record); err != nil {
		t.Fatal(err)
	}
	// The stored bytes are damaged; a direct Load must reject them.
	if _, err := disptrace.Load(c.Path(k)); err == nil {
		t.Fatal("injected write corruption did not damage the stored file")
	}

	tr, recorded, err := c.GetOrRecord(k, record)
	if err != nil || !recorded || tr == nil || calls != 2 {
		t.Fatalf("corrupt stored entry should heal: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}
	if _, err := disptrace.Load(c.Path(k)); err != nil {
		t.Fatalf("healed entry does not decode: %v", err)
	}
}

// TestCacheScrub: startup verification quarantines undecodable and
// misaddressed files, keeps valid ones, and ignores non-trace files.
func TestCacheScrub(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	good := healKey()
	calls := 0
	if _, _, err := c.GetOrRecord(good, healRecorder(good, &calls)); err != nil {
		t.Fatal(err)
	}

	// A corrupt entry under a valid content address.
	bad := good
	bad.Scale = 99
	cleanBytes, err := os.ReadFile(c.Path(good))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), cleanBytes...)
	damaged[len(damaged)-2] ^= 0xFF
	if err := os.WriteFile(c.Path(bad), damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	// A decodable trace stored under the wrong content address.
	wrong := good
	wrong.MaxSteps = 7777
	if err := os.WriteFile(c.Path(wrong), cleanBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	// Junk that is not a trace file at all: ignored, not scrubbed.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 3 || rep.Quarantined != 2 {
		t.Fatalf("scrub report %+v, want checked=3 quarantined=2", rep)
	}
	if got := quarantineFiles(t, dir); len(got) != 2 {
		t.Fatalf("quarantine dir = %v, want 2 files", got)
	}
	if _, err := os.Stat(c.Path(good)); err != nil {
		t.Fatalf("scrub touched the valid entry: %v", err)
	}
	if c.Quarantined() != 2 {
		t.Fatalf("Quarantined() = %d, want 2", c.Quarantined())
	}

	// A second scrub over the now-clean directory finds nothing.
	rep, err = c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 || rep.Quarantined != 0 {
		t.Fatalf("second scrub report %+v, want checked=1 quarantined=0", rep)
	}
}

// TestCacheListSkipsQuarantine: the sidecar directory never shows up
// in the cache listing.
func TestCacheListSkipsQuarantine(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	k := healKey()
	calls := 0
	if _, _, err := c.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
		t.Fatal(err)
	}
	// Corrupt and reload to force a quarantine.
	if err := os.WriteFile(c.Path(k), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
		t.Fatal(err)
	}
	entries, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != k.ID() {
		t.Fatalf("List() = %+v, want exactly the healed entry", entries)
	}
}
