package disptrace_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vmopt/internal/disptrace"
)

// recordsFromBytes derives a bounded record stream from raw fuzz
// input: each record consumes a kind byte plus up to three 8-byte
// values, so the fuzzer steers kinds, magnitudes and deltas freely.
func recordsFromBytes(data []byte) []disptrace.Record {
	const maxRecords = 1 << 12
	var recs []disptrace.Record
	u64 := func() uint64 {
		if len(data) == 0 {
			return 0
		}
		var buf [8]byte
		n := copy(buf[:], data)
		data = data[n:]
		return binary.LittleEndian.Uint64(buf[:])
	}
	for len(data) > 0 && len(recs) < maxRecords {
		kind := data[0] % 3
		data = data[1:]
		switch disptrace.Kind(kind) {
		case disptrace.KWork:
			// RecordWork takes an int and clamps negatives to 0;
			// stay in the non-negative int range so the round trip
			// is exact.
			recs = append(recs, disptrace.Record{Kind: disptrace.KWork, A: u64() >> 1})
		case disptrace.KFetch:
			recs = append(recs, disptrace.Record{Kind: disptrace.KFetch, A: u64(), B: u64() >> 1})
		default:
			recs = append(recs, disptrace.Record{Kind: disptrace.KDispatch, A: u64(), B: u64(), C: u64()})
		}
	}
	return recs
}

// FuzzTraceRoundTrip checks the codec guarantees the subsystem rests
// on: (1) any record stream encodes and decodes back bit-exactly
// through the compressed v2 form, (2) arbitrary bytes — corrupt
// headers and flate payloads included — fed to Decode produce an
// error or a valid trace, never a panic, and (3) arbitrary bytes
// interpreted as a compressed segment payload error cleanly out of
// both segment decoders.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(bytes.Repeat([]byte{2, 0xff}, 64)) // dispatch-heavy
	// Valid encoded traces as seeds for the raw-decode arm: the
	// compressed v2 form and the legacy v1 form.
	{
		w := disptrace.NewWriter(disptrace.Header{Workload: "seed", Lang: "forth"})
		w.RecordWork(7)
		w.RecordFetch(0x2000, 16)
		w.RecordDispatch(0x2040, 3, 0x2100)
		f.Add(w.Trace().Encode())
		f.Add(disptrace.EncodeV1(w.Trace()))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arm 1: raw bytes into Decode — must never panic; on
		// success the decoded trace must re-encode decodable.
		if tr, err := disptrace.Decode(data); err == nil {
			if _, err := tr.Records(); err != nil {
				// A checksum-valid trace with undecodable segments is
				// possible for fuzz-built files; it must error
				// cleanly, which it just did.
				_ = err
			}
			if _, err := disptrace.Decode(tr.Encode()); err != nil {
				t.Fatalf("re-encoding a decoded trace broke it: %v", err)
			}
		}

		// Arm 2: raw bytes as a flate segment payload — truncated or
		// garbled DEFLATE streams and lying raw sizes must error, not
		// panic, from both segment decoders.
		for _, rawBytes := range []int{0, 1, 64, 1 << 16} {
			seg := disptrace.Segment{
				Data:     data,
				Records:  len(data)/4 + 1,
				Codec:    disptrace.CodecFlate,
				RawBytes: rawBytes,
			}
			if recs, err := seg.Decode(nil); err == nil {
				_ = recs // a fuzz-built payload that inflates and decodes is fine
			}
			if ops, err := seg.DecodeOps(nil); err == nil {
				_ = ops
			}
		}

		// Arm 3: structured round trip — bit-exact.
		recs := recordsFromBytes(data)
		w := disptrace.NewWriter(disptrace.Header{Workload: "fuzz", Lang: "forth", Scale: 1})
		for _, r := range recs {
			switch r.Kind {
			case disptrace.KWork:
				w.RecordWork(int(r.A))
			case disptrace.KFetch:
				w.RecordFetch(r.A, int(r.B))
			case disptrace.KDispatch:
				w.RecordDispatch(r.A, r.B, r.C)
			}
		}
		tr := w.Trace()
		if err := tr.Verify(); err != nil {
			t.Fatalf("writer produced inconsistent totals: %v", err)
		}
		back, err := disptrace.Decode(tr.Encode())
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if back.Header != tr.Header {
			t.Fatalf("header round trip: got %+v want %+v", back.Header, tr.Header)
		}
		got, err := back.Records()
		if err != nil {
			t.Fatalf("decoding records: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("got %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
			}
		}
	})
}
