package disptrace_test

import (
	"os"
	"slices"
	"testing"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
)

// compiledPair records a workload trace, round-trips it through the
// wire format (the exact form the cache serves), and returns two
// independent decodes: one left on the decode path and one compiled.
func compiledPair(t *testing.T, w interface{ Encode() []byte }) (dec, comp *disptrace.Trace) {
	t.Helper()
	wire := w.Encode()
	var err error
	if dec, err = disptrace.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if comp, err = disptrace.Decode(wire); err != nil {
		t.Fatal(err)
	}
	a, err := comp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if comp.Compiled() != a {
		t.Fatal("Compile did not attach the arena")
	}
	if uint64(a.Insts()) != comp.Header.VMInstructions {
		t.Fatalf("arena indexes %d instructions, header declares %d", a.Insts(), comp.Header.VMInstructions)
	}
	if a.Ops() == 0 || a.Bytes() <= 0 {
		t.Fatalf("degenerate arena: %d ops, %d bytes", a.Ops(), a.Bytes())
	}
	return dec, comp
}

// TestCompiledReplayEquivalence is the compiled tier's tentpole
// guarantee: replaying a compiled trace yields counters byte-identical
// to the decode path — float cycle order included — on every machine,
// for single-sim and broadcast replays alike.
func TestCompiledReplayEquivalence(t *testing.T) {
	machines := benchMachines()
	for _, pair := range tracePairs(t) {
		s := harness.NewTestSuite()
		s.ScaleDiv = 40
		tr, _, err := s.RecordTrace(pair.w, pair.v, machines[0])
		if err != nil {
			t.Fatalf("%s/%s: record: %v", pair.w.Name, pair.v.Name, err)
		}
		dec, comp := compiledPair(t, tr)
		for _, m := range machines {
			want, err := disptrace.ReplayMachine(dec, m, 1)
			if err != nil {
				t.Fatalf("%s/%s on %s: decode replay: %v", pair.w.Name, pair.v.Name, m.Name, err)
			}
			got, err := disptrace.ReplayMachine(comp, m, 1)
			if err != nil {
				t.Fatalf("%s/%s on %s: compiled replay: %v", pair.w.Name, pair.v.Name, m.Name, err)
			}
			if got != want {
				t.Errorf("%s/%s on %s: compiled replay diverged:\n  decode   %+v\n  compiled %+v",
					pair.w.Name, pair.v.Name, m.Name, want, got)
			}
		}
		// Broadcast replay: one compiled pass into N sims must match N
		// decode-path replays.
		sims := make([]*cpu.Sim, len(machines))
		for i, m := range machines {
			sims[i] = cpu.NewSim(m)
		}
		if err := disptrace.ReplayEach(comp, sims); err != nil {
			t.Fatalf("%s/%s: compiled ReplayEach: %v", pair.w.Name, pair.v.Name, err)
		}
		for i, m := range machines {
			want, err := disptrace.ReplayMachine(dec, m, 1)
			if err != nil {
				t.Fatal(err)
			}
			if sims[i].C != want {
				t.Errorf("%s/%s on %s: compiled broadcast diverged:\n  decode   %+v\n  compiled %+v",
					pair.w.Name, pair.v.Name, m.Name, want, sims[i].C)
			}
		}
	}
}

// TestCompiledCursorEquivalence drives a compiled cursor and a
// decode-path cursor over the same trace through every access pattern
// — full step walks, batch walks, seeks in both directions, and mixed
// step/batch iteration — and requires identical streams.
func TestCompiledCursorEquivalence(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	s.ScaleDiv = 40
	tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	dec, comp := compiledPair(t, tr)

	steps := func(c *disptrace.Cursor, n int) (idx []uint64, ops [][]cpu.Op) {
		for n != 0 {
			st, ok := c.Next()
			if !ok {
				break
			}
			idx = append(idx, st.Index)
			ops = append(ops, append([]cpu.Op(nil), st.Ops...))
			n--
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		return idx, ops
	}
	compare := func(what string, wi, gi []uint64, wo, go_ [][]cpu.Op) {
		t.Helper()
		if !slices.Equal(wi, gi) {
			t.Fatalf("%s: instruction indexes diverged: decode %d steps, compiled %d steps", what, len(wi), len(gi))
		}
		for i := range wo {
			if !slices.Equal(wo[i], go_[i]) {
				t.Fatalf("%s: step %d ops diverged:\n  decode   %v\n  compiled %v", what, wi[i], wo[i], go_[i])
			}
		}
	}

	// Full step walk.
	wi, wo := steps(disptrace.NewCursor(dec), -1)
	gi, g := steps(disptrace.NewCursor(comp), -1)
	if uint64(len(wi)) != dec.Header.VMInstructions {
		t.Fatalf("decode walk saw %d steps, header declares %d", len(wi), dec.Header.VMInstructions)
	}
	compare("full walk", wi, gi, wo, g)

	// Full batch walk: same batches at the same boundaries.
	wc, gc := disptrace.NewCursor(dec), disptrace.NewCursor(comp)
	for batch := 0; ; batch++ {
		wb, wok := wc.NextBatch(nil)
		gb, gok := gc.NextBatch(nil)
		if wok != gok {
			t.Fatalf("batch %d: decode ok=%v, compiled ok=%v", batch, wok, gok)
		}
		if !wok {
			break
		}
		if !slices.Equal(wb, gb) {
			t.Fatalf("batch %d diverged: decode %d ops, compiled %d ops", batch, len(wb), len(gb))
		}
	}
	if wc.Err() != nil || gc.Err() != nil {
		t.Fatal(wc.Err(), gc.Err())
	}

	// Seeks: forward, backward, boundaries, and past-end, each followed
	// by a short step walk.
	n := dec.Header.VMInstructions
	for _, inst := range []uint64{0, 1, n / 3, n / 2, n - 1, n/3 + 1, 0, n - 1} {
		wc, gc := disptrace.NewCursor(dec), disptrace.NewCursor(comp)
		if err := wc.Seek(inst); err != nil {
			t.Fatal(err)
		}
		if err := gc.Seek(inst); err != nil {
			t.Fatal(err)
		}
		wi, wo := steps(wc, 8)
		gi, g := steps(gc, 8)
		compare("seek", wi, gi, wo, g)
	}
	wc, gc = disptrace.NewCursor(dec), disptrace.NewCursor(comp)
	if err := wc.Seek(n + 5); err != nil {
		t.Fatal(err)
	}
	if err := gc.Seek(n + 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := wc.Next(); ok {
		t.Fatal("decode cursor stepped past the end")
	}
	if _, ok := gc.Next(); ok {
		t.Fatal("compiled cursor stepped past the end")
	}

	// Mixed pattern: steps, then the rest of the segment as a batch,
	// repeated — the diff tool's shape.
	wc, gc = disptrace.NewCursor(dec), disptrace.NewCursor(comp)
	for round := 0; ; round++ {
		wi, wo := steps(wc, 3)
		gi, g := steps(gc, 3)
		compare("mixed steps", wi, gi, wo, g)
		wb, wok := wc.NextBatch(nil)
		gb, gok := gc.NextBatch(nil)
		if wok != gok {
			t.Fatalf("mixed round %d: decode ok=%v, compiled ok=%v", round, wok, gok)
		}
		if !wok {
			break
		}
		if !slices.Equal(wb, gb) {
			t.Fatalf("mixed round %d batch diverged: decode %d ops, compiled %d ops", round, len(wb), len(gb))
		}
	}

	// A seek must also land correctly after batch iteration advanced
	// the cursor.
	wc, gc = disptrace.NewCursor(dec), disptrace.NewCursor(comp)
	wc.NextBatch(nil)
	gc.NextBatch(nil)
	if err := wc.Seek(n / 2); err != nil {
		t.Fatal(err)
	}
	if err := gc.Seek(n / 2); err != nil {
		t.Fatal(err)
	}
	wi, wo = steps(wc, 5)
	gi, g = steps(gc, 5)
	compare("seek after batch", wi, gi, wo, g)
}

// TestCompileRejectsLegacy: traces without the v3 instruction index
// cannot compile and stay on the decode path.
func TestCompileRejectsLegacy(t *testing.T) {
	k := healKey()
	calls := 0
	tr, err := healRecorder(k, &calls)()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := disptrace.Decode(disptrace.EncodeV1(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.Compile(); err != disptrace.ErrNotIndexed {
		t.Fatalf("compiling a v1 trace: got %v, want ErrNotIndexed", err)
	}
	if legacy.Compiled() != nil {
		t.Fatal("failed compile left an arena attached")
	}
}

// TestCompiledTierThreshold: the tier compiles on the Nth disk load —
// recording does not count — and serves every later load from memory,
// even after the backing file disappears.
func TestCompiledTierThreshold(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	c.Compiled = disptrace.NewCompiledTier(64<<20, 2)
	k := healKey()
	calls := 0
	record := healRecorder(k, &calls)

	if _, recorded, err := c.GetOrRecord(k, record); err != nil || !recorded {
		t.Fatalf("record: err=%v recorded=%v", err, recorded)
	}
	if st := c.CompiledStats(); st.Builds != 0 || st.Arenas != 0 {
		t.Fatalf("recording alone must not compile: %+v", st)
	}
	if _, recorded, err := c.GetOrRecord(k, record); err != nil || recorded {
		t.Fatalf("load 1: err=%v recorded=%v", err, recorded)
	}
	if st := c.CompiledStats(); st.Builds != 0 {
		t.Fatalf("compiled below threshold: %+v", st)
	}
	tr, recorded, err := c.GetOrRecord(k, record)
	if err != nil || recorded {
		t.Fatalf("load 2: err=%v recorded=%v", err, recorded)
	}
	st := c.CompiledStats()
	if st.Builds != 1 || st.Arenas != 1 || st.Bytes <= 0 {
		t.Fatalf("load 2 should compile: %+v", st)
	}
	if tr.Compiled() == nil {
		t.Fatal("the threshold-crossing load itself should serve the arena")
	}

	// From here the tier serves without the disk: remove the file and
	// the trace still loads, byte-identical.
	want, err := disptrace.ReplayMachine(tr, cpu.Celeron800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(c.Path(k)); err != nil {
		t.Fatal(err)
	}
	tr2, recorded, err := c.GetOrRecord(k, record)
	if err != nil || recorded {
		t.Fatalf("tier hit after file removal: err=%v recorded=%v", err, recorded)
	}
	if st := c.CompiledStats(); st.Hits == 0 {
		t.Fatalf("no tier hit recorded: %+v", st)
	}
	if calls != 1 {
		t.Fatalf("recorder ran %d times, want 1", calls)
	}
	got, err := disptrace.ReplayMachine(tr2, cpu.Celeron800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tier-served replay diverged: %+v vs %+v", got, want)
	}
}

// TestCompiledTierEviction: the byte budget is a hard bound — the
// least recently used arena is displaced when a new build would
// overflow it, and an arena that alone exceeds the budget is refused
// (once; the tier never retries a trace it cannot hold).
func TestCompiledTierEviction(t *testing.T) {
	k1 := healKey()
	k2 := healKey()
	k2.Scale = k1.Scale + 1
	calls := 0

	// First pass with an effectively unlimited budget to learn the two
	// entries' accounted sizes.
	probe := disptrace.NewCache(t.TempDir())
	probe.Compiled = disptrace.NewCompiledTier(1<<30, 1)
	for _, k := range []disptrace.Key{k1, k2} {
		if _, _, err := probe.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := probe.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	both := probe.CompiledStats()
	if both.Arenas != 2 || both.Bytes <= 0 {
		t.Fatalf("probe tier: %+v", both)
	}

	// A budget one byte short of both forces an eviction on the second
	// build.
	c := disptrace.NewCache(t.TempDir())
	c.Compiled = disptrace.NewCompiledTier(both.Bytes-1, 1)
	for _, k := range []disptrace.Key{k1, k2} {
		if _, _, err := c.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.CompiledStats()
	if st.Builds != 2 || st.Evictions != 1 || st.Arenas != 1 {
		t.Fatalf("eviction tier: %+v", st)
	}
	if c.Compiled.Get(k1.ID()) != nil {
		t.Fatal("LRU victim still resident")
	}
	if c.Compiled.Get(k2.ID()) == nil {
		t.Fatal("most recent arena evicted instead of the LRU one")
	}

	// An arena bigger than the whole budget is refused and marked so
	// later loads do not retry the build.
	tiny := disptrace.NewCache(t.TempDir())
	tiny.Compiled = disptrace.NewCompiledTier(1, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := tiny.GetOrRecord(k1, healRecorder(k1, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	st = tiny.CompiledStats()
	if st.Builds != 0 || st.Arenas != 0 || st.BuildErrors != 1 {
		t.Fatalf("over-budget arena: %+v", st)
	}
}

// TestCompiledInvalidation is the heal story: corrupting a cached
// trace and scrubbing drops its arena with the quarantined file, and
// the next request rebuilds both from a clean re-simulation.
func TestCompiledInvalidation(t *testing.T) {
	dir := t.TempDir()
	c := disptrace.NewCache(dir)
	c.Compiled = disptrace.NewCompiledTier(64<<20, 1)
	k := healKey()
	calls := 0
	record := healRecorder(k, &calls)

	if _, recorded, err := c.GetOrRecord(k, record); err != nil || !recorded {
		t.Fatalf("record: err=%v recorded=%v", err, recorded)
	}
	tr, _, err := c.GetOrRecord(k, record)
	if err != nil {
		t.Fatal(err)
	}
	if c.CompiledStats().Arenas != 1 {
		t.Fatal("first load with after=1 should compile")
	}
	want, err := disptrace.ReplayMachine(tr, cpu.Celeron800, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the cached file. The arena would happily keep
	// serving the verified in-memory copy; scrub inspects the disk,
	// quarantines the corruption, and must take the arena down with it.
	path := c.Path(k)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("scrub quarantined %d files, want 1", rep.Quarantined)
	}
	if got := quarantineFiles(t, dir); len(got) != 1 {
		t.Fatalf("quarantine sidecar holds %v, want one file", got)
	}
	if st := c.CompiledStats(); st.Arenas != 0 {
		t.Fatalf("scrub left the arena resident: %+v", st)
	}
	if c.Compiled.Get(k.ID()) != nil {
		t.Fatal("invalidated arena still served")
	}

	// The next request starts cold: re-records cleanly, then re-earns
	// its arena, and the healed replay is byte-identical.
	tr2, recorded, err := c.GetOrRecord(k, record)
	if err != nil || !recorded {
		t.Fatalf("heal: err=%v recorded=%v", err, recorded)
	}
	if calls != 2 {
		t.Fatalf("recorder ran %d times, want 2", calls)
	}
	tr3, recorded, err := c.GetOrRecord(k, record)
	if err != nil || recorded {
		t.Fatalf("post-heal load: err=%v recorded=%v", err, recorded)
	}
	if st := c.CompiledStats(); st.Arenas != 1 || st.Builds != 2 {
		t.Fatalf("healed entry did not re-earn its arena: %+v", st)
	}
	for _, tr := range []*disptrace.Trace{tr2, tr3} {
		got, err := disptrace.ReplayMachine(tr, cpu.Celeron800, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("healed replay diverged: %+v vs %+v", got, want)
		}
	}
}

// TestCompiledReplayAllocs: serving a compiled single-sim replay
// performs zero allocations — the arena is applied by reference, with
// no decode buffers, no batch pool, and no sink bookkeeping.
func TestCompiledReplayAllocs(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	s.ScaleDiv = 40
	tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	_, comp := compiledPair(t, tr)
	sims := []*cpu.Sim{cpu.NewSim(cpu.Celeron800)}
	if err := disptrace.ReplayEach(comp, sims); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := disptrace.ReplayEach(comp, sims); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled replay allocates %.1f times per run, want 0", allocs)
	}

	// Reusing one sim via Reset across compiled replays matches a
	// fresh-sim decode replay exactly — the shape the benchmark and the
	// serving tier rely on.
	want, err := disptrace.ReplayMachine(tr, cpu.Celeron800, 1)
	if err != nil {
		t.Fatal(err)
	}
	sims[0].Reset()
	if err := disptrace.ReplayEach(comp, sims); err != nil {
		t.Fatal(err)
	}
	if sims[0].C != want {
		t.Fatalf("reset-reuse replay diverged: %+v vs %+v", sims[0].C, want)
	}
}
