// Package disptrace records and replays the dispatch stream of a
// simulated interpreter run.
//
// Every cell of the experiment grid re-executes the guest VM even
// when only the machine model differs, yet the event stream the
// interpreter core drives into cpu.Sim — straight-line work,
// instruction fetches and indirect dispatches — depends only on the
// (workload, variant, scale) triple, never on the machine (cpu.Sim
// does not feed back into execution). This package captures that
// stream once in a versioned, compact binary format and replays it
// through any btb.Predictor and icache model, reproducing the full
// counter set of a direct simulation byte for byte: integer counters
// trivially, and the float cycle counters too, because replay applies
// the exact same sequence of float additions in the exact same order.
//
// The on-disk format is:
//
//	magic "VMDT" | version u16 LE | crc32 u32 LE (of everything after)
//	header block  (length-prefixed; versioned metadata + totals)
//	segment index (per segment: codec, stored bytes, records,
//	               raw bytes, VM instructions, step-table bytes)
//	segment payloads
//	segment step tables
//
// Records are varint-encoded with per-segment delta bases for
// addresses, so each segment decodes independently and a replay can
// decode segments on parallel goroutines while applying them in
// order. Format v2 added a codec byte per segment (see Codec):
// payloads are flate-compressed on disk when that shrinks them,
// typically 3-6x for interpreter dispatch streams. Format v3 makes
// traces seekable by VM instruction: the writer seals segments at VM
// instruction boundaries, each index entry carries the number of VM
// instructions beginning in its segment, and a compact per-segment
// step table (see Segment.Steps) maps every instruction to its
// records so a Cursor can Seek to an arbitrary instruction without
// decoding the whole stream. v1 and v2 traces (no step tables) still
// decode; Cursors over them reconstruct step boundaries from the
// fused-record structure instead.
package disptrace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the trace format version this package writes. Readers
// accept it and every older version listed below.
const Version = 3

// versionV2 is the compressed-but-unindexed format: codec byte and
// raw-size field per segment, no VM-instruction counts or step
// tables.
const versionV2 = 2

// versionV1 is the legacy format: raw segment payloads only, no codec
// byte or raw-size field in the segment index.
const versionV1 = 1

// magic identifies a dispatch trace file.
var magic = [4]byte{'V', 'M', 'D', 'T'}

// DefaultSegmentRecords is the number of records per segment the
// writer targets: small enough for parallel decode granularity and
// bounded per-segment decode memory (a sealed segment expands to at
// most 5x as many logical events on decode, so this also caps the
// batch size the replay pipeline hands each applier), large enough to
// amortize per-segment and per-batch overhead. Tuned against the
// decode/apply overlap benchmarks in bench_test.go: 1<<14 keeps
// appliers fed without multi-megabyte in-flight batches; larger
// segments measured no faster, smaller ones lose compression ratio
// and add channel traffic.
const DefaultSegmentRecords = 1 << 14

// Record tag space. Tags >= tagWorkBase inline small work counts into
// the tag byte itself.
//
// The two step tags fuse the engine's fixed per-VM-instruction call
// shapes into one record each — the overwhelming majority of the
// stream. A fall-through step is Work, Fetch, Work and a dispatching
// step is Work, Fetch, Work, Fetch, Dispatch with the second fetch
// hitting the dispatch branch address; fusing them cuts the record
// count about 5x, which is what makes replay decode cheaper than
// re-running the interpreter. Decoding expands a fused record back
// into its constituent events, so the logical stream (and therefore
// the replayed float cycle ordering) is unchanged.
const (
	tagWorkExt  = 0 // Work(n), n as uvarint (n > maxInlineWork)
	tagFetch    = 1 // Fetch: varint addr delta, uvarint size
	tagDispatch = 2 // Dispatch: varint branch delta, uvarint hint, varint target delta
	// tagStepSeq is Work(w), Fetch(a, s), Work(sw):
	// uvarint w, varint addr delta, uvarint s, uvarint sw.
	tagStepSeq = 3
	// tagStepDisp is Work(w), Fetch(a, s), Work(dw), Fetch(branch, ds),
	// Dispatch(branch, hint, target): uvarint w, varint addr delta,
	// uvarint s, uvarint dw, uvarint ds, varint branch delta,
	// uvarint hint, varint target delta. The fetch-address chain
	// continues at branch (the step's last fetch).
	tagStepDisp = 4
	tagWorkBase = 5 // Work(tag - tagWorkBase) for tag in [5, 255]

	maxInlineWork = 255 - tagWorkBase
)

// Kind classifies a decoded trace record.
type Kind uint8

const (
	// KWork is n straight-line native instructions (A = n).
	KWork Kind = iota
	// KFetch is an instruction fetch (A = addr, B = size).
	KFetch
	// KDispatch is an indirect dispatch (A = branch, B = hint,
	// C = target).
	KDispatch
)

// Record is one decoded trace event. Field meaning depends on Kind;
// see the Kind constants.
type Record struct {
	Kind    Kind
	A, B, C uint64
}

// Header carries the trace metadata: what was recorded (enough to
// re-create the recording run for verification) plus stream totals.
type Header struct {
	// Workload, Lang, Variant and Technique identify the recorded
	// configuration (workload.Workload name and language, harness
	// variant label, core.Technique name).
	Workload  string
	Lang      string
	Variant   string
	Technique string
	// Scale is the absolute workload scale of the recording run;
	// ScaleDiv is the suite divisor it was derived from (needed to
	// reproduce the training runs of static variants, whose profiles
	// run at the same divisor).
	Scale    uint64
	ScaleDiv uint64
	// MaxSteps is the VM step bound of the recording run.
	MaxSteps uint64
	// ISAHash fingerprints the VM instruction set (HashISA); a trace
	// is only valid against the ISA it was recorded under.
	ISAHash uint64

	// VMInstructions and CodeBytes are stream totals that need no
	// ordering (pure integer accumulation): executed VM instructions
	// and run-time generated code bytes.
	VMInstructions uint64
	CodeBytes      uint64
	// Records counts encoded (physical) records — fused step records
	// count once. Dispatches, Fetches and WorkInstrs count logical
	// events: dispatch and fetch events after expansion, and the sum
	// of all work amounts.
	Records    uint64
	Dispatches uint64
	Fetches    uint64
	WorkInstrs uint64
}

// Segment is one independently decodable chunk of the record stream.
type Segment struct {
	// Data is the encoded payload (delta bases reset at the segment
	// start), stored under Codec.
	Data []byte
	// Records is the number of records encoded in the payload.
	Records int
	// Codec is the payload encoding of Data. The zero value CodecRaw
	// matches writer-produced in-memory segments.
	Codec Codec
	// RawBytes is the decoded payload size when Codec != CodecRaw
	// (ignored for raw segments, whose size is len(Data)).
	RawBytes int
	// VMInsts is the number of VM instructions (steps) beginning in
	// this segment; zero for segments decoded from v1/v2 traces,
	// which carry no step information.
	VMInsts int
	// Steps is the encoded step table mapping the segment's VM
	// instructions to their records (see encodeStepTable): a prefix
	// record count continuing the previous segment's last step,
	// followed by exceptions for steps that span more or fewer than
	// one record. nil for v1/v2 segments; a Trace whose segments all
	// carry step tables encodes as v3 and is instruction-seekable.
	Steps []byte
}

// stepExc is one step-table exception: step idx (segment-local) spans
// recs records instead of the default one.
type stepExc struct {
	idx  int
	recs int
}

// encodeStepTable serializes a segment step table: the prefix record
// count (records at the segment start that continue the previous
// segment's last step, or precede the first VM instruction of the
// stream), then the exception list as (gap, records) pairs over the
// default of one record per step. Interpreter streams fuse almost
// every instruction into a single record, so steady-state tables are
// a few bytes regardless of segment size.
func encodeStepTable(prefix int, exc []stepExc) []byte {
	b := binary.AppendUvarint(nil, uint64(prefix))
	b = binary.AppendUvarint(b, uint64(len(exc)))
	prev := -1
	for _, e := range exc {
		b = binary.AppendUvarint(b, uint64(e.idx-prev-1))
		b = binary.AppendUvarint(b, uint64(e.recs))
		prev = e.idx
	}
	return b
}

// parseStepTable decodes and validates a segment step table against
// the segment's instruction and record counts from the index: every
// exception index must be in range and strictly increasing, and the
// implied record total (prefix + defaults + exceptions) must equal
// the segment's record count. Corrupt tables error, never panic.
func parseStepTable(b []byte, vmInsts, records int) (prefix int, exc []stepExc, err error) {
	r := &byteReader{b: b}
	p := r.uvarint()
	nexc := r.uvarint()
	if r.err != nil {
		return 0, nil, r.err
	}
	if p > uint64(records) {
		return 0, nil, fmt.Errorf("disptrace: step table prefix %d exceeds %d segment records", p, records)
	}
	if nexc > uint64(vmInsts) {
		return 0, nil, fmt.Errorf("disptrace: step table has %d exceptions for %d instructions", nexc, vmInsts)
	}
	// Each exception costs at least two bytes, so a count beyond the
	// table's own size is corrupt; checking before the allocation
	// keeps a crafted index from forcing a huge reservation.
	if nexc > uint64(len(b))/2 {
		return 0, nil, fmt.Errorf("disptrace: step table claims %d exceptions in %d bytes", nexc, len(b))
	}
	exc = make([]stepExc, nexc)
	total := p
	idx := -1
	for i := range exc {
		gap := r.uvarint()
		recs := r.uvarint()
		if r.err != nil {
			return 0, nil, r.err
		}
		if gap > uint64(vmInsts) || recs > uint64(records) {
			return 0, nil, fmt.Errorf("disptrace: step table exception %d out of range (gap %d, records %d)", i, gap, recs)
		}
		idx += 1 + int(gap)
		if idx >= vmInsts {
			return 0, nil, fmt.Errorf("disptrace: step table exception %d names instruction %d of %d", i, idx, vmInsts)
		}
		exc[i] = stepExc{idx: idx, recs: int(recs)}
		total += recs
	}
	if r.off != len(b) {
		return 0, nil, fmt.Errorf("disptrace: %d trailing bytes after step table", len(b)-r.off)
	}
	total += uint64(vmInsts) - uint64(len(exc)) // default steps: one record each
	if total != uint64(records) {
		return 0, nil, fmt.Errorf("disptrace: step table implies %d records, segment has %d", total, records)
	}
	return int(p), exc, nil
}

// RawLen returns the decoded payload size in bytes — what the stored
// Data inflates to (equal to len(Data) for raw segments). vmtrace
// info reports compression ratios with it.
func (s Segment) RawLen() int {
	if s.Codec == CodecRaw {
		return len(s.Data)
	}
	return s.RawBytes
}

// payload returns the raw (decompressed) record bytes.
func (s Segment) payload() ([]byte, error) {
	raw, _, err := s.payloadScratch(nil)
	return raw, err
}

// payloadScratch is payload with a reusable decompression buffer:
// scratch is reused when it has the capacity, and the returned
// scratch (the inflate buffer, possibly grown) can be handed to the
// next call — sequential replay decompresses a whole trace with one
// allocation. Raw segments return their stored Data and pass scratch
// through untouched.
func (s Segment) payloadScratch(scratch []byte) (raw, newScratch []byte, err error) {
	switch s.Codec {
	case CodecRaw:
		return s.Data, scratch, nil
	case CodecFlate:
		raw, err = inflate(s.Data, s.RawBytes, scratch)
		if err != nil {
			return nil, scratch, err
		}
		return raw, raw, nil
	default:
		return nil, scratch, fmt.Errorf("disptrace: unknown segment codec %d", s.Codec)
	}
}

// Trace is a complete dispatch trace: header plus encoded segments.
type Trace struct {
	Header Header
	Segs   []Segment

	// arena, when non-nil, is the trace's compiled form (see
	// compiled.go): the fully decoded op stream replay and cursors
	// serve from instead of decoding Segs. Attached by Compile; the
	// arena is immutable and must describe exactly this trace.
	arena *Arena
}

// maxStringLen bounds length-prefixed strings during decoding so a
// corrupt header cannot force a huge allocation.
const maxStringLen = 1 << 16

// maxSegmentRecords bounds the per-segment record count a reader
// accepts. The writer seals segments at DefaultSegmentRecords (16Ki;
// 64Ki historically), so this leaves 4x headroom for retuning while
// capping decode-time allocations: with compressed payloads the
// records-fit-in-raw-bytes check no longer ties the count to the
// input size (DEFLATE expands up to ~1032x), and an unbounded count
// would let a small crafted trace force a fatal multi-GB reservation
// instead of a decode error.
const maxSegmentRecords = 1 << 18

// maxRecordsPrealloc caps the capacity hint Records derives from the
// header total; genuinely larger streams grow by append instead of
// trusting an attacker-controlled field with one huge up-front
// allocation.
const maxRecordsPrealloc = 1 << 22

// byteReader is a bounds-checked cursor over an encoded buffer. After
// any method reports failure the cursor stays failed ("sticky
// error"), so decode paths can defer a single error check.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("disptrace: truncated or malformed uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("disptrace: truncated or malformed varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("disptrace: truncated stream at offset %d", r.off)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *byteReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen || int(n) > len(r.b)-r.off {
		r.fail("disptrace: string length %d out of range at offset %d", n, r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("disptrace: byte range %d out of bounds at offset %d", n, r.off)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeHeader serializes the header block (without its length
// prefix).
func encodeHeader(h Header) []byte {
	b := appendString(nil, h.Workload)
	b = appendString(b, h.Lang)
	b = appendString(b, h.Variant)
	b = appendString(b, h.Technique)
	for _, v := range []uint64{
		h.Scale, h.ScaleDiv, h.MaxSteps, h.ISAHash,
		h.VMInstructions, h.CodeBytes,
		h.Records, h.Dispatches, h.Fetches, h.WorkInstrs,
	} {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func decodeHeader(b []byte) (Header, error) {
	r := &byteReader{b: b}
	var h Header
	h.Workload = r.string()
	h.Lang = r.string()
	h.Variant = r.string()
	h.Technique = r.string()
	for _, p := range []*uint64{
		&h.Scale, &h.ScaleDiv, &h.MaxSteps, &h.ISAHash,
		&h.VMInstructions, &h.CodeBytes,
		&h.Records, &h.Dispatches, &h.Fetches, &h.WorkInstrs,
	} {
		*p = r.uvarint()
	}
	if r.err != nil {
		return Header{}, r.err
	}
	if r.off != len(b) {
		return Header{}, fmt.Errorf("disptrace: %d trailing bytes after header", len(b)-r.off)
	}
	return h, nil
}

// Encode serializes the trace to its on-disk byte form, compressing
// raw segment payloads with DefaultCodec (per segment, only when that
// shrinks them).
func (t *Trace) Encode() []byte { return t.EncodeCodec(DefaultCodec) }

// EncodeCodec is Encode with an explicit codec for raw segments.
// Segments already carrying a non-raw codec (a decoded trace being
// re-encoded) are stored as they are. Traces whose segments all carry
// step tables (writer-produced, or decoded from v3 bytes) encode as
// v3; traces decoded from v1/v2 bytes have no step information and
// re-encode as v2.
func (t *Trace) EncodeCodec(c Codec) []byte {
	indexed := t.Indexed()
	stored := make([]Segment, len(t.Segs))
	for i, s := range t.Segs {
		if s.Codec != CodecRaw {
			stored[i] = s
			continue
		}
		data, codec := encodePayload(s.Data, c)
		stored[i] = Segment{Data: data, Records: s.Records, Codec: codec, RawBytes: len(s.Data),
			VMInsts: s.VMInsts, Steps: s.Steps}
	}

	version := uint16(Version)
	if !indexed {
		version = versionV2
	}
	hdr := encodeHeader(t.Header)
	body := binary.AppendUvarint(nil, uint64(len(hdr)))
	body = append(body, hdr...)
	body = binary.AppendUvarint(body, uint64(len(stored)))
	for _, s := range stored {
		body = append(body, byte(s.Codec))
		body = binary.AppendUvarint(body, uint64(len(s.Data)))
		body = binary.AppendUvarint(body, uint64(s.Records))
		body = binary.AppendUvarint(body, uint64(s.RawBytes))
		if indexed {
			body = binary.AppendUvarint(body, uint64(s.VMInsts))
			body = binary.AppendUvarint(body, uint64(len(s.Steps)))
		}
	}
	for _, s := range stored {
		body = append(body, s.Data...)
	}
	if indexed {
		for _, s := range stored {
			body = append(body, s.Steps...)
		}
	}

	out := make([]byte, 0, 4+2+4+len(body))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, version)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// Indexed reports whether the trace is VM-instruction indexed: every
// segment carries a step table, so Cursor.Seek works at segment
// granularity and the trace encodes as format v3.
func (t *Trace) Indexed() bool {
	for _, s := range t.Segs {
		if s.Steps == nil {
			return false
		}
	}
	return true
}

// Decode parses an encoded trace, validating the magic, version and
// checksum and bounds-checking every field. Corrupt input yields an
// error, never a panic.
func Decode(b []byte) (*Trace, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("disptrace: %d bytes is too short for a trace", len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("disptrace: bad magic %q", b[:4])
	}
	version := binary.LittleEndian.Uint16(b[4:6])
	if version < versionV1 || version > Version {
		return nil, fmt.Errorf("disptrace: unsupported trace version %d (want %d through %d)", version, versionV1, Version)
	}
	body := b[10:]
	if sum := binary.LittleEndian.Uint32(b[6:10]); sum != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("disptrace: checksum mismatch (corrupt trace)")
	}

	r := &byteReader{b: body}
	hdrLen := r.uvarint()
	if r.err == nil && hdrLen > uint64(len(body)) {
		r.fail("disptrace: header length %d exceeds trace size", hdrLen)
	}
	hdrBytes := r.bytes(int(hdrLen))
	if r.err != nil {
		return nil, r.err
	}
	h, err := decodeHeader(hdrBytes)
	if err != nil {
		return nil, err
	}

	segCount := r.uvarint()
	if r.err == nil && segCount > uint64(len(body)) {
		// Each segment costs at least one index byte, so this bounds
		// the index allocation by the input size.
		r.fail("disptrace: segment count %d exceeds trace size", segCount)
	}
	if r.err != nil {
		return nil, r.err
	}
	type segInfo struct {
		codec                                   Codec
		bytes, records, raw, vmInsts, stepBytes uint64
	}
	infos := make([]segInfo, segCount)
	var totalRecords, totalInsts uint64
	for i := range infos {
		if version >= versionV2 {
			infos[i].codec = Codec(r.byte())
		}
		infos[i].bytes = r.uvarint()
		infos[i].records = r.uvarint()
		if version >= versionV2 {
			infos[i].raw = r.uvarint()
		} else {
			infos[i].raw = infos[i].bytes
		}
		if version >= Version {
			infos[i].vmInsts = r.uvarint()
			infos[i].stepBytes = r.uvarint()
			totalInsts += infos[i].vmInsts
		}
		totalRecords += infos[i].records
	}
	if r.err != nil {
		return nil, r.err
	}
	if totalRecords != h.Records {
		return nil, fmt.Errorf("disptrace: index holds %d records, header says %d", totalRecords, h.Records)
	}
	if version >= Version && totalInsts != h.VMInstructions {
		return nil, fmt.Errorf("disptrace: index holds %d VM instructions, header says %d", totalInsts, h.VMInstructions)
	}

	t := &Trace{Header: h, Segs: make([]Segment, segCount)}
	for i := range t.Segs {
		in := infos[i]
		if !knownCodec(in.codec) {
			return nil, fmt.Errorf("disptrace: segment %d has unknown codec %d", i, in.codec)
		}
		if in.bytes > math.MaxInt32 || in.records > math.MaxInt32 || in.raw > math.MaxInt32 ||
			in.vmInsts > math.MaxInt32 || in.stepBytes > math.MaxInt32 {
			return nil, fmt.Errorf("disptrace: segment %d size out of range", i)
		}
		if in.codec == CodecRaw && in.raw != in.bytes {
			return nil, fmt.Errorf("disptrace: raw segment %d declares %d raw bytes for a %d-byte payload", i, in.raw, in.bytes)
		}
		// Every record costs at least its tag byte, so a record count
		// above the raw payload size is corrupt; checking here also
		// keeps decode-time allocations proportional to the input
		// (inflate additionally bounds raw against the compressed
		// size).
		if in.records > in.raw {
			return nil, fmt.Errorf("disptrace: segment %d claims %d records in %d bytes", i, in.records, in.raw)
		}
		if in.records > maxSegmentRecords {
			return nil, fmt.Errorf("disptrace: segment %d claims %d records (limit %d)", i, in.records, maxSegmentRecords)
		}
		t.Segs[i] = Segment{Data: r.bytes(int(in.bytes)), Records: int(in.records), Codec: in.codec, RawBytes: int(in.raw),
			VMInsts: int(in.vmInsts)}
	}
	if version >= Version {
		for i := range t.Segs {
			steps := r.bytes(int(infos[i].stepBytes))
			if r.err != nil {
				return nil, r.err
			}
			// Validate the table now so corrupt step indexes fail at
			// Decode instead of deep inside a seeking consumer. The
			// exception count is bounded by the table's own bytes, so
			// this stays proportional to the input.
			if _, _, err := parseStepTable(steps, t.Segs[i].VMInsts, t.Segs[i].Records); err != nil {
				return nil, fmt.Errorf("disptrace: segment %d: %w", i, err)
			}
			t.Segs[i].Steps = steps
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("disptrace: %d trailing bytes after segments", len(body)-r.off)
	}
	return t, nil
}

// Meta summarizes a trace file from its header and segment index
// alone: no payload is inflated and no checksum is computed, so
// listing a cache directory stays cheap however large the traces are.
type Meta struct {
	Header Header
	// Segments is the segment count from the index.
	Segments int
	// Seekable reports a v3 trace: the index carries per-segment VM
	// instruction counts and step tables (Cursor.Seek jumps straight
	// to a segment instead of scanning).
	Seekable bool
}

// DecodeMeta parses a trace's metadata from an encoded prefix. It
// accepts a partial buffer as long as the header and segment index
// are complete; payload bytes past the index are not touched (and the
// checksum, which covers them, is not verified — callers that need
// integrity use Decode).
func DecodeMeta(b []byte) (Meta, error) {
	if len(b) < 10 {
		return Meta{}, fmt.Errorf("disptrace: %d bytes is too short for a trace", len(b))
	}
	if [4]byte(b[:4]) != magic {
		return Meta{}, fmt.Errorf("disptrace: bad magic %q", b[:4])
	}
	version := binary.LittleEndian.Uint16(b[4:6])
	if version < versionV1 || version > Version {
		return Meta{}, fmt.Errorf("disptrace: unsupported trace version %d (want %d through %d)", version, versionV1, Version)
	}
	r := &byteReader{b: b[10:]}
	hdrLen := r.uvarint()
	if r.err == nil && hdrLen > uint64(len(r.b)) {
		r.fail("disptrace: header length %d exceeds trace size", hdrLen)
	}
	hdrBytes := r.bytes(int(hdrLen))
	if r.err != nil {
		return Meta{}, r.err
	}
	h, err := decodeHeader(hdrBytes)
	if err != nil {
		return Meta{}, err
	}
	segCount := r.uvarint()
	if r.err == nil && segCount > uint64(len(r.b)) {
		r.fail("disptrace: segment count %d exceeds trace size", segCount)
	}
	if r.err != nil {
		return Meta{}, r.err
	}
	for range segCount {
		if version >= versionV2 {
			r.byte() // codec
		}
		r.uvarint() // stored bytes
		r.uvarint() // records
		if version >= versionV2 {
			r.uvarint() // raw bytes
		}
		if version >= Version {
			r.uvarint() // vm instructions
			r.uvarint() // step-table bytes
		}
	}
	if r.err != nil {
		return Meta{}, r.err
	}
	return Meta{Header: h, Segments: int(segCount), Seekable: version >= Version}, nil
}

// Decode expands the segment into logical records, appending to dst
// (which may be nil): fused step records come back as their
// constituent Work/Fetch/Dispatch events, and compressed payloads are
// inflated first. Delta bases start at zero, matching the writer's
// per-segment reset.
func (s Segment) Decode(dst []Record) ([]Record, error) {
	if s.Records > maxSegmentRecords {
		return nil, fmt.Errorf("disptrace: segment claims %d records (limit %d)", s.Records, maxSegmentRecords)
	}
	raw, err := s.payload()
	if err != nil {
		return nil, err
	}
	r := &byteReader{b: raw}
	var prevFetch, prevBranch, prevTarget uint64
	if cap(dst)-len(dst) < s.Records {
		grown := make([]Record, len(dst), len(dst)+s.Records)
		copy(grown, dst)
		dst = grown
	}
	for range s.Records {
		tag := r.byte()
		switch {
		case tag >= tagWorkBase:
			dst = append(dst, Record{Kind: KWork, A: uint64(tag - tagWorkBase)})
		case tag == tagWorkExt:
			dst = append(dst, Record{Kind: KWork, A: r.uvarint()})
		case tag == tagFetch:
			prevFetch += uint64(r.varint())
			dst = append(dst, Record{Kind: KFetch, A: prevFetch, B: r.uvarint()})
		case tag == tagDispatch:
			prevBranch += uint64(r.varint())
			hint := r.uvarint()
			prevTarget += uint64(r.varint())
			dst = append(dst, Record{Kind: KDispatch, A: prevBranch, B: hint, C: prevTarget})
		case tag == tagStepSeq:
			w := r.uvarint()
			prevFetch += uint64(r.varint())
			size := r.uvarint()
			sw := r.uvarint()
			dst = append(dst,
				Record{Kind: KWork, A: w},
				Record{Kind: KFetch, A: prevFetch, B: size},
				Record{Kind: KWork, A: sw})
		case tag == tagStepDisp:
			w := r.uvarint()
			prevFetch += uint64(r.varint())
			size := r.uvarint()
			dw := r.uvarint()
			ds := r.uvarint()
			prevBranch += uint64(r.varint())
			hint := r.uvarint()
			prevTarget += uint64(r.varint())
			dst = append(dst,
				Record{Kind: KWork, A: w},
				Record{Kind: KFetch, A: prevFetch, B: size},
				Record{Kind: KWork, A: dw},
				Record{Kind: KFetch, A: prevBranch, B: ds},
				Record{Kind: KDispatch, A: prevBranch, B: hint, C: prevTarget})
			prevFetch = prevBranch // the step's last fetch was the branch
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.off != len(raw) {
		return nil, fmt.Errorf("disptrace: %d trailing bytes after %d segment records", len(raw)-r.off, s.Records)
	}
	return dst, nil
}

// Records decodes the full record stream (all segments, in order).
func (t *Trace) Records() ([]Record, error) {
	var out []Record
	if t.Header.Records <= maxRecordsPrealloc {
		out = make([]Record, 0, t.Header.Records)
	}
	for _, s := range t.Segs {
		var err error
		if out, err = s.Decode(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}
