package disptrace_test

import (
	"sync"
	"testing"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/workload"
)

// The replay-pipeline benchmarks measure every layer of the trace
// data path on one real dispatch stream (gray/plain at reduced
// scale): codec encode/decode, single-sim apply, and the multi-sim
// parallel-apply schedule, plus the direct simulation the replay has
// to beat. Results are captured in BENCH_replay.json at the repo
// root.
//
//	go test -run '^$' -bench . -benchmem ./internal/disptrace/

var benchState struct {
	once     sync.Once
	tr       *disptrace.Trace // writer-produced (raw segments)
	wire     *disptrace.Trace // decoded from v2 bytes (flate segments)
	compiled *disptrace.Trace // decoded then compiled (arena attached)
	v2       []byte
	v1       []byte
	ops      []cpu.Op // fully decoded stream, one batch
	err      error
}

func benchSetup(b *testing.B) {
	benchState.once.Do(func() {
		w, err := workload.ByName("gray")
		if err != nil {
			benchState.err = err
			return
		}
		v, err := harness.VariantByName(w, "plain")
		if err != nil {
			benchState.err = err
			return
		}
		s := harness.NewTestSuite()
		s.ScaleDiv = 10
		tr, _, err := s.RecordTrace(w, v, cpu.Celeron800)
		if err != nil {
			benchState.err = err
			return
		}
		benchState.tr = tr
		benchState.v2 = tr.Encode()
		benchState.v1 = disptrace.EncodeV1(tr)
		if benchState.wire, err = disptrace.Decode(benchState.v2); err != nil {
			benchState.err = err
			return
		}
		if benchState.compiled, err = disptrace.Decode(benchState.v2); err != nil {
			benchState.err = err
			return
		}
		if _, err = benchState.compiled.Compile(); err != nil {
			benchState.err = err
			return
		}
		for _, seg := range tr.Segs {
			if benchState.ops, err = seg.DecodeOps(benchState.ops); err != nil {
				benchState.err = err
				return
			}
		}
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
}

func BenchmarkEncodeFlate(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.SetBytes(int64(len(benchState.v1))) // raw payload throughput
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchState.tr.Encode()
	}
	b.ReportMetric(float64(len(benchState.v1))/float64(len(benchState.v2)), "ratio")
}

func BenchmarkEncodeRaw(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.SetBytes(int64(len(benchState.v1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchState.tr.EncodeCodec(disptrace.CodecRaw)
	}
}

// decodeAll parses the container and expands every segment to ops —
// the full wire-to-events cost a replay pays.
func decodeAll(b *testing.B, wire []byte) {
	b.Helper()
	b.ResetTimer()
	b.SetBytes(int64(len(benchState.v1)))
	b.ReportAllocs()
	var ops []cpu.Op
	for i := 0; i < b.N; i++ {
		tr, err := disptrace.Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		for _, seg := range tr.Segs {
			if ops, err = seg.DecodeOps(ops[:0]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDecodeV2(b *testing.B) { benchSetup(b); decodeAll(b, benchState.v2) }
func BenchmarkDecodeV1(b *testing.B) { benchSetup(b); decodeAll(b, benchState.v1) }

// BenchmarkApply is the pure apply side: one pre-decoded batch driven
// through a single simulator (predictor + I-cache state machines).
func BenchmarkApply(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cpu.NewSim(cpu.Celeron800).Apply(benchState.ops)
	}
	b.ReportMetric(float64(len(benchState.ops)), "events/op")
}

// BenchmarkReplay is the end-to-end single-sim path from compressed
// wire segments (the warm trace-cache hit): inflate + decode + apply.
func BenchmarkReplay(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := disptrace.ReplayMachine(benchState.wire, cpu.Celeron800, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile is the compiled tier's one-time cost per trace:
// wire bytes to attached arena (container parse, inflate, full decode,
// instruction-index build). The tier pays it on the Nth load and
// amortizes it over every replay after.
func BenchmarkCompile(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.SetBytes(int64(len(benchState.v1)))
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		tr, err := disptrace.Decode(benchState.v2)
		if err != nil {
			b.Fatal(err)
		}
		a, err := tr.Compile()
		if err != nil {
			b.Fatal(err)
		}
		bytes = a.Bytes()
	}
	b.ReportMetric(float64(bytes), "arena-bytes")
}

// BenchmarkReplayCompiled is the compiled-tier serving path: the
// arena applied by reference into one reused simulator — zero decode,
// zero allocation. Its counterpart on the decode path is
// BenchmarkReplay (inflate + decode + apply per replay).
func BenchmarkReplayCompiled(b *testing.B) {
	benchSetup(b)
	sims := []*cpu.Sim{cpu.NewSim(cpu.Celeron800)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sims[0].Reset()
		if err := disptrace.ReplayEach(benchState.compiled, sims); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMachines is a 5-machine grid group, the ReplayEach shape the
// suite's machine sweeps produce.
func benchMachines() []cpu.Machine {
	return []cpu.Machine{
		cpu.Celeron800,
		cpu.Pentium4Northwood,
		cpu.PentiumM,
		cpu.Celeron800.WithPredictor(cpu.PredictBTB2bc),
		cpu.Celeron800.WithBTBEntries(64),
	}
}

// BenchmarkReplayEach5 replays one decode pass into 5 machines with
// the parallel-apply pipeline.
func BenchmarkReplayEach5(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sims := make([]*cpu.Sim, 0, 5)
		for _, m := range benchMachines() {
			sims = append(sims, cpu.NewSim(m))
		}
		if err := disptrace.ReplayEach(benchState.wire, sims); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayCompiledEach5 is the grid-group shape on the
// compiled tier: no decode pipeline at all, each sim's applier walks
// the same immutable arena independently.
func BenchmarkReplayCompiledEach5(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sims := make([]*cpu.Sim, 0, 5)
		for _, m := range benchMachines() {
			sims = append(sims, cpu.NewSim(m))
		}
		if err := disptrace.ReplayEach(benchState.compiled, sims); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplaySequential5 is the same 5-machine group replayed one
// sim at a time — the pre-sharding schedule ReplayEach5 is measured
// against.
func BenchmarkReplaySequential5(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range benchMachines() {
			if _, err := disptrace.ReplayMachine(benchState.wire, m, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDirectSimulate is the interpreter run a replay replaces —
// the bar every decode+apply number above has to clear.
func BenchmarkDirectSimulate(b *testing.B) {
	w, err := workload.ByName("gray")
	if err != nil {
		b.Fatal(err)
	}
	v, err := harness.VariantByName(w, "plain")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := harness.NewTestSuite()
		s.ScaleDiv = 10
		if _, err := s.Run(w, v, cpu.Celeron800); err != nil {
			b.Fatal(err)
		}
	}
}
