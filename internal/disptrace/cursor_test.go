package disptrace_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
)

// event is one sink call for driving a Writer in tests.
type event struct {
	kind    byte // 0 work, 1 fetch, 2 dispatch, 3 vminst
	a, b, c uint64
}

func feedEvents(w *disptrace.Writer, evs []event) {
	for _, e := range evs {
		switch e.kind {
		case 0:
			w.RecordWork(int(e.a))
		case 1:
			w.RecordFetch(e.a, int(e.b))
		case 2:
			w.RecordDispatch(e.a, e.b, e.c)
		case 3:
			w.RecordVMInst()
		}
	}
}

// groundTruthSteps groups an event stream into the per-instruction op
// slices a cursor over a v3 trace must reproduce exactly: events
// after the k-th RecordVMInst and before the k+1-th belong to step k;
// events before the first RecordVMInst belong to no step.
func groundTruthSteps(evs []event) [][]cpu.Op {
	var steps [][]cpu.Op
	started := false
	for _, e := range evs {
		switch e.kind {
		case 3:
			steps = append(steps, []cpu.Op{})
			started = true
		case 0:
			if started {
				steps[len(steps)-1] = append(steps[len(steps)-1], cpu.Op{Kind: cpu.OpWork, A: e.a})
			}
		case 1:
			if started {
				steps[len(steps)-1] = append(steps[len(steps)-1], cpu.Op{Kind: cpu.OpFetch, A: e.a, B: e.b})
			}
		case 2:
			if started {
				steps[len(steps)-1] = append(steps[len(steps)-1], cpu.Op{Kind: cpu.OpDispatch, A: e.a, B: e.b, C: e.c})
			}
		}
	}
	return steps
}

// drainSteps walks a cursor to the end, copying each step.
func drainSteps(t *testing.T, c *disptrace.Cursor) []disptrace.Step {
	t.Helper()
	var out []disptrace.Step
	for {
		st, ok := c.Next()
		if !ok {
			break
		}
		st.Ops = append([]cpu.Op(nil), st.Ops...)
		out = append(out, st)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return out
}

func opsEqual(a, b []cpu.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fullOps decodes the whole trace through the public segment decoder.
func fullOps(t *testing.T, tr *disptrace.Trace) []cpu.Op {
	t.Helper()
	var ops []cpu.Op
	for _, s := range tr.Segs {
		var err error
		if ops, err = s.DecodeOps(ops); err != nil {
			t.Fatal(err)
		}
	}
	return ops
}

// stepEvents builds a deterministic pseudo-interpreter stream: nInsts
// instructions in engine shape (VMInst first, then work/fetch, then
// either a dispatch pair or trailing work), with occasional quickening
// work and empty instructions thrown in.
func stepEvents(nInsts int, seed int64) []event {
	rng := rand.New(rand.NewSource(seed))
	var evs []event
	addr := uint64(0x2000)
	for range nInsts {
		evs = append(evs, event{kind: 3})
		if rng.Intn(17) == 0 {
			evs = append(evs, event{kind: 0, a: uint64(rng.Intn(300))}) // quickening work
		}
		evs = append(evs, event{kind: 0, a: uint64(rng.Intn(9))})
		evs = append(evs, event{kind: 1, a: addr, b: uint64(4 + rng.Intn(28))})
		if rng.Intn(3) == 0 {
			evs = append(evs, event{kind: 0, a: uint64(rng.Intn(5))}) // fall-through
		} else {
			branch := addr + 40
			target := uint64(0x2000 + rng.Intn(97)*64)
			evs = append(evs,
				event{kind: 0, a: uint64(rng.Intn(4))},
				event{kind: 1, a: branch, b: 8},
				event{kind: 2, a: branch, b: uint64(rng.Intn(255)), c: target})
			addr = target
		}
		addr += uint64(rng.Intn(64))
	}
	return evs
}

// cursorTraceForms returns the same stream in every decodable form:
// the in-memory writer trace, and traces decoded from v3, v2 and v1
// bytes.
func cursorTraceForms(t *testing.T, tr *disptrace.Trace) map[string]*disptrace.Trace {
	t.Helper()
	forms := map[string]*disptrace.Trace{"mem": tr}
	for name, enc := range map[string][]byte{
		"v3": tr.Encode(),
		"v2": disptrace.EncodeV2(tr),
	} {
		dec, err := disptrace.Decode(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		forms[name] = dec
	}
	if raw := tr.EncodeCodec(disptrace.CodecRaw); true {
		dec, err := disptrace.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		allRaw := true
		for _, s := range dec.Segs {
			if s.Codec != disptrace.CodecRaw {
				allRaw = false
			}
		}
		if allRaw {
			v1dec, err := disptrace.Decode(disptrace.EncodeV1(tr))
			if err != nil {
				t.Fatalf("v1: %v", err)
			}
			forms["v1"] = v1dec
		}
	}
	return forms
}

// TestCursorStepsMatchStream: on a writer-produced stream in engine
// shape, every trace form yields the ground-truth steps (v3 exactly;
// legacy forms reconstruct the same boundaries for engine streams),
// NextBatch reproduces the full decode, and Seek agrees with a full
// walk from every sampled seek point.
func TestCursorStepsMatchStream(t *testing.T) {
	evs := stepEvents(2000, 7)
	w := disptrace.NewWriter(testHeader())
	disptrace.SetWriterSegLimit(w, 128) // force many segments
	feedEvents(w, evs)
	tr := w.Trace()
	want := groundTruthSteps(evs)
	if uint64(len(want)) != tr.Header.VMInstructions {
		t.Fatalf("ground truth has %d steps, header says %d", len(want), tr.Header.VMInstructions)
	}

	for name, form := range cursorTraceForms(t, tr) {
		got := drainSteps(t, disptrace.NewCursor(form))
		if len(got) != len(want) {
			t.Fatalf("%s: cursor found %d steps, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].Index != uint64(i) {
				t.Fatalf("%s: step %d carries index %d", name, i, got[i].Index)
			}
			if !opsEqual(got[i].Ops, want[i]) {
				t.Fatalf("%s: step %d ops diverged:\n  got  %+v\n  want %+v", name, i, got[i].Ops, want[i])
			}
		}

		// NextBatch covers the entire stream in order.
		c := disptrace.NewCursor(form)
		var all []cpu.Op
		for {
			batch, ok := c.NextBatch(nil)
			if !ok {
				break
			}
			all = append(all, batch...)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("%s: NextBatch: %v", name, err)
		}
		if !opsEqual(all, fullOps(t, form)) {
			t.Fatalf("%s: NextBatch stream diverged from full decode", name)
		}

		// Seek from sampled points, including boundaries, equals the
		// suffix of the full walk; seeking past the end is empty.
		c = disptrace.NewCursor(form)
		for _, at := range []uint64{0, 1, 127, 128, 129, 1000, uint64(len(want) - 1), uint64(len(want)), uint64(len(want)) + 5} {
			if err := c.Seek(at); err != nil {
				t.Fatalf("%s: Seek(%d): %v", name, at, err)
			}
			rest := drainSteps(t, c)
			wantRest := 0
			if at < uint64(len(want)) {
				wantRest = len(want) - int(at)
			}
			if len(rest) != wantRest {
				t.Fatalf("%s: Seek(%d) drained %d steps, want %d", name, at, len(rest), wantRest)
			}
			for k, st := range rest {
				i := int(at) + k
				if st.Index != uint64(i) || !opsEqual(st.Ops, want[i]) {
					t.Fatalf("%s: Seek(%d): step %d wrong", name, at, i)
				}
			}
		}
	}
}

// TestCursorSpanningStep: a stream that stops reporting instructions
// mid-way forces the writer's mid-instruction hard seal, so one step's
// records span several segments; the cursor must stitch them back
// together on every trace form.
func TestCursorSpanningStep(t *testing.T) {
	var evs []event
	evs = append(evs, event{kind: 3})
	evs = append(evs, event{kind: 0, a: 1}, event{kind: 1, a: 0x2000, b: 8}, event{kind: 0, a: 2})
	evs = append(evs, event{kind: 3})
	// A huge instruction: hundreds of unfusable dispatch records with
	// no further VMInst, overflowing several segments.
	for i := range 700 {
		evs = append(evs, event{kind: 2, a: uint64(0x3000 + i*8), b: uint64(i), c: uint64(0x4000 + i*16)})
	}
	w := disptrace.NewWriter(testHeader())
	disptrace.SetWriterSegLimit(w, 64)
	feedEvents(w, evs)
	tr := w.Trace()
	if len(tr.Segs) < 3 {
		t.Fatalf("expected the giant step to span segments, got %d", len(tr.Segs))
	}
	want := groundTruthSteps(evs)

	for name, form := range cursorTraceForms(t, tr) {
		got := drainSteps(t, disptrace.NewCursor(form))
		if len(got) != len(want) {
			t.Fatalf("%s: %d steps, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !opsEqual(got[i].Ops, want[i]) {
				t.Fatalf("%s: step %d diverged (%d ops vs %d)", name, i, len(got[i].Ops), len(want[i]))
			}
		}
	}
}

// TestCursorEmptySteps: instructions that produce no events at all
// (and trailing instructions after the last record) still appear as
// empty steps at the right indices in a v3 trace.
func TestCursorEmptySteps(t *testing.T) {
	evs := []event{
		{kind: 3},
		{kind: 3}, // empty instruction
		{kind: 0, a: 5},
		{kind: 3}, // trailing, no records follow
		{kind: 3},
	}
	w := disptrace.NewWriter(testHeader())
	feedEvents(w, evs)
	tr := w.Trace()
	dec, err := disptrace.Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for name, form := range map[string]*disptrace.Trace{"mem": tr, "v3": dec} {
		got := drainSteps(t, disptrace.NewCursor(form))
		want := groundTruthSteps(evs)
		if len(got) != len(want) {
			t.Fatalf("%s: %d steps, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !opsEqual(got[i].Ops, want[i]) {
				t.Fatalf("%s: step %d: got %+v want %+v", name, i, got[i].Ops, want[i])
			}
		}
	}
}

// TestCursorRealTrace: on a real recorded dispatch stream, the cursor
// yields exactly Header.VMInstructions steps whose ops concatenate to
// the full decode, across every encoding generation.
func TestCursorRealTrace(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	s.ScaleDiv = 40
	tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	full := fullOps(t, tr)
	for name, form := range cursorTraceForms(t, tr) {
		steps := drainSteps(t, disptrace.NewCursor(form))
		if uint64(len(steps)) != tr.Header.VMInstructions {
			t.Fatalf("%s: cursor found %d steps, header says %d VM instructions",
				name, len(steps), tr.Header.VMInstructions)
		}
		var cat []cpu.Op
		for _, st := range steps {
			cat = append(cat, st.Ops...)
		}
		if !opsEqual(cat, full) {
			t.Fatalf("%s: concatenated steps diverge from full decode (%d vs %d ops)", name, len(cat), len(full))
		}
		// Every engine step fetches, and its summaries are coherent.
		for _, st := range steps {
			if _, ok := st.Fetch(); !ok {
				t.Fatalf("%s: step %d has no fetch", name, st.Index)
			}
		}
		// Seek into the middle matches the sequential walk.
		mid := uint64(len(steps) / 2)
		c := disptrace.NewCursor(form)
		if err := c.Seek(mid); err != nil {
			t.Fatal(err)
		}
		st, ok := c.Next()
		if !ok || st.Index != mid || !opsEqual(st.Ops, steps[mid].Ops) {
			t.Fatalf("%s: Seek(%d) returned wrong step", name, mid)
		}
	}
}

// TestCursorCorruptStepTable: damaged step-table bytes — in the wire
// index or on a hand-built segment — must produce a decode error,
// never a panic or a silent misparse.
func TestCursorCorruptStepTable(t *testing.T) {
	evs := stepEvents(400, 3)
	w := disptrace.NewWriter(testHeader())
	disptrace.SetWriterSegLimit(w, 64)
	feedEvents(w, evs)
	tr := w.Trace()
	enc := tr.Encode()

	// The step tables are the trailing region of the file; corrupting
	// bytes there (with the checksum fixed up) must fail Decode's
	// table validation or, at worst, leave a trace whose cursor errors
	// cleanly.
	for _, off := range []int{1, 2, 3, 5, 8, 13} {
		mut := append([]byte(nil), enc...)
		mut[len(mut)-off] ^= 0x5a
		fixCRC(mut)
		dec, err := disptrace.Decode(mut)
		if err != nil {
			continue // rejected at decode: good
		}
		c := disptrace.NewCursor(dec)
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
		_ = c.Err() // error or clean end; the point is no panic
	}

	// A hand-built segment with garbage step bytes errors from the
	// cursor (it cannot be rejected earlier: no decode saw it).
	bad := &disptrace.Trace{Header: tr.Header, Segs: append([]disptrace.Segment(nil), tr.Segs...)}
	bad.Segs[0].Steps = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	c := disptrace.NewCursor(bad)
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if c.Err() == nil {
		t.Error("garbage step table iterated cleanly")
	}
	if err := c.Seek(1); err == nil && c.Err() == nil {
		t.Error("garbage step table sought cleanly")
	}
}

// FuzzCursor feeds arbitrary event streams (instruction marks
// included) and seek points through the writer and every format
// generation: v3 cursors must reproduce the ground-truth instruction
// grouping exactly, legacy cursors must be self-consistent between
// Seek and a full walk, and corrupted step-table bytes must error,
// never panic.
func FuzzCursor(f *testing.F) {
	f.Add([]byte{}, uint16(0), byte(0))
	f.Add([]byte{3, 0, 1, 1, 2, 3, 0, 3, 3}, uint16(2), byte(1))
	f.Add(bytes.Repeat([]byte{3, 2, 0xff}, 50), uint16(25), byte(0))

	f.Fuzz(func(t *testing.T, data []byte, seekAt uint16, mutByte byte) {
		const maxEvents = 1 << 10
		var evs []event
		u64 := func() uint64 {
			if len(data) == 0 {
				return 0
			}
			var buf [8]byte
			n := copy(buf[:], data)
			data = data[n:]
			return binary.LittleEndian.Uint64(buf[:])
		}
		for len(data) > 0 && len(evs) < maxEvents {
			kind := data[0] % 4
			data = data[1:]
			switch kind {
			case 0:
				evs = append(evs, event{kind: 0, a: u64() >> 1})
			case 1:
				evs = append(evs, event{kind: 1, a: u64(), b: u64() >> 1})
			case 2:
				evs = append(evs, event{kind: 2, a: u64(), b: u64(), c: u64()})
			case 3:
				evs = append(evs, event{kind: 3})
			}
		}

		w := disptrace.NewWriter(disptrace.Header{Workload: "fuzz", Lang: "forth"})
		disptrace.SetWriterSegLimit(w, 32)
		feedEvents(w, evs)
		tr := w.Trace()

		want := groundTruthSteps(evs)
		forms := map[string]*disptrace.Trace{"mem": tr}
		v3, err := disptrace.Decode(tr.Encode())
		if err != nil {
			t.Fatalf("decoding own v3 encoding: %v", err)
		}
		forms["v3"] = v3
		v2, err := disptrace.Decode(disptrace.EncodeV2(tr))
		if err != nil {
			t.Fatalf("decoding own v2 encoding: %v", err)
		}
		forms["v2"] = v2

		for name, form := range forms {
			c := disptrace.NewCursor(form)
			var steps []disptrace.Step
			for {
				st, ok := c.Next()
				if !ok {
					break
				}
				st.Ops = append([]cpu.Op(nil), st.Ops...)
				steps = append(steps, st)
				if len(steps) > maxEvents+1 {
					t.Fatalf("%s: cursor runs away (%d steps)", name, len(steps))
				}
			}
			if err := c.Err(); err != nil {
				t.Fatalf("%s: cursor error on a writer-produced trace: %v", name, err)
			}
			if name != "v2" {
				// v3 grouping is exact for arbitrary streams.
				if len(steps) != len(want) {
					t.Fatalf("%s: %d steps, want %d", name, len(steps), len(want))
				}
				for i := range want {
					if steps[i].Index != uint64(i) || !opsEqual(steps[i].Ops, want[i]) {
						t.Fatalf("%s: step %d diverged", name, i)
					}
				}
			}
			// Seek then drain equals the full walk's suffix — the
			// seekability contract, on every version.
			at := uint64(seekAt)
			c = disptrace.NewCursor(form)
			if err := c.Seek(at); err != nil {
				t.Fatalf("%s: Seek(%d): %v", name, at, err)
			}
			k := int(at)
			for {
				st, ok := c.Next()
				if !ok {
					break
				}
				if k >= len(steps) {
					t.Fatalf("%s: Seek(%d) yielded extra steps", name, at)
				}
				if st.Index != steps[k].Index || !opsEqual(st.Ops, steps[k].Ops) {
					t.Fatalf("%s: Seek(%d): step %d diverged from full walk", name, at, k)
				}
				k++
			}
			if c.Err() != nil {
				t.Fatalf("%s: Seek-drain error: %v", name, c.Err())
			}
			if at < uint64(len(steps)) && k != len(steps) {
				t.Fatalf("%s: Seek(%d) drained to %d of %d steps", name, at, k, len(steps))
			}
		}

		// Mutate one byte of the v3 encoding (checksum repaired):
		// decode must reject it or the cursor must survive it.
		enc := tr.Encode()
		if len(enc) > 10 {
			mut := append([]byte(nil), enc...)
			pos := 10 + int(seekAt)%(len(mut)-10)
			mut[pos] ^= mutByte | 1
			fixCRC(mut)
			if dec, err := disptrace.Decode(mut); err == nil {
				c := disptrace.NewCursor(dec)
				for i := 0; i < maxEvents+2; i++ {
					if _, ok := c.Next(); !ok {
						break
					}
				}
				_ = c.Seek(uint64(seekAt))
			}
		}
	})
}
