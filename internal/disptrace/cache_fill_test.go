package disptrace_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"vmopt/internal/disptrace"
)

// fillTrace records one trace into its own cache and returns the key
// plus the raw on-disk bytes — what a peer would serve for a fill.
func fillTrace(t *testing.T, k disptrace.Key) []byte {
	t.Helper()
	owner := disptrace.NewCache(t.TempDir())
	calls := 0
	if _, recorded, err := owner.GetOrRecord(k, healRecorder(k, &calls)); err != nil || !recorded {
		t.Fatalf("recording reference trace: err=%v recorded=%v", err, recorded)
	}
	b, err := os.ReadFile(owner.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFillHit: a local miss satisfied by the Fill hook avoids the
// recorder entirely, counts as a peer fill, and persists locally so
// the next lookup is a plain disk hit.
func TestFillHit(t *testing.T) {
	k := healKey()
	raw := fillTrace(t, k)
	c := disptrace.NewCache(t.TempDir())
	fills := 0
	c.Fill = func(fk disptrace.Key) ([]byte, error) {
		fills++
		if fk != k {
			return nil, fmt.Errorf("asked for unexpected key %+v", fk)
		}
		return raw, nil
	}
	calls := 0
	tr, recorded, err := c.GetOrRecord(k, healRecorder(k, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if recorded || calls != 0 {
		t.Fatalf("peer-filled lookup recorded (recorded=%v, recorder calls=%d)", recorded, calls)
	}
	if tr == nil || fills != 1 {
		t.Fatalf("trace=%v fills=%d", tr, fills)
	}
	st := c.Stats()
	if st.PeerFills != 1 || st.PeerFillMisses != 0 || st.PeerFillErrors != 0 {
		t.Fatalf("stats after fill: %+v", st)
	}

	// The filled bytes were persisted verbatim: disable the hook, a
	// fresh lookup loads from local disk.
	onDisk, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatalf("filled trace not persisted: %v", err)
	}
	if !bytes.Equal(onDisk, raw) {
		t.Fatal("persisted fill differs from peer bytes")
	}
	c.Fill = nil
	if _, recorded, err := c.GetOrRecord(k, healRecorder(k, &calls)); err != nil || recorded || calls != 0 {
		t.Fatalf("post-fill lookup: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
}

// TestFillFallbacks: hook misses, hook errors and garbage payloads
// all fall back to recording — a broken peer never breaks a request,
// it only costs the simulation the cluster tried to avoid.
func TestFillFallbacks(t *testing.T) {
	k := healKey()
	otherKey := healKey()
	otherKey.Scale = 7 // different content address
	otherRaw := fillTrace(t, otherKey)

	for _, tc := range []struct {
		name   string
		fill   func(disptrace.Key) ([]byte, error)
		misses uint64
		errs   uint64
	}{
		{"miss", func(disptrace.Key) ([]byte, error) { return nil, nil }, 1, 0},
		{"error", func(disptrace.Key) ([]byte, error) { return nil, errors.New("peer down") }, 0, 1},
		{"garbage", func(disptrace.Key) ([]byte, error) { return []byte("not a trace"), nil }, 0, 1},
		{"wrong-trace", func(disptrace.Key) ([]byte, error) { return otherRaw, nil }, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := disptrace.NewCache(t.TempDir())
			c.Fill = tc.fill
			calls := 0
			tr, recorded, err := c.GetOrRecord(k, healRecorder(k, &calls))
			if err != nil || tr == nil {
				t.Fatalf("err=%v trace=%v", err, tr)
			}
			if !recorded || calls != 1 {
				t.Fatalf("fallback did not record: recorded=%v calls=%d", recorded, calls)
			}
			st := c.Stats()
			if st.PeerFills != 0 || st.PeerFillMisses != tc.misses || st.PeerFillErrors != tc.errs {
				t.Fatalf("stats: %+v, want misses=%d errors=%d", st, tc.misses, tc.errs)
			}
			// Whatever the hook returned, the file on disk is the
			// correctly recorded trace — never the rejected payload.
			if tc.name == "wrong-trace" {
				onDisk, err := os.ReadFile(c.Path(k))
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(onDisk, otherRaw) {
					t.Fatal("mismatched fill payload persisted under the wrong key")
				}
			}
		})
	}
}

// TestFillID: the by-content-address path (diff traces) fills from
// FillID, verifies the content address, and rejects payloads whose
// bytes decode to a different trace.
func TestFillID(t *testing.T) {
	k := healKey()
	raw := fillTrace(t, k)
	id := k.ID()

	c := disptrace.NewCache(t.TempDir())
	c.FillID = func(gotID string) ([]byte, error) {
		if gotID != id {
			return nil, fmt.Errorf("asked for unexpected id %s", gotID)
		}
		return raw, nil
	}
	tr, _, err := c.LoadID(id)
	if err != nil {
		t.Fatalf("LoadID with fill: %v", err)
	}
	if tr == nil {
		t.Fatal("LoadID returned nil trace")
	}
	if st := c.Stats(); st.PeerFills != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Wrong bytes for the requested address are rejected, and the
	// load reports the trace as absent rather than serving them.
	other := healKey()
	other.Scale = 9
	bad := disptrace.NewCache(t.TempDir())
	bad.FillID = func(string) ([]byte, error) { return raw, nil }
	if _, _, err := bad.LoadID(other.ID()); !errors.Is(err, disptrace.ErrNoTrace) {
		t.Fatalf("mismatched FillID payload accepted: err=%v", err)
	}
	if st := bad.Stats(); st.PeerFillErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestReadRaw: the peer-serving read returns the exact file bytes and
// counts the serve; absences and invalid IDs are ErrNoTrace without
// touching the fill hooks (no fill recursion between peers).
func TestReadRaw(t *testing.T) {
	k := healKey()
	c := disptrace.NewCache(t.TempDir())
	calls := 0
	if _, _, err := c.GetOrRecord(k, healRecorder(k, &calls)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(c.Path(k))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadRaw(k.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadRaw bytes differ from the cache file")
	}
	if st := c.Stats(); st.PeerServes != 1 {
		t.Fatalf("stats: %+v", st)
	}

	fillCalled := false
	c.FillID = func(string) ([]byte, error) { fillCalled = true; return nil, nil }
	other := healKey()
	other.Scale = 11
	if _, err := c.ReadRaw(other.ID()); !errors.Is(err, disptrace.ErrNoTrace) {
		t.Fatalf("absent trace: err=%v, want ErrNoTrace", err)
	}
	if _, err := c.ReadRaw("../escape"); !errors.Is(err, disptrace.ErrNoTrace) {
		t.Fatalf("invalid id: err=%v, want ErrNoTrace", err)
	}
	if fillCalled {
		t.Fatal("ReadRaw consulted the fill hook; peers must not recurse")
	}
}
