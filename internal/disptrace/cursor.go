package disptrace

import (
	"encoding/binary"
	"sort"

	"vmopt/internal/cpu"
)

// Step is one VM instruction's slice of the replay stream: the
// instruction's global index and every simulator event it produced,
// in stream order. Ops aliases cursor-owned buffers and is valid only
// until the next Next, NextBatch or Seek call — summarize or copy
// before advancing.
type Step struct {
	// Index is the VM-instruction index of the step, counted from the
	// start of the trace.
	Index uint64
	// Ops is the instruction's event slice (work, fetches, at most
	// one dispatch for engine-recorded streams).
	Ops []cpu.Op
}

// Work sums the step's straight-line native instruction count.
func (s Step) Work() uint64 {
	var n uint64
	for _, op := range s.Ops {
		if op.Kind == cpu.OpWork {
			n += op.A
		}
	}
	return n
}

// Fetch returns the step's first instruction-fetch address — the code
// address of the VM instruction's implementation — and whether the
// step fetched at all.
func (s Step) Fetch() (addr uint64, ok bool) {
	for _, op := range s.Ops {
		if op.Kind == cpu.OpFetch {
			return op.A, true
		}
	}
	return 0, false
}

// Dispatch returns the step's dispatch branch and target addresses,
// and whether the step dispatched (fall-through steps inside a basic
// block do not).
func (s Step) Dispatch() (branch, target uint64, ok bool) {
	for _, op := range s.Ops {
		if op.Kind == cpu.OpDispatch {
			return op.A, op.C, true
		}
	}
	return 0, 0, false
}

// Cursor iterates a trace's replay stream indexed by VM instruction.
// It is the one owner of segment decode: step consumers (Next, Seek —
// the diff tooling) and bulk consumers (NextBatch, the replay
// schedules) both drive it.
//
// On a v3 trace, Seek jumps straight to the segment holding the
// requested instruction using the per-segment instruction counts in
// the index. On v1/v2 traces — which carry no step tables — the
// cursor reconstructs step boundaries from the fused-record structure
// (exact for engine-recorded traces, where every instruction ends in
// exactly one fused record) and Seek scans forward from the start.
//
// A Cursor is not safe for concurrent use; independent goroutines
// each take their own (segments decode independently).
type Cursor struct {
	t *Trace
	// indexed marks a v3 trace (every segment carries a step table).
	indexed bool
	// cum[i] is the global index of the first instruction beginning
	// in segment i (len(Segs)+1 entries); built lazily by index() —
	// bulk-only consumers (the pipelined decode workers) never need
	// it. Always nil for legacy traces.
	cum []uint64

	// Position: seg is the segment the cursor is in (len(Segs) at the
	// end), recOff the record offset within it, stepI the next step's
	// segment-local index, inst its global index. loaded marks the
	// decode state below as valid for seg.
	seg    int
	loaded bool
	recOff int
	stepI  int
	inst   uint64

	// Decoded state of the loaded segment.
	ops      []cpu.Op
	ends     []int // cumulative op count after each record
	prefix   int   // records continuing the previous segment's step
	stepRecs []int32
	// tailOpen (legacy only): the last entry of stepRecs continues
	// into the next segment. prefixOpen (legacy only): the previous
	// segment's step swallowed this whole segment without closing.
	tailOpen   bool
	prefixOpen bool

	stitch  []cpu.Op
	scratch []byte
	err     error

	// comp, when non-nil, is the trace's compiled arena: Next, Seek
	// and NextBatch serve op ranges straight from it (no decode, no
	// stitching — a step spanning segments is contiguous in the flat
	// layout). pos is the compiled position as a global op offset;
	// seg and inst keep their decode-path meanings.
	comp *Arena
	pos  int
}

// NewCursor positions a cursor at the start of the trace. On a
// compiled trace the cursor serves from the arena: step and batch
// slices reference the immutable arena (valid indefinitely, though
// callers should still treat them as until-next-advance per the Step
// contract), and iteration performs no decode work at all.
func NewCursor(t *Trace) *Cursor {
	return &Cursor{t: t, indexed: t.Indexed(), comp: t.arena}
}

// index returns the cumulative-instruction index, building it on
// first use.
func (c *Cursor) index() []uint64 {
	if c.cum == nil {
		c.cum = make([]uint64, len(c.t.Segs)+1)
		for i, s := range c.t.Segs {
			c.cum[i+1] = c.cum[i] + uint64(s.VMInsts)
		}
	}
	return c.cum
}

// Err returns the first decode error the cursor hit; Next and
// NextBatch return false after an error.
func (c *Cursor) Err() error { return c.err }

// Indexed reports whether the trace carries the v3 instruction index,
// making Seek a segment jump instead of a forward scan.
func (c *Cursor) Indexed() bool { return c.indexed }

// opOff converts a record offset of the loaded segment into an offset
// into its decoded ops.
func (c *Cursor) opOff(rec int) int {
	if rec <= 0 {
		return 0
	}
	if rec > len(c.ends) {
		rec = len(c.ends)
	}
	return c.ends[rec-1]
}

// load decodes segment i and its step structure. openIn (legacy only)
// tells the boundary synthesizer that a step is still open from the
// previous segment.
func (c *Cursor) load(i int, openIn bool) error {
	s := c.t.Segs[i]
	c.ends = c.ends[:0]
	var err error
	c.ops, c.scratch, err = s.decodeOps(c.ops[:0], c.scratch, &c.ends)
	if err != nil {
		return err
	}
	c.stepRecs = c.stepRecs[:0]
	c.tailOpen, c.prefixOpen = false, false
	if c.indexed {
		prefix, exc, err := parseStepTable(s.Steps, s.VMInsts, s.Records)
		if err != nil {
			return err
		}
		c.prefix = prefix
		for range s.VMInsts {
			c.stepRecs = append(c.stepRecs, 1)
		}
		for _, e := range exc {
			c.stepRecs[e.idx] = int32(e.recs)
		}
	} else {
		c.synthSteps(s.Records, openIn)
	}
	c.seg = i
	c.loaded = true
	return nil
}

// synthSteps reconstructs step boundaries for a legacy segment from
// the fused-record structure: the writer emits exactly one fused
// record per interpreter step — plain records (quickening work, the
// trailing halt step) attach to the step of the next fused record —
// and a fused record is recognizable after decode because it expands
// to more than one op.
func (c *Cursor) synthSteps(records int, openIn bool) {
	c.prefix = 0
	fused := func(r int) bool { return c.ends[r]-c.opOff(r) > 1 }
	r := 0
	if openIn {
		found := false
		for r < records {
			r++
			if fused(r - 1) {
				found = true
				break
			}
		}
		c.prefix = r
		if !found {
			c.prefixOpen = true
			return
		}
	}
	run := 0
	for ; r < records; r++ {
		run++
		if fused(r) {
			c.stepRecs = append(c.stepRecs, int32(run))
			run = 0
		}
	}
	if run > 0 {
		c.stepRecs = append(c.stepRecs, int32(run))
		c.tailOpen = true
	}
}

// peekPrefix reads segment j's step-table prefix without decoding its
// payload — how the cursor detects that the current segment's last
// step spills into the next.
func (c *Cursor) peekPrefix(j int) int {
	v, n := binary.Uvarint(c.t.Segs[j].Steps)
	if n <= 0 {
		return 0
	}
	return int(v)
}

// continuesAfter reports whether the loaded segment's last step
// continues into the next segment.
func (c *Cursor) continuesAfter() bool {
	if c.indexed {
		return c.seg+1 < len(c.t.Segs) && c.peekPrefix(c.seg+1) > 0
	}
	return c.tailOpen
}

// stitchContinues reports whether, after consuming the loaded segment
// j's prefix, the open step still runs on into segment j+1.
func (c *Cursor) stitchContinues(j int) bool {
	if c.indexed {
		return len(c.stepRecs) == 0 && j+1 < len(c.t.Segs) && c.peekPrefix(j+1) > 0
	}
	return c.prefixOpen
}

// compSeg advances seg so it names the segment a forward-moving
// compiled cursor at op offset pos is in: the first segment whose end
// reaches pos. At an exact boundary the cursor stays in the segment
// that just ended (its NextBatch delivers the empty remainder and
// advances), mirroring the decode path's deferred segment advance.
func (c *Cursor) compSeg() {
	for c.seg < len(c.comp.segEnds) && c.comp.segEnds[c.seg] < c.pos {
		c.seg++
	}
}

// Next returns the next step and advances. It returns false at the
// end of the trace or on a decode error (see Err).
func (c *Cursor) Next() (Step, bool) {
	if c.err != nil {
		return Step{}, false
	}
	if a := c.comp; a != nil {
		if c.inst >= uint64(len(a.instEnds)) {
			return Step{}, false
		}
		lo, hi := a.instStart(int(c.inst)), a.instEnds[c.inst]
		st := Step{Index: c.inst, Ops: a.ops[lo:hi]}
		c.inst++
		c.pos = hi
		c.compSeg()
		return st, true
	}
	for {
		if !c.loaded {
			if c.seg >= len(c.t.Segs) {
				return Step{}, false
			}
			if err := c.load(c.seg, false); err != nil {
				c.err = err
				return Step{}, false
			}
			c.stepI = 0
			// Records before the first step — the stream before the
			// first VM instruction — belong to no step and are
			// skipped (NextBatch still delivers them).
			if c.recOff < c.prefix {
				c.recOff = c.prefix
			}
		}
		if c.stepI < len(c.stepRecs) {
			break
		}
		c.seg++
		c.loaded = false
		c.recOff = 0
	}

	n := int(c.stepRecs[c.stepI])
	lo, hi := c.opOff(c.recOff), c.opOff(c.recOff+n)
	idx := c.inst
	if c.stepI < len(c.stepRecs)-1 || !c.continuesAfter() {
		c.stepI++
		c.recOff += n
		c.inst++
		return Step{Index: idx, Ops: c.ops[lo:hi]}, true
	}

	// The segment's last step spills into following segments: stitch
	// its pieces (the next segments' prefixes) into one op slice.
	c.stitch = append(c.stitch[:0], c.ops[lo:hi]...)
	for j := c.seg + 1; ; j++ {
		if j >= len(c.t.Segs) {
			c.seg, c.loaded, c.recOff = j, false, 0
			break
		}
		if err := c.load(j, true); err != nil {
			c.err = err
			return Step{}, false
		}
		c.stitch = append(c.stitch, c.ops[:c.opOff(c.prefix)]...)
		c.stepI = 0
		c.recOff = c.prefix
		if !c.stitchContinues(j) {
			break
		}
	}
	c.inst++
	return Step{Index: idx, Ops: c.stitch}, true
}

// Seek positions the cursor so the next Next returns the step with
// the given global VM-instruction index; seeking at or past the end
// makes Next return false. On an indexed (v3) trace this decodes only
// the target segment; on legacy traces it scans forward from the
// start (restarting when seeking backwards).
func (c *Cursor) Seek(inst uint64) error {
	if c.err != nil {
		return c.err
	}
	if a := c.comp; a != nil {
		if inst >= uint64(len(a.instEnds)) {
			c.seg, c.pos, c.inst = len(a.segEnds), len(a.ops), inst
			return nil
		}
		cum := c.index()
		// Position in the segment the instruction *begins* in (not
		// merely the one containing its start offset): a step starting
		// exactly at a seal belongs to the new segment, and NextBatch
		// after Seek must deliver from there — the decode path's
		// behavior.
		c.seg = sort.Search(len(c.t.Segs), func(s int) bool { return cum[s+1] > inst })
		c.pos = a.instStart(int(inst))
		c.inst = inst
		return nil
	}
	if c.indexed {
		cum := c.index()
		if inst >= cum[len(cum)-1] {
			c.seg, c.loaded, c.recOff, c.inst = len(c.t.Segs), false, 0, inst
			return nil
		}
		s := sort.Search(len(c.t.Segs), func(s int) bool { return cum[s+1] > inst })
		if c.seg != s || !c.loaded {
			if err := c.load(s, false); err != nil {
				c.err = err
				return err
			}
		}
		local := int(inst - cum[s])
		rec := c.prefix
		for k := range local {
			rec += int(c.stepRecs[k])
		}
		c.stepI, c.recOff, c.inst = local, rec, inst
		return nil
	}
	if inst < c.inst {
		c.seg, c.loaded, c.recOff, c.stepI, c.inst = 0, false, 0, 0, 0
	}
	for c.inst < inst {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	return c.err
}

// NextBatch appends every op from the cursor's position to the end of
// its current segment onto dst and advances to the next segment,
// returning false at the end of the trace or on a decode error. This
// is the bulk interface the replay schedules drive: batches preserve
// the exact op sequence (prefix records included), so applying every
// batch in order reproduces a full decode. On an indexed trace, step
// iteration afterwards resumes at the next segment's first step; on a
// legacy trace NextBatch does not advance step indices.
func (c *Cursor) NextBatch(dst []cpu.Op) ([]cpu.Op, bool) {
	if c.err != nil || c.seg >= len(c.t.Segs) {
		return dst, false
	}
	if a := c.comp; a != nil {
		dst = append(dst, a.ops[c.pos:a.segEnds[c.seg]]...)
		c.seg++
		c.pos = a.segEnds[c.seg-1]
		c.inst = c.index()[c.seg]
		return dst, true
	}
	if c.loaded {
		dst = append(dst, c.ops[c.opOff(c.recOff):]...)
	} else {
		var err error
		dst, c.scratch, err = c.t.Segs[c.seg].decodeOps(dst, c.scratch, nil)
		if err != nil {
			c.err = err
			return dst, false
		}
	}
	c.seg++
	c.loaded, c.recOff, c.stepI = false, 0, 0
	if c.indexed {
		c.inst = c.index()[c.seg]
	}
	return dst, true
}

// batchSeg decodes segment i into dst through the cursor's scratch
// buffers without moving the cursor — the out-of-order entry the
// pipelined replay's decode workers drive, one cursor per worker.
func (c *Cursor) batchSeg(i int, dst []cpu.Op) ([]cpu.Op, error) {
	var err error
	dst, c.scratch, err = c.t.Segs[i].decodeOps(dst, c.scratch, nil)
	return dst, err
}
