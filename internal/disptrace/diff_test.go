package disptrace_test

import (
	"errors"
	"testing"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/workload"
)

// diffPair records gray under two dispatch techniques at test scale.
func diffPair(t *testing.T) (a, b *disptrace.Trace) {
	t.Helper()
	w, err := workload.ByName("gray")
	if err != nil {
		t.Fatal(err)
	}
	s := harness.NewTestSuite()
	s.ScaleDiv = 40
	sw, err := harness.VariantByName(w, "switch")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := harness.VariantByName(w, "plain")
	if err != nil {
		t.Fatal(err)
	}
	a, _, err = s.RecordTrace(w, sw, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err = s.RecordTrace(w, pl, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestDiffSelfIdentical: any trace diffed against itself reports zero
// divergences, in every encoding generation.
func TestDiffSelfIdentical(t *testing.T) {
	a, _ := diffPair(t)
	for name, form := range cursorTraceForms(t, a) {
		r, err := disptrace.DiffTraces(a, form, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Identical || r.Divergences != 0 || r.FirstDivergence != -1 {
			t.Fatalf("%s: self-diff not identical: %+v", name, r)
		}
		if r.AInsts != a.Header.VMInstructions || r.Compared != r.AInsts {
			t.Fatalf("%s: self-diff counted %d/%d of %d insts", name, r.AInsts, r.Compared, a.Header.VMInstructions)
		}
	}
}

// TestDiffCrossTechnique: switch vs threaded dispatch of the same
// workload aligns instruction for instruction, diverges
// deterministically, and the report is stable across repeated runs
// and across the two traces' encoding generations.
func TestDiffCrossTechnique(t *testing.T) {
	a, b := diffPair(t)
	r, err := disptrace.DiffTraces(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.AInsts != r.BInsts {
		t.Fatalf("same guest execution, different instruction counts: %d vs %d", r.AInsts, r.BInsts)
	}
	if r.Identical || r.Divergences == 0 {
		t.Fatal("switch vs threaded dispatch cannot be identical")
	}
	if r.FirstDivergence < 0 {
		t.Fatal("divergences found but no first index")
	}
	if len(r.First) != 3 {
		t.Fatalf("asked for 3 detailed divergences, got %d", len(r.First))
	}
	if got := uint64(len(r.First[0].Fields)); got == 0 {
		t.Fatal("detailed divergence names no fields")
	}
	// Switch dispatch funnels every dispatch through one shared
	// indirect branch (Table I): side A's branch address must repeat
	// while side B's differs per instruction.
	if r.First[0].A.Branch != r.First[1].A.Branch {
		t.Errorf("switch dispatch branches from %#x then %#x; expected one shared branch",
			r.First[0].A.Branch, r.First[1].A.Branch)
	}
	if r.First[0].B.Branch == r.First[1].B.Branch {
		t.Errorf("threaded dispatch reuses branch %#x; expected per-instruction branches", r.First[0].B.Branch)
	}

	// Determinism: recomputing and mixing encodings changes nothing.
	for name, form := range cursorTraceForms(t, b) {
		r2, err := disptrace.DiffTraces(a, form, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r2.FirstDivergence != r.FirstDivergence || r2.Divergences != r.Divergences ||
			r2.WorkDiffs != r.WorkDiffs || r2.FetchDiffs != r.FetchDiffs || r2.DispatchDiffs != r.DispatchDiffs {
			t.Fatalf("%s: diff not deterministic:\n  first %+v\n  again %+v", name, r, r2)
		}
	}
}

// TestDiffMismatched: traces of different workloads, scales or ISA
// revisions refuse to align.
func TestDiffMismatched(t *testing.T) {
	a, _ := diffPair(t)
	other := *a
	other.Header.Workload = "tscp"
	if _, err := disptrace.DiffTraces(a, &other, 1); !errors.Is(err, disptrace.ErrMismatched) {
		t.Errorf("different workloads: got %v, want ErrMismatched", err)
	}
	other = *a
	other.Header.Scale++
	if _, err := disptrace.DiffTraces(a, &other, 1); !errors.Is(err, disptrace.ErrMismatched) {
		t.Errorf("different scales: got %v, want ErrMismatched", err)
	}
	other = *a
	other.Header.ISAHash ^= 1
	if _, err := disptrace.DiffTraces(a, &other, 1); !errors.Is(err, disptrace.ErrMismatched) {
		t.Errorf("different ISAs: got %v, want ErrMismatched", err)
	}
}

// TestDiffLengthMismatch: a truncated side still aligns its compared
// prefix and the report exposes the unequal totals.
func TestDiffLengthMismatch(t *testing.T) {
	evsA := stepEvents(100, 11)
	evsB := stepEvents(100, 11)[:len(stepEvents(60, 11))] // same prefix, shorter
	wa := disptrace.NewWriter(testHeader())
	feedEvents(wa, evsA)
	wb := disptrace.NewWriter(testHeader())
	feedEvents(wb, evsB)
	a, b := wa.Trace(), wb.Trace()
	r, err := disptrace.DiffTraces(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.AInsts <= r.BInsts || r.Compared != r.BInsts {
		t.Fatalf("length mismatch mishandled: %+v", r)
	}
	if r.Identical {
		t.Fatal("unequal lengths reported identical")
	}
	if r.Divergences != 0 {
		t.Fatalf("identical prefix reported %d divergences", r.Divergences)
	}
}
