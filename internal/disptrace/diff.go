// Trace diffing: align two dispatch traces of the same workload by VM
// instruction index and report where their streams diverge. This is
// the paper's Tables I-IV turned into a tool — the worked examples
// walk exactly this comparison (the same guest program under switch,
// threaded, replicated and superinstruction dispatch) by hand.
//
// Alignment by VM instruction is sound because the guest execution is
// technique-independent: every variant steps the same program through
// the same states, so instruction k of one trace and instruction k of
// the other are the same guest-level event even when their native
// code layout, work counts and dispatch behavior differ — which is
// precisely what the diff measures.
package disptrace

import (
	"errors"
	"fmt"
)

// ErrMismatched reports two traces that cannot be aligned: different
// workloads, scales or ISA revisions record different guest
// executions, so an instruction-indexed comparison would be
// meaningless. Callers distinguish it from I/O or decode failures
// with errors.Is.
var ErrMismatched = errors.New("disptrace: traces record different workloads")

// StepDiff condenses one VM instruction's stream for comparison: the
// per-step fields the paper's trace tables show.
type StepDiff struct {
	// Work is the step's straight-line native instruction count.
	Work uint64 `json:"work"`
	// Fetch is the step's first fetch address — where the VM
	// instruction's implementation lives (replication and
	// superinstructions move it).
	Fetch uint64 `json:"fetch"`
	// Dispatched reports whether the step ended in an indirect
	// dispatch; Branch and Target are its addresses when it did.
	Dispatched bool   `json:"dispatched"`
	Branch     uint64 `json:"branch,omitempty"`
	Target     uint64 `json:"target,omitempty"`
}

// summarizeStep extracts the comparable fields of a step.
func summarizeStep(st Step) StepDiff {
	d := StepDiff{Work: st.Work()}
	d.Fetch, _ = st.Fetch()
	d.Branch, d.Target, d.Dispatched = st.Dispatch()
	return d
}

// Divergence is one aligned instruction whose streams differ.
type Divergence struct {
	// Inst is the VM-instruction index the divergence occurred at.
	Inst uint64 `json:"inst"`
	// Fields names what differs: "work", "fetch", "dispatch".
	Fields []string `json:"fields"`
	A      StepDiff `json:"a"`
	B      StepDiff `json:"b"`
}

// DiffReport is the result of aligning two traces instruction by
// instruction.
type DiffReport struct {
	// Workload, Lang, Scale and ISAHash are the shared recording
	// configuration; AVariant/BVariant (with techniques) identify the
	// two sides.
	Workload   string `json:"workload"`
	Lang       string `json:"lang"`
	Scale      uint64 `json:"scale"`
	ISAHash    uint64 `json:"isa_hash"`
	AVariant   string `json:"a_variant"`
	ATechnique string `json:"a_technique"`
	BVariant   string `json:"b_variant"`
	BTechnique string `json:"b_technique"`

	// AInsts and BInsts are each side's instruction count; Compared
	// is the aligned range (their minimum).
	AInsts   uint64 `json:"a_insts"`
	BInsts   uint64 `json:"b_insts"`
	Compared uint64 `json:"compared"`

	// Divergences counts aligned instructions that differ in any
	// field; the per-field counters break that down (one instruction
	// can differ in several).
	Divergences   uint64 `json:"divergences"`
	WorkDiffs     uint64 `json:"work_diffs"`
	FetchDiffs    uint64 `json:"fetch_diffs"`
	DispatchDiffs uint64 `json:"dispatch_diffs"`

	// FirstDivergence is the index of the first divergent instruction
	// (-1 when the compared range is identical).
	FirstDivergence int64 `json:"first_divergence"`
	// First details the first few divergences (up to the caller's
	// bound).
	First []Divergence `json:"first,omitempty"`

	// Identical reports byte-level stream agreement: no divergences
	// and equal instruction counts.
	Identical bool `json:"identical"`
}

// DiffTraces aligns two traces of the same workload by VM instruction
// index and reports where their dispatch streams diverge, detailing
// the first maxDetail divergences. The traces must share workload,
// language, scale and ISA hash (ErrMismatched otherwise); variants
// and techniques are exactly what is expected to differ.
func DiffTraces(a, b *Trace, maxDetail int) (*DiffReport, error) {
	ah, bh := a.Header, b.Header
	if ah.Workload != bh.Workload || ah.Lang != bh.Lang ||
		ah.Scale != bh.Scale || ah.ISAHash != bh.ISAHash {
		return nil, fmt.Errorf("%w: %s/%s scale %d isa %#x vs %s/%s scale %d isa %#x",
			ErrMismatched, ah.Workload, ah.Lang, ah.Scale, ah.ISAHash,
			bh.Workload, bh.Lang, bh.Scale, bh.ISAHash)
	}
	if maxDetail < 0 {
		maxDetail = 0
	}
	r := &DiffReport{
		Workload: ah.Workload, Lang: ah.Lang, Scale: ah.Scale, ISAHash: ah.ISAHash,
		AVariant: ah.Variant, ATechnique: ah.Technique,
		BVariant: bh.Variant, BTechnique: bh.Technique,
		FirstDivergence: -1,
	}

	ca, cb := NewCursor(a), NewCursor(b)
	for {
		sa, okA := ca.Next()
		sb, okB := cb.Next()
		if !okA || !okB {
			// Count the longer side's remainder. An indexed trace's
			// total is already known (Decode validated the segment
			// index against the header), so only legacy traces pay
			// for decoding the tail they never compare.
			if okA {
				if ca.Indexed() {
					r.AInsts = a.Header.VMInstructions
				} else {
					for okA {
						r.AInsts++
						_, okA = ca.Next()
					}
				}
			}
			if okB {
				if cb.Indexed() {
					r.BInsts = b.Header.VMInstructions
				} else {
					for okB {
						r.BInsts++
						_, okB = cb.Next()
					}
				}
			}
			break
		}
		r.AInsts++
		r.BInsts++
		r.Compared++
		da, db := summarizeStep(sa), summarizeStep(sb)
		var fields []string
		if da.Work != db.Work {
			fields = append(fields, "work")
			r.WorkDiffs++
		}
		if da.Fetch != db.Fetch {
			fields = append(fields, "fetch")
			r.FetchDiffs++
		}
		if da.Dispatched != db.Dispatched || da.Branch != db.Branch || da.Target != db.Target {
			fields = append(fields, "dispatch")
			r.DispatchDiffs++
		}
		if len(fields) == 0 {
			continue
		}
		if r.Divergences == 0 {
			r.FirstDivergence = int64(sa.Index)
		}
		r.Divergences++
		if len(r.First) < maxDetail {
			r.First = append(r.First, Divergence{Inst: sa.Index, Fields: fields, A: da, B: db})
		}
	}
	if err := ca.Err(); err != nil {
		return nil, fmt.Errorf("disptrace: diff side A: %w", err)
	}
	if err := cb.Err(); err != nil {
		return nil, fmt.Errorf("disptrace: diff side B: %w", err)
	}
	r.Identical = r.Divergences == 0 && r.AInsts == r.BInsts
	return r, nil
}
