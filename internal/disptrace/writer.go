package disptrace

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Writer records the event stream of one simulated run into an
// in-memory trace. It implements cpu.Sink: attach it to a cpu.Sim and
// run the engine, then call Trace to finalize.
//
// The writer buffers up to four events to recognize the engine's
// per-step shapes and emit them as fused step records (tagStepSeq /
// tagStepDisp); any sequence that breaks a pattern is flushed as
// plain records, so arbitrary streams remain encodable. Records are
// buffered per segment with delta bases reset at every segment
// boundary, so the finished trace decodes segment-parallel.
type Writer struct {
	h          Header
	segLimit   int
	cur        []byte
	curRecords int
	segs       []Segment

	prevFetch, prevBranch, prevTarget uint64

	// pending holds buffered events not yet emitted; only the prefix
	// shapes [W], [W,F], [W,F,W], [W,F,W,F] occur.
	pending [4]pendingEvent
	npend   int
}

// pendingEvent is one buffered Work (a = n) or Fetch (a = addr,
// b = size) awaiting pattern resolution.
type pendingEvent struct {
	kind Kind
	a, b uint64
}

// NewWriter starts a trace with the given metadata (the writer fills
// the stream totals itself).
func NewWriter(h Header) *Writer {
	h.VMInstructions = 0
	h.CodeBytes = 0
	h.Records = 0
	h.Dispatches = 0
	h.Fetches = 0
	h.WorkInstrs = 0
	return &Writer{h: h, segLimit: DefaultSegmentRecords}
}

// endRecord accounts one appended record and seals the segment at the
// limit.
func (w *Writer) endRecord() {
	w.h.Records++
	w.curRecords++
	if w.curRecords >= w.segLimit {
		w.flushSegment()
	}
}

func (w *Writer) flushSegment() {
	if w.curRecords == 0 {
		return
	}
	w.segs = append(w.segs, Segment{Data: w.cur, Records: w.curRecords})
	w.cur = nil
	w.curRecords = 0
	w.prevFetch, w.prevBranch, w.prevTarget = 0, 0, 0
}

// emitWork appends a plain work record.
func (w *Writer) emitWork(n uint64) {
	if n <= maxInlineWork {
		w.cur = append(w.cur, byte(tagWorkBase+n))
	} else {
		w.cur = append(w.cur, tagWorkExt)
		w.cur = binary.AppendUvarint(w.cur, n)
	}
	w.endRecord()
}

// emitFetch appends a plain fetch record.
func (w *Writer) emitFetch(addr, size uint64) {
	w.cur = append(w.cur, tagFetch)
	w.cur = binary.AppendVarint(w.cur, int64(addr-w.prevFetch))
	w.cur = binary.AppendUvarint(w.cur, size)
	w.prevFetch = addr
	w.endRecord()
}

// emitDispatch appends a plain dispatch record.
func (w *Writer) emitDispatch(branch, hint, target uint64) {
	w.cur = append(w.cur, tagDispatch)
	w.cur = binary.AppendVarint(w.cur, int64(branch-w.prevBranch))
	w.cur = binary.AppendUvarint(w.cur, hint)
	w.cur = binary.AppendVarint(w.cur, int64(target-w.prevTarget))
	w.prevBranch, w.prevTarget = branch, target
	w.endRecord()
}

// emitStepSeq fuses pending [W, F, W] into one record.
func (w *Writer) emitStepSeq() {
	p := &w.pending
	w.cur = append(w.cur, tagStepSeq)
	w.cur = binary.AppendUvarint(w.cur, p[0].a)
	w.cur = binary.AppendVarint(w.cur, int64(p[1].a-w.prevFetch))
	w.cur = binary.AppendUvarint(w.cur, p[1].b)
	w.cur = binary.AppendUvarint(w.cur, p[2].a)
	w.prevFetch = p[1].a
	w.npend = 0
	w.endRecord()
}

// emitStepDisp fuses pending [W, F, W, F] plus the dispatch (whose
// branch equals the second fetch address) into one record.
func (w *Writer) emitStepDisp(branch, hint, target uint64) {
	p := &w.pending
	w.cur = append(w.cur, tagStepDisp)
	w.cur = binary.AppendUvarint(w.cur, p[0].a)
	w.cur = binary.AppendVarint(w.cur, int64(p[1].a-w.prevFetch))
	w.cur = binary.AppendUvarint(w.cur, p[1].b)
	w.cur = binary.AppendUvarint(w.cur, p[2].a)
	w.cur = binary.AppendUvarint(w.cur, p[3].b)
	w.cur = binary.AppendVarint(w.cur, int64(branch-w.prevBranch))
	w.cur = binary.AppendUvarint(w.cur, hint)
	w.cur = binary.AppendVarint(w.cur, int64(target-w.prevTarget))
	w.prevFetch = branch // the step's last fetch
	w.prevBranch, w.prevTarget = branch, target
	w.npend = 0
	w.endRecord()
}

// flushPending emits every buffered event as plain records.
func (w *Writer) flushPending() {
	for i := 0; i < w.npend; i++ {
		p := w.pending[i]
		if p.kind == KWork {
			w.emitWork(p.a)
		} else {
			w.emitFetch(p.a, p.b)
		}
	}
	w.npend = 0
}

// RecordWork implements cpu.Sink.
func (w *Writer) RecordWork(n int) {
	if n < 0 {
		n = 0
	}
	w.h.WorkInstrs += uint64(n)
	switch w.npend {
	case 0:
		// Starts a step pattern.
	case 2:
		// [W, F] + W: still a valid prefix of both patterns.
	case 3:
		// [W, F, W] + W: the buffered events are a complete
		// fall-through step; the new work starts the next one.
		w.emitStepSeq()
	default:
		// [W] + W or [W, F, W, F] + W: no pattern fits.
		w.flushPending()
	}
	w.pending[w.npend] = pendingEvent{kind: KWork, a: uint64(n)}
	w.npend++
}

// RecordFetch implements cpu.Sink.
func (w *Writer) RecordFetch(addr uint64, size int) {
	if size < 0 {
		size = 0
	}
	w.h.Fetches++
	switch w.npend {
	case 1, 3:
		// [W] + F or [W, F, W] + F: valid prefix, keep buffering.
		w.pending[w.npend] = pendingEvent{kind: KFetch, a: addr, b: uint64(size)}
		w.npend++
	default:
		// A fetch can only follow a work inside a pattern.
		w.flushPending()
		w.emitFetch(addr, uint64(size))
	}
}

// RecordDispatch implements cpu.Sink.
func (w *Writer) RecordDispatch(branch, hint, target uint64) {
	w.h.Dispatches++
	if w.npend == 4 && w.pending[3].a == branch {
		w.emitStepDisp(branch, hint, target)
		return
	}
	w.flushPending()
	w.emitDispatch(branch, hint, target)
}

// RecordVMInst implements cpu.Sink.
func (w *Writer) RecordVMInst() { w.h.VMInstructions++ }

// RecordCodeBytes implements cpu.Sink.
func (w *Writer) RecordCodeBytes(n uint64) { w.h.CodeBytes += n }

// Trace seals pending events and the current segment and returns the
// finished trace. The writer must not be used afterwards.
func (w *Writer) Trace() *Trace {
	w.flushPending()
	w.flushSegment()
	return &Trace{Header: w.h, Segs: w.segs}
}

// Save writes the trace to path atomically (temp file + rename), so a
// crashed or concurrent writer never leaves a half-written trace
// behind for readers to trip over. Segment payloads are compressed
// with DefaultCodec on the way out (SaveCodec chooses explicitly).
func (t *Trace) Save(path string) error { return t.SaveCodec(path, DefaultCodec) }

// SaveCodec is Save with an explicit segment codec.
func (t *Trace) SaveCodec(path string, c Codec) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("disptrace: %w", err)
	}
	f, err := os.CreateTemp(dir, ".vmdt-*")
	if err != nil {
		return fmt.Errorf("disptrace: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(t.EncodeCodec(c))
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("disptrace: saving %s: %w", path, werr)
	}
	return nil
}

// Load reads and decodes a trace file.
func Load(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("disptrace: %w", err)
	}
	t, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("disptrace: loading %s: %w", path, err)
	}
	return t, nil
}
