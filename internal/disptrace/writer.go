package disptrace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Writer records the event stream of one simulated run into an
// in-memory trace. It implements cpu.Sink: attach it to a cpu.Sim and
// run the engine, then call Trace to finalize.
//
// The writer buffers up to four events to recognize the engine's
// per-step shapes and emit them as fused step records (tagStepSeq /
// tagStepDisp); any sequence that breaks a pattern is flushed as
// plain records, so arbitrary streams remain encodable. Records are
// buffered per segment with delta bases reset at every segment
// boundary, so the finished trace decodes segment-parallel.
//
// The writer also attributes every record to the VM instruction it
// belongs to (RecordVMInst marks instruction starts) and seals
// segments at instruction boundaries, building the v3 step tables
// that make the finished trace seekable by instruction index.
// Streams that never report a VM instruction seal at the plain record
// limit, exactly like the v2 writer did.
type Writer struct {
	h          Header
	segLimit   int
	cur        []byte
	curRecords int
	segs       []Segment

	prevFetch, prevBranch, prevTarget uint64

	// pending holds buffered events not yet emitted; only the prefix
	// shapes [W], [W,F], [W,F,W], [W,F,W,F] occur.
	pending [4]pendingEvent
	npend   int

	// Step attribution for the current segment. stepOpen marks a VM
	// instruction whose records are currently being emitted (stepRecs
	// counts them, stepIdx is its segment-local index); pendingSteps
	// counts instructions announced by RecordVMInst that have not
	// received a record yet — they materialize in whichever segment
	// their first record lands in, or as empty trailing steps at
	// finalization. segPrefix counts records emitted while no step is
	// open (the continuation of a step sealed mid-instruction, or the
	// stream before the first VM instruction). sealDue defers a due
	// segment seal to the next instruction boundary.
	stepOpen     bool
	stepRecs     int
	stepIdx      int
	pendingSteps int
	segPrefix    int
	segInsts     int
	segExc       []stepExc
	sealDue      bool
	metas        []segMeta
}

// segMeta is the unencoded step table of one sealed segment; tables
// are serialized together at finalization so trailing empty
// instructions can still be folded into the last segment.
type segMeta struct {
	prefix int
	insts  int
	exc    []stepExc
}

// pendingEvent is one buffered Work (a = n) or Fetch (a = addr,
// b = size) awaiting pattern resolution.
type pendingEvent struct {
	kind Kind
	a, b uint64
}

// NewWriter starts a trace with the given metadata (the writer fills
// the stream totals itself).
func NewWriter(h Header) *Writer {
	h.VMInstructions = 0
	h.CodeBytes = 0
	h.Records = 0
	h.Dispatches = 0
	h.Fetches = 0
	h.WorkInstrs = 0
	return &Writer{h: h, segLimit: DefaultSegmentRecords}
}

// endRecord accounts one appended record — attributing it to the open
// VM instruction, materializing instructions still pending their
// first record, or counting it into the segment prefix — and seals
// the segment when the limit allows. Segments seal immediately at the
// limit while no instruction is open (matching the v2 writer for
// streams that never report instructions); with one open they seal at
// the next instruction boundary (RecordVMInst), falling back to a
// mid-instruction seal at twice the limit so a pathological stream
// cannot grow a segment unboundedly.
func (w *Writer) endRecord() {
	w.h.Records++
	w.curRecords++
	if w.pendingSteps > 0 {
		// Instructions that arrived with no records of their own
		// become empty steps here; the newest one claims this record.
		for ; w.pendingSteps > 1; w.pendingSteps-- {
			w.segExc = append(w.segExc, stepExc{idx: w.segInsts, recs: 0})
			w.segInsts++
		}
		w.pendingSteps = 0
		w.stepOpen = true
		w.stepIdx = w.segInsts
		w.stepRecs = 0
		w.segInsts++
	}
	if w.stepOpen {
		w.stepRecs++
	} else {
		w.segPrefix++
	}
	if w.curRecords >= w.segLimit {
		if !w.stepOpen {
			w.flushSegment()
		} else if w.curRecords >= 2*w.segLimit {
			// Mid-instruction seal: close the open step with its
			// in-segment record count; its remaining records become
			// the next segment's prefix and the cursor stitches them
			// back together.
			w.closeStep()
			w.flushSegment()
		} else {
			w.sealDue = true
		}
	}
}

// closeStep finishes the open instruction's record attribution,
// adding a step-table exception when it spans more or fewer than the
// default single record.
func (w *Writer) closeStep() {
	if !w.stepOpen {
		return
	}
	if w.stepRecs != 1 {
		w.segExc = append(w.segExc, stepExc{idx: w.stepIdx, recs: w.stepRecs})
	}
	w.stepOpen = false
}

func (w *Writer) flushSegment() {
	w.sealDue = false
	if w.curRecords == 0 && w.segInsts == 0 {
		return
	}
	w.segs = append(w.segs, Segment{Data: w.cur, Records: w.curRecords})
	w.metas = append(w.metas, segMeta{prefix: w.segPrefix, insts: w.segInsts, exc: w.segExc})
	w.cur = nil
	w.curRecords = 0
	w.segPrefix, w.segInsts, w.segExc = 0, 0, nil
	w.prevFetch, w.prevBranch, w.prevTarget = 0, 0, 0
}

// emitWork appends a plain work record.
func (w *Writer) emitWork(n uint64) {
	if n <= maxInlineWork {
		w.cur = append(w.cur, byte(tagWorkBase+n))
	} else {
		w.cur = append(w.cur, tagWorkExt)
		w.cur = binary.AppendUvarint(w.cur, n)
	}
	w.endRecord()
}

// emitFetch appends a plain fetch record.
func (w *Writer) emitFetch(addr, size uint64) {
	w.cur = append(w.cur, tagFetch)
	w.cur = binary.AppendVarint(w.cur, int64(addr-w.prevFetch))
	w.cur = binary.AppendUvarint(w.cur, size)
	w.prevFetch = addr
	w.endRecord()
}

// emitDispatch appends a plain dispatch record.
func (w *Writer) emitDispatch(branch, hint, target uint64) {
	w.cur = append(w.cur, tagDispatch)
	w.cur = binary.AppendVarint(w.cur, int64(branch-w.prevBranch))
	w.cur = binary.AppendUvarint(w.cur, hint)
	w.cur = binary.AppendVarint(w.cur, int64(target-w.prevTarget))
	w.prevBranch, w.prevTarget = branch, target
	w.endRecord()
}

// emitStepSeq fuses pending [W, F, W] into one record.
func (w *Writer) emitStepSeq() {
	p := &w.pending
	w.cur = append(w.cur, tagStepSeq)
	w.cur = binary.AppendUvarint(w.cur, p[0].a)
	w.cur = binary.AppendVarint(w.cur, int64(p[1].a-w.prevFetch))
	w.cur = binary.AppendUvarint(w.cur, p[1].b)
	w.cur = binary.AppendUvarint(w.cur, p[2].a)
	w.prevFetch = p[1].a
	w.npend = 0
	w.endRecord()
}

// emitStepDisp fuses pending [W, F, W, F] plus the dispatch (whose
// branch equals the second fetch address) into one record.
func (w *Writer) emitStepDisp(branch, hint, target uint64) {
	p := &w.pending
	w.cur = append(w.cur, tagStepDisp)
	w.cur = binary.AppendUvarint(w.cur, p[0].a)
	w.cur = binary.AppendVarint(w.cur, int64(p[1].a-w.prevFetch))
	w.cur = binary.AppendUvarint(w.cur, p[1].b)
	w.cur = binary.AppendUvarint(w.cur, p[2].a)
	w.cur = binary.AppendUvarint(w.cur, p[3].b)
	w.cur = binary.AppendVarint(w.cur, int64(branch-w.prevBranch))
	w.cur = binary.AppendUvarint(w.cur, hint)
	w.cur = binary.AppendVarint(w.cur, int64(target-w.prevTarget))
	w.prevFetch = branch // the step's last fetch
	w.prevBranch, w.prevTarget = branch, target
	w.npend = 0
	w.endRecord()
}

// flushPending emits every buffered event as plain records.
func (w *Writer) flushPending() {
	for i := 0; i < w.npend; i++ {
		p := w.pending[i]
		if p.kind == KWork {
			w.emitWork(p.a)
		} else {
			w.emitFetch(p.a, p.b)
		}
	}
	w.npend = 0
}

// RecordWork implements cpu.Sink.
func (w *Writer) RecordWork(n int) {
	if n < 0 {
		n = 0
	}
	w.h.WorkInstrs += uint64(n)
	switch w.npend {
	case 0:
		// Starts a step pattern.
	case 2:
		// [W, F] + W: still a valid prefix of both patterns.
	case 3:
		// [W, F, W] + W: the buffered events are a complete
		// fall-through step; the new work starts the next one.
		w.emitStepSeq()
	default:
		// [W] + W or [W, F, W, F] + W: no pattern fits.
		w.flushPending()
	}
	w.pending[w.npend] = pendingEvent{kind: KWork, a: uint64(n)}
	w.npend++
}

// RecordFetch implements cpu.Sink.
func (w *Writer) RecordFetch(addr uint64, size int) {
	if size < 0 {
		size = 0
	}
	w.h.Fetches++
	switch w.npend {
	case 1, 3:
		// [W] + F or [W, F, W] + F: valid prefix, keep buffering.
		w.pending[w.npend] = pendingEvent{kind: KFetch, a: addr, b: uint64(size)}
		w.npend++
	default:
		// A fetch can only follow a work inside a pattern.
		w.flushPending()
		w.emitFetch(addr, uint64(size))
	}
}

// RecordDispatch implements cpu.Sink.
func (w *Writer) RecordDispatch(branch, hint, target uint64) {
	w.h.Dispatches++
	if w.npend == 4 && w.pending[3].a == branch {
		w.emitStepDisp(branch, hint, target)
		return
	}
	w.flushPending()
	w.emitDispatch(branch, hint, target)
}

// RecordVMInst implements cpu.Sink. It marks the boundary between VM
// instructions: buffered events are resolved so every record lands in
// the instruction that produced it (the engine always follows an
// instruction's trailing [W,F,W] with another work event, so fusing
// it here emits the exact bytes lazy fusion would), the finished
// instruction's step-table entry is closed, and a due segment seal
// runs — segments therefore break at instruction boundaries and the
// step tables stay exact.
func (w *Writer) RecordVMInst() {
	w.h.VMInstructions++
	if w.npend == 3 {
		w.emitStepSeq()
	} else if w.npend != 0 {
		w.flushPending()
	}
	w.closeStep()
	if w.sealDue {
		w.flushSegment()
	}
	w.pendingSteps++
}

// RecordCodeBytes implements cpu.Sink.
func (w *Writer) RecordCodeBytes(n uint64) { w.h.CodeBytes += n }

// Trace seals pending events, steps and the current segment, encodes
// the per-segment step tables, and returns the finished trace. The
// writer must not be used afterwards.
func (w *Writer) Trace() *Trace {
	w.flushPending()
	w.closeStep()
	// Instructions announced but never followed by a record become
	// empty trailing steps; fold them into the last sealed segment
	// when the current one holds nothing else, so finalization never
	// appends an empty segment to a non-empty trace.
	if w.pendingSteps > 0 {
		if w.curRecords == 0 && w.segInsts == 0 && len(w.metas) > 0 {
			last := &w.metas[len(w.metas)-1]
			for range w.pendingSteps {
				last.exc = append(last.exc, stepExc{idx: last.insts, recs: 0})
				last.insts++
			}
		} else {
			for range w.pendingSteps {
				w.segExc = append(w.segExc, stepExc{idx: w.segInsts, recs: 0})
				w.segInsts++
			}
		}
		w.pendingSteps = 0
	}
	w.flushSegment()
	for i := range w.segs {
		w.segs[i].VMInsts = w.metas[i].insts
		w.segs[i].Steps = encodeStepTable(w.metas[i].prefix, w.metas[i].exc)
	}
	return &Trace{Header: w.h, Segs: w.segs}
}

// Save writes the trace to path atomically (temp file + rename), so a
// crashed or concurrent writer never leaves a half-written trace
// behind for readers to trip over. Segment payloads are compressed
// with DefaultCodec on the way out (SaveCodec chooses explicitly).
func (t *Trace) Save(path string) error { return t.SaveCodec(path, DefaultCodec) }

// SaveCodec is Save with an explicit segment codec.
func (t *Trace) SaveCodec(path string, c Codec) error {
	return atomicWrite(path, t.EncodeCodec(c))
}

// atomicWrite writes b to path via a temp file + rename in path's
// directory (created if needed), so readers only ever observe whole
// files. The cache's fault-injected store path shares it with Save.
func atomicWrite(path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("disptrace: %w", err)
	}
	f, err := os.CreateTemp(dir, ".vmdt-*")
	if err != nil {
		return fmt.Errorf("disptrace: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("disptrace: saving %s: %w", path, werr)
	}
	return nil
}

// Load reads and decodes a trace file.
func Load(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("disptrace: %w", err)
	}
	t, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("disptrace: loading %s: %w", path, err)
	}
	return t, nil
}

// metaReadAhead is the prefix ReadMeta reads first: the header and
// segment index of any realistic trace fit comfortably (the index
// costs ~10 bytes per 16Ki-record segment), so listing a cache
// directory reads a few KB per file instead of whole traces.
const metaReadAhead = 64 << 10

// ReadMeta reads a trace file's metadata — header and segment index —
// without loading or inflating its payloads. It reads a small prefix
// and falls back to the whole file only when the index genuinely
// extends past it.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, fmt.Errorf("disptrace: %w", err)
	}
	defer f.Close()
	buf := make([]byte, metaReadAhead)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return Meta{}, fmt.Errorf("disptrace: %w", err)
	}
	m, merr := DecodeMeta(buf[:n])
	if merr == nil {
		return m, nil
	}
	if n < metaReadAhead {
		// The whole file fit in the prefix; the failure is real.
		return Meta{}, fmt.Errorf("disptrace: reading metadata of %s: %w", path, merr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, fmt.Errorf("disptrace: %w", err)
	}
	m, merr = DecodeMeta(b)
	if merr != nil {
		return Meta{}, fmt.Errorf("disptrace: reading metadata of %s: %w", path, merr)
	}
	return m, nil
}
