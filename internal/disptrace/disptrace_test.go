package disptrace_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/metrics"
	"vmopt/internal/workload"
)

// testHeader returns a minimal header for codec tests.
func testHeader() disptrace.Header {
	return disptrace.Header{
		Workload: "gray", Lang: "forth", Variant: "plain", Technique: "plain",
		Scale: 7, ScaleDiv: 40, MaxSteps: 1000, ISAHash: 0xdeadbeef,
	}
}

// feed drives records into a writer.
func feed(w *disptrace.Writer, recs []disptrace.Record) {
	for _, r := range recs {
		switch r.Kind {
		case disptrace.KWork:
			w.RecordWork(int(r.A))
		case disptrace.KFetch:
			w.RecordFetch(r.A, int(r.B))
		case disptrace.KDispatch:
			w.RecordDispatch(r.A, r.B, r.C)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	recs := []disptrace.Record{
		{Kind: disptrace.KWork, A: 0},
		{Kind: disptrace.KWork, A: 3},
		{Kind: disptrace.KWork, A: 300}, // beyond the inline-tag range
		{Kind: disptrace.KFetch, A: 0x2000, B: 24},
		{Kind: disptrace.KFetch, A: 0x1fc0, B: 8}, // negative delta
		{Kind: disptrace.KDispatch, A: 0x2040, B: 7, C: 0x2100},
		{Kind: disptrace.KDispatch, A: 0x2140, B: 2, C: 0x2000},
		{Kind: disptrace.KWork, A: 1 << 40}, // huge work burst
		{Kind: disptrace.KFetch, A: 1<<63 + 5, B: 64},
		{Kind: disptrace.KDispatch, A: 1 << 62, B: 1 << 30, C: 3},
	}
	w := disptrace.NewWriter(testHeader())
	w.RecordCodeBytes(4096)
	w.RecordVMInst()
	w.RecordVMInst()
	feed(w, recs)
	tr := w.Trace()

	if tr.Header.Records != uint64(len(recs)) || tr.Header.Dispatches != 3 ||
		tr.Header.Fetches != 3 || tr.Header.VMInstructions != 2 || tr.Header.CodeBytes != 4096 {
		t.Fatalf("writer totals wrong: %+v", tr.Header)
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}

	got, err := disptrace.Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header round trip: got %+v want %+v", got.Header, tr.Header)
	}
	back, err := got.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, back[i], recs[i])
		}
	}
}

// TestSegmentation: a stream longer than one segment round-trips and
// the per-segment delta reset keeps every segment independently
// decodable.
func TestSegmentation(t *testing.T) {
	var recs []disptrace.Record
	addr := uint64(0x4000)
	for i := range 3*disptrace.DefaultSegmentRecords + 17 {
		switch i % 3 {
		case 0:
			recs = append(recs, disptrace.Record{Kind: disptrace.KWork, A: uint64(i % 97)})
		case 1:
			addr += uint64(i%53) * 8
			recs = append(recs, disptrace.Record{Kind: disptrace.KFetch, A: addr, B: uint64(4 + i%60)})
		default:
			recs = append(recs, disptrace.Record{Kind: disptrace.KDispatch, A: addr + 16, B: uint64(i % 255), C: addr ^ 0x80})
		}
	}
	w := disptrace.NewWriter(testHeader())
	feed(w, recs)
	tr := w.Trace()
	if len(tr.Segs) != 4 {
		t.Fatalf("expected 4 segments, got %d", len(tr.Segs))
	}
	// Middle segments decode standalone (delta bases reset).
	if _, err := tr.Segs[2].Decode(nil); err != nil {
		t.Fatalf("standalone segment decode: %v", err)
	}
	back, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d diverged after segmentation: got %+v want %+v", i, back[i], recs[i])
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	w := disptrace.NewWriter(testHeader())
	feed(w, []disptrace.Record{
		{Kind: disptrace.KDispatch, A: 0x40, B: 1, C: 0x80},
		{Kind: disptrace.KWork, A: 12},
	})
	enc := w.Trace().Encode()

	if _, err := disptrace.Decode(nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := disptrace.Decode([]byte("VMXT????????????")); err == nil {
		t.Error("bad magic must error")
	}
	short := enc[:len(enc)-1]
	if _, err := disptrace.Decode(short); err == nil {
		t.Error("truncated trace must error")
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		if tr, err := disptrace.Decode(mut); err == nil {
			// A flip that lands in the checksum's own bytes can only
			// produce a mismatch; anywhere else it must be caught by
			// magic/version/crc checks. Surviving decode untouched
			// means corruption went unnoticed.
			if tr.Header == w.Trace().Header {
				t.Errorf("flip at byte %d decoded to the original", i)
			}
			t.Errorf("flip at byte %d not detected", i)
		}
	}
}

// TestV1BackwardCompat: traces written in the legacy v1 layout (raw
// payloads, no codec byte) must still decode to the identical record
// stream and header.
func TestV1BackwardCompat(t *testing.T) {
	recs := []disptrace.Record{
		{Kind: disptrace.KWork, A: 7},
		{Kind: disptrace.KFetch, A: 0x2000, B: 24},
		{Kind: disptrace.KDispatch, A: 0x2040, B: 3, C: 0x2100},
		{Kind: disptrace.KWork, A: 1 << 40},
	}
	w := disptrace.NewWriter(testHeader())
	feed(w, recs)
	tr := w.Trace()

	got, err := disptrace.Decode(disptrace.EncodeV1(tr))
	if err != nil {
		t.Fatalf("decoding v1 trace: %v", err)
	}
	if got.Header != tr.Header {
		t.Fatalf("v1 header round trip: got %+v want %+v", got.Header, tr.Header)
	}
	for _, s := range got.Segs {
		if s.Codec != disptrace.CodecRaw {
			t.Errorf("v1 segment decoded with codec %v, want raw", s.Codec)
		}
	}
	back, err := got.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, back[i], recs[i])
		}
	}
}

// TestCompressionRatio: a real dispatch stream must shrink at least
// 3x on disk under the v2 flate codec (the measured ratio is 60x+;
// the assertion leaves headroom for codec-irrelevant stream changes).
func TestCompressionRatio(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	s.ScaleDiv = 40
	tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	v2 := tr.Encode()
	v1 := disptrace.EncodeV1(tr)
	if len(v2)*3 > len(v1) {
		t.Errorf("v2 trace is %d bytes, v1 %d: compression under 3x", len(v2), len(v1))
	}
	// And the compressed form still decodes to the same stream.
	got, err := disptrace.Decode(v2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Records()
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(back), len(want))
	}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("record %d diverged through compression: got %+v want %+v", i, back[i], want[i])
		}
	}
}

// fixCRC recomputes the container checksum after a test mutates the
// body, so corruption below the crc layer reaches the segment
// decoders.
func fixCRC(enc []byte) {
	binary.LittleEndian.PutUint32(enc[6:10], crc32.ChecksumIEEE(enc[10:]))
}

// TestCorruptCompressedSegments: damage inside a flate payload —
// garbled bytes, truncation, or a lying raw-size field — must surface
// as a decode error from every decode entry point, never a panic, even
// when the container checksum has been fixed up to pass.
func TestCorruptCompressedSegments(t *testing.T) {
	// A payload long and varied enough that flate actually compresses
	// it (forcing the CodecFlate path).
	var recs []disptrace.Record
	addr := uint64(0x4000)
	for i := range 4096 {
		addr += uint64(i%13) * 8
		recs = append(recs,
			disptrace.Record{Kind: disptrace.KWork, A: uint64(i % 7)},
			disptrace.Record{Kind: disptrace.KFetch, A: addr, B: 16},
			disptrace.Record{Kind: disptrace.KDispatch, A: addr + 8, B: uint64(i % 97), C: addr ^ 0x40})
	}
	w := disptrace.NewWriter(testHeader())
	feed(w, recs)
	tr := w.Trace()
	enc := tr.Encode()
	probe, err := disptrace.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Segs) == 0 || probe.Segs[0].Codec != disptrace.CodecFlate {
		t.Fatalf("test stream did not compress (codec %v); cannot exercise the flate path", probe.Segs[0].Codec)
	}

	decodeAll := func(tr *disptrace.Trace) error {
		if _, err := tr.Records(); err != nil {
			return err
		}
		for _, s := range tr.Segs {
			if _, err := s.DecodeOps(nil); err != nil {
				return err
			}
		}
		return nil
	}

	// Garble bytes inside the first segment payload (the payload area
	// starts after header block and index; flipping tail bytes of the
	// file lands in segment data) and fix the crc so the container
	// decodes.
	garbled := append([]byte(nil), enc...)
	for i := len(garbled) - 64; i < len(garbled); i++ {
		garbled[i] ^= 0xa5
	}
	fixCRC(garbled)
	if dec, err := disptrace.Decode(garbled); err == nil {
		if decodeAll(dec) == nil {
			t.Error("garbled flate payload decoded cleanly")
		}
	}

	// Truncated and garbled payloads, and a lying RawBytes, fed
	// straight to the segment decoders.
	seg := probe.Segs[0]
	for name, bad := range map[string]disptrace.Segment{
		"truncated": {Data: seg.Data[:len(seg.Data)/2], Records: seg.Records, Codec: disptrace.CodecFlate, RawBytes: seg.RawBytes},
		"empty":     {Data: nil, Records: seg.Records, Codec: disptrace.CodecFlate, RawBytes: seg.RawBytes},
		"raw-short": {Data: seg.Data, Records: seg.Records, Codec: disptrace.CodecFlate, RawBytes: seg.RawBytes / 2},
		"raw-long":  {Data: seg.Data, Records: seg.Records, Codec: disptrace.CodecFlate, RawBytes: seg.RawBytes * 2},
		"raw-huge":  {Data: seg.Data, Records: seg.Records, Codec: disptrace.CodecFlate, RawBytes: 1 << 30},
		"codec-99":  {Data: seg.Data, Records: seg.Records, Codec: disptrace.Codec(99), RawBytes: seg.RawBytes},
		// A huge-but-raw-consistent record count must be rejected
		// before any allocation keyed on it (a max-ratio DEFLATE
		// stream can declare ~1000x its stored size, so the count is
		// no longer bounded by the input bytes).
		"records-huge": {Data: seg.Data, Records: 1 << 29, Codec: disptrace.CodecFlate, RawBytes: 1 << 30},
	} {
		if _, err := bad.Decode(nil); err == nil {
			t.Errorf("%s: Decode accepted a corrupt flate segment", name)
		}
		if _, err := bad.DecodeOps(nil); err == nil {
			t.Errorf("%s: DecodeOps accepted a corrupt flate segment", name)
		}
	}

	// An unknown codec byte in the wire index must be rejected by the
	// container decoder. The index begins right after the
	// length-prefixed header block; its first byte is segment 0's
	// codec.
	mut := append([]byte(nil), enc...)
	hdrLen, n := binary.Uvarint(mut[10:])
	codecOff := 10 + n + int(hdrLen)
	segCount, n2 := binary.Uvarint(mut[codecOff:])
	if segCount != uint64(len(probe.Segs)) {
		t.Fatalf("index offset wrong: read %d segments, want %d", segCount, len(probe.Segs))
	}
	mut[codecOff+n2] = 99
	fixCRC(mut)
	if _, err := disptrace.Decode(mut); err == nil {
		t.Error("unknown codec byte in index not rejected")
	}
}

// tracePairs are the (workload, variant) pairs of the equivalence
// tests: three pairs spanning both VMs and static, dynamic and plain
// techniques (quickening included via the JVM workload).
func tracePairs(t *testing.T) []struct {
	w *workload.Workload
	v harness.Variant
} {
	t.Helper()
	gray, err := workload.ByName("gray")
	if err != nil {
		t.Fatal(err)
	}
	brainless, err := workload.ByName("brainless")
	if err != nil {
		t.Fatal(err)
	}
	compress, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		w *workload.Workload
		v harness.Variant
	}{
		{gray, harness.Variant{Name: "plain", Technique: core.TPlain}},
		{brainless, harness.Variant{Name: "dynamic super", Technique: core.TDynamicSuper}},
		{compress, harness.Variant{Name: "across bb", Technique: core.TAcrossBB}},
	}
}

// TestReplayEquivalence is the tentpole guarantee: for three
// (workload, technique) pairs and every predictor kind, a recorded
// trace replayed on machine M yields counters byte-identical to
// directly simulating on M — including the float cycle counters and
// on machines other than the one that recorded.
func TestReplayEquivalence(t *testing.T) {
	machines := []cpu.Machine{
		cpu.Celeron800, // plain BTB
		cpu.Celeron800.WithPredictor(cpu.PredictBTB2bc), // BTB + 2-bit counters
		cpu.PentiumM, // two-level
		cpu.Celeron800.WithPredictor(cpu.PredictCaseBlock), // operand-keyed
		cpu.Pentium4Northwood,                              // CPI 0.7: float cycle paths
		cpu.Celeron800.WithBTBEntries(64),                  // capacity-miss regime
	}
	for _, pair := range tracePairs(t) {
		s := harness.NewTestSuite()
		s.ScaleDiv = 40
		// Record on the first machine only.
		tr, recCounters, err := s.RecordTrace(pair.w, pair.v, machines[0])
		if err != nil {
			t.Fatalf("%s/%s: record: %v", pair.w.Name, pair.v.Name, err)
		}
		if tr.Header.Dispatches == 0 {
			t.Fatalf("%s/%s: empty dispatch stream", pair.w.Name, pair.v.Name)
		}
		for i, m := range machines {
			direct, err := s.Run(pair.w, pair.v, m)
			if err != nil {
				t.Fatalf("%s/%s on %s: direct: %v", pair.w.Name, pair.v.Name, m.Name, err)
			}
			if i == 0 && direct != recCounters {
				t.Errorf("%s/%s: recording run disagrees with plain run: %v vs %v",
					pair.w.Name, pair.v.Name, recCounters, direct)
			}
			replayed, err := disptrace.ReplayMachine(tr, m, 1)
			if err != nil {
				t.Fatalf("%s/%s on %s: replay: %v", pair.w.Name, pair.v.Name, m.Name, err)
			}
			if replayed != direct {
				t.Errorf("%s/%s on %s: replay diverged:\n  direct   %+v\n  replayed %+v",
					pair.w.Name, pair.v.Name, m.Name, direct, replayed)
			}
			// And through the serialized forms: current (v3, indexed
			// and compressed) and the legacy generations.
			for enc, bytes := range map[string][]byte{
				"v3": tr.Encode(),
				"v2": disptrace.EncodeV2(tr),
				"v1": disptrace.EncodeV1(tr),
			} {
				decoded, err := disptrace.Decode(bytes)
				if err != nil {
					t.Fatal(err)
				}
				reloaded, err := disptrace.ReplayMachine(decoded, m, 1)
				if err != nil {
					t.Fatal(err)
				}
				if reloaded != direct {
					t.Errorf("%s/%s on %s: replay after %s encode/decode diverged", pair.w.Name, pair.v.Name, m.Name, enc)
				}
			}
		}
	}
}

// TestReplayEachMatchesSolo: the parallel-apply broadcast (one decode
// pass, one applier goroutine per sim) must deliver every machine the
// counters a solo sequential replay produces, from both raw and
// compressed segments.
func TestReplayEachMatchesSolo(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	s.ScaleDiv = 40
	tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := disptrace.Decode(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	machines := []cpu.Machine{
		cpu.Celeron800, cpu.PentiumM, cpu.Pentium4Northwood,
		cpu.Celeron800.WithPredictor(cpu.PredictBTB2bc),
		cpu.Celeron800.WithBTBEntries(64),
	}
	for name, src := range map[string]*disptrace.Trace{"raw": tr, "flate": wire} {
		sims := make([]*cpu.Sim, len(machines))
		for i, m := range machines {
			sims[i] = cpu.NewSim(m)
		}
		if err := disptrace.ReplayEach(src, sims); err != nil {
			t.Fatalf("%s: ReplayEach: %v", name, err)
		}
		for i, m := range machines {
			solo, err := disptrace.ReplayMachine(tr, m, 1)
			if err != nil {
				t.Fatal(err)
			}
			if sims[i].C != solo {
				t.Errorf("%s: machine %s diverged under parallel apply:\n  solo %+v\n  each %+v",
					name, m.Name, solo, sims[i].C)
			}
		}
	}
}

// TestReplayParallelMatchesSequential: parallel segment decode must
// not change results or ordering.
func TestReplayParallelMatchesSequential(t *testing.T) {
	pair := tracePairs(t)[0]
	s := harness.NewTestSuite()
	tr, _, err := s.RecordTrace(pair.w, pair.v, cpu.Celeron800)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := disptrace.ReplayMachine(tr, cpu.Pentium4Northwood, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 8} {
		par, err := disptrace.ReplayMachine(tr, cpu.Pentium4Northwood, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if par != seq {
			t.Errorf("jobs=%d: parallel replay diverged:\n  seq %+v\n  par %+v", jobs, seq, par)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	w := disptrace.NewWriter(testHeader())
	feed(w, []disptrace.Record{
		{Kind: disptrace.KDispatch, A: 0x40, B: 1, C: 0x80},
		{Kind: disptrace.KWork, A: 9},
		{Kind: disptrace.KFetch, A: 0x100, B: 16},
	})
	tr := w.Trace()
	path := filepath.Join(t.TempDir(), "sub", "t.vmdt")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := disptrace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header changed across save/load: %+v vs %+v", got.Header, tr.Header)
	}
}

func TestCacheGetOrRecord(t *testing.T) {
	c := disptrace.NewCache(t.TempDir())
	k := disptrace.Key{Workload: "gray", Lang: "forth", Variant: "plain",
		Technique: "plain", Scale: 5, ScaleDiv: 40, MaxSteps: 100, ISAHash: 42}
	calls := 0
	record := func() (*disptrace.Trace, error) {
		calls++
		w := disptrace.NewWriter(k.Header())
		w.RecordDispatch(0x40, 1, 0x80)
		return w.Trace(), nil
	}

	tr1, recorded, err := c.GetOrRecord(k, record)
	if err != nil || !recorded || calls != 1 {
		t.Fatalf("first call: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	tr2, recorded, err := c.GetOrRecord(k, record)
	if err != nil || recorded || calls != 1 {
		t.Fatalf("second call should load from disk: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
	if tr2.Header != tr1.Header {
		t.Fatal("loaded trace header differs from recorded")
	}

	// A different key records separately.
	k2 := k
	k2.Variant = "across bb"
	if _, recorded, err = c.GetOrRecord(k2, record); err != nil || !recorded || calls != 2 {
		t.Fatalf("distinct key: err=%v recorded=%v calls=%d", err, recorded, calls)
	}

	// Corrupt the file on disk: the cache must heal by re-recording.
	if err := os.WriteFile(c.Path(k), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, recorded, err = c.GetOrRecord(k, record); err != nil || !recorded || calls != 3 {
		t.Fatalf("corrupt file should re-record: err=%v recorded=%v calls=%d", err, recorded, calls)
	}

	// A file whose header doesn't match its key is rejected too
	// (simulates a renamed/stale cache entry).
	other := disptrace.NewWriter(disptrace.Header{Workload: "tscp"})
	if err := other.Trace().Save(c.Path(k)); err != nil {
		t.Fatal(err)
	}
	if _, recorded, err = c.GetOrRecord(k, record); err != nil || !recorded || calls != 4 {
		t.Fatalf("mismatched header should re-record: err=%v recorded=%v calls=%d", err, recorded, calls)
	}
}

// TestCacheConcurrent: concurrent callers for one key share a single
// recording (the runner.Flight dedup).
func TestCacheConcurrent(t *testing.T) {
	c := disptrace.NewCache(t.TempDir())
	k := disptrace.Key{Workload: "w", Variant: "v", Scale: 1, ScaleDiv: 1}
	var mu sync.Mutex
	calls := 0
	gate := make(chan struct{})
	record := func() (*disptrace.Trace, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-gate // hold every concurrent caller in the same flight
		w := disptrace.NewWriter(k.Header())
		w.RecordWork(1)
		return w.Trace(), nil
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := range n {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			_, _, errs[i] = c.GetOrRecord(k, record)
		}(i)
	}
	for range n {
		<-started
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("want exactly 1 recording across %d concurrent callers, got %d", n, calls)
	}
}

// TestRunSpecsGroupedReplay: the traced RunSpecs path (grouped
// record-once-replay-many on a parallel pool) returns the same
// counters in the same order as the per-cell direct path.
func TestRunSpecsGroupedReplay(t *testing.T) {
	pairs := tracePairs(t)
	machines := []cpu.Machine{
		cpu.Celeron800, cpu.PentiumM, cpu.Pentium4Northwood,
		cpu.Celeron800.WithBTBEntries(128),
	}
	var specs []harness.RunSpec
	for _, p := range pairs {
		for _, m := range machines {
			specs = append(specs, harness.RunSpec{W: p.w, V: p.v, M: m})
		}
	}
	// Duplicate a few cells: grouping must dedup machines, not drop
	// or reorder results.
	specs = append(specs, specs[0], specs[5])

	plain := harness.NewTestSuite()
	plain.ScaleDiv = 40
	want, err := plain.RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}

	traced := harness.NewTestSuite()
	traced.ScaleDiv = 40
	traced.Jobs = 4
	traced.Traces = disptrace.NewCache(t.TempDir())
	got, err := traced.RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d (%s/%s on %s): grouped replay diverged\n  direct %+v\n  traced %+v",
				i, specs[i].W.Name, specs[i].V.Name, specs[i].M.Name, want[i], got[i])
		}
	}
}

// TestSuiteTraceCacheEquivalence: a suite with the trace cache
// enabled produces byte-identical counters to a plain suite across a
// mixed grid, and a second (warm) suite sharing the directory loads
// instead of re-recording.
func TestSuiteTraceCacheEquivalence(t *testing.T) {
	dir := t.TempDir()
	pairs := tracePairs(t)
	machines := []cpu.Machine{cpu.Celeron800, cpu.PentiumM, cpu.Pentium4Northwood}

	baseline := map[string]metrics.Counters{}
	plain := harness.NewTestSuite()
	plain.ScaleDiv = 40
	for _, p := range pairs {
		for _, m := range machines {
			c, err := plain.Run(p.w, p.v, m)
			if err != nil {
				t.Fatal(err)
			}
			baseline[p.w.Name+"/"+p.v.Name+"/"+m.Name] = c
		}
	}

	check := func(label string, s *harness.Suite) {
		t.Helper()
		for _, p := range pairs {
			for _, m := range machines {
				c, err := s.Run(p.w, p.v, m)
				if err != nil {
					t.Fatalf("%s: %s/%s on %s: %v", label, p.w.Name, p.v.Name, m.Name, err)
				}
				want := baseline[p.w.Name+"/"+p.v.Name+"/"+m.Name]
				if c != want {
					t.Errorf("%s: %s/%s on %s: counters diverged\n  direct %+v\n  traced %+v",
						label, p.w.Name, p.v.Name, m.Name, want, c)
				}
			}
		}
	}

	cold := harness.NewTestSuite()
	cold.ScaleDiv = 40
	cold.Traces = disptrace.NewCache(dir)
	check("cold cache", cold)

	files, err := filepath.Glob(filepath.Join(dir, "*.vmdt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(pairs) {
		t.Errorf("expected %d cached traces, found %d", len(pairs), len(files))
	}

	warm := harness.NewTestSuite()
	warm.ScaleDiv = 40
	warm.Traces = disptrace.NewCache(dir)
	check("warm cache", warm)
}
