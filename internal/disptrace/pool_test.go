package disptrace_test

import (
	"runtime"
	"testing"
	"unsafe"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
)

// syntheticTrace writes a trace of segs segments with recordsPerSeg
// fused step records each, exercising the writer's pattern fusion the
// way the engine does.
func syntheticTrace(t testing.TB, segs, recordsPerSeg int) *disptrace.Trace {
	t.Helper()
	w := disptrace.NewWriter(disptrace.Header{Workload: "synthetic", Lang: "forth", Variant: "plain"})
	disptrace.SetWriterSegLimit(w, recordsPerSeg)
	for i := range segs * recordsPerSeg {
		code := uint64(0x1000 + (i%97)*64)
		branch := code + 40
		target := uint64(0x1000 + ((i+13)%97)*64)
		w.RecordWork(2)
		w.RecordFetch(code, 8)
		w.RecordWork(1)
		w.RecordFetch(branch, 4)
		w.RecordDispatch(branch, uint64(i%251), target)
		w.RecordVMInst()
	}
	tr := w.Trace()
	if len(tr.Segs) != segs {
		t.Fatalf("synthetic trace has %d segments, want %d", len(tr.Segs), segs)
	}
	return tr
}

// TestReplayEachRecyclesBatches is the allocation regression gate for
// the refcounted batch pool: a pipelined replay must allocate a
// bounded pool of op batches and recycle them across segments, not
// one batch per segment. The assertion is on allocated bytes, where
// the difference is unambiguous: one-batch-per-segment costs the full
// decoded stream size per replay (64 segments here), while the pool
// costs a handful of batches however many segments stream through.
func TestReplayEachRecyclesBatches(t *testing.T) {
	const segs, recs = 64, 512
	tr := syntheticTrace(t, segs, recs)
	sims := make([]*cpu.Sim, 4)
	for i, m := range cpu.Machines()[:4] {
		sims[i] = cpu.NewSim(m)
	}

	replay := func() {
		if err := disptrace.ReplayEach(tr, sims); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm-up: page in code paths, settle one-time allocations

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const runs = 5
	for range runs {
		replay()
	}
	runtime.ReadMemStats(&after)
	perRun := (after.TotalAlloc - before.TotalAlloc) / runs

	// A non-recycling pipeline allocates every segment's batch: the
	// whole decoded stream, every replay. Demand better than half
	// that; the pool actually delivers ~10x better (a fixed pool of
	// decodeJobs+3 batches plus per-replay channel plumbing).
	opBytes := uint64(unsafe.Sizeof(cpu.Op{}))
	fullStream := uint64(segs) * uint64(recs) * 5 * opBytes
	if perRun > fullStream/2 {
		t.Errorf("pipelined replay allocates %d bytes/run, want < %d (half the %d-byte decoded stream); batch pool not recycling",
			perRun, fullStream/2, fullStream)
	}
	t.Logf("replay allocates %d bytes/run (decoded stream is %d bytes/replay unpooled)", perRun, fullStream)
}

// TestReplayEachPooledIdentity pins down that batch recycling does not
// corrupt results: a pipelined multi-sim replay of a many-segment
// trace must produce counters identical to independent sequential
// replays.
func TestReplayEachPooledIdentity(t *testing.T) {
	tr := syntheticTrace(t, 16, 64)
	machines := cpu.Machines()
	group := make([]*cpu.Sim, len(machines))
	for i, m := range machines {
		group[i] = cpu.NewSim(m)
	}
	if err := disptrace.ReplayEach(tr, group); err != nil {
		t.Fatal(err)
	}
	for i, m := range machines {
		solo := cpu.NewSim(m)
		if err := disptrace.Replay(tr, solo, 1); err != nil {
			t.Fatal(err)
		}
		if group[i].C != solo.C {
			t.Errorf("%s: pooled group replay %+v != sequential replay %+v", m.Name, group[i].C, solo.C)
		}
	}
}
