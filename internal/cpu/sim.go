package cpu

import (
	"vmopt/internal/btb"
	"vmopt/internal/icache"
	"vmopt/internal/metrics"
)

// Sink observes the event stream an interpreter run feeds into a Sim.
//
// The stream is machine-independent: the interpreter core decides
// every argument from the VM program and the code-layout plan alone,
// and the Sim never feeds back into execution. Recording the stream
// once therefore suffices to reproduce the counters of the same run
// on any Machine (any predictor, BTB geometry, I-cache or penalty) by
// replaying it — see internal/disptrace.
//
// RecordDispatch observes Dispatch calls only; the engine issues
// every indirect branch as a dispatch, so the two counters coincide
// on recorded streams.
type Sink interface {
	// RecordWork observes Work(n).
	RecordWork(n int)
	// RecordFetch observes Fetch(addr, size).
	RecordFetch(addr uint64, size int)
	// RecordDispatch observes Dispatch(branch, hint, target).
	RecordDispatch(branch, hint, target uint64)
	// RecordVMInst observes VMInst.
	RecordVMInst()
	// RecordCodeBytes observes AddCodeBytes(n).
	RecordCodeBytes(n uint64)
}

// Sim is one simulated processor instance: predictor, I-cache and the
// accumulated counters. The interpreter core drives it with three
// event kinds: straight-line work, instruction fetch, and indirect
// branches.
type Sim struct {
	Machine Machine
	Pred    btb.Predictor
	IC      *icache.Cache
	C       metrics.Counters

	// Sink, when non-nil, receives a copy of every event driven into
	// the simulator (trace recording). It does not alter accounting.
	Sink Sink
}

// NewSim builds a simulator for the machine.
func NewSim(m Machine) *Sim {
	return &Sim{Machine: m, Pred: m.NewPredictor(), IC: m.NewICache()}
}

// Work retires n straight-line native instructions.
func (s *Sim) Work(n int) {
	if s.Sink != nil {
		s.Sink.RecordWork(n)
	}
	s.C.Instructions += uint64(n)
	s.C.Cycles += float64(n) * s.Machine.CPI
}

// Fetch runs the byte range [addr, addr+size) through the I-cache and
// charges miss penalties.
func (s *Sim) Fetch(addr uint64, size int) {
	if s.Sink != nil {
		s.Sink.RecordFetch(addr, size)
	}
	misses := s.IC.Touch(addr, size)
	if misses > 0 {
		s.C.ICacheMisses += uint64(misses)
		penalty := float64(misses) * s.Machine.ICacheMissPenalty
		s.C.Cycles += penalty
		s.C.MissCycles += penalty
	}
}

// Indirect executes an indirect branch at address branch jumping to
// target; hint is the operand key for operand-indexed predictors. It
// reports whether the branch was predicted correctly.
func (s *Sim) Indirect(branch, hint, target uint64) bool {
	s.C.IndirectBranches++
	ok := s.Pred.Access(branch, hint, target)
	if !ok {
		s.C.Mispredicted++
		s.C.Cycles += s.Machine.MispredictPenalty
	}
	return ok
}

// Dispatch is Indirect plus the dispatch counter (VM instruction
// dispatches are the indirect branches the paper's techniques target).
func (s *Sim) Dispatch(branch, hint, target uint64) bool {
	if s.Sink != nil {
		s.Sink.RecordDispatch(branch, hint, target)
	}
	s.C.Dispatches++
	return s.Indirect(branch, hint, target)
}

// VMInst counts one executed VM instruction.
func (s *Sim) VMInst() {
	if s.Sink != nil {
		s.Sink.RecordVMInst()
	}
	s.C.VMInstructions++
}

// AddCodeBytes records run-time generated code (dynamic techniques).
func (s *Sim) AddCodeBytes(n uint64) {
	if s.Sink != nil {
		s.Sink.RecordCodeBytes(n)
	}
	s.C.CodeBytes += n
}

// OpKind classifies one batched replay event.
type OpKind uint8

const (
	// OpWork is Work(A).
	OpWork OpKind = iota
	// OpFetch is Fetch(A, B).
	OpFetch
	// OpDispatch is Dispatch(A, B, C).
	OpDispatch
)

// Op is one pre-decoded simulator event for Apply. A batch of Ops is
// immutable shared data: trace replay decodes a segment once and
// hands the same batch to every machine's simulator.
type Op struct {
	A, B, C uint64
	Kind    OpKind
}

// Apply drives a batch of events through the simulator with exactly
// the accounting of per-event Work/Fetch/Dispatch calls — the same
// float additions in the same order, so replayed counters stay
// byte-identical to a direct run — while amortizing the per-event
// overhead (one call, no per-event Sink checks) that dominates
// replay's apply side. The Sink is NOT observed: Apply exists for
// replay, and replaying must not re-record.
func (s *Sim) Apply(ops []Op) {
	c := &s.C
	m := &s.Machine
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpWork:
			c.Instructions += op.A
			c.Cycles += float64(int(op.A)) * m.CPI
		case OpFetch:
			misses := s.IC.Touch(op.A, int(op.B))
			if misses > 0 {
				c.ICacheMisses += uint64(misses)
				penalty := float64(misses) * m.ICacheMissPenalty
				c.Cycles += penalty
				c.MissCycles += penalty
			}
		case OpDispatch:
			c.Dispatches++
			c.IndirectBranches++
			if !s.Pred.Access(op.A, op.B, op.C) {
				c.Mispredicted++
				c.Cycles += m.MispredictPenalty
			}
		}
	}
}

// Reset clears counters, predictor and cache state.
func (s *Sim) Reset() {
	s.C = metrics.Counters{}
	s.Pred.Reset()
	s.IC.Reset()
}

// Seconds converts the accumulated cycles to seconds at the machine's
// clock rate.
func (s *Sim) Seconds() float64 {
	if s.Machine.ClockMHz == 0 {
		return 0
	}
	return s.C.Cycles / (s.Machine.ClockMHz * 1e6)
}
