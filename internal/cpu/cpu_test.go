package cpu

import (
	"math"
	"testing"

	"vmopt/internal/btb"
)

func TestMachineByName(t *testing.T) {
	m, err := MachineByName("celeron-800")
	if err != nil {
		t.Fatalf("MachineByName: %v", err)
	}
	if m.BTBEntries != 512 {
		t.Errorf("celeron BTB entries = %d, want 512", m.BTBEntries)
	}
	if _, err := MachineByName("pdp-11"); err == nil {
		t.Error("unknown machine should error")
	}
}

func TestMachinesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Machines() {
		if seen[m.Name] {
			t.Errorf("duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestNewPredictorKinds(t *testing.T) {
	if _, ok := Celeron800.NewPredictor().(*btb.SetAssoc); !ok {
		t.Error("Celeron predictor should be a set-assoc BTB")
	}
	if _, ok := PentiumM.NewPredictor().(*btb.TwoLevel); !ok {
		t.Error("Pentium M predictor should be two-level")
	}
	m2 := Celeron800.WithPredictor(PredictBTB2bc)
	if _, ok := m2.NewPredictor().(*btb.TwoBit); !ok {
		t.Error("WithPredictor(BTB2bc) should build a two-bit BTB")
	}
	if m2.Name == Celeron800.Name {
		t.Error("WithPredictor should change the name")
	}
}

func TestWorkAccounting(t *testing.T) {
	s := NewSim(Celeron800)
	s.Work(100)
	if s.C.Instructions != 100 {
		t.Errorf("Instructions = %d, want 100", s.C.Instructions)
	}
	if math.Abs(s.C.Cycles-100) > 1e-9 {
		t.Errorf("Cycles = %v, want 100 (CPI=1)", s.C.Cycles)
	}

	p4 := NewSim(Pentium4Northwood)
	p4.Work(100)
	if math.Abs(p4.C.Cycles-70) > 1e-9 {
		t.Errorf("P4 cycles = %v, want 70 (CPI=0.7)", p4.C.Cycles)
	}
}

func TestIndirectPenalty(t *testing.T) {
	s := NewSim(Celeron800)
	s.Indirect(0x10, 0, 0x20) // cold -> mispredict: 10 cycles
	if s.C.Mispredicted != 1 || s.C.IndirectBranches != 1 {
		t.Fatalf("counters = %+v", s.C)
	}
	if math.Abs(s.C.Cycles-10) > 1e-9 {
		t.Errorf("Cycles = %v, want 10", s.C.Cycles)
	}
	s.Indirect(0x10, 0, 0x20) // now predicted: no extra cycles
	if math.Abs(s.C.Cycles-10) > 1e-9 {
		t.Errorf("Cycles after hit = %v, want 10", s.C.Cycles)
	}
}

func TestDispatchCountsDispatches(t *testing.T) {
	s := NewSim(Celeron800)
	s.Dispatch(0x10, 0, 0x20)
	s.Indirect(0x14, 0, 0x24)
	if s.C.Dispatches != 1 || s.C.IndirectBranches != 2 {
		t.Errorf("Dispatches=%d IndirectBranches=%d, want 1 and 2",
			s.C.Dispatches, s.C.IndirectBranches)
	}
}

func TestFetchMissPenalty(t *testing.T) {
	s := NewSim(Celeron800)
	s.Fetch(0x1000, 64) // 2 lines cold: 2 misses x 10 cycles
	if s.C.ICacheMisses != 2 {
		t.Errorf("ICacheMisses = %d, want 2", s.C.ICacheMisses)
	}
	if math.Abs(s.C.MissCycles-20) > 1e-9 || math.Abs(s.C.Cycles-20) > 1e-9 {
		t.Errorf("MissCycles=%v Cycles=%v, want 20/20", s.C.MissCycles, s.C.Cycles)
	}
	s.Fetch(0x1000, 64) // warm
	if s.C.ICacheMisses != 2 {
		t.Errorf("warm fetch should not miss, got %d", s.C.ICacheMisses)
	}
}

func TestVMInstAndCodeBytes(t *testing.T) {
	s := NewSim(Celeron800)
	s.VMInst()
	s.VMInst()
	s.AddCodeBytes(190 * 1024)
	if s.C.VMInstructions != 2 || s.C.CodeBytes != 190*1024 {
		t.Errorf("counters = %+v", s.C)
	}
}

func TestReset(t *testing.T) {
	s := NewSim(Celeron800)
	s.Work(5)
	s.Indirect(0x10, 0, 0x20)
	s.Fetch(0x1000, 4)
	s.Reset()
	if s.C.Cycles != 0 || s.C.Instructions != 0 || s.IC.Accesses != 0 {
		t.Errorf("Reset left state: %+v", s.C)
	}
	// Predictor must also be cold again.
	if s.Indirect(0x10, 0, 0x20) {
		t.Error("predictor should be cold after Reset")
	}
}

func TestSeconds(t *testing.T) {
	s := NewSim(Celeron800)
	s.C.Cycles = 800e6 // one second at 800MHz
	if got := s.Seconds(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	s.Machine.ClockMHz = 0
	if s.Seconds() != 0 {
		t.Error("Seconds with zero clock should be 0")
	}
}

// TestPentiumMPredictsInterpreterLoop verifies the Section 8 claim:
// a two-level predictor handles the dispatch pattern that defeats a
// BTB.
func TestPentiumMPredictsInterpreterLoop(t *testing.T) {
	run := func(m Machine) uint64 {
		s := NewSim(m)
		// A's dispatch branch alternates between two targets.
		for i := 0; i < 200; i++ {
			s.Indirect(0x100, 0, uint64(0x2000+(i%2)*0x100))
			s.Indirect(0x200, 0, 0x100) // B always returns to A
		}
		return s.C.Mispredicted
	}
	btbMisp := run(Celeron800)
	pmMisp := run(PentiumM)
	if pmMisp*4 > btbMisp {
		t.Errorf("Pentium M mispredictions = %d, want far below BTB's %d", pmMisp, btbMisp)
	}
}

// TestApplyMatchesPerEventCalls: the batched Apply entry point must
// accumulate exactly the counters of the equivalent per-event
// Work/Fetch/Dispatch calls — float cycle counters included, since
// trace replay's byte-identity guarantee rests on it — on every
// predictor kind and CPI regime.
func TestApplyMatchesPerEventCalls(t *testing.T) {
	var ops []Op
	addr := uint64(0x2000)
	for i := 0; i < 4096; i++ {
		switch i % 5 {
		case 0, 3:
			ops = append(ops, Op{Kind: OpWork, A: uint64(i % 37)})
		case 1, 4:
			addr += uint64(i%29) * 16
			ops = append(ops, Op{Kind: OpFetch, A: addr, B: uint64(8 + i%56)})
		default:
			ops = append(ops, Op{Kind: OpDispatch, A: addr + 32, B: uint64(i % 11), C: addr ^ uint64(i%3)<<7})
		}
	}
	machines := []Machine{
		Celeron800,
		Pentium4Northwood, // CPI 0.7: fractional cycle accumulation
		PentiumM,          // two-level predictor
		Celeron800.WithPredictor(PredictBTB2bc),
		Celeron800.WithPredictor(PredictCaseBlock), // operand-keyed
		Celeron800.WithBTBEntries(16),              // capacity-miss regime
	}
	for _, m := range machines {
		perCall := NewSim(m)
		for _, op := range ops {
			switch op.Kind {
			case OpWork:
				perCall.Work(int(op.A))
			case OpFetch:
				perCall.Fetch(op.A, int(op.B))
			case OpDispatch:
				perCall.Dispatch(op.A, op.B, op.C)
			}
		}
		batched := NewSim(m)
		// Split the batch to prove Apply composes like the call stream
		// does (replay hands segments to Apply one at a time).
		batched.Apply(ops[:len(ops)/3])
		batched.Apply(ops[len(ops)/3:])
		if batched.C != perCall.C {
			t.Errorf("%s: Apply diverged from per-event calls:\n  calls %+v\n  apply %+v",
				m.Name, perCall.C, batched.C)
		}
	}
}

// TestApplyIgnoresSink: Apply exists for replay, which must never
// re-record; an attached Sink stays silent.
func TestApplyIgnoresSink(t *testing.T) {
	s := NewSim(Celeron800)
	n := 0
	s.Sink = countingSink{&n}
	s.Apply([]Op{
		{Kind: OpWork, A: 5},
		{Kind: OpFetch, A: 0x2000, B: 16},
		{Kind: OpDispatch, A: 0x2040, B: 1, C: 0x2100},
	})
	if n != 0 {
		t.Errorf("Apply drove %d events into the Sink; replay must not re-record", n)
	}
	if s.C.Instructions != 5 || s.C.Dispatches != 1 || s.C.ICacheMisses == 0 {
		t.Errorf("Apply accounting wrong: %+v", s.C)
	}
}

// countingSink counts observed events.
type countingSink struct{ n *int }

func (c countingSink) RecordWork(int)                        { *c.n++ }
func (c countingSink) RecordFetch(uint64, int)               { *c.n++ }
func (c countingSink) RecordDispatch(uint64, uint64, uint64) { *c.n++ }
func (c countingSink) RecordVMInst()                         { *c.n++ }
func (c countingSink) RecordCodeBytes(uint64)                { *c.n++ }
