package cpu

import (
	"math"
	"testing"

	"vmopt/internal/btb"
)

func TestMachineByName(t *testing.T) {
	m, err := MachineByName("celeron-800")
	if err != nil {
		t.Fatalf("MachineByName: %v", err)
	}
	if m.BTBEntries != 512 {
		t.Errorf("celeron BTB entries = %d, want 512", m.BTBEntries)
	}
	if _, err := MachineByName("pdp-11"); err == nil {
		t.Error("unknown machine should error")
	}
}

func TestMachinesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Machines() {
		if seen[m.Name] {
			t.Errorf("duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestNewPredictorKinds(t *testing.T) {
	if _, ok := Celeron800.NewPredictor().(*btb.SetAssoc); !ok {
		t.Error("Celeron predictor should be a set-assoc BTB")
	}
	if _, ok := PentiumM.NewPredictor().(*btb.TwoLevel); !ok {
		t.Error("Pentium M predictor should be two-level")
	}
	m2 := Celeron800.WithPredictor(PredictBTB2bc)
	if _, ok := m2.NewPredictor().(*btb.TwoBit); !ok {
		t.Error("WithPredictor(BTB2bc) should build a two-bit BTB")
	}
	if m2.Name == Celeron800.Name {
		t.Error("WithPredictor should change the name")
	}
}

func TestWorkAccounting(t *testing.T) {
	s := NewSim(Celeron800)
	s.Work(100)
	if s.C.Instructions != 100 {
		t.Errorf("Instructions = %d, want 100", s.C.Instructions)
	}
	if math.Abs(s.C.Cycles-100) > 1e-9 {
		t.Errorf("Cycles = %v, want 100 (CPI=1)", s.C.Cycles)
	}

	p4 := NewSim(Pentium4Northwood)
	p4.Work(100)
	if math.Abs(p4.C.Cycles-70) > 1e-9 {
		t.Errorf("P4 cycles = %v, want 70 (CPI=0.7)", p4.C.Cycles)
	}
}

func TestIndirectPenalty(t *testing.T) {
	s := NewSim(Celeron800)
	s.Indirect(0x10, 0, 0x20) // cold -> mispredict: 10 cycles
	if s.C.Mispredicted != 1 || s.C.IndirectBranches != 1 {
		t.Fatalf("counters = %+v", s.C)
	}
	if math.Abs(s.C.Cycles-10) > 1e-9 {
		t.Errorf("Cycles = %v, want 10", s.C.Cycles)
	}
	s.Indirect(0x10, 0, 0x20) // now predicted: no extra cycles
	if math.Abs(s.C.Cycles-10) > 1e-9 {
		t.Errorf("Cycles after hit = %v, want 10", s.C.Cycles)
	}
}

func TestDispatchCountsDispatches(t *testing.T) {
	s := NewSim(Celeron800)
	s.Dispatch(0x10, 0, 0x20)
	s.Indirect(0x14, 0, 0x24)
	if s.C.Dispatches != 1 || s.C.IndirectBranches != 2 {
		t.Errorf("Dispatches=%d IndirectBranches=%d, want 1 and 2",
			s.C.Dispatches, s.C.IndirectBranches)
	}
}

func TestFetchMissPenalty(t *testing.T) {
	s := NewSim(Celeron800)
	s.Fetch(0x1000, 64) // 2 lines cold: 2 misses x 10 cycles
	if s.C.ICacheMisses != 2 {
		t.Errorf("ICacheMisses = %d, want 2", s.C.ICacheMisses)
	}
	if math.Abs(s.C.MissCycles-20) > 1e-9 || math.Abs(s.C.Cycles-20) > 1e-9 {
		t.Errorf("MissCycles=%v Cycles=%v, want 20/20", s.C.MissCycles, s.C.Cycles)
	}
	s.Fetch(0x1000, 64) // warm
	if s.C.ICacheMisses != 2 {
		t.Errorf("warm fetch should not miss, got %d", s.C.ICacheMisses)
	}
}

func TestVMInstAndCodeBytes(t *testing.T) {
	s := NewSim(Celeron800)
	s.VMInst()
	s.VMInst()
	s.AddCodeBytes(190 * 1024)
	if s.C.VMInstructions != 2 || s.C.CodeBytes != 190*1024 {
		t.Errorf("counters = %+v", s.C)
	}
}

func TestReset(t *testing.T) {
	s := NewSim(Celeron800)
	s.Work(5)
	s.Indirect(0x10, 0, 0x20)
	s.Fetch(0x1000, 4)
	s.Reset()
	if s.C.Cycles != 0 || s.C.Instructions != 0 || s.IC.Accesses != 0 {
		t.Errorf("Reset left state: %+v", s.C)
	}
	// Predictor must also be cold again.
	if s.Indirect(0x10, 0, 0x20) {
		t.Error("predictor should be cold after Reset")
	}
}

func TestSeconds(t *testing.T) {
	s := NewSim(Celeron800)
	s.C.Cycles = 800e6 // one second at 800MHz
	if got := s.Seconds(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	s.Machine.ClockMHz = 0
	if s.Seconds() != 0 {
		t.Error("Seconds with zero clock should be 0")
	}
}

// TestPentiumMPredictsInterpreterLoop verifies the Section 8 claim:
// a two-level predictor handles the dispatch pattern that defeats a
// BTB.
func TestPentiumMPredictsInterpreterLoop(t *testing.T) {
	run := func(m Machine) uint64 {
		s := NewSim(m)
		// A's dispatch branch alternates between two targets.
		for i := 0; i < 200; i++ {
			s.Indirect(0x100, 0, uint64(0x2000+(i%2)*0x100))
			s.Indirect(0x200, 0, 0x100) // B always returns to A
		}
		return s.C.Mispredicted
	}
	btbMisp := run(Celeron800)
	pmMisp := run(PentiumM)
	if pmMisp*4 > btbMisp {
		t.Errorf("Pentium M mispredictions = %d, want far below BTB's %d", pmMisp, btbMisp)
	}
}
