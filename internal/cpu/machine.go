// Package cpu defines the simulated machine models and the cycle
// accounting used by the interpreter simulation.
//
// A Machine bundles the micro-architectural parameters the paper's
// analysis depends on: BTB geometry, I-cache geometry, branch
// misprediction penalty, I-cache miss penalty and a base CPI. The
// predefined models correspond to the hardware used in the paper's
// evaluation (Section 6.2): an 800MHz Celeron with a Pentium 3 core,
// Pentium 4 Northwood, and the Athlon used for the native-compiler
// comparison; plus the Prescott-core P4 and the Pentium M (two-level
// indirect predictor) discussed in Sections 2.2 and 8.
package cpu

import (
	"fmt"

	"vmopt/internal/btb"
	"vmopt/internal/icache"
)

// PredictorKind selects the indirect branch prediction hardware of a
// Machine.
type PredictorKind int

const (
	// PredictBTB is a plain branch target buffer.
	PredictBTB PredictorKind = iota
	// PredictBTB2bc is a BTB with two-bit hysteresis counters.
	PredictBTB2bc
	// PredictTwoLevel is a history-based two-level indirect
	// predictor (Pentium M style).
	PredictTwoLevel
	// PredictCaseBlock is the case block table of Kaeli and Emma:
	// switch-operand-indexed prediction (paper Section 8).
	PredictCaseBlock
)

// Machine describes a simulated processor.
type Machine struct {
	// Name identifies the model, e.g. "celeron-800".
	Name string

	// Predictor selects the indirect branch predictor kind.
	Predictor PredictorKind
	// BTBEntries and BTBWays give the BTB geometry (ignored for
	// PredictTwoLevel).
	BTBEntries int
	BTBWays    int
	// HistoryLen and TableBits configure a two-level predictor.
	HistoryLen int
	TableBits  int

	// ICacheBytes, ICacheLine and ICacheWays give the L1 I-cache
	// (or trace cache approximation) geometry.
	ICacheBytes int
	ICacheLine  int
	ICacheWays  int

	// MispredictPenalty is the branch misprediction cost in cycles
	// (about 10 on P3/Athlon, 20 on Northwood, 30 on Prescott).
	MispredictPenalty float64
	// ICacheMissPenalty is the per-miss cost in cycles (27 for the
	// P4 trace cache per Zhou and Ross; ~10 for P3-era caches).
	ICacheMissPenalty float64
	// CPI is the base cycles per (non-stalling) native instruction;
	// below 1 models superscalar issue.
	CPI float64
	// ClockMHz is informational (used to convert cycles to seconds
	// in reports).
	ClockMHz float64
}

// Predefined machine models.
var (
	// Celeron800 models the 800MHz Celeron (Pentium 3 core) of
	// Section 6.2: 512-entry BTB, 16KB I-cache, ~10 cycle penalty.
	Celeron800 = Machine{
		Name:      "celeron-800",
		Predictor: PredictBTB, BTBEntries: 512, BTBWays: 4,
		ICacheBytes: 16 * 1024, ICacheLine: 32, ICacheWays: 4,
		MispredictPenalty: 10, ICacheMissPenalty: 10,
		CPI: 1.0, ClockMHz: 800,
	}

	// Pentium4Northwood models the Northwood-core Pentium 4:
	// 4096-entry BTB, 12K-uop trace cache (approximated as a 64KB
	// cache with a 27-cycle miss penalty), ~20 cycle misprediction
	// penalty.
	Pentium4Northwood = Machine{
		Name:      "pentium4-northwood",
		Predictor: PredictBTB, BTBEntries: 4096, BTBWays: 4,
		ICacheBytes: 64 * 1024, ICacheLine: 64, ICacheWays: 8,
		MispredictPenalty: 20, ICacheMissPenalty: 27,
		CPI: 0.70, ClockMHz: 2260,
	}

	// Pentium4Prescott is the Prescott-core P4 with its ~30 cycle
	// misprediction penalty (Section 2.2).
	Pentium4Prescott = Machine{
		Name:      "pentium4-prescott",
		Predictor: PredictBTB, BTBEntries: 4096, BTBWays: 4,
		ICacheBytes: 64 * 1024, ICacheLine: 64, ICacheWays: 8,
		MispredictPenalty: 30, ICacheMissPenalty: 27,
		CPI: 0.70, ClockMHz: 3000,
	}

	// Athlon1200 models the Athlon used for the native-code
	// comparison (Section 7.6).
	Athlon1200 = Machine{
		Name:      "athlon-1200",
		Predictor: PredictBTB, BTBEntries: 2048, BTBWays: 4,
		ICacheBytes: 64 * 1024, ICacheLine: 64, ICacheWays: 2,
		MispredictPenalty: 10, ICacheMissPenalty: 12,
		CPI: 0.90, ClockMHz: 1200,
	}

	// PentiumM models the Pentium M with its two-level indirect
	// branch predictor (Sections 2.2 and 8); it predicts most
	// interpreter dispatch branches correctly even without the
	// paper's software techniques.
	PentiumM = Machine{
		Name:      "pentium-m",
		Predictor: PredictTwoLevel, TableBits: 14, HistoryLen: 4,
		ICacheBytes: 32 * 1024, ICacheLine: 64, ICacheWays: 8,
		MispredictPenalty: 10, ICacheMissPenalty: 12,
		CPI: 0.85, ClockMHz: 1600,
	}
)

// Machines lists all predefined machine models.
func Machines() []Machine {
	return []Machine{Celeron800, Pentium4Northwood, Pentium4Prescott, Athlon1200, PentiumM}
}

// MachineByName returns the predefined machine with the given name.
func MachineByName(name string) (Machine, error) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("cpu: unknown machine %q", name)
}

// NewPredictor builds the machine's indirect branch predictor.
func (m Machine) NewPredictor() btb.Predictor {
	switch m.Predictor {
	case PredictBTB:
		return btb.NewSetAssoc(m.BTBEntries, m.BTBWays)
	case PredictBTB2bc:
		return btb.NewTwoBit(m.BTBEntries, m.BTBWays)
	case PredictTwoLevel:
		return btb.NewTwoLevel(m.TableBits, m.HistoryLen)
	case PredictCaseBlock:
		n := m.BTBEntries
		if n == 0 {
			n = 4096
		}
		return btb.NewCaseBlock(n)
	default:
		panic(fmt.Sprintf("cpu: unknown predictor kind %d", m.Predictor))
	}
}

// NewICache builds the machine's instruction cache.
func (m Machine) NewICache() *icache.Cache {
	return icache.New(m.ICacheBytes, m.ICacheLine, m.ICacheWays)
}

// WithPredictor returns a copy of the machine using a different
// predictor kind (for the predictor-comparison experiments).
func (m Machine) WithPredictor(k PredictorKind) Machine {
	m2 := m
	m2.Predictor = k
	m2.Name = m.Name + predictorSuffix(k)
	return m2
}

func predictorSuffix(k PredictorKind) string {
	switch k {
	case PredictBTB:
		return "+btb"
	case PredictBTB2bc:
		return "+btb2bc"
	case PredictTwoLevel:
		return "+twolevel"
	case PredictCaseBlock:
		return "+caseblock"
	default:
		return "+?"
	}
}

// WithBTBEntries returns a copy of the machine with a different BTB
// capacity (for the BTB-size sensitivity experiments).
func (m Machine) WithBTBEntries(entries int) Machine {
	m2 := m
	m2.BTBEntries = entries
	m2.Name = fmt.Sprintf("%s-btb%d", m.Name, entries)
	return m2
}
