package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations at 1ms, 10 at 100ms: p50 must bound 1ms, p99
	// must reach the 100ms bucket.
	for range 100 {
		h.Observe(time.Millisecond)
	}
	for range 10 {
		h.Observe(100 * time.Millisecond)
	}
	if got := h.Count(); got != 110 {
		t.Fatalf("Count = %d, want 110", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want bucket bound in [1ms, 2ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 100*time.Millisecond {
		t.Errorf("p99 = %v, want >= 100ms", p99)
	}
	if got := h.Quantile(1); got < 100*time.Millisecond {
		t.Errorf("p100 = %v, want >= 100ms", got)
	}
	snap := h.Snapshot()
	if snap.Count != 110 || snap.MaxMS < 100 {
		t.Errorf("snapshot = %+v, want count 110 and max >= 100ms", snap)
	}
	wantMean := (100*1.0 + 10*100.0) / 110
	if snap.MeanMS < wantMean*0.99 || snap.MeanMS > wantMean*1.01 {
		t.Errorf("mean = %v ms, want ~%v ms", snap.MeanMS, wantMean)
	}
}

func TestHistogramEdgeObservations(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to the lowest bucket
	h.Observe(0)
	h.Observe(1 << 62) // lands in the top bucket without panicking
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Quantile(1); got != time.Duration(1)<<62 {
		t.Errorf("max quantile = %v, want 2^62 ns", got)
	}
}

// TestHistogramMerge: merging shards must reproduce exactly the
// counts, sum, max and quantiles one shared histogram would have —
// the property per-op load reports aggregate totals with.
func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for range 100 {
		a.Observe(time.Millisecond)
		whole.Observe(time.Millisecond)
	}
	for range 10 {
		b.Observe(100 * time.Millisecond)
		whole.Observe(100 * time.Millisecond)
	}
	a.Merge(&b)
	if got, want := a.Count(), whole.Count(); got != want {
		t.Fatalf("merged Count = %d, want %d", got, want)
	}
	as, ws := a.Snapshot(), whole.Snapshot()
	if as != ws {
		t.Errorf("merged snapshot = %+v, want %+v", as, ws)
	}
	// Merging an empty histogram changes nothing.
	var empty Histogram
	a.Merge(&empty)
	if got := a.Snapshot(); got != ws {
		t.Errorf("merge of empty changed snapshot: %+v, want %+v", got, ws)
	}
	// Merging into an empty histogram copies.
	var dst Histogram
	dst.Merge(&whole)
	if got := dst.Snapshot(); got != ws {
		t.Errorf("merge into empty = %+v, want %+v", got, ws)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range per {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
				h.Quantile(0.9)
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
}
