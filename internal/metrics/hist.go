package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets a
// Histogram tracks. Bucket i counts observations with
// 2^i <= nanoseconds < 2^(i+1); 63 buckets cover every positive
// time.Duration.
const histBuckets = 63

// Histogram is a concurrency-safe latency histogram with fixed
// power-of-two buckets. Observe is lock-free (one atomic add per
// bucket plus the sum/count/max updates), so request paths can record
// into a shared histogram without contention; quantiles are derived
// from the bucket counts on demand. Resolution is a factor of two,
// which is plenty for serving dashboards ("p99 is about 4ms") while
// keeping the whole structure a few hundred bytes with no allocation
// after creation.
//
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds
	max    atomic.Uint64 // largest single observation, nanoseconds
}

// Observe records one duration. Non-positive durations count into the
// lowest bucket (a sub-nanosecond measurement is still a completed
// operation).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	b := 0
	if ns > 0 {
		b = bits.Len64(ns) - 1
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// NumBuckets is the number of fixed power-of-two buckets a Histogram
// exposes; see BucketUpperNS for the boundary of each.
const NumBuckets = histBuckets

// BucketUpperNS returns the exclusive upper bound of bucket i in
// nanoseconds: bucket i counts observations with
// BucketUpperNS(i-1) <= ns < BucketUpperNS(i). The last bucket is
// effectively unbounded (its nominal bound exceeds any observable
// duration). Exposition formats (the Prometheus renderer) use these
// as their le boundaries.
func BucketUpperNS(i int) uint64 {
	if i >= histBuckets-1 {
		// 2^64 doesn't fit; the last bucket's nominal bound. Callers
		// render this bucket as +Inf.
		return 1 << 63
	}
	return 1 << (i + 1)
}

// BucketCounts returns a point-in-time copy of the per-bucket
// observation counts (not cumulative). Concurrent observes can skew
// individual buckets by the in-flight observations, same as Snapshot.
func (h *Histogram) BucketCounts() [NumBuckets]uint64 {
	var out [NumBuckets]uint64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Merge folds o's observations into h bucket by bucket, so per-shard
// histograms (one per operation, one per worker) aggregate into a
// total without losing quantile fidelity: bucket boundaries are fixed,
// so merged quantiles are exactly what one shared histogram would have
// reported. o is read with the same atomic loads Snapshot uses;
// concurrent Observe calls on either side can skew the merge by at
// most the in-flight observations.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]):
// the top of the bucket holding the q-th observation. It returns 0
// when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q*float64(total-1)) + 1
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == histBuckets-1 {
				// The open-ended top bucket has no meaningful upper
				// bound; report the observed maximum instead.
				return time.Duration(h.max.Load())
			}
			// The bucket's upper bound, clamped to the observed
			// maximum so a quantile never exceeds max.
			bound := uint64(1) << (i + 1)
			if m := h.max.Load(); m < bound {
				bound = m
			}
			return time.Duration(bound)
		}
	}
	return time.Duration(h.max.Load())
}

// HistogramSnapshot is a point-in-time JSON-friendly summary of a
// Histogram: the serving stats surface of /v1/stats and the load
// generator's report.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls during
// the snapshot can skew individual fields by at most the in-flight
// observations; fields stay internally plausible (no locking).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count == 0 {
		return s
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s.MeanMS = float64(h.sum.Load()) / float64(s.Count) / float64(time.Millisecond)
	s.P50MS = ms(h.Quantile(0.50))
	s.P90MS = ms(h.Quantile(0.90))
	s.P99MS = ms(h.Quantile(0.99))
	s.MaxMS = ms(time.Duration(h.max.Load()))
	return s
}
