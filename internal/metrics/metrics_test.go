package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	a := Counters{Cycles: 10, Instructions: 5, IndirectBranches: 2, Mispredicted: 1,
		ICacheMisses: 3, MissCycles: 81, CodeBytes: 100, VMInstructions: 4, Dispatches: 2}
	b := Counters{Cycles: 1, Instructions: 1, IndirectBranches: 1, Mispredicted: 1,
		ICacheMisses: 1, MissCycles: 27, CodeBytes: 1, VMInstructions: 1, Dispatches: 1}
	a.Add(b)
	want := Counters{Cycles: 11, Instructions: 6, IndirectBranches: 3, Mispredicted: 2,
		ICacheMisses: 4, MissCycles: 108, CodeBytes: 101, VMInstructions: 5, Dispatches: 3}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}

func TestMispredictRate(t *testing.T) {
	tests := []struct {
		name string
		c    Counters
		want float64
	}{
		{"zero branches", Counters{}, 0},
		{"half", Counters{IndirectBranches: 10, Mispredicted: 5}, 0.5},
		{"all", Counters{IndirectBranches: 4, Mispredicted: 4}, 1},
		{"none", Counters{IndirectBranches: 4}, 0},
	}
	for _, tt := range tests {
		if got := tt.c.MispredictRate(); got != tt.want {
			t.Errorf("%s: MispredictRate = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestBranchFraction(t *testing.T) {
	c := Counters{Instructions: 200, IndirectBranches: 33}
	if got, want := c.BranchFraction(), 0.165; math.Abs(got-want) > 1e-12 {
		t.Errorf("BranchFraction = %v, want %v", got, want)
	}
	if got := (Counters{}).BranchFraction(); got != 0 {
		t.Errorf("BranchFraction on zero = %v, want 0", got)
	}
}

func TestSpeedupOver(t *testing.T) {
	base := Counters{Cycles: 100}
	fast := Counters{Cycles: 25}
	if got := fast.SpeedupOver(base); got != 4 {
		t.Errorf("SpeedupOver = %v, want 4", got)
	}
	if got := (Counters{}).SpeedupOver(base); got != 0 {
		t.Errorf("SpeedupOver with zero cycles = %v, want 0", got)
	}
}

func TestInstrsPerVM(t *testing.T) {
	c := Counters{Instructions: 30, VMInstructions: 10}
	if got := c.InstrsPerVM(); got != 3 {
		t.Errorf("InstrsPerVM = %v, want 3", got)
	}
	if got := (Counters{}).InstrsPerVM(); got != 0 {
		t.Errorf("InstrsPerVM on zero = %v, want 0", got)
	}
}

func TestStringContainsFields(t *testing.T) {
	c := Counters{Cycles: 42, Instructions: 7, IndirectBranches: 3, Mispredicted: 1}
	s := c.String()
	for _, want := range []string{"cycles=42", "instrs=7", "ind=3", "misp=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// Property: Add is commutative and associative on the integer fields.
func TestAddCommutative(t *testing.T) {
	f := func(a, b Counters) bool {
		x, y := a, b
		x.Add(b)
		y.Add(a)
		return x.Instructions == y.Instructions &&
			x.IndirectBranches == y.IndirectBranches &&
			x.Mispredicted == y.Mispredicted &&
			x.ICacheMisses == y.ICacheMisses &&
			x.CodeBytes == y.CodeBytes &&
			x.VMInstructions == y.VMInstructions &&
			x.Dispatches == y.Dispatches
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MispredictRate is always within [0,1] when mispredicted <= branches.
func TestMispredictRateBounded(t *testing.T) {
	f := func(branches uint32, misp uint32) bool {
		b, m := uint64(branches), uint64(misp)
		if m > b {
			b, m = m, b
		}
		c := Counters{IndirectBranches: b, Mispredicted: m}
		r := c.MispredictRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
