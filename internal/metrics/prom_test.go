package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact exposition output for a
// registry exercising every metric kind: unlabeled and labeled
// counters, a gauge, a function counter, and a histogram with known
// observations — including the +Inf bucket and HELP/label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(41)
	c.Inc()
	vec := r.CounterVec("test_by_endpoint_total", `Help with back\slash and "quotes"`+"\nand a newline.", "endpoint")
	vec.With("run").Add(7)
	vec.With(`we"ird\val`).Inc()
	g := r.Gauge("test_inflight", "Current in-flight requests.")
	g.Set(3.5)
	r.CounterFunc("test_evictions_total", "Evictions.", func() uint64 { return 9 })
	h := r.Histogram("test_latency_seconds", "Request latency.")
	h.Observe(500 * time.Nanosecond)  // below the first rendered bound
	h.Observe(100 * time.Microsecond) // 1e5 ns: between 2^16 and 2^18
	h.Observe(50 * time.Millisecond)  // 5e7 ns: between 2^24 and 2^26
	h.Observe(2 * time.Minute)        // beyond the last rendered bound

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_by_endpoint_total Help with back\\slash and "quotes"\nand a newline.
# TYPE test_by_endpoint_total counter
test_by_endpoint_total{endpoint="run"} 7
test_by_endpoint_total{endpoint="we\"ird\\val"} 1
# HELP test_evictions_total Evictions.
# TYPE test_evictions_total counter
test_evictions_total 9
# HELP test_inflight Current in-flight requests.
# TYPE test_inflight gauge
test_inflight 3.5
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1.024e-06"} 1
test_latency_seconds_bucket{le="4.096e-06"} 1
test_latency_seconds_bucket{le="1.6384e-05"} 1
test_latency_seconds_bucket{le="6.5536e-05"} 1
test_latency_seconds_bucket{le="0.000262144"} 2
test_latency_seconds_bucket{le="0.001048576"} 2
test_latency_seconds_bucket{le="0.004194304"} 2
test_latency_seconds_bucket{le="0.016777216"} 2
test_latency_seconds_bucket{le="0.067108864"} 3
test_latency_seconds_bucket{le="0.268435456"} 3
test_latency_seconds_bucket{le="1.073741824"} 3
test_latency_seconds_bucket{le="4.294967296"} 3
test_latency_seconds_bucket{le="17.179869184"} 3
test_latency_seconds_bucket{le="68.719476736"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 120.0501005
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryPanicsOnConflicts(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic("duplicate name", func() { r.Counter("dup_total", "") })
	mustPanic("duplicate across kinds", func() { r.Gauge("dup_total", "") })
	mustPanic("bad metric name", func() { r.Counter("0bad", "") })
	mustPanic("bad metric name chars", func() { r.Counter("has space", "") })
	mustPanic("bad label name", func() { r.CounterVec("ok_total", "", "bad-label") })
}

func TestHistogramBucketExport(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond) // 3000ns -> bucket 11 (2048..4095)
	counts := h.BucketCounts()
	if counts[11] != 1 {
		t.Errorf("bucket 11 = %d, want 1 (3µs lands in [2^11, 2^12))", counts[11])
	}
	if got := BucketUpperNS(11); got != 4096 {
		t.Errorf("BucketUpperNS(11) = %d, want 4096", got)
	}
	if got := BucketUpperNS(NumBuckets - 1); got != 1<<63 {
		t.Errorf("top bucket bound = %d, want 2^63 sentinel", got)
	}
	if h.Sum() != 3000 {
		t.Errorf("Sum = %d, want 3000", h.Sum())
	}
}

// TestRuntimeMetricsRender checks the runtime sampler registers and
// renders parseable series.
func TestRuntimeMetricsRender(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"go_goroutines", "go_gomaxprocs", "go_heap_alloc_bytes", "go_gc_pause_ns_total"} {
		if !strings.Contains(out, "\n"+name+" ") && !strings.HasPrefix(out, name+" ") {
			t.Errorf("runtime metric %s missing from exposition:\n%s", name, out)
		}
	}
}
