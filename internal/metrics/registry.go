package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// metric kinds, in Prometheus TYPE vocabulary.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// series is one exposed time series of a family: either a live
// value (counter, gauge, histogram) or a read-on-collect function.
type series struct {
	labelVal string

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family is one named metric with its help string and — when the
// family is a vec — its labeled children.
type family struct {
	name, help, kind string
	// label is the vec label key; empty means one unlabeled series.
	label string

	mu     sync.Mutex
	series map[string]*series
}

// child returns the series for a label value, creating it with mk on
// first use.
func (f *family) child(labelVal string, mk func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labelVal]; ok {
		return s
	}
	s := mk()
	s.labelVal = labelVal
	f.series[labelVal] = s
	return s
}

// sorted returns the family's series ordered by label value, so
// exposition output is deterministic.
func (f *family) sorted() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labelVal < out[j].labelVal })
	return out
}

// Registry is a named collection of counters, gauges and histograms
// with help strings — the single source every exposition surface
// renders from: GET /metrics serializes it as Prometheus text format
// and /v1/stats reads the same live values into its JSON document, so
// the two can never disagree.
//
// Registration is meant for startup (it panics on conflicts, like
// expvar); observation methods on the returned metrics are what run
// on request paths.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates a family, enforcing unique, well-formed names.
func (r *Registry) register(name, help, kind, label string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if label != "" && !validLabelName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "")
	c := &Counter{}
	f.child("", func() *series { return &series{counter: c} })
	return c
}

// CounterFunc registers a counter whose value is read by fn at
// collection time — the bridge for subsystems that already keep their
// own counters (the trace cache, the LRU).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, kindCounter, "")
	f.child("", func() *series { return &series{counterFn: fn} })
}

// Gauge registers and returns an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "")
	g := &Gauge{}
	f.child("", func() *series { return &series{gauge: g} })
	return g
}

// GaugeFunc registers a gauge read by fn at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, "")
	f.child("", func() *series { return &series{gaugeFn: fn} })
}

// Histogram registers and returns an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, kindHist, "")
	h := &Histogram{}
	f.child("", func() *series { return &series{hist: h} })
	return h
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct{ fam *family }

// CounterVec registers a labeled counter family; With materializes
// children on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, kindCounter, label)}
}

// With returns the child counter for a label value, creating it on
// first use. Children persist; a label value observed once is
// exported forever (Prometheus counters must not disappear between
// scrapes).
func (v *CounterVec) With(labelVal string) *Counter {
	s := v.fam.child(labelVal, func() *series { return &series{counter: &Counter{}} })
	return s.counter
}

// GaugeVec is a gauge family partitioned by one label — what info
// metrics (vmserved_instance_info{instance="..."} 1) are built from.
type GaugeVec struct{ fam *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, kindGauge, label)}
}

// With returns the child gauge for a label value, creating it on
// first use.
func (v *GaugeVec) With(labelVal string) *Gauge {
	s := v.fam.child(labelVal, func() *series { return &series{gauge: &Gauge{}} })
	return s.gauge
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct{ fam *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, kindHist, label)}
}

// With returns the child histogram for a label value, creating it on
// first use.
func (v *HistogramVec) With(labelVal string) *Histogram {
	s := v.fam.child(labelVal, func() *series { return &series{hist: &Histogram{}} })
	return s.hist
}

// sortedFamilies returns the registry's families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
