// Package metrics defines the performance counters the reproduction
// collects while simulating interpreter execution.
//
// The set mirrors the seven hardware-counter metrics reported in
// Section 7.3 of Casey, Ertl and Gregg: cycles, retired instructions,
// indirect branches, mispredicted indirect branches, I-cache misses,
// I-cache miss cycles and dynamically generated code bytes.
package metrics

import (
	"fmt"
	"strings"
)

// Counters accumulates simulated hardware events for one benchmark run.
//
// Cycles and MissCycles are float64 because the cycle model composes
// fractional per-instruction costs (superscalar CPI < 1); all event
// counts are exact integers.
// The JSON names are part of the vmbench result schema
// (internal/runner); renaming them breaks checked-in baselines.
type Counters struct {
	// Cycles is the total simulated execution time in clock cycles.
	Cycles float64 `json:"cycles"`
	// Instructions is the number of retired native machine
	// instructions (paper: "instrs").
	Instructions uint64 `json:"instructions"`
	// IndirectBranches is the number of executed indirect branches,
	// i.e. VM instruction dispatches plus indirect VM control flow.
	IndirectBranches uint64 `json:"indirect_branches"`
	// Mispredicted is the number of indirect branches the branch
	// predictor got wrong (paper: "mispredicted indirect").
	Mispredicted uint64 `json:"mispredicted"`
	// ICacheMisses is the number of instruction fetch misses.
	ICacheMisses uint64 `json:"icache_misses"`
	// MissCycles is the cycle cost attributed to I-cache misses
	// (paper: icache misses x 27 on the Pentium 4 trace cache).
	MissCycles float64 `json:"miss_cycles"`
	// CodeBytes is the size of code generated at interpreter run time
	// (zero for purely static techniques).
	CodeBytes uint64 `json:"code_bytes"`

	// VMInstructions counts executed virtual machine instructions.
	// Not a hardware counter, but needed for derived statistics such
	// as native-instructions-per-VM-instruction.
	VMInstructions uint64 `json:"vm_instructions"`
	// Dispatches counts VM instruction dispatches actually executed
	// (a subset of IndirectBranches; superinstructions remove some).
	Dispatches uint64 `json:"dispatches"`
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Cycles += o.Cycles
	c.Instructions += o.Instructions
	c.IndirectBranches += o.IndirectBranches
	c.Mispredicted += o.Mispredicted
	c.ICacheMisses += o.ICacheMisses
	c.MissCycles += o.MissCycles
	c.CodeBytes += o.CodeBytes
	c.VMInstructions += o.VMInstructions
	c.Dispatches += o.Dispatches
}

// MispredictRate returns mispredicted / indirect branches, in [0,1].
// It returns 0 when no indirect branches were executed.
func (c Counters) MispredictRate() float64 {
	if c.IndirectBranches == 0 {
		return 0
	}
	return float64(c.Mispredicted) / float64(c.IndirectBranches)
}

// BranchFraction returns the fraction of retired native instructions
// that are indirect branches (paper Section 7.2.2: 16.5% for Gforth,
// 6.08% for the JVM benchmarks).
func (c Counters) BranchFraction() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.IndirectBranches) / float64(c.Instructions)
}

// SpeedupOver returns base.Cycles / c.Cycles: how much faster this run
// is than the baseline (values > 1 mean faster).
func (c Counters) SpeedupOver(base Counters) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return base.Cycles / c.Cycles
}

// InstrsPerVM returns native instructions per executed VM instruction.
func (c Counters) InstrsPerVM() float64 {
	if c.VMInstructions == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.VMInstructions)
}

// String renders the counters in a compact single-line form.
func (c Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%.0f instrs=%d ind=%d misp=%d (%.1f%%) ic-miss=%d miss-cyc=%.0f code=%dB",
		c.Cycles, c.Instructions, c.IndirectBranches, c.Mispredicted,
		100*c.MispredictRate(), c.ICacheMisses, c.MissCycles, c.CodeBytes)
	return b.String()
}
