package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promExpBuckets are the histogram bucket exponents the Prometheus
// renderer exposes: every other power-of-two boundary from 2^10 ns
// (1.024µs) to 2^36 ns (~68.7s), plus +Inf. Cumulative bucket counts
// are exact at any boundary subset (an le series is "observations at
// or under this bound"), so rendering a fixed, readable subset of the
// histogram's 63 internal buckets loses resolution, never
// correctness; the subset is fixed so a scraped series' le labels
// never change across process restarts.
var promExpBuckets = func() []int {
	var exps []int
	for e := 10; e <= 36; e += 2 {
		exps = append(exps, e)
	}
	return exps
}()

// TextContentType is the Content-Type of the exposition output:
// Prometheus text format version 0.0.4.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in Prometheus text
// exposition format 0.0.4: a # HELP and # TYPE line per family, then
// one line per series (counter/gauge) or the
// _bucket/_sum/_count triplet (histogram). Durations render in
// seconds, per Prometheus convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sorted() {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	labels := ""
	if f.label != "" {
		labels = fmt.Sprintf(`{%s="%s"}`, f.label, escapeLabel(s.labelVal))
	}
	switch {
	case s.counter != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.counter.Load())
	case s.counterFn != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.counterFn())
	case s.gauge != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(s.gauge.Load()))
	case s.gaugeFn != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(s.gaugeFn()))
	case s.hist != nil:
		writeHistogram(w, f, s)
	}
}

// writeHistogram renders one histogram series: cumulative buckets at
// the fixed boundary subset, the +Inf bucket, then _sum (seconds) and
// _count. The counts are loaded once, so the rendered cumulative
// sequence is monotone even under concurrent observes; _count is
// derived from the same load rather than the histogram's own count so
// bucket{le="+Inf"} == _count always holds within one scrape.
func writeHistogram(w *bufio.Writer, f *family, s *series) {
	counts := s.hist.BucketCounts()
	sumNS := s.hist.Sum()

	bucketLabels := func(le string) string {
		if f.label != "" {
			return fmt.Sprintf(`{%s="%s",le="%s"}`, f.label, escapeLabel(s.labelVal), le)
		}
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	var cum uint64
	next := 0
	for _, exp := range promExpBuckets {
		// Internal bucket i covers [2^i, 2^(i+1)) ns; everything below
		// boundary 2^exp is buckets 0..exp-1.
		for ; next < exp && next < NumBuckets; next++ {
			cum += counts[next]
		}
		le := formatFloat(float64(uint64(1)<<exp) / 1e9)
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(le), cum)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels("+Inf"), total)

	labels := ""
	if f.label != "" {
		labels = fmt.Sprintf(`{%s="%s"}`, f.label, escapeLabel(s.labelVal))
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(float64(sumNS)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, total)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format:
// backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, newline and double quote.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
