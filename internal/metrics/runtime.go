package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats per staleness window so
// a scrape hitting several runtime gauges pays for one read, not one
// per gauge. ReadMemStats briefly stops the world; once per scrape is
// cheap, four times per scrape is silly.
type memSampler struct {
	mu       sync.Mutex
	at       time.Time
	ms       runtime.MemStats
	maxStale time.Duration
}

func (s *memSampler) stats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > s.maxStale {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
	}
	return s.ms
}

// RegisterRuntime registers the process runtime gauges on the
// registry: goroutine count, GOMAXPROCS, heap usage and GC activity —
// the box-level context every per-endpoint latency number needs
// ("was the p99 spike a GC pause or real work?").
func RegisterRuntime(r *Registry) {
	sampler := &memSampler{maxStale: 100 * time.Millisecond}
	r.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs",
		"GOMAXPROCS: the scheduler's processor parallelism.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(sampler.stats().HeapAlloc) })
	r.GaugeFunc("go_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(sampler.stats().HeapObjects) })
	r.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() uint64 { return uint64(sampler.stats().NumGC) })
	r.CounterFunc("go_gc_pause_ns_total",
		"Cumulative stop-the-world GC pause time in nanoseconds.",
		func() uint64 { return sampler.stats().PauseTotalNs })
}
