package workload

import "fmt"

// Gray stands in for the paper's "gray" parser generator benchmark:
// it repeatedly generates random fully-parenthesized arithmetic
// expressions from a grammar and parses them back with a recursive
// descent parser, accumulating a checksum of the evaluated results.
// Character: deeply recursive descent over token streams — many short
// words, calls and returns, table-free dispatch on token kinds.
func Gray() *Workload {
	return &Workload{
		Name:         "gray",
		Desc:         "parser generator",
		Lang:         "forth",
		DefaultScale: 1400,
		Source:       graySource,
	}
}

func graySource(scale int) string {
	return lcgForth + fmt.Sprintf(`
array buf 65536
variable bp
variable rdp
variable check

: emit-tok ( t -- ) buf bp @ + ! 1 bp +! ;
: next-tok ( -- t ) buf rdp @ + @ 1 rdp +! ;

\ Token encoding: 0..9 literal, 10 '+', 11 '*', 12 '(', 13 ')'.
: gen-expr ( depth -- )
  dup 0= 3 rnd-mod 0= or if
    drop 10 rnd-mod emit-tok
  else
    12 emit-tok
    dup 1- recurse
    2 rnd-mod if 10 else 11 then emit-tok
    1- recurse
    13 emit-tok
  then ;

: parse-expr ( -- v )
  next-tok
  dup 12 = if
    drop
    parse-expr
    next-tok
    parse-expr
    swap 10 = if + else * then
    16777215 and
    next-tok drop
  then ;

: round ( -- )
  0 bp ! 0 rdp !
  6 gen-expr
  parse-expr check @ + 16777215 and check ! ;

: main
  0 check !
  42 seed !
  %d 0 do round loop
  check @ . ;
main
`, scale)
}
