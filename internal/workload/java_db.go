package workload

import "fmt"

// DB stands in for SPECjvm98 209_db: an in-memory database of record
// objects behind an open-addressing hash index, driven by a
// pseudo-random stream of put/get/bump operations. Character: hash
// probing over an array of object references, then getfield/putfield
// on the found record — pointer-heavy with short, branchy blocks.
func DB() *Workload {
	return &Workload{
		Name:         "db",
		Desc:         "small database program",
		Lang:         "jvm",
		DefaultScale: 25000,
		Source:       dbSource,
	}
}

func dbSource(scale int) string {
	return fmt.Sprintf(`
class Rec
  field key
  field val
end

static seed
static table
static acc
static count

method Main.rnd static args 0 locals 0
  getstatic seed
  iconst 1103515245
  imul
  iconst 12345
  iadd
  iconst 2147483647
  iand
  dup
  putstatic seed
  iconst 16
  ishr
  ireturn
end

; Probe the 2048-slot table for key; returns the slot index holding
; the key or the first empty slot (the table never fills: at most 512
; distinct keys).
method Main.probe static args 1 locals 3
  ; 0: key, 1: idx, 2: ref
  iload_0
  iconst 2654435761
  imul
  iconst 2047
  iand
  istore_1
loop:
  getstatic table
  iload_1
  iaload
  istore_2
  iload_2
  ifeq found
  iload_2
  getfield Rec.key
  iload_0
  if_icmpeq found
  iinc 1 1
  iload_1
  iconst 2047
  iand
  istore_1
  goto loop
found:
  iload_1
  ireturn
end

; put(key, val): insert a new record or overwrite the existing one.
method Main.put static args 2 locals 4
  ; 0: key, 1: val, 2: slot, 3: ref
  iload_0
  invokestatic Main.probe
  istore_2
  getstatic table
  iload_2
  iaload
  istore_3
  iload_3
  ifne update
  new Rec
  istore_3
  iload_3
  iload_0
  putfield Rec.key
  iload_3
  iload_1
  putfield Rec.val
  getstatic table
  iload_2
  iload_3
  iastore
  getstatic count
  iconst 1
  iadd
  putstatic count
  return
update:
  iload_3
  iload_1
  putfield Rec.val
  return
end

; get(key): the record's value, or 0 when absent.
method Main.get static args 1 locals 2
  iload_0
  invokestatic Main.probe
  istore_1
  getstatic table
  iload_1
  iaload
  dup
  ifeq missing
  getfield Rec.val
  ireturn
missing:
  pop
  iconst 0
  ireturn
end

; bump(key): increment the record's value when present.
method Main.bump static args 1 locals 2
  iload_0
  invokestatic Main.probe
  istore_1
  getstatic table
  iload_1
  iaload
  dup
  ifeq missing
  dup
  getfield Rec.val
  iconst 1
  iadd
  putfield Rec.val
  return
missing:
  pop
  return
end

method Main.main static args 0 locals 3
  ; 0: i, 1: key, 2: op
  iconst 1991
  putstatic seed
  iconst 2048
  newarray
  putstatic table
  iconst 0
  istore_0
oploop:
  iload_0
  iconst %d
  if_icmpge opdone
  invokestatic Main.rnd
  iconst 512
  irem
  istore_1
  invokestatic Main.rnd
  iconst 4
  irem
  istore_2
  iload_2
  ifne notput
  iload_1
  invokestatic Main.rnd
  iconst 1000
  irem
  invokestatic Main.put
  goto next
notput:
  iload_2
  iconst 1
  if_icmpne notget
  getstatic acc
  iload_1
  invokestatic Main.get
  iadd
  iconst 16777215
  iand
  putstatic acc
  goto next
notget:
  iload_1
  invokestatic Main.bump
next:
  iinc 0 1
  goto oploop
opdone:
  getstatic acc
  iprint
  getstatic count
  iprint
  return
end
`, scale)
}
