package workload

import "fmt"

// Compress stands in for SPECjvm98 201_compress (modified Lempel-Ziv
// compression): LZW coding of a repetitive synthetic byte stream
// through a hash-table dictionary. Character: the classic compress
// inner loop — hash probe, dictionary hit/miss branch, code emission
// — bytes and arrays throughout.
func Compress() *Workload {
	return &Workload{
		Name:         "compress",
		Desc:         "modified Lempel-Ziv compression",
		Lang:         "jvm",
		DefaultScale: 10,
		Source:       compressSource,
	}
}

// CompressReference implements the identical LZW pass in Go; tests
// compare the workload's output against it.
func CompressReference(scale int) (emitted int64, check int64) {
	const n = 4096
	input := make([]int64, n)
	seed := int64(987)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	// Repetitive input: short random phrases repeated.
	phrase := make([]int64, 16)
	for i := range phrase {
		phrase[i] = rnd() % 17
	}
	for i := 0; i < n; i++ {
		if rnd()%20 == 0 {
			phrase[rnd()%16] = rnd() % 17
		}
		input[i] = phrase[i%16]
	}

	emit := func(w int64) {
		emitted++
		check = (check + w*31 + emitted) & 16777215
	}
	for pass := 0; pass < scale; pass++ {
		const hs = 8192
		hkey := make([]int64, hs)
		hval := make([]int64, hs)
		nextCode := int64(256)
		w := input[0]
		for i := 1; i < n; i++ {
			c := input[i]
			key := w*256 + c + 1
			idx := (key * 2654435761) & (hs - 1)
			for hkey[idx] != 0 && hkey[idx] != key {
				idx = (idx + 1) & (hs - 1)
			}
			if hkey[idx] == key {
				w = hval[idx]
			} else {
				emit(w)
				if nextCode < 4096 {
					hkey[idx] = key
					hval[idx] = nextCode
					nextCode++
				}
				w = c
			}
		}
		emit(w)
	}
	return emitted, check
}

func compressSource(scale int) string {
	return fmt.Sprintf(`
static seed
static input
static hkey
static hval
static nextcode
static w
static emitted
static check

method Main.rnd static args 0 locals 0
  getstatic seed
  iconst 1103515245
  imul
  iconst 12345
  iadd
  iconst 2147483647
  iand
  dup
  putstatic seed
  iconst 16
  ishr
  ireturn
end

; Repetitive input: a 16-byte phrase, occasionally mutated, tiled
; over 4096 bytes.
method Main.buildInput static args 0 locals 2
  ; 0: i, 1: phrase ref
  iconst 4096
  newarray
  putstatic input
  iconst 16
  newarray
  istore_1
  iconst 0
  istore_0
ploop:
  iload_0
  iconst 16
  if_icmpge pdone
  iload_1
  iload_0
  invokestatic Main.rnd
  iconst 17
  irem
  iastore
  iinc 0 1
  goto ploop
pdone:
  iconst 0
  istore_0
floop:
  iload_0
  iconst 4096
  if_icmpge fdone
  invokestatic Main.rnd
  iconst 20
  irem
  ifne fill
  iload_1
  invokestatic Main.rnd
  iconst 16
  irem
  invokestatic Main.rnd
  iconst 17
  irem
  iastore
fill:
  getstatic input
  iload_0
  iload_1
  iload_0
  iconst 15
  iand
  iaload
  iastore
  iinc 0 1
  goto floop
fdone:
  return
end

method Main.emit static args 1 locals 0
  getstatic emitted
  iconst 1
  iadd
  putstatic emitted
  getstatic check
  iload_0
  iconst 31
  imul
  iadd
  getstatic emitted
  iadd
  iconst 16777215
  iand
  putstatic check
  return
end

; One LZW pass over the input with a fresh 8192-slot dictionary.
method Main.pass static args 0 locals 5
  ; 0: i, 1: c, 2: key, 3: idx, 4: probe
  iconst 8192
  newarray
  putstatic hkey
  iconst 8192
  newarray
  putstatic hval
  iconst 256
  putstatic nextcode
  getstatic input
  iconst 0
  iaload
  putstatic w
  iconst 1
  istore_0
loop:
  iload_0
  iconst 4096
  if_icmpge done
  getstatic input
  iload_0
  iaload
  istore_1
  ; key = w*256 + c + 1 (0 marks an empty slot)
  getstatic w
  iconst 256
  imul
  iload_1
  iadd
  iconst 1
  iadd
  istore_2
  ; idx = (key * 2654435761) & 8191
  iload_2
  iconst 2654435761
  imul
  iconst 8191
  iand
  istore_3
probe:
  getstatic hkey
  iload_3
  iaload
  istore 4
  iload 4
  ifeq miss
  iload 4
  iload_2
  if_icmpeq hit
  iinc 3 1
  iload_3
  iconst 8191
  iand
  istore_3
  goto probe
hit:
  getstatic hval
  iload_3
  iaload
  putstatic w
  goto next
miss:
  getstatic w
  invokestatic Main.emit
  getstatic nextcode
  iconst 4096
  if_icmpge skipadd
  getstatic hkey
  iload_3
  iload_2
  iastore
  getstatic hval
  iload_3
  getstatic nextcode
  iastore
  getstatic nextcode
  iconst 1
  iadd
  putstatic nextcode
skipadd:
  iload_1
  putstatic w
next:
  iinc 0 1
  goto loop
done:
  getstatic w
  invokestatic Main.emit
  return
end

method Main.main static args 0 locals 1
  iconst 987
  putstatic seed
  iconst 0
  putstatic emitted
  iconst 0
  putstatic check
  invokestatic Main.buildInput
  iconst 0
  istore_0
rounds:
  iload_0
  iconst %d
  if_icmpge over
  invokestatic Main.pass
  iinc 0 1
  goto rounds
over:
  getstatic emitted
  iprint
  getstatic check
  iprint
  return
end
`, scale)
}
