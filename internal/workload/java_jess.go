package workload

import "fmt"

// Jess stands in for SPECjvm98 202_jess (the Java Expert Shell
// System): a forward-chaining rule engine. Rules are objects with two
// antecedent facts and one consequent; the engine fires rules to a
// fixpoint from pseudo-random initial fact bases. Character: object
// graphs traversed in a scan loop — getfield-dominated with
// moderate-length blocks and monotone state.
func Jess() *Workload {
	return &Workload{
		Name:         "jess",
		Desc:         "Java expert shell system (rule engine)",
		Lang:         "jvm",
		DefaultScale: 450,
		Source:       jessSource,
	}
}

func jessSource(scale int) string {
	return fmt.Sprintf(`
class Rule
  field c1
  field c2
  field out
  field fired
end

static seed
static facts
static rules
static firings

method Main.rnd static args 0 locals 0
  getstatic seed
  iconst 1103515245
  imul
  iconst 12345
  iadd
  iconst 2147483647
  iand
  dup
  putstatic seed
  iconst 16
  ishr
  ireturn
end

; 48 rules over 64 facts; antecedents drawn from anywhere, the
; consequent distinct from both.
method Main.buildRules static args 0 locals 2
  iconst 48
  newarray
  putstatic rules
  iconst 0
  istore_0
rloop:
  iload_0
  iconst 48
  if_icmpge rdone
  new Rule
  istore_1
  iload_1
  invokestatic Main.rnd
  iconst 64
  irem
  putfield Rule.c1
  iload_1
  invokestatic Main.rnd
  iconst 64
  irem
  putfield Rule.c2
  iload_1
  invokestatic Main.rnd
  iconst 64
  irem
  putfield Rule.out
  getstatic rules
  iload_0
  iload_1
  iastore
  iinc 0 1
  goto rloop
rdone:
  return
end

; Reset the fact base: each fact true with probability 1/4; clear
; per-rule fired flags.
method Main.resetFacts static args 0 locals 1
  iconst 0
  istore_0
floop:
  iload_0
  iconst 64
  if_icmpge fdone
  getstatic facts
  iload_0
  invokestatic Main.rnd
  iconst 4
  irem
  ifne zero
  iconst 1
  goto store
zero:
  iconst 0
store:
  iastore
  iinc 0 1
  goto floop
fdone:
  iconst 0
  istore_0
cloop:
  iload_0
  iconst 48
  if_icmpge cdone
  getstatic rules
  iload_0
  iaload
  iconst 0
  putfield Rule.fired
  iinc 0 1
  goto cloop
cdone:
  return
end

; One pass over the rules; returns the number fired this pass.
method Main.pass static args 0 locals 3
  ; 0: i, 1: rule ref, 2: fired count
  iconst 0
  istore_0
  iconst 0
  istore_2
loop:
  iload_0
  iconst 48
  if_icmpge done
  getstatic rules
  iload_0
  iaload
  istore_1
  ; skip if already fired
  iload_1
  getfield Rule.fired
  ifne next
  ; both antecedents present?
  getstatic facts
  iload_1
  getfield Rule.c1
  iaload
  ifeq next
  getstatic facts
  iload_1
  getfield Rule.c2
  iaload
  ifeq next
  ; fire: assert the consequent
  getstatic facts
  iload_1
  getfield Rule.out
  iconst 1
  iastore
  iload_1
  iconst 1
  putfield Rule.fired
  iinc 2 1
  getstatic firings
  iconst 1
  iadd
  putstatic firings
next:
  iinc 0 1
  goto loop
done:
  iload_2
  ireturn
end

method Main.solve static args 0 locals 0
again:
  invokestatic Main.pass
  ifne again
  return
end

method Main.main static args 0 locals 2
  iconst 777
  putstatic seed
  iconst 0
  putstatic firings
  iconst 64
  newarray
  putstatic facts
  invokestatic Main.buildRules
  iconst 0
  istore_0
rounds:
  iload_0
  iconst %d
  if_icmpge over
  invokestatic Main.resetFacts
  invokestatic Main.solve
  iinc 0 1
  goto rounds
over:
  getstatic firings
  iprint
  return
end
`, scale)
}
