package workload

import "fmt"

// BenchGC stands in for the paper's "bench-gc" garbage collector
// benchmark: a mark-sweep collector over a heap of cons cells.
// Random binary trees are rooted, overwritten and collected.
// Character: pointer chasing, recursive marking, linear sweeps —
// memory-heavy words with mid-length basic blocks.
func BenchGC() *Workload {
	return &Workload{
		Name:         "bench-gc",
		Desc:         "garbage collector",
		Lang:         "forth",
		DefaultScale: 120,
		Source:       benchGCSource,
	}
}

func benchGCSource(scale int) string {
	// Heap of 2000 cells; cell i occupies slots 3i..3i+2 (car, cdr,
	// mark); references are i+1 so 0 is nil.
	return lcgForth + fmt.Sprintf(`
constant ncells 2000
array heapc 6000
array roots 8
variable freelist
variable live
variable collected
variable nfree

: car-addr ( ref -- a ) 1- 3 * ;
: cdr-addr ( ref -- a ) 1- 3 * 1+ ;
: mark-addr ( ref -- a ) 1- 3 * 2 + ;
: car@ ( ref -- v ) car-addr heapc + @ ;
: cdr@ ( ref -- v ) cdr-addr heapc + @ ;

\ Free list threads through the cdr slots.
: init-heap ( -- )
  0 freelist !
  ncells nfree !
  ncells 1+ 1 do
    freelist @ i cdr-addr heapc + !
    i freelist !
  loop ;

: mark ( ref -- )
  dup 0= if drop exit then
  dup mark-addr heapc + @ if drop exit then
  1 over mark-addr heapc + !
  dup car@ recurse
  cdr@ recurse ;

: sweep ( -- )
  0 live !
  0 nfree !
  0 freelist !
  ncells 1+ 1 do
    i mark-addr heapc + @ if
      1 live +!
      0 i mark-addr heapc + !
    else
      freelist @ i cdr-addr heapc + !
      i freelist !
      1 nfree +!
    then
  loop ;

: collect ( -- )
  1 collected +!
  8 0 do roots i + @ mark loop
  sweep ;

\ Collection happens only between rounds, when every live cell is
\ reachable from the roots; allocating mid-construction never
\ collects, so stack-held subtree references stay valid.
: ensure-space ( -- ) nfree @ 130 < if collect then ;

: alloc ( car cdr -- ref )
  freelist @
  dup cdr@ freelist !
  -1 nfree +!
  tuck cdr-addr heapc + !
  tuck car-addr heapc + ! ;

: tree ( depth -- ref )
  dup 0= if exit then
  dup 1- recurse
  over 1- recurse
  alloc
  nip ;

: round ( -- )
  ensure-space
  7 tree
  8 rnd-mod roots + ! ;

: main
  init-heap
  1234 seed !
  0 collected !
  8 0 do 0 roots i + ! loop
  %d 0 do round loop
  collect
  collected @ .
  live @ . ;
main
`, scale)
}
