// Package workload provides the benchmark programs of the
// reproduction: synthetic equivalents of the paper's Gforth
// benchmarks (Table VI: gray, bench-gc, tscp, vmgen, cross,
// brainless, brew) and SPECjvm98 programs (Table VII: compress, jess,
// db, javac, mpegaudio, mtrt, jack).
//
// The paper's originals are not redistributable (and SPECjvm98 is a
// licensed suite), so each workload is a from-scratch program with
// the same computational character — parser generator, mark-sweep
// garbage collector, game-tree search, code generator, compression,
// rule engine, fixed-point DSP, ray tracing — written in this
// repository's Forth dialect or jasm assembly. What matters for the
// paper's results is the dispatch statistics (opcode reuse in the
// working set, basic-block length, call/return density, quickable
// instruction mix), which these programs reproduce.
package workload

import (
	"fmt"

	"vmopt/internal/core"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
	"vmopt/internal/jvm"
)

// Workload is one runnable benchmark program.
type Workload struct {
	// Name matches the paper's benchmark name.
	Name string
	// Desc matches the paper's one-line description.
	Desc string
	// Lang is "forth" or "jvm".
	Lang string
	// DefaultScale is the iteration parameter used by the
	// experiment harness (tuned for simulation runs of roughly a
	// million VM instructions).
	DefaultScale int
	// Source returns the program text for a scale.
	Source func(scale int) string
}

// NewProcess compiles the workload at the given scale and returns a
// fresh process plus the extra basic-block leaders (word/method entry
// points) for plan construction.
func (w *Workload) NewProcess(scale int) (core.Process, []int, error) {
	if scale <= 0 {
		scale = w.DefaultScale
	}
	switch w.Lang {
	case "forth":
		p, err := forth.Compile(w.Source(scale))
		if err != nil {
			return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
		}
		var leaders []int
		for _, xt := range p.Words {
			leaders = append(leaders, xt)
		}
		return p.NewVM(1024), leaders, nil
	case "jvm":
		p, err := jvm.Assemble(w.Source(scale))
		if err != nil {
			return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
		}
		return jvm.NewVM(p), p.EntryPoints(), nil
	default:
		return nil, nil, fmt.Errorf("workload %s: unknown language %q", w.Name, w.Lang)
	}
}

// Output runs the workload to completion (semantics only) and returns
// its printed output.
func (w *Workload) Output(scale int, maxSteps uint64) (string, error) {
	proc, _, err := w.NewProcess(scale)
	if err != nil {
		return "", err
	}
	for steps := uint64(0); !proc.Done(); steps++ {
		if steps >= maxSteps {
			return "", fmt.Errorf("workload %s: exceeded %d steps", w.Name, maxSteps)
		}
		if _, err := proc.Step(); err != nil {
			return "", err
		}
	}
	switch v := proc.(type) {
	case *forthvm.VM:
		return string(v.Out), nil
	case *jvm.VM:
		return string(v.Out), nil
	}
	return "", nil
}

// ISA returns the workload's instruction set.
func (w *Workload) ISA() core.ISA {
	if w.Lang == "forth" {
		return forthvm.ISA()
	}
	return jvm.ISA()
}

// Forth returns the seven Gforth-equivalent benchmarks in Table VI
// order.
func Forth() []*Workload {
	return []*Workload{Gray(), BenchGC(), TSCP(), VMGen(), Cross(), Brainless(), Brew()}
}

// Java returns the seven SPECjvm98-equivalent benchmarks in the
// paper's Figure 9 order (jack, mpeg, compress, javac, jess, db,
// mtrt).
func Java() []*Workload {
	return []*Workload{Jack(), MPEG(), Compress(), Javac(), Jess(), DB(), MTRT()}
}

// ByName finds a workload in either suite.
func ByName(name string) (*Workload, error) {
	for _, w := range append(Forth(), Java()...) {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// lcgForth is the shared pseudo-random generator preamble used by the
// Forth workloads (31-bit linear congruential generator).
const lcgForth = `
variable seed
: rnd ( -- n ) seed @ 1103515245 * 12345 + 2147483647 and dup seed ! 16 rshift ;
: rnd-mod ( m -- n ) rnd swap mod ;
`

// LCGNext mirrors the workload generators' LCG in Go, for reference
// implementations in tests.
func LCGNext(seed int64) int64 {
	return (seed*1103515245 + 12345) & 0x7fffffff
}
