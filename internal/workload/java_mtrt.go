package workload

import "fmt"

// MTRT stands in for SPECjvm98 227_mtrt (a multithreaded ray tracer;
// single-threaded here as our interpreter has one execution context,
// like the paper's counter runs effectively measure): fixed-point
// ray-sphere and ray-plane intersection over a polymorphic object
// list, shading by nearest hit. Character: virtual dispatch to two
// different intersect implementations per pixel — the paper's
// polymorphic invokevirtual stress case — plus integer square roots.
func MTRT() *Workload {
	return &Workload{
		Name:         "mtrt",
		Desc:         "ray tracing program",
		Lang:         "jvm",
		DefaultScale: 11,
		Source:       mtrtSource,
	}
}

func mtrtSource(scale int) string {
	return fmt.Sprintf(`
class Sphere
  field cx
  field cy
  field cz
  field rr
end

class Floor
  field h
end

static dx
static dy
static dz
static objs
static check

; Integer square root by Newton's method.
method Main.isqrt static args 1 locals 3
  ; 0: v, 1: x, 2: y
  iload_0
  iconst 2
  if_icmpge big
  iload_0
  ireturn
big:
  iload_0
  istore_1
newton:
  iload_1
  iload_0
  iload_1
  idiv
  iadd
  iconst 2
  idiv
  istore_2
  iload_2
  iload_1
  if_icmpge fixed
  iload_2
  istore_1
  goto newton
fixed:
  iload_1
  ireturn
end

; Ray-sphere intersection; the ray starts at the origin with
; direction (dx, dy, dz). Returns t << 8, or 1073741824 on miss.
method Sphere.hit virtual args 1 locals 4
  ; 0: this, 1: a = D.D, 2: b = D.C, 3: disc
  getstatic dx
  getstatic dx
  imul
  getstatic dy
  getstatic dy
  imul
  iadd
  getstatic dz
  getstatic dz
  imul
  iadd
  istore_1
  getstatic dx
  iload_0
  getfield Sphere.cx
  imul
  getstatic dy
  iload_0
  getfield Sphere.cy
  imul
  iadd
  getstatic dz
  iload_0
  getfield Sphere.cz
  imul
  iadd
  istore_2
  ; disc = b*b - a*(C.C - rr)
  iload_2
  iload_2
  imul
  iload_1
  iload_0
  getfield Sphere.cx
  iload_0
  getfield Sphere.cx
  imul
  iload_0
  getfield Sphere.cy
  iload_0
  getfield Sphere.cy
  imul
  iadd
  iload_0
  getfield Sphere.cz
  iload_0
  getfield Sphere.cz
  imul
  iadd
  iload_0
  getfield Sphere.rr
  isub
  imul
  isub
  istore_3
  iload_3
  iflt miss
  ; t = (b - sqrt(disc)) << 8 / a
  iload_2
  iload_3
  invokestatic Main.isqrt
  isub
  iconst 256
  imul
  iload_1
  idiv
  dup
  ifle misspop
  ireturn
misspop:
  pop
miss:
  iconst 1073741824
  ireturn
end

; Ray-plane intersection with the horizontal plane y = h.
method Floor.hit virtual args 1 locals 0
  getstatic dy
  ifle miss
  iload_0
  getfield Floor.h
  iconst 256
  imul
  getstatic dy
  idiv
  ireturn
miss:
  iconst 1073741824
  ireturn
end

method Main.buildScene static args 0 locals 1
  iconst 5
  newarray
  putstatic objs
  new Sphere
  istore_0
  iload_0
  iconst -60
  putfield Sphere.cx
  iload_0
  iconst -20
  putfield Sphere.cy
  iload_0
  iconst 300
  putfield Sphere.cz
  iload_0
  iconst 10000
  putfield Sphere.rr
  getstatic objs
  iconst 0
  iload_0
  iastore
  new Sphere
  istore_0
  iload_0
  iconst 80
  putfield Sphere.cx
  iload_0
  iconst 10
  putfield Sphere.cy
  iload_0
  iconst 400
  putfield Sphere.cz
  iload_0
  iconst 22500
  putfield Sphere.rr
  getstatic objs
  iconst 1
  iload_0
  iastore
  new Sphere
  istore_0
  iload_0
  iconst 0
  putfield Sphere.cx
  iload_0
  iconst 60
  putfield Sphere.cy
  iload_0
  iconst 250
  putfield Sphere.cz
  iload_0
  iconst 6400
  putfield Sphere.rr
  getstatic objs
  iconst 2
  iload_0
  iastore
  new Sphere
  istore_0
  iload_0
  iconst -30
  putfield Sphere.cx
  iload_0
  iconst 40
  putfield Sphere.cy
  iload_0
  iconst 500
  putfield Sphere.cz
  iload_0
  iconst 40000
  putfield Sphere.rr
  getstatic objs
  iconst 3
  iload_0
  iastore
  new Floor
  istore_0
  iload_0
  iconst 120
  putfield Floor.h
  getstatic objs
  iconst 4
  iload_0
  iastore
  return
end

; Render one 20x20 frame at the given focal depth.
method Main.render static args 1 locals 6
  ; 0: focal, 1: px, 2: py, 3: tmin, 4: k, 5: t
  iconst 0
  istore_2
yloop:
  iload_2
  iconst 20
  if_icmpge ydone
  iconst 0
  istore_1
xloop:
  iload_1
  iconst 20
  if_icmpge xdone
  ; ray direction
  iload_1
  iconst 10
  isub
  iconst 16
  imul
  putstatic dx
  iload_2
  iconst 10
  isub
  iconst 16
  imul
  putstatic dy
  iload_0
  putstatic dz
  ; nearest hit over the object list
  iconst 1073741824
  istore_3
  iconst 0
  istore 4
oloop:
  iload 4
  iconst 5
  if_icmpge odone
  getstatic objs
  iload 4
  iaload
  invokevirtual hit
  istore 5
  iload 5
  iload_3
  if_icmpge far
  iload 5
  istore_3
far:
  iinc 4 1
  goto oloop
odone:
  ; shade
  getstatic check
  iload_3
  iconst 255
  iand
  iadd
  iconst 16777215
  iand
  putstatic check
  iinc 1 1
  goto xloop
xdone:
  iinc 2 1
  goto yloop
ydone:
  return
end

method Main.main static args 0 locals 1
  iconst 0
  putstatic check
  invokestatic Main.buildScene
  iconst 0
  istore_0
floop:
  iload_0
  iconst %d
  if_icmpge fdone
  iconst 200
  iload_0
  iconst 8
  imul
  iadd
  invokestatic Main.render
  iinc 0 1
  goto floop
fdone:
  getstatic check
  iprint
  return
end
`, scale)
}
