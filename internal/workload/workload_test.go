package workload

import (
	"strconv"
	"strings"
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/jvm"
)

// runOutput executes a workload at a small scale and returns its
// printed fields.
func runOutput(t *testing.T, w *Workload, scale int) []string {
	t.Helper()
	out, err := w.Output(scale, 80_000_000)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	fields := strings.Fields(out)
	if len(fields) == 0 {
		t.Fatalf("%s produced no output", w.Name)
	}
	return fields
}

func atoi(t *testing.T, s string) int64 {
	t.Helper()
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad number %q: %v", s, err)
	}
	return n
}

func TestAllWorkloadsRunAndAreDeterministic(t *testing.T) {
	for _, w := range append(Forth(), Java()...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a := runOutput(t, w, smallScale(w))
			b := runOutput(t, w, smallScale(w))
			if strings.Join(a, " ") != strings.Join(b, " ") {
				t.Errorf("nondeterministic output: %v vs %v", a, b)
			}
		})
	}
}

// smallScale shrinks workloads for unit tests.
func smallScale(w *Workload) int {
	s := w.DefaultScale / 10
	if s < 2 {
		s = 2
	}
	return s
}

func TestWorkloadInventory(t *testing.T) {
	f, j := Forth(), Java()
	if len(f) != 7 || len(j) != 7 {
		t.Fatalf("want 7+7 workloads, got %d+%d", len(f), len(j))
	}
	wantForth := []string{"gray", "bench-gc", "tscp", "vmgen", "cross", "brainless", "brew"}
	for k, w := range f {
		if w.Name != wantForth[k] || w.Lang != "forth" {
			t.Errorf("forth[%d] = %s/%s, want %s", k, w.Name, w.Lang, wantForth[k])
		}
	}
	wantJava := []string{"jack", "mpeg", "compress", "javac", "jess", "db", "mtrt"}
	for k, w := range j {
		if w.Name != wantJava[k] || w.Lang != "jvm" {
			t.Errorf("java[%d] = %s/%s, want %s", k, w.Name, w.Lang, wantJava[k])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("tscp")
	if err != nil || w.Name != "tscp" {
		t.Errorf("ByName(tscp) = %v, %v", w, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown workload should error")
	}
}

// TestGrayChecksumMatchesReference recomputes gray's expression
// checksum with an independent Go implementation of the generator and
// evaluator.
func TestGrayChecksumMatchesReference(t *testing.T) {
	const scale = 50
	fields := runOutput(t, Gray(), scale)
	seed := int64(42)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }
	var gen func(depth int64) int64 // returns value, mirrors gen+parse fused
	gen = func(depth int64) int64 {
		// Forth's "dup 0= 3 rnd-mod 0= or" consumes a random number
		// even when depth is 0 — mirror that exactly.
		isLeaf := depth == 0
		if rndMod(3) == 0 {
			isLeaf = true
		}
		if isLeaf {
			return rndMod(10)
		}
		left := gen(depth - 1)
		add := rndMod(2) != 0
		right := gen(depth - 1)
		var v int64
		if add {
			v = left + right
		} else {
			v = left * right
		}
		return v & 16777215
	}
	check := int64(0)
	for i := 0; i < scale; i++ {
		check = (check + gen(6)) & 16777215
	}
	if got := atoi(t, fields[0]); got != check {
		t.Errorf("gray checksum = %d, want %d", got, check)
	}
}

// TestTSCPMatchesGameTheory verifies the negamax results against the
// Sprague-Grundy solution of the subtraction game: with moves of 1-3
// stones, a position is a first-player win iff XOR of (pile mod 4)
// is nonzero.
func TestTSCPMatchesGameTheory(t *testing.T) {
	const scale = 8
	fields := runOutput(t, TSCP(), scale)
	seed := int64(7)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	wins := int64(0)
	for r := 0; r < scale; r++ {
		var g int64
		for p := 0; p < 3; p++ {
			g ^= (rnd() % 4) % 4
		}
		if g != 0 {
			wins++
		}
	}
	if got := atoi(t, fields[0]); got != wins {
		t.Errorf("tscp wins = %d, game theory says %d", got, wins)
	}
	if nodes := atoi(t, fields[1]); nodes < 100 {
		t.Errorf("suspiciously few search nodes: %d", nodes)
	}
}

// TestBrainlessResultsAreLegal: every searched opening must produce a
// legal minimax value tally, and the three tallies must sum to the
// round count.
func TestBrainlessResultsAreLegal(t *testing.T) {
	const scale = 6
	fields := runOutput(t, Brainless(), scale)
	x, o, d := atoi(t, fields[0]), atoi(t, fields[1]), atoi(t, fields[2])
	if x+o+d != scale {
		t.Errorf("tallies %d+%d+%d != %d rounds", x, o, d, scale)
	}
	if nodes := atoi(t, fields[3]); nodes < 1000 {
		t.Errorf("suspiciously small search: %d nodes", nodes)
	}
}

// TestBenchGCCollects: the GC benchmark must actually collect, and
// the final live count must not exceed the heap size.
func TestBenchGCCollects(t *testing.T) {
	fields := runOutput(t, BenchGC(), 80)
	collections, live := atoi(t, fields[0]), atoi(t, fields[1])
	if collections < 1 {
		t.Errorf("no collections happened")
	}
	if live <= 0 || live > 2000 {
		t.Errorf("implausible live count %d", live)
	}
	// Live data is bounded by 8 roots x full depth-7 tree (127 cells).
	if live > 8*127 {
		t.Errorf("live %d exceeds maximum reachable 1016", live)
	}
}

// TestWorkloadsReachTargetSize: at default scale, each workload
// executes enough VM instructions to be a meaningful benchmark but
// not so many that the full experiment suite crawls.
func TestWorkloadsReachTargetSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale execution")
	}
	for _, w := range append(Forth(), Java()...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, _, err := w.NewProcess(0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := core.Profile(proc, 80_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if d.Steps < 200_000 {
				t.Errorf("%s executes only %d VM instructions at default scale", w.Name, d.Steps)
			}
			if d.Steps > 10_000_000 {
				t.Errorf("%s executes %d VM instructions; too slow for the suite", w.Name, d.Steps)
			}
		})
	}
}

// TestOpcodeDiversity: the paper's effects need working sets where
// common opcodes appear many times; check each Forth workload
// executes a reasonable opcode mix.
func TestOpcodeDiversity(t *testing.T) {
	for _, w := range Forth() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, _, err := w.NewProcess(smallScale(w))
			if err != nil {
				t.Fatal(err)
			}
			d, err := core.Profile(proc, 80_000_000)
			if err != nil {
				t.Fatal(err)
			}
			distinct := 0
			for _, c := range d.OpFreq {
				if c > 0 {
					distinct++
				}
			}
			if distinct < 15 {
				t.Errorf("%s uses only %d distinct opcodes", w.Name, distinct)
			}
		})
	}
}

// TestCompressMatchesReference compares the jasm LZW implementation
// against the independent Go implementation, both the emitted code
// count and the rolling checksum.
func TestCompressMatchesReference(t *testing.T) {
	const scale = 3
	fields := runOutput(t, Compress(), scale)
	wantEmitted, wantCheck := CompressReference(scale)
	if got := atoi(t, fields[0]); got != wantEmitted {
		t.Errorf("compress emitted = %d, want %d", got, wantEmitted)
	}
	if got := atoi(t, fields[1]); got != wantCheck {
		t.Errorf("compress checksum = %d, want %d", got, wantCheck)
	}
}

// TestCompressActuallyCompresses: LZW on the repetitive input must
// emit far fewer codes than input bytes.
func TestCompressActuallyCompresses(t *testing.T) {
	fields := runOutput(t, Compress(), 1)
	emitted := atoi(t, fields[0])
	if emitted >= 4096 {
		t.Errorf("no compression: %d codes for 4096 bytes", emitted)
	}
	if emitted < 16 {
		t.Errorf("implausibly strong compression: %d codes", emitted)
	}
}

// TestJessFires: the rule engine must fire rules.
func TestJessFires(t *testing.T) {
	fields := runOutput(t, Jess(), 50)
	if firings := atoi(t, fields[0]); firings <= 0 {
		t.Errorf("rule engine fired %d rules", firings)
	}
}

// TestDBInsertsAndAccumulates: the op mix must hit all three
// operations.
func TestDBInsertsAndAccumulates(t *testing.T) {
	fields := runOutput(t, DB(), 3000)
	acc, count := atoi(t, fields[0]), atoi(t, fields[1])
	if count <= 0 || count > 512 {
		t.Errorf("implausible record count %d", count)
	}
	if acc <= 0 {
		t.Errorf("lookups accumulated nothing")
	}
}

// TestJackTokenCountsPlausible: token class tallies scale linearly
// with passes over the same input.
func TestJackTokenCountsPlausible(t *testing.T) {
	f1 := runOutput(t, Jack(), 2)
	f2 := runOutput(t, Jack(), 4)
	for k := 0; k < 3; k++ {
		a, b := atoi(t, f1[k]), atoi(t, f2[k])
		if a <= 0 {
			t.Errorf("token class %d never seen", k)
		}
		if b != 2*a {
			t.Errorf("class %d: %d passes->%d, expected exactly double of %d", k, 4, b, a)
		}
	}
}

// TestMTRTShadesHits: the ray tracer must hit objects (checksum far
// above the all-miss value) and scale with frames.
func TestMTRTShadesHits(t *testing.T) {
	f1 := runOutput(t, MTRT(), 1)
	c1 := atoi(t, f1[0])
	if c1 <= 0 {
		t.Error("mtrt produced a zero checksum")
	}
	// All-miss shade would be (1<<30 & 255) = 0 per pixel; any
	// nonzero checksum means real intersections happened.
	f2 := runOutput(t, MTRT(), 2)
	if atoi(t, f2[0]) == c1 {
		t.Error("second frame added nothing to the checksum")
	}
}

// TestQuickableMixPresent: the Java workloads must execute quickable
// instructions (the paper's Section 5.4 machinery must be exercised).
func TestQuickableMixPresent(t *testing.T) {
	for _, w := range Java() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			proc, _, err := w.NewProcess(smallScale(w))
			if err != nil {
				t.Fatal(err)
			}
			quickened := 0
			for !proc.Done() {
				ev, err := proc.Step()
				if err != nil {
					t.Fatal(err)
				}
				if ev.Quickened {
					quickened++
				}
			}
			if quickened == 0 {
				t.Errorf("%s never quickened an instruction", w.Name)
			}
		})
	}
}

// TestJavaWorkloadsSemanticsUnderTechniques: each Java workload gives
// identical output under threaded code and under the most aggressive
// dynamic technique (quickening + code copying must not change
// results).
func TestJavaWorkloadsSemanticsUnderTechniques(t *testing.T) {
	for _, w := range Java() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			outs := map[core.Technique]string{}
			for _, tech := range []core.Technique{core.TPlain, core.TAcrossBB} {
				proc, leaders, err := w.NewProcess(smallScale(w))
				if err != nil {
					t.Fatal(err)
				}
				plan, err := core.BuildPlan(proc.Code(), w.ISA(), core.Config{
					Technique: tech, ExtraLeaders: leaders,
				})
				if err != nil {
					t.Fatal(err)
				}
				sim := cpu.NewSim(cpu.Pentium4Northwood)
				if _, err := core.Run(proc, plan, sim, 80_000_000); err != nil {
					t.Fatalf("%v: %v", tech, err)
				}
				v := proc.(*jvm.VM)
				outs[tech] = string(v.Out)
			}
			if outs[core.TPlain] != outs[core.TAcrossBB] {
				t.Errorf("outputs diverge: %q vs %q", outs[core.TPlain], outs[core.TAcrossBB])
			}
			if outs[core.TPlain] == "" {
				t.Error("no output")
			}
		})
	}
}

// TestCrossChecksumMatchesReference verifies the cross workload (the
// EXECUTE-based meta-interpreter) against an independent Go
// implementation of its compile-and-run pipeline.
func TestCrossChecksumMatchesReference(t *testing.T) {
	const scale = 25
	fields := runOutput(t, Cross(), scale)

	seed := int64(321)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }
	const mask = 16777215

	type inst struct {
		op  int // 0 lit, 1 add, 2 mul, 3 dup, 4 xor
		arg int64
	}
	check := int64(0)
	for round := 0; round < scale; round++ {
		var prog []inst
		depth := 0
		for k := 0; k < 40; k++ {
			if depth < 2 {
				prog = append(prog, inst{op: 0, arg: rndMod(1024)})
				depth++
				continue
			}
			switch rndMod(4) {
			case 0:
				prog = append(prog, inst{op: 0, arg: rndMod(1024)})
				depth++
			case 1:
				prog = append(prog, inst{op: 1})
				depth--
			case 2:
				prog = append(prog, inst{op: 2})
				depth--
			case 3:
				prog = append(prog, inst{op: 3})
				depth++
			}
		}
		for ; depth > 1; depth-- {
			prog = append(prog, inst{op: 4})
		}
		var st []int64
		pop := func() int64 { x := st[len(st)-1]; st = st[:len(st)-1]; return x }
		for _, in := range prog {
			switch in.op {
			case 0:
				st = append(st, in.arg)
			case 1:
				a, b := pop(), pop()
				st = append(st, (a+b)&mask)
			case 2:
				a, b := pop(), pop()
				st = append(st, (a*b)&mask)
			case 3:
				x := pop()
				st = append(st, x, x)
			case 4:
				a, b := pop(), pop()
				st = append(st, a^b)
			}
		}
		check = (check + pop()) & mask
	}
	if got := atoi(t, fields[0]); got != check {
		t.Errorf("cross checksum = %d, want %d", got, check)
	}
}

// TestVMGenChecksumMatchesReference verifies the vmgen workload (the
// template-expanding generator) against an independent Go
// implementation.
func TestVMGenChecksumMatchesReference(t *testing.T) {
	const scale = 40
	fields := runOutput(t, VMGen(), scale)

	seed := int64(99)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }
	const mask = 16777215

	check := int64(0)
	for opc := int64(0); opc < scale; opc++ {
		var out []byte
		emitb := func(b int64) { out = append(out, byte(b&255)) }
		template := func(tpl, length int64) {
			for i := int64(0); i < length; i++ {
				emitb(tpl*17 + i*31)
			}
		}
		nin := rndMod(3) + 1
		nout := rndMod(2) + 1
		// gen-inst: prologue, pops, compute, pushes, epilogue.
		template(1, 8)
		emitb(opc * 13)
		for k := int64(0); k < nin; k++ {
			template(2, 6)
			emitb(k)
		}
		template(opc+4, 10)
		emitb(opc)
		for k := int64(0); k < nout; k++ {
			template(3, 6)
			emitb(k)
		}
		template(5, 9)
		var sum int64
		for _, b := range out {
			sum = (sum + int64(b)) & mask
		}
		check = (check + sum) & mask
	}
	if got := atoi(t, fields[0]); got != check {
		t.Errorf("vmgen checksum = %d, want %d", got, check)
	}
}

// TestBrewMatchesReference verifies the evolutionary-programming
// workload against an independent Go implementation of its
// generation loop (fitness, crossover with the incumbent best, and
// per-gene mutation, with the exact PRNG consumption order).
func TestBrewMatchesReference(t *testing.T) {
	const scale = 7
	fields := runOutput(t, Brew(), scale)

	const (
		popN = 16
		glen = 16
		mask = 16777215
	)
	seed := int64(2024)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }

	score8 := func(x int64) int64 {
		v := (^x) & 255
		var n int64
		for k := 0; k < 8; k++ {
			n += v & 1
			v >>= 1
		}
		return n
	}

	target := make([]int64, glen)
	genomes := make([][]int64, popN)
	for i := range target {
		target[i] = rndMod(256)
	}
	for j := range genomes {
		genomes[j] = make([]int64, glen)
		for i := range genomes[j] {
			genomes[j][i] = rndMod(256)
		}
	}
	fitness := func(ind int) int64 {
		var f int64
		for i := 0; i < glen; i++ {
			f += score8(genomes[ind][i] ^ target[i])
		}
		return f
	}
	evalAll := func() (best int, bestfit int64) {
		bestfit = -1
		for i := 0; i < popN; i++ {
			if f := fitness(i); f > bestfit {
				bestfit, best = f, i
			}
		}
		return best, bestfit
	}

	check := int64(0)
	for g := 0; g < scale; g++ {
		best, bestfit := evalAll()
		for ind := 0; ind < popN; ind++ {
			if ind == best {
				continue
			}
			for i := 0; i < glen; i++ { // crossover
				if rndMod(2) != 0 {
					genomes[ind][i] = genomes[best][i]
				}
			}
			for i := 0; i < glen; i++ { // mutate
				if rndMod(10) == 0 {
					genomes[ind][i] ^= 1 << uint(rndMod(8))
				}
			}
		}
		check = (check + bestfit) & mask
	}
	_, finalBest := evalAll()

	if got := atoi(t, fields[0]); got != finalBest {
		t.Errorf("brew best fitness = %d, want %d", got, finalBest)
	}
	if got := atoi(t, fields[1]); got != check {
		t.Errorf("brew checksum = %d, want %d", got, check)
	}
}

// TestJessMatchesReference verifies the rule engine's total firing
// count against an independent Go implementation.
func TestJessMatchesReference(t *testing.T) {
	const scale = 60
	fields := runOutput(t, Jess(), scale)

	seed := int64(777)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }

	type rule struct{ c1, c2, out int64 }
	rules := make([]rule, 48)
	for i := range rules {
		rules[i] = rule{c1: rndMod(64), c2: rndMod(64), out: rndMod(64)}
	}
	firings := int64(0)
	for round := 0; round < scale; round++ {
		facts := make([]int64, 64)
		for i := range facts {
			if rndMod(4) == 0 {
				facts[i] = 1
			}
		}
		fired := make([]bool, 48)
		for {
			n := 0
			for i, r := range rules {
				if fired[i] || facts[r.c1] == 0 || facts[r.c2] == 0 {
					continue
				}
				facts[r.out] = 1
				fired[i] = true
				firings++
				n++
			}
			if n == 0 {
				break
			}
		}
	}
	if got := atoi(t, fields[0]); got != firings {
		t.Errorf("jess firings = %d, want %d", got, firings)
	}
}

// TestDBMatchesReference verifies the database workload's accumulator
// and record count against a map-based Go implementation (hash
// probing does not affect semantics).
func TestDBMatchesReference(t *testing.T) {
	const scale = 2500
	fields := runOutput(t, DB(), scale)

	seed := int64(1991)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }

	vals := map[int64]int64{}
	acc, count := int64(0), int64(0)
	for i := 0; i < scale; i++ {
		key := rndMod(512)
		switch rndMod(4) {
		case 0:
			v := rndMod(1000)
			if _, ok := vals[key]; !ok {
				count++
			}
			vals[key] = v
		case 1:
			acc = (acc + vals[key]) & 16777215
		default:
			if _, ok := vals[key]; ok {
				vals[key]++
			}
		}
	}
	if got := atoi(t, fields[0]); got != acc {
		t.Errorf("db acc = %d, want %d", got, acc)
	}
	if got := atoi(t, fields[1]); got != count {
		t.Errorf("db count = %d, want %d", got, count)
	}
}

// TestMPEGMatchesReference verifies the subband synthesis checksum
// against an independent Go implementation.
func TestMPEGMatchesReference(t *testing.T) {
	const scale = 12
	fields := runOutput(t, MPEG(), scale)

	seed := int64(20212)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	window := make([]int64, 32)
	samples := make([]int64, 1024)
	for i := range window {
		window[i] = rnd()&255 - 128
	}
	for i := range samples {
		samples[i] = rnd()&255 - 128
	}
	check := int64(0)
	for f := int64(0); f < scale; f++ {
		prev := int64(0)
		for sb := int64(0); sb < 32; sb++ {
			acc := int64(0)
			for k := int64(0); k < 16; k++ {
				idx := (f*32 + sb + k) & 1023
				acc += window[(sb+k)&31] * samples[idx]
			}
			acc = acc>>6 + prev
			prev = acc
			check = (check + acc) & 16777215
		}
	}
	if got := atoi(t, fields[0]); got != check {
		t.Errorf("mpeg checksum = %d, want %d", got, check)
	}
}

// TestJavacMatchesReference verifies the shunting-yard workload
// against an independent Go implementation (generation, translation
// and evaluation).
func TestJavacMatchesReference(t *testing.T) {
	const scale = 70
	fields := runOutput(t, Javac(), scale)

	seed := int64(31337)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	rndMod := func(m int64) int64 { return rnd() % m }
	const mask = 16777215
	const (
		tokAdd = 256
		tokMul = 257
		tokLP  = 258
		tokRP  = 259
	)

	var toks []int64
	var gen func(depth int64)
	gen = func(depth int64) {
		// Unlike gray, depth==0 short-circuits before consuming a
		// random number (the jasm checks iload_0 first).
		if depth != 0 && rndMod(3) != 0 {
			toks = append(toks, tokLP)
			gen(depth - 1)
			if rndMod(2) != 0 {
				toks = append(toks, tokMul)
			} else {
				toks = append(toks, tokAdd)
			}
			gen(depth - 1)
			toks = append(toks, tokRP)
			return
		}
		toks = append(toks, rndMod(256))
	}
	prec := func(op int64) int64 {
		if op == tokMul {
			return 2
		}
		return 1
	}

	check := int64(0)
	for round := 0; round < scale; round++ {
		toks = toks[:0]
		gen(6)
		// Shunting-yard.
		var post, ops []int64
		for _, tk := range toks {
			switch {
			case tk < 256:
				post = append(post, tk)
			case tk == tokLP:
				ops = append(ops, tk)
			case tk == tokRP:
				for {
					top := ops[len(ops)-1]
					ops = ops[:len(ops)-1]
					if top == tokLP {
						break
					}
					post = append(post, top)
				}
			default:
				for len(ops) > 0 && ops[len(ops)-1] != tokLP &&
					prec(ops[len(ops)-1]) >= prec(tk) {
					post = append(post, ops[len(ops)-1])
					ops = ops[:len(ops)-1]
				}
				ops = append(ops, tk)
			}
		}
		for len(ops) > 0 {
			post = append(post, ops[len(ops)-1])
			ops = ops[:len(ops)-1]
		}
		// Evaluate.
		var ev []int64
		for _, tk := range post {
			if tk < 256 {
				ev = append(ev, tk)
				continue
			}
			a, b := ev[len(ev)-2], ev[len(ev)-1]
			ev = ev[:len(ev)-2]
			var v int64
			if tk == tokAdd {
				v = a + b
			} else {
				v = a * b
			}
			ev = append(ev, v&mask)
		}
		check = (check + ev[0]) & mask
	}
	if got := atoi(t, fields[0]); got != check {
		t.Errorf("javac checksum = %d, want %d", got, check)
	}
}

// TestJackMatchesReference verifies the DFA lexer's token tallies
// against an independent Go implementation.
func TestJackMatchesReference(t *testing.T) {
	const scale = 5
	fields := runOutput(t, Jack(), scale)

	seed := int64(424242)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	input := make([]int64, 1024)
	for i := range input {
		r := rnd() % 30
		switch {
		case r < 12:
			input[i] = 97 + r
		case r < 20:
			input[i] = 48 + r - 12
		case r < 26:
			input[i] = 32
		default:
			input[i] = 43 + r - 26
		}
	}
	classOf := func(c int64) int {
		switch {
		case c == 32:
			return 0
		case c >= 97 && c < 123:
			return 1
		case c >= 48 && c < 58:
			return 2
		default:
			return 3
		}
	}
	var idents, numbers, operators int64
	for pass := 0; pass < scale; pass++ {
		pos := 0
		for {
			for pos < 1024 && classOf(input[pos]) == 0 {
				pos++
			}
			if pos >= 1024 {
				break
			}
			cls := classOf(input[pos])
			for {
				pos++
				if pos >= 1024 || cls == 3 {
					break
				}
				c3 := classOf(input[pos])
				if c3 == cls || (cls == 1 && c3 == 2) {
					continue
				}
				break
			}
			switch cls {
			case 1:
				idents++
			case 2:
				numbers++
			default:
				operators++
			}
		}
	}
	if got := atoi(t, fields[0]); got != idents {
		t.Errorf("jack idents = %d, want %d", got, idents)
	}
	if got := atoi(t, fields[1]); got != numbers {
		t.Errorf("jack numbers = %d, want %d", got, numbers)
	}
	if got := atoi(t, fields[2]); got != operators {
		t.Errorf("jack operators = %d, want %d", got, operators)
	}
}

// TestMTRTMatchesReference verifies the fixed-point ray tracer
// against an independent Go implementation (no randomness involved).
func TestMTRTMatchesReference(t *testing.T) {
	const scale = 3
	fields := runOutput(t, MTRT(), scale)

	isqrt := func(v int64) int64 {
		if v < 2 {
			return v
		}
		x := v
		for {
			y := (x + v/x) / 2
			if y >= x {
				return x
			}
			x = y
		}
	}
	const miss = 1073741824
	type sphere struct{ cx, cy, cz, rr int64 }
	spheres := []sphere{
		{-60, -20, 300, 10000},
		{80, 10, 400, 22500},
		{0, 60, 250, 6400},
		{-30, 40, 500, 40000},
	}
	const floorH = 120

	check := int64(0)
	for f := int64(0); f < scale; f++ {
		focal := 200 + f*8
		for py := int64(0); py < 20; py++ {
			for px := int64(0); px < 20; px++ {
				dx, dy, dz := (px-10)*16, (py-10)*16, focal
				tmin := int64(miss)
				hitS := func(s sphere) int64 {
					a := dx*dx + dy*dy + dz*dz
					b := dx*s.cx + dy*s.cy + dz*s.cz
					cc := s.cx*s.cx + s.cy*s.cy + s.cz*s.cz - s.rr
					disc := b*b - a*cc
					if disc < 0 {
						return miss
					}
					tv := (b - isqrt(disc)) * 256 / a
					if tv <= 0 {
						return miss
					}
					return tv
				}
				for _, s := range spheres {
					if tv := hitS(s); tv < tmin {
						tmin = tv
					}
				}
				if dy > 0 {
					if tv := int64(floorH) * 256 / dy; tv < tmin {
						tmin = tv
					}
				}
				check = (check + tmin&255) & 16777215
			}
		}
	}
	if got := atoi(t, fields[0]); got != check {
		t.Errorf("mtrt checksum = %d, want %d", got, check)
	}
}

// TestBenchGCMatchesReference verifies the mark-sweep collector
// against an independent Go implementation of the heap, free list,
// and collection policy.
func TestBenchGCMatchesReference(t *testing.T) {
	const scale = 40
	fields := runOutput(t, BenchGC(), scale)

	seed := int64(1234)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	const ncells = 2000
	car := make([]int64, ncells+1) // 1-based refs; 0 is nil
	cdr := make([]int64, ncells+1)
	mark := make([]bool, ncells+1)
	roots := make([]int64, 8)
	var freelist int64
	var nfree, live, collected int64

	initHeap := func() {
		freelist = 0
		nfree = ncells
		for i := int64(1); i <= ncells; i++ {
			cdr[i] = freelist
			freelist = i
		}
	}
	var markRef func(ref int64)
	markRef = func(ref int64) {
		if ref == 0 || mark[ref] {
			return
		}
		mark[ref] = true
		markRef(car[ref])
		markRef(cdr[ref])
	}
	sweep := func() {
		live, nfree, freelist = 0, 0, 0
		for i := int64(1); i <= ncells; i++ {
			if mark[i] {
				live++
				mark[i] = false
			} else {
				cdr[i] = freelist
				freelist = i
				nfree++
			}
		}
	}
	collect := func() {
		collected++
		for _, r := range roots {
			markRef(r)
		}
		sweep()
	}
	alloc := func(a, d int64) int64 {
		ref := freelist
		freelist = cdr[ref]
		nfree--
		cdr[ref] = d
		car[ref] = a
		return ref
	}
	var tree func(d int64) int64
	tree = func(d int64) int64 {
		if d == 0 {
			return 0
		}
		l := tree(d - 1)
		r := tree(d - 1)
		return alloc(l, r)
	}

	initHeap()
	for round := 0; round < scale; round++ {
		if nfree < 130 {
			collect()
		}
		ref := tree(7)
		roots[rnd()%8] = ref
	}
	collect()

	if got := atoi(t, fields[0]); got != collected {
		t.Errorf("bench-gc collections = %d, want %d", got, collected)
	}
	if got := atoi(t, fields[1]); got != live {
		t.Errorf("bench-gc live = %d, want %d", got, live)
	}
}

// TestBrainlessMatchesReference verifies the tic-tac-toe minimax
// searcher against an independent Go implementation, including the
// exact PRNG consumption of the random openings.
func TestBrainlessMatchesReference(t *testing.T) {
	const scale = 5
	fields := runOutput(t, Brainless(), scale)

	seed := int64(555)
	rnd := func() int64 { seed = LCGNext(seed); return seed >> 16 }
	lines := [8][3]int{
		{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
		{0, 3, 6}, {1, 4, 7}, {2, 5, 8},
		{0, 4, 8}, {2, 4, 6},
	}
	var board [9]int64
	won := func(p int64) bool {
		for _, l := range lines {
			if board[l[0]] == p && board[l[1]] == p && board[l[2]] == p {
				return true
			}
		}
		return false
	}
	full := func() bool {
		for _, c := range board {
			if c == 0 {
				return false
			}
		}
		return true
	}
	var nodes int64
	var minimax func(p int64) int64
	minimax = func(p int64) int64 {
		nodes++
		if won(3 - p) {
			return -1
		}
		if full() {
			return 0
		}
		best := int64(-2)
		for i := 0; i < 9; i++ {
			if board[i] != 0 {
				continue
			}
			board[i] = p
			v := -minimax(3 - p)
			board[i] = 0
			if v > best {
				best = v
			}
		}
		return best
	}

	var xwins, owins, draws int64
	for round := 0; round < scale; round++ {
		board = [9]int64{}
		for mv := int64(0); mv < 4; mv++ {
			var r int64
			for {
				r = rnd() % 9
				if board[r] == 0 {
					break
				}
			}
			board[r] = mv%2 + 1
		}
		switch v := minimax(1); {
		case v > 0:
			xwins++
		case v < 0:
			owins++
		default:
			draws++
		}
	}
	for k, want := range []int64{xwins, owins, draws, nodes} {
		if got := atoi(t, fields[k]); got != want {
			t.Errorf("brainless field %d = %d, want %d", k, got, want)
		}
	}
}
