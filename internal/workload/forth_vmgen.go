package workload

import "fmt"

// VMGen stands in for the paper's "vmgen" interpreter generator
// benchmark: for a stream of synthetic VM instruction specifications
// (opcode, inputs, outputs) it emits C-like glue code into an output
// buffer by expanding byte templates, then checksums the generated
// text. Character: template expansion — byte stores, short counted
// loops, table-driven word selection.
func VMGen() *Workload {
	return &Workload{
		Name:         "vmgen",
		Desc:         "interpreter generator",
		Lang:         "forth",
		DefaultScale: 1000,
		Source:       vmgenSource,
	}
}

func vmgenSource(scale int) string {
	return lcgForth + fmt.Sprintf(`
array out 65536
variable op
variable check

: emitb ( b -- ) 255 and out op @ + c! 1 op +! ;

\ Expand template t as len pseudo-text bytes.
: template ( t len -- )
  0 do dup 17 * i 31 * + emitb loop drop ;

: prologue ( opc -- ) 1 8 template 13 * emitb ;
: pop-arg ( k -- ) 2 6 template emitb ;
: push-res ( k -- ) 3 6 template emitb ;
: compute ( opc -- ) dup 4 + 10 template emitb ;
: epilogue ( -- ) 5 9 template ;

: gen-inst ( opc nin nout -- )
  >r >r
  dup prologue
  r> 0 do i pop-arg loop
  compute
  r> 0 do i push-res loop
  epilogue ;

: checksum ( -- )
  0
  op @ 0 do out i + c@ + 16777215 and loop
  check @ + 16777215 and check ! ;

: round ( opc -- )
  0 op !
  3 rnd-mod 1+
  2 rnd-mod 1+
  gen-inst
  checksum ;

: main
  99 seed !
  0 check !
  %d 0 do i round loop
  check @ . ;
main
`, scale)
}
