package workload

import "fmt"

// Brainless stands in for the paper's "brainless" chess benchmark:
// a second, structurally different game-tree searcher — full minimax
// over tic-tac-toe positions with a line-table evaluator. Character:
// table scans inside deep recursion; branchier evaluation than tscp.
func Brainless() *Workload {
	return &Workload{
		Name:         "brainless",
		Desc:         "chess (minimax with line table)",
		Lang:         "forth",
		DefaultScale: 30,
		Source:       brainlessSource,
	}
}

func brainlessSource(scale int) string {
	return lcgForth + fmt.Sprintf(`
array board 9
array lines 24
variable nodes
variable draws
variable xwins
variable owins

: line! ( a b c idx -- )
  3 * lines +
  tuck 2 + !
  tuck 1 + !
  ! ;

: init-lines ( -- )
  0 1 2 0 line!
  3 4 5 1 line!
  6 7 8 2 line!
  0 3 6 3 line!
  1 4 7 4 line!
  2 5 8 5 line!
  0 4 8 6 line!
  2 4 6 7 line! ;

: cell@ ( k -- v ) board + @ ;

: line-won? ( p idx -- f )
  3 * lines +
  dup @ cell@ 2 pick =
  over 1 + @ cell@ 3 pick = and
  swap 2 + @ cell@ rot = and ;

: won? ( p -- f )
  0
  8 0 do
    over i line-won? if drop -1 leave then
  loop
  nip ;

: full? ( -- f )
  -1
  9 0 do i cell@ 0= if drop 0 leave then loop ;

\ Minimax: value for the player p to move (+1 win, 0 draw, -1 loss).
: minimax ( p -- v )
  1 nodes +!
  dup 3 swap - won? if drop -1 exit then
  full? if drop 0 exit then
  -2 swap                    \ best p
  9 0 do
    i cell@ 0= if
      dup board i + !        \ place p
      dup 3 swap - recurse negate
      0 board i + !          \ undo
      rot max swap           \ best' p
    then
  loop
  drop ;

: random-opening ( n -- )
  9 0 do 0 board i + ! loop
  0 do
    begin 9 rnd-mod dup cell@ 0= 0= while drop repeat
    i 2 mod 1+ swap board + !
  loop ;

: round ( -- )
  4 random-opening
  1 minimax
  dup 0 > if 1 xwins +! then
  dup 0 < if 1 owins +! then
  0= if 1 draws +! then ;

: main
  init-lines
  555 seed !
  0 nodes ! 0 draws ! 0 xwins ! 0 owins !
  %d 0 do round loop
  xwins @ . owins @ . draws @ . nodes @ . ;
main
`, scale)
}
