package workload

import "fmt"

// Javac stands in for SPECjvm98 213_javac: the front half of a
// compiler — an operator-precedence (shunting-yard) translation of
// pseudo-random infix expressions to postfix, followed by evaluation
// of the postfix code. Character: two cooperating stack machines
// with token dispatch — call-heavy with data-dependent branches.
func Javac() *Workload {
	return &Workload{
		Name:         "javac",
		Desc:         "compiler front end (infix to postfix)",
		Lang:         "jvm",
		DefaultScale: 600,
		Source:       javacSource,
	}
}

func javacSource(scale int) string {
	// Token encoding: 0..255 literal, 256 '+', 257 '*', 258 '(',
	// 259 ')'.
	return fmt.Sprintf(`
static seed
static toks
static ntoks
static post
static npost
static opstack
static nops
static evstack
static nev
static check

method Main.rnd static args 0 locals 0
  getstatic seed
  iconst 1103515245
  imul
  iconst 12345
  iadd
  iconst 2147483647
  iand
  dup
  putstatic seed
  iconst 16
  ishr
  ireturn
end

method Main.emitTok static args 1 locals 0
  getstatic toks
  getstatic ntoks
  iload_0
  iastore
  getstatic ntoks
  iconst 1
  iadd
  putstatic ntoks
  return
end

; Generate a parenthesized infix expression of the given depth.
method Main.genExpr static args 1 locals 0
  iload_0
  ifeq leaf
  invokestatic Main.rnd
  iconst 3
  irem
  ifeq leaf
  iconst 258
  invokestatic Main.emitTok
  iload_0
  iconst 1
  isub
  invokestatic Main.genExpr
  invokestatic Main.rnd
  iconst 2
  irem
  ifeq plus
  iconst 257
  invokestatic Main.emitTok
  goto emitted
plus:
  iconst 256
  invokestatic Main.emitTok
emitted:
  iload_0
  iconst 1
  isub
  invokestatic Main.genExpr
  iconst 259
  invokestatic Main.emitTok
  return
leaf:
  invokestatic Main.rnd
  iconst 256
  irem
  invokestatic Main.emitTok
  return
end

method Main.prec static args 1 locals 0
  iload_0
  iconst 257
  if_icmpeq high
  iconst 1
  ireturn
high:
  iconst 2
  ireturn
end

method Main.emitPost static args 1 locals 0
  getstatic post
  getstatic npost
  iload_0
  iastore
  getstatic npost
  iconst 1
  iadd
  putstatic npost
  return
end

method Main.pushOp static args 1 locals 0
  getstatic opstack
  getstatic nops
  iload_0
  iastore
  getstatic nops
  iconst 1
  iadd
  putstatic nops
  return
end

method Main.popOp static args 0 locals 0
  getstatic nops
  iconst 1
  isub
  putstatic nops
  getstatic opstack
  getstatic nops
  iaload
  ireturn
end

; Shunting-yard translation of the token buffer to postfix.
method Main.toPostfix static args 0 locals 2
  ; 0: i, 1: tok
  iconst 0
  putstatic npost
  iconst 0
  putstatic nops
  iconst 0
  istore_0
loop:
  iload_0
  getstatic ntoks
  if_icmpge drain
  getstatic toks
  iload_0
  iaload
  istore_1
  iload_1
  iconst 256
  if_icmplt literal
  iload_1
  iconst 258
  if_icmpeq lparen
  iload_1
  iconst 259
  if_icmpeq rparen
  ; operator: pop while top has >= precedence
opwhile:
  getstatic nops
  ifeq oppush
  getstatic opstack
  getstatic nops
  iconst 1
  isub
  iaload
  iconst 258
  if_icmpeq oppush
  getstatic opstack
  getstatic nops
  iconst 1
  isub
  iaload
  invokestatic Main.prec
  iload_1
  invokestatic Main.prec
  if_icmplt oppush
  invokestatic Main.popOp
  invokestatic Main.emitPost
  goto opwhile
oppush:
  iload_1
  invokestatic Main.pushOp
  goto next
lparen:
  iload_1
  invokestatic Main.pushOp
  goto next
rparen:
rpwhile:
  invokestatic Main.popOp
  dup
  iconst 258
  if_icmpeq rpdone
  invokestatic Main.emitPost
  goto rpwhile
rpdone:
  pop
  goto next
literal:
  iload_1
  invokestatic Main.emitPost
next:
  iinc 0 1
  goto loop
drain:
  getstatic nops
  ifeq done
  invokestatic Main.popOp
  invokestatic Main.emitPost
  goto drain
done:
  return
end

; Evaluate the postfix buffer.
method Main.eval static args 0 locals 3
  ; 0: i, 1: tok, 2: scratch
  iconst 0
  putstatic nev
  iconst 0
  istore_0
loop:
  iload_0
  getstatic npost
  if_icmpge done
  getstatic post
  iload_0
  iaload
  istore_1
  iload_1
  iconst 256
  if_icmplt lit
  ; pop two, apply, push
  getstatic nev
  iconst 2
  isub
  putstatic nev
  getstatic evstack
  getstatic nev
  iaload
  getstatic evstack
  getstatic nev
  iconst 1
  iadd
  iaload
  iload_1
  iconst 256
  if_icmpeq add
  imul
  goto apply
add:
  iadd
apply:
  iconst 16777215
  iand
  istore_2
  getstatic evstack
  getstatic nev
  iload_2
  iastore
  getstatic nev
  iconst 1
  iadd
  putstatic nev
  goto next
lit:
  getstatic evstack
  getstatic nev
  iload_1
  iastore
  getstatic nev
  iconst 1
  iadd
  putstatic nev
next:
  iinc 0 1
  goto loop
done:
  getstatic nev
  iconst 1
  isub
  putstatic nev
  getstatic evstack
  getstatic nev
  iaload
  getstatic check
  iadd
  iconst 16777215
  iand
  putstatic check
  return
end

method Main.main static args 0 locals 1
  iconst 31337
  putstatic seed
  iconst 0
  putstatic check
  iconst 4096
  newarray
  putstatic toks
  iconst 4096
  newarray
  putstatic post
  iconst 256
  newarray
  putstatic opstack
  iconst 256
  newarray
  putstatic evstack
  iconst 0
  istore_0
round:
  iload_0
  iconst %d
  if_icmpge over
  iconst 0
  putstatic ntoks
  iconst 6
  invokestatic Main.genExpr
  invokestatic Main.toPostfix
  invokestatic Main.eval
  iinc 0 1
  goto round
over:
  getstatic check
  iprint
  return
end
`, scale)
}
