package workload

import "fmt"

// Jack stands in for SPECjvm98 228_jack (a parser generator with
// lexical analysis): a hand-written DFA lexer tokenizes synthetic
// program text repeatedly, counting identifiers, numbers, operators
// and skipped whitespace. Character: a tight scanner loop dispatching
// on character classes through an object (getfield/putfield heavy,
// quickening on the hot path).
func Jack() *Workload {
	return &Workload{
		Name:         "jack",
		Desc:         "parser generator (lexical analysis)",
		Lang:         "jvm",
		DefaultScale: 45,
		Source:       jackSource,
	}
}

func jackSource(scale int) string {
	return fmt.Sprintf(`
class Lexer
  field pos
  field len
  field buf
  field idents
  field numbers
  field operators
end

static seed
static input

method Main.rnd static args 0 locals 0
  getstatic seed
  iconst 1103515245
  imul
  iconst 12345
  iadd
  iconst 2147483647
  iand
  dup
  putstatic seed
  iconst 16
  ishr
  ireturn
end

; Synthetic program text: letters, digits, spaces and operators.
method Main.buildInput static args 0 locals 2
  iconst 1024
  newarray
  putstatic input
  iconst 0
  istore_0
floop:
  iload_0
  iconst 1024
  if_icmpge fdone
  invokestatic Main.rnd
  iconst 30
  irem
  istore_1
  iload_1
  iconst 12
  if_icmpge notletter
  getstatic input
  iload_0
  iconst 97
  iload_1
  iadd
  iastore
  goto next
notletter:
  iload_1
  iconst 20
  if_icmpge notdigit
  getstatic input
  iload_0
  iconst 48
  iload_1
  iconst 12
  isub
  iadd
  iastore
  goto next
notdigit:
  iload_1
  iconst 26
  if_icmpge notspace
  getstatic input
  iload_0
  iconst 32
  iastore
  goto next
notspace:
  getstatic input
  iload_0
  iconst 43
  iload_1
  iconst 26
  isub
  iadd
  iastore
next:
  iinc 0 1
  goto floop
fdone:
  return
end

; Character classes: 0 space, 1 letter, 2 digit, 3 operator.
method Main.classOf static args 1 locals 0
  iload_0
  iconst 32
  if_icmpne notsp
  iconst 0
  ireturn
notsp:
  iload_0
  iconst 97
  if_icmplt op
  iload_0
  iconst 123
  if_icmpge op
  iconst 1
  ireturn
op:
  iload_0
  iconst 48
  if_icmplt isop
  iload_0
  iconst 58
  if_icmpge isop
  iconst 2
  ireturn
isop:
  iconst 3
  ireturn
end

; Scan one token; returns its class or -1 at end of input.
method Lexer.next virtual args 1 locals 4
  ; 0: this, 1: c, 2: class, 3: scratch
skipws:
  iload_0
  getfield Lexer.pos
  iload_0
  getfield Lexer.len
  if_icmpge eof
  getstatic input
  iload_0
  getfield Lexer.pos
  iaload
  istore_1
  iload_1
  invokestatic Main.classOf
  istore_2
  iload_2
  ifne token
  ; whitespace: advance and continue
  iload_0
  iload_0
  getfield Lexer.pos
  iconst 1
  iadd
  putfield Lexer.pos
  goto skipws
token:
  ; consume the run of same-class characters (letters absorb digits)
consume:
  iload_0
  iload_0
  getfield Lexer.pos
  iconst 1
  iadd
  putfield Lexer.pos
  iload_0
  getfield Lexer.pos
  iload_0
  getfield Lexer.len
  if_icmpge done
  getstatic input
  iload_0
  getfield Lexer.pos
  iaload
  invokestatic Main.classOf
  istore_3
  ; operators are single characters
  iload_2
  iconst 3
  if_icmpeq done
  iload_3
  iload_2
  if_icmpeq consume
  ; identifiers absorb trailing digits
  iload_2
  iconst 1
  if_icmpne done
  iload_3
  iconst 2
  if_icmpeq consume
done:
  iload_2
  ireturn
eof:
  iconst -1
  ireturn
end

method Lexer.scanAll virtual args 1 locals 2
  iload_0
  iconst 0
  putfield Lexer.pos
loop:
  iload_0
  invokevirtual next
  istore_1
  iload_1
  iflt done
  iload_1
  iconst 1
  if_icmpne notid
  iload_0
  iload_0
  getfield Lexer.idents
  iconst 1
  iadd
  putfield Lexer.idents
  goto loop
notid:
  iload_1
  iconst 2
  if_icmpne notnum
  iload_0
  iload_0
  getfield Lexer.numbers
  iconst 1
  iadd
  putfield Lexer.numbers
  goto loop
notnum:
  iload_0
  iload_0
  getfield Lexer.operators
  iconst 1
  iadd
  putfield Lexer.operators
  goto loop
done:
  return
end

method Main.main static args 0 locals 2
  iconst 424242
  putstatic seed
  invokestatic Main.buildInput
  new Lexer
  istore_0
  iload_0
  iconst 1024
  putfield Lexer.len
  iconst 0
  istore_1
rloop:
  iload_1
  iconst %d
  if_icmpge rdone
  iload_0
  invokevirtual scanAll
  iinc 1 1
  goto rloop
rdone:
  iload_0
  getfield Lexer.idents
  iprint
  iload_0
  getfield Lexer.numbers
  iprint
  iload_0
  getfield Lexer.operators
  iprint
  return
end
`, scale)
}
