package workload

import "fmt"

// TSCP stands in for the paper's "tscp" chess benchmark: exhaustive
// negamax game-tree search, here over the three-pile subtraction game
// (take 1-3 stones; taking the last stone wins). Character: deep
// recursion inside nested loops, compact evaluation — the
// call/return-dominated profile of a chess searcher.
func TSCP() *Workload {
	return &Workload{
		Name:         "tscp",
		Desc:         "chess (game-tree search)",
		Lang:         "forth",
		DefaultScale: 60,
		Source:       tscpSource,
	}
}

func tscpSource(scale int) string {
	return lcgForth + fmt.Sprintf(`
array piles 3
variable nodes
variable wins

: moves-exist ( -- f )
  piles @ piles 1 + @ or piles 2 + @ or 0<> ;

\ Negamax over the subtraction game: value +1 = player to move wins.
: negamax ( -- v )
  1 nodes +!
  moves-exist 0= if -1 exit then
  -2
  3 0 do
    4 1 do
      piles j + @ i >= if
        piles j + @ i - piles j + !
        negamax negate max
        piles j + @ i + piles j + !
      then
    loop
  loop ;

: round ( -- )
  3 0 do 4 rnd-mod piles i + ! loop
  negamax 0 > if 1 wins +! then ;

: main
  7 seed !
  0 nodes ! 0 wins !
  %d 0 do round loop
  wins @ .
  nodes @ . ;
main
`, scale)
}
