package workload

import "fmt"

// MPEG stands in for SPECjvm98 222_mpegaudio: fixed-point subband
// synthesis — windowed dot products and a butterfly pass over integer
// arrays. Character: long arithmetic basic blocks with array indexing
// and few calls, the longest-block workload in the Java suite (the
// paper notes Java basic blocks are longer than Forth's; mpeg is the
// extreme).
func MPEG() *Workload {
	return &Workload{
		Name:         "mpeg",
		Desc:         "MPEG audio decoder (fixed-point subband synthesis)",
		Lang:         "jvm",
		DefaultScale: 150,
		Source:       mpegSource,
	}
}

func mpegSource(scale int) string {
	return fmt.Sprintf(`
static seed
static window
static samples
static check

method Main.rnd static args 0 locals 0
  getstatic seed
  iconst 1103515245
  imul
  iconst 12345
  iadd
  iconst 2147483647
  iand
  dup
  putstatic seed
  iconst 16
  ishr
  ireturn
end

; Fill the window and sample arrays with pseudo-random fixed-point
; values in [-128, 127].
method Main.init static args 0 locals 1
  iconst 32
  newarray
  putstatic window
  iconst 1024
  newarray
  putstatic samples
  iconst 0
  istore_0
wloop:
  iload_0
  iconst 32
  if_icmpge wdone
  getstatic window
  iload_0
  invokestatic Main.rnd
  iconst 255
  iand
  iconst 128
  isub
  iastore
  iinc 0 1
  goto wloop
wdone:
  iconst 0
  istore_0
sloop:
  iload_0
  iconst 1024
  if_icmpge sdone
  getstatic samples
  iload_0
  invokestatic Main.rnd
  iconst 255
  iand
  iconst 128
  isub
  iastore
  iinc 0 1
  goto sloop
sdone:
  return
end

; One frame: 32 subbands, each a 16-tap windowed dot product,
; followed by a butterfly across neighbouring subbands.
method Main.frame static args 1 locals 6
  ; local 0: frame index, 1: sb, 2: k, 3: acc, 4: idx, 5: prev
  iconst 0
  istore_1
  iconst 0
  istore 5
sbloop:
  iload_1
  iconst 32
  if_icmpge sbdone
  iconst 0
  istore_3
  iconst 0
  istore_2
taploop:
  iload_2
  iconst 16
  if_icmpge tapdone
  ; idx = (frame*32 + sb + k) & 1023
  iload_0
  iconst 32
  imul
  iload_1
  iadd
  iload_2
  iadd
  iconst 1023
  iand
  istore 4
  ; acc += window[(sb+k)&31] * samples[idx]
  getstatic window
  iload_1
  iload_2
  iadd
  iconst 31
  iand
  iaload
  getstatic samples
  iload 4
  iaload
  imul
  iload_3
  iadd
  istore_3
  iinc 2 1
  goto taploop
tapdone:
  ; butterfly with the previous subband accumulator
  iload_3
  iconst 6
  ishr
  iload 5
  iadd
  istore_3
  iload_3
  istore 5
  ; check = (check + acc) & 0xffffff
  getstatic check
  iload_3
  iadd
  iconst 16777215
  iand
  putstatic check
  iinc 1 1
  goto sbloop
sbdone:
  return
end

method Main.main static args 0 locals 1
  iconst 20212
  putstatic seed
  iconst 0
  putstatic check
  invokestatic Main.init
  iconst 0
  istore_0
floop:
  iload_0
  iconst %d
  if_icmpge fdone
  iload_0
  invokestatic Main.frame
  iinc 0 1
  goto floop
fdone:
  getstatic check
  iprint
  return
end
`, scale)
}
