package workload

import "fmt"

// Cross stands in for the paper's "cross" Forth cross-compiler
// benchmark: it generates random postfix programs, compiles them into
// threaded code in a buffer (execution tokens plus inline arguments),
// then runs them with an inner interpreter built on EXECUTE.
// Character: a meta-interpreter — the compiled code's dispatch is a
// computed EXECUTE per target instruction, the profile the paper's
// techniques care about most.
func Cross() *Workload {
	return &Workload{
		Name:         "cross",
		Desc:         "Forth cross-compiler",
		Lang:         "forth",
		DefaultScale: 400,
		Source:       crossSource,
	}
}

func crossSource(scale int) string {
	return lcgForth + fmt.Sprintf(`
array target 4096
variable tp      \ compile pointer (in entries of 2 cells)
variable tpos    \ interpreter position
variable targ    \ current inline argument
array tstack 256
variable tsp
variable check
variable depth

: tpush ( v -- ) tstack tsp @ + ! 1 tsp +! ;
: tpop ( -- v ) -1 tsp +! tstack tsp @ + @ ;

\ Target instruction implementations.
: t-lit  targ @ tpush ;
: t-add  tpop tpop + 16777215 and tpush ;
: t-mul  tpop tpop * 16777215 and tpush ;
: t-dup  tpop dup tpush tpush ;
: t-xor  tpop tpop xor tpush ;

: compile1 ( xt arg -- )
  target tp @ 2 * 1+ + !
  target tp @ 2 * + !
  1 tp +! ;

\ Generate one valid postfix token and compile it.
: gen-tok ( -- )
  depth @ 2 < if
    ' t-lit 1024 rnd-mod compile1
    1 depth +!
  else
    4 rnd-mod
    dup 0 = if drop ' t-lit 1024 rnd-mod compile1 1 depth +! exit then
    dup 1 = if drop ' t-add 0 compile1 -1 depth +! exit then
    dup 2 = if drop ' t-mul 0 compile1 -1 depth +! exit then
    dup 3 = if drop ' t-dup 0 compile1 1 depth +! exit then
    drop
  then ;

\ Drain the simulated stack to depth 1 with adds.
: gen-drain ( -- )
  begin depth @ 1 > while
    ' t-xor 0 compile1
    -1 depth +!
  repeat ;

: compile-prog ( -- )
  0 tp ! 0 depth !
  40 0 do gen-tok loop
  gen-drain ;

\ The inner interpreter: fetch xt and argument, EXECUTE.
: run-prog ( -- )
  0 tpos ! 0 tsp !
  begin tpos @ tp @ < while
    target tpos @ 2 * + @
    target tpos @ 2 * 1+ + @ targ !
    1 tpos +!
    execute
  repeat ;

: round ( -- )
  compile-prog
  run-prog
  tpop check @ + 16777215 and check ! ;

: main
  321 seed !
  0 check !
  %d 0 do round loop
  check @ . ;
main
`, scale)
}
