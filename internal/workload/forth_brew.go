package workload

import "fmt"

// Brew stands in for the paper's "brew" evolutionary programming
// benchmark: a population of bit-string genomes evolves toward a
// hidden target under mutation and crossover with the current best.
// Character: bit-twiddling fitness loops over arrays, tournament-free
// steady-state evolution — long-running nested loops with moderate
// branching.
func Brew() *Workload {
	return &Workload{
		Name:         "brew",
		Desc:         "evolutionary programming",
		Lang:         "forth",
		DefaultScale: 60,
		Source:       brewSource,
	}
}

func brewSource(scale int) string {
	return lcgForth + fmt.Sprintf(`
constant pop 16
constant glen 16
array genomes 256
array targetg 16
array fits 16
variable best
variable bestfit
variable check

: gene-addr ( ind k -- a ) swap glen * + genomes + ;

\ Count matching bits in the low byte.
: score8 ( x -- n )
  255 and 255 xor
  0 swap
  8 0 do
    dup 1 and rot + swap
    2/
  loop
  drop ;

: fitness ( ind -- f )
  0
  glen 0 do
    over i gene-addr @
    targetg i + @ xor
    score8 +
  loop
  nip ;

: eval-all ( -- )
  -1 bestfit ! 0 best !
  pop 0 do
    i fitness
    dup fits i + !
    dup bestfit @ > if
      bestfit ! i best !
    else
      drop
    then
  loop ;

: mutate ( ind -- )
  glen 0 do
    10 rnd-mod 0= if
      dup i gene-addr
      dup @ 1 8 rnd-mod lshift xor
      swap !
    then
  loop
  drop ;

: crossover ( ind -- )
  glen 0 do
    2 rnd-mod if
      best @ i gene-addr @
      over i gene-addr !
    then
  loop
  drop ;

: generation ( -- )
  eval-all
  pop 0 do
    i best @ <> if
      i crossover
      i mutate
    then
  loop ;

: init ( -- )
  glen 0 do 256 rnd-mod targetg i + ! loop
  pop 0 do
    glen 0 do
      256 rnd-mod j i gene-addr !
    loop
  loop ;

: main
  2024 seed !
  0 check !
  init
  %d 0 do
    generation
    bestfit @ check @ + 16777215 and check !
  loop
  eval-all
  bestfit @ .
  check @ . ;
main
`, scale)
}
