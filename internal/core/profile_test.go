package core_test

import (
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
)

func TestProfileCountsMatchExecution(t *testing.T) {
	p := forth.MustCompile("variable s 10 0 do i s +! loop s @ .")
	vm := p.NewVM(64)
	d, err := core.Profile(vm, 1_000_000)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if d.Steps == 0 {
		t.Fatal("no steps profiled")
	}
	var sumOp, sumPos uint64
	for _, c := range d.OpFreq {
		sumOp += c
	}
	for _, c := range d.PosFreq {
		sumPos += c
	}
	if sumOp != d.Steps || sumPos != d.Steps {
		t.Errorf("frequency sums %d/%d != steps %d", sumOp, sumPos, d.Steps)
	}
	// The loop body executes 10 times: i and +! have count >= 10.
	if d.OpFreq[forthvm.OpI] < 10 {
		t.Errorf("i executed %d times, want >= 10", d.OpFreq[forthvm.OpI])
	}
	if d.OpFreq[forthvm.OpPlusStore] < 10 {
		t.Errorf("+! executed %d times, want >= 10", d.OpFreq[forthvm.OpPlusStore])
	}
}

func TestProfileStepLimit(t *testing.T) {
	p := forth.MustCompile("begin 1 drop again")
	vm := p.NewVM(16)
	if _, err := core.Profile(vm, 500); err == nil {
		t.Error("Profile should fail on runaway programs")
	}
}

func TestRunWeights(t *testing.T) {
	p := forth.MustCompile("variable s 20 0 do i s +! loop s @ .")
	vm := p.NewVM(64)
	d, err := core.Profile(vm, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	runs := core.Runs(p.Code, forthvm.ISA(), nil)
	w := d.RunWeights(runs)
	if len(w) != len(runs) {
		t.Fatalf("weights %d != runs %d", len(w), len(runs))
	}
	// At least one run (the loop body) executes ~20 times.
	hot := false
	for _, x := range w {
		if x >= 20 {
			hot = true
		}
	}
	if !hot {
		t.Errorf("no hot run found in weights %v", w)
	}
}

func TestProfileCountsQuickOps(t *testing.T) {
	vm := &quickVM{code: append([]core.Inst(nil), quickLoop...)}
	d, err := core.Profile(vm, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The quickable executed once as qGet... but Profile records the
	// live opcode after the step, so all 20 iterations count as the
	// quick version (which is what replica selection wants).
	if d.OpFreq[qGetQ] != 20 {
		t.Errorf("quick op count = %d, want 20", d.OpFreq[qGetQ])
	}
}
