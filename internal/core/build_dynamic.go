package core

import (
	"vmopt/internal/codegen"
	"vmopt/internal/superinst"
)

// compClass classifies how a VM instruction instance executes under a
// dynamic (code copying) technique.
type compClass uint8

const (
	// clsDyn: relocatable, gets its own run-time copy.
	clsDyn compClass = iota
	// clsShared: non-relocatable, executes from the base
	// interpreter's single copy.
	clsShared
	// clsQuick: quickable, executes from the base interpreter until
	// quickened, then from the gap reserved in the generated code.
	clsQuick
)

func classify(isa ISA, op uint32) compClass {
	m := isa.Meta(op)
	switch {
	case m.Quickable:
		return clsQuick
	case !m.Relocatable:
		return clsShared
	default:
		return clsDyn
	}
}

// setShared points position pos at the base interpreter's routine.
func setShared(p *Plan, lay *staticLayout, pos int, op uint32) {
	p.addr[pos] = lay.workAddr[op]
	p.branchAddr[pos] = lay.branchAddr[op]
	p.seqBranch[pos] = lay.branchAddr[op]
	p.seqDispatch[pos] = true
}

// dynQuicken is the quicken handler shared by all code-copying
// techniques: patch the reserved gap with the quick code, then seal
// the fall-through junctions around the instance where the neighbors
// also execute from generated code (paper Section 5.4: "The
// quickening process replaces this dispatch code with the quick
// version of the executable code, entirely filling the gap").
func dynQuicken(isa ISA) func(pl *Plan, pos int, newOp uint32) {
	return func(pl *Plan, pos int, newOp uint32) {
		m2 := isa.Meta(newOp)
		gap := pl.gapAddr[pos]
		pl.addr[pos] = gap
		pl.workInstrs[pos] = int32(m2.Work)
		pl.workBytes[pos] = int32(m2.Bytes)

		next := pos + 1
		switch {
		case pl.mustSeq[pos] || next >= len(pl.addr) ||
			(pl.addr[next] < codegen.DynamicBase && pl.gapAddr[next] == 0):
			// Structural dispatch, or the next instance executes
			// permanently from shared code: keep dispatching from
			// the branch at the end of the patched gap.
			pl.seqDispatch[pos] = true
			pl.branchAddr[pos] = gap + uint64(m2.Bytes)
			pl.seqBranch[pos] = pl.branchAddr[pos]
		case pl.gapAddr[next] != 0 && pl.addr[next] < codegen.DynamicBase:
			// Next is a not-yet-quickened quickable: fall into its
			// gap stub, which dispatches to the shared routine.
			pl.seqDispatch[pos] = true
			pl.branchAddr[pos] = gap + uint64(m2.Bytes)
			pl.seqBranch[pos] = pl.gapAddr[next]
		default:
			// Next executes from generated code: seal the junction.
			pl.seqDispatch[pos] = false
			pl.seqWork[pos] = ipIncWork
		}

		// Seal the incoming junction if the previous instance also
		// executes from generated code and its dispatch existed only
		// because this position used to run from shared code.
		prev := pos - 1
		if prev >= 0 && !pl.mustSeq[prev] && pl.seqDispatch[prev] &&
			pl.addr[prev] >= codegen.DynamicBase {
			pl.seqDispatch[prev] = false
			pl.seqWork[prev] = ipIncWork
		}
	}
}

// buildDynamicRepl creates one run-time copy per relocatable VM
// instruction instance (Section 5.2, dynamic replication).
func buildDynamicRepl(code []Inst, isa ISA, cfg Config) *Plan {
	p := newPlan(TDynamicRepl, code, isa)
	p.dispatchWork = threadedDispatchWork
	p.dispatchBytes = threadedDispatchBytes
	lay := buildStaticLayout(isa)
	alloc := codegen.NewAllocator(codegen.DynamicBase, 1)
	p.gapAddr = make([]uint64, len(code))
	for pos, in := range code {
		m := isa.Meta(in.Op)
		switch classify(isa, in.Op) {
		case clsQuick:
			p.gapAddr[pos] = alloc.Alloc(m.QuickBytesMax + threadedDispatchBytes)
			setShared(p, lay, pos, in.Op)
			// Under pure replication every instance keeps its own
			// dispatch after quickening.
			p.mustSeq[pos] = true
		case clsShared:
			setShared(p, lay, pos, in.Op)
			p.mustSeq[pos] = true
		default:
			a := alloc.Alloc(m.Bytes + threadedDispatchBytes)
			p.addr[pos] = a
			p.branchAddr[pos] = a + uint64(m.Bytes)
			p.seqBranch[pos] = p.branchAddr[pos]
			p.mustSeq[pos] = true
		}
	}
	p.dynBytes = alloc.Used()
	p.onQuicken = dynQuicken(isa)
	return p
}

// blockLayout is the generated-code layout for one basic block's
// superinstruction: per component, the addresses assigned.
type blockLayout struct {
	addr   []uint64 // component code (0 => shared)
	brAddr []uint64 // dispatch branch used from this component (0 => none allocated)
	gap    []uint64 // quickable gap (0 => none)
	cls    []compClass
}

// layoutSuperBlock allocates the dynamic superinstruction for a
// sequence of opcodes: relocatable components are copied with ip
// increments between them, quickables get gaps, non-relocatables
// split the superinstruction with dispatches to shared code, and the
// block ends in a dispatch.
func layoutSuperBlock(ops []uint32, isa ISA, lay *staticLayout, alloc *codegen.Allocator) *blockLayout {
	k := len(ops)
	bl := &blockLayout{
		addr:   make([]uint64, k),
		brAddr: make([]uint64, k),
		gap:    make([]uint64, k),
		cls:    make([]compClass, k),
	}
	for idx, op := range ops {
		bl.cls[idx] = classify(isa, op)
	}
	for idx, op := range ops {
		m := isa.Meta(op)
		last := idx == k-1
		switch bl.cls[idx] {
		case clsQuick:
			bl.gap[idx] = alloc.Alloc(m.QuickBytesMax + threadedDispatchBytes)
			bl.addr[idx] = lay.workAddr[op]
			bl.brAddr[idx] = lay.branchAddr[op]
		case clsShared:
			bl.addr[idx] = lay.workAddr[op]
			bl.brAddr[idx] = lay.branchAddr[op]
		default:
			bl.addr[idx] = alloc.Alloc(m.Bytes)
			needSlot := last || bl.cls[idx+1] == clsShared
			if needSlot {
				bl.brAddr[idx] = alloc.Alloc(threadedDispatchBytes)
			} else if bl.cls[idx+1] == clsDyn {
				alloc.Alloc(ipIncBytes) // kept ip increment
			}
			// Fall-through into a quickable gap needs no bytes
			// here: the gap starts with its own dispatch stub.
		}
	}
	return bl
}

// applyBlock writes a block layout into the plan for the block
// starting at position start.
func applyBlock(p *Plan, bl *blockLayout, start int) {
	k := len(bl.addr)
	for idx := 0; idx < k; idx++ {
		pos := start + idx
		last := idx == k-1
		p.gapAddr[pos] = bl.gap[idx]
		switch bl.cls[idx] {
		case clsQuick, clsShared:
			p.addr[pos] = bl.addr[idx]
			p.branchAddr[pos] = bl.brAddr[idx]
			p.seqBranch[pos] = bl.brAddr[idx]
			p.seqDispatch[pos] = true
			// A shared component always dispatches; a quickable's
			// dispatch is structural only at block end.
			p.mustSeq[pos] = bl.cls[idx] == clsShared || last
		default:
			p.addr[pos] = bl.addr[idx]
			switch {
			case last:
				p.branchAddr[pos] = bl.brAddr[idx]
				p.seqBranch[pos] = bl.brAddr[idx]
				p.seqDispatch[pos] = true
				p.mustSeq[pos] = true
			case bl.cls[idx+1] == clsShared:
				p.branchAddr[pos] = bl.brAddr[idx]
				p.seqBranch[pos] = bl.brAddr[idx]
				p.seqDispatch[pos] = true
				p.mustSeq[pos] = true
			case bl.cls[idx+1] == clsQuick:
				// Fall into the quickable's gap stub until it is
				// quickened; sealed by dynQuicken afterwards.
				p.branchAddr[pos] = bl.gap[idx+1]
				p.seqBranch[pos] = bl.gap[idx+1]
				p.seqDispatch[pos] = true
			default:
				p.seqDispatch[pos] = false
				p.seqWork[pos] = ipIncWork
			}
		}
	}
}

// buildDynamicSuper creates one dynamic superinstruction per basic
// block. With dedup, identical blocks share one superinstruction
// (Piumarta & Riccardi; TDynamicSuper); without, every block instance
// gets its own copy (TDynamicBoth, dynamic superinstructions with
// replication).
func buildDynamicSuper(code []Inst, isa ISA, cfg Config, dedup bool) *Plan {
	t := TDynamicBoth
	if dedup {
		t = TDynamicSuper
	}
	p := newPlan(t, code, isa)
	p.dispatchWork = threadedDispatchWork
	p.dispatchBytes = threadedDispatchBytes
	p.gapAddr = make([]uint64, len(code))
	lay := buildStaticLayout(isa)
	alloc := codegen.NewAllocator(codegen.DynamicBase, 1)

	seen := make(map[string]*blockLayout)
	for _, b := range Blocks(code, isa, cfg.ExtraLeaders) {
		ops := Ops(code, Block{Start: b.Start, End: b.End})
		var bl *blockLayout
		if dedup {
			key := sigKey(ops)
			bl = seen[key]
			if bl == nil {
				bl = layoutSuperBlock(ops, isa, lay, alloc)
				seen[key] = bl
			}
		} else {
			bl = layoutSuperBlock(ops, isa, lay, alloc)
		}
		applyBlock(p, bl, b.Start)
	}
	p.dynBytes = alloc.Used()
	p.onQuicken = dynQuicken(isa)
	return p
}

func sigKey(ops []uint32) string {
	b := make([]byte, 0, len(ops)*4)
	for _, op := range ops {
		b = append(b, byte(op), byte(op>>8), byte(op>>16), byte(op>>24))
	}
	return string(b)
}

// buildAcrossBB builds dynamic superinstructions with replication
// across basic blocks (Section 5.2): the whole program is copied as
// one run of code per fall-through chain, ip increments are kept so
// VM jumps can enter anywhere, and dispatches remain only for taken
// VM branches, calls, returns and transitions through shared code.
// TWithStaticSuper additionally folds static superinstructions into
// the copied code; TWithStaticSuperAcross lets them cross block
// boundaries at the price of side-entry fallback to shared code
// (Figure 6).
func buildAcrossBB(code []Inst, isa ISA, cfg Config) *Plan {
	p := newPlan(cfg.Technique, code, isa)
	p.dispatchWork = threadedDispatchWork
	p.dispatchBytes = threadedDispatchBytes
	p.gapAddr = make([]uint64, len(code))
	lay := buildStaticLayout(isa)
	alloc := codegen.NewAllocator(codegen.DynamicBase, 1)
	n := len(code)

	// Static superinstruction coverage: pieceIdx[pos] = index of pos
	// within its covering piece (-1 when uncovered); pieceEnd[pos] =
	// end position (exclusive) of the covering piece.
	pieceIdx := make([]int, n)
	pieceEnd := make([]int, n)
	for i := range pieceIdx {
		pieceIdx[i] = -1
	}
	withSupers := cfg.Technique == TWithStaticSuper || cfg.Technique == TWithStaticSuperAcross
	acrossSupers := cfg.Technique == TWithStaticSuperAcross
	if withSupers {
		var runs []Block
		if acrossSupers {
			runs = relocRunsAcross(code, isa)
		} else {
			runs = splitRelocRuns(code, isa, Runs(code, isa, cfg.ExtraLeaders))
		}
		for _, r := range runs {
			ops := Ops(code, r)
			var pieces []superinst.Piece
			if cfg.UseOptimalParse {
				pieces = cfg.Supers.OptimalParse(ops)
			} else {
				pieces = cfg.Supers.GreedyParse(ops)
			}
			for _, piece := range pieces {
				if piece.Super < 0 {
					continue
				}
				for k := 0; k < piece.Len; k++ {
					pos := r.Start + piece.Start + k
					pieceIdx[pos] = k
					pieceEnd[pos] = r.Start + piece.Start + piece.Len
				}
			}
		}
	}

	cls := make([]compClass, n)
	for pos, in := range code {
		cls[pos] = classify(isa, in.Op)
	}

	for pos, in := range code {
		m := isa.Meta(in.Op)
		last := pos == n-1
		switch cls[pos] {
		case clsQuick:
			p.gapAddr[pos] = alloc.Alloc(m.QuickBytesMax + threadedDispatchBytes)
			setShared(p, lay, pos, in.Op)
		case clsShared:
			setShared(p, lay, pos, in.Op)
			p.mustSeq[pos] = true
		default:
			w, b := m.Work, m.Bytes
			if pieceIdx[pos] > 0 {
				// Non-first superinstruction component: junction
				// savings, no ip increment before it.
				w = max(w-staticSuperJunctionSavedWork, 0)
				b = max(b-staticSuperJunctionSavedBytes, 1)
			}
			p.workInstrs[pos] = int32(w)
			p.workBytes[pos] = int32(b)
			p.addr[pos] = alloc.Alloc(b)

			// A control instruction needs an embedded dispatch for
			// its taken path (and calls/returns always dispatch).
			if m.Control() && !m.Stop {
				p.branchAddr[pos] = alloc.Alloc(threadedDispatchBytes)
			}

			// Fall-through boundary.
			switch {
			case last || cls[pos+1] == clsShared:
				slot := p.branchAddr[pos]
				if slot == 0 {
					slot = alloc.Alloc(threadedDispatchBytes)
				}
				if p.branchAddr[pos] == 0 {
					p.branchAddr[pos] = slot
				}
				p.seqBranch[pos] = slot
				p.seqDispatch[pos] = true
				p.mustSeq[pos] = true
			case cls[pos+1] == clsQuick:
				// Fall into the quickable's gap stub (allocated when
				// we reach pos+1; gaps are assigned in this same
				// left-to-right pass, so fix it up afterwards).
				p.seqDispatch[pos] = true
				p.mustSeq[pos] = false
			default:
				p.seqDispatch[pos] = false
				if pieceIdx[pos] >= 0 && pos+1 < n && pieceIdx[pos+1] > 0 {
					// Interior junction of a static super: no ip inc.
					p.seqWork[pos] = 0
				} else {
					p.seqWork[pos] = ipIncWork
					alloc.Alloc(ipIncBytes)
				}
			}
		}
	}

	// Second pass: point fall-through-into-gap junctions at the gap
	// stubs (the gap addresses now all exist).
	for pos := 0; pos < n-1; pos++ {
		if cls[pos] == clsDyn && cls[pos+1] == clsQuick && p.seqDispatch[pos] && !p.mustSeq[pos] {
			p.seqBranch[pos] = p.gapAddr[pos+1]
			if p.branchAddr[pos] == 0 {
				p.branchAddr[pos] = p.gapAddr[pos+1]
			}
		}
	}

	// Side entries for static superinstructions across basic blocks:
	// jumping into the middle of a covered piece executes shared,
	// non-replicated code until the piece ends (paper Figure 6).
	if acrossSupers {
		leaders := Leaders(code, isa, cfg.ExtraLeaders)
		p.sideEntry = make([]bool, n)
		p.shadowUntil = make([]int32, n)
		p.sharedAddr = make([]uint64, n)
		p.sharedBr = make([]uint64, n)
		for pos, in := range code {
			p.sharedAddr[pos] = lay.workAddr[in.Op]
			p.sharedBr[pos] = lay.branchAddr[in.Op]
			if pieceIdx[pos] > 0 && leaders[pos] {
				p.sideEntry[pos] = true
				p.shadowUntil[pos] = int32(pieceEnd[pos])
			}
		}
	}

	p.dynBytes = alloc.Used()
	p.onQuicken = dynQuicken(isa)
	return p
}

// splitRelocRuns restricts runs to stretches of relocatable
// instructions (dynamic code copying cannot fold non-relocatable
// components into superinstructions).
func splitRelocRuns(code []Inst, isa ISA, runs []Block) []Block {
	var out []Block
	for _, r := range runs {
		start := -1
		for pos := r.Start; pos < r.End; pos++ {
			ok := isa.Meta(code[pos].Op).Relocatable
			if ok && start < 0 {
				start = pos
			}
			if !ok && start >= 0 {
				out = append(out, Block{Start: start, End: pos})
				start = -1
			}
		}
		if start >= 0 {
			out = append(out, Block{Start: start, End: r.End})
		}
	}
	return out
}

// relocRunsAcross returns maximal stretches of relocatable,
// non-control, non-quickable instructions ignoring basic-block
// leaders: the parse units for static superinstructions across basic
// blocks.
func relocRunsAcross(code []Inst, isa ISA) []Block {
	var out []Block
	start := -1
	for pos, in := range code {
		m := isa.Meta(in.Op)
		ok := m.Relocatable && !m.Control() && !m.Quickable
		if ok && start < 0 {
			start = pos
		}
		if !ok && start >= 0 {
			out = append(out, Block{Start: start, End: pos})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Block{Start: start, End: len(code)})
	}
	return out
}
