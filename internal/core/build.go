package core

import (
	"fmt"

	"vmopt/internal/codegen"
	"vmopt/internal/superinst"
)

// BuildPlan constructs the code-layout plan for running code under
// cfg.Technique. code must be the live VM code slice of the process
// that will execute (quickening mutates it and plans re-read it).
func BuildPlan(code []Inst, isa ISA, cfg Config) (*Plan, error) {
	if err := validate(code, isa, cfg); err != nil {
		return nil, err
	}
	switch cfg.Technique {
	case TSwitch:
		return buildSwitch(code, isa), nil
	case TPlain:
		return buildPlain(code, isa), nil
	case TStaticRepl:
		return buildStatic(code, isa, cfg, false), nil
	case TStaticSuper, TStaticBoth:
		return buildStatic(code, isa, cfg, true), nil
	case TDynamicRepl:
		return buildDynamicRepl(code, isa, cfg), nil
	case TDynamicSuper:
		return buildDynamicSuper(code, isa, cfg, true), nil
	case TDynamicBoth:
		return buildDynamicSuper(code, isa, cfg, false), nil
	case TAcrossBB, TWithStaticSuper, TWithStaticSuperAcross:
		return buildAcrossBB(code, isa, cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown technique %v", cfg.Technique)
	}
}

// MustBuildPlan is BuildPlan that panics on error.
func MustBuildPlan(code []Inst, isa ISA, cfg Config) *Plan {
	p, err := BuildPlan(code, isa, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func validate(code []Inst, isa ISA, cfg Config) error {
	n := isa.NumOps()
	for pos, in := range code {
		if int(in.Op) >= n {
			return fmt.Errorf("core: position %d has opcode %d outside ISA (%d ops)", pos, in.Op, n)
		}
	}
	if cfg.Technique.IsDynamic() {
		// Dynamic code copying requires the relocatability flags to
		// be trustworthy: run the paper's padding-comparison check.
		if err := VerifyRelocatability(isa); err != nil {
			return err
		}
	}
	if cfg.ReplicaExtra != nil && len(cfg.ReplicaExtra) != n {
		return fmt.Errorf("core: ReplicaExtra has %d entries, ISA has %d ops", len(cfg.ReplicaExtra), n)
	}
	switch cfg.Technique {
	case TStaticSuper, TStaticBoth, TWithStaticSuper, TWithStaticSuperAcross:
		if cfg.Supers == nil {
			return fmt.Errorf("core: technique %v requires a superinstruction table", cfg.Technique)
		}
	}
	if cfg.Supers != nil {
		for id := 0; id < cfg.Supers.NumSupers(); id++ {
			for _, op := range cfg.Supers.Seq(id) {
				m := isa.Meta(op)
				if m.Control() || m.Quickable {
					return fmt.Errorf("core: superinstruction %d contains control/quickable op %s", id, m.Name)
				}
			}
		}
	}
	if cfg.SuperReplicaExtra != nil {
		if cfg.Supers == nil {
			return fmt.Errorf("core: SuperReplicaExtra without a superinstruction table")
		}
		if len(cfg.SuperReplicaExtra) != cfg.Supers.NumSupers() {
			return fmt.Errorf("core: SuperReplicaExtra has %d entries, table has %d supers",
				len(cfg.SuperReplicaExtra), cfg.Supers.NumSupers())
		}
	}
	return nil
}

// buildSwitch models switch dispatch: every position executes its
// opcode's case body, and every dispatch goes through the single
// shared switch branch.
func buildSwitch(code []Inst, isa ISA) *Plan {
	p := newPlan(TSwitch, code, isa)
	lay := buildStaticLayout(isa)
	for pos, in := range code {
		p.addr[pos] = lay.caseAddr[in.Op]
		p.branchAddr[pos] = lay.switchAddr
		p.seqBranch[pos] = lay.switchAddr
	}
	p.dispatchWork = switchDispatchWork
	p.dispatchBytes = switchDispatchBytes
	p.onQuicken = func(pl *Plan, pos int, newOp uint32) {
		m := isa.Meta(newOp)
		pl.workInstrs[pos] = int32(m.Work)
		pl.workBytes[pos] = int32(m.Bytes)
		pl.addr[pos] = lay.caseAddr[newOp]
	}
	return p
}

// buildPlain models threaded code: per-opcode routines, each with its
// own dispatch branch.
func buildPlain(code []Inst, isa ISA) *Plan {
	p := newPlan(TPlain, code, isa)
	lay := buildStaticLayout(isa)
	for pos, in := range code {
		p.addr[pos] = lay.workAddr[in.Op]
		p.branchAddr[pos] = lay.branchAddr[in.Op]
		p.seqBranch[pos] = lay.branchAddr[in.Op]
	}
	p.dispatchWork = threadedDispatchWork
	p.dispatchBytes = threadedDispatchBytes
	p.onQuicken = func(pl *Plan, pos int, newOp uint32) {
		m := isa.Meta(newOp)
		pl.workInstrs[pos] = int32(m.Work)
		pl.workBytes[pos] = int32(m.Bytes)
		pl.addr[pos] = lay.workAddr[newOp]
		pl.branchAddr[pos] = lay.branchAddr[newOp]
		pl.seqBranch[pos] = lay.branchAddr[newOp]
	}
	return p
}

// staticCopies lays out extra copies of opcode routines (and, with a
// table, superinstruction routines) in the interpreter's code
// segment. Copy 0 is the original routine.
type staticCopies struct {
	lay *staticLayout
	// opAddr[op][c] / opBranch[op][c]: copy c of opcode op.
	opAddr   [][]uint64
	opBranch [][]uint64
	opAsg    *superinst.Assigner
	// superAddr[s][c]: copy c of superinstruction s; superSize[s]
	// is its fragment size including final dispatch; superOff[s][k]
	// is component k's offset.
	superAddr [][]uint64
	superSize []int
	superOff  [][]int
	superAsg  *superinst.Assigner
	// copyBytes is the code volume of the extra copies (Gforth's
	// startup-time static replication, Section 6.1).
	copyBytes uint64
}

func buildStaticCopies(isa ISA, cfg Config) *staticCopies {
	lay := buildStaticLayout(isa)
	alloc := codegen.NewAllocator(codegen.StaticBase+0x400000, 16)
	n := isa.NumOps()
	sc := &staticCopies{lay: lay, opAddr: make([][]uint64, n), opBranch: make([][]uint64, n)}

	extra := cfg.ReplicaExtra
	if extra == nil {
		extra = make([]int, n)
	}
	for op := 0; op < n; op++ {
		m := isa.Meta(uint32(op))
		copies := extra[op] + 1
		sc.opAddr[op] = make([]uint64, copies)
		sc.opBranch[op] = make([]uint64, copies)
		sc.opAddr[op][0] = lay.workAddr[op]
		sc.opBranch[op][0] = lay.branchAddr[op]
		for c := 1; c < copies; c++ {
			size := m.Bytes + threadedDispatchBytes
			a := alloc.Alloc(size)
			sc.opAddr[op][c] = a
			sc.opBranch[op][c] = a + uint64(m.Bytes)
			sc.copyBytes += uint64(size)
		}
	}
	sc.opAsg = superinst.NewAssigner(extra, cfg.ReplicaMode, cfg.Seed)

	if cfg.Supers != nil {
		ns := cfg.Supers.NumSupers()
		sextra := cfg.SuperReplicaExtra
		if sextra == nil {
			sextra = make([]int, ns)
		}
		sc.superAddr = make([][]uint64, ns)
		sc.superSize = make([]int, ns)
		sc.superOff = make([][]int, ns)
		for s := 0; s < ns; s++ {
			seq := cfg.Supers.Seq(s)
			offs := make([]int, len(seq))
			size := 0
			for k, op := range seq {
				m := isa.Meta(op)
				b := m.Bytes
				if k > 0 {
					b = max(b-staticSuperJunctionSavedBytes, 1)
				}
				offs[k] = size
				size += b
			}
			size += threadedDispatchBytes
			sc.superOff[s] = offs
			sc.superSize[s] = size
			copies := sextra[s] + 1
			sc.superAddr[s] = make([]uint64, copies)
			for c := 0; c < copies; c++ {
				sc.superAddr[s][c] = alloc.Alloc(size)
				if c > 0 {
					sc.copyBytes += uint64(size)
				}
			}
		}
		sc.superAsg = superinst.NewAssigner(sextra, cfg.ReplicaMode, cfg.Seed+1)
	}
	return sc
}

// applyPlain assigns position pos a (possibly replicated) copy of the
// routine for op.
func (sc *staticCopies) applyPlain(p *Plan, pos int, op uint32, m OpMeta) {
	c := sc.opAsg.Next(op)
	p.addr[pos] = sc.opAddr[op][c]
	p.branchAddr[pos] = sc.opBranch[op][c]
	p.seqBranch[pos] = sc.opBranch[op][c]
	p.workInstrs[pos] = int32(m.Work)
	p.workBytes[pos] = int32(m.Bytes)
	p.seqDispatch[pos] = true
	p.seqWork[pos] = 0
}

// applySuper assigns the piece positions [start, start+len) a copy of
// superinstruction s.
func (sc *staticCopies) applySuper(p *Plan, isa ISA, table *superinst.Table, start int, s int) {
	seq := table.Seq(s)
	c := sc.superAsg.Next(uint32(s))
	base := sc.superAddr[s][c]
	for k, op := range seq {
		pos := start + k
		m := isa.Meta(op)
		w, b := m.Work, m.Bytes
		if k > 0 {
			w = max(w-staticSuperJunctionSavedWork, 0)
			b = max(b-staticSuperJunctionSavedBytes, 1)
		}
		p.addr[pos] = base + uint64(sc.superOff[s][k])
		p.workInstrs[pos] = int32(w)
		p.workBytes[pos] = int32(b)
		if k < len(seq)-1 {
			p.seqDispatch[pos] = false
			p.seqWork[pos] = 0
			p.branchAddr[pos] = 0
			p.seqBranch[pos] = 0
		} else {
			p.seqDispatch[pos] = true
			br := base + uint64(sc.superSize[s]-threadedDispatchBytes)
			p.branchAddr[pos] = br
			p.seqBranch[pos] = br
		}
	}
}

// buildStatic covers static replication, static superinstructions and
// their combination; withSupers distinguishes TStaticRepl from the
// super-using variants.
func buildStatic(code []Inst, isa ISA, cfg Config, withSupers bool) *Plan {
	p := newPlan(cfg.Technique, code, isa)
	p.dispatchWork = threadedDispatchWork
	p.dispatchBytes = threadedDispatchBytes
	sc := buildStaticCopies(isa, cfg)
	if cfg.CountStaticCopies {
		p.dynBytes = sc.copyBytes
	}

	// Default everything to (replicated) plain routines, honoring
	// VM-code order for round-robin assignment.
	for pos, in := range code {
		m := isa.Meta(in.Op)
		if m.Quickable {
			// Quickable instructions are not replicated; they run
			// from the single original and pick a replica of their
			// quick version at quicken time (Section 5.4).
			p.addr[pos] = sc.lay.workAddr[in.Op]
			p.branchAddr[pos] = sc.lay.branchAddr[in.Op]
			p.seqBranch[pos] = sc.lay.branchAddr[in.Op]
			continue
		}
		sc.applyPlain(p, pos, in.Op, m)
	}

	if withSupers && cfg.Supers != nil {
		parse := func(ops []uint32) []superinst.Piece {
			if cfg.UseOptimalParse {
				return cfg.Supers.OptimalParse(ops)
			}
			return cfg.Supers.GreedyParse(ops)
		}
		cover := func(pl *Plan, runs []Block) {
			for _, r := range runs {
				ops := Ops(code, r)
				for _, piece := range parse(ops) {
					if piece.Super >= 0 {
						sc.applySuper(pl, isa, cfg.Supers, r.Start+piece.Start, piece.Super)
					}
				}
			}
		}
		cover(p, Runs(code, isa, cfg.ExtraLeaders))
		blocks := Blocks(code, isa, cfg.ExtraLeaders)
		owner := BlockOf(len(code), blocks)
		// Re-parse on quickening: recompute the eligible runs of the
		// block containing the quickened position against the live
		// code, reset those positions to plain copies, then re-cover.
		p.onQuicken = func(pl *Plan, pos int, newOp uint32) {
			m := isa.Meta(newOp)
			sc.applyPlain(pl, pos, newOp, m)
			b := blocks[owner[pos]]
			var runs []Block
			start := -1
			for q := b.Start; q < b.End; q++ {
				mm := isa.Meta(code[q].Op)
				eligible := !mm.Control() && !mm.Quickable
				if eligible && start < 0 {
					start = q
				}
				if !eligible && start >= 0 {
					runs = append(runs, Block{Start: start, End: q})
					start = -1
				}
			}
			if start >= 0 {
				runs = append(runs, Block{Start: start, End: b.End})
			}
			// Reset run positions to plain before re-covering so
			// stale superinstruction assignments cannot linger.
			for _, r := range runs {
				for q := r.Start; q < r.End; q++ {
					sc.applyPlain(pl, q, code[q].Op, isa.Meta(code[q].Op))
				}
			}
			cover(pl, runs)
		}
	} else {
		// Static replication only: a quickened instruction picks a
		// replica of its quick version.
		p.onQuicken = func(pl *Plan, pos int, newOp uint32) {
			sc.applyPlain(pl, pos, newOp, isa.Meta(newOp))
		}
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
