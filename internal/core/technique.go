package core

import (
	"fmt"

	"vmopt/internal/superinst"
)

// Technique enumerates the dispatch techniques of the paper
// (Section 7.1 interpreter variants).
type Technique int

const (
	// TSwitch is switch dispatch: one shared indirect branch.
	TSwitch Technique = iota
	// TPlain is threaded code: one indirect branch per VM
	// instruction routine (the paper's baseline, "plain").
	TPlain
	// TStaticRepl is static replication with round-robin (or
	// random) copy selection.
	TStaticRepl
	// TStaticSuper is static superinstructions with greedy (or
	// optimal) selection.
	TStaticSuper
	// TStaticBoth combines static superinstructions with replicas
	// of instructions and superinstructions.
	TStaticBoth
	// TDynamicRepl is dynamic replication: a run-time code copy per
	// VM instruction instance.
	TDynamicRepl
	// TDynamicSuper is dynamic superinstructions limited to basic
	// blocks, with identical blocks sharing code (Piumarta &
	// Riccardi).
	TDynamicSuper
	// TDynamicBoth is dynamic superinstructions with replication
	// (one superinstruction per block instance, no sharing).
	TDynamicBoth
	// TAcrossBB extends dynamic superinstructions with replication
	// across basic-block boundaries; only taken VM branches, calls
	// and returns dispatch.
	TAcrossBB
	// TWithStaticSuper composes static superinstructions inside
	// dynamic superinstructions across basic blocks ("with static
	// super").
	TWithStaticSuper
	// TWithStaticSuperAcross additionally lets static
	// superinstructions cross basic-block boundaries, reverting to
	// non-replicated code on side entries ("w/static super across",
	// JVM only in the paper).
	TWithStaticSuperAcross

	numTechniques
)

var techniqueNames = [numTechniques]string{
	TSwitch:                "switch",
	TPlain:                 "plain",
	TStaticRepl:            "static repl",
	TStaticSuper:           "static super",
	TStaticBoth:            "static both",
	TDynamicRepl:           "dynamic repl",
	TDynamicSuper:          "dynamic super",
	TDynamicBoth:           "dynamic both",
	TAcrossBB:              "across bb",
	TWithStaticSuper:       "with static super",
	TWithStaticSuperAcross: "w/static super across",
}

// String returns the paper's name for the technique.
func (t Technique) String() string {
	if t < 0 || t >= numTechniques {
		return fmt.Sprintf("Technique(%d)", int(t))
	}
	return techniqueNames[t]
}

// Techniques returns all techniques in paper order.
func Techniques() []Technique {
	out := make([]Technique, numTechniques)
	for k := range out {
		out[k] = Technique(k)
	}
	return out
}

// TechniqueByName resolves a paper name (e.g. "across bb").
func TechniqueByName(name string) (Technique, error) {
	for k, n := range techniqueNames {
		if n == name {
			return Technique(k), nil
		}
	}
	return 0, fmt.Errorf("core: unknown technique %q", name)
}

// IsDynamic reports whether the technique generates code at run time.
func (t Technique) IsDynamic() bool {
	switch t {
	case TDynamicRepl, TDynamicSuper, TDynamicBoth, TAcrossBB,
		TWithStaticSuper, TWithStaticSuperAcross:
		return true
	}
	return false
}

// Config parameterizes plan construction for a technique.
type Config struct {
	// Technique selects the dispatch technique.
	Technique Technique

	// ReplicaExtra gives per-opcode extra static copies
	// (TStaticRepl, TStaticBoth). Length must be ISA.NumOps when
	// non-nil.
	ReplicaExtra []int
	// SuperReplicaExtra gives per-superinstruction extra static
	// copies (TStaticBoth).
	SuperReplicaExtra []int
	// ReplicaMode selects round-robin or random copy selection.
	ReplicaMode superinst.SelectMode
	// Seed seeds random replica selection.
	Seed int64

	// Supers is the static superinstruction table (static super
	// variants and the with-static-super dynamic variants).
	Supers *superinst.Table
	// UseOptimalParse selects the dynamic-programming parse instead
	// of greedy maximum munch.
	UseOptimalParse bool

	// ExtraLeaders lists code positions reachable through computed
	// control flow (word entry points, method entries).
	ExtraLeaders []int

	// CountStaticCopies models the Gforth implementation detail
	// that static replication copies code at interpreter startup,
	// so static schemes report a few KB of generated code
	// (Section 7.3, "code bytes").
	CountStaticCopies bool
}

// dispatch cost model (native instructions / bytes).
const (
	// Threaded-code dispatch: load target, increment ip, indirect
	// jump (Figure 2).
	threadedDispatchWork  = 3
	threadedDispatchBytes = 8
	// Switch dispatch: bounds check, table load, indirect jump,
	// plus the break branch back to the dispatch site — about three
	// times the threaded sequence (Section 2.1 / Ertl & Gregg).
	switchDispatchWork  = 10
	switchDispatchBytes = 24
	// The VM instruction pointer increment kept inside dynamic
	// superinstructions (Section 5.2).
	ipIncWork  = 1
	ipIncBytes = 3
	// Per-junction native work and code saved by static
	// superinstruction cross-component optimization (Section 5.3:
	// combined stack pointer updates, stack items in registers).
	staticSuperJunctionSavedWork  = 1
	staticSuperJunctionSavedBytes = 4
)
