package core_test

import (
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
	"vmopt/internal/metrics"
	"vmopt/internal/superinst"
)

// bigBTB is a machine with an effectively unbounded BTB and I-cache,
// isolating the inherent prediction behaviour from capacity effects.
var bigBTB = cpu.Machine{
	Name:      "test-bigbtb",
	Predictor: cpu.PredictBTB, BTBEntries: 1 << 18, BTBWays: 4,
	ICacheBytes: 1 << 24, ICacheLine: 64, ICacheWays: 8,
	MispredictPenalty: 10, ICacheMissPenalty: 10,
	CPI: 1, ClockMHz: 1000,
}

const benchSrc = `
	variable sum
	: add-to sum +! ;
	: triangle 0 sum ! 1+ 1 do i add-to loop sum @ ;
	: odd? 1 and 0<> ;
	variable odds
	: count-odds 0 odds ! 100 0 do i odd? if 1 odds +! then loop ;
	count-odds
	20 triangle .
	odds @ .
`

// runTech compiles src, runs it under the technique, and returns the
// counters plus the program output.
func runTech(t *testing.T, src string, cfg core.Config, m cpu.Machine) (metrics.Counters, string) {
	t.Helper()
	p, err := forth.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vm := p.NewVM(1024)
	var extras []int
	for _, xt := range p.Words {
		extras = append(extras, xt)
	}
	cfg.ExtraLeaders = extras
	plan, err := core.BuildPlan(vm.Code(), forthvm.ISA(), cfg)
	if err != nil {
		t.Fatalf("BuildPlan(%v): %v", cfg.Technique, err)
	}
	sim := cpu.NewSim(m)
	c, err := core.Run(vm, plan, sim, 50_000_000)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Technique, err)
	}
	return c, string(vm.Out)
}

// forthTable returns a small superinstruction table of sequences that
// occur in compiled Forth code.
func forthTable(t *testing.T, src string, n int) *superinst.Table {
	t.Helper()
	p := forth.MustCompile(src)
	isa := forthvm.ISA()
	runs := core.Runs(p.Code, isa, nil)
	var blocks [][]uint32
	for _, r := range runs {
		blocks = append(blocks, core.Ops(p.Code, r))
	}
	counts := superinst.CollectSequences(blocks, 4, nil)
	seqs := superinst.SelectTop(counts, n, 1)
	if len(seqs) == 0 {
		t.Fatal("no superinstruction candidates found")
	}
	return superinst.MustNewTable(seqs)
}

// allConfigs builds a config per technique with sensible parameters.
func allConfigs(t *testing.T, src string) []core.Config {
	t.Helper()
	isa := forthvm.ISA()
	table := forthTable(t, src, 20)
	extra := make([]int, isa.NumOps())
	for op := range extra {
		extra[op] = 2 // a few replicas of everything
	}
	superExtra := make([]int, table.NumSupers())
	for s := range superExtra {
		superExtra[s] = 1
	}
	return []core.Config{
		{Technique: core.TSwitch},
		{Technique: core.TPlain},
		{Technique: core.TStaticRepl, ReplicaExtra: extra},
		{Technique: core.TStaticSuper, Supers: table},
		{Technique: core.TStaticBoth, Supers: table, ReplicaExtra: extra, SuperReplicaExtra: superExtra},
		{Technique: core.TDynamicRepl},
		{Technique: core.TDynamicSuper},
		{Technique: core.TDynamicBoth},
		{Technique: core.TAcrossBB},
		{Technique: core.TWithStaticSuper, Supers: table},
		{Technique: core.TWithStaticSuperAcross, Supers: table},
	}
}

// TestSemanticsIdenticalAcrossTechniques: the dispatch technique must
// never change program results.
func TestSemanticsIdenticalAcrossTechniques(t *testing.T) {
	var wantOut string
	for k, cfg := range allConfigs(t, benchSrc) {
		_, out := runTech(t, benchSrc, cfg, bigBTB)
		if k == 0 {
			wantOut = out
			if wantOut == "" {
				t.Fatal("benchmark produced no output")
			}
			continue
		}
		if out != wantOut {
			t.Errorf("%v: output %q differs from %q", cfg.Technique, out, wantOut)
		}
	}
}

// TestVMInstructionCountInvariant: every technique executes exactly
// the same VM instructions.
func TestVMInstructionCountInvariant(t *testing.T) {
	var want uint64
	for k, cfg := range allConfigs(t, benchSrc) {
		c, _ := runTech(t, benchSrc, cfg, bigBTB)
		if k == 0 {
			want = c.VMInstructions
			if want == 0 {
				t.Fatal("no VM instructions executed")
			}
			continue
		}
		if c.VMInstructions != want {
			t.Errorf("%v: VM instructions = %d, want %d", cfg.Technique, c.VMInstructions, want)
		}
	}
}

// TestReplicationPreservesInstructionCounts encodes the paper's §7.3
// observation: plain, static repl and dynamic repl execute exactly
// the same native instruction and indirect branch counts — only the
// prediction accuracy differs.
func TestReplicationPreservesInstructionCounts(t *testing.T) {
	cfgs := allConfigs(t, benchSrc)
	plain, _ := runTech(t, benchSrc, cfgs[1], bigBTB)
	srepl, _ := runTech(t, benchSrc, cfgs[2], bigBTB)
	drepl, _ := runTech(t, benchSrc, cfgs[5], bigBTB)
	if plain.Instructions != srepl.Instructions || plain.Instructions != drepl.Instructions {
		t.Errorf("instructions differ: plain=%d static repl=%d dynamic repl=%d",
			plain.Instructions, srepl.Instructions, drepl.Instructions)
	}
	if plain.IndirectBranches != srepl.IndirectBranches || plain.IndirectBranches != drepl.IndirectBranches {
		t.Errorf("indirect branches differ: plain=%d static repl=%d dynamic repl=%d",
			plain.IndirectBranches, srepl.IndirectBranches, drepl.IndirectBranches)
	}
}

// TestDynamicSuperVariantsShareCounts: dynamic super and dynamic both
// execute the same instruction stream (paper §7.3), differing only in
// code sharing.
func TestDynamicSuperVariantsShareCounts(t *testing.T) {
	cfgs := allConfigs(t, benchSrc)
	dsuper, _ := runTech(t, benchSrc, cfgs[6], bigBTB)
	dboth, _ := runTech(t, benchSrc, cfgs[7], bigBTB)
	if dsuper.Instructions != dboth.Instructions {
		t.Errorf("instructions: dynamic super=%d dynamic both=%d", dsuper.Instructions, dboth.Instructions)
	}
	if dsuper.IndirectBranches != dboth.IndirectBranches {
		t.Errorf("branches: dynamic super=%d dynamic both=%d", dsuper.IndirectBranches, dboth.IndirectBranches)
	}
	if dboth.Mispredicted > dsuper.Mispredicted {
		t.Errorf("dynamic both mispredicts more than dynamic super (%d > %d)",
			dboth.Mispredicted, dsuper.Mispredicted)
	}
	if dboth.CodeBytes < dsuper.CodeBytes {
		t.Errorf("dynamic both should generate at least as much code (%d < %d)",
			dboth.CodeBytes, dsuper.CodeBytes)
	}
}

// predSrc is loop-dominated with monomorphic calls and returns, so
// dispatch mispredictions come from VM instruction reuse rather than
// data-dependent VM branches (the paper's replication-resistant
// residue).
const predSrc = `
	variable sum
	: step1 dup * sum +! ;
	: step2 dup dup * * sum +! ;
	: step3 1+ dup * sum +! ;
	: step4 dup 1+ * sum +! ;
	: inner 20 0 do i step1 i step2 i step3 i step4 loop ;
	: run 40 0 do inner loop ;
	run sum @ .
`

// TestMispredictionOrdering encodes the paper's central claims:
// switch dispatch mispredicts more than threaded code; replication
// eliminates nearly all dispatch mispredictions.
func TestMispredictionOrdering(t *testing.T) {
	cfgs := allConfigs(t, predSrc)
	sw, _ := runTech(t, predSrc, cfgs[0], bigBTB)
	plain, _ := runTech(t, predSrc, cfgs[1], bigBTB)
	drepl, _ := runTech(t, predSrc, cfgs[5], bigBTB)

	if sw.MispredictRate() <= plain.MispredictRate() {
		t.Errorf("switch rate %.2f should exceed threaded rate %.2f",
			sw.MispredictRate(), plain.MispredictRate())
	}
	if plain.MispredictRate() < 0.2 {
		t.Errorf("plain threaded mispredict rate %.2f suspiciously low", plain.MispredictRate())
	}
	if drepl.Mispredicted*4 > plain.Mispredicted {
		t.Errorf("dynamic replication should eliminate most mispredictions: %d vs plain %d",
			drepl.Mispredicted, plain.Mispredicted)
	}
}

// TestSuperinstructionsReduceDispatches: dynamic superinstructions
// reduce dispatches far below plain threaded code, and across-bb
// leaves only taken branches, calls and returns.
func TestSuperinstructionsReduceDispatches(t *testing.T) {
	cfgs := allConfigs(t, benchSrc)
	plain, _ := runTech(t, benchSrc, cfgs[1], bigBTB)
	dsuper, _ := runTech(t, benchSrc, cfgs[6], bigBTB)
	across, _ := runTech(t, benchSrc, cfgs[8], bigBTB)
	if dsuper.Dispatches >= plain.Dispatches {
		t.Errorf("dynamic super dispatches %d not below plain %d", dsuper.Dispatches, plain.Dispatches)
	}
	if across.Dispatches >= dsuper.Dispatches {
		t.Errorf("across bb dispatches %d not below dynamic super %d", across.Dispatches, dsuper.Dispatches)
	}
}

// TestAcrossBBDispatchLowerBound: across-bb must still dispatch every
// taken branch/call/return; count those directly for a simple loop.
func TestAcrossBBDispatchCount(t *testing.T) {
	// Loop body: 10 iterations; the (loop) branch is taken 9 times,
	// falls through once. Top-level code has a branch to main.
	src := `variable sum 10 0 do i sum +! loop sum @ .`
	c, _ := runTech(t, src, core.Config{Technique: core.TAcrossBB}, bigBTB)
	p := forth.MustCompile(src)
	vm := p.NewVM(64)
	taken := uint64(0)
	for !vm.Done() {
		ev, err := vm.Step()
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case core.EvTaken, core.EvCall, core.EvReturn, core.EvIndirect:
			taken++
		}
	}
	// Every non-relocatable instruction boundary also dispatches;
	// the "." at the end is non-relocatable, costing 2 dispatches.
	if c.Dispatches < taken || c.Dispatches > taken+8 {
		t.Errorf("across bb dispatches = %d, want about %d (taken transfers)", c.Dispatches, taken)
	}
}

// TestStaticSuperReducesInstructions: static superinstructions save
// native work at junctions (paper: optimization across components).
func TestStaticSuperReducesInstructions(t *testing.T) {
	cfgs := allConfigs(t, benchSrc)
	plain, _ := runTech(t, benchSrc, cfgs[1], bigBTB)
	ssuper, _ := runTech(t, benchSrc, cfgs[3], bigBTB)
	if ssuper.Instructions >= plain.Instructions {
		t.Errorf("static super instructions %d not below plain %d",
			ssuper.Instructions, plain.Instructions)
	}
	if ssuper.Dispatches >= plain.Dispatches {
		t.Errorf("static super dispatches %d not below plain %d",
			ssuper.Dispatches, plain.Dispatches)
	}
}

// TestCodeBytesRelations: dynamic replication generates the most
// code; deduplicated dynamic superinstructions generate much less;
// static techniques generate none (without the Gforth startup-copy
// model).
func TestCodeBytesRelations(t *testing.T) {
	cfgs := allConfigs(t, benchSrc)
	plain, _ := runTech(t, benchSrc, cfgs[1], bigBTB)
	drepl, _ := runTech(t, benchSrc, cfgs[5], bigBTB)
	dsuper, _ := runTech(t, benchSrc, cfgs[6], bigBTB)
	dboth, _ := runTech(t, benchSrc, cfgs[7], bigBTB)
	if plain.CodeBytes != 0 {
		t.Errorf("plain generated %d code bytes, want 0", plain.CodeBytes)
	}
	if drepl.CodeBytes == 0 || dsuper.CodeBytes == 0 {
		t.Error("dynamic techniques must generate code")
	}
	if dsuper.CodeBytes >= dboth.CodeBytes {
		t.Errorf("dedup (%d bytes) should be below per-block copies (%d bytes)",
			dsuper.CodeBytes, dboth.CodeBytes)
	}
	if drepl.CodeBytes <= dsuper.CodeBytes {
		t.Errorf("dynamic repl (%d bytes) should exceed dedup super (%d bytes)",
			drepl.CodeBytes, dsuper.CodeBytes)
	}
}

// TestCountStaticCopies: the Gforth-style startup-copy model reports
// a small amount of generated code for static replication.
func TestCountStaticCopies(t *testing.T) {
	isa := forthvm.ISA()
	extra := make([]int, isa.NumOps())
	extra[forthvm.OpLit] = 3
	c, _ := runTech(t, benchSrc, core.Config{
		Technique: core.TStaticRepl, ReplicaExtra: extra, CountStaticCopies: true,
	}, bigBTB)
	if c.CodeBytes == 0 {
		t.Error("CountStaticCopies should report copied code bytes")
	}
	c2, _ := runTech(t, benchSrc, core.Config{
		Technique: core.TStaticRepl, ReplicaExtra: extra,
	}, bigBTB)
	if c2.CodeBytes != 0 {
		t.Error("without CountStaticCopies static repl reports no code bytes")
	}
}

// TestSpeedupOrdering: on a big-BTB machine, the overall cycle
// ordering of the main paper result must hold: across bb (and with
// static super) beat dynamic super, which beats plain; switch is
// slowest.
func TestSpeedupOrdering(t *testing.T) {
	cfgs := allConfigs(t, benchSrc)
	results := make(map[core.Technique]metrics.Counters)
	for _, cfg := range cfgs {
		c, _ := runTech(t, benchSrc, cfg, bigBTB)
		results[cfg.Technique] = c
	}
	le := func(a, b core.Technique) {
		t.Helper()
		if results[a].Cycles > results[b].Cycles {
			t.Errorf("%v (%.0f cycles) should not be slower than %v (%.0f cycles)",
				a, results[a].Cycles, b, results[b].Cycles)
		}
	}
	le(core.TPlain, core.TSwitch)
	le(core.TDynamicRepl, core.TPlain)
	le(core.TDynamicSuper, core.TPlain)
	le(core.TAcrossBB, core.TDynamicSuper)
	le(core.TWithStaticSuper, core.TAcrossBB)
	le(core.TStaticRepl, core.TPlain)
	le(core.TStaticSuper, core.TPlain)
}

// TestMaxStepsGuard: a runaway program errors out instead of hanging.
func TestMaxStepsGuard(t *testing.T) {
	p := forth.MustCompile("begin 1 drop again")
	vm := p.NewVM(16)
	plan := core.MustBuildPlan(vm.Code(), forthvm.ISA(), core.Config{Technique: core.TPlain})
	sim := cpu.NewSim(bigBTB)
	if _, err := core.Run(vm, plan, sim, 1000); err == nil {
		t.Error("Run should fail when exceeding maxSteps")
	}
}

// TestRunPropagatesVMErrors: a crashing program surfaces its error.
func TestRunPropagatesVMErrors(t *testing.T) {
	code := []core.Inst{{Op: forthvm.OpAdd}, {Op: forthvm.OpHalt}}
	vm := forthvm.New(code, 16)
	plan := core.MustBuildPlan(vm.Code(), forthvm.ISA(), core.Config{Technique: core.TPlain})
	if _, err := core.Run(vm, plan, cpu.NewSim(bigBTB), 100); err == nil {
		t.Error("Run should propagate stack underflow")
	}
}

// TestBuildPlanValidation covers config validation errors.
func TestBuildPlanValidation(t *testing.T) {
	isa := forthvm.ISA()
	code := []core.Inst{{Op: forthvm.OpHalt}}
	tests := []struct {
		name string
		cfg  core.Config
	}{
		{"super table required", core.Config{Technique: core.TStaticSuper}},
		{"bad replica len", core.Config{Technique: core.TStaticRepl, ReplicaExtra: []int{1, 2}}},
		{"super replicas without table", core.Config{Technique: core.TStaticRepl, SuperReplicaExtra: []int{1}}},
		{"control op in super", core.Config{Technique: core.TStaticSuper,
			Supers: superinst.MustNewTable([][]uint32{{forthvm.OpBranch, forthvm.OpAdd}})}},
		{"super replica len mismatch", core.Config{Technique: core.TStaticBoth,
			Supers:            superinst.MustNewTable([][]uint32{{forthvm.OpDup, forthvm.OpAdd}}),
			SuperReplicaExtra: []int{1, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := core.BuildPlan(code, isa, tt.cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	// Bad opcode in code.
	if _, err := core.BuildPlan([]core.Inst{{Op: 1 << 20}}, isa, core.Config{Technique: core.TPlain}); err == nil {
		t.Error("bad opcode should fail validation")
	}
}

func TestMustBuildPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuildPlan should panic on error")
		}
	}()
	core.MustBuildPlan(nil, forthvm.ISA(), core.Config{Technique: core.TStaticSuper})
}

// TestExecuteResidualMispredictions: VM-level computed control
// transfers (EXECUTE with alternating targets) mispredict even under
// full dynamic replication — the paper's residual dispatch
// mispredictions "due to indirect VM branches" (Section 7.3).
func TestExecuteResidualMispredictions(t *testing.T) {
	src := `
		: w1 1 + ;
		: w2 2 + ;
		variable k
		0
		200 0 do
			k @ 1 xor k !
			k @ if ' w1 else ' w2 then execute
		loop
		.
	`
	straight := `
		: w1 1 + ;
		variable k
		0
		200 0 do
			k @ 1 xor k !
			' w1 execute
		loop
		.
	`
	alt, _ := runTech(t, src, core.Config{Technique: core.TDynamicRepl}, bigBTB)
	mono, _ := runTech(t, straight, core.Config{Technique: core.TDynamicRepl}, bigBTB)
	// The alternating EXECUTE must mispredict on a large share of its
	// 200 computed transfers; the monomorphic one must not.
	if alt.Mispredicted < 150 {
		t.Errorf("alternating execute mispredicted only %d times, want ~200+", alt.Mispredicted)
	}
	if mono.Mispredicted > 60 {
		t.Errorf("monomorphic execute mispredicted %d times, want few", mono.Mispredicted)
	}
}

// TestReturnsPolymorphicUnderSharing: a word called from two sites has
// a polymorphic return under plain threaded code; with dynamic
// replication each RET instance still alternates targets (returns are
// inherently data-dependent), so replication does NOT fix returns —
// the paper's "mostly VM returns" residue.
func TestReturnResidual(t *testing.T) {
	src := `
		: callee 1 + ;
		: a callee ;
		: b callee ;
		variable acc
		0
		100 0 do a b loop
		acc @ + .
	`
	c, _ := runTech(t, src, core.Config{Technique: core.TDynamicRepl}, bigBTB)
	// callee's single RET instance returns alternately into a and b:
	// ~200 returns, nearly all mispredicted.
	if c.Mispredicted < 150 {
		t.Errorf("alternating returns mispredicted only %d times", c.Mispredicted)
	}
}
