package core

// Leaders computes basic-block leaders of the VM code: position 0,
// every branch/call target, every position following a control
// transfer, and every extra entry point (word/method entries that may
// be reached through computed control flow such as EXECUTE or
// invokevirtual).
func Leaders(code []Inst, isa ISA, extra []int) []bool {
	leaders := make([]bool, len(code))
	if len(code) == 0 {
		return leaders
	}
	leaders[0] = true
	mark := func(pos int) {
		if pos >= 0 && pos < len(code) {
			leaders[pos] = true
		}
	}
	for _, e := range extra {
		mark(e)
	}
	for p, in := range code {
		m := isa.Meta(in.Op)
		if (m.Branch || m.Call) && m.HasArg {
			mark(int(in.Arg))
		}
		if m.Control() && p+1 < len(code) {
			leaders[p+1] = true
		}
	}
	return leaders
}

// Block is a half-open range [Start, End) of VM code positions with a
// single entry at Start and control leaving only at End-1.
type Block struct {
	Start, End int
}

// Blocks partitions the VM code into basic blocks.
func Blocks(code []Inst, isa ISA, extra []int) []Block {
	leaders := Leaders(code, isa, extra)
	var out []Block
	start := 0
	for p := 1; p < len(code); p++ {
		if leaders[p] {
			out = append(out, Block{Start: start, End: p})
			start = p
		}
	}
	if len(code) > 0 {
		out = append(out, Block{Start: start, End: len(code)})
	}
	return out
}

// Runs returns the maximal stretches of superinstruction-eligible
// instructions within each basic block: contiguous instructions that
// are not control transfers and not quickable. These are the units
// superinstruction parsing operates on; a block's terminating branch
// is never part of a superinstruction in this implementation.
func Runs(code []Inst, isa ISA, extra []int) []Block {
	var out []Block
	for _, b := range Blocks(code, isa, extra) {
		start := -1
		for p := b.Start; p < b.End; p++ {
			m := isa.Meta(code[p].Op)
			eligible := !m.Control() && !m.Quickable
			if eligible && start < 0 {
				start = p
			}
			if !eligible && start >= 0 {
				out = append(out, Block{Start: start, End: p})
				start = -1
			}
		}
		if start >= 0 {
			out = append(out, Block{Start: start, End: b.End})
		}
	}
	return out
}

// BlockOf returns, for every position, the index of its containing
// block in blocks.
func BlockOf(n int, blocks []Block) []int {
	owner := make([]int, n)
	for bi, b := range blocks {
		for p := b.Start; p < b.End; p++ {
			owner[p] = bi
		}
	}
	return owner
}

// Ops extracts the opcode sequence of a code range.
func Ops(code []Inst, b Block) []uint32 {
	out := make([]uint32, 0, b.End-b.Start)
	for p := b.Start; p < b.End; p++ {
		out = append(out, code[p].Op)
	}
	return out
}
