package core_test

import (
	"reflect"
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
)

func TestLeadersSimple(t *testing.T) {
	// 0: lit, 1: zbranch 4, 2: lit, 3: halt, 4: lit, 5: halt
	code := []core.Inst{
		{Op: forthvm.OpLit, Arg: 1},
		{Op: forthvm.OpZBranch, Arg: 4},
		{Op: forthvm.OpLit, Arg: 2},
		{Op: forthvm.OpHalt},
		{Op: forthvm.OpLit, Arg: 3},
		{Op: forthvm.OpHalt},
	}
	got := core.Leaders(code, forthvm.ISA(), nil)
	want := []bool{true, false, true, false, true, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Leaders = %v, want %v", got, want)
	}
}

func TestLeadersExtra(t *testing.T) {
	code := []core.Inst{
		{Op: forthvm.OpLit}, {Op: forthvm.OpLit}, {Op: forthvm.OpHalt},
	}
	got := core.Leaders(code, forthvm.ISA(), []int{1, 99, -5})
	want := []bool{true, true, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Leaders with extras = %v, want %v", got, want)
	}
}

func TestBlocksPartition(t *testing.T) {
	code := []core.Inst{
		{Op: forthvm.OpLit, Arg: 1},     // 0
		{Op: forthvm.OpZBranch, Arg: 4}, // 1 ends block
		{Op: forthvm.OpLit, Arg: 2},     // 2
		{Op: forthvm.OpHalt},            // 3 ends block
		{Op: forthvm.OpLit, Arg: 3},     // 4
		{Op: forthvm.OpHalt},            // 5
	}
	got := core.Blocks(code, forthvm.ISA(), nil)
	want := []core.Block{{Start: 0, End: 2}, {Start: 2, End: 4}, {Start: 4, End: 6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Blocks = %v, want %v", got, want)
	}
}

func TestBlocksCoverAllPositions(t *testing.T) {
	p := forth.MustCompile(`
		: f dup 0< if negate then ;
		variable sum
		10 0 do i f sum +! loop
		sum @ .`)
	blocks := core.Blocks(p.Code, forthvm.ISA(), nil)
	covered := 0
	prevEnd := 0
	for _, b := range blocks {
		if b.Start != prevEnd {
			t.Fatalf("gap or overlap at block %+v (prev end %d)", b, prevEnd)
		}
		if b.End <= b.Start {
			t.Fatalf("empty block %+v", b)
		}
		covered += b.End - b.Start
		prevEnd = b.End
	}
	if covered != len(p.Code) {
		t.Errorf("blocks cover %d of %d positions", covered, len(p.Code))
	}
}

func TestRunsExcludeControl(t *testing.T) {
	p := forth.MustCompile(": f 1 2 + 3 * ; f .")
	isa := forthvm.ISA()
	for _, r := range core.Runs(p.Code, isa, nil) {
		for pos := r.Start; pos < r.End; pos++ {
			m := isa.Meta(p.Code[pos].Op)
			if m.Control() {
				t.Errorf("run %+v contains control op %s at %d", r, m.Name, pos)
			}
		}
	}
}

func TestRunsWithinBlocks(t *testing.T) {
	p := forth.MustCompile(`
		: g dup * ;
		: f 1 2 + g 4 5 + g + ;
		f .`)
	isa := forthvm.ISA()
	blocks := core.Blocks(p.Code, isa, nil)
	owner := core.BlockOf(len(p.Code), blocks)
	for _, r := range core.Runs(p.Code, isa, nil) {
		if owner[r.Start] != owner[r.End-1] {
			t.Errorf("run %+v crosses block boundary", r)
		}
	}
}

func TestBlockOf(t *testing.T) {
	blocks := []core.Block{{Start: 0, End: 2}, {Start: 2, End: 5}}
	got := core.BlockOf(5, blocks)
	want := []int{0, 0, 1, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BlockOf = %v, want %v", got, want)
	}
}

func TestOps(t *testing.T) {
	code := []core.Inst{{Op: 3}, {Op: 5}, {Op: 7}}
	got := core.Ops(code, core.Block{Start: 1, End: 3})
	if !reflect.DeepEqual(got, []uint32{5, 7}) {
		t.Errorf("Ops = %v", got)
	}
}

func TestEmptyCode(t *testing.T) {
	if l := core.Leaders(nil, forthvm.ISA(), nil); len(l) != 0 {
		t.Errorf("Leaders on empty = %v", l)
	}
	if b := core.Blocks(nil, forthvm.ISA(), nil); b != nil {
		t.Errorf("Blocks on empty = %v", b)
	}
}
