package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
)

// genWord emits a random unary word body ( n -- m ): a chain of
// stack-safe transformations.
func genWord(r *rand.Rand, name string) string {
	steps := []string{
		"dup *", "1+", "1-", "2*", "negate", "abs",
		"dup +", "dup xor 17 +", "%d +", "%d xor", "%d and 1+", "dup max",
	}
	var b strings.Builder
	fmt.Fprintf(&b, ": %s ", name)
	n := 3 + r.Intn(8)
	for k := 0; k < n; k++ {
		s := steps[r.Intn(len(steps))]
		if strings.Contains(s, "%d") {
			s = fmt.Sprintf(s, r.Intn(1000)+1)
		}
		b.WriteString(s)
		b.WriteString(" ")
	}
	b.WriteString("16777215 and ;")
	return b.String()
}

// genProgram builds a random but always-valid Forth program: several
// random words applied to loop indices, accumulating a checksum.
func genProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	nWords := 2 + r.Intn(4)
	var b strings.Builder
	b.WriteString("variable acc\n")
	for k := 0; k < nWords; k++ {
		b.WriteString(genWord(r, fmt.Sprintf("w%d", k)))
		b.WriteString("\n")
	}
	iters := 10 + r.Intn(30)
	fmt.Fprintf(&b, "%d 0 do\n", iters)
	for k := 0; k < nWords; k++ {
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "  i w%d acc +!\n", k)
		} else {
			fmt.Fprintf(&b, "  i dup 0< if negate then w%d acc +!\n", k)
		}
	}
	b.WriteString("loop\nacc @ .\n")
	return b.String()
}

// TestDifferentialTechniques: for a spread of random programs, every
// dispatch technique must produce the same output, the same VM
// instruction count, and plausible counters.
func TestDifferentialTechniques(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := genProgram(seed)
			cfgs := allConfigs(t, src)
			var wantOut string
			var wantVM uint64
			for k, cfg := range cfgs {
				c, out := runTech(t, src, cfg, bigBTB)
				if out == "" {
					t.Fatalf("%v produced no output for program:\n%s", cfg.Technique, src)
				}
				if k == 0 {
					wantOut, wantVM = out, c.VMInstructions
					continue
				}
				if out != wantOut {
					t.Errorf("%v: output %q != %q\nprogram:\n%s", cfg.Technique, out, wantOut, src)
				}
				if c.VMInstructions != wantVM {
					t.Errorf("%v: VM instructions %d != %d", cfg.Technique, c.VMInstructions, wantVM)
				}
				if c.Instructions == 0 || c.Cycles == 0 {
					t.Errorf("%v: empty counters %+v", cfg.Technique, c)
				}
				if c.Mispredicted > c.IndirectBranches {
					t.Errorf("%v: more mispredictions than branches", cfg.Technique)
				}
				if c.Dispatches > c.IndirectBranches {
					t.Errorf("%v: more dispatches than indirect branches", cfg.Technique)
				}
			}
		})
	}
}

// TestDifferentialMachines: the machine model must never change
// program semantics, only the counters.
func TestDifferentialMachines(t *testing.T) {
	src := genProgram(99)
	cfg := core.Config{Technique: core.TAcrossBB}
	var wantOut string
	for k, m := range cpu.Machines() {
		_, out := runTech(t, src, cfg, m)
		if k == 0 {
			wantOut = out
			continue
		}
		if out != wantOut {
			t.Errorf("%s: output %q != %q", m.Name, out, wantOut)
		}
	}
}

// TestDifferentialPlanIsolation: running the same program twice under
// the same plan configuration gives identical counters (no hidden
// state leaks between plan builds).
func TestDifferentialPlanIsolation(t *testing.T) {
	src := genProgram(7)
	cfg := core.Config{Technique: core.TDynamicSuper}
	c1, _ := runTech(t, src, cfg, bigBTB)
	c2, _ := runTech(t, src, cfg, bigBTB)
	if c1 != c2 {
		t.Errorf("counters differ across identical runs:\n%+v\n%+v", c1, c2)
	}
}
