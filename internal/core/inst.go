// Package core implements the paper's primary contribution: the
// dispatch techniques of Casey, Ertl and Gregg — switch dispatch,
// threaded code, static and dynamic replication, static and dynamic
// superinstructions, and their combinations — as code-layout plans
// over a virtual machine program, together with the engine that
// executes a VM process under a plan on a simulated machine and
// collects the paper's hardware-counter metrics.
//
// The package is VM-agnostic: both the Forth VM (internal/forthvm)
// and the JVM subset (internal/jvm) compile programs to the flat
// []Inst representation and implement the Process interface.
package core

import "fmt"

// Inst is one virtual machine instruction in the flat VM code array:
// an opcode plus an optional immediate argument (literal value, branch
// target position, call target, and so on).
type Inst struct {
	Op  uint32
	Arg int64
}

// OpMeta describes the native-code implementation of one VM opcode:
// its cost model (native instructions and code bytes for the work
// part, excluding dispatch) and its control-flow classification.
type OpMeta struct {
	// Name is the mnemonic, e.g. "dup" or "getfield".
	Name string
	// HasArg reports whether the instruction carries an immediate.
	HasArg bool
	// Work is the native instruction count of the work part
	// (excluding the dispatch sequence).
	Work int
	// Bytes is the native code size of the work part in bytes.
	Bytes int
	// Relocatable reports whether the native code fragment can be
	// copied to a new address (paper Section 5.2); dynamic
	// techniques fall back to the shared original for
	// non-relocatable instructions.
	Relocatable bool
	// Quickable marks JVM-style instructions that rewrite
	// themselves into a quick variant on first execution
	// (Section 5.4).
	Quickable bool
	// QuickWork is the one-time native instruction cost of
	// quickening (resolution, verification, patching).
	QuickWork int
	// QuickBytesMax is the largest code size among the quick
	// variants this instruction can rewrite into; dynamic
	// techniques reserve a gap of this size (Section 5.4).
	QuickBytesMax int
	// Branch marks conditional or unconditional VM branches;
	// Call and Return mark VM calls/returns; Indirect marks VM
	// instructions whose target is data-dependent even under full
	// replication (computed calls, VM returns are marked Return
	// and are implicitly indirect).
	Branch   bool
	Call     bool
	Return   bool
	Indirect bool
	// Stop marks instructions that terminate execution (halt).
	Stop bool
}

// Control reports whether the instruction can transfer control
// (anything but straight-line fall-through).
func (m OpMeta) Control() bool {
	return m.Branch || m.Call || m.Return || m.Indirect || m.Stop
}

// ISA exposes the opcode metadata of a virtual machine.
type ISA interface {
	// Name identifies the VM, e.g. "forth" or "jvm".
	Name() string
	// NumOps returns the opcode-space size; valid opcodes are
	// 0..NumOps-1.
	NumOps() int
	// Meta returns the metadata for an opcode.
	Meta(op uint32) OpMeta
}

// EventKind classifies the control transfer performed by one executed
// VM instruction.
type EventKind uint8

const (
	// EvFall is sequential execution, including not-taken
	// conditional branches (no control transfer).
	EvFall EventKind = iota
	// EvTaken is a taken VM branch (conditional or unconditional).
	EvTaken
	// EvCall is a VM call.
	EvCall
	// EvReturn is a VM return; its target is data-dependent.
	EvReturn
	// EvIndirect is a computed VM control transfer (e.g. Forth
	// EXECUTE, JVM invokevirtual); data-dependent target.
	EvIndirect
	// EvHalt ends the program; no dispatch follows.
	EvHalt
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EvFall:
		return "fall"
	case EvTaken:
		return "taken"
	case EvCall:
		return "call"
	case EvReturn:
		return "return"
	case EvIndirect:
		return "indirect"
	case EvHalt:
		return "halt"
	default:
		return fmt.Sprintf("EventKind(%d)", k)
	}
}

// Event reports one executed VM instruction: the position executed,
// the position control transferred to, how, and whether the
// instruction quickened itself (rewrote its opcode) as part of this
// execution.
type Event struct {
	From, To  int
	Kind      EventKind
	Quickened bool
	// NewOp is the opcode installed at From when Quickened is true.
	NewOp uint32
}

// Process is a running VM program. Step executes the instruction at
// PC and reports the control transfer. Code returns the live VM code
// array; quickening mutates it in place.
type Process interface {
	ISA() ISA
	Code() []Inst
	PC() int
	Step() (Event, error)
	Done() bool
}
