package core_test

import (
	"errors"
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/metrics"
	"vmopt/internal/superinst"
)

// A minimal quickable ISA for exercising the Section 5.4 machinery
// without pulling in the full JVM: qGet rewrites itself to qGetQ on
// first execution.
const (
	qLit uint32 = iota
	qAdd
	qGet  // quickable
	qGetQ // its quick version
	qZBr  // conditional branch (arg: target), pops counter
	qHalt
	qNoRel // non-relocatable
	qNumOps
)

type quickISA struct{}

func (quickISA) Name() string { return "quicktest" }
func (quickISA) NumOps() int  { return int(qNumOps) }
func (quickISA) Meta(op uint32) core.OpMeta {
	switch op {
	case qLit:
		return core.OpMeta{Name: "qlit", HasArg: true, Work: 2, Bytes: 7, Relocatable: true}
	case qAdd:
		return core.OpMeta{Name: "qadd", Work: 2, Bytes: 5, Relocatable: true}
	case qGet:
		return core.OpMeta{Name: "qget", Work: 30, Bytes: 40, Quickable: true,
			QuickWork: 200, QuickBytesMax: 12}
	case qGetQ:
		return core.OpMeta{Name: "qgetq", Work: 3, Bytes: 9, Relocatable: true}
	case qZBr:
		return core.OpMeta{Name: "qzbr", HasArg: true, Work: 4, Bytes: 12, Relocatable: true, Branch: true}
	case qHalt:
		return core.OpMeta{Name: "qhalt", Work: 1, Bytes: 4, Relocatable: true, Stop: true}
	case qNoRel:
		return core.OpMeta{Name: "qnorel", Work: 8, Bytes: 20}
	default:
		panic("bad op")
	}
}

// quickVM is a stack machine over the quick ISA.
type quickVM struct {
	code   []core.Inst
	stack  []int64
	pc     int
	halted bool
}

func (v *quickVM) ISA() core.ISA     { return quickISA{} }
func (v *quickVM) Code() []core.Inst { return v.code }
func (v *quickVM) PC() int           { return v.pc }
func (v *quickVM) Done() bool        { return v.halted }

func (v *quickVM) Step() (core.Event, error) {
	if v.halted {
		return core.Event{}, errors.New("halted")
	}
	in := v.code[v.pc]
	ev := core.Event{From: v.pc, To: v.pc + 1, Kind: core.EvFall}
	switch in.Op {
	case qLit:
		v.stack = append(v.stack, in.Arg)
	case qAdd, qNoRel:
		n := len(v.stack)
		v.stack = append(v.stack[:n-2], v.stack[n-2]+v.stack[n-1])
	case qGet:
		// Quicken: rewrite to the quick version, then execute it.
		v.code[v.pc].Op = qGetQ
		ev.Quickened = true
		ev.NewOp = qGetQ
		v.stack = append(v.stack, 7)
	case qGetQ:
		v.stack = append(v.stack, 7)
	case qZBr:
		// Peeks rather than pops, so the loop counter survives the
		// back edge (test convenience, not Forth semantics).
		if v.stack[len(v.stack)-1] != 0 {
			ev.Kind = core.EvTaken
			ev.To = int(in.Arg)
		}
	case qHalt:
		v.halted = true
		ev.Kind = core.EvHalt
		ev.To = ev.From
	}
	v.pc = ev.To
	return ev, nil
}

func runQuick(t *testing.T, code []core.Inst, cfg core.Config) (metrics.Counters, *quickVM) {
	t.Helper()
	vm := &quickVM{code: append([]core.Inst(nil), code...)}
	plan, err := core.BuildPlan(vm.Code(), quickISA{}, cfg)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	sim := cpu.NewSim(bigBTB)
	c, err := core.Run(vm, plan, sim, 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c, vm
}

// quickLoop is a countdown loop executing a quickable each iteration:
//
//	0: qlit iters        counter
//	1: qget              ; quickens on first execution, pushes 7
//	2: qadd              ; counter += 7
//	3: qlit -8
//	4: qadd              ; counter -= 8 (net -1 per iteration)
//	5: qlit 0
//	6: qadd              ; no-op keeping the block longer
//	7: qzbr 1            ; loop while counter != 0
//	8: qhalt
var quickLoop = []core.Inst{
	{Op: qLit, Arg: 20},
	{Op: qGet},
	{Op: qAdd},
	{Op: qLit, Arg: -8},
	{Op: qAdd},
	{Op: qLit, Arg: 0},
	{Op: qAdd},
	{Op: qZBr, Arg: 1},
	{Op: qHalt},
}

func TestQuickenHappensOnce(t *testing.T) {
	c, vm := runQuick(t, quickLoop, core.Config{Technique: core.TPlain})
	if vm.code[1].Op != qGetQ {
		t.Error("position 1 should have quickened to qGetQ")
	}
	// QuickWork (200) charged exactly once: compare against a run
	// where the code starts pre-quickened.
	pre := append([]core.Inst(nil), quickLoop...)
	pre[1].Op = qGetQ
	c2, _ := runQuick(t, pre, core.Config{Technique: core.TPlain})
	// First run also executes qGet's own work (30) instead of
	// qGetQ's (3) on the first iteration.
	wantDelta := uint64(200 + 30 - 3)
	if c.Instructions-c2.Instructions != wantDelta {
		t.Errorf("quicken overhead = %d instructions, want %d",
			c.Instructions-c2.Instructions, wantDelta)
	}
}

func TestQuickenPatchesDynamicGap(t *testing.T) {
	vm := &quickVM{code: append([]core.Inst(nil), quickLoop...)}
	plan := core.MustBuildPlan(vm.Code(), quickISA{}, core.Config{Technique: core.TDynamicRepl})
	before := plan.Addr(1)
	sim := cpu.NewSim(bigBTB)
	if _, err := core.Run(vm, plan, sim, 1_000_000); err != nil {
		t.Fatal(err)
	}
	after := plan.Addr(1)
	if before == after {
		t.Error("quickening should repoint the instance at its gap")
	}
	if after < 0x40000000 {
		t.Errorf("patched address %#x not in the dynamic region", after)
	}
}

func TestQuickenSealsAcrossBBJunctions(t *testing.T) {
	// Under across-bb, once everything is quickened the loop body
	// should dispatch only on the taken branch: 1 dispatch per
	// iteration (plus startup effects).
	c, _ := runQuick(t, quickLoop, core.Config{Technique: core.TAcrossBB})
	iters := uint64(20)
	// Pre-quicken iteration costs a few extra dispatches; afterwards
	// only the qzbr taken dispatch remains (the final fall-through
	// into qhalt costs none: fall-through junction).
	if c.Dispatches > iters+6 {
		t.Errorf("across bb dispatches = %d, want about %d (one per taken branch)",
			c.Dispatches, iters)
	}
	if c.Dispatches < iters-1 {
		t.Errorf("across bb dispatches = %d, below taken-branch count %d", c.Dispatches, iters)
	}
}

func TestQuickenSealsDynamicSuperJunctions(t *testing.T) {
	// Dynamic super (per block): after quickening, each iteration is
	// one block ending at qzbr -> exactly one dispatch per iteration,
	// plus pre-quicken extras in the first.
	c, _ := runQuick(t, quickLoop, core.Config{Technique: core.TDynamicSuper})
	iters := uint64(20)
	if c.Dispatches > iters+8 || c.Dispatches < iters {
		t.Errorf("dynamic super dispatches = %d, want about %d", c.Dispatches, iters)
	}
}

func TestNonRelocatableExecutesShared(t *testing.T) {
	code := []core.Inst{
		{Op: qLit, Arg: 1},
		{Op: qLit, Arg: 2},
		{Op: qNoRel},
		{Op: qHalt},
	}
	vm := &quickVM{code: code}
	plan := core.MustBuildPlan(vm.Code(), quickISA{}, core.Config{Technique: core.TDynamicRepl})
	if plan.Addr(2) >= 0x40000000 {
		t.Error("non-relocatable instance must execute from the static region")
	}
	if plan.Addr(0) < 0x40000000 || plan.Addr(1) < 0x40000000 {
		t.Error("relocatable instances must execute from the dynamic region")
	}
	// Two qLit instances must have distinct copies.
	if plan.Addr(0) == plan.Addr(1) {
		t.Error("dynamic replication must give each instance its own copy")
	}
}

func TestStaticSuperReparsesAfterQuicken(t *testing.T) {
	// Table contains [qGetQ qAdd]: only applicable after quickening.
	table := superinst.MustNewTable([][]uint32{{qGetQ, qAdd}})
	cfg := core.Config{Technique: core.TStaticSuper, Supers: table}
	c, vm := runQuick(t, quickLoop, cfg)
	if vm.code[1].Op != qGetQ {
		t.Fatal("did not quicken")
	}
	// Compare with plain: the super must have removed the dispatch
	// between positions 1 and 2 for all post-quicken iterations.
	cPlain, _ := runQuick(t, quickLoop, core.Config{Technique: core.TPlain})
	saved := cPlain.Dispatches - c.Dispatches
	if saved < 15 {
		t.Errorf("re-parsed superinstruction saved %d dispatches, want >= 15", saved)
	}
}

func TestDynamicReplGeneratesGapBytes(t *testing.T) {
	vm := &quickVM{code: append([]core.Inst(nil), quickLoop...)}
	plan := core.MustBuildPlan(vm.Code(), quickISA{}, core.Config{Technique: core.TDynamicRepl})
	if plan.DynamicCodeBytes() == 0 {
		t.Error("dynamic replication should report generated code")
	}
}
