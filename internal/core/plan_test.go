package core_test

import (
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/forth"
	"vmopt/internal/forthvm"
	"vmopt/internal/superinst"
)

const planSrc = `
	variable acc
	: f1 dup * acc +! ;
	: f2 dup dup * * acc +! ;
	: go 30 0 do i f1 i f2 loop ;
	go acc @ .
`

func buildFor(t *testing.T, tech core.Technique) (*core.Plan, []core.Inst) {
	t.Helper()
	p := forth.MustCompile(planSrc)
	var leaders []int
	for _, xt := range p.Words {
		leaders = append(leaders, xt)
	}
	plan, err := core.BuildPlan(p.Code, forthvm.ISA(), core.Config{
		Technique: tech, ExtraLeaders: leaders,
	})
	if err != nil {
		t.Fatalf("BuildPlan(%v): %v", tech, err)
	}
	return plan, p.Code
}

// TestPlainSharesPerOpcode: under threaded code, all instances of an
// opcode execute from the same address and dispatch from the same
// branch.
func TestPlainSharesPerOpcode(t *testing.T) {
	plan, code := buildFor(t, core.TPlain)
	byOp := map[uint32]uint64{}
	for pos, in := range code {
		if prev, ok := byOp[in.Op]; ok {
			if plan.Addr(pos) != prev {
				t.Fatalf("opcode %d has two addresses", in.Op)
			}
		} else {
			byOp[in.Op] = plan.Addr(pos)
		}
	}
}

// TestDynamicReplUniqueAddresses: every relocatable instance gets its
// own copy; distinct instances never share a dispatch branch.
func TestDynamicReplUniqueAddresses(t *testing.T) {
	plan, code := buildFor(t, core.TDynamicRepl)
	isa := forthvm.ISA()
	seenAddr := map[uint64]int{}
	seenBr := map[uint64]int{}
	for pos, in := range code {
		m := isa.Meta(in.Op)
		if !m.Relocatable || m.Quickable {
			continue
		}
		if prev, dup := seenAddr[plan.Addr(pos)]; dup {
			t.Fatalf("positions %d and %d share a dynamic copy", prev, pos)
		}
		seenAddr[plan.Addr(pos)] = pos
		if prev, dup := seenBr[plan.BranchAddr(pos)]; dup {
			t.Fatalf("positions %d and %d share a dispatch branch", prev, pos)
		}
		seenBr[plan.BranchAddr(pos)] = pos
	}
}

// TestSwitchSharesOneBranch: all positions dispatch through the single
// switch branch.
func TestSwitchSharesOneBranch(t *testing.T) {
	plan, code := buildFor(t, core.TSwitch)
	br := plan.BranchAddr(0)
	for pos := range code {
		if plan.BranchAddr(pos) != br {
			t.Fatalf("position %d uses a different switch branch", pos)
		}
	}
	w, b := plan.DispatchCost()
	if w <= 3 || b <= 8 {
		t.Errorf("switch dispatch cost (%d instrs, %d bytes) should exceed threaded's", w, b)
	}
}

// TestDynamicSuperDedupsIdenticalBlocks: two identical straight-line
// blocks share one fragment under TDynamicSuper and get separate
// copies under TDynamicBoth.
func TestDynamicSuperDedup(t *testing.T) {
	// Two identical basic blocks: "lit lit + drop" twice, separated
	// by a branch target so they are distinct blocks.
	code := []core.Inst{
		{Op: forthvm.OpLit, Arg: 1},     // 0 block A
		{Op: forthvm.OpLit, Arg: 2},     // 1
		{Op: forthvm.OpAdd},             // 2
		{Op: forthvm.OpZBranch, Arg: 5}, // 3 ends block A
		{Op: forthvm.OpNop},             // 4 (own block)
		{Op: forthvm.OpLit, Arg: 1},     // 5 block B (identical ops to A)
		{Op: forthvm.OpLit, Arg: 2},     // 6
		{Op: forthvm.OpAdd},             // 7
		{Op: forthvm.OpZBranch, Arg: 9}, // 8 ends block B
		{Op: forthvm.OpHalt},            // 9
	}
	dedup := core.MustBuildPlan(code, forthvm.ISA(), core.Config{Technique: core.TDynamicSuper})
	both := core.MustBuildPlan(code, forthvm.ISA(), core.Config{Technique: core.TDynamicBoth})
	if dedup.Addr(0) != dedup.Addr(5) {
		t.Error("identical blocks should share a fragment under dynamic super")
	}
	if both.Addr(0) == both.Addr(5) {
		t.Error("dynamic both must not share fragments between block instances")
	}
	if dedup.DynamicCodeBytes() >= both.DynamicCodeBytes() {
		t.Errorf("dedup code (%d) should be below per-instance code (%d)",
			dedup.DynamicCodeBytes(), both.DynamicCodeBytes())
	}
}

// TestAcrossBBNoSequentialDispatch: under across-bb, no relocatable
// fall-through boundary dispatches (except into shared code).
func TestAcrossBBNoSequentialDispatch(t *testing.T) {
	plan, code := buildFor(t, core.TAcrossBB)
	isa := forthvm.ISA()
	for pos := 0; pos < len(code)-1; pos++ {
		m := isa.Meta(code[pos].Op)
		next := isa.Meta(code[pos+1].Op)
		if !m.Relocatable || !next.Relocatable {
			continue
		}
		if plan.SeqDispatch(pos) {
			t.Errorf("across bb: relocatable junction %d->%d dispatches (%s -> %s)",
				pos, pos+1, m.Name, next.Name)
		}
	}
}

// TestPlainAlwaysDispatches: the baseline dispatches at every
// sequential boundary.
func TestPlainAlwaysDispatches(t *testing.T) {
	plan, code := buildFor(t, core.TPlain)
	for pos := 0; pos < len(code)-1; pos++ {
		if !plan.SeqDispatch(pos) {
			t.Errorf("plain: junction %d does not dispatch", pos)
		}
	}
}

// TestStaticSuperSharedFragments: all occurrences of the same
// superinstruction share one routine (it is part of the interpreter
// binary).
func TestStaticSuperSharedFragments(t *testing.T) {
	// Code with the sequence [lit add] twice in straight line.
	code := []core.Inst{
		{Op: forthvm.OpLit, Arg: 1},
		{Op: forthvm.OpLit, Arg: 2},
		{Op: forthvm.OpAdd},
		{Op: forthvm.OpLit, Arg: 3},
		{Op: forthvm.OpAdd},
		{Op: forthvm.OpHalt},
	}
	table := superinst.MustNewTable([][]uint32{{forthvm.OpLit, forthvm.OpAdd}})
	plan := core.MustBuildPlan(code, forthvm.ISA(), core.Config{
		Technique: core.TStaticSuper, Supers: table,
	})
	// Positions 1 and 3 start super occurrences; with one copy they
	// share the routine address.
	if plan.Addr(1) != plan.Addr(3) {
		t.Error("static super occurrences should share the routine")
	}
	// Interior boundary of the super does not dispatch.
	if plan.SeqDispatch(1) || plan.SeqDispatch(3) {
		t.Error("interior junctions of static supers must not dispatch")
	}
	if !plan.SeqDispatch(2) || !plan.SeqDispatch(4) {
		t.Error("superinstruction ends must dispatch")
	}
	// Work at the non-first component is reduced.
	addWork := forthvm.ISA().Meta(forthvm.OpAdd).Work
	if plan.Work(2) >= addWork {
		t.Errorf("junction optimization missing: component work %d >= %d", plan.Work(2), addWork)
	}
}

// TestStaticReplRoundRobinSpreads: consecutive occurrences of the
// same opcode get different copies.
func TestStaticReplRoundRobin(t *testing.T) {
	code := []core.Inst{
		{Op: forthvm.OpDup}, {Op: forthvm.OpDup}, {Op: forthvm.OpDup},
		{Op: forthvm.OpHalt},
	}
	extra := make([]int, forthvm.ISA().NumOps())
	extra[forthvm.OpDup] = 2 // three copies total
	plan := core.MustBuildPlan(code, forthvm.ISA(), core.Config{
		Technique: core.TStaticRepl, ReplicaExtra: extra,
	})
	a, b, c := plan.Addr(0), plan.Addr(1), plan.Addr(2)
	if a == b || b == c || a == c {
		t.Errorf("round-robin gave duplicate copies: %#x %#x %#x", a, b, c)
	}
}

// TestSeqBranchConsistency: whenever a sequential boundary
// dispatches, its branch address is nonzero.
func TestSeqBranchConsistency(t *testing.T) {
	for _, tech := range core.Techniques() {
		cfg := core.Config{Technique: tech}
		if tech == core.TStaticSuper || tech == core.TStaticBoth ||
			tech == core.TWithStaticSuper || tech == core.TWithStaticSuperAcross {
			cfg.Supers = superinst.MustNewTable([][]uint32{{forthvm.OpLit, forthvm.OpAdd}})
		}
		p := forth.MustCompile(planSrc)
		plan, err := core.BuildPlan(p.Code, forthvm.ISA(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		for pos := 0; pos < len(p.Code)-1; pos++ {
			if plan.SeqDispatch(pos) && plan.Addr(pos) != 0 {
				// A dispatching boundary needs a valid branch.
				if plan.BranchAddr(pos) == 0 {
					t.Errorf("%v: position %d dispatches with zero branch address", tech, pos)
				}
			}
		}
	}
}

// TestVerifyRelocatability: both shipped ISAs pass the paper's
// padding-comparison check. (The failure path — a routine whose
// bytes differ between the two placements despite being declared
// relocatable — cannot arise from codegen.Image, which derives the
// bytes from the same flag; the mismatch mechanics are covered by
// the codegen package's own tests against hand-built images.)
func TestVerifyRelocatability(t *testing.T) {
	if err := core.VerifyRelocatability(forthvm.ISA()); err != nil {
		t.Errorf("forth ISA: %v", err)
	}
	if err := core.VerifyRelocatability(quickISA{}); err != nil {
		t.Errorf("quick test ISA: %v", err)
	}
}
