package core

import (
	"fmt"

	"vmopt/internal/cpu"
	"vmopt/internal/metrics"
)

// Run executes proc to completion under plan on the simulated machine
// sim, and returns the accumulated counters. maxSteps bounds the
// number of executed VM instructions.
//
// plan must have been built over proc.Code() (the live slice), so
// quickening stays coherent between the two.
func Run(proc Process, plan *Plan, sim *cpu.Sim, maxSteps uint64) (metrics.Counters, error) {
	code := proc.Code()
	sim.AddCodeBytes(plan.dynBytes)
	dispatchWork := plan.dispatchWork
	dispatchBytes := plan.dispatchBytes

	// Shadow mode: executing the non-replicated remainder of a
	// static superinstruction entered through a side entry
	// (TWithStaticSuperAcross only).
	shadowEnd := -1

	steps := uint64(0)
	for !proc.Done() {
		if steps >= maxSteps {
			return sim.C, fmt.Errorf("core: exceeded %d VM steps under %v", maxSteps, plan.technique)
		}
		steps++
		pos := proc.PC()
		ev, err := proc.Step()
		if err != nil {
			return sim.C, err
		}
		sim.VMInst()

		if ev.Quickened {
			// The quickening execution runs the original (slow)
			// routine plus the one-time resolution work; the plan is
			// repointed at the quick code only after this step's
			// accounting, below.
			sim.Work(plan.QuickWorkAt(pos))
		}

		inShadow := shadowEnd >= 0 && pos < shadowEnd
		if inShadow {
			m := proc.ISA().Meta(code[pos].Op)
			sim.Work(m.Work)
			sim.Fetch(plan.sharedAddr[pos], m.Bytes)
		} else {
			sim.Work(int(plan.workInstrs[pos]))
			sim.Fetch(plan.addr[pos], int(plan.workBytes[pos]))
		}

		// Boundary handling.
		var branch uint64
		dispatch := false
		switch ev.Kind {
		case EvHalt:
			// No dispatch after halting.
		case EvFall:
			switch {
			case inShadow:
				// Non-replicated code dispatches on every boundary.
				dispatch = true
				branch = plan.sharedBr[pos]
			case plan.seqDispatch[pos]:
				dispatch = true
				branch = plan.seqBranch[pos]
			default:
				sim.Work(int(plan.seqWork[pos]))
			}
		default: // taken branch, call, return, computed transfer
			dispatch = true
			if inShadow {
				branch = plan.sharedBr[pos]
			} else {
				branch = plan.branchAddr[pos]
			}
		}

		if dispatch {
			to := ev.To
			target := plan.addr[to]
			// Entering the middle of a static superinstruction that
			// crosses a basic-block boundary: fall back to shared
			// code until the superinstruction ends (Figure 6).
			enterShadow := false
			if plan.sideEntry != nil && ev.Kind != EvFall && plan.sideEntry[to] {
				target = plan.sharedAddr[to]
				enterShadow = true
			}
			sim.Work(dispatchWork)
			sim.Fetch(branch, dispatchBytes)
			sim.Dispatch(branch, uint64(code[to].Op), target)
			if enterShadow {
				shadowEnd = int(plan.shadowUntil[to])
			} else if ev.Kind != EvFall {
				shadowEnd = -1
			}
		}
		if shadowEnd >= 0 && ev.To >= shadowEnd {
			shadowEnd = -1
		}
		if ev.Quickened {
			plan.Quicken(pos, ev.NewOp)
		}
	}
	return sim.C, nil
}
