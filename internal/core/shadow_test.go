package core_test

import (
	"testing"

	"vmopt/internal/core"
	"vmopt/internal/cpu"
	"vmopt/internal/forthvm"
	"vmopt/internal/superinst"
)

// shadowProgram builds VM code where a static superinstruction covers
// a basic-block boundary and a loop branch targets its middle:
//
//	0: lit n        (counter)
//	1: lit 0        <- super starts here...
//	2: add
//	3: lit 1        <- ...loop target (side entry, leader)
//	4: add          <- super continues across the leader
//	5: lit -2
//	6: add          ; net -1 per iteration
//	7: dup          ; keep the counter for the test
//	8: zbranch 10   ; exit when counter == 0
//	9: branch 3     ; loop back into the middle of the covered run
//	10: halt
func shadowProgram(n int64) []core.Inst {
	return []core.Inst{
		{Op: forthvm.OpLit, Arg: n},
		{Op: forthvm.OpLit, Arg: 0},
		{Op: forthvm.OpAdd},
		{Op: forthvm.OpLit, Arg: 1},
		{Op: forthvm.OpAdd},
		{Op: forthvm.OpLit, Arg: -2},
		{Op: forthvm.OpAdd},
		{Op: forthvm.OpDup},
		{Op: forthvm.OpZBranch, Arg: 10},
		{Op: forthvm.OpBranch, Arg: 3},
		{Op: forthvm.OpHalt},
	}
}

// shadowTable covers lit/add pairs and longer chains so the parse can
// cross the leader at position 3.
func shadowTable() *superinst.Table {
	return superinst.MustNewTable([][]uint32{
		{forthvm.OpLit, forthvm.OpAdd},
		{forthvm.OpLit, forthvm.OpAdd, forthvm.OpLit, forthvm.OpAdd},
	})
}

// TestSideEntryDetected: with supers across basic blocks, the loop
// target inside a covered piece is flagged as a side entry; the
// within-block variant never flags one.
func TestSideEntryDetected(t *testing.T) {
	code := shadowProgram(5)
	across := core.MustBuildPlan(code, forthvm.ISA(), core.Config{
		Technique: core.TWithStaticSuperAcross, Supers: shadowTable(),
	})
	found := false
	for pos := range code {
		if across.SideEntry(pos) {
			found = true
		}
	}
	if !found {
		t.Fatal("no side entry detected; the parse should cross the leader at position 3")
	}

	within := core.MustBuildPlan(code, forthvm.ISA(), core.Config{
		Technique: core.TWithStaticSuper, Supers: shadowTable(),
	})
	for pos := range code {
		if within.SideEntry(pos) {
			t.Errorf("within-block variant flagged side entry at %d", pos)
		}
	}
}

// TestShadowModeCostsDispatches: executing through the side entry
// falls back to non-replicated code, which dispatches on every
// boundary — so the across-supers variant executes more dispatches
// on this loop than the within-block variant, while computing the
// same result.
func TestShadowModeCostsDispatches(t *testing.T) {
	run := func(tech core.Technique) (uint64, []int64) {
		code := shadowProgram(50)
		vm := forthvm.New(append([]core.Inst(nil), code...), 16)
		plan := core.MustBuildPlan(vm.Code(), forthvm.ISA(), core.Config{
			Technique: tech, Supers: shadowTable(),
		})
		sim := cpu.NewSim(cpu.Pentium4Northwood)
		c, err := core.Run(vm, plan, sim, 100_000)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		return c.Dispatches, vm.Stack()
	}
	dAcross, sAcross := run(core.TWithStaticSuperAcross)
	dWithin, sWithin := run(core.TWithStaticSuper)
	if len(sAcross) != len(sWithin) || sAcross[0] != sWithin[0] {
		t.Fatalf("semantics diverged: %v vs %v", sAcross, sWithin)
	}
	if dAcross <= dWithin {
		t.Errorf("side-entry fallback should cost dispatches: across=%d within=%d",
			dAcross, dWithin)
	}
}
