package core

import "fmt"

// ProfileData is the result of a training run (paper Section 7.1: the
// static variants select replicas and superinstructions from the most
// frequently executed VM instructions and sequences of a training
// benchmark).
type ProfileData struct {
	// OpFreq[op] counts executed instances of each opcode.
	OpFreq []uint64
	// PosFreq[pos] counts executions of each VM code position.
	PosFreq []uint64
	// Steps is the total executed VM instruction count.
	Steps uint64
}

// Profile executes proc (semantics only, no micro-architecture
// simulation) and collects execution frequencies.
func Profile(proc Process, maxSteps uint64) (*ProfileData, error) {
	code := proc.Code()
	d := &ProfileData{
		OpFreq:  make([]uint64, proc.ISA().NumOps()),
		PosFreq: make([]uint64, len(code)),
	}
	for !proc.Done() {
		if d.Steps >= maxSteps {
			return d, fmt.Errorf("core: profile exceeded %d steps", maxSteps)
		}
		pos := proc.PC()
		if _, err := proc.Step(); err != nil {
			return d, err
		}
		d.Steps++
		d.PosFreq[pos]++
		d.OpFreq[code[pos].Op]++
	}
	return d, nil
}

// RunWeights returns, for each run, its execution count (the count of
// its first position): the weights used when collecting training
// sequences for superinstruction selection.
func (d *ProfileData) RunWeights(runs []Block) []uint64 {
	out := make([]uint64, len(runs))
	for k, r := range runs {
		out[k] = d.PosFreq[r.Start]
	}
	return out
}
