package core

import (
	"fmt"

	"vmopt/internal/codegen"
)

// Plan is the code layout a dispatch technique produces for one VM
// program: for every VM code position, where its native code lives,
// how much work it performs, and which indirect branch (if any)
// dispatches after it. The engine drives the micro-architecture
// simulation from these tables.
type Plan struct {
	technique Technique
	isa       ISA

	// addr[p] is the address of the native code executed for
	// position p; it is also the dispatch target used when control
	// transfers to p.
	addr []uint64
	// workInstrs/workBytes give the work part cost of position p
	// under this plan (superinstruction junction savings applied).
	workInstrs []int32
	workBytes  []int32
	// branchAddr[p] is the address of the indirect dispatch branch
	// used for control transfers out of position p (taken branches,
	// calls, returns).
	branchAddr []uint64
	// seqBranch[p] is the branch used when the sequential boundary
	// p -> p+1 dispatches; usually equal to branchAddr[p], but a
	// fall-through into a quickable gap dispatches through the gap
	// stub instead (Section 5.4).
	seqBranch []uint64
	// seqDispatch[p] reports whether the sequential boundary
	// p -> p+1 performs a dispatch (false inside superinstructions
	// and on across-bb fall-through).
	seqDispatch []bool
	// mustSeq[p] marks sequential dispatches that are structural
	// (block ends, transitions into shared code) and are never
	// removed by quickening.
	mustSeq []bool
	// seqWork[p] is the native work on a sequential boundary
	// without dispatch (the kept ip increment; 0 inside static
	// superinstructions).
	seqWork []int8

	dispatchWork  int
	dispatchBytes int

	// dynBytes is the run-time generated code volume.
	dynBytes uint64

	// Shadow-mode tables for TWithStaticSuperAcross: a dispatch
	// arriving at a side entry (a non-first component of a static
	// superinstruction) executes non-replicated code until the
	// superinstruction ends (paper Figure 6).
	sideEntry   []bool
	shadowUntil []int32
	sharedAddr  []uint64
	sharedBr    []uint64

	// Quickening support (JVM).
	onQuicken func(p *Plan, pos int, newOp uint32)
	// gapAddr[p] is the reserved gap for a quickable instance in
	// dynamically generated code (0 if none).
	gapAddr []uint64
	// quickWork[p] is the one-time quickening cost charged when the
	// instruction at p rewrites itself.
	quickWork []int32

	// Replica assigners kept for quicken-time copy selection
	// (static replication of quick instructions).
	assigner *replicaState
}

// replicaState carries static-replication state into quicken time.
type replicaState struct {
	copyAddr   [][]uint64 // per opcode, per copy: work address
	copyBranch [][]uint64 // per opcode, per copy: branch address
	next       []int      // round-robin cursors
}

// Technique returns the plan's technique.
func (p *Plan) Technique() Technique { return p.technique }

// DynamicCodeBytes returns the run-time generated code volume.
func (p *Plan) DynamicCodeBytes() uint64 { return p.dynBytes }

// DispatchCost returns the per-dispatch native instruction count and
// code bytes.
func (p *Plan) DispatchCost() (work, bytes int) {
	return p.dispatchWork, p.dispatchBytes
}

// Addr returns the native code address for position pos.
func (p *Plan) Addr(pos int) uint64 { return p.addr[pos] }

// BranchAddr returns the dispatch branch address after position pos.
func (p *Plan) BranchAddr(pos int) uint64 { return p.branchAddr[pos] }

// SeqDispatch reports whether the boundary pos -> pos+1 dispatches.
func (p *Plan) SeqDispatch(pos int) bool { return p.seqDispatch[pos] }

// SideEntry reports whether position pos is a side entry into a
// static superinstruction crossing a basic-block boundary
// (TWithStaticSuperAcross only): control arriving here executes
// non-replicated code until the superinstruction ends (Figure 6).
func (p *Plan) SideEntry(pos int) bool {
	return p.sideEntry != nil && p.sideEntry[pos]
}

// Work returns the work cost (native instructions) of position pos.
func (p *Plan) Work(pos int) int { return int(p.workInstrs[pos]) }

// Quicken informs the plan that the instruction at pos rewrote itself
// to newOp; the plan repoints the instance at its patched quick code
// (dynamic techniques) or a replica of the quick instruction (static
// replication), and re-parses superinstructions where applicable.
func (p *Plan) Quicken(pos int, newOp uint32) {
	if p.onQuicken != nil {
		p.onQuicken(p, pos, newOp)
	}
}

// newPlan initializes per-position tables with plain per-opcode
// defaults: every position costs its opcode's meta work, and every
// boundary dispatches.
func newPlan(t Technique, code []Inst, isa ISA) *Plan {
	n := len(code)
	p := &Plan{
		technique:   t,
		isa:         isa,
		addr:        make([]uint64, n),
		workInstrs:  make([]int32, n),
		workBytes:   make([]int32, n),
		branchAddr:  make([]uint64, n),
		seqBranch:   make([]uint64, n),
		seqDispatch: make([]bool, n),
		mustSeq:     make([]bool, n),
		seqWork:     make([]int8, n),
	}
	for pos, in := range code {
		m := isa.Meta(in.Op)
		p.workInstrs[pos] = int32(m.Work)
		p.workBytes[pos] = int32(m.Bytes)
		p.seqDispatch[pos] = true
		if m.Quickable {
			if p.quickWork == nil {
				p.quickWork = make([]int32, n)
			}
			p.quickWork[pos] = int32(m.QuickWork)
		}
	}
	return p
}

// QuickWorkAt returns the one-time quickening cost for position pos.
func (p *Plan) QuickWorkAt(pos int) int {
	if p.quickWork == nil {
		return 0
	}
	return int(p.quickWork[pos])
}

// VerifyRelocatability runs the paper's portable relocatability check
// (Section 5.2) over an ISA: place every routine at two different
// addresses — as if two interpreter images with gratuitous padding
// had been compiled — and compare the bytes. It returns an error if
// the detection disagrees with the ISA's declared relocatability
// (which would mean dynamic code copying could corrupt a routine).
//
// Dynamic plan builders call this once per ISA; it is exported so
// embedders adding their own ISAs can validate them directly.
func VerifyRelocatability(isa ISA) error {
	n := isa.NumOps()
	sizes := make([]int, n)
	reloc := make([]bool, n)
	for op := 0; op < n; op++ {
		m := isa.Meta(uint32(op))
		sizes[op] = m.Bytes
		reloc[op] = m.Relocatable
	}
	detected := codegen.DetectRelocatable(sizes, reloc)
	for op := 0; op < n; op++ {
		// Routines shorter than a displacement are trivially
		// position-independent in the image model; the declared
		// flag wins there.
		if sizes[op] >= 4 && detected[op] != reloc[op] {
			return fmt.Errorf("core: opcode %s detected relocatable=%v but declared %v",
				isa.Meta(uint32(op)).Name, detected[op], reloc[op])
		}
	}
	return nil
}

// staticLayout is the interpreter's built-in code: one routine per
// opcode, each ending in its own dispatch branch, plus the shared
// switch dispatcher.
type staticLayout struct {
	workAddr   []uint64
	branchAddr []uint64
	switchAddr uint64
	caseAddr   []uint64
}

// buildStaticLayout lays out the base interpreter for an ISA.
func buildStaticLayout(isa ISA) *staticLayout {
	alloc := codegen.NewAllocator(codegen.StaticBase, 16)
	n := isa.NumOps()
	l := &staticLayout{
		workAddr:   make([]uint64, n),
		branchAddr: make([]uint64, n),
		caseAddr:   make([]uint64, n),
	}
	// Threaded-code routines: work part followed by the dispatch
	// sequence.
	for op := 0; op < n; op++ {
		m := isa.Meta(uint32(op))
		a := alloc.Alloc(m.Bytes + threadedDispatchBytes)
		l.workAddr[op] = a
		l.branchAddr[op] = a + uint64(m.Bytes)
	}
	// Switch dispatcher and case bodies.
	l.switchAddr = alloc.Alloc(switchDispatchBytes)
	for op := 0; op < n; op++ {
		m := isa.Meta(uint32(op))
		// Case body: work plus the break jump back to the
		// dispatcher.
		l.caseAddr[op] = alloc.Alloc(m.Bytes + 5)
	}
	return l
}
