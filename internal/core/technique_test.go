package core_test

import (
	"testing"

	"vmopt/internal/core"
)

func TestTechniqueNamesRoundTrip(t *testing.T) {
	for _, tq := range core.Techniques() {
		got, err := core.TechniqueByName(tq.String())
		if err != nil {
			t.Errorf("TechniqueByName(%q): %v", tq.String(), err)
			continue
		}
		if got != tq {
			t.Errorf("round trip %v -> %q -> %v", tq, tq.String(), got)
		}
	}
}

func TestTechniqueByNameUnknown(t *testing.T) {
	if _, err := core.TechniqueByName("jit"); err == nil {
		t.Error("unknown technique should error")
	}
}

func TestTechniqueStringOutOfRange(t *testing.T) {
	if s := core.Technique(-1).String(); s == "" {
		t.Error("out-of-range String should be non-empty")
	}
}

func TestIsDynamic(t *testing.T) {
	dynamic := map[core.Technique]bool{
		core.TDynamicRepl: true, core.TDynamicSuper: true, core.TDynamicBoth: true,
		core.TAcrossBB: true, core.TWithStaticSuper: true, core.TWithStaticSuperAcross: true,
	}
	for _, tq := range core.Techniques() {
		if got := tq.IsDynamic(); got != dynamic[tq] {
			t.Errorf("%v.IsDynamic() = %v, want %v", tq, got, dynamic[tq])
		}
	}
}

func TestPaperNames(t *testing.T) {
	// The names must match the paper's Section 7.1 variant labels.
	want := map[core.Technique]string{
		core.TPlain:           "plain",
		core.TStaticRepl:      "static repl",
		core.TStaticSuper:     "static super",
		core.TStaticBoth:      "static both",
		core.TDynamicRepl:     "dynamic repl",
		core.TDynamicSuper:    "dynamic super",
		core.TDynamicBoth:     "dynamic both",
		core.TAcrossBB:        "across bb",
		core.TWithStaticSuper: "with static super",
	}
	for tq, name := range want {
		if tq.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(tq), tq.String(), name)
		}
	}
}
