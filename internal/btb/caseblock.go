package btb

import "fmt"

// CaseBlock is the case block table of Kaeli and Emma (paper Section
// 8): a history-based predictor specifically for switch statements,
// indexed by the switch operand (for a VM interpreter, the opcode of
// the VM instruction being dispatched) rather than only by the branch
// address. For a switch-based interpreter this gives almost perfect
// prediction, because the target of the dispatch switch is a pure
// function of the opcode.
type CaseBlock struct {
	sets int
	data []caseEntry
	name string
}

type caseEntry struct {
	key    uint64
	target uint64
	valid  bool
}

// NewCaseBlock returns a case block table with the given entry count
// (rounded requirement: power of two), direct mapped on
// hash(branch, operand).
func NewCaseBlock(entries int) *CaseBlock {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("btb: case block entries %d not a power of two", entries))
	}
	b := &CaseBlock{sets: entries, name: fmt.Sprintf("caseblock-%d", entries)}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *CaseBlock) Name() string { return b.name }

// Access implements Predictor; hint carries the switch operand.
func (b *CaseBlock) Access(branch, hint, target uint64) bool {
	key := branch>>2 ^ hint*0x9e3779b97f4a7c15
	idx := key & uint64(b.sets-1)
	e := &b.data[idx]
	correct := e.valid && e.key == key && e.target == target
	*e = caseEntry{key: key, target: target, valid: true}
	return correct
}

// Reset implements Predictor. It reuses the table's storage so a
// pooled or arena-replayed simulator resets without allocating.
func (b *CaseBlock) Reset() {
	if b.data == nil {
		b.data = make([]caseEntry, b.sets)
		return
	}
	clear(b.data)
}
