package btb

import (
	"testing"
	"testing/quick"
)

// Addresses for a synthetic threaded-code loop "A B A GOTO" (Table I):
// each VM instruction has its own dispatch branch; the targets are the
// code addresses of the following instruction's implementation.
const (
	brA    = 0x1000 // dispatch branch at end of code for A
	brB    = 0x1100
	brGoto = 0x1200
	codeA  = 0x2000
	codeB  = 0x2100
	codeG  = 0x2200
	brSw   = 0x3000 // the single switch-dispatch branch
)

// runThreadedLoop drives p through n iterations of the Table I loop
// under threaded dispatch and returns the misprediction count after a
// warm-up iteration.
func runThreadedLoop(p Predictor, n int) (misp int) {
	// VM program: A B A GOTO -> back to first A.
	type step struct{ branch, target uint64 }
	trace := []step{
		{brA, codeB},    // after first A, dispatch to B
		{brB, codeA},    // after B, dispatch to second A
		{brA, codeG},    // after second A, dispatch to GOTO
		{brGoto, codeA}, // GOTO loops back to first A
	}
	for i := 0; i < n+1; i++ {
		for _, s := range trace {
			ok := p.Access(s.branch, 0, s.target)
			if i > 0 && !ok { // skip warm-up iteration
				misp++
			}
		}
	}
	return misp
}

// TestTableIThreaded reproduces the threaded-dispatch column of Table
// I: per loop iteration, the two dispatches of A mispredict (its BTB
// entry alternates between B and GOTO), while B and GOTO predict
// correctly — 2 mispredictions per iteration.
func TestTableIThreaded(t *testing.T) {
	for _, p := range []Predictor{NewIdeal(), NewSetAssoc(512, 4)} {
		misp := runThreadedLoop(p, 10)
		if misp != 20 {
			t.Errorf("%s: threaded loop mispredictions = %d, want 20 (2/iter)", p.Name(), misp)
		}
	}
}

// TestTableISwitch reproduces the switch-dispatch column of Table I:
// with a single shared indirect branch the BTB predicts the current
// instruction repeats, which is wrong on every step of the A B A GOTO
// loop — 4 mispredictions per iteration.
func TestTableISwitch(t *testing.T) {
	p := NewIdeal()
	targets := []uint64{codeB, codeA, codeG, codeA} // B, A, GOTO, A
	misp := 0
	for i := 0; i < 11; i++ {
		for _, tgt := range targets {
			if !p.Access(brSw, 0, tgt) && i > 0 {
				misp++
			}
		}
	}
	if misp != 40 {
		t.Errorf("switch loop mispredictions = %d, want 40 (4/iter)", misp)
	}
}

// TestTableIIReplication reproduces Table II: with two replicas of A
// (separate branch addresses), all dispatches predict correctly after
// warm-up.
func TestTableIIReplication(t *testing.T) {
	p := NewIdeal()
	const brA1, brA2 = 0x1000, 0x1080
	type step struct{ branch, target uint64 }
	trace := []step{
		{brA1, codeB},
		{brB, 0x2080}, // code for A2 replica
		{brA2, codeG},
		{brGoto, codeA},
	}
	misp := 0
	for i := 0; i < 11; i++ {
		for _, s := range trace {
			if !p.Access(s.branch, 0, s.target) && i > 0 {
				misp++
			}
		}
	}
	if misp != 0 {
		t.Errorf("replicated loop mispredictions = %d, want 0", misp)
	}
}

// TestIdealFirstAccessMisses verifies a first-seen branch counts as a
// misprediction.
func TestIdealFirstAccessMisses(t *testing.T) {
	p := NewIdeal()
	if p.Access(0x10, 0, 0x20) {
		t.Error("first access should mispredict")
	}
	if !p.Access(0x10, 0, 0x20) {
		t.Error("second access with same target should predict")
	}
	if p.Access(0x10, 0, 0x30) {
		t.Error("target change should mispredict")
	}
	if t2, ok := p.Lookup(0x10); !ok || t2 != 0x30 {
		t.Errorf("Lookup = %#x,%v; want 0x30,true", t2, ok)
	}
}

func TestIdealReset(t *testing.T) {
	p := NewIdeal()
	p.Access(0x10, 0, 0x20)
	p.Reset()
	if _, ok := p.Lookup(0x10); ok {
		t.Error("Reset should clear entries")
	}
}

// TestSetAssocConflict verifies two branches mapping to the same set of
// a direct-mapped BTB evict each other (conflict misses).
func TestSetAssocConflict(t *testing.T) {
	b := NewSetAssoc(4, 1) // 4 sets, direct mapped
	// Branches 0x10 and 0x50 share set ((addr>>2)&3): 0x10>>2=4 -> set 0; 0x50>>2=20 -> set 0.
	b.Access(0x10, 0, 0xA)
	b.Access(0x50, 0, 0xB) // evicts 0x10
	if b.Access(0x10, 0, 0xA) {
		t.Error("evicted branch should mispredict")
	}
}

// TestSetAssocLRU verifies LRU keeps the two hottest branches in a
// 2-way set.
func TestSetAssocLRU(t *testing.T) {
	b := NewSetAssoc(2, 2) // 1 set, 2 ways
	b.Access(0x10, 0, 0xA)
	b.Access(0x20, 0, 0xB)
	b.Access(0x10, 0, 0xA) // touch 0x10 -> MRU
	b.Access(0x30, 0, 0xC) // evicts LRU = 0x20
	if !b.Access(0x10, 0, 0xA) {
		t.Error("MRU branch should still hit")
	}
	if b.Access(0x20, 0, 0xB) {
		t.Error("LRU-evicted branch should miss")
	}
}

func TestSetAssocGeometryPanics(t *testing.T) {
	for _, g := range []struct{ e, w int }{{0, 1}, {5, 2}, {12, 2}, {-4, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d,%d) should panic", g.e, g.w)
				}
			}()
			NewSetAssoc(g.e, g.w)
		}()
	}
}

// TestSetAssocMatchesIdealWhenLarge checks a big finite BTB behaves
// like the ideal BTB on a small working set.
func TestSetAssocMatchesIdealWhenLarge(t *testing.T) {
	f := func(seq []uint16) bool {
		big := NewSetAssoc(1<<16, 4)
		id := NewIdeal()
		for i, v := range seq {
			branch := uint64(v%64) * 4 // 64 distinct branches, word aligned
			target := uint64(seq[(i+1)%len(seq)])
			if big.Access(branch, 0, target) != id.Access(branch, 0, target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTwoBitHysteresis verifies the counter keeps a target through a
// single deviation: pattern T1 T1 T2 T1 should mispredict on T2 and
// predict T1 again right after (a plain BTB would mispredict twice).
func TestTwoBitHysteresis(t *testing.T) {
	b := NewTwoBit(512, 4)
	b.Access(0x10, 0, 1) // install, counter=1
	b.Access(0x10, 0, 1) // correct, counter=2
	if b.Access(0x10, 0, 2) {
		t.Error("deviation should mispredict")
	}
	if !b.Access(0x10, 0, 1) {
		t.Error("two-bit counter should have kept target 1")
	}
}

// TestTwoBitEventuallySwitches verifies repeated mispredictions do
// replace the target.
func TestTwoBitEventuallySwitches(t *testing.T) {
	b := NewTwoBit(512, 4)
	b.Access(0x10, 0, 1)
	b.Access(0x10, 0, 1)
	b.Access(0x10, 0, 1) // counter saturates at 3
	n := 0
	for i := 0; i < 10; i++ {
		if b.Access(0x10, 0, 2) {
			break
		}
		n++
	}
	if n == 10 {
		t.Fatal("two-bit BTB never switched to the new target")
	}
	if !b.Access(0x10, 0, 2) {
		t.Error("after switching, target 2 should predict")
	}
}

// TestTwoBitBeatsPlainOnAlternatingA mirrors the paper's observation
// that 2-bit counters give slightly fewer mispredictions for threaded
// code in some patterns: with pattern 1 1 2 repeated, hysteresis keeps
// the majority target.
func TestTwoBitBeatsPlainOnSkewedPattern(t *testing.T) {
	pattern := []uint64{1, 1, 2}
	countMisp := func(p Predictor) int {
		misp := 0
		for i := 0; i < 300; i++ {
			if !p.Access(0x40, 0, pattern[i%3]) && i >= 3 {
				misp++
			}
		}
		return misp
	}
	plain := countMisp(NewSetAssoc(512, 4))
	twobit := countMisp(NewTwoBit(512, 4))
	if twobit >= plain {
		t.Errorf("two-bit (%d) should beat plain BTB (%d) on skewed pattern", twobit, plain)
	}
}

// TestTwoLevelPredictsAlternation: the Table I loop that defeats a BTB
// (A's branch alternates B, GOTO) is predictable from path history.
func TestTwoLevelPredictsAlternation(t *testing.T) {
	p := NewTwoLevel(12, 4)
	misp := runThreadedLoop(p, 50)
	if misp > 2 { // allow a couple of training mispredictions after warm-up
		t.Errorf("two-level mispredictions = %d, want <= 2", misp)
	}
}

// TestTwoLevelBeatsBTB compares on the alternating loop.
func TestTwoLevelBeatsBTB(t *testing.T) {
	btbMisp := runThreadedLoop(NewSetAssoc(512, 4), 50)
	tlMisp := runThreadedLoop(NewTwoLevel(12, 4), 50)
	if tlMisp >= btbMisp {
		t.Errorf("two-level (%d) should beat BTB (%d)", tlMisp, btbMisp)
	}
}

// TestCaseBlockPerfectOnSwitch: keyed by opcode, the case block table
// predicts switch dispatch almost perfectly (paper Section 8).
func TestCaseBlockPerfectOnSwitch(t *testing.T) {
	p := NewCaseBlock(1 << 12)
	opcodes := []uint64{7, 3, 7, 9} // A B A GOTO as opcodes
	targets := []uint64{codeA, codeB, codeA, codeG}
	misp := 0
	for i := 0; i < 11; i++ {
		for j := range opcodes {
			if !p.Access(brSw, opcodes[j], targets[j]) && i > 0 {
				misp++
			}
		}
	}
	if misp != 0 {
		t.Errorf("case block mispredictions = %d, want 0", misp)
	}
}

// TestCaseBlockIgnoredHintDegrades: with a constant hint it degenerates
// to BTB-like behaviour on the switch branch.
func TestCaseBlockConstantHint(t *testing.T) {
	p := NewCaseBlock(1 << 12)
	targets := []uint64{codeA, codeB}
	misp := 0
	for i := 0; i < 10; i++ {
		for _, tgt := range targets {
			if !p.Access(brSw, 0, tgt) && i > 0 {
				misp++
			}
		}
	}
	if misp == 0 {
		t.Error("alternating targets with constant hint should mispredict")
	}
}

// Property: for every predictor, repeating the same (branch, hint,
// target) access eventually predicts correctly and then stays correct.
func TestPredictorsConverge(t *testing.T) {
	preds := []func() Predictor{
		func() Predictor { return NewIdeal() },
		func() Predictor { return NewSetAssoc(512, 4) },
		func() Predictor { return NewTwoBit(512, 4) },
		func() Predictor { return NewTwoLevel(10, 4) },
		func() Predictor { return NewCaseBlock(1 << 10) },
	}
	for _, mk := range preds {
		p := mk()
		f := func(branch, hint, target uint16) bool {
			p.Reset()
			b, h, tg := uint64(branch)*4, uint64(hint), uint64(target)
			ok := false
			for i := 0; i < 8; i++ {
				ok = p.Access(b, h, tg)
			}
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s does not converge: %v", p.Name(), err)
		}
	}
}

// TestStatsCounts verifies the Stats wrapper.
func TestStatsCounts(t *testing.T) {
	s := &Stats{P: NewIdeal()}
	s.Access(0x10, 0, 1) // miss
	s.Access(0x10, 0, 1) // hit
	s.Access(0x10, 0, 2) // miss
	if s.Accesses != 3 || s.Mispredicted != 2 {
		t.Errorf("Stats = %d/%d, want 2/3", s.Mispredicted, s.Accesses)
	}
	if got := s.Rate(); got < 0.66 || got > 0.67 {
		t.Errorf("Rate = %v, want 2/3", got)
	}
	s.Reset()
	if s.Accesses != 0 || s.Mispredicted != 0 {
		t.Error("Reset should clear counters")
	}
	if (&Stats{P: NewIdeal()}).Rate() != 0 {
		t.Error("Rate on empty Stats should be 0")
	}
}

func TestTwoLevelGeometryPanics(t *testing.T) {
	for _, g := range []struct{ b, h int }{{0, 1}, {30, 1}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTwoLevel(%d,%d) should panic", g.b, g.h)
				}
			}()
			NewTwoLevel(g.b, g.h)
		}()
	}
}

func TestCaseBlockGeometryPanics(t *testing.T) {
	for _, n := range []int{0, 3, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCaseBlock(%d) should panic", n)
				}
			}()
			NewCaseBlock(n)
		}()
	}
}
