package btb

import "fmt"

// Ideal is an unbounded BTB: one entry per branch, no capacity or
// conflict misses (paper Section 2.2, "an idealised BTB contains one
// entry for each branch and predicts that the branch jumps to the same
// target as the last time it was executed").
type Ideal struct {
	entries map[uint64]uint64
}

// NewIdeal returns an idealized, unbounded BTB.
func NewIdeal() *Ideal {
	return &Ideal{entries: make(map[uint64]uint64)}
}

// Name implements Predictor.
func (b *Ideal) Name() string { return "btb-ideal" }

// Access implements Predictor. A branch seen for the first time counts
// as mispredicted (there is no prediction to be correct).
func (b *Ideal) Access(branch, _, target uint64) bool {
	prev, seen := b.entries[branch]
	b.entries[branch] = target
	return seen && prev == target
}

// Reset implements Predictor. It reuses the table's storage so a
// pooled or arena-replayed simulator resets without allocating.
func (b *Ideal) Reset() {
	if b.entries == nil {
		b.entries = make(map[uint64]uint64)
		return
	}
	clear(b.entries)
}

// Lookup returns the current prediction for a branch, if any. It does
// not modify predictor state; tests and the trace tool use it.
func (b *Ideal) Lookup(branch uint64) (uint64, bool) {
	t, ok := b.entries[branch]
	return t, ok
}

type entry struct {
	tag    uint64
	target uint64
	valid  bool
}

// SetAssoc is a finite set-associative BTB with LRU replacement,
// modeling the capacity and conflict misses of real hardware (e.g.
// 512 entries on the Celeron/P3, 4096 on the Pentium 4).
type SetAssoc struct {
	sets  int
	ways  int
	shift uint
	// data[set] is ordered most-recently-used first.
	data [][]entry
	name string
}

// NewSetAssoc returns a BTB with the given total entry count and
// associativity. entries must be a multiple of ways and the set count
// a power of two.
func NewSetAssoc(entries, ways int) *SetAssoc {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("btb: bad geometry entries=%d ways=%d", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("btb: set count %d not a power of two", sets))
	}
	b := &SetAssoc{
		sets: sets,
		ways: ways,
		// Branch addresses are byte addresses; drop the low 2 bits
		// so adjacent branches spread across sets like real BTBs.
		shift: 2,
		name:  fmt.Sprintf("btb-%dx%d", entries/ways, ways),
	}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *SetAssoc) Name() string { return b.name }

// Entries returns the total capacity in entries.
func (b *SetAssoc) Entries() int { return b.sets * b.ways }

func (b *SetAssoc) setFor(branch uint64) int {
	return int((branch >> b.shift) & uint64(b.sets-1))
}

// Access implements Predictor. A miss in the table (capacity/conflict)
// counts as a misprediction, as on real hardware where an unknown
// branch falls back to a static (wrong) prediction.
func (b *SetAssoc) Access(branch, _, target uint64) bool {
	set := b.data[b.setFor(branch)]
	tag := branch >> b.shift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			correct := set[i].target == target
			set[i].target = target
			// Move to front (most recently used).
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			return correct
		}
	}
	// Miss: install at MRU position, evicting LRU.
	copy(set[1:], set[:len(set)-1])
	set[0] = entry{tag: tag, target: target, valid: true}
	return false
}

// Reset implements Predictor. It reuses the table's storage so a
// pooled or arena-replayed simulator resets without allocating.
func (b *SetAssoc) Reset() {
	if b.data == nil {
		b.data = make([][]entry, b.sets)
		for i := range b.data {
			b.data[i] = make([]entry, b.ways)
		}
		return
	}
	for i := range b.data {
		clear(b.data[i])
	}
}

// Lookup returns the current prediction without updating state.
func (b *SetAssoc) Lookup(branch uint64) (uint64, bool) {
	set := b.data[b.setFor(branch)]
	tag := branch >> b.shift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return set[i].target, true
		}
	}
	return 0, false
}
