// Package btb implements indirect branch predictors.
//
// The central model is the branch target buffer (BTB, paper Section
// 2.2): a table indexed by branch address that predicts each indirect
// branch jumps to the same target as on its previous execution. The
// package also provides the variants the paper discusses: a BTB with
// two-bit hysteresis counters, a two-level history-based indirect
// predictor (Driesen and Hölzle; the Pentium M style predictor from
// Section 8), and the case-block table of Kaeli and Emma, which keys
// predictions on the switch operand.
package btb

// Predictor is an indirect branch predictor.
//
// Access performs one predict-and-update step for an executed indirect
// branch: branch is the address of the branch instruction, hint is an
// auxiliary key available to operand-indexed predictors (the VM opcode
// for a switch-style dispatch; BTB-style predictors ignore it), and
// target is the actual branch destination. It reports whether the
// predictor had predicted the target correctly before updating.
type Predictor interface {
	// Name identifies the predictor configuration for reports.
	Name() string
	// Access predicts the branch, updates predictor state with the
	// actual target, and reports whether the prediction was correct.
	Access(branch, hint, target uint64) bool
	// Reset clears all predictor state.
	Reset()
}

// Stats wraps a Predictor and counts accesses and mispredictions.
type Stats struct {
	P            Predictor
	Accesses     uint64
	Mispredicted uint64
}

// Access forwards to the wrapped predictor and accumulates counts.
func (s *Stats) Access(branch, hint, target uint64) bool {
	s.Accesses++
	ok := s.P.Access(branch, hint, target)
	if !ok {
		s.Mispredicted++
	}
	return ok
}

// Rate returns the misprediction rate in [0,1].
func (s *Stats) Rate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Mispredicted) / float64(s.Accesses)
}

// Reset clears both the counters and the underlying predictor.
func (s *Stats) Reset() {
	s.Accesses = 0
	s.Mispredicted = 0
	s.P.Reset()
}
