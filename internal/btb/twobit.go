package btb

import "fmt"

// TwoBit is a BTB whose entries carry a two-bit saturating hysteresis
// counter: the stored target is only replaced after two consecutive
// mispredictions. The paper (Section 3) reports this variant gives
// slightly better results for threaded code (50%-61% mispredictions
// versus 57%-63% for a plain BTB).
type TwoBit struct {
	sets  int
	ways  int
	shift uint
	data  [][]twoBitEntry
	name  string
}

type twoBitEntry struct {
	tag     uint64
	target  uint64
	counter uint8 // 0..3; >=2 means "strongly" keep the target
	valid   bool
}

// NewTwoBit returns a two-bit-counter BTB with the given geometry.
func NewTwoBit(entries, ways int) *TwoBit {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("btb: bad geometry entries=%d ways=%d", entries, ways))
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("btb: set count %d not a power of two", sets))
	}
	b := &TwoBit{sets: sets, ways: ways, shift: 2,
		name: fmt.Sprintf("btb2bc-%dx%d", sets, ways)}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *TwoBit) Name() string { return b.name }

// Access implements Predictor.
func (b *TwoBit) Access(branch, _, target uint64) bool {
	set := b.data[int((branch>>b.shift)&uint64(b.sets-1))]
	tag := branch >> b.shift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			correct := set[i].target == target
			if correct {
				if set[i].counter < 3 {
					set[i].counter++
				}
			} else {
				if set[i].counter > 0 {
					set[i].counter--
				} else {
					set[i].target = target
					set[i].counter = 1
				}
			}
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			return correct
		}
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = twoBitEntry{tag: tag, target: target, counter: 1, valid: true}
	return false
}

// Reset implements Predictor. It reuses the table's storage so a
// pooled or arena-replayed simulator resets without allocating.
func (b *TwoBit) Reset() {
	if b.data == nil {
		b.data = make([][]twoBitEntry, b.sets)
		for i := range b.data {
			b.data[i] = make([]twoBitEntry, b.ways)
		}
		return
	}
	for i := range b.data {
		clear(b.data[i])
	}
}
