package btb

import "fmt"

// TwoLevel is a history-based two-level indirect branch predictor in
// the style of Driesen and Hölzle, the mechanism behind the Pentium M
// indirect predictor the paper discusses in Section 8. It combines the
// targets of the most recently executed indirect branches with the
// branch address to index a target table. With sufficient history it
// correctly predicts most dispatch branches of a threaded-code
// interpreter, which is why the paper notes such hardware would make
// the software techniques less necessary.
type TwoLevel struct {
	tableBits int
	history   uint64
	histLen   int
	table     []uint64
	tagged    []bool
	name      string
}

// NewTwoLevel returns a two-level predictor with 2^tableBits entries
// and a path history of histLen previous targets.
func NewTwoLevel(tableBits, histLen int) *TwoLevel {
	if tableBits <= 0 || tableBits > 24 || histLen <= 0 {
		panic(fmt.Sprintf("btb: bad two-level geometry bits=%d hist=%d", tableBits, histLen))
	}
	b := &TwoLevel{tableBits: tableBits, histLen: histLen,
		name: fmt.Sprintf("twolevel-%db-h%d", tableBits, histLen)}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *TwoLevel) Name() string { return b.name }

func (b *TwoLevel) index(branch uint64) uint64 {
	mask := uint64(1)<<b.tableBits - 1
	return (b.history ^ (branch >> 2)) & mask
}

// Access implements Predictor.
func (b *TwoLevel) Access(branch, _, target uint64) bool {
	idx := b.index(branch)
	correct := b.tagged[idx] && b.table[idx] == target
	b.table[idx] = target
	b.tagged[idx] = true
	// Fold the new target into the path history: shift by a few bits
	// per branch so histLen targets fit in the index.
	shift := uint(b.tableBits / b.histLen)
	if shift == 0 {
		shift = 1
	}
	b.history = (b.history<<shift ^ (target >> 2)) & (uint64(1)<<b.tableBits - 1)
	return correct
}

// Reset implements Predictor. It reuses the table's storage so a
// pooled or arena-replayed simulator resets without allocating.
func (b *TwoLevel) Reset() {
	if b.table == nil {
		b.table = make([]uint64, 1<<b.tableBits)
		b.tagged = make([]bool, 1<<b.tableBits)
		b.history = 0
		return
	}
	clear(b.table)
	clear(b.tagged)
	b.history = 0
}
