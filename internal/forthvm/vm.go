package forthvm

import (
	"errors"
	"fmt"
	"strconv"

	"vmopt/internal/core"
)

// Limits for the VM stacks; deliberately generous, overflow indicates
// a buggy program rather than a deep workload.
const (
	stackLimit  = 1 << 16
	rstackLimit = 1 << 16
)

// Common execution errors.
var (
	ErrStackUnderflow  = errors.New("forthvm: data stack underflow")
	ErrStackOverflow   = errors.New("forthvm: data stack overflow")
	ErrRStackUnderflow = errors.New("forthvm: return stack underflow")
	ErrRStackOverflow  = errors.New("forthvm: return stack overflow")
	ErrBadAddress      = errors.New("forthvm: memory address out of range")
	ErrBadPC           = errors.New("forthvm: instruction pointer out of range")
	ErrDivByZero       = errors.New("forthvm: division by zero")
	ErrHalted          = errors.New("forthvm: stepping a halted VM")
)

// VM is a running Forth VM process. It implements core.Process.
type VM struct {
	code   []core.Inst
	mem    []int64
	stack  []int64
	rstack []int64
	pc     int
	halted bool

	// Out receives bytes produced by emit and "." .
	Out []byte
	// Steps counts executed VM instructions.
	Steps uint64
}

// New creates a VM over the given code with memCells cells of zeroed
// data memory. Execution starts at position 0.
func New(code []core.Inst, memCells int) *VM {
	return &VM{
		code:   code,
		mem:    make([]int64, memCells),
		stack:  make([]int64, 0, 256),
		rstack: make([]int64, 0, 256),
	}
}

// NewWithMem creates a VM whose data memory is initialized to mem
// (the slice is used directly, not copied).
func NewWithMem(code []core.Inst, mem []int64) *VM {
	return &VM{code: code, mem: mem,
		stack:  make([]int64, 0, 256),
		rstack: make([]int64, 0, 256),
	}
}

// ISA implements core.Process.
func (v *VM) ISA() core.ISA { return ISA() }

// Code implements core.Process.
func (v *VM) Code() []core.Inst { return v.code }

// PC implements core.Process.
func (v *VM) PC() int { return v.pc }

// Done implements core.Process.
func (v *VM) Done() bool { return v.halted }

// Stack returns a copy of the data stack, bottom first.
func (v *VM) Stack() []int64 {
	out := make([]int64, len(v.stack))
	copy(out, v.stack)
	return out
}

// Mem returns the data memory (live, not a copy).
func (v *VM) Mem() []int64 { return v.mem }

func (v *VM) push(x int64) error {
	if len(v.stack) >= stackLimit {
		return ErrStackOverflow
	}
	v.stack = append(v.stack, x)
	return nil
}

func (v *VM) pop() (int64, error) {
	if len(v.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	x := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return x, nil
}

func (v *VM) pop2() (a, b int64, err error) {
	// Returns next-on-stack a and top b for "a op b".
	if len(v.stack) < 2 {
		return 0, 0, ErrStackUnderflow
	}
	b = v.stack[len(v.stack)-1]
	a = v.stack[len(v.stack)-2]
	v.stack = v.stack[:len(v.stack)-2]
	return a, b, nil
}

func (v *VM) rpush(x int64) error {
	if len(v.rstack) >= rstackLimit {
		return ErrRStackOverflow
	}
	v.rstack = append(v.rstack, x)
	return nil
}

func (v *VM) rpop() (int64, error) {
	if len(v.rstack) == 0 {
		return 0, ErrRStackUnderflow
	}
	x := v.rstack[len(v.rstack)-1]
	v.rstack = v.rstack[:len(v.rstack)-1]
	return x, nil
}

func flag(b bool) int64 {
	if b {
		return -1
	}
	return 0
}

func (v *VM) checkAddr(a int64) error {
	if a < 0 || a >= int64(len(v.mem)) {
		return fmt.Errorf("%w: %d (mem size %d)", ErrBadAddress, a, len(v.mem))
	}
	return nil
}

// Step implements core.Process: it executes the instruction at PC and
// reports the resulting control transfer.
func (v *VM) Step() (core.Event, error) {
	if v.halted {
		return core.Event{}, ErrHalted
	}
	if v.pc < 0 || v.pc >= len(v.code) {
		return core.Event{}, fmt.Errorf("%w: %d", ErrBadPC, v.pc)
	}
	from := v.pc
	in := v.code[from]
	v.Steps++
	ev := core.Event{From: from, To: from + 1, Kind: core.EvFall}
	err := v.exec(in, &ev)
	if err != nil {
		return core.Event{}, fmt.Errorf("at %d (%s): %w", from, OpName(in.Op), err)
	}
	v.pc = ev.To
	return ev, nil
}

// Run steps until the VM halts or maxSteps is exceeded.
func (v *VM) Run(maxSteps uint64) error {
	for !v.halted {
		if v.Steps >= maxSteps {
			return fmt.Errorf("forthvm: exceeded %d steps", maxSteps)
		}
		if _, err := v.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (v *VM) exec(in core.Inst, ev *core.Event) error {
	switch in.Op {
	case OpNop:
	case OpHalt:
		v.halted = true
		ev.Kind = core.EvHalt
		ev.To = ev.From

	case OpLit:
		return v.push(in.Arg)

	case OpDup:
		if len(v.stack) == 0 {
			return ErrStackUnderflow
		}
		return v.push(v.stack[len(v.stack)-1])
	case OpDrop:
		_, err := v.pop()
		return err
	case OpSwap:
		if len(v.stack) < 2 {
			return ErrStackUnderflow
		}
		n := len(v.stack)
		v.stack[n-1], v.stack[n-2] = v.stack[n-2], v.stack[n-1]
	case OpOver:
		if len(v.stack) < 2 {
			return ErrStackUnderflow
		}
		return v.push(v.stack[len(v.stack)-2])
	case OpRot:
		if len(v.stack) < 3 {
			return ErrStackUnderflow
		}
		n := len(v.stack)
		v.stack[n-3], v.stack[n-2], v.stack[n-1] = v.stack[n-2], v.stack[n-1], v.stack[n-3]
	case OpNip:
		a, b, err := v.pop2()
		_ = a
		if err != nil {
			return err
		}
		return v.push(b)
	case OpTuck:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		if err := v.push(b); err != nil {
			return err
		}
		if err := v.push(a); err != nil {
			return err
		}
		return v.push(b)
	case OpTwoDup:
		if len(v.stack) < 2 {
			return ErrStackUnderflow
		}
		n := len(v.stack)
		if err := v.push(v.stack[n-2]); err != nil {
			return err
		}
		return v.push(v.stack[n-1])
	case OpTwoDrop:
		if len(v.stack) < 2 {
			return ErrStackUnderflow
		}
		v.stack = v.stack[:len(v.stack)-2]
	case OpPick:
		n, err := v.pop()
		if err != nil {
			return err
		}
		if n < 0 || int(n) >= len(v.stack) {
			return ErrStackUnderflow
		}
		return v.push(v.stack[len(v.stack)-1-int(n)])
	case OpQDup:
		if len(v.stack) == 0 {
			return ErrStackUnderflow
		}
		if top := v.stack[len(v.stack)-1]; top != 0 {
			return v.push(top)
		}
	case OpDepth:
		return v.push(int64(len(v.stack)))

	case OpToR:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.rpush(x)
	case OpRFrom:
		x, err := v.rpop()
		if err != nil {
			return err
		}
		return v.push(x)
	case OpRFetch:
		if len(v.rstack) == 0 {
			return ErrRStackUnderflow
		}
		return v.push(v.rstack[len(v.rstack)-1])

	case OpAdd:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a + b)
	case OpSub:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a - b)
	case OpMul:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a * b)
	case OpDiv:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		if b == 0 {
			return ErrDivByZero
		}
		return v.push(a / b)
	case OpMod:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		if b == 0 {
			return ErrDivByZero
		}
		return v.push(a % b)
	case OpNegate:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(-x)
	case OpAbs:
		x, err := v.pop()
		if err != nil {
			return err
		}
		if x < 0 {
			x = -x
		}
		return v.push(x)
	case OpMin:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		if b < a {
			a = b
		}
		return v.push(a)
	case OpMax:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		if b > a {
			a = b
		}
		return v.push(a)
	case OpOnePlus:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(x + 1)
	case OpOneMinus:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(x - 1)
	case OpTwoStar:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(x << 1)
	case OpTwoSlash:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(x >> 1)
	case OpLshift:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a << uint64(b&63))
	case OpRshift:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(int64(uint64(a) >> uint64(b&63)))

	case OpAnd:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a & b)
	case OpOr:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a | b)
	case OpXor:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(a ^ b)
	case OpInvert:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(^x)

	case OpEq:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(a == b))
	case OpNe:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(a != b))
	case OpLt:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(a < b))
	case OpGt:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(a > b))
	case OpLe:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(a <= b))
	case OpGe:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(a >= b))
	case OpZeroEq:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(flag(x == 0))
	case OpZeroNe:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(flag(x != 0))
	case OpZeroLt:
		x, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(flag(x < 0))
	case OpULt:
		a, b, err := v.pop2()
		if err != nil {
			return err
		}
		return v.push(flag(uint64(a) < uint64(b)))

	case OpFetch:
		a, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.checkAddr(a); err != nil {
			return err
		}
		return v.push(v.mem[a])
	case OpStore:
		a, err := v.pop()
		if err != nil {
			return err
		}
		x, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.checkAddr(a); err != nil {
			return err
		}
		v.mem[a] = x
	case OpCFetch:
		a, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.checkAddr(a); err != nil {
			return err
		}
		return v.push(v.mem[a] & 0xff)
	case OpCStore:
		a, err := v.pop()
		if err != nil {
			return err
		}
		x, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.checkAddr(a); err != nil {
			return err
		}
		v.mem[a] = x & 0xff
	case OpPlusStore:
		a, err := v.pop()
		if err != nil {
			return err
		}
		x, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.checkAddr(a); err != nil {
			return err
		}
		v.mem[a] += x

	case OpBranch:
		ev.Kind = core.EvTaken
		ev.To = int(in.Arg)
	case OpZBranch:
		x, err := v.pop()
		if err != nil {
			return err
		}
		if x == 0 {
			ev.Kind = core.EvTaken
			ev.To = int(in.Arg)
		}
	case OpCall:
		if err := v.rpush(int64(ev.From + 1)); err != nil {
			return err
		}
		ev.Kind = core.EvCall
		ev.To = int(in.Arg)
	case OpRet:
		r, err := v.rpop()
		if err != nil {
			return err
		}
		ev.Kind = core.EvReturn
		ev.To = int(r)
	case OpExecute:
		xt, err := v.pop()
		if err != nil {
			return err
		}
		if err := v.rpush(int64(ev.From + 1)); err != nil {
			return err
		}
		if xt < 0 || xt >= int64(len(v.code)) {
			return fmt.Errorf("%w: execute to %d", ErrBadPC, xt)
		}
		ev.Kind = core.EvIndirect
		ev.To = int(xt)

	case OpDo:
		start, limitV, err := func() (int64, int64, error) {
			l, s, err := v.pop2() // ( limit start -- ), start on top
			return s, l, err
		}()
		if err != nil {
			return err
		}
		if err := v.rpush(limitV); err != nil {
			return err
		}
		return v.rpush(start)
	case OpLoop:
		if len(v.rstack) < 2 {
			return ErrRStackUnderflow
		}
		idx := v.rstack[len(v.rstack)-1] + 1
		limit := v.rstack[len(v.rstack)-2]
		if idx < limit {
			v.rstack[len(v.rstack)-1] = idx
			ev.Kind = core.EvTaken
			ev.To = int(in.Arg)
		} else {
			v.rstack = v.rstack[:len(v.rstack)-2]
		}
	case OpPlusLoop:
		n, err := v.pop()
		if err != nil {
			return err
		}
		if len(v.rstack) < 2 {
			return ErrRStackUnderflow
		}
		idx := v.rstack[len(v.rstack)-1] + n
		limit := v.rstack[len(v.rstack)-2]
		cont := (n >= 0 && idx < limit) || (n < 0 && idx > limit)
		if cont {
			v.rstack[len(v.rstack)-1] = idx
			ev.Kind = core.EvTaken
			ev.To = int(in.Arg)
		} else {
			v.rstack = v.rstack[:len(v.rstack)-2]
		}
	case OpI:
		if len(v.rstack) < 1 {
			return ErrRStackUnderflow
		}
		return v.push(v.rstack[len(v.rstack)-1])
	case OpJ:
		if len(v.rstack) < 3 {
			return ErrRStackUnderflow
		}
		return v.push(v.rstack[len(v.rstack)-3])
	case OpUnloop:
		if len(v.rstack) < 2 {
			return ErrRStackUnderflow
		}
		v.rstack = v.rstack[:len(v.rstack)-2]

	case OpEmit:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.Out = append(v.Out, byte(x))
	case OpDot:
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.Out = append(v.Out, strconv.FormatInt(x, 10)...)
		v.Out = append(v.Out, ' ')

	default:
		return fmt.Errorf("forthvm: unknown opcode %d", in.Op)
	}
	return nil
}
