package forthvm

import (
	"strings"
	"testing"

	"vmopt/internal/core"
)

func TestDisassemble(t *testing.T) {
	code := []core.Inst{
		{Op: OpLit, Arg: 42},
		{Op: OpZBranch, Arg: 3},
		{Op: OpDup},
		{Op: OpHalt},
	}
	out := Disassemble(code)
	for _, want := range []string{"lit", "42", "0branch", "dup", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Branch target position 3 must be marked as a label.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[3], "L:") {
		t.Errorf("branch target not marked: %q", lines[3])
	}
	if strings.HasPrefix(lines[2], "L:") {
		t.Errorf("non-target marked as label: %q", lines[2])
	}
}

func TestDisassembleEmpty(t *testing.T) {
	if out := Disassemble(nil); out != "" {
		t.Errorf("empty code disassembly = %q", out)
	}
}
