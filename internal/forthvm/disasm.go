package forthvm

import (
	"fmt"
	"strings"

	"vmopt/internal/core"
)

// Disassemble renders Forth VM code as one instruction per line, with
// position numbers and symbolic branch targets.
func Disassemble(code []core.Inst) string {
	var b strings.Builder
	targets := make(map[int]bool)
	for _, in := range code {
		m := meta[in.Op]
		if (m.Branch || m.Call) && m.HasArg {
			targets[int(in.Arg)] = true
		}
	}
	for pos, in := range code {
		mark := "  "
		if targets[pos] {
			mark = "L:"
		}
		m := meta[in.Op]
		if m.HasArg {
			fmt.Fprintf(&b, "%s%5d  %-8s %d\n", mark, pos, m.Name, in.Arg)
		} else {
			fmt.Fprintf(&b, "%s%5d  %s\n", mark, pos, m.Name)
		}
	}
	return b.String()
}
