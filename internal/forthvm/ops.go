// Package forthvm implements a Forth-style stack virtual machine in
// the mold of Gforth: a flat VM code array, data and return stacks,
// cell-addressed memory, and an instruction set whose simple
// operations cost only a few native instructions each — the regime in
// which dispatch dominates and the paper's techniques matter most.
package forthvm

import (
	"fmt"

	"vmopt/internal/core"
)

// Opcodes of the Forth VM.
const (
	OpNop uint32 = iota
	OpHalt

	// Literals.
	OpLit // arg: value to push

	// Data stack manipulation.
	OpDup
	OpDrop
	OpSwap
	OpOver
	OpRot
	OpNip
	OpTuck
	OpTwoDup
	OpTwoDrop
	OpPick
	OpQDup
	OpDepth

	// Return stack.
	OpToR
	OpRFrom
	OpRFetch

	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNegate
	OpAbs
	OpMin
	OpMax
	OpOnePlus
	OpOneMinus
	OpTwoStar
	OpTwoSlash
	OpLshift
	OpRshift

	// Bitwise logic.
	OpAnd
	OpOr
	OpXor
	OpInvert

	// Comparisons (Forth flags: -1 true, 0 false).
	OpEq
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpZeroEq
	OpZeroNe
	OpZeroLt
	OpULt

	// Memory (cell addressed).
	OpFetch
	OpStore
	OpCFetch
	OpCStore
	OpPlusStore

	// Control flow.
	OpBranch  // arg: target position; unconditional
	OpZBranch // arg: target position; branch if top == 0
	OpCall    // arg: callee position
	OpRet
	OpExecute // pops execution token (code position), calls it

	// Counted loops (compiled from DO ... LOOP).
	OpDo       // pops start, limit; pushes limit, index on rstack
	OpLoop     // arg: loop body position; index++ and branch back while index < limit
	OpPlusLoop // arg: loop body position; pops increment
	OpI        // push innermost loop index
	OpJ        // push next-outer loop index
	OpUnloop   // drop one loop frame from rstack

	// Output.
	OpEmit // pop, append byte to output
	OpDot  // pop, append decimal and a space to output

	// NumOps is the opcode-space size.
	NumOps
)

// meta is the per-opcode cost and classification table. Work counts
// approximate x86 native instructions for the work part of each VM
// instruction (paper Section 2.1: simple VM instructions take as few
// as 3 native instructions including the 3-instruction dispatch);
// Bytes approximates x86 encoding size.
var meta = [NumOps]core.OpMeta{
	OpNop:     {Name: "nop", Work: 1, Bytes: 1, Relocatable: true},
	OpHalt:    {Name: "halt", Work: 2, Bytes: 6, Relocatable: true, Stop: true},
	OpLit:     {Name: "lit", HasArg: true, Work: 2, Bytes: 7, Relocatable: true},
	OpDup:     {Name: "dup", Work: 2, Bytes: 6, Relocatable: true},
	OpDrop:    {Name: "drop", Work: 1, Bytes: 3, Relocatable: true},
	OpSwap:    {Name: "swap", Work: 3, Bytes: 8, Relocatable: true},
	OpOver:    {Name: "over", Work: 2, Bytes: 7, Relocatable: true},
	OpRot:     {Name: "rot", Work: 4, Bytes: 11, Relocatable: true},
	OpNip:     {Name: "nip", Work: 2, Bytes: 6, Relocatable: true},
	OpTuck:    {Name: "tuck", Work: 3, Bytes: 9, Relocatable: true},
	OpTwoDup:  {Name: "2dup", Work: 3, Bytes: 9, Relocatable: true},
	OpTwoDrop: {Name: "2drop", Work: 1, Bytes: 4, Relocatable: true},
	OpPick:    {Name: "pick", Work: 3, Bytes: 9, Relocatable: true},
	OpQDup:    {Name: "?dup", Work: 3, Bytes: 9, Relocatable: true},
	OpDepth:   {Name: "depth", Work: 2, Bytes: 7, Relocatable: true},

	OpToR:    {Name: ">r", Work: 2, Bytes: 6, Relocatable: true},
	OpRFrom:  {Name: "r>", Work: 2, Bytes: 6, Relocatable: true},
	OpRFetch: {Name: "r@", Work: 2, Bytes: 6, Relocatable: true},

	OpAdd:      {Name: "+", Work: 2, Bytes: 5, Relocatable: true},
	OpSub:      {Name: "-", Work: 2, Bytes: 5, Relocatable: true},
	OpMul:      {Name: "*", Work: 3, Bytes: 7, Relocatable: true},
	OpDiv:      {Name: "/", Work: 6, Bytes: 16, Relocatable: true},
	OpMod:      {Name: "mod", Work: 6, Bytes: 16, Relocatable: true},
	OpNegate:   {Name: "negate", Work: 1, Bytes: 3, Relocatable: true},
	OpAbs:      {Name: "abs", Work: 3, Bytes: 8, Relocatable: true},
	OpMin:      {Name: "min", Work: 4, Bytes: 10, Relocatable: true},
	OpMax:      {Name: "max", Work: 4, Bytes: 10, Relocatable: true},
	OpOnePlus:  {Name: "1+", Work: 1, Bytes: 3, Relocatable: true},
	OpOneMinus: {Name: "1-", Work: 1, Bytes: 3, Relocatable: true},
	OpTwoStar:  {Name: "2*", Work: 1, Bytes: 3, Relocatable: true},
	OpTwoSlash: {Name: "2/", Work: 1, Bytes: 3, Relocatable: true},
	OpLshift:   {Name: "lshift", Work: 3, Bytes: 8, Relocatable: true},
	OpRshift:   {Name: "rshift", Work: 3, Bytes: 8, Relocatable: true},

	OpAnd:    {Name: "and", Work: 2, Bytes: 5, Relocatable: true},
	OpOr:     {Name: "or", Work: 2, Bytes: 5, Relocatable: true},
	OpXor:    {Name: "xor", Work: 2, Bytes: 5, Relocatable: true},
	OpInvert: {Name: "invert", Work: 1, Bytes: 3, Relocatable: true},

	OpEq:     {Name: "=", Work: 4, Bytes: 10, Relocatable: true},
	OpNe:     {Name: "<>", Work: 4, Bytes: 10, Relocatable: true},
	OpLt:     {Name: "<", Work: 4, Bytes: 10, Relocatable: true},
	OpGt:     {Name: ">", Work: 4, Bytes: 10, Relocatable: true},
	OpLe:     {Name: "<=", Work: 4, Bytes: 10, Relocatable: true},
	OpGe:     {Name: ">=", Work: 4, Bytes: 10, Relocatable: true},
	OpZeroEq: {Name: "0=", Work: 3, Bytes: 8, Relocatable: true},
	OpZeroNe: {Name: "0<>", Work: 3, Bytes: 8, Relocatable: true},
	OpZeroLt: {Name: "0<", Work: 3, Bytes: 8, Relocatable: true},
	OpULt:    {Name: "u<", Work: 4, Bytes: 10, Relocatable: true},

	OpFetch:     {Name: "@", Work: 2, Bytes: 6, Relocatable: true},
	OpStore:     {Name: "!", Work: 3, Bytes: 8, Relocatable: true},
	OpCFetch:    {Name: "c@", Work: 3, Bytes: 8, Relocatable: true},
	OpCStore:    {Name: "c!", Work: 4, Bytes: 10, Relocatable: true},
	OpPlusStore: {Name: "+!", Work: 4, Bytes: 10, Relocatable: true},

	OpBranch:  {Name: "branch", HasArg: true, Work: 2, Bytes: 7, Relocatable: true, Branch: true},
	OpZBranch: {Name: "0branch", HasArg: true, Work: 4, Bytes: 12, Relocatable: true, Branch: true},
	OpCall:    {Name: "call", HasArg: true, Work: 4, Bytes: 12, Relocatable: true, Call: true},
	OpRet:     {Name: "ret", Work: 3, Bytes: 8, Relocatable: true, Return: true},
	OpExecute: {Name: "execute", Work: 4, Bytes: 10, Relocatable: true, Call: true, Indirect: true},

	OpDo:       {Name: "(do)", Work: 4, Bytes: 11, Relocatable: true},
	OpLoop:     {Name: "(loop)", HasArg: true, Work: 4, Bytes: 12, Relocatable: true, Branch: true},
	OpPlusLoop: {Name: "(+loop)", HasArg: true, Work: 6, Bytes: 16, Relocatable: true, Branch: true},
	OpI:        {Name: "i", Work: 2, Bytes: 6, Relocatable: true},
	OpJ:        {Name: "j", Work: 2, Bytes: 7, Relocatable: true},
	OpUnloop:   {Name: "unloop", Work: 1, Bytes: 4, Relocatable: true},

	// Output words call into the runtime; the call makes the code
	// non-relocatable (paper Section 5.2: PC-relative call out of
	// the fragment).
	OpEmit: {Name: "emit", Work: 8, Bytes: 20},
	OpDot:  {Name: ".", Work: 20, Bytes: 30},
}

// isa implements core.ISA for the Forth VM.
type isa struct{}

// ISA returns the Forth VM instruction set description.
func ISA() core.ISA { return isa{} }

func (isa) Name() string { return "forth" }

func (isa) NumOps() int { return int(NumOps) }

func (isa) Meta(op uint32) core.OpMeta {
	if op >= NumOps {
		panic(fmt.Sprintf("forthvm: bad opcode %d", op))
	}
	return meta[op]
}

// OpName returns the mnemonic for an opcode.
func OpName(op uint32) string { return meta[op].Name }
