package forthvm

import (
	"errors"
	"testing"
	"testing/quick"

	"vmopt/internal/core"
)

// run executes code until halt and returns the final VM.
func run(t *testing.T, code []core.Inst) *VM {
	t.Helper()
	v := New(code, 1024)
	if err := v.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

// prog is a shorthand constructor.
func prog(insts ...core.Inst) []core.Inst { return insts }

func i(op uint32) core.Inst             { return core.Inst{Op: op} }
func ia(op uint32, arg int64) core.Inst { return core.Inst{Op: op, Arg: arg} }

func wantStack(t *testing.T, v *VM, want ...int64) {
	t.Helper()
	got := v.Stack()
	if len(got) != len(want) {
		t.Fatalf("stack = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("stack = %v, want %v", got, want)
		}
	}
}

func TestStackOps(t *testing.T) {
	tests := []struct {
		name string
		code []core.Inst
		want []int64
	}{
		{"lit", prog(ia(OpLit, 42), i(OpHalt)), []int64{42}},
		{"dup", prog(ia(OpLit, 7), i(OpDup), i(OpHalt)), []int64{7, 7}},
		{"drop", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpDrop), i(OpHalt)), []int64{1}},
		{"swap", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpSwap), i(OpHalt)), []int64{2, 1}},
		{"over", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpOver), i(OpHalt)), []int64{1, 2, 1}},
		{"rot", prog(ia(OpLit, 1), ia(OpLit, 2), ia(OpLit, 3), i(OpRot), i(OpHalt)), []int64{2, 3, 1}},
		{"nip", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpNip), i(OpHalt)), []int64{2}},
		{"tuck", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpTuck), i(OpHalt)), []int64{2, 1, 2}},
		{"2dup", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpTwoDup), i(OpHalt)), []int64{1, 2, 1, 2}},
		{"2drop", prog(ia(OpLit, 1), ia(OpLit, 2), i(OpTwoDrop), i(OpHalt)), nil},
		{"pick0", prog(ia(OpLit, 5), ia(OpLit, 6), ia(OpLit, 0), i(OpPick), i(OpHalt)), []int64{5, 6, 6}},
		{"pick1", prog(ia(OpLit, 5), ia(OpLit, 6), ia(OpLit, 1), i(OpPick), i(OpHalt)), []int64{5, 6, 5}},
		{"?dup nonzero", prog(ia(OpLit, 3), i(OpQDup), i(OpHalt)), []int64{3, 3}},
		{"?dup zero", prog(ia(OpLit, 0), i(OpQDup), i(OpHalt)), []int64{0}},
		{"depth", prog(ia(OpLit, 9), ia(OpLit, 9), i(OpDepth), i(OpHalt)), []int64{9, 9, 2}},
		{"rstack", prog(ia(OpLit, 4), i(OpToR), i(OpRFetch), i(OpRFrom), i(OpHalt)), []int64{4, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			wantStack(t, run(t, tt.code), tt.want...)
		})
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		a, b int64
		op   uint32
		want int64
	}{
		{"add", 3, 4, OpAdd, 7},
		{"sub", 10, 4, OpSub, 6},
		{"mul", 6, 7, OpMul, 42},
		{"div", 42, 5, OpDiv, 8},
		{"div negative", -7, 2, OpDiv, -3},
		{"mod", 42, 5, OpMod, 2},
		{"min", 3, -4, OpMin, -4},
		{"max", 3, -4, OpMax, 3},
		{"lshift", 3, 4, OpLshift, 48},
		{"rshift", 48, 4, OpRshift, 3},
		{"and", 0b1100, 0b1010, OpAnd, 0b1000},
		{"or", 0b1100, 0b1010, OpOr, 0b1110},
		{"xor", 0b1100, 0b1010, OpXor, 0b0110},
		{"eq true", 5, 5, OpEq, -1},
		{"eq false", 5, 6, OpEq, 0},
		{"ne", 5, 6, OpNe, -1},
		{"lt", 5, 6, OpLt, -1},
		{"gt", 5, 6, OpGt, 0},
		{"le", 6, 6, OpLe, -1},
		{"ge", 5, 6, OpGe, 0},
		{"ult wraps", -1, 1, OpULt, 0}, // unsigned -1 is huge
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := run(t, prog(ia(OpLit, tt.a), ia(OpLit, tt.b), i(tt.op), i(OpHalt)))
			wantStack(t, v, tt.want)
		})
	}
}

func TestUnaryOps(t *testing.T) {
	tests := []struct {
		name string
		x    int64
		op   uint32
		want int64
	}{
		{"negate", 5, OpNegate, -5},
		{"abs neg", -5, OpAbs, 5},
		{"abs pos", 5, OpAbs, 5},
		{"1+", 5, OpOnePlus, 6},
		{"1-", 5, OpOneMinus, 4},
		{"2*", 5, OpTwoStar, 10},
		{"2/", 10, OpTwoSlash, 5},
		{"2/ negative floors", -3, OpTwoSlash, -2},
		{"invert", 0, OpInvert, -1},
		{"0= true", 0, OpZeroEq, -1},
		{"0= false", 2, OpZeroEq, 0},
		{"0<> true", 2, OpZeroNe, -1},
		{"0< true", -2, OpZeroLt, -1},
		{"0< false", 2, OpZeroLt, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := run(t, prog(ia(OpLit, tt.x), i(tt.op), i(OpHalt)))
			wantStack(t, v, tt.want)
		})
	}
}

func TestMemory(t *testing.T) {
	// 99 10 !  10 @
	v := run(t, prog(
		ia(OpLit, 99), ia(OpLit, 10), i(OpStore),
		ia(OpLit, 10), i(OpFetch),
		ia(OpLit, 5), ia(OpLit, 10), i(OpPlusStore),
		ia(OpLit, 10), i(OpFetch),
		i(OpHalt)))
	wantStack(t, v, 99, 104)
	if v.Mem()[10] != 104 {
		t.Errorf("mem[10] = %d, want 104", v.Mem()[10])
	}
}

func TestCharMemory(t *testing.T) {
	v := run(t, prog(
		ia(OpLit, 0x1ff), ia(OpLit, 3), i(OpCStore), // stores 0xff
		ia(OpLit, 3), i(OpCFetch),
		i(OpHalt)))
	wantStack(t, v, 0xff)
}

func TestBranching(t *testing.T) {
	// if top==0 jump over the lit 111
	v := run(t, prog(
		ia(OpLit, 0),
		ia(OpZBranch, 4),
		ia(OpLit, 111),
		i(OpNop),
		ia(OpLit, 222),
		i(OpHalt)))
	wantStack(t, v, 222)

	// not taken
	v = run(t, prog(
		ia(OpLit, 1),
		ia(OpZBranch, 4),
		ia(OpLit, 111),
		i(OpHalt),
		ia(OpLit, 222),
		i(OpHalt)))
	wantStack(t, v, 111)
}

func TestCallReturn(t *testing.T) {
	// 0: call 3; 1: lit 9; 2: halt; 3: lit 5; 4: ret
	v := run(t, prog(
		ia(OpCall, 3),
		ia(OpLit, 9),
		i(OpHalt),
		ia(OpLit, 5),
		i(OpRet)))
	wantStack(t, v, 5, 9)
}

func TestExecute(t *testing.T) {
	// push xt of the word at 4, execute it
	v := run(t, prog(
		ia(OpLit, 4),
		i(OpExecute),
		ia(OpLit, 1),
		i(OpHalt),
		ia(OpLit, 7),
		i(OpRet)))
	wantStack(t, v, 7, 1)
}

func TestDoLoop(t *testing.T) {
	// 5 0 DO i sum +! LOOP  -> mem[0] = 0+1+2+3+4 = 10
	v := run(t, prog(
		ia(OpLit, 5), ia(OpLit, 0), i(OpDo),
		i(OpI), ia(OpLit, 0), i(OpPlusStore),
		ia(OpLoop, 3),
		i(OpHalt)))
	if got := v.Mem()[0]; got != 10 {
		t.Errorf("sum = %d, want 10", got)
	}
}

func TestNestedDoLoopJ(t *testing.T) {
	// 3 0 DO 2 0 DO j mem0 +! LOOP LOOP -> j summed twice each: 0+0+1+1+2+2=6
	v := run(t, prog(
		ia(OpLit, 3), ia(OpLit, 0), i(OpDo),
		ia(OpLit, 2), ia(OpLit, 0), i(OpDo),
		i(OpJ), ia(OpLit, 0), i(OpPlusStore),
		ia(OpLoop, 6),
		ia(OpLoop, 3),
		i(OpHalt)))
	if got := v.Mem()[0]; got != 6 {
		t.Errorf("sum = %d, want 6", got)
	}
}

func TestPlusLoop(t *testing.T) {
	// 10 0 DO i mem0 +! 3 +LOOP -> 0+3+6+9 = 18
	v := run(t, prog(
		ia(OpLit, 10), ia(OpLit, 0), i(OpDo),
		i(OpI), ia(OpLit, 0), i(OpPlusStore),
		ia(OpLit, 3), ia(OpPlusLoop, 3),
		i(OpHalt)))
	if got := v.Mem()[0]; got != 18 {
		t.Errorf("sum = %d, want 18", got)
	}
}

func TestUnloopAndExitLoop(t *testing.T) {
	// Loop that exits early via unloop + ret.
	// 0: call 2 / 1: halt
	// 2: lit 10, lit 0, do
	// 5: i, lit 5, eq, zbranch 10
	// 9: unloop+ret path: unloop; 10: ... hmm simpler below
	v := run(t, prog(
		ia(OpCall, 2),
		i(OpHalt),
		ia(OpLit, 10), ia(OpLit, 0), i(OpDo),
		i(OpI), ia(OpLit, 5), i(OpEq), ia(OpZBranch, 11),
		i(OpUnloop), i(OpRet),
		ia(OpLoop, 5),
		i(OpRet)))
	if len(v.Stack()) != 0 {
		t.Errorf("stack not empty: %v", v.Stack())
	}
}

func TestEmitAndDot(t *testing.T) {
	v := run(t, prog(
		ia(OpLit, 'h'), i(OpEmit),
		ia(OpLit, 'i'), i(OpEmit),
		ia(OpLit, -42), i(OpDot),
		i(OpHalt)))
	if got := string(v.Out); got != "hi-42 " {
		t.Errorf("out = %q, want %q", got, "hi-42 ")
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		code []core.Inst
		want error
	}{
		{"underflow", prog(i(OpAdd), i(OpHalt)), ErrStackUnderflow},
		{"pop empty", prog(i(OpDrop), i(OpHalt)), ErrStackUnderflow},
		{"rstack underflow", prog(i(OpRFrom), i(OpHalt)), ErrRStackUnderflow},
		{"ret without call", prog(i(OpRet)), ErrRStackUnderflow},
		{"div by zero", prog(ia(OpLit, 1), ia(OpLit, 0), i(OpDiv), i(OpHalt)), ErrDivByZero},
		{"mod by zero", prog(ia(OpLit, 1), ia(OpLit, 0), i(OpMod), i(OpHalt)), ErrDivByZero},
		{"bad address", prog(ia(OpLit, 1), ia(OpLit, -3), i(OpStore), i(OpHalt)), ErrBadAddress},
		{"fetch out of range", prog(ia(OpLit, 1<<40), i(OpFetch), i(OpHalt)), ErrBadAddress},
		{"pc off end", prog(i(OpNop)), ErrBadPC},
		{"execute bad xt", prog(ia(OpLit, -9), i(OpExecute), i(OpHalt)), ErrBadPC},
		{"i without loop", prog(i(OpI), i(OpHalt)), ErrRStackUnderflow},
		{"j shallow", prog(ia(OpLit, 1), i(OpToR), i(OpJ), i(OpHalt)), ErrRStackUnderflow},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := New(tt.code, 64)
			err := v.Run(10_000)
			if err == nil || !errors.Is(err, tt.want) {
				t.Errorf("Run error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestStepAfterHalt(t *testing.T) {
	v := run(t, prog(i(OpHalt)))
	if _, err := v.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestRunStepLimit(t *testing.T) {
	v := New(prog(ia(OpBranch, 0)), 0)
	if err := v.Run(100); err == nil {
		t.Error("infinite loop should exceed step limit")
	}
}

func TestEventKinds(t *testing.T) {
	code := prog(
		ia(OpLit, 1),     // 0: fall
		ia(OpZBranch, 3), // 1: not taken -> fall
		ia(OpCall, 5),    // 2: call
		ia(OpBranch, 6),  // 3 (unused target)
		i(OpNop),
		i(OpRet), // 5: return to 3
		i(OpHalt),
	)
	v := New(code, 0)
	wantKinds := []core.EventKind{core.EvFall, core.EvFall, core.EvCall, core.EvReturn, core.EvTaken, core.EvHalt}
	wantTo := []int{1, 2, 5, 3, 6, 6}
	for k := 0; !v.Done(); k++ {
		ev, err := v.Step()
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if ev.Kind != wantKinds[k] || ev.To != wantTo[k] {
			t.Errorf("step %d: event = %v->%d kind %v, want ->%d kind %v",
				k, ev.From, ev.To, ev.Kind, wantTo[k], wantKinds[k])
		}
	}
}

func TestISAMetaConsistency(t *testing.T) {
	isa := ISA()
	if isa.Name() != "forth" {
		t.Errorf("ISA name = %q", isa.Name())
	}
	for op := uint32(0); op < uint32(isa.NumOps()); op++ {
		m := isa.Meta(op)
		if m.Name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if m.Work <= 0 {
			t.Errorf("opcode %s has non-positive work %d", m.Name, m.Work)
		}
		if m.Bytes <= 0 {
			t.Errorf("opcode %s has non-positive bytes %d", m.Name, m.Bytes)
		}
		if m.Quickable {
			t.Errorf("forth opcode %s must not be quickable", m.Name)
		}
	}
}

func TestISANamesUnique(t *testing.T) {
	isa := ISA()
	seen := map[string]uint32{}
	for op := uint32(0); op < uint32(isa.NumOps()); op++ {
		name := isa.Meta(op).Name
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, name)
		}
		seen[name] = op
	}
}

func TestMetaPanicsOnBadOpcode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Meta on bad opcode should panic")
		}
	}()
	ISA().Meta(NumOps + 17)
}

// Property: arithmetic ops match Go semantics for arbitrary operands.
func TestArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		v := run(t, prog(ia(OpLit, int64(a)), ia(OpLit, int64(b)), i(OpAdd),
			ia(OpLit, int64(a)), ia(OpLit, int64(b)), i(OpSub),
			ia(OpLit, int64(a)), ia(OpLit, int64(b)), i(OpMul),
			i(OpHalt)))
		s := v.Stack()
		return s[0] == int64(a)+int64(b) && s[1] == int64(a)-int64(b) && s[2] == int64(a)*int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: dup/drop round-trips leave the stack unchanged.
func TestDupDropIdentity(t *testing.T) {
	f := func(x int64) bool {
		v := run(t, prog(ia(OpLit, x), i(OpDup), i(OpDrop), i(OpHalt)))
		s := v.Stack()
		return len(s) == 1 && s[0] == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: swap twice is the identity.
func TestSwapInvolution(t *testing.T) {
	f := func(a, b int64) bool {
		v := run(t, prog(ia(OpLit, a), ia(OpLit, b), i(OpSwap), i(OpSwap), i(OpHalt)))
		s := v.Stack()
		return len(s) == 2 && s[0] == a && s[1] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
