// Package obs is the serving tier's zero-dependency observability
// subsystem: context-propagated request tracing with named stage
// spans, a recorder keeping the recent and slowest traces per
// endpoint for GET /debug/requests, and request-ID plumbing.
//
// The design follows x/net/trace more than OpenTelemetry: a Trace is
// a flat bag of (stage, offset, duration) records owned by one
// request, cheap enough to run on every request in a benchmark-gated
// serving path. Stages are attributed wall time measured by the code
// that did the work — obs.Start(ctx, "decode") … span.End() — and the
// same records render as a Server-Timing response header, so clients
// can see where a slow request's time went without server access.
//
// Everything degrades to (near) zero cost when no trace rides the
// context: Start returns a nil-backed span whose End is a no-op, and
// Observe returns before reading the clock.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// outcome ranks how much work a request did. Higher ranks win:
// a request that computed anything is "computed" even if other
// stages hit caches.
const (
	outcomeNone = iota
	outcomeHit
	outcomeCompiled
	outcomeCoalesced
	outcomeComputed
	outcomeError
	outcomeTimeout
)

var outcomeNames = [...]string{"", "hit", "compiled", "coalesced", "computed", "error", "timeout"}

// Outcome labels for Trace.SetOutcome.
const (
	OutcomeHit = "hit"
	// OutcomeCompiled marks a request served from the compiled-replay
	// arena tier: a cache hit that also skipped decode entirely. It
	// outranks a plain hit (it says more about how the request was
	// served) but loses to any outcome that did real work.
	OutcomeCompiled  = "compiled"
	OutcomeCoalesced = "coalesced"
	OutcomeComputed  = "computed"
	OutcomeError     = "error"
	// OutcomeTimeout marks a request that ran out of its server-side
	// deadline budget (504). It outranks error: a timed-out request
	// that also tripped a stage error is reported as the timeout the
	// operator needs to tune for.
	OutcomeTimeout = "timeout"
)

func outcomeRank(name string) int {
	for i, n := range outcomeNames {
		if n == name {
			return i
		}
	}
	return outcomeNone
}

// SpanRec is one finished stage of a trace: what the stage was named,
// when it started relative to the trace start, and how long it ran.
// Concurrent stages (a sweep's parallel groups) overlap; sequential
// request paths tile the request.
type SpanRec struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// Trace accumulates one request's stages. It is safe for concurrent
// use: parallel sweep groups append spans from pool goroutines.
type Trace struct {
	ID       string
	Endpoint string
	Start    time.Time

	mu      sync.Mutex
	spans   []SpanRec
	outcome int
	status  int
	total   time.Duration
}

// maxSpans bounds a single trace's span count so a pathological
// request (a sweep with thousands of groups) cannot grow one trace
// without limit; further spans fold into the aggregate of their name.
const maxSpans = 256

// ctxKey carries a *Trace through a request's context.
type ctxKey struct{}

// NewTrace starts a trace for one request and attaches it to the
// context every downstream stage will see.
func NewTrace(ctx context.Context, endpoint, id string) (context.Context, *Trace) {
	tr := &Trace{ID: id, Endpoint: endpoint, Start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, tr), tr
}

// FromContext returns the request trace riding the context, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// Span is one in-flight stage measurement. The zero/nil span is a
// valid no-op, which is what Start hands back when the context
// carries no trace — untraced paths pay one context lookup and
// nothing else.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
}

// Start begins measuring a named stage of the request trace in ctx.
// It returns a no-op span when the context carries no trace.
func Start(ctx context.Context, name string) *Span {
	tr := FromContext(ctx)
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, start: time.Now()}
}

// End finishes the span, attributing its wall time to its stage.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.add(s.name, s.start, time.Since(s.start))
}

// EndAs finishes the span under a different stage name — for code
// that only learns what a stage was after running it (a cache
// get-or-record call is "trace_load" on a hit and "record" on a
// miss).
func (s *Span) EndAs(name string) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.add(name, s.start, time.Since(s.start))
}

// Observe attributes an already-measured duration to a stage of the
// request trace in ctx. Tight loops use it to time many small steps
// with two clock reads per step and a single span at the end.
func Observe(ctx context.Context, name string, d time.Duration) {
	tr := FromContext(ctx)
	if tr == nil {
		return
	}
	tr.add(name, time.Now().Add(-d), d)
}

func (tr *Trace) add(name string, start time.Time, d time.Duration) {
	off := start.Sub(tr.Start)
	if off < 0 {
		off = 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= maxSpans {
		// Fold into the existing aggregate for the name, or drop.
		for i := range tr.spans {
			if tr.spans[i].Name == name {
				tr.spans[i].Dur += d
				return
			}
		}
		return
	}
	tr.spans = append(tr.spans, SpanRec{Name: name, Offset: off, Dur: d})
}

// SetOutcome records how the request was served: OutcomeHit,
// OutcomeCoalesced, OutcomeComputed or OutcomeError. Outcomes only
// escalate (computed beats coalesced beats hit), so a request that
// computed one group and hit the cache for another reports
// "computed"; error outranks everything.
func (tr *Trace) SetOutcome(name string) {
	if tr == nil {
		return
	}
	r := outcomeRank(name)
	tr.mu.Lock()
	if r > tr.outcome {
		tr.outcome = r
	}
	tr.mu.Unlock()
}

// Outcome reports the recorded cache outcome ("" when none was set).
func (tr *Trace) Outcome() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return outcomeNames[tr.outcome]
}

// StageDur reports the total duration attributed to a named stage so
// far. The serving tier uses it to detect, after a replay, whether the
// compiled fast path ran (the replay attributes a "compiled" stage)
// without threading a flag through the replay API. Nil-safe.
func (tr *Trace) StageDur(name string) time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var d time.Duration
	for _, sp := range tr.spans {
		if sp.Name == name {
			d += sp.Dur
		}
	}
	return d
}

// Finish seals the trace with the response status and total handler
// latency. It is called once, after the handler returns.
func (tr *Trace) Finish(status int, total time.Duration) {
	tr.mu.Lock()
	tr.status = status
	tr.total = total
	tr.mu.Unlock()
}

// Stage is one aggregated stage of a trace: total attributed duration
// across every span of that name, in first-seen order.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Stages aggregates the trace's spans by name in first-seen order.
// When elapsed exceeds the attributed sum, the gap is appended as an
// "other" stage so the stages tile the elapsed window — which is what
// makes the Server-Timing breakdown sum to the handler latency
// instead of silently under-reporting. Overlapping (concurrent) spans
// can push the attributed sum past elapsed; then no "other" is added.
func (tr *Trace) Stages(elapsed time.Duration) []Stage {
	tr.mu.Lock()
	spans := make([]SpanRec, len(tr.spans))
	copy(spans, tr.spans)
	tr.mu.Unlock()
	return aggregate(spans, elapsed)
}

// ServerTiming renders the trace's aggregated stages as a
// Server-Timing header value (RFC draft syntax: name;dur=millis,
// comma-separated). Durations are milliseconds with microsecond
// precision. An empty trace renders "other" alone.
func (tr *Trace) ServerTiming(elapsed time.Duration) string {
	stages := tr.Stages(elapsed)
	if len(stages) == 0 {
		return ""
	}
	var b strings.Builder
	for i, st := range stages {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", st.Name, float64(st.Dur)/float64(time.Millisecond))
	}
	return b.String()
}

// TraceSnapshot is the JSON form of a finished trace, served by
// GET /debug/requests.
type TraceSnapshot struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	Start    time.Time `json:"start"`
	// DurMS is the total handler latency.
	DurMS float64 `json:"dur_ms"`
	// Status is the HTTP status the handler answered with.
	Status int `json:"status"`
	// Outcome is the cache outcome: hit, coalesced, computed, error
	// or timeout.
	Outcome string `json:"outcome,omitempty"`
	// Stages aggregates the stage spans by name in first-seen order,
	// including the unattributed "other" remainder.
	Stages []StageSnapshot `json:"stages"`
	// Spans is the raw span list (offset-ordered as recorded); stages
	// that ran concurrently overlap.
	Spans []SpanSnapshot `json:"spans,omitempty"`
}

// StageSnapshot is one aggregated stage in a TraceSnapshot.
type StageSnapshot struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"dur_ms"`
}

// SpanSnapshot is one raw span in a TraceSnapshot.
type SpanSnapshot struct {
	Name     string  `json:"name"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"dur_ms"`
}

// snapshot freezes a finished trace for the debug surface.
func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	total, status, outcome := tr.total, tr.status, outcomeNames[tr.outcome]
	spans := make([]SpanRec, len(tr.spans))
	copy(spans, tr.spans)
	tr.mu.Unlock()

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	snap := TraceSnapshot{
		ID:       tr.ID,
		Endpoint: tr.Endpoint,
		Start:    tr.Start,
		DurMS:    ms(total),
		Status:   status,
		Outcome:  outcome,
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Offset < spans[j].Offset })
	for _, sp := range spans {
		snap.Spans = append(snap.Spans, SpanSnapshot{Name: sp.Name, OffsetMS: ms(sp.Offset), DurMS: ms(sp.Dur)})
	}
	for _, st := range aggregate(spans, total) {
		snap.Stages = append(snap.Stages, StageSnapshot{Name: st.Name, DurMS: ms(st.Dur)})
	}
	return snap
}

// aggregate is Stages over an already-copied span list.
func aggregate(spans []SpanRec, elapsed time.Duration) []Stage {
	var stages []Stage
	idx := make(map[string]int, 8)
	var sum time.Duration
	for _, sp := range spans {
		if i, ok := idx[sp.Name]; ok {
			stages[i].Dur += sp.Dur
		} else {
			idx[sp.Name] = len(stages)
			stages = append(stages, Stage{Name: sp.Name, Dur: sp.Dur})
		}
		sum += sp.Dur
	}
	if elapsed > sum {
		stages = append(stages, Stage{Name: "other", Dur: elapsed - sum})
	}
	return stages
}
