package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutTraceIsNoop(t *testing.T) {
	sp := Start(context.Background(), "decode")
	sp.End() // must not panic
	var nilSpan *Span
	nilSpan.End()
	nilSpan.EndAs("x")
	Observe(context.Background(), "decode", time.Millisecond)
	if tr := FromContext(context.Background()); tr != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", tr)
	}
}

func TestTraceStagesAggregateAndOther(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "run", "req-1")
	Observe(ctx, "decode", 10*time.Millisecond)
	Observe(ctx, "apply", 5*time.Millisecond)
	Observe(ctx, "decode", 10*time.Millisecond)

	stages := tr.Stages(30 * time.Millisecond)
	if len(stages) != 3 {
		t.Fatalf("stages = %v, want decode, apply, other", stages)
	}
	if stages[0].Name != "decode" || stages[0].Dur != 20*time.Millisecond {
		t.Errorf("stage 0 = %+v, want decode 20ms (same-name spans aggregate)", stages[0])
	}
	if stages[1].Name != "apply" || stages[1].Dur != 5*time.Millisecond {
		t.Errorf("stage 1 = %+v, want apply 5ms", stages[1])
	}
	if stages[2].Name != "other" || stages[2].Dur != 5*time.Millisecond {
		t.Errorf("stage 2 = %+v, want other 5ms (elapsed - attributed)", stages[2])
	}

	// Stage sum equals elapsed exactly once "other" tiles the gap.
	var sum time.Duration
	for _, st := range stages {
		sum += st.Dur
	}
	if sum != 30*time.Millisecond {
		t.Errorf("stage sum = %v, want the full elapsed 30ms", sum)
	}

	// When attributed time exceeds elapsed (overlapping spans), no
	// "other" appears.
	over := tr.Stages(time.Millisecond)
	for _, st := range over {
		if st.Name == "other" {
			t.Errorf("got other stage with elapsed < attributed: %v", over)
		}
	}
}

func TestServerTimingFormat(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "run", "req-2")
	Observe(ctx, "sim", 12*time.Millisecond)
	Observe(ctx, "encode", 500*time.Microsecond)
	got := tr.ServerTiming(13 * time.Millisecond)
	want := "sim;dur=12.000, encode;dur=0.500, other;dur=0.500"
	if got != want {
		t.Errorf("ServerTiming = %q, want %q", got, want)
	}
}

func TestSpanEndAs(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "run", "req-3")
	sp := Start(ctx, "trace_load")
	sp.EndAs("record")
	stages := tr.Stages(0)
	if len(stages) != 1 || stages[0].Name != "record" {
		t.Fatalf("stages = %v, want a single record stage", stages)
	}
}

func TestOutcomeEscalation(t *testing.T) {
	_, tr := NewTrace(context.Background(), "run", "r")
	if tr.Outcome() != "" {
		t.Errorf("fresh trace outcome = %q, want empty", tr.Outcome())
	}
	tr.SetOutcome(OutcomeHit)
	tr.SetOutcome(OutcomeComputed)
	tr.SetOutcome(OutcomeHit) // must not downgrade
	if tr.Outcome() != OutcomeComputed {
		t.Errorf("outcome = %q, want computed (hit never downgrades)", tr.Outcome())
	}
	var nilTrace *Trace
	nilTrace.SetOutcome(OutcomeHit) // nil-safe
	if nilTrace.Outcome() != "" {
		t.Errorf("nil trace outcome = %q, want empty", nilTrace.Outcome())
	}
}

func TestSpanCapFoldsIntoAggregate(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "sweep", "r")
	for i := 0; i < maxSpans+10; i++ {
		Observe(ctx, "decode", time.Millisecond)
	}
	stages := tr.Stages(0)
	if len(stages) != 1 {
		t.Fatalf("stages = %d entries, want 1", len(stages))
	}
	want := time.Duration(maxSpans+10) * time.Millisecond
	if stages[0].Dur != want {
		t.Errorf("decode total = %v, want %v (overflow folds, never drops a known name)", stages[0].Dur, want)
	}
}

func TestRecorderRecentAndSlowest(t *testing.T) {
	r := NewRecorder(4, 2)
	mk := func(id string, d time.Duration) *Trace {
		_, tr := NewTrace(context.Background(), "run", id)
		tr.Finish(200, d)
		return tr
	}
	for i := 0; i < 6; i++ {
		r.Record(mk(fmt.Sprintf("t%d", i), time.Duration(i)*time.Millisecond))
	}
	snap := r.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent has %d entries, want ring capacity 4", len(snap.Recent))
	}
	if snap.Recent[0].ID != "t5" || snap.Recent[3].ID != "t2" {
		t.Errorf("recent order = %s..%s, want newest-first t5..t2", snap.Recent[0].ID, snap.Recent[3].ID)
	}
	slow := snap.Slowest["run"]
	if len(slow) != 2 || slow[0].ID != "t5" || slow[1].ID != "t4" {
		t.Errorf("slowest = %+v, want [t5 t4] (two slowest, slowest first)", slow)
	}
}

func TestRecorderHandlerServesJSON(t *testing.T) {
	r := NewRecorder(8, 2)
	ctx, tr := NewTrace(context.Background(), "run", "abc")
	Observe(ctx, "sim", 3*time.Millisecond)
	tr.SetOutcome(OutcomeComputed)
	tr.Finish(200, 4*time.Millisecond)
	r.Record(tr)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc DebugRequests
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Recent) != 1 || doc.Recent[0].ID != "abc" || doc.Recent[0].Outcome != "computed" {
		t.Fatalf("recent = %+v, want the one recorded trace", doc.Recent)
	}
	if len(doc.Recent[0].Stages) == 0 || doc.Recent[0].Stages[0].Name != "sim" {
		t.Errorf("stages = %+v, want sim first", doc.Recent[0].Stages)
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(16, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, tr := NewTrace(context.Background(), "run", fmt.Sprintf("g%d-%d", g, i))
				tr.Finish(200, time.Duration(i)*time.Microsecond)
				r.Record(tr)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := len(r.Snapshot().Recent); got != 16 {
		t.Errorf("recent = %d entries, want full ring 16", got)
	}
}

func TestRequestID(t *testing.T) {
	if id := RequestID("client-id-42"); id != "client-id-42" {
		t.Errorf("valid client ID replaced: %q", id)
	}
	for _, bad := range []string{"", "has space", "q\"uote", "semi;colon", "comma,", strings.Repeat("x", 65), "ctrl\x01"} {
		id := RequestID(bad)
		if id == bad {
			t.Errorf("invalid ID %q accepted", bad)
		}
		if len(id) != 16 {
			t.Errorf("generated ID %q, want 16 hex chars", id)
		}
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("two generated IDs collide: %q", a)
	}
}
