package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// maxRequestIDLen bounds accepted client-supplied request IDs; longer
// ones are replaced, not truncated, so an ID is always either exactly
// the client's or clearly server-generated.
const maxRequestIDLen = 64

// RequestID returns a usable request ID: the client-supplied value
// when it is a reasonable header token (printable ASCII without
// spaces, quotes or commas, at most 64 bytes), or a fresh random ID.
// Accepting client IDs is what lets a caller correlate its own logs
// with the server's access log and /debug/requests.
func RequestID(supplied string) string {
	if validRequestID(supplied) {
		return supplied
	}
	return NewRequestID()
}

// NewRequestID generates a 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID
		// keeps requests serviceable and is obvious in logs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

func validRequestID(s string) bool {
	if s == "" || len(s) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == ',' || c == ';' {
			return false
		}
	}
	return true
}
