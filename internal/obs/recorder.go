package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Defaults for NewRecorder arguments left <= 0.
const (
	DefaultRecent  = 128
	DefaultSlowest = 8
)

// Recorder retains finished request traces for the debug surface: a
// lock-free ring of the most recent traces across all endpoints, plus
// the slowest N traces per endpoint, so a latency spike stays
// inspectable after the ring has churned past it.
type Recorder struct {
	// recent is a power-of-two ring written with one atomic counter
	// bump and one atomic pointer store per request — publication
	// never takes a lock on the request path.
	idx    atomic.Uint64
	recent []atomic.Pointer[Trace]

	// slowest admission is mutex-guarded per endpoint; it runs once
	// per request against a handful of entries, after the response is
	// already on the wire.
	mu      sync.Mutex
	perEP   map[string]*slowList
	slowCap int
}

// slowList keeps the slowest traces of one endpoint, ascending by
// duration so the admission threshold is element 0.
type slowList struct {
	traces []*Trace
}

// NewRecorder builds a Recorder keeping recent traces overall and the
// slowest per endpoint (<= 0 picks the defaults). The recent capacity
// is rounded up to a power of two so ring indexing is a mask.
func NewRecorder(recent, slowest int) *Recorder {
	if recent <= 0 {
		recent = DefaultRecent
	}
	n := 1
	for n < recent {
		n <<= 1
	}
	if slowest <= 0 {
		slowest = DefaultSlowest
	}
	return &Recorder{
		recent:  make([]atomic.Pointer[Trace], n),
		perEP:   make(map[string]*slowList),
		slowCap: slowest,
	}
}

// Record publishes a finished trace (one whose Finish has run).
func (r *Recorder) Record(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	i := r.idx.Add(1) - 1
	r.recent[i&uint64(len(r.recent)-1)].Store(tr)

	d := tr.duration()
	r.mu.Lock()
	defer r.mu.Unlock()
	sl := r.perEP[tr.Endpoint]
	if sl == nil {
		sl = &slowList{}
		r.perEP[tr.Endpoint] = sl
	}
	if len(sl.traces) < r.slowCap {
		sl.traces = append(sl.traces, tr)
		sort.Slice(sl.traces, func(a, b int) bool { return sl.traces[a].duration() < sl.traces[b].duration() })
		return
	}
	if d <= sl.traces[0].duration() {
		return
	}
	sl.traces[0] = tr
	sort.Slice(sl.traces, func(a, b int) bool { return sl.traces[a].duration() < sl.traces[b].duration() })
}

// duration reads the finished trace's total latency.
func (tr *Trace) duration() (d int64) {
	tr.mu.Lock()
	d = int64(tr.total)
	tr.mu.Unlock()
	return d
}

// DebugRequests is the GET /debug/requests document.
type DebugRequests struct {
	// Recent lists the most recently finished traces, newest first.
	Recent []TraceSnapshot `json:"recent"`
	// Slowest maps endpoint to its slowest retained traces, slowest
	// first.
	Slowest map[string][]TraceSnapshot `json:"slowest"`
}

// Snapshot freezes the recorder's state for serving.
func (r *Recorder) Snapshot() DebugRequests {
	out := DebugRequests{Slowest: map[string][]TraceSnapshot{}}
	n := uint64(len(r.recent))
	next := r.idx.Load()
	for k := uint64(0); k < n; k++ {
		// Walk backwards from the most recent write.
		tr := r.recent[(next-1-k)&(n-1)].Load()
		if tr == nil {
			break
		}
		out.Recent = append(out.Recent, tr.snapshot())
	}
	if out.Recent == nil {
		out.Recent = []TraceSnapshot{}
	}

	r.mu.Lock()
	lists := make(map[string][]*Trace, len(r.perEP))
	for ep, sl := range r.perEP {
		lists[ep] = append([]*Trace(nil), sl.traces...)
	}
	r.mu.Unlock()
	for ep, traces := range lists {
		snaps := make([]TraceSnapshot, 0, len(traces))
		for i := len(traces) - 1; i >= 0; i-- { // slowest first
			snaps = append(snaps, traces[i].snapshot())
		}
		out.Slowest[ep] = snaps
	}
	return out
}

// Handler serves the recorder as JSON — the GET /debug/requests
// endpoint.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}
