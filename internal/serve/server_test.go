package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/runner"
	"vmopt/internal/workload"
)

// testScaleDiv shrinks every workload to its scale floor so
// simulations finish in milliseconds; tests care about the serving
// semantics, not the counters' magnitudes.
const testScaleDiv = 400

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// directRun computes a cell without the server, the way a vmbench
// invocation would — the reference for byte-identity.
func directRun(t *testing.T, wname, vname, mname string) []byte {
	t.Helper()
	w, err := workload.ByName(wname)
	if err != nil {
		t.Fatal(err)
	}
	v, err := harness.VariantByName(w, vname)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.MachineByName(mname)
	if err != nil {
		t.Fatal(err)
	}
	suite := harness.NewSuite()
	suite.ScaleDiv = testScaleDiv
	c, err := suite.Run(w, v, m)
	if err != nil {
		t.Fatal(err)
	}
	run := runner.NewRun(w.Name, v.Name, m.Name, suite.Scale(w), c)
	b, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n') // json.Encoder terminates with a newline
}

// TestRunCoalescing hammers /v1/run with identical concurrent
// requests: every response must be byte-identical to the direct
// harness result, and the herd must cost exactly one simulation.
func TestRunCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Traces: disptrace.NewCache(t.TempDir())})
	req := RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv}

	const herd = 16
	bodies := make([][]byte, herd)
	var wg sync.WaitGroup
	for i := range herd {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := post(t, ts.URL+"/v1/run", req)
			if status != http.StatusOK {
				t.Errorf("request %d: HTTP %d: %s", i, status, body)
			}
			bodies[i] = body
		}()
	}
	wg.Wait()

	want := directRun(t, "gray", "plain", "celeron-800")
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Fatalf("response %d differs from direct harness result:\ngot  %s\nwant %s", i, b, want)
		}
	}
	if got := s.stats.computedCells.Load(); got != 1 {
		t.Errorf("computed %d cells for %d identical requests, want 1", got, herd)
	}
	if hits := s.stats.lruHits.Load(); hits+s.stats.coalescedRuns.Load() != herd-1 {
		t.Errorf("hits (%d) + coalesced (%d) != %d duplicates",
			hits, s.stats.coalescedRuns.Load(), herd-1)
	}
}

// parseSweep splits an NDJSON sweep response into its lines and the
// final summary.
func parseSweep(t *testing.T, body []byte) (runs []runner.Run, errLines []SweepLine, done SweepLine) {
	t.Helper()
	sawDone := false
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		var l SweepLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case l.Done:
			done, sawDone = l, true
		case l.Run != nil:
			runs = append(runs, *l.Run)
		case l.Cursor != "":
			// Resume cursors are cumulative completion sets, so they
			// vary with group completion order; cell comparisons
			// ignore them (TestSweepResume covers them directly).
		default:
			errLines = append(errLines, l)
		}
	}
	if !sawDone {
		t.Fatalf("sweep response missing done line: %s", body)
	}
	return runs, errLines, done
}

// TestSweepCoalescing fires identical concurrent sweeps and checks
// the acceptance criterion end to end: one simulation per (workload,
// variant) group in the shared trace cache, all responses identical
// up to line order, and every cell byte-identical to direct
// Suite.RunSpecs output.
func TestSweepCoalescing(t *testing.T) {
	cache := disptrace.NewCache(t.TempDir())
	s, ts := newTestServer(t, Config{Traces: cache})
	req := SweepRequest{
		Workloads: []string{"gray"},
		Variants:  []string{"plain", "dynamic super"},
		ScaleDiv:  testScaleDiv,
	}
	wantCells := 2 * len(cpu.Machines())

	const herd = 8
	bodies := make([][]byte, herd)
	var wg sync.WaitGroup
	for i := range herd {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := post(t, ts.URL+"/v1/sweep", req)
			if status != http.StatusOK {
				t.Errorf("sweep %d: HTTP %d: %s", i, status, body)
			}
			bodies[i] = body
		}()
	}
	wg.Wait()

	normalize := func(b []byte) string {
		var lines []string
		for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
			// Cursor lines encode completion order, which legitimately
			// differs between identical concurrent requests; cell
			// content must not.
			if strings.Contains(line, `"cursor"`) {
				continue
			}
			lines = append(lines, line)
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	first := normalize(bodies[0])
	for i, b := range bodies[1:] {
		if normalize(b) != first {
			t.Fatalf("sweep response %d differs from response 0", i+1)
		}
	}
	runs, errLines, done := parseSweep(t, bodies[0])
	if len(errLines) > 0 {
		t.Fatalf("sweep reported cell errors: %+v", errLines)
	}
	if done.Cells != wantCells || done.Errors != 0 || len(runs) != wantCells {
		t.Fatalf("done = %+v with %d runs, want %d cells and no errors", done, len(runs), wantCells)
	}

	// One recording per (workload, variant) group, never a duplicate.
	if st := cache.Stats(); st.Records != 2 {
		t.Errorf("trace cache performed %d recordings for %d identical sweeps, want 2 (one per group)", st.Records, herd)
	}

	// Byte-identity against a direct grid run sharing no state with
	// the server (its own trace cache directory).
	w, _ := workload.ByName("gray")
	suite := harness.NewSuite()
	suite.ScaleDiv = testScaleDiv
	suite.Traces = disptrace.NewCache(t.TempDir())
	var specs []harness.RunSpec
	for _, vn := range req.Variants {
		v, err := harness.VariantByName(w, vn)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range cpu.Machines() {
			specs = append(specs, harness.RunSpec{W: w, V: v, M: m})
		}
	}
	cs, err := suite.RunSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i, sp := range specs {
		run := runner.NewRun(sp.W.Name, sp.V.Name, sp.M.Name, suite.Scale(sp.W), cs[i])
		b, _ := json.Marshal(run)
		want[run.Key()] = string(b)
	}
	for _, run := range runs {
		b, _ := json.Marshal(run)
		if want[run.Key()] != string(b) {
			t.Errorf("cell %s differs from direct RunSpecs output:\ngot  %s\nwant %s", run.Key(), b, want[run.Key()])
		}
	}
	if s.stats.computedCells.Load() < uint64(wantCells) {
		t.Errorf("computed cells %d < %d", s.stats.computedCells.Load(), wantCells)
	}
}

// TestMixedDistinctRequests drives overlapping distinct runs and
// sweeps concurrently — the race-detector soak for the serving path.
func TestMixedDistinctRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Traces: disptrace.NewCache(t.TempDir())})
	variants := []string{"plain", "dynamic super", "dynamic repl"}
	machines := cpu.Machines()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := range 12 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%3 == 0 {
				status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{
					Workloads: []string{"gray"},
					Variants:  variants[:1+i%2],
					ScaleDiv:  testScaleDiv,
				})
				if status != http.StatusOK {
					errs <- fmt.Sprintf("sweep %d: HTTP %d: %s", i, status, body)
				}
				return
			}
			v := variants[i%len(variants)]
			m := machines[i%len(machines)]
			status, body := post(t, ts.URL+"/v1/run", RunRequest{
				Workload: "gray", Variant: v, Machine: m.Name, ScaleDiv: testScaleDiv,
			})
			if status != http.StatusOK {
				errs <- fmt.Sprintf("run %d (%s/%s): HTTP %d: %s", i, v, m.Name, status, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSweepCancellation cancels a sweep mid-flight and checks nothing
// leaks: the handler returns, in-flight drops to zero, and the
// goroutine count settles back to its pre-request level.
func TestSweepCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// A grid big enough to still be running when the cancel lands:
	// every forth workload under the dynamic variants, full machine
	// set, at test scale.
	req := SweepRequest{
		Workloads: []string{"gray", "tscp", "brew", "bench-gc", "cross", "vmgen", "brainless"},
		Variants:  []string{"plain", "dynamic repl", "dynamic super", "dynamic both", "across bb"},
		ScaleDiv:  testScaleDiv,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(httpReq)
	if err == nil {
		// The cancel may have landed after the response completed;
		// that is fine — the request was simply fast.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		inFlight := s.stats.inFlight.Load()
		goroutines := runtime.NumGoroutine()
		if inFlight == 0 && goroutines <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("after cancellation: in-flight %d, goroutines %d (started at %d); stacks:\n%s",
				inFlight, goroutines, before, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestBackpressure verifies the 503 path: with every slot occupied,
// run and sweep requests are rejected without executing.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	s.stats.inFlight.Add(2) // occupy both slots deterministically
	defer s.stats.inFlight.Add(-2)

	status, body := post(t, ts.URL+"/v1/run", RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv})
	if status != http.StatusServiceUnavailable {
		t.Errorf("run at capacity: HTTP %d (%s), want 503", status, body)
	}
	status, _ = post(t, ts.URL+"/v1/sweep", SweepRequest{Workloads: []string{"gray"}, Variants: []string{"plain"}, ScaleDiv: testScaleDiv})
	if status != http.StatusServiceUnavailable {
		t.Errorf("sweep at capacity: HTTP %d, want 503", status)
	}
	if got := s.stats.rejected.Load(); got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	if got := s.stats.computedCells.Load(); got != 0 {
		t.Errorf("rejected requests computed %d cells", got)
	}
}

// TestValidation covers the 4xx surface.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCells: 3})
	for _, tc := range []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown workload", "/v1/run", RunRequest{Workload: "nope", Variant: "plain", Machine: "celeron-800"}, 400},
		{"unknown variant", "/v1/run", RunRequest{Workload: "gray", Variant: "nope", Machine: "celeron-800"}, 400},
		{"unknown machine", "/v1/run", RunRequest{Workload: "gray", Variant: "plain", Machine: "nope"}, 400},
		{"empty sweep", "/v1/sweep", SweepRequest{}, 400},
		{"variant matches nothing", "/v1/sweep", SweepRequest{Workloads: []string{"gray"}, Variants: []string{"w/static super across"}}, 400},
		{"too many cells", "/v1/sweep", SweepRequest{Workloads: []string{"gray"}, Variants: []string{"plain"}, ScaleDiv: testScaleDiv}, 413},
	} {
		status, body := post(t, ts.URL+tc.path, tc.body)
		if status != tc.want {
			t.Errorf("%s: HTTP %d (%s), want %d", tc.name, status, body, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/traces/zz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("traces without cache: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestTraceAndStatsEndpoints exercises the observability surface
// after real traffic.
func TestTraceAndStatsEndpoints(t *testing.T) {
	cache := disptrace.NewCache(t.TempDir())
	_, ts := newTestServer(t, Config{Traces: cache})
	status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"tscp"}, Variants: []string{"plain"}, ScaleDiv: testScaleDiv,
	})
	if status != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", status, body)
	}

	listBody, err := fetchOK(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list TraceList
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || len(list.Traces) != 1 {
		t.Fatalf("trace list = %+v, want exactly the one recorded trace", list)
	}

	infoBody, err := fetchOK(ts.URL + "/v1/traces/" + list.Traces[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var info TraceInfo
	if err := json.Unmarshal(infoBody, &info); err != nil {
		t.Fatal(err)
	}
	if info.Workload != "tscp" || info.Variant != "plain" || info.Records == 0 || info.Segments == 0 {
		t.Errorf("trace info = %+v, want tscp/plain with records and segments", info)
	}

	statsBody, err := fetchOK(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Sweep != 1 || st.Host == nil || st.Host.GoMaxProcs < 1 {
		t.Errorf("stats = %+v, want one sweep and host metadata", st)
	}
	if st.Traces == nil || st.Traces.Records != 1 {
		t.Errorf("stats.Traces = %+v, want 1 recording", st.Traces)
	}
	if st.Latency["sweep"].Count != 1 {
		t.Errorf("sweep latency count = %d, want 1", st.Latency["sweep"].Count)
	}
}

// TestDiffEndpoint drives POST /v1/diff over traces recorded through
// the server: self-diff reports zero divergences, a cross-technique
// diff reports a deterministic first divergence, concurrent duplicate
// requests receive byte-identical bodies from one coalesced
// computation, and bad inputs map to the right statuses.
func TestDiffEndpoint(t *testing.T) {
	cache := disptrace.NewCache(t.TempDir())
	s, ts := newTestServer(t, Config{Traces: cache})

	// Populate the cache with two techniques of one workload.
	for _, variant := range []string{"plain", "switch"} {
		status, body := post(t, ts.URL+"/v1/run", RunRequest{
			Workload: "gray", Variant: variant, Machine: "celeron-800", ScaleDiv: testScaleDiv,
		})
		if status != http.StatusOK {
			t.Fatalf("run %s: HTTP %d: %s", variant, status, body)
		}
	}
	entries, err := cache.List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("cache holds %d traces (%v), want 2", len(entries), err)
	}
	byVariant := map[string]disptrace.CacheEntry{}
	for _, e := range entries {
		byVariant[e.Variant] = e
	}
	a, b := byVariant["switch"], byVariant["plain"]
	if a.ID == "" || b.ID == "" {
		t.Fatalf("trace list lacks variant metadata: %+v", entries)
	}
	if !a.Seekable || a.VMInstructions == 0 || a.Segments == 0 {
		t.Fatalf("listed entry missing index metadata: %+v", a)
	}

	// Self-diff: identical.
	status, body := post(t, ts.URL+"/v1/diff", DiffRequest{A: a.ID, B: a.ID})
	if status != http.StatusOK {
		t.Fatalf("self-diff: HTTP %d: %s", status, body)
	}
	var selfResp DiffResponse
	if err := json.Unmarshal(body, &selfResp); err != nil {
		t.Fatal(err)
	}
	if !selfResp.Report.Identical || selfResp.Report.Divergences != 0 {
		t.Fatalf("self-diff not identical: %+v", selfResp.Report)
	}

	// Concurrent duplicate cross-diffs: byte-identical bodies.
	const herd = 12
	bodies := make([][]byte, herd)
	var wg sync.WaitGroup
	for i := range herd {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := post(t, ts.URL+"/v1/diff", DiffRequest{A: a.ID, B: b.ID, N: 3})
			if status != http.StatusOK {
				t.Errorf("cross-diff %d: HTTP %d: %s", i, status, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < herd; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("duplicate diff %d diverged:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var crossResp DiffResponse
	if err := json.Unmarshal(bodies[0], &crossResp); err != nil {
		t.Fatal(err)
	}
	if crossResp.Report.Identical || crossResp.Report.Divergences == 0 || crossResp.Report.FirstDivergence < 0 {
		t.Fatalf("cross-technique diff reports no divergence: %+v", crossResp.Report)
	}
	if len(crossResp.Report.First) == 0 || len(crossResp.Report.First) > 3 {
		t.Fatalf("asked for 3 detailed divergences, got %d", len(crossResp.Report.First))
	}
	if got := s.stats.reqDiff.Load(); got != herd+1 {
		t.Errorf("diff request count = %d, want %d", got, herd+1)
	}

	// Unknown id -> 404; malformed id -> 400; no body -> 400.
	fake := strings.Repeat("ab", 32)
	if status, _ := post(t, ts.URL+"/v1/diff", DiffRequest{A: fake, B: fake}); status != http.StatusNotFound {
		t.Errorf("unknown trace id: HTTP %d, want 404", status)
	}
	if status, _ := post(t, ts.URL+"/v1/diff", DiffRequest{A: "zz", B: a.ID}); status != http.StatusBadRequest {
		t.Errorf("malformed trace id: HTTP %d, want 400", status)
	}

	// Mismatched workloads -> 400 with ErrMismatched. Record another
	// workload's trace to pair with.
	if status, body := post(t, ts.URL+"/v1/run", RunRequest{
		Workload: "tscp", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv,
	}); status != http.StatusOK {
		t.Fatalf("run tscp: HTTP %d: %s", status, body)
	}
	entries, err = cache.List()
	if err != nil {
		t.Fatal(err)
	}
	var other disptrace.CacheEntry
	for _, e := range entries {
		if e.Workload == "tscp" {
			other = e
		}
	}
	if status, body := post(t, ts.URL+"/v1/diff", DiffRequest{A: a.ID, B: other.ID}); status != http.StatusBadRequest {
		t.Errorf("mismatched workloads: HTTP %d (%s), want 400", status, body)
	}

	// Stats reflect the diff traffic.
	statsBody, err := fetchOK(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Diff == 0 || st.Computed.Diffs == 0 {
		t.Errorf("diff stats missing: %+v", st.Requests)
	}
	if st.Latency["diff"].Count == 0 {
		t.Errorf("diff latency not observed")
	}
}

func fetchOK(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
