package serve

import (
	"sync/atomic"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/metrics"
	"vmopt/internal/runner"
)

// stats is the server's observability surface: lock-free counters the
// request paths bump and /v1/stats snapshots. Latency histograms come
// from internal/metrics.
type stats struct {
	start time.Time

	inFlight atomic.Int64

	reqRun, reqSweep, reqDiff, reqTraces, reqStats atomic.Uint64
	rejected, errors                               atomic.Uint64

	lruHits, lruMisses atomic.Uint64

	coalescedRuns, coalescedGroups, coalescedDiffs atomic.Uint64
	computedCells, computedGroups, computedDiffs   atomic.Uint64
	canceledRetries                                atomic.Uint64
	resultsDropped                                 atomic.Uint64

	latRun, latSweep, latDiff, latTraces metrics.Histogram
}

// StatsResponse is the GET /v1/stats document.
type StatsResponse struct {
	UptimeS float64      `json:"uptime_s"`
	Host    *runner.Host `json:"host"`

	// InFlight is the number of admitted /v1/run and /v1/sweep
	// requests currently executing.
	InFlight int64 `json:"in_flight"`

	Requests RequestStats `json:"requests"`
	Cache    CacheTier    `json:"cache"`

	// Coalesced counts requests that joined an in-progress identical
	// computation instead of starting their own: single runs and whole
	// sweep groups.
	Coalesced CoalesceStats `json:"coalesced"`
	// Computed counts actual simulations/replays performed.
	Computed ComputeStats `json:"computed"`

	// Traces is the on-disk dispatch-trace cache activity (absent when
	// the server runs without a trace cache).
	Traces *disptrace.CacheStats `json:"traces,omitempty"`

	// Suites reports the per-scalediv suite pool backing computation.
	Suites SuiteStats `json:"suites"`

	Latency map[string]metrics.HistogramSnapshot `json:"latency"`
}

// RequestStats counts requests by endpoint plus terminal outcomes.
type RequestStats struct {
	Run    uint64 `json:"run"`
	Sweep  uint64 `json:"sweep"`
	Diff   uint64 `json:"diff"`
	Traces uint64 `json:"traces"`
	Stats  uint64 `json:"stats"`
	// Rejected counts requests turned away by backpressure (503).
	Rejected uint64 `json:"rejected"`
	// Errors counts requests that failed for any other reason:
	// malformed or unresolvable requests (4xx) and post-admission
	// execution failures alike.
	Errors uint64 `json:"errors"`
}

// CacheTier describes the in-memory result LRU.
type CacheTier struct {
	Size    int     `json:"size"`
	Cap     int     `json:"cap"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// CoalesceStats counts thundering-herd suppression.
type CoalesceStats struct {
	Runs   uint64 `json:"runs"`
	Groups uint64 `json:"groups"`
	Diffs  uint64 `json:"diffs"`
	// CanceledRetries counts computations re-led after a cancelled
	// leader poisoned a shared flight result.
	CanceledRetries uint64 `json:"canceled_retries"`
}

// ComputeStats counts work actually performed.
type ComputeStats struct {
	Cells  uint64 `json:"cells"`
	Groups uint64 `json:"groups"`
	Diffs  uint64 `json:"diffs"`
}

// SuiteStats describes the suite pool.
type SuiteStats struct {
	Live int `json:"live"`
	// ResultsDropped counts suite-level result-cache resets performed
	// to bound memory.
	ResultsDropped uint64 `json:"results_dropped"`
}

func (st *stats) snapshot(s *Server) StatsResponse {
	hits, misses := st.lruHits.Load(), st.lruMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	resp := StatsResponse{
		UptimeS:  time.Since(st.start).Seconds(),
		Host:     runner.CurrentHost(),
		InFlight: st.inFlight.Load(),
		Requests: RequestStats{
			Run:      st.reqRun.Load(),
			Sweep:    st.reqSweep.Load(),
			Diff:     st.reqDiff.Load(),
			Traces:   st.reqTraces.Load(),
			Stats:    st.reqStats.Load(),
			Rejected: st.rejected.Load(),
			Errors:   st.errors.Load(),
		},
		Cache: CacheTier{
			Size:    s.lru.Len(),
			Cap:     s.lru.Cap(),
			Hits:    hits,
			Misses:  misses,
			HitRate: rate,
		},
		Coalesced: CoalesceStats{
			Runs:            st.coalescedRuns.Load(),
			Groups:          st.coalescedGroups.Load(),
			Diffs:           st.coalescedDiffs.Load(),
			CanceledRetries: st.canceledRetries.Load(),
		},
		Computed: ComputeStats{
			Cells:  st.computedCells.Load(),
			Groups: st.computedGroups.Load(),
			Diffs:  st.computedDiffs.Load(),
		},
		Suites: SuiteStats{
			Live:           s.suiteCount(),
			ResultsDropped: st.resultsDropped.Load(),
		},
		Latency: map[string]metrics.HistogramSnapshot{
			"run":    st.latRun.Snapshot(),
			"sweep":  st.latSweep.Snapshot(),
			"diff":   st.latDiff.Snapshot(),
			"traces": st.latTraces.Snapshot(),
		},
	}
	if s.cfg.Traces != nil {
		ts := s.cfg.Traces.Stats()
		resp.Traces = &ts
	}
	return resp
}
