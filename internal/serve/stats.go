package serve

import (
	"sync/atomic"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/metrics"
	"vmopt/internal/runner"
)

// stats is the server's observability surface, backed by one
// metrics.Registry: the request paths bump registry-owned counters
// and histograms, GET /metrics renders the registry as Prometheus
// text format, and /v1/stats snapshots the same live values into its
// JSON document — two views over one source, so they can never
// disagree.
type stats struct {
	start time.Time
	reg   *metrics.Registry

	// inFlight is read by admission control on every request, so it
	// stays a plain atomic and is exported through a GaugeFunc.
	inFlight atomic.Int64

	reqRun, reqSweep, reqDiff, reqTraces, reqStats *metrics.Counter
	rejected, errors                               *metrics.Counter

	lruHits, lruMisses *metrics.Counter

	coalescedRuns, coalescedGroups, coalescedDiffs *metrics.Counter
	computedCells, computedGroups, computedDiffs   *metrics.Counter
	canceledRetries                                *metrics.Counter
	resultsDropped                                 *metrics.Counter

	deadlineTimeouts  *metrics.Counter
	retriedRequests   *metrics.Counter
	sweepResumes      *metrics.Counter
	forwardedRequests *metrics.Counter

	latRun, latSweep, latDiff, latTraces, latStats *metrics.Histogram
}

// init builds the registry and registers every server metric. It runs
// once from New, after the server's caches exist (several gauges read
// them at collection time).
func (st *stats) init(s *Server) {
	st.start = time.Now()
	r := metrics.NewRegistry()
	st.reg = r
	metrics.RegisterRuntime(r)

	req := r.CounterVec("vmserved_requests_total",
		"HTTP requests received, by endpoint.", "endpoint")
	st.reqRun = req.With("run")
	st.reqSweep = req.With("sweep")
	st.reqDiff = req.With("diff")
	st.reqTraces = req.With("traces")
	st.reqStats = req.With("stats")

	st.rejected = r.Counter("vmserved_rejected_total",
		"Requests rejected by admission control (503).")
	st.errors = r.Counter("vmserved_errors_total",
		"Requests that failed: malformed/unresolvable (4xx) or execution errors.")

	st.lruHits = r.Counter("vmserved_cache_hits_total",
		"In-memory result LRU hits.")
	st.lruMisses = r.Counter("vmserved_cache_misses_total",
		"In-memory result LRU misses.")
	r.CounterFunc("vmserved_cache_evictions_total",
		"In-memory result LRU entries displaced by capacity pressure.",
		s.lru.Evictions)
	r.GaugeFunc("vmserved_cache_entries",
		"Resident entries in the in-memory result LRU.",
		func() float64 { return float64(s.lru.Len()) })

	coal := r.CounterVec("vmserved_coalesced_total",
		"Requests that joined an in-progress identical computation, by kind.", "kind")
	st.coalescedRuns = coal.With("runs")
	st.coalescedGroups = coal.With("groups")
	st.coalescedDiffs = coal.With("diffs")

	comp := r.CounterVec("vmserved_computed_total",
		"Simulations, replays and diffs actually performed, by kind.", "kind")
	st.computedCells = comp.With("cells")
	st.computedGroups = comp.With("groups")
	st.computedDiffs = comp.With("diffs")

	st.canceledRetries = r.Counter("vmserved_canceled_retries_total",
		"Computations re-led after a cancelled leader poisoned a shared flight result.")
	st.resultsDropped = r.Counter("vmserved_suite_results_dropped_total",
		"Suite-level result-cache resets performed to bound memory.")

	st.deadlineTimeouts = r.Counter("vmserved_deadline_timeouts_total",
		"Requests that exhausted their server-side deadline budget (504, or mid-stream sweep deadline errors).")
	st.retriedRequests = r.Counter("vmserved_retried_requests_total",
		"Requests arriving with X-Retry-Attempt > 0: client-side retries landing on this server.")
	st.sweepResumes = r.Counter("vmserved_sweep_resumes_total",
		"Sweep requests that resumed from a cursor instead of replaying the whole grid.")
	r.CounterFunc("vmserved_cache_quarantined_total",
		"Corrupt or mismatched trace-cache files moved to the quarantine sidecar dir.",
		func() uint64 {
			if s.cfg.Traces == nil {
				return 0
			}
			return s.cfg.Traces.Quarantined()
		})
	r.CounterFunc("vmserved_faults_injected_total",
		"Injected faults fired across every configured fault site.",
		func() uint64 { return s.cfg.Faults.Total() })

	st.forwardedRequests = r.Counter("vmserved_forwarded_requests_total",
		"Requests arriving via the cluster router (X-Cluster-Hop set).")
	traceStat := func(read func(disptrace.CacheStats) uint64) func() uint64 {
		return func() uint64 {
			if s.cfg.Traces == nil {
				return 0
			}
			return read(s.cfg.Traces.Stats())
		}
	}
	r.CounterFunc("vmserved_trace_records_total",
		"Dispatch traces recorded by simulation on this instance — the fleet-wide sum bounds duplicate work.",
		traceStat(func(cs disptrace.CacheStats) uint64 { return cs.Records }))
	r.CounterFunc("vmserved_trace_loads_total",
		"Dispatch traces loaded from the local disk cache.",
		traceStat(func(cs disptrace.CacheStats) uint64 { return cs.Loads }))
	r.CounterFunc("vmserved_peer_fill_hits_total",
		"Local trace-cache misses satisfied by fetching from the owning peer instead of re-simulating.",
		traceStat(func(cs disptrace.CacheStats) uint64 { return cs.PeerFills }))
	r.CounterFunc("vmserved_peer_fill_misses_total",
		"Peer-fill attempts that came back empty and fell through to simulation.",
		traceStat(func(cs disptrace.CacheStats) uint64 { return cs.PeerFillMisses }))
	r.CounterFunc("vmserved_peer_fill_errors_total",
		"Peer-fill attempts that failed or returned a payload rejected by verification.",
		traceStat(func(cs disptrace.CacheStats) uint64 { return cs.PeerFillErrors }))
	r.CounterFunc("vmserved_peer_serves_total",
		"Raw trace files this instance served to filling peers.",
		traceStat(func(cs disptrace.CacheStats) uint64 { return cs.PeerServes }))

	compiledStat := func(read func(disptrace.CompiledStats) uint64) func() uint64 {
		return func() uint64 {
			if s.cfg.Traces == nil {
				return 0
			}
			return read(s.cfg.Traces.CompiledStats())
		}
	}
	r.CounterFunc("vmserved_compiled_builds_total",
		"Hot traces compiled into pre-decoded op arenas.",
		compiledStat(func(cs disptrace.CompiledStats) uint64 { return cs.Builds }))
	r.CounterFunc("vmserved_compiled_hits_total",
		"Trace loads served straight from a compiled arena — no disk read, no decode.",
		compiledStat(func(cs disptrace.CompiledStats) uint64 { return cs.Hits }))
	r.CounterFunc("vmserved_compiled_evictions_total",
		"Compiled arenas displaced by the tier's byte budget.",
		compiledStat(func(cs disptrace.CompiledStats) uint64 { return cs.Evictions }))
	r.GaugeFunc("vmserved_compiled_bytes",
		"Resident bytes in the compiled-arena tier, bounded by -compiled-budget.",
		func() float64 {
			if s.cfg.Traces == nil {
				return 0
			}
			return float64(s.cfg.Traces.CompiledStats().Bytes)
		})

	if s.cfg.InstanceID != "" {
		r.GaugeVec("vmserved_instance_info",
			"Instance identity; the label carries the -instance-id, the value is always 1.",
			"instance").With(s.cfg.InstanceID).Set(1)
	}
	r.GaugeFunc("vmserved_ready",
		"Readiness: 1 while /readyz answers 200, 0 once drain has begun.",
		func() float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})

	r.GaugeFunc("vmserved_in_flight",
		"Admitted requests currently executing.",
		func() float64 { return float64(st.inFlight.Load()) })
	r.GaugeFunc("vmserved_suites_live",
		"Live per-scalediv suites in the pool.",
		func() float64 { return float64(s.suiteCount()) })
	r.GaugeFunc("vmserved_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(st.start).Seconds() })

	lat := r.HistogramVec("vmserved_request_seconds",
		"End-to-end handler latency, by endpoint.", "endpoint")
	st.latRun = lat.With("run")
	st.latSweep = lat.With("sweep")
	st.latDiff = lat.With("diff")
	st.latTraces = lat.With("traces")
	st.latStats = lat.With("stats")
}

// StatsResponse is the GET /v1/stats document.
type StatsResponse struct {
	UptimeS float64      `json:"uptime_s"`
	Host    *runner.Host `json:"host"`

	// InstanceID is this instance's identity in a cluster (the
	// -instance-id flag; absent when unset).
	InstanceID string `json:"instance_id,omitempty"`

	// Ready mirrors the /readyz probe: false once drain has begun.
	Ready bool `json:"ready"`

	// InFlight is the number of admitted /v1/run and /v1/sweep
	// requests currently executing.
	InFlight int64 `json:"in_flight"`

	Requests RequestStats `json:"requests"`
	Cache    CacheTier    `json:"cache"`

	// Coalesced counts requests that joined an in-progress identical
	// computation instead of starting their own: single runs and whole
	// sweep groups.
	Coalesced CoalesceStats `json:"coalesced"`
	// Computed counts actual simulations/replays performed.
	Computed ComputeStats `json:"computed"`

	// Traces is the on-disk dispatch-trace cache activity (absent when
	// the server runs without a trace cache).
	Traces *disptrace.CacheStats `json:"traces,omitempty"`

	// Suites reports the per-scalediv suite pool backing computation.
	Suites SuiteStats `json:"suites"`

	// Faults reports injected-fault activity when a fault spec is
	// armed: total fires plus a per-"site/mode" breakdown (absent on
	// a fault-free server).
	Faults *FaultStats `json:"faults,omitempty"`

	Latency map[string]metrics.HistogramSnapshot `json:"latency"`
}

// FaultStats is the injected-fault view of /v1/stats.
type FaultStats struct {
	Injected uint64            `json:"injected"`
	PerSite  map[string]uint64 `json:"per_site,omitempty"`
}

// RequestStats counts requests by endpoint plus terminal outcomes.
type RequestStats struct {
	Run    uint64 `json:"run"`
	Sweep  uint64 `json:"sweep"`
	Diff   uint64 `json:"diff"`
	Traces uint64 `json:"traces"`
	Stats  uint64 `json:"stats"`
	// Rejected counts requests turned away by backpressure (503),
	// including injected serve.handler unavailability.
	Rejected uint64 `json:"rejected"`
	// Errors counts requests that failed for any other reason:
	// malformed or unresolvable requests (4xx) and post-admission
	// execution failures alike.
	Errors uint64 `json:"errors"`
	// DeadlineTimeouts counts requests that exhausted their
	// server-side deadline budget (504s, plus sweeps whose deadline
	// fired mid-stream).
	DeadlineTimeouts uint64 `json:"deadline_timeouts"`
	// Retried counts requests that arrived announcing a client-side
	// retry (X-Retry-Attempt > 0).
	Retried uint64 `json:"retried"`
	// SweepResumes counts sweeps resumed from a cursor.
	SweepResumes uint64 `json:"sweep_resumes"`
	// Forwarded counts requests that arrived through the cluster
	// router (X-Cluster-Hop set) rather than directly from a client.
	Forwarded uint64 `json:"forwarded"`
}

// CacheTier describes the in-memory result LRU.
type CacheTier struct {
	Size   int    `json:"size"`
	Cap    int    `json:"cap"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries displaced by capacity pressure —
	// what separates a cold cache from a thrashing one.
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// CoalesceStats counts thundering-herd suppression.
type CoalesceStats struct {
	Runs   uint64 `json:"runs"`
	Groups uint64 `json:"groups"`
	Diffs  uint64 `json:"diffs"`
	// CanceledRetries counts computations re-led after a cancelled
	// leader poisoned a shared flight result.
	CanceledRetries uint64 `json:"canceled_retries"`
}

// ComputeStats counts work actually performed.
type ComputeStats struct {
	Cells  uint64 `json:"cells"`
	Groups uint64 `json:"groups"`
	Diffs  uint64 `json:"diffs"`
}

// SuiteStats describes the suite pool.
type SuiteStats struct {
	Live int `json:"live"`
	// ResultsDropped counts suite-level result-cache resets performed
	// to bound memory.
	ResultsDropped uint64 `json:"results_dropped"`
}

func (st *stats) snapshot(s *Server) StatsResponse {
	hits, misses := st.lruHits.Load(), st.lruMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	resp := StatsResponse{
		UptimeS:    time.Since(st.start).Seconds(),
		Host:       runner.CurrentHost(),
		InstanceID: s.cfg.InstanceID,
		Ready:      s.Ready(),
		InFlight:   st.inFlight.Load(),
		Requests: RequestStats{
			Run:              st.reqRun.Load(),
			Sweep:            st.reqSweep.Load(),
			Diff:             st.reqDiff.Load(),
			Traces:           st.reqTraces.Load(),
			Stats:            st.reqStats.Load(),
			Rejected:         st.rejected.Load(),
			Errors:           st.errors.Load(),
			DeadlineTimeouts: st.deadlineTimeouts.Load(),
			Retried:          st.retriedRequests.Load(),
			SweepResumes:     st.sweepResumes.Load(),
			Forwarded:        st.forwardedRequests.Load(),
		},
		Cache: CacheTier{
			Size:      s.lru.Len(),
			Cap:       s.lru.Cap(),
			Hits:      hits,
			Misses:    misses,
			Evictions: s.lru.Evictions(),
			HitRate:   rate,
		},
		Coalesced: CoalesceStats{
			Runs:            st.coalescedRuns.Load(),
			Groups:          st.coalescedGroups.Load(),
			Diffs:           st.coalescedDiffs.Load(),
			CanceledRetries: st.canceledRetries.Load(),
		},
		Computed: ComputeStats{
			Cells:  st.computedCells.Load(),
			Groups: st.computedGroups.Load(),
			Diffs:  st.computedDiffs.Load(),
		},
		Suites: SuiteStats{
			Live:           s.suiteCount(),
			ResultsDropped: st.resultsDropped.Load(),
		},
		Latency: map[string]metrics.HistogramSnapshot{
			"run":    st.latRun.Snapshot(),
			"sweep":  st.latSweep.Snapshot(),
			"diff":   st.latDiff.Snapshot(),
			"traces": st.latTraces.Snapshot(),
			"stats":  st.latStats.Snapshot(),
		},
	}
	if s.cfg.Traces != nil {
		ts := s.cfg.Traces.Stats()
		resp.Traces = &ts
	}
	if s.cfg.Faults != nil {
		resp.Faults = &FaultStats{
			Injected: s.cfg.Faults.Total(),
			PerSite:  s.cfg.Faults.Snapshot(),
		}
	}
	return resp
}
