package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vmopt/internal/disptrace"
	"vmopt/internal/loadgen"
	"vmopt/internal/metrics"
	"vmopt/internal/obs"
)

// scrape fetches GET /metrics and parses it with the same strict
// parser vmload uses in CI, so a test failure here is exactly what
// would fail a real scrape.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.TextContentType)
	}
	series, err := loadgen.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text format: %v", err)
	}
	return series
}

// TestMetricsMatchStats drives a mixed workload — runs with a repeat
// (LRU hit), a sweep, a diff, a trace listing, a rejected request and
// a failed one — then checks that every counter GET /metrics exposes
// agrees exactly with the GET /v1/stats document: two renderings of
// one registry.
func TestMetricsMatchStats(t *testing.T) {
	cache := disptrace.NewCache(t.TempDir())
	s, ts := newTestServer(t, Config{Traces: cache, MaxInFlight: 2})

	for _, variant := range []string{"plain", "switch"} {
		status, body := post(t, ts.URL+"/v1/run", RunRequest{
			Workload: "gray", Variant: variant, Machine: "celeron-800", ScaleDiv: testScaleDiv,
		})
		if status != http.StatusOK {
			t.Fatalf("run %s: HTTP %d: %s", variant, status, body)
		}
	}
	// Repeat of the first run: an LRU hit.
	if status, body := post(t, ts.URL+"/v1/run", RunRequest{
		Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv,
	}); status != http.StatusOK {
		t.Fatalf("repeat run: HTTP %d: %s", status, body)
	}
	if status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{
		Workloads: []string{"gray"}, Variants: []string{"plain"}, ScaleDiv: testScaleDiv,
	}); status != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", status, body)
	}
	entries, err := cache.List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("cache holds %d traces (%v), want 2", len(entries), err)
	}
	if status, body := post(t, ts.URL+"/v1/diff", DiffRequest{A: entries[0].ID, B: entries[1].ID}); status != http.StatusOK {
		t.Fatalf("diff: HTTP %d: %s", status, body)
	}
	if _, err := fetchOK(ts.URL + "/v1/traces"); err != nil {
		t.Fatal(err)
	}
	// One failure (unknown workload -> 400) and one rejection (503).
	if status, _ := post(t, ts.URL+"/v1/run", RunRequest{Workload: "nope", Variant: "plain", Machine: "celeron-800"}); status != http.StatusBadRequest {
		t.Fatalf("unknown workload: HTTP %d, want 400", status)
	}
	s.stats.inFlight.Add(2)
	if status, _ := post(t, ts.URL+"/v1/run", RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv}); status != http.StatusServiceUnavailable {
		t.Fatalf("at capacity: HTTP %d, want 503", status)
	}
	s.stats.inFlight.Add(-2)

	// /v1/stats first, /metrics second: the scrape is deliberately
	// uninstrumented, so nothing moves between the two reads except
	// the stats request's own latency observation (checked separately).
	statsBody, err := fetchOK(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	series := scrape(t, ts.URL)

	want := map[string]uint64{
		`vmserved_requests_total{endpoint="run"}`:    st.Requests.Run,
		`vmserved_requests_total{endpoint="sweep"}`:  st.Requests.Sweep,
		`vmserved_requests_total{endpoint="diff"}`:   st.Requests.Diff,
		`vmserved_requests_total{endpoint="traces"}`: st.Requests.Traces,
		`vmserved_requests_total{endpoint="stats"}`:  st.Requests.Stats,
		`vmserved_rejected_total`:                    st.Requests.Rejected,
		`vmserved_errors_total`:                      st.Requests.Errors,
		`vmserved_cache_hits_total`:                  st.Cache.Hits,
		`vmserved_cache_misses_total`:                st.Cache.Misses,
		`vmserved_cache_evictions_total`:             st.Cache.Evictions,
		`vmserved_cache_entries`:                     uint64(st.Cache.Size),
		`vmserved_coalesced_total{kind="runs"}`:      st.Coalesced.Runs,
		`vmserved_coalesced_total{kind="groups"}`:    st.Coalesced.Groups,
		`vmserved_coalesced_total{kind="diffs"}`:     st.Coalesced.Diffs,
		`vmserved_canceled_retries_total`:            st.Coalesced.CanceledRetries,
		`vmserved_computed_total{kind="cells"}`:      st.Computed.Cells,
		`vmserved_computed_total{kind="groups"}`:     st.Computed.Groups,
		`vmserved_computed_total{kind="diffs"}`:      st.Computed.Diffs,
		`vmserved_suite_results_dropped_total`:       st.Suites.ResultsDropped,
		`vmserved_suites_live`:                       uint64(st.Suites.Live),
		`vmserved_in_flight`:                         0,
	}
	for _, ep := range []string{"run", "sweep", "diff", "traces"} {
		want[fmt.Sprintf("vmserved_request_seconds_count{endpoint=%q}", ep)] = st.Latency[ep].Count
	}
	for key, v := range want {
		got, ok := series[key]
		if !ok {
			t.Errorf("/metrics is missing series %s", key)
			continue
		}
		if got != float64(v) {
			t.Errorf("%s = %v in /metrics, but /v1/stats says %d", key, got, v)
		}
	}

	// The workload actually moved the counters this test is about.
	if st.Requests.Run != 5 || st.Requests.Sweep != 1 || st.Requests.Diff != 1 {
		t.Errorf("requests = %+v, want 5 runs, 1 sweep, 1 diff", st.Requests)
	}
	if st.Requests.Rejected != 1 || st.Requests.Errors != 1 {
		t.Errorf("rejected/errors = %d/%d, want 1/1", st.Requests.Rejected, st.Requests.Errors)
	}
	if st.Cache.Hits == 0 || st.Computed.Cells == 0 {
		t.Errorf("workload produced no cache hit (%d) or computed cell (%d)", st.Cache.Hits, st.Computed.Cells)
	}
	if st.Latency["stats"].Count != 0 {
		// The stats request observes its own latency only after its
		// response is written; the snapshot it returned cannot have
		// counted itself yet, but the later scrape must have.
		t.Errorf("stats latency count in its own snapshot = %d, want 0", st.Latency["stats"].Count)
	}
	if got := series[`vmserved_request_seconds_count{endpoint="stats"}`]; got != 1 {
		t.Errorf("stats latency count after the response completed = %v, want 1", got)
	}

	// Histogram exposition: cumulative run buckets ending in +Inf ==
	// _count.
	infKey := `vmserved_request_seconds_bucket{endpoint="run",le="+Inf"}`
	if series[infKey] != float64(st.Latency["run"].Count) {
		t.Errorf("%s = %v, want %d", infKey, series[infKey], st.Latency["run"].Count)
	}
}

// TestRequestIDAndServerTiming checks the per-request trace surface:
// the X-Request-ID echo and generation, a Server-Timing header whose
// stage durations account for the server-measured handler latency
// within 10%, and the trace appearing in GET /debug/requests with the
// same breakdown.
func TestRequestIDAndServerTiming(t *testing.T) {
	_, ts := newTestServer(t, Config{Traces: disptrace.NewCache(t.TempDir())})

	body, _ := json.Marshal(RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv})
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-42" {
		t.Errorf("X-Request-ID = %q, want the supplied id echoed back", got)
	}
	timing := resp.Header.Get("Server-Timing")
	if timing == "" {
		t.Fatal("run response has no Server-Timing header")
	}

	// A request without an id gets a generated one.
	resp2, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("server did not generate an X-Request-ID")
	}

	// The header's stage durations must sum to the handler latency the
	// server itself measured for that request (within 10% — the
	// "other" stage tiles the unattributed remainder, so the two can
	// only drift by rounding or concurrent-span overlap).
	debugBody, err := fetchOK(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dbg obs.DebugRequests
	if err := json.Unmarshal(debugBody, &dbg); err != nil {
		t.Fatalf("/debug/requests is not valid JSON: %v", err)
	}
	var trace *obs.TraceSnapshot
	for i := range dbg.Recent {
		if dbg.Recent[i].ID == "test-req-42" {
			trace = &dbg.Recent[i]
			break
		}
	}
	if trace == nil {
		t.Fatalf("trace test-req-42 not in /debug/requests recent list (%d entries)", len(dbg.Recent))
	}
	if trace.Endpoint != "run" || trace.Status != http.StatusOK {
		t.Errorf("trace = %s/%d, want run/200", trace.Endpoint, trace.Status)
	}
	if trace.Outcome != "computed" {
		t.Errorf("first run's outcome = %q, want computed", trace.Outcome)
	}
	var headerSum float64
	stageNames := map[string]bool{}
	for _, entry := range strings.Split(timing, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) != 2 || !strings.HasPrefix(parts[1], "dur=") {
			t.Fatalf("malformed Server-Timing entry %q in %q", entry, timing)
		}
		ms, err := strconv.ParseFloat(strings.TrimPrefix(parts[1], "dur="), 64)
		if err != nil {
			t.Fatalf("bad duration in %q: %v", entry, err)
		}
		headerSum += ms
		stageNames[parts[0]] = true
	}
	for _, want := range []string{"parse", "queue", "encode"} {
		if !stageNames[want] {
			t.Errorf("Server-Timing %q lacks a %q stage", timing, want)
		}
	}
	// With a trace cache the first run's simulation happens inside the
	// recording stage; without one it would be "sim".
	if !stageNames["record"] && !stageNames["sim"] {
		t.Errorf("Server-Timing %q attributes the computation to neither record nor sim", timing)
	}
	tol := 0.10*trace.DurMS + 0.05 // 10% plus rendering slack for sub-ms requests
	if diff := math.Abs(headerSum - trace.DurMS); diff > tol {
		t.Errorf("Server-Timing stages sum to %.3fms but the handler took %.3fms (diff %.3fms > %.3fms)",
			headerSum, trace.DurMS, diff, tol)
	}

	// The slowest-per-endpoint index retained the run too.
	if len(dbg.Slowest["run"]) == 0 {
		t.Error("/debug/requests has no slowest entries for run")
	}

	// Streaming responses cannot know their breakdown at WriteHeader
	// time; the sweep delivers Server-Timing as a declared trailer.
	sweepBody, _ := json.Marshal(SweepRequest{Workloads: []string{"gray"}, Variants: []string{"plain"}, ScaleDiv: testScaleDiv})
	sresp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(string(sweepBody)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fetchBody(sresp); err != nil {
		t.Fatal(err)
	}
	if got := sresp.Trailer.Get("Server-Timing"); got == "" {
		t.Error("sweep response has no Server-Timing trailer")
	}
}

// fetchBody drains and closes a response body; trailers are only
// populated once the body has been read to EOF.
func fetchBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TestMetricsScrapeUnderLoad scrapes /metrics and /debug/requests
// concurrently with live traffic — the race-detector soak for the
// whole observability surface (registry collection callbacks, the
// recorder ring, trace span appends).
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Traces: disptrace.NewCache(t.TempDir())})
	variants := []string{"plain", "dynamic super", "switch"}

	var wg sync.WaitGroup
	for i := range 9 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%3 == 0 {
				status, body := post(t, ts.URL+"/v1/sweep", SweepRequest{
					Workloads: []string{"gray"}, Variants: variants[:1+i%2], ScaleDiv: testScaleDiv,
				})
				if status != http.StatusOK {
					t.Errorf("sweep %d: HTTP %d: %s", i, status, body)
				}
				return
			}
			status, body := post(t, ts.URL+"/v1/run", RunRequest{
				Workload: "gray", Variant: variants[i%len(variants)], Machine: "celeron-800", ScaleDiv: testScaleDiv,
			})
			if status != http.StatusOK {
				t.Errorf("run %d: HTTP %d: %s", i, status, body)
			}
		}()
	}
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for range 3 {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				series := scrape(t, ts.URL)
				if len(series) == 0 {
					t.Error("empty /metrics scrape")
				}
				body, err := fetchOK(ts.URL + "/debug/requests")
				if err != nil {
					t.Error(err)
					return
				}
				var dbg obs.DebugRequests
				if err := json.Unmarshal(body, &dbg); err != nil {
					t.Errorf("/debug/requests mid-load: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	series := scrape(t, ts.URL)
	if got := series[`vmserved_requests_total{endpoint="run"}`]; got != 6 {
		t.Errorf("run requests after load = %v, want 6", got)
	}
	if got := series[`vmserved_requests_total{endpoint="sweep"}`]; got != 3 {
		t.Errorf("sweep requests after load = %v, want 3", got)
	}
}
