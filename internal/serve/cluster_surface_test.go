package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"vmopt/internal/disptrace"
)

// TestHealthAndReadiness covers the probe pair: /healthz never flips,
// /readyz follows SetReady and carries Retry-After while draining.
func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d, want 200", path, resp.StatusCode)
		}
	}

	s.SetReady(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 missing Retry-After")
	}

	// Liveness is not readiness: a draining instance is still alive,
	// and still serves real requests (the router drains it; it does
	// not refuse work mid-flight).
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200", resp.StatusCode)
	}
	status, _ := post(t, ts.URL+"/v1/run",
		RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv})
	if status != http.StatusOK {
		t.Fatalf("/v1/run while draining: %d, want 200", status)
	}

	s.SetReady(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d, want 200", resp.StatusCode)
	}
}

// TestInstanceIdentity checks the three places -instance-id surfaces:
// the X-Served-By response header, /v1/stats, and the
// vmserved_instance_info gauge.
func TestInstanceIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{InstanceID: "vm7:8321"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Served-By"); got != "vm7:8321" {
		t.Fatalf("X-Served-By = %q, want vm7:8321", got)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.InstanceID != "vm7:8321" {
		t.Fatalf("stats instance_id = %q, want vm7:8321", st.InstanceID)
	}
	if !st.Ready {
		t.Error("stats report not ready on a fresh server")
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `vmserved_instance_info{instance="vm7:8321"} 1`) {
		t.Error("metrics missing vmserved_instance_info gauge")
	}
	if !strings.Contains(string(b), "vmserved_ready 1") {
		t.Error("metrics missing vmserved_ready gauge")
	}

	// Without an instance ID, none of the three surfaces appear.
	_, anon := newTestServer(t, Config{})
	resp, err = http.Get(anon.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Served-By"); got != "" {
		t.Fatalf("anonymous server sent X-Served-By %q", got)
	}
}

// TestTraceRaw covers the peer-serving endpoint: raw bytes round-trip
// through GET /v1/traces/{id}/raw and decode to the same trace, and
// absences are clean 404s.
func TestTraceRaw(t *testing.T) {
	cache := disptrace.NewCache(t.TempDir())
	_, ts := newTestServer(t, Config{Traces: cache})
	status, _ := post(t, ts.URL+"/v1/run",
		RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv})
	if status != http.StatusOK {
		t.Fatalf("run: %d", status)
	}
	entries, err := cache.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries %d, err %v", len(entries), err)
	}
	id := entries[0].ID

	resp, err := http.Get(ts.URL + "/v1/traces/" + id + "/raw")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw fetch: %d", resp.StatusCode)
	}
	tr, err := disptrace.Decode(raw)
	if err != nil {
		t.Fatalf("raw bytes do not decode: %v", err)
	}
	h := tr.Header
	k := disptrace.Key{Workload: h.Workload, Lang: h.Lang, Variant: h.Variant,
		Technique: h.Technique, Scale: h.Scale, ScaleDiv: h.ScaleDiv,
		MaxSteps: h.MaxSteps, ISAHash: h.ISAHash}
	if got := k.ID(); got != id {
		t.Fatalf("raw trace decodes to %s, want %s", got, id)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/traces/" + strings.Repeat("0", 64) + "/raw", http.StatusNotFound},
		{"/v1/traces/not-a-valid-id/raw", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestForwardedCounter checks that requests arriving with the
// router's X-Cluster-Hop header are counted as forwarded.
func TestForwardedCounter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(RunRequest{Workload: "gray", Variant: "plain",
		Machine: "celeron-800", ScaleDiv: testScaleDiv})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Cluster-Hop", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests.Forwarded != 1 {
		t.Fatalf("forwarded = %d, want 1", st.Requests.Forwarded)
	}
}
