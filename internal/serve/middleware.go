package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"vmopt/internal/faults"
	"vmopt/internal/metrics"
	"vmopt/internal/obs"
)

// timingWriter wraps a ResponseWriter to capture the status code and
// stamp the Server-Timing header at the last possible moment: the
// first WriteHeader (explicit or implied by the first Write). Buffered
// endpoints marshal their body before writing, so every stage — encode
// included — is attributed by then. Streaming endpoints declare
// Server-Timing as a trailer instead, set after the handler returns.
type timingWriter struct {
	http.ResponseWriter
	tr     *obs.Trace
	start  time.Time
	stream bool
	status int
}

func (tw *timingWriter) WriteHeader(code int) {
	if tw.status != 0 {
		return
	}
	tw.status = code
	if !tw.stream {
		tw.Header().Set("Server-Timing", tw.tr.ServerTiming(time.Since(tw.start)))
	}
	tw.ResponseWriter.WriteHeader(code)
}

func (tw *timingWriter) Write(b []byte) (int, error) {
	if tw.status == 0 {
		tw.WriteHeader(http.StatusOK)
	}
	return tw.ResponseWriter.Write(b)
}

// Flush preserves the streaming path: handleSweep type-asserts its
// writer to http.Flusher to push NDJSON lines as they complete.
func (tw *timingWriter) Flush() {
	if f, ok := tw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint handler with the request observability
// path: the per-endpoint request counter, an obs.Trace on the context
// (so every downstream stage can attribute its time), the
// X-Request-ID echo, the Server-Timing header or trailer, the
// end-to-end latency histogram, the debug recorder and the access
// log. stream marks endpoints that write their body incrementally.
func (s *Server) instrument(endpoint string, reqs *metrics.Counter, lat *metrics.Histogram, stream bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		// A client-announced retry attempt (X-Retry-Attempt > 0) is
		// counted so the operator can see retry pressure server-side,
		// not just in client reports.
		if a := r.Header.Get("X-Retry-Attempt"); a != "" && a != "0" {
			s.stats.retriedRequests.Add(1)
		}
		// X-Cluster-Hop marks a request forwarded by the cluster router
		// (the value is the router's attempt number for this request).
		if r.Header.Get("X-Cluster-Hop") != "" {
			s.stats.forwardedRequests.Add(1)
		}
		id := obs.RequestID(r.Header.Get("X-Request-ID"))
		ctx, tr := obs.NewTrace(r.Context(), endpoint, id)
		w.Header().Set("X-Request-ID", id)
		if stream {
			// Trailers must be declared before the header is flushed;
			// the value is set once the handler has finished writing.
			w.Header().Set("Trailer", "Server-Timing")
		}
		start := time.Now()
		tw := &timingWriter{ResponseWriter: w, tr: tr, start: start, stream: stream}
		// The serve.handler fault site: an injected stall delays the
		// whole request; an injected rejection answers 503 exactly like
		// admission-control backpressure (Retry-After included, counted
		// as rejected) before any work happens.
		s.cfg.Faults.Delay(faults.SiteHandler)
		if s.cfg.Faults.Reject(faults.SiteHandler) {
			s.stats.rejected.Add(1)
			tw.Header().Set("Retry-After", "1")
			errorBody(tw, http.StatusServiceUnavailable, "injected unavailability (fault site %s)", faults.SiteHandler)
		} else {
			h(tw, r.WithContext(ctx))
		}
		elapsed := time.Since(start)
		status := tw.status
		if status == 0 {
			status = http.StatusOK
		}
		if stream {
			w.Header().Set("Server-Timing", tr.ServerTiming(elapsed))
		}
		if status >= 400 {
			tr.SetOutcome(obs.OutcomeError)
		}
		lat.Observe(elapsed)
		tr.Finish(status, elapsed)
		s.recorder.Record(tr)
		if s.cfg.AccessLog != nil {
			s.cfg.AccessLog.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("endpoint", endpoint),
				slog.Int("status", status),
				slog.String("outcome", tr.Outcome()),
				slog.Float64("dur_ms", float64(elapsed)/float64(time.Millisecond)),
			)
		}
	}
}
