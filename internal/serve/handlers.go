package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/metrics"
	"vmopt/internal/obs"
	"vmopt/internal/runner"
)

// Handler returns the server's HTTP routing table. Every /v1 endpoint
// runs under the observability middleware (request counter, trace,
// X-Request-ID, Server-Timing, latency histogram, access log);
// /metrics and /debug/requests deliberately do not, so scraping never
// perturbs the request counters it reports.
func (s *Server) Handler() http.Handler {
	st := &s.stats
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument("run", st.reqRun, st.latRun, false, s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", st.reqSweep, st.latSweep, true, s.handleSweep))
	mux.HandleFunc("POST /v1/diff", s.instrument("diff", st.reqDiff, st.latDiff, false, s.handleDiff))
	mux.HandleFunc("GET /v1/traces", s.instrument("traces", st.reqTraces, st.latTraces, false, s.handleTraceList))
	mux.HandleFunc("GET /v1/traces/{id}", s.instrument("traces", st.reqTraces, st.latTraces, false, s.handleTraceInfo))
	// The raw-bytes endpoint is the peer-serving side of the cluster's
	// cache-fill protocol. Like /metrics it is uninstrumented: peers
	// fetching fills must not perturb the request counters vmload
	// cross-checks against client-side op counts.
	mux.HandleFunc("GET /v1/traces/{id}/raw", s.handleTraceRaw)
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", st.reqStats, st.latStats, false, s.handleStats))
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.Handle("GET /debug/requests", s.recorder.Handler())
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.InstanceID == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Served-By", s.cfg.InstanceID)
		mux.ServeHTTP(w, r)
	})
}

// handleHealthz is liveness: 200 as long as the process can answer
// HTTP at all. Readiness (handleReadyz) is the probe that flips
// during drain; liveness never does — restarting an instance because
// it is draining would defeat the drain.
func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}

// handleReadyz is readiness: 200 while the instance accepts work, 503
// once drain has begun (SetReady(false) at SIGTERM, before listeners
// close), so routers and load balancers steer traffic away instead of
// eating connection resets.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !s.Ready() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false}`)
		return
	}
	fmt.Fprintln(w, `{"ready":true}`)
}

// MetricsHandler serves the registry in Prometheus text exposition
// format 0.0.4 — GET /metrics.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", metrics.TextContentType)
		s.stats.reg.WritePrometheus(w)
	})
}

// DebugHandler returns the surface cmd/vmserved binds to its separate
// -debug-addr listener: pprof, the metric exposition and the recent/
// slowest request traces. Kept off the public handler so profiling
// endpoints are only reachable where the operator points them.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/requests", s.recorder.Handler())
	mux.Handle("/metrics", s.MetricsHandler())
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// maxRequestBytes bounds run/sweep request bodies. The largest
// legitimate request is a sweep naming every workload, variant and
// machine — well under a kilobyte — so a megabyte leaves generous
// headroom while keeping admission control ahead of body buffering
// (an unbounded json.Decoder would buffer an arbitrarily large value
// before MaxCells or MaxInFlight were ever consulted).
const maxRequestBytes = 1 << 20

// errorBody writes a JSON error document with the given status.
func errorBody(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// admit applies backpressure: it reserves an in-flight slot or
// rejects the request with 503. The returned release must be called
// exactly once when admission succeeded.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if n := s.stats.inFlight.Add(1); int(n) > s.cfg.maxInFlight() {
		s.stats.inFlight.Add(-1)
		s.stats.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		errorBody(w, http.StatusServiceUnavailable, "server at capacity (%d requests in flight)", s.cfg.maxInFlight())
		return nil, false
	}
	return func() { s.stats.inFlight.Add(-1) }, true
}

// requestCtx ties a computation to both the client connection and the
// server lifecycle: whichever cancels first stops the grid.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// failStatus maps a computation error to an HTTP status.
func failStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or the server is shutting down; 503
		// tells well-behaved retrying clients to come back.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// failRequest writes the failure document for a post-admission
// computation error. A request that exhausted its server-side
// deadline budget gets 504 with a machine-readable body (timeout flag
// plus the budget, so clients can distinguish "raise my deadline"
// from "server is sick"); cancellation and shutdown get 503 with
// Retry-After — every 503 this server emits carries the header, so
// retrying clients never need to guess a backoff floor.
func (s *Server) failRequest(w http.ResponseWriter, ctx context.Context, err error, deadline time.Duration) {
	s.stats.errors.Add(1)
	if isDeadline(ctx, err) {
		s.stats.deadlineTimeouts.Add(1)
		obs.FromContext(ctx).SetOutcome(obs.OutcomeTimeout)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]any{
			"error":       ErrDeadline.Error(),
			"timeout":     true,
			"deadline_ms": deadline.Milliseconds(),
		})
		return
	}
	status := failStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	errorBody(w, status, "%v", err)
}

// writeJSON marshals the response body before touching the writer —
// the "encode" stage — then writes it in one shot, so the
// Server-Timing header stamped at WriteHeader already accounts for
// encoding.
func writeJSON(w http.ResponseWriter, ctx context.Context, v any) {
	sp := obs.Start(ctx, "encode")
	body, err := json.Marshal(v)
	sp.End()
	if err != nil {
		errorBody(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sp := obs.Start(r.Context(), "parse")
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		sp.End()
		s.stats.errors.Add(1)
		errorBody(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	scaleDiv := req.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = s.cfg.defaultScaleDiv()
	}
	rc, err := resolveCell(req, scaleDiv)
	sp.End()
	if err != nil {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusBadRequest, "%v", err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ctx, cancelD := deadlineCtx(ctx, s.cfg.RunDeadline)
	defer cancelD()

	c, err := s.runCell(ctx, rc)
	if err != nil {
		s.failRequest(w, ctx, err, s.cfg.RunDeadline)
		return
	}
	run := runner.NewRun(rc.cell.workload, rc.cell.variant, rc.cell.machine, s.scaleOf(rc), c)
	writeJSON(w, ctx, run)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sp := obs.Start(r.Context(), "parse")
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		sp.End()
		s.stats.errors.Add(1)
		errorBody(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	scaleDiv := req.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = s.cfg.defaultScaleDiv()
	}
	groups, err := resolveSweep(req, scaleDiv)
	sp.End()
	if err != nil {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells := 0
	for _, g := range groups {
		cells += len(g.cells)
	}
	if max := s.cfg.maxCells(); cells > max {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusRequestEntityTooLarge, "sweep resolves to %d cells (limit %d)", cells, max)
		return
	}
	grid := gridHash(groups)
	var preDone []int
	if req.Resume != "" {
		preDone, err = decodeCursor(req.Resume, grid, len(groups))
		if err != nil {
			s.stats.errors.Add(1)
			errorBody(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ctx, cancelD := deadlineCtx(ctx, s.cfg.SweepDeadline)
	defer cancelD()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	writeLine := func(line SweepLine) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// A resume cursor marks groups a previous response already
	// delivered; they are skipped entirely. Only the remaining grid
	// is dispatched, and cursors stay cumulative over the whole grid
	// so the client can lose this stream too and resume again.
	doneIdx := make([]bool, len(groups))
	skippedCells := 0
	for _, i := range preDone {
		doneIdx[i] = true
		skippedCells += len(groups[i].cells)
	}
	if req.Resume != "" {
		s.stats.sweepResumes.Add(1)
	}
	todo := make([]int, 0, len(groups))
	for i := range groups {
		if !doneIdx[i] {
			todo = append(todo, i)
		}
	}

	// One pool job per group: groups stream out as they complete
	// while Suite.RunSpecs shares each group's trace decode
	// internally. Failures are per-group — every cell of a failed
	// group reports the error, and failed groups stay out of the
	// cursor so a resume retries them — and never abort the remaining
	// groups. processed records which groups the closure actually
	// handled: runner.Map skips jobs it never dispatches after a
	// cancellation without invoking the closure, and those groups
	// still owe the client error lines and an honest errors count.
	errCells := 0
	var emu sync.Mutex
	failGroup := func(g group, err error) {
		emu.Lock()
		errCells += len(g.cells)
		emu.Unlock()
		for _, rc := range g.cells {
			writeLine(SweepLine{
				Workload: rc.cell.workload, Variant: rc.cell.variant,
				Machine: rc.cell.machine, Error: err.Error(),
			})
		}
	}
	// markDone admits a group into the cursor and renders the token
	// under the same lock, so every emitted cursor is a consistent
	// prefix of completion history (a token containing group G is
	// always written after G's cells).
	markDone := func(gi int) string {
		emu.Lock()
		defer emu.Unlock()
		doneIdx[gi] = true
		return encodeCursor(grid, doneIdx)
	}
	processed := make([]bool, len(todo))
	_, _ = runner.Map(ctx, len(todo), runner.Options{Jobs: s.cfg.Jobs},
		func(ctx context.Context, ti int) (struct{}, error) {
			processed[ti] = true
			g := groups[todo[ti]]
			res, err := s.runGroup(ctx, g)
			if err != nil {
				failGroup(g, err)
				return struct{}{}, nil
			}
			for _, rc := range g.cells {
				run := runner.NewRun(rc.cell.workload, rc.cell.variant, rc.cell.machine,
					s.scaleOf(rc), res[rc.cell.machine])
				writeLine(SweepLine{Run: &run})
			}
			writeLine(SweepLine{Cursor: markDone(todo[ti])})
			return struct{}{}, nil
		})
	for ti, gi := range todo {
		if !processed[ti] {
			failGroup(groups[gi], fmt.Errorf("skipped: %w", context.Cause(ctx)))
		}
	}
	if errCells > 0 {
		s.stats.errors.Add(1)
	}
	// A sweep that ran out of its budget mid-stream cannot 504 (the
	// header is long gone) — the skipped groups carry per-cell
	// deadline errors instead — but it still counts as a timeout and
	// reports as one in /debug/requests.
	if isDeadline(ctx, nil) {
		s.stats.deadlineTimeouts.Add(1)
		obs.FromContext(ctx).SetOutcome(obs.OutcomeTimeout)
	}
	writeLine(SweepLine{Done: true, Cells: cells - skippedCells, Groups: len(todo),
		Errors: errCells, Skipped: len(preDone)})
}

// handleDiff serves POST /v1/diff: an instruction-aligned comparison
// of two traces resident in the disk cache. Identical concurrent
// requests coalesce onto one computation and share its marshaled
// body, so duplicates are byte-identical.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Traces == nil {
		errorBody(w, http.StatusNotFound, "no trace cache configured")
		return
	}
	sp := obs.Start(r.Context(), "parse")
	var req DiffRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		sp.End()
		s.stats.errors.Add(1)
		errorBody(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	sp.End()
	if !disptrace.ValidID(req.A) || !disptrace.ValidID(req.B) {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusBadRequest, "a and b must be trace content addresses (see GET /v1/traces)")
		return
	}
	n := req.N
	if n <= 0 {
		n = DefaultDiffDetail
	}
	if n > MaxDiffDetail {
		n = MaxDiffDetail
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ctx, cancelD := deadlineCtx(ctx, s.cfg.DiffDeadline)
	defer cancelD()

	body, joined, err := s.runDiff(ctx, diffKey{a: req.A, b: req.B, n: n})
	if joined && err == nil {
		s.stats.coalescedDiffs.Add(1)
	}
	if err != nil {
		switch {
		case errors.Is(err, disptrace.ErrNoTrace):
			s.stats.errors.Add(1)
			errorBody(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, disptrace.ErrMismatched):
			s.stats.errors.Add(1)
			errorBody(w, http.StatusBadRequest, "%v", err)
		default:
			s.failRequest(w, ctx, err, s.cfg.DiffDeadline)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Traces == nil {
		errorBody(w, http.StatusNotFound, "no trace cache configured")
		return
	}
	sp := obs.Start(r.Context(), "trace_load")
	entries, err := s.cfg.Traces.List()
	sp.End()
	if err != nil {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusInternalServerError, "reading trace cache: %v", err)
		return
	}
	list := TraceList{Count: len(entries), Traces: entries}
	if list.Traces == nil {
		list.Traces = []disptrace.CacheEntry{}
	}
	writeJSON(w, r.Context(), list)
}

func (s *Server) handleTraceInfo(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Traces == nil {
		errorBody(w, http.StatusNotFound, "no trace cache configured")
		return
	}
	id := r.PathValue("id")
	sp := obs.Start(r.Context(), "trace_load")
	t, size, err := s.cfg.Traces.LoadID(id)
	sp.End()
	if errors.Is(err, disptrace.ErrNoTrace) {
		errorBody(w, http.StatusNotFound, "no trace %s", id)
		return
	} else if err != nil {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusInternalServerError, "%v", err)
		return
	}
	h := t.Header
	info := TraceInfo{
		ID: id, FileBytes: size,
		Workload: h.Workload, Lang: h.Lang, Variant: h.Variant, Technique: h.Technique,
		Scale: h.Scale, ScaleDiv: h.ScaleDiv, MaxSteps: h.MaxSteps,
		Records: h.Records, Dispatches: h.Dispatches, VMInsts: h.VMInstructions,
		Segments: len(t.Segs), Seekable: t.Indexed(),
	}
	for _, seg := range t.Segs {
		info.StoredBytes += len(seg.Data)
		info.RawBytes += seg.RawLen()
	}
	writeJSON(w, r.Context(), info)
}

// handleTraceRaw serves the stored bytes of one cached trace file —
// what a peer instance fetches to fill its own miss. It reads only
// what is locally resident (ReadRaw never recurses into the fill
// hooks, so two instances missing the same key cannot chase each
// other) and the requesting peer verifies the payload against the
// content address.
func (s *Server) handleTraceRaw(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Traces == nil {
		errorBody(w, http.StatusNotFound, "no trace cache configured")
		return
	}
	id := r.PathValue("id")
	b, err := s.cfg.Traces.ReadRaw(id)
	if errors.Is(err, disptrace.ErrNoTrace) {
		errorBody(w, http.StatusNotFound, "no trace %s", id)
		return
	} else if err != nil {
		s.stats.errors.Add(1)
		errorBody(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sp := obs.Start(r.Context(), "encode")
	body, err := json.MarshalIndent(s.stats.snapshot(s), "", "  ")
	sp.End()
	if err != nil {
		errorBody(w, http.StatusInternalServerError, "encoding stats: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
