package serve

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"vmopt/internal/cpu"
	"vmopt/internal/disptrace"
	"vmopt/internal/harness"
	"vmopt/internal/runner"
	"vmopt/internal/workload"
)

// RunRequest asks for one (workload, variant, machine) cell of the
// experiment space — the body of POST /v1/run.
type RunRequest struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Machine  string `json:"machine"`
	// ScaleDiv divides the workload's default scale; <= 0 means the
	// server's default.
	ScaleDiv int `json:"scalediv,omitempty"`
}

// SweepRequest asks for a grid of cells — the body of POST /v1/sweep.
// Empty Variants or Machines default to every variant of each
// workload's language and every predefined machine model; Workloads
// must be explicit (an accidental all-benchmarks sweep is the
// expensive mistake this API exists to make deliberate). Duplicate
// names in any list are deduplicated, so repeating one never doubles
// cells or trips the grid-size bound.
type SweepRequest struct {
	Workloads []string `json:"workloads"`
	Variants  []string `json:"variants,omitempty"`
	Machines  []string `json:"machines,omitempty"`
	ScaleDiv  int      `json:"scalediv,omitempty"`
	// Resume is a cursor token from a previous, interrupted response
	// to this same sweep (the cursor lines the stream interleaves):
	// groups the cursor marks done are skipped and only the remaining
	// grid is computed and streamed. A cursor issued for a different
	// grid (other workloads/variants/machines/scalediv) is rejected.
	Resume string `json:"resume,omitempty"`
}

// SweepLine is one NDJSON line of a sweep response: a completed cell,
// a failed group cell, a resume cursor, or the final summary. Exactly
// one of Run, Error, Cursor or Done is meaningful per line. Lines are
// emitted as cells complete, so their order varies between identical
// requests; their multiset does not.
type SweepLine struct {
	Run *runner.Run `json:"run,omitempty"`

	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Machine  string `json:"machine,omitempty"`
	Error    string `json:"error,omitempty"`

	// Cursor is a resume token covering every group completed so far
	// (cumulative, including groups a resumed request skipped). A
	// client that loses the stream re-requests the sweep with the
	// last cursor it saw as SweepRequest.Resume and receives exactly
	// the remaining groups. Each successful group emits one cursor
	// line after its cells.
	Cursor string `json:"cursor,omitempty"`

	Done   bool `json:"done,omitempty"`
	Cells  int  `json:"cells,omitempty"`
	Groups int  `json:"groups,omitempty"`
	Errors int  `json:"errors,omitempty"`
	// Skipped, on the summary line, counts groups a resume cursor
	// marked done and this response did not re-stream.
	Skipped int `json:"skipped,omitempty"`
}

// TraceInfo is the metadata GET /v1/traces/{id} reports about one
// cached dispatch trace.
type TraceInfo struct {
	ID          string `json:"id"`
	FileBytes   int64  `json:"file_bytes"`
	Workload    string `json:"workload"`
	Lang        string `json:"lang"`
	Variant     string `json:"variant"`
	Technique   string `json:"technique"`
	Scale       uint64 `json:"scale"`
	ScaleDiv    uint64 `json:"scalediv"`
	MaxSteps    uint64 `json:"max_steps"`
	Records     uint64 `json:"records"`
	Dispatches  uint64 `json:"dispatches"`
	VMInsts     uint64 `json:"vm_instructions"`
	Segments    int    `json:"segments"`
	StoredBytes int    `json:"stored_bytes"`
	RawBytes    int    `json:"raw_bytes"`
	// Seekable marks a v3 trace whose segment index carries VM
	// instruction counts (cursors seek instead of scanning; /v1/diff
	// aligns two of these cheaply).
	Seekable bool `json:"seekable"`
}

// DiffRequest asks for an instruction-aligned comparison of two
// cached traces — the body of POST /v1/diff. A and B are trace
// content addresses from GET /v1/traces; N bounds how many
// divergences are detailed (DefaultDiffDetail when zero).
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	N int    `json:"n,omitempty"`
}

// DiffResponse is the POST /v1/diff document: the requested pair plus
// the alignment report.
type DiffResponse struct {
	A      string                `json:"a"`
	B      string                `json:"b"`
	Report *disptrace.DiffReport `json:"report"`
}

// TraceList is the GET /v1/traces index: every trace resident in the
// on-disk cache (rows come straight from disptrace.Cache.List — the
// cache owns its file layout).
type TraceList struct {
	Count  int                    `json:"count"`
	Traces []disptrace.CacheEntry `json:"traces"`
}

// cell identifies one experiment cell at a resolved scale divisor —
// the key of the in-memory result LRU and the single-run flight.
type cell struct {
	workload string
	variant  string
	machine  string
	scaleDiv int
}

// resolved is a validated cell with its live objects.
type resolved struct {
	cell cell
	w    *workload.Workload
	v    harness.Variant
	m    cpu.Machine
}

// group is the unit of sweep execution and coalescing: every cell of
// one (workload, variant, scalediv) that the request wants, in
// request machine order. Grouped cells share one trace decode via
// Suite.RunSpecs.
type group struct {
	key   string // canonical coalescing key, machines sorted
	cells []resolved
}

// resolveCell validates a RunRequest against the registries.
func resolveCell(req RunRequest, scaleDiv int) (resolved, error) {
	w, err := workload.ByName(req.Workload)
	if err != nil {
		return resolved{}, err
	}
	v, err := harness.VariantByName(w, req.Variant)
	if err != nil {
		return resolved{}, err
	}
	m, err := cpu.MachineByName(req.Machine)
	if err != nil {
		return resolved{}, err
	}
	return resolved{
		cell: cell{workload: w.Name, variant: v.Name, machine: m.Name, scaleDiv: scaleDiv},
		w:    w, v: v, m: m,
	}, nil
}

// resolveSweep expands a SweepRequest into execution groups. Variants
// that exist for some requested workloads but not others (the paper's
// Forth and JVM variant lists differ) apply only where they exist; a
// variant or machine that matches nothing is an error.
func resolveSweep(req SweepRequest, scaleDiv int) ([]group, error) {
	if len(req.Workloads) == 0 {
		return nil, fmt.Errorf("workloads must be non-empty")
	}
	ws := make([]*workload.Workload, 0, len(req.Workloads))
	seenW := map[string]bool{}
	for _, name := range req.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		if !seenW[w.Name] {
			seenW[w.Name] = true
			ws = append(ws, w)
		}
	}

	machines := make([]cpu.Machine, 0, len(req.Machines))
	if len(req.Machines) == 0 {
		machines = cpu.Machines()
	} else {
		seen := map[string]bool{}
		for _, name := range req.Machines {
			m, err := cpu.MachineByName(name)
			if err != nil {
				return nil, err
			}
			if !seen[m.Name] {
				seen[m.Name] = true
				machines = append(machines, m)
			}
		}
	}

	variantNames := req.Variants
	variantUsed := make(map[string]bool, len(variantNames))

	var groups []group
	for _, w := range ws {
		var vs []harness.Variant
		if len(variantNames) == 0 {
			if w.Lang == "forth" {
				vs = harness.ForthVariants()
			} else {
				vs = harness.JavaVariants()
			}
		} else {
			seen := map[string]bool{}
			for _, name := range variantNames {
				v, err := harness.VariantByName(w, name)
				if err != nil {
					continue // not defined for this workload's language
				}
				variantUsed[name] = true
				if !seen[v.Name] {
					seen[v.Name] = true
					vs = append(vs, v)
				}
			}
		}
		for _, v := range vs {
			g := group{cells: make([]resolved, 0, len(machines))}
			for _, m := range machines {
				g.cells = append(g.cells, resolved{
					cell: cell{workload: w.Name, variant: v.Name, machine: m.Name, scaleDiv: scaleDiv},
					w:    w, v: v, m: m,
				})
			}
			g.key = groupKey(w.Name, v.Name, scaleDiv, machines)
			groups = append(groups, g)
		}
	}
	for _, name := range variantNames {
		if !variantUsed[name] {
			return nil, fmt.Errorf("variant %q matches none of the requested workloads", name)
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("sweep resolves to no cells")
	}
	return groups, nil
}

// gridHash fingerprints a resolved sweep grid: a short digest over
// the deterministic group-key sequence. Cursors embed it so a token
// can only resume the sweep it was issued for.
func gridHash(groups []group) string {
	keys := make([]string, len(groups))
	for i, g := range groups {
		keys[i] = g.key
	}
	return SweepGridHash(keys)
}

// sweepCursor is the decoded form of a resume token: which groups of
// which grid are already done. The wire form is base64url-encoded
// JSON — opaque to clients, but debuggable by hand.
type sweepCursor struct {
	V    int    `json:"v"`
	Grid string `json:"grid"`
	Done []int  `json:"done"`
}

// encodeCursor renders a resume token for the groups marked done.
func encodeCursor(grid string, done []bool) string {
	c := sweepCursor{V: 1, Grid: grid}
	for i, d := range done {
		if d {
			c.Done = append(c.Done, i)
		}
	}
	b, _ := json.Marshal(c)
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor validates a resume token against the grid the request
// resolved to and returns the done group indices.
func decodeCursor(token, grid string, n int) ([]int, error) {
	b, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return nil, fmt.Errorf("resume cursor is not base64url: %v", err)
	}
	var c sweepCursor
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("resume cursor is not valid: %v", err)
	}
	if c.V != 1 {
		return nil, fmt.Errorf("resume cursor version %d not supported", c.V)
	}
	if c.Grid != grid {
		return nil, fmt.Errorf("resume cursor was issued for a different sweep grid")
	}
	for _, i := range c.Done {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("resume cursor references group %d of a %d-group grid", i, n)
		}
	}
	return c.Done, nil
}

// SweepGroup is the routing view of one sweep execution group: the
// (workload, variant, scalediv) whose cells share a dispatch trace,
// plus the resolved machine names in request order. The cluster
// router decomposes a sweep into these, forwards each to the owner of
// its cell key, and stitches the streams back together; Key is the
// same canonical coalescing key the serving tier's group flight uses,
// so router-side cursors and server-side cursors hash the same grid.
type SweepGroup struct {
	Key      string
	Workload string
	Variant  string
	ScaleDiv int
	Machines []string
}

// ResolveSweepGroups expands a SweepRequest exactly as POST /v1/sweep
// does — same workload dedup, per-language variant defaulting and
// validation errors — but returns the routing view instead of
// executing anything.
func ResolveSweepGroups(req SweepRequest, defaultScaleDiv int) ([]SweepGroup, error) {
	scaleDiv := req.ScaleDiv
	if scaleDiv <= 0 {
		scaleDiv = defaultScaleDiv
	}
	if scaleDiv <= 0 {
		scaleDiv = 1
	}
	groups, err := resolveSweep(req, scaleDiv)
	if err != nil {
		return nil, err
	}
	out := make([]SweepGroup, len(groups))
	for i, g := range groups {
		sg := SweepGroup{Key: g.key, ScaleDiv: scaleDiv}
		if len(g.cells) > 0 {
			sg.Workload = g.cells[0].cell.workload
			sg.Variant = g.cells[0].cell.variant
		}
		sg.Machines = make([]string, len(g.cells))
		for j, rc := range g.cells {
			sg.Machines[j] = rc.cell.machine
		}
		out[i] = sg
	}
	return out, nil
}

// SweepGridHash fingerprints a grid from its canonical group-key
// sequence — the exported form of what sweep cursors bind to, so the
// router issues and validates cursors over the same fingerprint space
// as a single instance.
func SweepGridHash(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		io.WriteString(h, k)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// EncodeSweepCursor renders a resume token for the groups marked
// done, and DecodeSweepCursor validates one against a grid — the
// exported cursor codec the router shares with the sweep handler.
func EncodeSweepCursor(grid string, done []bool) string {
	return encodeCursor(grid, done)
}

// DecodeSweepCursor validates a resume token against the grid
// fingerprint and group count, returning the done group indices.
func DecodeSweepCursor(token, grid string, n int) ([]int, error) {
	return decodeCursor(token, grid, n)
}

// groupKey canonicalizes a group for coalescing: identical concurrent
// sweeps — and overlapping sweeps that share a whole group — land on
// one computation regardless of machine order in the request.
func groupKey(workload, variant string, scaleDiv int, machines []cpu.Machine) string {
	names := make([]string, len(machines))
	for i, m := range machines {
		names[i] = m.Name
	}
	sort.Strings(names)
	return fmt.Sprintf("%s|%s|%d|%s", workload, variant, scaleDiv, strings.Join(names, "+"))
}
