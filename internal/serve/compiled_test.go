package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"vmopt/internal/disptrace"
	"vmopt/internal/obs"
)

// TestCompiledTierServing drives the compiled-replay tier end to end:
// one workload/variant across three machines shares one cached trace,
// so with CompileAfter=1 the second request's disk load builds the
// arena and the third is served straight from it. Responses must stay
// byte-identical to the direct harness result, the request outcome
// must report "compiled", and the tier's activity must show up in both
// /v1/stats and /metrics.
func TestCompiledTierServing(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Traces:       disptrace.NewCache(t.TempDir()),
		CompileAfter: 1,
	})
	if s.cfg.Traces.Compiled == nil {
		t.Fatal("server did not install a compiled tier on its trace cache")
	}

	// Distinct machines miss the result LRU and the suite memo but
	// share the (workload, variant, scalediv) trace: request 1 records
	// it, request 2 loads it from disk (and compiles), request 3 is
	// served from the arena.
	machines := []string{"celeron-800", "pentium4-northwood", "pentium-m"}
	for i, m := range machines {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(
			`{"workload":"gray","variant":"plain","machine":"`+m+`","scalediv":400}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", "compiled-"+m)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (%s): HTTP %d: %s", i, m, resp.StatusCode, body)
		}
		if want := directRun(t, "gray", "plain", m); !bytes.Equal(body.Bytes(), want) {
			t.Fatalf("%s response differs from direct harness result:\ngot  %s\nwant %s", m, body, want)
		}
	}

	cs := s.cfg.Traces.CompiledStats()
	if cs.Builds == 0 || cs.Hits == 0 || cs.Bytes <= 0 || cs.Arenas == 0 {
		t.Fatalf("compiled tier saw no action: %+v", cs)
	}

	// The arena-served request reports the "compiled" outcome with a
	// "compiled" stage in its trace.
	debugBody, err := fetchOK(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dbg obs.DebugRequests
	if err := json.Unmarshal(debugBody, &dbg); err != nil {
		t.Fatal(err)
	}
	var last *obs.TraceSnapshot
	for i := range dbg.Recent {
		if dbg.Recent[i].ID == "compiled-pentium-m" {
			last = &dbg.Recent[i]
		}
	}
	if last == nil {
		t.Fatal("compiled-pentium-m trace not in /debug/requests")
	}
	if last.Outcome != "compiled" {
		t.Errorf("arena-served request outcome = %q, want compiled", last.Outcome)
	}
	found := false
	for _, st := range last.Stages {
		if st.Name == "compiled" {
			found = true
		}
	}
	if !found {
		t.Errorf("arena-served request has no compiled stage: %+v", last.Stages)
	}

	// /v1/stats carries the tier block under traces.compiled.
	statsBody, err := fetchOK(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Traces == nil || stats.Traces.Compiled == nil {
		t.Fatalf("/v1/stats lacks the compiled tier block: %s", statsBody)
	}
	if stats.Traces.Compiled.Builds == 0 || stats.Traces.Compiled.Hits == 0 {
		t.Errorf("/v1/stats compiled block shows no activity: %+v", stats.Traces.Compiled)
	}

	// /metrics exposes the tier counters with live values.
	metricsBody, err := fetchOK(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(metricsBody)
	for _, name := range []string{
		"vmserved_compiled_builds_total",
		"vmserved_compiled_hits_total",
		"vmserved_compiled_evictions_total",
		"vmserved_compiled_bytes",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
	if !strings.Contains(text, "vmserved_compiled_builds_total 1") {
		t.Errorf("/metrics vmserved_compiled_builds_total not 1:\n%s",
			grepLines(text, "vmserved_compiled"))
	}
}

// grepLines filters a metrics exposition to lines containing substr,
// for readable failure output.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestCompiledTierDisabled: a negative budget keeps the cache
// tier-free and serving exactly as before.
func TestCompiledTierDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Traces:         disptrace.NewCache(t.TempDir()),
		CompiledBudget: -1,
	})
	if s.cfg.Traces.Compiled != nil {
		t.Fatal("negative budget still installed a compiled tier")
	}
	for _, m := range []string{"celeron-800", "pentium-m"} {
		status, body := post(t, ts.URL+"/v1/run",
			RunRequest{Workload: "gray", Variant: "plain", Machine: m, ScaleDiv: testScaleDiv})
		if status != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", m, status, body)
		}
		if want := directRun(t, "gray", "plain", m); !bytes.Equal(body, want) {
			t.Fatalf("%s response differs from direct harness result", m)
		}
	}
	if cs := s.cfg.Traces.CompiledStats(); cs != (disptrace.CompiledStats{}) {
		t.Errorf("disabled tier reported stats: %+v", cs)
	}
}
