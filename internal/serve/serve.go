// Package serve exposes the whole experiment surface of the
// reproduction as a concurrent HTTP/JSON service: any (workload,
// variant, machine, scale) cell of the paper's evaluation — and any
// grid of cells — on demand, at production request rates.
//
// The endpoints (see cmd/vmserved):
//
//	POST /v1/run        one cell; returns a runner.Run JSON document
//	POST /v1/sweep      a grid of cells; streams NDJSON results
//	POST /v1/diff       instruction-aligned comparison of two cached traces
//	GET  /v1/traces     index of the on-disk dispatch-trace cache
//	GET  /v1/traces/{id}  metadata of one cached trace
//	GET  /v1/stats      cache hit rates, coalescing, latency percentiles
//	GET  /healthz       liveness
//
// Three tiers keep a hot serving path off the simulator entirely:
//
//  1. A bounded in-memory LRU (runner.LRU) of finished
//     metrics.Counters, keyed by cell. Hits cost a map lookup.
//  2. The harness suites' own caches — memoized results and trained
//     static instruction sets — shared across requests and bounded by
//     periodic resets (harness.Suite.DropResults).
//  3. The content-addressed on-disk dispatch-trace cache
//     (disptrace.Cache): a cell whose (workload, variant, scale)
//     stream was ever recorded replays it instead of re-running the
//     guest VM, and grouped sweep cells share one decode pass via
//     Suite.RunSpecs and disptrace.ReplayEach.
//
// Identical concurrent requests are coalesced through runner.Flight:
// a thundering herd asking for the same sweep costs one simulation,
// with every caller receiving byte-identical results (simulation is
// deterministic, so coalesced and direct results cannot differ).
// Admission control returns 503 once the configured number of
// requests is in flight, and each request's grid runs under that
// request's context, so a dropped client stops consuming the worker
// pool at the next cell boundary.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/faults"
	"vmopt/internal/harness"
	"vmopt/internal/metrics"
	"vmopt/internal/obs"
	"vmopt/internal/runner"
)

// Config parameterizes a Server. The zero value serves with sensible
// defaults and no disk trace cache.
type Config struct {
	// Traces, when non-nil, is the shared on-disk dispatch-trace cache
	// every suite records into and replays from.
	Traces *disptrace.Cache
	// CacheSize bounds the in-memory result LRU (entries); <= 0 means
	// DefaultCacheSize.
	CacheSize int
	// Jobs is the per-suite worker-pool parallelism (<= 0 means
	// GOMAXPROCS).
	Jobs int
	// MaxInFlight bounds concurrently executing /v1/run and /v1/sweep
	// requests; further requests are rejected with 503 until capacity
	// frees. <= 0 means DefaultMaxInFlight.
	MaxInFlight int
	// MaxCells bounds the grid size of one sweep request; <= 0 means
	// DefaultMaxCells.
	MaxCells int
	// DefaultScaleDiv applies when a request omits scalediv; <= 0
	// means 1 (full scale).
	DefaultScaleDiv int
	// MaxSuites bounds how many per-scalediv suites stay live; <= 0
	// means DefaultMaxSuites. Evicting a suite drops its memoized
	// results and trained sets; the LRU and trace cache keep hot
	// cells cheap.
	MaxSuites int
	// MaxSuiteResults bounds each suite's memoized result count;
	// beyond it the suite's results are dropped (tier 2 reset). <= 0
	// means DefaultMaxSuiteResults.
	MaxSuiteResults int
	// MaxSteps bounds each simulated run; 0 means the harness
	// default.
	MaxSteps uint64
	// RunDeadline, SweepDeadline and DiffDeadline bound how long one
	// admitted request of each kind may run server-side. A request
	// that exhausts its budget gets 504 with a machine-readable body
	// (or, mid-stream, per-cell deadline error lines) and its
	// computation is cancelled at the next cell boundary, releasing
	// the in-flight slot. 0 means no server-side deadline.
	RunDeadline   time.Duration
	SweepDeadline time.Duration
	DiffDeadline  time.Duration
	// Faults optionally injects failures at the serve.handler site
	// (stalls, forced 503s before any work) and the serve.compute
	// site (stalls and errors inside the compute path). nil injects
	// nothing. The trace cache's own injector is configured on
	// Traces.Faults.
	Faults *faults.Injector
	// AccessLog, when non-nil, receives one structured record per
	// instrumented request: request ID, endpoint, status, cache
	// outcome and latency.
	AccessLog *slog.Logger
	// InstanceID names this instance in a cluster: echoed on every
	// response as X-Served-By, reported in /v1/stats, and exported as
	// the vmserved_instance_info gauge. Empty disables all three.
	InstanceID string
	// DebugRecent and DebugSlowest size the /debug/requests trace
	// recorder (<= 0 picks obs defaults).
	DebugRecent  int
	DebugSlowest int
	// CompiledBudget bounds the in-memory compiled-replay arena tier
	// in bytes: hot cached traces are specialized into pre-decoded op
	// arenas and served with zero decode work. 0 means
	// DefaultCompiledBudget; < 0 disables the tier. Ignored when
	// Traces is nil or already carries a tier.
	CompiledBudget int64
	// CompileAfter is the disk-load count on which a hot trace earns
	// its arena; <= 0 means disptrace.DefaultCompileAfter.
	CompileAfter int
}

// Defaults for Config fields left zero.
const (
	DefaultCacheSize       = 4096
	DefaultMaxInFlight     = 64
	DefaultMaxCells        = 4096
	DefaultMaxSuites       = 4
	DefaultMaxSuiteResults = 16384
	// DefaultCompiledBudget is the arena tier's byte budget when the
	// config leaves it zero: 256 MiB holds roughly six gray-scale
	// full-size arenas (~32 B per logical event) — enough for a hot
	// working set without competing with the result caches for memory.
	DefaultCompiledBudget = int64(256) << 20
)

func (c Config) cacheSize() int {
	if c.CacheSize > 0 {
		return c.CacheSize
	}
	return DefaultCacheSize
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return DefaultMaxInFlight
}

func (c Config) maxCells() int {
	if c.MaxCells > 0 {
		return c.MaxCells
	}
	return DefaultMaxCells
}

func (c Config) defaultScaleDiv() int {
	if c.DefaultScaleDiv > 0 {
		return c.DefaultScaleDiv
	}
	return 1
}

func (c Config) maxSuites() int {
	if c.MaxSuites > 0 {
		return c.MaxSuites
	}
	return DefaultMaxSuites
}

func (c Config) maxSuiteResults() int {
	if c.MaxSuiteResults > 0 {
		return c.MaxSuiteResults
	}
	return DefaultMaxSuiteResults
}

func (c Config) compiledBudget() int64 {
	if c.CompiledBudget < 0 {
		return 0
	}
	if c.CompiledBudget > 0 {
		return c.CompiledBudget
	}
	return DefaultCompiledBudget
}

// Server is the simulation-as-a-service engine: tiered caches,
// request coalescing and the suite pool behind the HTTP handlers.
type Server struct {
	cfg Config

	// baseCtx parents every computation; Close cancels it so worker
	// pools stop dispatching during shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	lru *runner.LRU[cell, metrics.Counters]

	// computeSem bounds concurrently computing cells/groups across
	// the whole server. Per-request grids each spawn their own suite
	// worker pool; without a server-wide bound, MaxInFlight distinct
	// requests would run MaxInFlight x Jobs simulation goroutines and
	// thrash the scheduler instead of queueing. Cached and coalesced
	// work never touches the semaphore.
	computeSem chan struct{}

	runFlight   runner.Flight[cell, metrics.Counters]
	groupFlight runner.Flight[string, map[string]metrics.Counters]
	// diffFlight coalesces identical concurrent /v1/diff requests on
	// the marshaled response body, so duplicates are byte-identical by
	// construction.
	diffFlight runner.Flight[diffKey, []byte]

	// mu makes suiteFor's get-or-create atomic; the LRU itself is
	// already concurrency-safe and owns recency eviction.
	mu     sync.Mutex
	suites *runner.LRU[int, *harness.Suite]

	stats stats

	// recorder retains finished request traces for /debug/requests.
	recorder *obs.Recorder

	// notReady flips at the start of graceful shutdown (before
	// listeners close), turning GET /readyz into 503 so a router or LB
	// drains this instance instead of eating connection resets. The
	// zero value is ready — inverted so a fresh Server needs no
	// initialization to pass its first probe.
	notReady atomic.Bool
}

// SetReady flips the /readyz probe. cmd/vmserved calls SetReady(false)
// on SIGTERM, then waits the drain grace before closing listeners.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the current /readyz state.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// New builds a Server from the config.
func New(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.Traces != nil && cfg.Traces.Compiled == nil {
		// NewCompiledTier returns nil for a zero budget, which keeps
		// the tier disabled; the cache's tier hooks are all nil-safe.
		cfg.Traces.Compiled = disptrace.NewCompiledTier(cfg.compiledBudget(), cfg.CompileAfter)
	}
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		cancel:     cancel,
		lru:        runner.NewLRU[cell, metrics.Counters](cfg.cacheSize()),
		computeSem: make(chan struct{}, jobs),
		suites:     runner.NewLRU[int, *harness.Suite](cfg.maxSuites()),
		recorder:   obs.NewRecorder(cfg.DebugRecent, cfg.DebugSlowest),
	}
	s.stats.init(s)
	return s
}

// Registry exposes the server's metric registry — what GET /metrics
// renders and what cmd/vmserved hands to its debug listener.
func (s *Server) Registry() *metrics.Registry { return s.stats.reg }

// ErrDeadline marks a request that exhausted its server-side deadline
// budget. It is installed as the cancellation cause by deadlineCtx,
// so the failure path can tell a server-imposed timeout (504) from a
// client disconnect or shutdown (503) — both surface as context
// errors from the compute path.
var ErrDeadline = errors.New("request deadline exceeded")

// deadlineCtx applies one endpoint's server-side budget to an
// admitted request's context. d <= 0 means no deadline.
func deadlineCtx(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, d, ErrDeadline)
}

// isDeadline reports whether a computation failed because the
// request's server-side budget ran out (rather than a client
// cancel): the sentinel travels either in the error chain (paths that
// propagate context.Cause) or as the context's recorded cause.
func isDeadline(ctx context.Context, err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(context.Cause(ctx), ErrDeadline)
}

// acquireCompute takes one computation slot, honoring cancellation
// while queued. The returned release must be called when compute is
// done.
func (s *Server) acquireCompute(ctx context.Context) (release func(), err error) {
	// An already-expired context must lose even when a semaphore slot
	// is free (select picks randomly among ready cases): a request
	// whose deadline lapsed during an injected stall or while queued
	// behind the flight must not start computing.
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	select {
	case s.computeSem <- struct{}{}:
		return func() { <-s.computeSem }, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// Close cancels every in-flight computation's base context. In-flight
// grids stop dispatching new cells; already-running simulations finish.
func (s *Server) Close() { s.cancel() }

// suiteFor returns the shared suite for a scale divisor, creating it
// on first use; the suite LRU evicts the least recently used suite
// beyond the configured bound (in-flight users keep their reference;
// the evicted suite's caches simply stop being shared).
func (s *Server) suiteFor(scaleDiv int) *harness.Suite {
	s.mu.Lock()
	defer s.mu.Unlock()
	if suite, ok := s.suites.Get(scaleDiv); ok {
		return suite
	}
	suite := harness.NewSuite()
	suite.ScaleDiv = scaleDiv
	suite.Jobs = s.cfg.Jobs
	suite.Ctx = s.baseCtx
	suite.Traces = s.cfg.Traces
	if s.cfg.MaxSteps > 0 {
		suite.MaxSteps = s.cfg.MaxSteps
	}
	s.suites.Add(scaleDiv, suite)
	return suite
}

// suiteCount reports live suites for /v1/stats.
func (s *Server) suiteCount() int { return s.suites.Len() }

// boundSuite applies the tier-2 memory bound after a computation.
func (s *Server) boundSuite(suite *harness.Suite) {
	if suite.ResultCount() > s.cfg.maxSuiteResults() {
		suite.DropResults()
		s.stats.resultsDropped.Add(1)
	}
}

// coalesce runs compute at most once per concurrently requested key.
// Joins are cancellable (a dropped duplicate client releases its
// handler immediately; the leader runs to completion for whoever is
// left). When a cancelled leader poisons the shared outcome while
// this caller's own context is still live, the call retries and
// becomes (or joins) a fresh leader, so one dropped client never
// fails the herd that coalesced behind it.
func coalesce[K comparable, V any](ctx context.Context, f *runner.Flight[K, V], st *stats, key K, compute func() (V, error)) (v V, joined bool, err error) {
	for {
		v, leader, err := f.DoCtx(ctx, key, compute)
		if err != nil && !leader && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			st.canceledRetries.Add(1)
			continue
		}
		return v, !leader, err
	}
}

// runCell produces one cell's counters through the cache tiers:
// LRU, coalesced flight, suite (which itself consults its result
// cache and the disk trace cache).
func (s *Server) runCell(ctx context.Context, rc resolved) (metrics.Counters, error) {
	tr := obs.FromContext(ctx)
	if c, ok := s.lru.Get(rc.cell); ok {
		s.stats.lruHits.Add(1)
		tr.SetOutcome(obs.OutcomeHit)
		return c, nil
	}
	s.stats.lruMisses.Add(1)
	flightStart := time.Now()
	c, joined, err := coalesce(ctx, &s.runFlight, &s.stats, rc.cell, func() (metrics.Counters, error) {
		// Re-check: a fresh leader may start after a previous leader
		// published to the LRU but before this caller's outer lookup
		// saw it. Counted as a hit so the hits+coalesced accounting
		// covers every duplicate however the race lands.
		if c, ok := s.lru.Get(rc.cell); ok {
			s.stats.lruHits.Add(1)
			tr.SetOutcome(obs.OutcomeHit)
			return c, nil
		}
		s.cfg.Faults.Delay(faults.SiteCompute)
		if err := s.cfg.Faults.Err(faults.SiteCompute); err != nil {
			return metrics.Counters{}, err
		}
		sp := obs.Start(ctx, "queue")
		release, err := s.acquireCompute(ctx)
		sp.End()
		if err != nil {
			return metrics.Counters{}, err
		}
		defer release()
		suite := s.suiteFor(rc.cell.scaleDiv)
		compiledBefore := tr.StageDur("compiled")
		c, err := suite.RunCtx(ctx, rc.w, rc.v, rc.m)
		if err != nil {
			return metrics.Counters{}, err
		}
		s.lru.Add(rc.cell, c)
		s.stats.computedCells.Add(1)
		// A run whose replay was served from the compiled arena tier
		// (the replay attributes a "compiled" stage) reports that
		// instead of "computed"; by rank, real computation anywhere in
		// the request still wins.
		if tr.StageDur("compiled") > compiledBefore {
			tr.SetOutcome(obs.OutcomeCompiled)
		} else {
			tr.SetOutcome(obs.OutcomeComputed)
		}
		s.boundSuite(suite)
		return c, nil
	})
	if joined && err == nil {
		s.stats.coalescedRuns.Add(1)
		// The joiner's wait on the leader is only knowable after the
		// fact — attribute it now so its Server-Timing shows where the
		// time went.
		obs.Observe(ctx, "flight", time.Since(flightStart))
		tr.SetOutcome(obs.OutcomeCoalesced)
	}
	return c, err
}

// runGroup produces every cell of one sweep group. Cells all resident
// in the LRU are served from it; otherwise the whole group is
// computed behind one coalesced flight, sharing a single trace decode
// across its machines via Suite.RunSpecs.
func (s *Server) runGroup(ctx context.Context, g group) (map[string]metrics.Counters, error) {
	tr := obs.FromContext(ctx)
	out := make(map[string]metrics.Counters, len(g.cells))
	hits := 0
	for _, rc := range g.cells {
		if c, ok := s.lru.Get(rc.cell); ok {
			out[rc.cell.machine] = c
			hits++
		}
	}
	// Hit accounting is per lookup, not per group: a group with one
	// evicted cell still credits its resident cells, so /v1/stats
	// reflects how much of the traffic the LRU actually absorbed.
	s.stats.lruHits.Add(uint64(hits))
	s.stats.lruMisses.Add(uint64(len(g.cells) - hits))
	if hits == len(g.cells) {
		tr.SetOutcome(obs.OutcomeHit)
		return out, nil
	}

	flightStart := time.Now()
	res, joined, err := coalesce(ctx, &s.groupFlight, &s.stats, g.key, func() (map[string]metrics.Counters, error) {
		// Re-check: a previous leader may have published every cell
		// between this caller's scan and its flight entry; don't
		// recompute (or recount) what the LRU already holds.
		m := make(map[string]metrics.Counters, len(g.cells))
		for _, rc := range g.cells {
			c, ok := s.lru.Get(rc.cell)
			if !ok {
				break
			}
			m[rc.cell.machine] = c
		}
		if len(m) == len(g.cells) {
			tr.SetOutcome(obs.OutcomeHit)
			return m, nil
		}
		s.cfg.Faults.Delay(faults.SiteCompute)
		if err := s.cfg.Faults.Err(faults.SiteCompute); err != nil {
			return nil, err
		}
		sp := obs.Start(ctx, "queue")
		release, err := s.acquireCompute(ctx)
		sp.End()
		if err != nil {
			return nil, err
		}
		defer release()
		suite := s.suiteFor(g.cells[0].cell.scaleDiv)
		specs := make([]harness.RunSpec, len(g.cells))
		for i, rc := range g.cells {
			specs[i] = harness.RunSpec{W: rc.w, V: rc.v, M: rc.m}
		}
		compiledBefore := tr.StageDur("compiled")
		cs, err := suite.RunSpecsCtx(ctx, specs)
		if err != nil {
			return nil, err
		}
		clear(m)
		for i, rc := range g.cells {
			m[rc.cell.machine] = cs[i]
			s.lru.Add(rc.cell, cs[i])
		}
		s.stats.computedGroups.Add(1)
		s.stats.computedCells.Add(uint64(len(g.cells)))
		// As in runCell: an arena-served group replay reports
		// "compiled"; any group that truly computed outranks it.
		if tr.StageDur("compiled") > compiledBefore {
			tr.SetOutcome(obs.OutcomeCompiled)
		} else {
			tr.SetOutcome(obs.OutcomeComputed)
		}
		s.boundSuite(suite)
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	if joined {
		s.stats.coalescedGroups.Add(1)
		obs.Observe(ctx, "flight", time.Since(flightStart))
		tr.SetOutcome(obs.OutcomeCoalesced)
	}
	return res, nil
}

// scaleOf reports the concrete scale a cell runs at, for result
// records. It is a pure computation — LRU-hit responses must not
// touch the suite pool (instantiating or evicting suites) just to
// label their scale.
func (s *Server) scaleOf(rc resolved) int {
	return harness.ScaleAt(rc.w, rc.cell.scaleDiv)
}

// diffKey identifies one /v1/diff computation for coalescing.
type diffKey struct {
	a, b string
	n    int
}

// DefaultDiffDetail is how many divergences a diff details when the
// request does not say; MaxDiffDetail caps what it may ask for.
const (
	DefaultDiffDetail = 5
	MaxDiffDetail     = 256
)

// runDiff produces the marshaled /v1/diff response for a pair of
// cached trace IDs: both traces are loaded from the disk cache,
// aligned by VM instruction index, and the report serialized once —
// identical concurrent requests coalesce onto that single computation
// and therefore receive byte-identical bodies. Decoding and walking
// two full traces is real work, so it runs under a compute slot like
// simulations do.
func (s *Server) runDiff(ctx context.Context, k diffKey) ([]byte, bool, error) {
	tr := obs.FromContext(ctx)
	flightStart := time.Now()
	body, joined, err := coalesce(ctx, &s.diffFlight, &s.stats, k, func() ([]byte, error) {
		sp := obs.Start(ctx, "queue")
		release, err := s.acquireCompute(ctx)
		sp.End()
		if err != nil {
			return nil, err
		}
		defer release()
		sp = obs.Start(ctx, "trace_load")
		a, _, err := s.cfg.Traces.LoadID(k.a)
		if err != nil {
			sp.End()
			return nil, err
		}
		b, _, err := s.cfg.Traces.LoadID(k.b)
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = obs.Start(ctx, "diff")
		report, err := disptrace.DiffTraces(a, b, k.n)
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = obs.Start(ctx, "encode")
		body, err := json.Marshal(DiffResponse{A: k.a, B: k.b, Report: report})
		sp.End()
		if err != nil {
			return nil, err
		}
		s.stats.computedDiffs.Add(1)
		tr.SetOutcome(obs.OutcomeComputed)
		return append(body, '\n'), nil
	})
	if joined && err == nil {
		obs.Observe(ctx, "flight", time.Since(flightStart))
		tr.SetOutcome(obs.OutcomeCoalesced)
	}
	return body, joined, err
}
