package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/faults"
	"vmopt/internal/runner"
)

// postResp is post with access to the response headers.
func postResp(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestDeadlineExceededReturns504: a request that exhausts its
// server-side budget gets 504 with the machine-readable timeout body,
// counts into the deadline-timeout metric, reports outcome "timeout",
// and releases its in-flight slot so the next request runs normally.
func TestDeadlineExceededReturns504(t *testing.T) {
	inj := faults.New(&faults.Spec{Faults: []faults.Rule{{
		Site: faults.SiteCompute, Mode: faults.ModeLatency,
		Nth: 1, Limit: 1, Latency: faults.Duration(300 * time.Millisecond),
	}}})
	s, ts := newTestServer(t, Config{RunDeadline: 30 * time.Millisecond, Faults: inj})

	req := RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv}
	resp := postResp(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled run: HTTP %d, want 504", resp.StatusCode)
	}
	var body struct {
		Error      string `json:"error"`
		Timeout    bool   `json:"timeout"`
		DeadlineMS int64  `json:"deadline_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("504 body is not the timeout document: %v", err)
	}
	if !body.Timeout || body.DeadlineMS != 30 || body.Error == "" {
		t.Fatalf("timeout body = %+v", body)
	}
	if got := s.stats.deadlineTimeouts.Load(); got != 1 {
		t.Errorf("deadline timeouts = %d, want 1", got)
	}
	if got := s.stats.inFlight.Load(); got != 0 {
		t.Errorf("in-flight slot not released: %d", got)
	}

	// The injected stall is spent (limit 1): the same request now
	// completes inside the budget, proving the slot and the compute
	// path both recovered.
	status, out := post(t, ts.URL+"/v1/run", req)
	if status != http.StatusOK {
		t.Fatalf("run after timeout: HTTP %d: %s", status, out)
	}

	// The timed-out request reports outcome "timeout" in the debug
	// surface (it outranks the generic 4xx/5xx "error").
	dresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(dresp.Body)
	if !strings.Contains(buf.String(), `"outcome": "timeout"`) {
		t.Errorf("/debug/requests has no timeout outcome: %s", buf.String())
	}
}

// TestBackpressureSendsRetryAfter: every 503 the real server emits —
// admission control and injected unavailability alike — carries a
// Retry-After header, so retrying clients have a backoff floor.
func TestBackpressureSendsRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	s.stats.inFlight.Add(1) // occupy the slot deterministically
	req := RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv}
	resp := postResp(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run at capacity: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("admission-control 503 is missing Retry-After")
	}
	s.stats.inFlight.Add(-1)
}

// TestInjectedHandlerFaults: serve.handler unavailability answers 503
// with Retry-After before any work, counts as a rejection (so
// client/server backpressure accounting still cross-checks), and the
// next request is served normally.
func TestInjectedHandlerFaults(t *testing.T) {
	inj := faults.New(&faults.Spec{Faults: []faults.Rule{{
		Site: faults.SiteHandler, Mode: faults.ModeUnavailable, Nth: 1, Limit: 1,
	}}})
	s, ts := newTestServer(t, Config{Faults: inj})
	req := RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv}

	resp := postResp(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected unavailability: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 is missing Retry-After")
	}
	if got := s.stats.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1 (injected rejection must count as backpressure)", got)
	}
	if got := s.stats.computedCells.Load(); got != 0 {
		t.Errorf("rejected request computed %d cells", got)
	}

	status, out := post(t, ts.URL+"/v1/run", req)
	if status != http.StatusOK {
		t.Fatalf("run after spent fault: HTTP %d: %s", status, out)
	}
	if got := inj.Total(); got != 1 {
		t.Errorf("faults fired = %d, want 1", got)
	}
	// The armed injector surfaces on /v1/stats.
	var stats StatsResponse
	if status, body := post(t, ts.URL+"/v1/run", req); status != http.StatusOK {
		t.Fatalf("warm rerun: HTTP %d: %s", status, body)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Faults == nil || stats.Faults.Injected != 1 || stats.Faults.PerSite["serve.handler/unavailable"] != 1 {
		t.Errorf("stats.Faults = %+v, want 1 handler/unavailable fire", stats.Faults)
	}
	if stats.Requests.Rejected != 1 {
		t.Errorf("stats rejected = %d, want 1", stats.Requests.Rejected)
	}
}

// sweepBody runs one sweep and splits its lines.
func sweepBody(t *testing.T, url string, req SweepRequest) (runs []runner.Run, cursors []string, done SweepLine) {
	t.Helper()
	status, body := post(t, url+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", status, body)
	}
	sawDone := false
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		var l SweepLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case l.Done:
			done, sawDone = l, true
		case l.Run != nil:
			runs = append(runs, *l.Run)
		case l.Cursor != "":
			cursors = append(cursors, l.Cursor)
		default:
			t.Fatalf("sweep error line: %+v", l)
		}
	}
	if !sawDone {
		t.Fatalf("sweep missing done line")
	}
	return runs, cursors, done
}

// runKeys renders runs as sorted strings for multiset comparison.
func runKeys(runs []runner.Run) []string {
	keys := make([]string, len(runs))
	for i, r := range runs {
		b, _ := json.Marshal(r)
		keys[i] = string(b)
	}
	sort.Strings(keys)
	return keys
}

// TestSweepResume: a sweep interrupted after its first cursor resumes
// to exactly the remaining groups, the resumed cells are
// byte-identical to the full run's, the final cursor resumes to an
// empty remainder, and bad cursors are rejected.
func TestSweepResume(t *testing.T) {
	cache := disptrace.NewCache(t.TempDir())
	s, ts := newTestServer(t, Config{Traces: cache})
	req := SweepRequest{
		Workloads: []string{"gray"},
		Variants:  []string{"plain", "dynamic super"},
		ScaleDiv:  testScaleDiv,
	}
	groups, err := resolveSweep(req, testScaleDiv)
	if err != nil {
		t.Fatal(err)
	}
	grid := gridHash(groups)

	fullRuns, cursors, fullDone := sweepBody(t, ts.URL, req)
	if len(cursors) != len(groups) {
		t.Fatalf("full sweep emitted %d cursors, want one per group (%d)", len(cursors), len(groups))
	}
	if fullDone.Skipped != 0 || fullDone.Groups != len(groups) {
		t.Fatalf("full done = %+v", fullDone)
	}

	// Pretend the client dropped after the first cursor: resume must
	// deliver exactly the groups that cursor does not cover.
	firstDone, err := decodeCursor(cursors[0], grid, len(groups))
	if err != nil {
		t.Fatalf("first cursor does not decode: %v", err)
	}
	if len(firstDone) != 1 {
		t.Fatalf("first cursor covers %d groups, want 1", len(firstDone))
	}
	doneGroup := groups[firstDone[0]]

	resumeReq := req
	resumeReq.Resume = cursors[0]
	resRuns, resCursors, resDone := sweepBody(t, ts.URL, resumeReq)
	wantCells := 0
	for gi, g := range groups {
		if gi != firstDone[0] {
			wantCells += len(g.cells)
		}
	}
	if len(resRuns) != wantCells {
		t.Fatalf("resume streamed %d cells, want %d (the remaining groups)", len(resRuns), wantCells)
	}
	if resDone.Skipped != 1 || resDone.Groups != len(groups)-1 || resDone.Cells != wantCells || resDone.Errors != 0 {
		t.Fatalf("resume done = %+v", resDone)
	}
	for _, r := range resRuns {
		if r.Workload == doneGroup.cells[0].cell.workload && r.Variant == doneGroup.cells[0].cell.variant {
			t.Fatalf("resume re-streamed a cell of the done group: %+v", r)
		}
	}

	// Stitching the interrupted prefix (the done group's cells from
	// the full response) onto the resumed remainder reconstructs the
	// full grid byte-identically.
	var prefix []runner.Run
	for _, r := range fullRuns {
		if r.Workload == doneGroup.cells[0].cell.workload && r.Variant == doneGroup.cells[0].cell.variant {
			prefix = append(prefix, r)
		}
	}
	stitched := runKeys(append(prefix, resRuns...))
	want := runKeys(fullRuns)
	if fmt.Sprint(stitched) != fmt.Sprint(want) {
		t.Fatal("stitched prefix+resume differs from the full sweep")
	}

	// The resumed stream's last cursor covers the whole grid: one
	// more resume yields nothing but the summary.
	lastDone, err := decodeCursor(resCursors[len(resCursors)-1], grid, len(groups))
	if err != nil {
		t.Fatal(err)
	}
	if len(lastDone) != len(groups) {
		t.Fatalf("final cursor covers %d groups, want all %d", len(lastDone), len(groups))
	}
	resumeReq.Resume = resCursors[len(resCursors)-1]
	tailRuns, _, tailDone := sweepBody(t, ts.URL, resumeReq)
	if len(tailRuns) != 0 || tailDone.Skipped != len(groups) || tailDone.Groups != 0 {
		t.Fatalf("resume of a complete sweep: %d runs, done %+v", len(tailRuns), tailDone)
	}

	if got := s.stats.sweepResumes.Load(); got != 2 {
		t.Errorf("sweep resumes = %d, want 2", got)
	}

	// Rejections: garbage tokens and tokens for another grid.
	for name, bad := range map[string]SweepRequest{
		"garbage": func() SweepRequest { r := req; r.Resume = "not!base64"; return r }(),
		"other grid": func() SweepRequest {
			r := req
			r.Variants = []string{"plain"}
			r.Resume = cursors[0]
			return r
		}(),
	} {
		if status, body := post(t, ts.URL+"/v1/sweep", bad); status != http.StatusBadRequest {
			t.Errorf("%s cursor: HTTP %d (%s), want 400", name, status, body)
		}
	}
}

// TestRetriedRequestCounter: requests announcing X-Retry-Attempt > 0
// are counted server-side.
func TestRetriedRequestCounter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(RunRequest{Workload: "gray", Variant: "plain", Machine: "celeron-800", ScaleDiv: testScaleDiv})
	for attempt := 0; attempt < 3; attempt++ {
		hreq, err := http.NewRequest("POST", ts.URL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Retry-Attempt", fmt.Sprint(attempt))
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: HTTP %d", attempt, resp.StatusCode)
		}
	}
	if got := s.stats.retriedRequests.Load(); got != 2 {
		t.Errorf("retried requests = %d, want 2 (attempts 1 and 2)", got)
	}
}
