package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ParseExposition parses Prometheus text exposition format 0.0.4 into
// a flat map of series (name plus label set, verbatim) to value. It
// is deliberately strict for a scraper this small: any line that is
// neither a well-formed comment nor a well-formed sample is an error,
// which is what lets CI fail a run whose /metrics output would not
// scrape.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return nil, fmt.Errorf("metrics line %d: malformed comment %q", n, line)
			}
			continue
		}
		var key, val string
		if i := strings.Index(line, "{"); i >= 0 {
			// Label values may in principle contain spaces, so split at
			// the closing brace rather than the first space.
			j := strings.LastIndex(line, "} ")
			if j < i {
				return nil, fmt.Errorf("metrics line %d: unterminated label set %q", n, line)
			}
			key, val = line[:j+1], strings.TrimSpace(line[j+2:])
		} else {
			f := strings.Fields(line)
			if len(f) != 2 {
				return nil, fmt.Errorf("metrics line %d: want \"name value\", got %q", n, line)
			}
			key, val = f[0], f[1]
		}
		if key == "" || !(key[0] == '_' || key[0] == ':' ||
			key[0] >= 'a' && key[0] <= 'z' || key[0] >= 'A' && key[0] <= 'Z') {
			return nil, fmt.Errorf("metrics line %d: invalid metric name in %q", n, line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value %q: %v", n, val, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("metrics line %d: duplicate series %q", n, key)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScrapeMetrics fetches and parses a target's GET /metrics.
func ScrapeMetrics(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	return ParseExposition(resp.Body)
}

// parseServerTiming extracts per-stage millisecond durations from a
// Server-Timing header value ("lru;dur=0.012, sim;dur=41.3").
// Unparseable entries are skipped — the header is advisory latency
// attribution, not a correctness surface.
func parseServerTiming(v string) map[string]float64 {
	out := map[string]float64{}
	for _, entry := range strings.Split(v, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) < 2 || parts[0] == "" {
			continue
		}
		for _, p := range parts[1:] {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(p), "dur="); ok {
				if ms, err := strconv.ParseFloat(rest, 64); err == nil {
					out[parts[0]] += ms
				}
			}
		}
	}
	return out
}
