package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
)

// request is one reusable corpus entry. key identifies the logical
// request for the duplicate-divergence check; method "" means POST.
type request struct {
	key    string
	method string
	path   string
	body   []byte
	// sweep responses are NDJSON whose line order varies run to run;
	// normalize before hashing and scan lines for cell errors.
	sweep bool
	// volatile responses (the trace index, which grows as the run
	// records traces) are exempt from the divergence check.
	volatile bool
}

// corpus is the request population of one run, one rank-ordered slice
// per operation. Rank 0 of each op is its hottest entry under the
// spec's zipfian, so list order is popularity order.
type corpus struct {
	byOp map[string][]request
	zipf map[string]*Zipfian
}

// defaultRunMachines spreads single-cell load over the paper's
// primary models when the spec names no machines (/v1/run requires an
// explicit machine; /v1/sweep defaults server-side to all machines).
var defaultRunMachines = []string{"celeron-800", "pentium4-northwood", "pentium-m"}

// defaultVariants is the plain vs dynamic-superinstruction pair — the
// paper's headline comparison — used when the spec names no variants.
var defaultVariants = []string{"plain", "dynamic super"}

// buildCorpus expands the spec into the static per-op populations.
// The diff population cannot be built statically — it pairs trace IDs
// that only exist server-side — so it starts empty and is filled by
// prepareDiff after warm-up.
func buildCorpus(s *Spec) (*corpus, error) {
	variants := s.Variants
	if len(variants) == 0 {
		variants = defaultVariants
	}
	runMachines := s.Machines
	if len(runMachines) == 0 {
		runMachines = defaultRunMachines
	}
	c := &corpus{byOp: map[string][]request{}, zipf: map[string]*Zipfian{}}

	if _, ok := s.Ops[OpRun]; ok {
		for _, w := range s.Workloads {
			for _, v := range variants {
				for _, m := range runMachines {
					body, err := json.Marshal(map[string]any{
						"workload": w, "variant": v, "machine": m, "scalediv": s.ScaleDiv,
					})
					if err != nil {
						return nil, err
					}
					c.byOp[OpRun] = append(c.byOp[OpRun], request{
						key:  fmt.Sprintf("run|%s|%s|%s|%d", w, v, m, s.ScaleDiv),
						path: "/v1/run", body: body,
					})
				}
			}
		}
	}
	if _, ok := s.Ops[OpSweep]; ok {
		for _, w := range s.Workloads {
			payload := map[string]any{"workloads": []string{w}, "variants": variants, "scalediv": s.ScaleDiv}
			if len(s.Machines) > 0 {
				payload["machines"] = s.Machines
			}
			body, err := json.Marshal(payload)
			if err != nil {
				return nil, err
			}
			c.byOp[OpSweep] = append(c.byOp[OpSweep], request{
				key: fmt.Sprintf("sweep|%s|%s|%s|%d",
					w, strings.Join(variants, "+"), strings.Join(s.Machines, "+"), s.ScaleDiv),
				path: "/v1/sweep", body: body, sweep: true,
			})
		}
	}
	if _, ok := s.Ops[OpTraces]; ok {
		c.byOp[OpTraces] = []request{{
			key: "traces|list", method: http.MethodGet, path: "/v1/traces", volatile: true,
		}}
	}
	for op, reqs := range c.byOp {
		c.zipf[op] = NewZipfian(len(reqs), s.ZipfTheta)
	}
	return c, nil
}

// traceEntry is the subset of a GET /v1/traces row diff pairing
// needs. Traces are comparable when workload, lang and scalediv all
// match (the server rejects mismatched pairs with 400).
type traceEntry struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Lang     string `json:"lang"`
	Variant  string `json:"variant"`
	ScaleDiv uint64 `json:"scalediv"`
}

// prepareDiff fills the diff population by pairing the traces the
// warm-up phase recorded: every unordered pair of distinct-variant
// traces of one (workload, lang, scalediv). Pairing is deterministic
// (entries sorted by ID) so the same warm cache yields the same
// corpus on every host.
func (c *corpus) prepareDiff(client *http.Client, addr string, s *Spec) error {
	if _, ok := s.Ops[OpDiff]; !ok {
		return nil
	}
	resp, err := client.Get(addr + "/v1/traces")
	if err != nil {
		return fmt.Errorf("listing traces for diff corpus: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("listing traces for diff corpus: HTTP %d (is the server running with a trace cache?)", resp.StatusCode)
	}
	var list struct {
		Traces []traceEntry `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return fmt.Errorf("parsing trace index: %w", err)
	}
	sort.Slice(list.Traces, func(i, j int) bool { return list.Traces[i].ID < list.Traces[j].ID })
	wanted := map[string]bool{}
	for _, w := range s.Workloads {
		wanted[w] = true
	}
	var reqs []request
	for i, a := range list.Traces {
		if !wanted[a.Workload] || a.Variant == "" {
			continue
		}
		for _, b := range list.Traces[i+1:] {
			if b.Workload != a.Workload || b.Lang != a.Lang || b.ScaleDiv != a.ScaleDiv ||
				b.Variant == a.Variant || b.Variant == "" {
				continue
			}
			body, err := json.Marshal(map[string]any{"a": a.ID, "b": b.ID, "n": s.diffDetail()})
			if err != nil {
				return err
			}
			reqs = append(reqs, request{
				key:  fmt.Sprintf("diff|%s|%s|%d", a.ID, b.ID, s.diffDetail()),
				path: "/v1/diff", body: body,
			})
		}
	}
	if len(reqs) == 0 {
		return fmt.Errorf("diff op requested but no comparable trace pairs exist: warm up with run or sweep ops against a server started with a trace cache")
	}
	c.byOp[OpDiff] = reqs
	c.zipf[OpDiff] = NewZipfian(len(reqs), s.ZipfTheta)
	return nil
}

// pick draws one corpus entry for op using the caller's rng.
func (c *corpus) pick(op string, rng *rand.Rand) request {
	reqs := c.byOp[op]
	return reqs[c.zipf[op].Next(rng)]
}
