package loadgen

import (
	"bytes"
	"strings"
	"testing"

	"vmopt/internal/metrics"
)

// report builds a minimal gateable report.
func report(p99RunMS, p99SweepMS, errRate, rps float64) *Report {
	op := func(p99 float64) OpStats {
		return OpStats{
			Count:     100,
			ErrorRate: errRate,
			Latency:   metrics.HistogramSnapshot{Count: 100, P99MS: p99},
		}
	}
	return &Report{
		Schema:        SchemaVersion,
		ThroughputRPS: rps,
		Ops:           map[string]OpStats{OpRun: op(p99RunMS), OpSweep: op(p99SweepMS)},
	}
}

var testThresholds = Thresholds{P99Factor: 2, P99SlackMS: 10, MaxErrorRateDelta: 0.01, ThroughputFactor: 2}

func TestDiffPassesWithinThresholds(t *testing.T) {
	base := report(10, 50, 0, 100)
	// p99 below base*2+10, error rate below +0.01, throughput above /2.
	cur := report(25, 100, 0.005, 60)
	if regs := Diff(base, cur, testThresholds); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, nil, base, testThresholds); err != nil {
		t.Errorf("WriteDiff on clean gate: %v", err)
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("clean gate output = %q", buf.String())
	}
}

func TestDiffCatchesP99Regression(t *testing.T) {
	base := report(10, 50, 0, 100)
	cur := report(10, 50*2+10+1, 0, 100) // sweep p99 just over the limit
	regs := Diff(base, cur, testThresholds)
	if len(regs) != 1 || regs[0].Op != OpSweep || regs[0].Metric != "p99_ms" {
		t.Fatalf("regressions = %v, want one sweep p99_ms", regs)
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, regs, base, testThresholds); err == nil {
		t.Error("WriteDiff with regressions returned nil error")
	}
	if !strings.Contains(buf.String(), "REGRESSION: sweep: p99_ms") {
		t.Errorf("gate output = %q", buf.String())
	}
}

func TestDiffCatchesErrorRateRegression(t *testing.T) {
	base := report(10, 50, 0.005, 100)
	cur := report(10, 50, 0.02, 100)
	regs := Diff(base, cur, testThresholds)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want error_rate on both ops", regs)
	}
	for _, r := range regs {
		if r.Metric != "error_rate" {
			t.Errorf("metric = %q, want error_rate", r.Metric)
		}
	}
}

func TestDiffCatchesThroughputCollapse(t *testing.T) {
	base := report(10, 50, 0, 100)
	cur := report(10, 50, 0, 40)
	regs := Diff(base, cur, testThresholds)
	if len(regs) != 1 || regs[0].Metric != "throughput_rps" {
		t.Fatalf("regressions = %v, want one throughput_rps", regs)
	}
	// Factor 0 disables the throughput gate.
	loose := testThresholds
	loose.ThroughputFactor = 0
	if regs := Diff(base, cur, loose); len(regs) != 0 {
		t.Errorf("disabled throughput gate still fired: %v", regs)
	}
}

func TestDiffCatchesMissingOp(t *testing.T) {
	base := report(10, 50, 0, 100)
	cur := report(10, 50, 0, 100)
	delete(cur.Ops, OpSweep)
	regs := Diff(base, cur, testThresholds)
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Op != OpSweep {
		t.Fatalf("regressions = %v, want sweep missing", regs)
	}
	// An op with zero baseline count gates nothing; an op only in
	// current is new coverage, not a regression.
	base.Ops[OpTraces] = OpStats{}
	cur2 := report(10, 50, 0, 100)
	cur2.Ops[OpDiff] = OpStats{Count: 5, Latency: metrics.HistogramSnapshot{Count: 5, P99MS: 1e9}}
	if regs := Diff(base, cur2, testThresholds); len(regs) != 0 {
		t.Errorf("zero-count baseline op or new op gated: %v", regs)
	}
}

// TestReportRoundTrip: reports survive WriteJSON/ReadReport, and the
// schema check rejects foreign documents.
func TestReportRoundTrip(t *testing.T) {
	r := report(10, 50, 0.001, 123)
	r.Spec = Spec{Ops: map[string]float64{OpRun: 1}, Workloads: []string{"gray"}, MeasureRequests: 10}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ThroughputRPS != r.ThroughputRPS || got.Ops[OpRun].Latency.P99MS != 10 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"vmbench/v1"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}
