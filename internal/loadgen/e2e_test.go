package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vmopt/internal/disptrace"
	"vmopt/internal/serve"
)

// testScaleDiv shrinks every workload to its scale floor so
// simulations finish in milliseconds; these tests exercise the load
// framework's semantics, not the counters' magnitudes.
const testScaleDiv = 400

// TestEndToEndMixedSpec drives a real internal/serve handler
// in-process with the full op mix: warm-up records dispatch traces
// through the server's trace cache, the diff population is paired
// from them, and the measured phase issues all four ops. Run under
// -race in CI, this is the integration gate for the whole framework.
func TestEndToEndMixedSpec(t *testing.T) {
	srv := serve.New(serve.Config{
		Traces:          disptrace.NewCache(t.TempDir()),
		DefaultScaleDiv: testScaleDiv,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	spec := &Spec{
		Ops:             map[string]float64{OpRun: 0.5, OpSweep: 0.2, OpDiff: 0.15, OpTraces: 0.15},
		Workloads:       []string{"gray"},
		Variants:        []string{"plain", "dynamic super"},
		Machines:        []string{"celeron-800", "pentium-m"},
		ScaleDiv:        testScaleDiv,
		ZipfTheta:       0.9,
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 4},
		WarmupRequests:  12,
		MeasureRequests: 80,
	}
	r := &Runner{Addr: ts.URL, Spec: spec}
	report, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	tot := report.Total
	if tot.Count != 80 {
		t.Errorf("measured %d requests, want 80", tot.Count)
	}
	if tot.Errors+tot.Non2xx+tot.Backpressure+tot.Diverged+tot.CellErrors != 0 {
		t.Errorf("failures in clean run: %+v", tot)
	}
	var sum uint64
	for _, op := range Ops {
		s := report.Ops[op]
		sum += s.Count
		if s.Count == 0 {
			t.Errorf("op %s never drawn in 80 requests of a mixed spec", op)
		}
		if s.Latency.Count != s.Count {
			t.Errorf("op %s: %d latencies recorded for %d requests", op, s.Latency.Count, s.Count)
		}
	}
	if sum != tot.Count {
		t.Errorf("per-op counts sum to %d, total says %d", sum, tot.Count)
	}
	if report.ThroughputRPS <= 0 || report.ElapsedS <= 0 {
		t.Errorf("throughput %.1f rps over %.2fs", report.ThroughputRPS, report.ElapsedS)
	}

	// Cross-check the client-side view against the server's own
	// /v1/stats delta over the measurement window: every measured
	// request must be accounted for on both sides.
	if report.Server == nil {
		t.Fatal("report carries no server stats delta")
	}
	sd := report.Server
	for _, c := range []struct {
		name   string
		server uint64
		client uint64
	}{
		{"run", sd.Run, report.Ops[OpRun].Count},
		{"sweep", sd.Sweep, report.Ops[OpSweep].Count},
		{"diff", sd.Diff, report.Ops[OpDiff].Count},
		{"traces", sd.Traces, report.Ops[OpTraces].Count},
		{"rejected", sd.Rejected, tot.Backpressure},
	} {
		if c.server != c.client {
			t.Errorf("%s: server saw %d, client issued %d", c.name, c.server, c.client)
		}
	}

	// A fresh report from the same spec and seed must gate cleanly
	// against itself — the self-consistency every checked-in baseline
	// run relies on.
	if regs := Diff(report, report, DefaultThresholds); len(regs) != 0 {
		t.Errorf("report does not pass its own gate: %v", regs)
	}
}

// TestDiffCorpusNeedsTraces: a diff-bearing spec against a server
// without a trace cache fails loudly at prepare time instead of
// silently measuring a different mix.
func TestDiffCorpusNeedsTraces(t *testing.T) {
	srv := serve.New(serve.Config{DefaultScaleDiv: testScaleDiv})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	spec := &Spec{
		Ops:             map[string]float64{OpRun: 0.5, OpDiff: 0.5},
		Workloads:       []string{"gray"},
		Machines:        []string{"celeron-800"},
		ScaleDiv:        testScaleDiv,
		Arrival:         Arrival{Workers: 2},
		WarmupRequests:  4,
		MeasureRequests: 4,
	}
	if _, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background()); err == nil {
		t.Fatal("diff spec against trace-less server succeeded")
	}
}

// stallServer serializes every request behind one mutex with a fixed
// service time: a server whose capacity is 1/serviceTime, the
// textbook setup for observing coordinated omission.
func stallServer(t *testing.T, serviceTime time.Duration) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		time.Sleep(serviceTime)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestOpenLoopCoordinatedOmission: against a server that serializes
// 20ms requests (capacity 50 rps), an open-loop schedule at 200 rps
// must record the queueing delay — latency from *intended* start —
// so the percentiles show hundreds of milliseconds even though no
// single request is ever served slower than ~20ms. A closed-loop run
// against the same server records only service time and stays an
// order of magnitude lower: the gap IS the coordinated-omission
// penalty the open-loop recorder exists to expose.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	const serviceTime = 20 * time.Millisecond
	ts := stallServer(t, serviceTime)

	openSpec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Seed:            1,
		Arrival:         Arrival{Mode: ModeOpen, Schedule: ScheduleFixed, RateRPS: 200},
		MeasureRequests: 40,
	}
	open, err := (&Runner{Addr: ts.URL, Spec: openSpec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := open.Ops[OpRun]
	if stats.Count != 40 || stats.Errors+stats.Non2xx != 0 {
		t.Fatalf("open-loop run dirty: %+v", stats)
	}
	// 40 requests arriving over 200ms into a 50 rps server: the last
	// ones queue for ~600ms. Anything under 200ms would mean the
	// recorder silently forgave the queueing.
	if stats.Latency.P99MS < 200 {
		t.Errorf("open-loop p99 = %.1fms; queueing penalty missing (coordinated omission)", stats.Latency.P99MS)
	}
	if stats.Latency.P50MS < float64(serviceTime/time.Millisecond) {
		t.Errorf("open-loop p50 = %.1fms, below the service time itself", stats.Latency.P50MS)
	}

	closedSpec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 2},
		MeasureRequests: 20,
	}
	closed, err := (&Runner{Addr: ts.URL, Spec: closedSpec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cp99 := closed.Ops[OpRun].Latency.P99MS
	// Two closed-loop workers over a serialized 20ms server wait at
	// most ~one service time each: ~40ms per request, far under the
	// open-loop percentiles.
	if cp99 > 150 {
		t.Errorf("closed-loop p99 = %.1fms, implausibly high for a 20ms server", cp99)
	}
	if stats.Latency.P99MS < 2*cp99 {
		t.Errorf("open-loop p99 %.1fms not clearly above closed-loop p99 %.1fms", stats.Latency.P99MS, cp99)
	}
}

// TestBackpressureNotFatal: 503s are classified as backpressure and
// counted, not treated as failures — an open-loop overload run must
// survive the server shedding load, because measuring that shedding
// is the point.
func TestBackpressureNotFatal(t *testing.T) {
	var served, shed int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if (served+shed)%2 == 1 { // every other request rejected
			shed++
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"server at capacity"}`, http.StatusServiceUnavailable)
			return
		}
		served++
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)

	spec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 1},
		MeasureRequests: 20,
	}
	report, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := report.Ops[OpRun]
	if stats.Backpressure != 10 {
		t.Errorf("backpressure = %d, want 10", stats.Backpressure)
	}
	if stats.Non2xx != 0 || stats.Errors != 0 {
		t.Errorf("503s leaked into failure counts: %+v", stats)
	}
	if stats.ErrorRate != 0 {
		t.Errorf("error rate %.3f includes backpressure", stats.ErrorRate)
	}
	if stats.BackpressureRate != 0.5 {
		t.Errorf("backpressure rate = %.3f, want 0.5", stats.BackpressureRate)
	}
}

// TestRunDeterministicMix: the same spec and seed draw the same op
// sequence — per-op counts match run to run even against a stub.
func TestRunDeterministicMix(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)
	spec := &Spec{
		Ops:             map[string]float64{OpRun: 0.7, OpTraces: 0.3},
		Workloads:       []string{"gray"},
		Seed:            99,
		ZipfTheta:       0.9,
		Arrival:         Arrival{Mode: ModeOpen, Schedule: SchedulePoisson, RateRPS: 2000},
		MeasureRequests: 50,
	}
	counts := func() [2]uint64 {
		r, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return [2]uint64{r.Ops[OpRun].Count, r.Ops[OpTraces].Count}
	}
	a, b := counts(), counts()
	if a != b {
		t.Errorf("op mix not deterministic under one seed: %v vs %v", a, b)
	}
	if a[0]+a[1] != 50 {
		t.Errorf("counts %v don't sum to 50", a)
	}
}
