package loadgen

import (
	"math"
	"testing"
	"time"
)

// TestFixedRateSpacing: offsets are exactly i/rate with no drift —
// offset 1e6 of a 1000 rps schedule is exactly 1000 seconds in.
func TestFixedRateSpacing(t *testing.T) {
	s, err := NewSchedule(ScheduleFixed, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 10 {
		got := s.Next()
		want := time.Duration(i) * time.Millisecond
		if got != want {
			t.Errorf("offset %d = %v, want %v", i, got, want)
		}
	}
	f := &fixedRate{period: float64(time.Second) / 1000, i: 1_000_000}
	if got, want := f.Next(), 1000*time.Second; got != want {
		t.Errorf("offset 1e6 = %v, want %v (rate drifted)", got, want)
	}
}

// TestPoissonDeterministic: the same (rate, seed) reproduces the same
// arrival sequence; a different seed does not.
func TestPoissonDeterministic(t *testing.T) {
	a, _ := NewSchedule(SchedulePoisson, 200, 42)
	b, _ := NewSchedule(SchedulePoisson, 200, 42)
	c, _ := NewSchedule(SchedulePoisson, 200, 43)
	diff := false
	for i := range 500 {
		x, y, z := a.Next(), b.Next(), c.Next()
		if x != y {
			t.Fatalf("offset %d diverged under one seed: %v vs %v", i, x, y)
		}
		if x != z {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

// TestPoissonMeanRate: over many arrivals the empirical rate
// converges on rate_rps, and offsets are nondecreasing.
func TestPoissonMeanRate(t *testing.T) {
	const rate, n = 100.0, 20000
	s, _ := NewSchedule(SchedulePoisson, rate, 7)
	var last time.Duration
	for range n {
		off := s.Next()
		if off < last {
			t.Fatalf("offsets not nondecreasing: %v after %v", off, last)
		}
		last = off
	}
	got := float64(n-1) / last.Seconds()
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("empirical rate %.1f rps, want ~%.0f", got, rate)
	}
}

func TestNewScheduleRejections(t *testing.T) {
	if _, err := NewSchedule(ScheduleFixed, 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSchedule(ScheduleFixed, -10, 0); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewSchedule("uniform", 10, 0); err == nil {
		t.Error("unknown schedule accepted")
	}
}
