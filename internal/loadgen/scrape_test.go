package loadgen

import (
	"strings"
	"testing"
)

func TestParseExposition(t *testing.T) {
	const text = `# HELP vmserved_requests_total HTTP requests received, by endpoint.
# TYPE vmserved_requests_total counter
vmserved_requests_total{endpoint="run"} 12
vmserved_requests_total{endpoint="sweep"} 3
# HELP vmserved_in_flight Admitted requests currently executing.
# TYPE vmserved_in_flight gauge
vmserved_in_flight 0
go_heap_alloc_bytes 1.048576e+06
`
	series, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := series[`vmserved_requests_total{endpoint="run"}`]; got != 12 {
		t.Errorf("run series = %v, want 12", got)
	}
	if got := series[`go_heap_alloc_bytes`]; got != 1048576 {
		t.Errorf("heap series = %v, want 1048576 (scientific notation)", got)
	}
	if len(series) != 4 {
		t.Errorf("parsed %d series, want 4", len(series))
	}
}

// TestParseExpositionRejects is what gives `vmload checkmetrics` its
// teeth: output that a real Prometheus scraper would choke on must be
// an error, not a silently skipped line.
func TestParseExpositionRejects(t *testing.T) {
	for name, text := range map[string]string{
		"bare comment":          "# just a note\n",
		"missing value":         "vmserved_rejected_total\n",
		"non-numeric value":     "vmserved_rejected_total zero\n",
		"unterminated labels":   `vmserved_requests_total{endpoint="run" 12` + "\n",
		"duplicate series":      "a_total 1\na_total 2\n",
		"value-less label line": `vmserved_requests_total{endpoint="run"}` + "\n",
		"bad metric name":       "2fast 1\n",
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error: %q", name, text)
		}
	}
}

func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming("parse;dur=0.011, record;dur=1.879, record;dur=0.5, encode;dur=0.008, junk, alsojunk;desc=x")
	if len(got) != 3 {
		t.Fatalf("parsed %d stages, want 3: %v", len(got), got)
	}
	if got["record"] != 1.879+0.5 {
		t.Errorf("record = %v, want summed 2.379", got["record"])
	}
	if got["parse"] != 0.011 || got["encode"] != 0.008 {
		t.Errorf("stages = %v", got)
	}
}
