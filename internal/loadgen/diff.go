package loadgen

import (
	"fmt"
	"io"
	"sort"
)

// Thresholds parameterize the load-report regression gate. Serving
// latency, unlike the simulator's deterministic counters, varies with
// the host — CI runs on shared runners — so the gate is built from
// loose multiplicative factors plus absolute slack, not exact
// comparison: it exists to catch a serving-tier regression measured
// in multiples, not a noisy millisecond.
type Thresholds struct {
	// P99Factor and P99SlackMS bound each op's p99:
	// cur_p99 <= base_p99*P99Factor + P99SlackMS.
	P99Factor  float64
	P99SlackMS float64
	// MaxErrorRateDelta bounds each op's error rate:
	// cur_rate <= base_rate + MaxErrorRateDelta.
	MaxErrorRateDelta float64
	// ThroughputFactor bounds the total throughput drop:
	// cur_rps >= base_rps / ThroughputFactor. Zero disables the
	// throughput gate.
	ThroughputFactor float64
}

// DefaultThresholds is tuned for shared CI runners: a p99 regression
// has to be ~4x (plus scheduling slack) before the gate trips, which
// still catches the regressions worth stopping a merge for (a lost
// cache tier, a serialized handler, an accidental O(n^2) path).
var DefaultThresholds = Thresholds{
	P99Factor:         4,
	P99SlackMS:        250,
	MaxErrorRateDelta: 0.01,
	ThroughputFactor:  4,
}

// Regression is one gate failure.
type Regression struct {
	// Op names the operation ("run", "sweep", ...) or "total" for the
	// throughput gate.
	Op string
	// Metric is "p99_ms", "error_rate", "throughput_rps" or
	// "missing" (an op the baseline measured is absent or unissued in
	// the current report).
	Metric string
	// Base and Cur are the baseline and current values; Limit is the
	// threshold the current value violated.
	Base, Cur, Limit float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: measured in baseline but absent from this report", r.Op)
	}
	if r.Metric == "throughput_rps" {
		return fmt.Sprintf("%s: %s regressed %.6g -> %.6g (limit >= %.6g)",
			r.Op, r.Metric, r.Base, r.Cur, r.Limit)
	}
	return fmt.Sprintf("%s: %s regressed %.6g -> %.6g (limit <= %.6g)",
		r.Op, r.Metric, r.Base, r.Cur, r.Limit)
}

// Diff gates current against baseline per operation. Ops present only
// in current are new coverage, not regressions. Reports must share
// the schema (checked at read time) and should come from the same
// spec; a spec mismatch in op mix surfaces naturally as missing ops.
func Diff(baseline, current *Report, t Thresholds) []Regression {
	var regs []Regression
	ops := make([]string, 0, len(baseline.Ops))
	for op := range baseline.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		base := baseline.Ops[op]
		if base.Count == 0 {
			continue // baseline never exercised it; nothing to gate
		}
		cur, ok := current.Ops[op]
		if !ok || cur.Count == 0 {
			regs = append(regs, Regression{Op: op, Metric: "missing"})
			continue
		}
		if limit := base.Latency.P99MS*t.P99Factor + t.P99SlackMS; cur.Latency.P99MS > limit {
			regs = append(regs, Regression{
				Op: op, Metric: "p99_ms",
				Base: base.Latency.P99MS, Cur: cur.Latency.P99MS, Limit: limit,
			})
		}
		if limit := base.ErrorRate + t.MaxErrorRateDelta; cur.ErrorRate > limit {
			regs = append(regs, Regression{
				Op: op, Metric: "error_rate",
				Base: base.ErrorRate, Cur: cur.ErrorRate, Limit: limit,
			})
		}
	}
	if t.ThroughputFactor > 0 && baseline.ThroughputRPS > 0 {
		if limit := baseline.ThroughputRPS / t.ThroughputFactor; current.ThroughputRPS < limit {
			regs = append(regs, Regression{
				Op: "total", Metric: "throughput_rps",
				Base: baseline.ThroughputRPS, Cur: current.ThroughputRPS, Limit: limit,
			})
		}
	}
	return regs
}

// WriteDiff renders a gate outcome for humans and returns an error
// when regressions were found (the vmload diff exit status).
func WriteDiff(w io.Writer, regs []Regression, baseline *Report, t Thresholds) error {
	if len(regs) == 0 {
		fmt.Fprintf(w, "vmload diff: %d ops compared, no regressions (p99 limit %gx+%gms, error-rate delta %g, throughput factor %g)\n",
			len(baseline.Ops), t.P99Factor, t.P99SlackMS, t.MaxErrorRateDelta, t.ThroughputFactor)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(w, "REGRESSION:", r)
	}
	return fmt.Errorf("%d regression(s) against baseline", len(regs))
}
