package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmopt/internal/faults"
	"vmopt/internal/serve"
)

// retrySpec is the fast retry policy the stub tests share.
func retrySpec(attempts int) *Retry {
	return &Retry{
		MaxAttempts: attempts,
		BaseBackoff: Duration(time.Millisecond),
		MaxBackoff:  Duration(5 * time.Millisecond),
	}
}

// TestRetryRecoversFlakyServer: a server that 503s the first two
// attempts of every request is fully recovered by a 4-attempt retry
// policy — zero failures and zero residual backpressure in the
// report, two counted retries per logical request, and every retried
// attempt announcing itself with X-Retry-Attempt.
func TestRetryRecoversFlakyServer(t *testing.T) {
	var headerMu sync.Mutex
	headersSeen := map[string]int{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			http.NotFound(w, r)
			return
		}
		attempt := r.Header.Get("X-Retry-Attempt")
		headerMu.Lock()
		headersSeen[attempt]++
		headerMu.Unlock()
		if attempt == "" || attempt == "1" {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"flaky"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)

	spec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 1},
		MeasureRequests: 4,
		Retry:           retrySpec(4),
	}
	report, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := report.Ops[OpRun]
	if stats.Errors+stats.Non2xx+stats.Backpressure+stats.Diverged != 0 {
		t.Errorf("recovered run still reports failures: %+v", stats)
	}
	if stats.Retries != 8 {
		t.Errorf("retries = %d, want 8 (2 per request)", stats.Retries)
	}
	headerMu.Lock()
	defer headerMu.Unlock()
	if headersSeen["1"] != 4 || headersSeen["2"] != 4 {
		t.Errorf("X-Retry-Attempt headers seen: %v, want 4 each of \"1\" and \"2\"", headersSeen)
	}
}

// TestRetryHonorsRetryAfter: the server's Retry-After floors the
// backoff (capped at max_backoff). With a 1s Retry-After and a 40ms
// cap, every retry must wait ~40ms instead of the ~1ms base, which is
// observable as a wall-clock lower bound.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			http.NotFound(w, r)
			return
		}
		if calls.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)

	spec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 1},
		MeasureRequests: 5,
		Retry: &Retry{
			MaxAttempts: 3,
			BaseBackoff: Duration(time.Millisecond),
			MaxBackoff:  Duration(40 * time.Millisecond),
		},
	}
	start := time.Now()
	report, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := report.Ops[OpRun]
	if stats.Retries != 5 || stats.Backpressure != 0 {
		t.Fatalf("want 5 clean retries, got %+v", stats)
	}
	// 5 retries, each floored to the 40ms-capped Retry-After. Without
	// the floor the whole run takes ~5ms.
	if elapsed := time.Since(start); elapsed < 5*40*time.Millisecond {
		t.Errorf("run took %s; Retry-After floor (5 x 40ms) not honored", elapsed)
	}
}

// TestSweepResumeStitch: a sweep stream that dies mid-flight is
// retried with the last cursor, the server streams only the remaining
// groups, and the stitched response is byte-identical (after
// normalization) to an unbroken run of the same sweep — diverged
// stays zero.
func TestSweepResumeStitch(t *testing.T) {
	const (
		cell1 = `{"run":{"workload":"gray","variant":"plain","machine":"m1"}}`
		cell2 = `{"run":{"workload":"gray","variant":"dynamic super","machine":"m1"}}`
	)
	var broke atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			// The runner probes /v1/stats and /metrics around the
			// measurement phase; those must not consume the one-shot
			// broken stream below.
			http.NotFound(w, r)
			return
		}
		var req struct {
			Resume string `json:"resume"`
		}
		body := new(bytes.Buffer)
		body.ReadFrom(r.Body)
		json.Unmarshal(body.Bytes(), &req)
		w.Header().Set("Content-Type", "application/x-ndjson")
		switch {
		case req.Resume == "c1":
			// Resumed: only the remaining group, summary notes the skip.
			fmt.Fprintln(w, cell2)
			fmt.Fprintln(w, `{"cursor":"c2"}`)
			fmt.Fprintln(w, `{"done":true,"cells":1,"groups":1,"skipped":1}`)
		case broke.CompareAndSwap(false, true):
			// First attempt: one group and its cursor reach the client,
			// then the connection dies.
			fmt.Fprintln(w, cell1)
			fmt.Fprintln(w, `{"cursor":"c1"}`)
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		default:
			fmt.Fprintln(w, cell1)
			fmt.Fprintln(w, `{"cursor":"c1"}`)
			fmt.Fprintln(w, cell2)
			fmt.Fprintln(w, `{"cursor":"c2"}`)
			fmt.Fprintln(w, `{"done":true,"cells":2,"groups":2}`)
		}
	}))
	t.Cleanup(ts.Close)

	spec := &Spec{
		Ops:             map[string]float64{OpSweep: 1},
		Workloads:       []string{"gray"},
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 1},
		MeasureRequests: 2, // broken-then-resumed, then unbroken
		Retry:           retrySpec(3),
	}
	report, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := report.Ops[OpSweep]
	if stats.Errors != 0 || stats.CellErrors != 0 {
		t.Errorf("stitched sweep counted failures: %+v", stats)
	}
	if stats.Retries != 1 {
		t.Errorf("retries = %d, want 1 (the resumed attempt)", stats.Retries)
	}
	if stats.Diverged != 0 {
		t.Errorf("stitched sweep diverged from the unbroken one: %+v", stats)
	}
}

// TestRealServerRetryRecovery drives a real internal/serve handler
// with injected serve.handler unavailability: the real 503s carry
// Retry-After, the client retries through them, and both sides agree
// — zero client-visible failures, the server counting exactly the
// injected rejections and the announced retries.
func TestRealServerRetryRecovery(t *testing.T) {
	// First, the header contract on its own server: the very first
	// handler call trips an nth:1 rule — a real-server 503, which must
	// carry Retry-After, the header the retry policy's backoff floor
	// honors.
	hsrv := serve.New(serve.Config{DefaultScaleDiv: testScaleDiv,
		Faults: faults.New(&faults.Spec{Faults: []faults.Rule{
			{Site: faults.SiteHandler, Mode: faults.ModeUnavailable, Nth: 1, Limit: 1},
		}})})
	hts := httptest.NewServer(hsrv.Handler())
	resp, err := http.Post(hts.URL+"/v1/run", "application/json",
		bytes.NewReader([]byte(`{"workload":"gray","variant":"plain","machine":"celeron-800"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hts.Close()
	hsrv.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected unavailability: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("real server 503 is missing Retry-After")
	}

	// Now the retry loop against a fresh server. Every instrumented
	// endpoint counts as a handler call, so the sequence is: the
	// stats-before probe (1), then three measured runs — nth:4 fires
	// on the third run (call 4), which retries as call 5; the
	// stats-after probe is call 6.
	inj := faults.New(&faults.Spec{Faults: []faults.Rule{
		{Site: faults.SiteHandler, Mode: faults.ModeUnavailable, Nth: 4, Limit: 1},
	}})
	srv := serve.New(serve.Config{DefaultScaleDiv: testScaleDiv, Faults: inj})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	spec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Machines:        []string{"celeron-800"},
		Variants:        []string{"plain"},
		ScaleDiv:        testScaleDiv,
		Seed:            1,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 1},
		MeasureRequests: 3,
		Retry:           retrySpec(4),
	}
	report, err := (&Runner{Addr: ts.URL, Spec: spec}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := report.Ops[OpRun]
	if stats.Errors+stats.Non2xx+stats.Backpressure+stats.Diverged != 0 {
		t.Errorf("recovered run still reports failures: %+v", stats)
	}
	if stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", stats.Retries)
	}
	if report.Server == nil {
		t.Fatal("report carries no server stats delta")
	}
	if report.Server.Rejected != 1 {
		t.Errorf("server rejected delta = %d, want the 1 injected rejection", report.Server.Rejected)
	}

	// The server's own view: the announced retry and the injected
	// fault are on /v1/stats.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var doc serve.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests.Retried != 1 {
		t.Errorf("server retried count = %d, want 1", doc.Requests.Retried)
	}
	if doc.Faults == nil || doc.Faults.Injected != 1 ||
		doc.Faults.PerSite["serve.handler/unavailable"] != 1 {
		t.Errorf("server fault stats = %+v, want 1 injected handler unavailability", doc.Faults)
	}
}

// TestResponseDump: KeepResponses captures one hash per non-volatile
// logical request, and CompareResponses cross-checks two runs of the
// same spec — equal on the shared keys, counting how many it compared.
func TestResponseDump(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	t.Cleanup(ts.Close)
	spec := &Spec{
		Ops:             map[string]float64{OpRun: 1},
		Workloads:       []string{"gray"},
		Seed:            7,
		Arrival:         Arrival{Mode: ModeClosed, Workers: 2},
		MeasureRequests: 20,
	}
	run := func() map[string]string {
		r, err := (&Runner{Addr: ts.URL, Spec: spec, KeepResponses: true}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Responses) == 0 {
			t.Fatal("KeepResponses produced an empty dump")
		}
		return r.Responses
	}
	a, b := run(), run()
	compared, mismatched := CompareResponses(a, b)
	if compared == 0 || len(mismatched) != 0 {
		t.Errorf("dumps disagree: compared %d, mismatched %v", compared, mismatched)
	}
	b["run|gray|plain|celeron-800|0"] = "0000"
	if _, mm := CompareResponses(a, b); len(mm) != 1 {
		t.Errorf("poisoned key not caught: %v", mm)
	}
}
