// Package loadgen is a YCSB-grade load framework for the serving
// tier: declarative workload specs (an operation mix over the
// /v1/run, /v1/sweep, /v1/diff and /v1/traces endpoints with a seeded
// zipfian key distribution), open-loop arrival schedules (fixed-rate
// and Poisson) alongside the classic closed-loop worker model,
// distinct warm-up and measurement phases, and
// coordinated-omission-aware latency recording: in open-loop mode
// every request's latency is measured from its *intended* start time
// on the arrival schedule, so a stalled server is charged for the
// requests that queued behind the stall instead of being quietly
// forgiven (the measurement bug Gil Tene named coordinated omission).
//
// A run emits a machine-readable vmload/v1 report — throughput,
// per-operation latency percentiles, error and 503-backpressure
// counts, host metadata, and the server's own /v1/stats delta over
// the measurement window for cross-checking the client-side view.
// Diff compares such a report against a checked-in baseline
// (BENCH_serve.json) with tolerance thresholds, giving the serving
// tier the same CI regression gate the replay pipeline has.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// Operation names — the keys of a spec's mix and of a report's per-op
// sections. Each maps to one serving endpoint.
const (
	OpRun    = "run"    // POST /v1/run
	OpSweep  = "sweep"  // POST /v1/sweep
	OpDiff   = "diff"   // POST /v1/diff
	OpTraces = "traces" // GET /v1/traces
)

// Ops lists every valid operation in report order.
var Ops = []string{OpRun, OpSweep, OpDiff, OpTraces}

// Arrival modes and open-loop schedules.
const (
	ModeClosed = "closed" // N workers, each issuing the next request when its last completes
	ModeOpen   = "open"   // requests start on a schedule regardless of completions

	ScheduleFixed   = "fixed"   // constant inter-arrival gap (rate_rps)
	SchedulePoisson = "poisson" // exponential inter-arrival gaps with mean 1/rate_rps
)

// Duration is a time.Duration that marshals as a Go duration string
// ("10s", "1m30s") so specs stay human-editable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"10s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Arrival declares how measured requests enter the system.
type Arrival struct {
	// Mode is "closed" or "open". Empty means closed.
	Mode string `json:"mode,omitempty"`
	// Workers is the closed-loop concurrency (and the warm-up phase
	// concurrency in every mode); <= 0 means DefaultWorkers.
	Workers int `json:"workers,omitempty"`
	// Schedule picks the open-loop arrival process: "fixed" or
	// "poisson". Required when Mode is "open".
	Schedule string `json:"schedule,omitempty"`
	// RateRPS is the open-loop arrival rate in requests per second.
	// Must be positive when Mode is "open".
	RateRPS float64 `json:"rate_rps,omitempty"`
	// MaxInFlight caps concurrently executing open-loop requests on
	// the client side; arrivals beyond it queue, and their queueing
	// time is charged to their latency (intended-start timing). <= 0
	// means DefaultMaxInFlight.
	MaxInFlight int `json:"max_inflight,omitempty"`
}

// Retry configures client-side recovery of failed requests: transport
// errors and 5xx responses (including 503 backpressure) are retried
// with capped exponential backoff. Jitter is deterministic — drawn
// from the request key and attempt number, not a global rand — so a
// seeded run stays reproducible. A server Retry-After header floors
// the backoff (capped at max_backoff, so a conservative server cannot
// stall the run). Retried attempts announce themselves with an
// X-Retry-Attempt header and are counted separately in the report;
// classification is by the final attempt alone.
type Retry struct {
	// MaxAttempts is the total number of tries for one logical
	// request, including the first; <= 1 disables retries.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseBackoff is the first retry's backoff, doubling per attempt;
	// zero means DefaultBaseBackoff.
	BaseBackoff Duration `json:"base_backoff,omitempty"`
	// MaxBackoff caps the backoff and any Retry-After; zero means
	// DefaultMaxBackoff.
	MaxBackoff Duration `json:"max_backoff,omitempty"`
}

// Defaults for spec fields left zero.
const (
	DefaultWorkers     = 8
	DefaultMaxInFlight = 512
	DefaultDiffDetail  = 3

	DefaultBaseBackoff = 50 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
)

// DefaultTimeout bounds one request when the spec does not.
const DefaultTimeout = Duration(2 * time.Minute)

// Spec is the declarative description of one load run — the unit CI
// checks in (see loadspecs/) and vmload -spec executes.
type Spec struct {
	// Ops is the operation mix: op name -> probability. Weights must
	// be non-negative and sum to 1 (within 1e-6).
	Ops map[string]float64 `json:"ops"`

	// Corpus shape: the request population each op draws from.
	// Workloads is required; empty Variants defaults to the paper's
	// plain + dynamic superinstruction pair, empty Machines to the
	// server's defaults (all machines for sweeps, the three primary
	// models for runs).
	Workloads []string `json:"workloads"`
	Variants  []string `json:"variants,omitempty"`
	Machines  []string `json:"machines,omitempty"`
	// ScaleDiv is sent with every run/sweep request; <= 0 omits it
	// (server default applies).
	ScaleDiv int `json:"scalediv,omitempty"`

	// ZipfTheta skews the per-op corpus rank distribution (0 =
	// uniform, YCSB's default 0.99 ~= real cache workloads). Must be
	// in [0, 1).
	ZipfTheta float64 `json:"zipf_theta,omitempty"`
	// Seed makes the whole request mix reproducible.
	Seed int64 `json:"seed,omitempty"`

	Arrival Arrival `json:"arrival"`

	// WarmupRequests are issued closed-loop before measurement starts
	// and are not recorded: they warm the server's caches and record
	// the dispatch traces the diff op pairs up.
	WarmupRequests int `json:"warmup_requests,omitempty"`
	// MeasureRequests bounds the measurement phase by count;
	// MeasureDuration by wall clock. At least one must be set; with
	// both, whichever trips first ends the phase.
	MeasureRequests int      `json:"measure_requests,omitempty"`
	MeasureDuration Duration `json:"measure_duration,omitempty"`

	// Retry, when present, retries failed requests with deterministic
	// backoff (see Retry). Absent means one attempt per request.
	Retry *Retry `json:"retry,omitempty"`

	// Timeout bounds each request; zero means DefaultTimeout.
	Timeout Duration `json:"timeout,omitempty"`
	// DiffDetail is the divergence detail count sent with diff
	// requests; <= 0 means DefaultDiffDetail.
	DiffDetail int `json:"diff_detail,omitempty"`
}

// mixEpsilon is the tolerance on the op-mix sum: weights are written
// by hand in decimal, so demand "sums to 1" only up to rounding.
const mixEpsilon = 1e-6

// Validate checks the spec and reports the first problem. It does not
// mutate the spec; defaults are applied by accessors at run time so a
// validated spec serializes exactly as written.
func (s *Spec) Validate() error {
	if len(s.Ops) == 0 {
		return fmt.Errorf("ops: mix must name at least one operation")
	}
	valid := map[string]bool{}
	for _, op := range Ops {
		valid[op] = true
	}
	sum := 0.0
	for op, w := range s.Ops {
		if !valid[op] {
			return fmt.Errorf("ops: unknown operation %q (valid: run, sweep, diff, traces)", op)
		}
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("ops: %s weight %v must be non-negative", op, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > mixEpsilon {
		return fmt.Errorf("ops: weights sum to %g, must sum to 1", sum)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("workloads must be non-empty")
	}
	if s.ZipfTheta < 0 || s.ZipfTheta >= 1 {
		return fmt.Errorf("zipf_theta %g out of range [0, 1)", s.ZipfTheta)
	}
	switch s.Arrival.Mode {
	case "", ModeClosed:
		if s.Arrival.Workers < 0 {
			return fmt.Errorf("arrival: workers %d must be >= 0", s.Arrival.Workers)
		}
	case ModeOpen:
		switch s.Arrival.Schedule {
		case ScheduleFixed, SchedulePoisson:
		default:
			return fmt.Errorf("arrival: open mode needs schedule %q or %q, got %q",
				ScheduleFixed, SchedulePoisson, s.Arrival.Schedule)
		}
		if s.Arrival.RateRPS <= 0 || math.IsNaN(s.Arrival.RateRPS) || math.IsInf(s.Arrival.RateRPS, 0) {
			return fmt.Errorf("arrival: rate_rps %g must be positive", s.Arrival.RateRPS)
		}
	default:
		return fmt.Errorf("arrival: unknown mode %q (want %q or %q)", s.Arrival.Mode, ModeClosed, ModeOpen)
	}
	if s.WarmupRequests < 0 {
		return fmt.Errorf("warmup_requests %d must be >= 0", s.WarmupRequests)
	}
	if s.MeasureRequests < 0 {
		return fmt.Errorf("measure_requests %d must be >= 0", s.MeasureRequests)
	}
	if s.MeasureDuration < 0 {
		return fmt.Errorf("measure_duration must be >= 0")
	}
	if s.MeasureRequests == 0 && s.MeasureDuration == 0 {
		return fmt.Errorf("measurement phase is unbounded: set measure_requests and/or measure_duration")
	}
	if s.Timeout < 0 {
		return fmt.Errorf("timeout must be >= 0")
	}
	if r := s.Retry; r != nil {
		if r.MaxAttempts < 0 {
			return fmt.Errorf("retry: max_attempts %d must be >= 0", r.MaxAttempts)
		}
		if r.BaseBackoff < 0 || r.MaxBackoff < 0 {
			return fmt.Errorf("retry: backoffs must be >= 0")
		}
		if r.MaxBackoff > 0 && r.MaxBackoff < r.BaseBackoff {
			return fmt.Errorf("retry: max_backoff %s below base_backoff %s",
				time.Duration(r.MaxBackoff), time.Duration(r.BaseBackoff))
		}
	}
	return nil
}

// Accessors resolving defaulted fields.

func (s *Spec) workers() int {
	if s.Arrival.Workers > 0 {
		return s.Arrival.Workers
	}
	return DefaultWorkers
}

func (s *Spec) maxInFlight() int {
	if s.Arrival.MaxInFlight > 0 {
		return s.Arrival.MaxInFlight
	}
	return DefaultMaxInFlight
}

func (s *Spec) timeout() time.Duration {
	if s.Timeout > 0 {
		return time.Duration(s.Timeout)
	}
	return time.Duration(DefaultTimeout)
}

func (s *Spec) diffDetail() int {
	if s.DiffDetail > 0 {
		return s.DiffDetail
	}
	return DefaultDiffDetail
}

func (s *Spec) maxAttempts() int {
	if s.Retry != nil && s.Retry.MaxAttempts > 1 {
		return s.Retry.MaxAttempts
	}
	return 1
}

func (s *Spec) baseBackoff() time.Duration {
	if s.Retry != nil && s.Retry.BaseBackoff > 0 {
		return time.Duration(s.Retry.BaseBackoff)
	}
	return DefaultBaseBackoff
}

func (s *Spec) maxBackoff() time.Duration {
	if s.Retry != nil && s.Retry.MaxBackoff > 0 {
		return time.Duration(s.Retry.MaxBackoff)
	}
	return DefaultMaxBackoff
}

func (s *Spec) open() bool { return s.Arrival.Mode == ModeOpen }

// ParseSpec decodes and validates a spec document. Unknown fields are
// rejected: a typoed field silently ignored would measure something
// other than what the spec author asked for.
func ParseSpec(b []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("invalid spec: %w", err)
	}
	return &s, nil
}

// ReadSpecFile loads a spec from disk.
func ReadSpecFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
